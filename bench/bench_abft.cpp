// ABFT overhead on a 64-node cube, in the paper's (a, b) cost terms: what
// the checksum machinery of abft::protect — the encode reduce/broadcast, the
// verify pass, and the per-phase checkpoints — adds on top of each bare
// algorithm, and what one mid-run node death costs end to end (rollback,
// subcube contraction, replay) relative to the fault-free protected run.
// Every run is seeded and deterministic, so the printed overheads are
// reproducible numbers, not noise.
//
// Usage: bench_abft [--json] [--out FILE]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "hcmm/abft/protect.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"

namespace {

using namespace hcmm;

constexpr std::uint32_t kDim = 6;

struct Row {
  std::string algorithm;
  std::string port;
  std::size_t n = 0;
  PhaseStats plain;      // bare algorithm, clean run
  PhaseStats prot;       // ABFT-protected, clean run
  double time_plain = 0.0;
  double time_prot = 0.0;
  double overhead = 0.0;       // protected vs plain, fraction
  double time_death = 0.0;     // protected run surviving one mid-run death
  double death_overhead = 0.0;  // death run vs clean protected, fraction
};

/// Smallest problem size the algorithm accepts on @p p nodes, 0 if none.
std::size_t pick_n(const algo::DistributedMatmul& alg, std::uint32_t p) {
  for (const std::size_t n : {16u, 24u, 32u, 48u, 64u, 96u, 128u, 256u}) {
    if (alg.applicable(n, p)) return n;
  }
  return 0;
}

double run_time(const algo::DistributedMatmul& alg, const Matrix& a,
                const Matrix& b, PortModel port, PhaseStats* totals,
                const fault::FaultPlan* plan, SimReport* report) {
  Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
  if (plan != nullptr) {
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(*plan));
  }
  const SimReport rep = alg.run(a, b, m).report;
  const PhaseStats t = rep.totals();
  if (totals != nullptr) *totals = t;
  if (report != nullptr) *report = rep;
  return t.comm_time + t.compute_time;
}

/// Executed-round index of the middle phase boundary of @p clean — the
/// round a scheduled death targets for the recovery-cost measurement.
/// PhaseStats::rounds charges one start-up per checkpoint on top of the
/// executed rounds, so the checkpoints are subtracted back out.
std::uint64_t mid_boundary_round(const SimReport& clean) {
  std::vector<std::uint64_t> bounds;
  std::uint64_t executed = 0;
  for (const PhaseStats& ph : clean.phases) {
    bounds.push_back(executed);
    executed += ph.rounds - ph.checkpoints;
  }
  return bounds.empty() ? 0 : bounds[bounds.size() / 2];
}

std::string rows_json(const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\"cube\": " << (1u << kDim) << ", \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i != 0) os << ", ";
    os << "{\"algorithm\": \"" << r.algorithm << "\", \"port\": \"" << r.port
       << "\", \"n\": " << r.n << ", \"a_plain\": " << r.plain.rounds
       << ", \"b_plain\": " << r.plain.word_cost
       << ", \"a_abft\": " << r.prot.rounds
       << ", \"b_abft\": " << r.prot.word_cost
       << ", \"checkpoint_cost\": " << r.prot.checkpoint_cost
       << ", \"flops_plain\": " << r.plain.flops
       << ", \"flops_abft\": " << r.prot.flops
       << ", \"time_plain\": " << r.time_plain
       << ", \"time_abft\": " << r.time_prot
       << ", \"overhead\": " << r.overhead
       << ", \"time_death\": " << r.time_death
       << ", \"death_overhead\": " << r.death_overhead << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_abft [--json] [--out FILE]\n";
      return 2;
    }
  }

  const Hypercube cube(kDim);
  std::vector<Row> rows;
  for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    if (!json) {
      bench::header(std::string("ABFT overhead, 64 nodes (") +
                    to_string(port) + ")");
      std::printf("  %-28s %5s | %6s %9s | %6s %9s | %9s %9s\n", "algorithm",
                  "n", "a", "b", "a+abft", "b+abft", "overhead", "death");
    }
    for (const auto& alg : algo::all_algorithms()) {
      if (!alg->supports(port)) continue;
      const std::size_t n = pick_n(*alg, cube.size());
      if (n == 0) continue;
      const Matrix a = random_matrix(n, n, 41);
      const Matrix b = random_matrix(n, n, 42);
      const auto prot = abft::protect(algo::make_algorithm(alg->id()));

      Row row;
      row.algorithm = alg->name();
      row.port = to_string(port);
      row.n = n;
      row.time_plain = run_time(*alg, a, b, port, &row.plain, nullptr, nullptr);
      SimReport clean;
      row.time_prot = run_time(*prot, a, b, port, &row.prot, nullptr, &clean);
      row.overhead = (row.time_prot - row.time_plain) / row.time_plain;

      fault::FaultPlan death;
      death.kill_node_at_round(fault::safe_victim(cube, 7, fault::FaultSet{}),
                               mid_boundary_round(clean));
      row.time_death = run_time(*prot, a, b, port, nullptr, &death, nullptr);
      row.death_overhead = (row.time_death - row.time_prot) / row.time_prot;

      if (!json) {
        std::printf(
            "  %-28s %5zu | %6llu %9.0f | %6llu %9.0f | %8.1f%% %8.1f%%\n",
            row.algorithm.c_str(), row.n,
            static_cast<unsigned long long>(row.plain.rounds),
            row.plain.word_cost,
            static_cast<unsigned long long>(row.prot.rounds),
            row.prot.word_cost, 100.0 * row.overhead,
            100.0 * row.death_overhead);
      }
      rows.push_back(std::move(row));
    }
  }

  const std::string doc = rows_json(rows);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << doc << "\n";
  }
  if (json) std::cout << doc << "\n";
  return 0;
}
