// Ablations for the design decisions DESIGN.md stars:
//   1. multi-port collectives via log N dimension-rotated trees vs naively
//      running the single-tree (one-port) schedule on multi-port hardware;
//   2. Cannon's unit shift on a binary-reflected-Gray-code ring (one link
//      per step) vs a binary-ordered ring that needs multi-hop routing.
// Both knobs are what make the Table 1 / Table 2 multi-port and Cannon
// terms achievable at all.

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/coll/builders.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/coll/ring.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/support/gray.hpp"
#include "hcmm/topology/grid.hpp"

namespace {

using namespace hcmm;

void ablate_bcast(std::uint32_t d, std::size_t words) {
  const Subcube sc(0, (1u << d) - 1);
  // Rotated trees (the library default on multi-port machines).
  Machine rotated(Hypercube(d), PortModel::kMultiPort, CostParams{1, 1, 1});
  rotated.store().put(0, make_tag(1), std::vector<double>(words, 1.0));
  rotated.reset_stats();
  coll::op_bcast(rotated, sc, 0, make_tag(1));
  // Single SBT on the same multi-port machine.
  Machine single(Hypercube(d), PortModel::kMultiPort, CostParams{1, 1, 1});
  single.store().put(0, make_tag(1), std::vector<double>(words, 1.0));
  single.reset_stats();
  const Tag tags[] = {make_tag(1)};
  single.run(coll::sbt_bcast(sc, 0, coll::identity_order(d), tags));
  const auto r = rotated.report().totals();
  const auto s = single.report().totals();
  std::printf(
      "  bcast    N=%3u M=%4zu : rotated trees b=%7.0f, single tree b=%7.0f"
      "  (x%.1f bandwidth)\n",
      1u << d, words, r.word_cost, s.word_cost, s.word_cost / r.word_cost);
}

void ablate_allgather(std::uint32_t d, std::size_t words) {
  const Subcube sc(0, (1u << d) - 1);
  auto fill = [&](Machine& m, std::vector<Tag>& tags) {
    tags.resize(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      tags[r] = make_tag(1, static_cast<std::uint16_t>(r));
      m.store().put(sc.node_at(r), tags[r], std::vector<double>(words, 1.0));
    }
    m.reset_stats();
  };
  Machine rotated(Hypercube(d), PortModel::kMultiPort, CostParams{1, 1, 1});
  std::vector<Tag> tags;
  fill(rotated, tags);
  coll::op_allgather(rotated, sc, tags);
  Machine single(Hypercube(d), PortModel::kMultiPort, CostParams{1, 1, 1});
  fill(single, tags);
  std::vector<std::vector<Tag>> lists(sc.size());
  for (std::uint32_t r = 0; r < sc.size(); ++r) lists[r] = {tags[r]};
  single.run(coll::rd_allgather(sc, coll::identity_order(d), lists));
  const auto r = rotated.report().totals();
  const auto s = single.report().totals();
  std::printf(
      "  allgather N=%3u M=%4zu: rotated trees b=%7.0f, single tree b=%7.0f"
      "  (x%.1f bandwidth)\n",
      1u << d, words, r.word_cost, s.word_cost, s.word_cost / r.word_cost);
}

void ablate_ring(std::uint32_t p) {
  const Grid2D grid(p);
  const std::uint32_t q = grid.q();
  const std::size_t words = 256;
  // Gray ring (library default): one round, one link per step.
  Machine gray(grid.cube(), PortModel::kOnePort, CostParams{1, 1, 1});
  const Subcube row = grid.row_chain(0);
  std::vector<std::vector<Tag>> tags(q);
  for (std::uint32_t c = 0; c < q; ++c) {
    tags[c] = {make_tag(1, static_cast<std::uint16_t>(c))};
    gray.store().put(coll::ring_node(row, c), tags[c][0],
                     std::vector<double>(words, 1.0));
  }
  gray.reset_stats();
  gray.run(coll::ring_shift_unit(row, tags, +1));
  // Binary-ordered ring: position c sits at rank c, successors are up to
  // log q hops away, so each "unit shift" is a routed permutation.
  Machine bin(grid.cube(), PortModel::kOnePort, CostParams{1, 1, 1});
  std::vector<RouteRequest> reqs;
  for (std::uint32_t c = 0; c < q; ++c) {
    const Tag t = make_tag(1, static_cast<std::uint16_t>(c));
    bin.store().put(row.node_at(c), t, std::vector<double>(words, 1.0));
    reqs.push_back({.src = row.node_at(c),
                    .dst = row.node_at((c + 1) % q),
                    .tags = {t}});
  }
  bin.reset_stats();
  bin.run(route_p2p(grid.cube(), bin.port(), reqs));
  const auto g = gray.report().totals();
  const auto b = bin.report().totals();
  std::printf(
      "  unit shift q=%2u M=%zu : gray ring a=%llu b=%5.0f, binary ring "
      "a=%llu b=%5.0f  (x%.1f words)\n",
      q, words, static_cast<unsigned long long>(g.rounds), g.word_cost,
      static_cast<unsigned long long>(b.rounds), b.word_cost,
      b.word_cost / g.word_cost);
}

}  // namespace

int main() {
  bench::header("Ablation 1: multi-port collectives — rotated trees vs single tree");
  for (const std::uint32_t d : {3u, 4u, 6u, 8u}) ablate_bcast(d, 240);
  for (const std::uint32_t d : {3u, 4u, 6u}) ablate_allgather(d, 240);
  std::printf("  -> the rotated-tree schedules deliver the log N bandwidth "
              "factor of Table 1.\n");

  bench::header("Ablation 2: Cannon's shift — Gray-code ring vs binary ring");
  for (const std::uint32_t p : {16u, 64u, 256u, 1024u}) ablate_ring(p);
  std::printf("  -> Gray embedding keeps every shift-multiply-add step at "
              "t_s + t_w*m;\n     a binary ring pays multi-hop routing on "
              "every one of the sqrt(p)-1 steps.\n");
  return 0;
}
