// Ablation: the paper's phase-synchronous accounting vs asynchronous
// execution of the same schedules.  The Machine times both side by side:
// the synchronous cost sums per-round maxima (what Table 2 charges); the
// asynchronous cost is the makespan of the transfer dependency DAG (a
// transfer leaves as soon as its payload is resident and the ports are
// free).  Uniform collectives have no slack — every transfer of round r+1
// depends on round r — while the point-to-point phases (DNS, Cannon's
// alignment) pipeline and finish early.

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/generate.hpp"

namespace {

using namespace hcmm;
using algo::AlgoId;

void run_case(AlgoId id, PortModel port, std::size_t n, std::uint32_t p) {
  const auto alg = algo::make_algorithm(id);
  if (!alg->supports(port) || !alg->applicable(n, p)) return;
  const Matrix a = random_matrix(n, n, 91);
  const Matrix b = random_matrix(n, n, 92);
  Machine machine(Hypercube::with_nodes(p), port, CostParams{150, 3, 1});
  const auto result = alg->run(a, b, machine);
  const auto t = result.report.totals();
  const double sync_total = t.time();
  const double async_total = result.report.async_makespan;
  std::printf("%-20s %-10s | sync %10.1f   async %10.1f   slack %5.1f%%\n",
              alg->name().c_str(), to_string(port), sync_total, async_total,
              100.0 * (sync_total - async_total) / std::max(1.0, sync_total));
}

}  // namespace

int main() {
  bench::header(
      "Phase-synchronous total time vs asynchronous-execution makespan, "
      "n=64 p=64");
  std::printf("%-20s %-10s | end-to-end time (ts=150 tw=3 tc=1)\n",
              "algorithm", "port");
  bench::rule();
  const AlgoId all[] = {AlgoId::kSimple,   AlgoId::kCannon,
                        AlgoId::kHJE,      AlgoId::kBerntsen,
                        AlgoId::kDNS,      AlgoId::kDiag2D,
                        AlgoId::kDiag3D,   AlgoId::kAllTrans,
                        AlgoId::kAll3D};
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    for (const AlgoId id : all) run_case(id, port, 64, 64);
    bench::rule();
  }
  std::printf(
      "\nslack = how much dependency-driven execution saves over the"
      "\n phase-synchronous model the paper analyzes.  Almost every"
      "\n schedule is barrier-tight (round r+1 really needs round r), which"
      "\n justifies the paper's per-phase accounting; the exceptions are"
      "\n 3DD's phase-2 broadcasts, which can start for the blocks that"
      "\n finish their point-to-point hop early (~8%%), and the multi-port"
      "\n 3D All / All_Trans reductions, whose rotated instances drain at"
      "\n different times (~7%%).\n");
  return 0;
}
