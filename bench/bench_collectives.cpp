// google-benchmark wall-clock benchmarks of the simulator itself: how fast
// the host executes collective schedules and full algorithm runs.  This is
// about the reproduction infrastructure (schedule building, payload
// movement), not the simulated machine's modeled time.

#include <benchmark/benchmark.h>

#include "hcmm/algo/api.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"

namespace {

using namespace hcmm;

void BM_SimAllgather(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  const std::size_t words = 1024;
  for (auto _ : state) {
    Machine m(Hypercube(d), PortModel::kOnePort, CostParams{1, 1, 1});
    const Subcube sc(0, (1u << d) - 1);
    std::vector<Tag> tags(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      tags[r] = make_tag(1, static_cast<std::uint16_t>(r));
      m.store().put(sc.node_at(r), tags[r], std::vector<double>(words, 1.0));
    }
    coll::op_allgather(m, sc, tags);
    benchmark::DoNotOptimize(m.store().words(0));
  }
}
BENCHMARK(BM_SimAllgather)->Arg(3)->Arg(5)->Arg(7);

void BM_SimAlltoallMultiport(benchmark::State& state) {
  const auto d = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    Machine m(Hypercube(d), PortModel::kMultiPort, CostParams{1, 1, 1});
    const Subcube sc(0, (1u << d) - 1);
    const std::uint32_t n = sc.size();
    std::vector<Tag> flat(static_cast<std::size_t>(n) * n);
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint32_t t = 0; t < n; ++t) {
        flat[static_cast<std::size_t>(s) * n + t] =
            make_tag(1, static_cast<std::uint16_t>(s),
                     static_cast<std::uint16_t>(t));
        m.store().put(sc.node_at(s), flat[static_cast<std::size_t>(s) * n + t],
                      std::vector<double>(d * 16, 1.0));
      }
    }
    coll::op_alltoall(m, sc, flat);
    benchmark::DoNotOptimize(m.store().words(0));
  }
}
BENCHMARK(BM_SimAlltoallMultiport)->Arg(3)->Arg(5);

void BM_AlgorithmEndToEnd(benchmark::State& state) {
  const auto id = static_cast<algo::AlgoId>(state.range(0));
  const auto alg = algo::make_algorithm(id);
  const std::size_t n = 64;
  const std::uint32_t p = 64;
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    Machine m(Hypercube::with_nodes(p), PortModel::kMultiPort,
              CostParams{150, 3, 1});
    benchmark::DoNotOptimize(alg->run(a, b, m));
  }
  state.SetLabel(alg->name());
}
BENCHMARK(BM_AlgorithmEndToEnd)
    ->Arg(static_cast<int>(algo::AlgoId::kCannon))
    ->Arg(static_cast<int>(algo::AlgoId::kHJE))
    ->Arg(static_cast<int>(algo::AlgoId::kDiag3D))
    ->Arg(static_cast<int>(algo::AlgoId::kAll3D));

}  // namespace

BENCHMARK_MAIN();
