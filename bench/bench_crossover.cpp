// Validates the paper's §5/§6 who-wins claims with *simulated end-to-end
// runs* (not just the closed forms): at concrete power-of-two machines,
// every applicable algorithm multiplies the same matrices and we rank them
// by measured communication time.
//
// Claims exercised:
//   * p <= n^{3/2}: 3D All has the least overhead (one-port and multi-port);
//   * 3DD always beats DNS, 3D All always beats All_Trans;
//   * multi-port: HJE beats Cannon where applicable;
//   * small ts flips 3DD vs Cannon in the n^{3/2} < p <= n^2 band
//     (shown with the closed forms at scale, since p > n^{3/2} machines of
//     feasible simulated size have tiny blocks).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/cost/model.hpp"
#include "hcmm/matrix/generate.hpp"

namespace {

using namespace hcmm;
using algo::AlgoId;

void rank_at(std::size_t n, std::uint32_t p, PortModel port,
             const CostParams& cp) {
  struct Row {
    std::string name;
    double comm;
    double total;
  };
  std::vector<Row> rows;
  const Matrix a = random_matrix(n, n, 41);
  const Matrix b = random_matrix(n, n, 42);
  for (const auto& alg : algo::all_algorithms()) {
    if (!alg->supports(port) || !alg->applicable(n, p)) continue;
    Machine machine(Hypercube::with_nodes(p), port, cp);
    const auto result = alg->run(a, b, machine);
    const auto t = result.report.totals();
    rows.push_back({alg->name(), t.comm_time, t.time()});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.comm < y.comm; });
  std::printf("\n n=%zu p=%u %s (ts=%.0f tw=%.0f): ranking by measured comm time\n",
              n, p, to_string(port), cp.ts, cp.tw);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("   %zu. %-20s comm %12.1f   total %12.1f\n", i + 1,
                rows[i].name.c_str(), rows[i].comm, rows[i].total);
  }
}

}  // namespace

int main() {
  bench::header("Crossover study: simulated end-to-end rankings (paper §5-§6)");
  const CostParams headline{150.0, 3.0, 1.0};
  const CostParams tiny_ts{2.0, 3.0, 1.0};

  // Region p <= n^{3/2}: 3D All should rank first in every panel below.
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    rank_at(64, 64, port, headline);
    rank_at(128, 64, port, headline);
    rank_at(64, 512, port, headline);
    rank_at(128, 512, port, headline);
    rank_at(64, 256, port, headline);  // p = q^4: includes the rect grid
  }
  // Very small ts promotes the shift-based algorithms.
  rank_at(128, 64, PortModel::kOnePort, tiny_ts);
  rank_at(128, 64, PortModel::kMultiPort, tiny_ts);

  // The n^{3/2} < p <= n^2 band at realistic scale via the closed forms.
  bench::header("n^{3/2} < p <= n^2 band (closed forms, n=256, p=32768)");
  const double n = 256;
  const double p = 32768;
  for (const auto* cp : {&headline, &tiny_ts}) {
    algo::AlgoId best{};
    const auto cands = cost::contenders(PortModel::kOnePort);
    (void)cost::best_algorithm(PortModel::kOnePort, n, p, *cp, cands, best);
    std::printf("  ts=%-4.0f tw=%.0f : winner %s   (Cannon %.0f vs 3DD %.0f)\n",
                cp->ts, cp->tw, algo::to_string(best),
                cost::table2(AlgoId::kCannon, PortModel::kOnePort, n, p)
                    .time(*cp),
                cost::table2(AlgoId::kDiag3D, PortModel::kOnePort, n, p)
                    .time(*cp));
  }
  std::printf(
      "\nExpected: 3D All first everywhere above; in the band, 3DD wins at"
      "\n ts=150 and Cannon at ts=2 — the crossover of Fig. 13.\n");
  return 0;
}
