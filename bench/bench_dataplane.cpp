// A/B harness for the zero-copy data plane and the gemm kernel ladder.  Two
// deterministic configurations of the same simulated run:
//
//   optimized  = CopyPolicy::kZeroCopy  + GemmKernel::kMicro
//   baseline   = CopyPolicy::kDeepCopy  + GemmKernel::kLegacyTiled
//
// Both must produce bit-identical products and identical charged (a, b)
// costs — the data plane is host bookkeeping only — while the optimized
// configuration moves far fewer host words and finishes faster.  The copy
// counters are deterministic, so the harness *asserts* on them (exit 1 on a
// regression) and merely reports wall-clock, which is noisy on shared CI.
//
// The kernel section times four rungs of the ladder per size: naive (only
// at sizes where it is not painfully slow; recorded as null when skipped),
// the legacy tiled and register-blocked micro kernels (bit-identical by
// construction, asserted), and the SIMD vector path behind
// gemm_accumulate_fast (ULP-gated against the bit-exact micro result with
// the gemm_tolerance error model — never bit-compared).  When a SIMD ISA is
// dispatched, conservative GFLOP/s floors and a best-to-worst decay band
// across the full sizes gate the run (exit 1), so a vectorization
// regression fails perf-smoke; the scalar fallback build skips the floors
// but still takes the ULP gate.
//
//   bench_dataplane [--smoke] [--gemm-out PATH] [--dataplane-out PATH]
//
// Writes BENCH_GEMM.json (kernel GFLOP/s) and BENCH_DATAPLANE.json (store
// microbench + end-to-end run) to the given paths (default: cwd).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/gemm_verify.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/store.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int g_failures = 0;

void expect(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++g_failures;
}

// ------------------------------------------------------------ kernel bench

struct KernelResult {
  std::size_t m, k, n;
  bool has_naive = false;      // naive skipped (too slow) -> null in JSON
  double naive_gflops = 0.0;
  double legacy_gflops = 0.0;
  double micro_gflops = 0.0;
  double vector_gflops = 0.0;
  std::uint64_t vector_max_ulp = 0;  // worst ULP distance vs the oracle
  double vector_tolerance = 0.0;     // gemm_tolerance bound applied
};

double time_gflops(std::size_t m, std::size_t k, std::size_t n,
                   const std::function<void()>& run, int reps) {
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    run();
    best_ms = std::min(best_ms, ms_since(t0));
  }
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  return flops / (best_ms * 1e6);
}

KernelResult bench_kernels(std::size_t m, std::size_t k, std::size_t n,
                           bool with_naive, int reps) {
  const Matrix a = random_matrix(m, k, 42);
  const Matrix b = random_matrix(k, n, 43);
  KernelResult out{m, k, n};
  Matrix sink(m, n);
  if (with_naive) {
    out.has_naive = true;
    out.naive_gflops =
        time_gflops(m, k, n, [&] { sink = multiply_naive(a, b); }, reps);
  }
  set_gemm_kernel(GemmKernel::kLegacyTiled);
  out.legacy_gflops =
      time_gflops(m, k, n, [&] { sink = multiply_tiled(a, b); }, reps);
  const Matrix legacy_c = sink;
  set_gemm_kernel(GemmKernel::kMicro);
  out.micro_gflops =
      time_gflops(m, k, n, [&] { sink = multiply_tiled(a, b); }, reps);
  expect(max_abs_diff(legacy_c, sink) <= 0.0,
         "micro and legacy kernels agree bit-for-bit");

  // Vector path: time the accumulate call the SPMD runtime makes (the
  // output is preallocated there too, so allocation is rightly excluded),
  // then ULP-gate one clean product against the bit-exact micro result.
  const Matrix oracle = sink;
  Matrix vec(m, n);
  out.vector_gflops =
      time_gflops(m, k, n, [&] { gemm_accumulate_fast(a, b, vec); }, reps);
  Matrix clean(m, n);
  gemm_accumulate_fast(a, b, clean);
  const GemmCompare cmp = compare_gemm(clean, oracle, k, max_abs(a),
                                       max_abs(b));
  out.vector_max_ulp = cmp.max_ulp;
  out.vector_tolerance = cmp.tolerance;
  expect(cmp.ok, "vector kernel within ULP-ladder tolerance of the oracle");
  return out;
}

// ------------------------------------------------------- store microbench

struct StoreBenchResult {
  std::size_t words = 0;
  int iters = 0;
  double zero_copy_ms = 0.0;
  double deep_copy_ms = 0.0;
  DataPlaneStats zero_plane;
  DataPlaneStats deep_plane;
};

StoreBenchResult bench_store_ops(std::size_t words, int iters) {
  StoreBenchResult out;
  out.words = words;
  out.iters = iters;
  const Tag t1 = make_tag(1, 1);
  const Tag t2 = make_tag(1, 2);
  for (const auto policy : {CopyPolicy::kZeroCopy, CopyPolicy::kDeepCopy}) {
    DataStore st(1);
    st.set_copy_policy(policy);
    std::vector<double> data(words, 1.0);
    st.put(0, t1, std::move(data));
    const auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) {
      const auto parts = st.split(0, t1, 8);
      st.join(0, parts, t2);
      const Payload addend = st.get(0, t2);  // shared addend: clone path
      st.combine(0, t2, addend);
      // Rename back for the next iteration.
      Payload p = st.get(0, t2);
      st.erase(0, t2);
      st.put_shared(0, t1, std::move(p));
    }
    const double ms = ms_since(t0);
    if (policy == CopyPolicy::kZeroCopy) {
      out.zero_copy_ms = ms;
      out.zero_plane = st.plane_stats();
    } else {
      out.deep_copy_ms = ms;
      out.deep_plane = st.plane_stats();
    }
  }
  expect(out.zero_plane.words_aliased > 0,
         "store microbench: zero-copy aliases split/join");
  expect(out.deep_plane.words_aliased == 0,
         "store microbench: deep-copy never aliases");
  expect(out.zero_plane.words_copied < out.deep_plane.words_copied,
         "store microbench: zero-copy copies fewer words");
  return out;
}

// -------------------------------------------------------------- end-to-end

struct RunSample {
  double wall_ms = 0.0;
  PhaseStats totals;
  std::uint64_t peak_words = 0;
  Matrix c;
};

RunSample run_once(algo::DistributedMatmul& alg, const Matrix& a,
                   const Matrix& b, std::uint32_t nodes, CopyPolicy policy,
                   GemmKernel kernel) {
  set_gemm_kernel(kernel);
  Machine m(Hypercube::with_nodes(nodes), PortModel::kOnePort,
            CostParams{150.0, 3.0, 1.0});
  m.store().set_copy_policy(policy);
  const auto t0 = Clock::now();
  auto res = alg.run(a, b, m);
  RunSample out;
  out.wall_ms = ms_since(t0);
  out.totals = res.report.totals();
  out.peak_words = res.report.peak_words_total;
  out.c = std::move(res.c);
  set_gemm_kernel(GemmKernel::kMicro);
  return out;
}

RunSample best_of(algo::DistributedMatmul& alg, const Matrix& a,
                  const Matrix& b, std::uint32_t nodes, CopyPolicy policy,
                  GemmKernel kernel, int reps) {
  RunSample best = run_once(alg, a, b, nodes, policy, kernel);
  for (int r = 1; r < reps; ++r) {
    RunSample s = run_once(alg, a, b, nodes, policy, kernel);
    expect(s.totals.words_copied == best.totals.words_copied &&
               s.totals.words_aliased == best.totals.words_aliased,
           "copy counters deterministic across repeats");
    if (s.wall_ms < best.wall_ms) best = std::move(s);
  }
  return best;
}

// ------------------------------------------------------------------- JSON

void json_plane(FILE* f, const PhaseStats& t) {
  std::fprintf(f,
               "{\"words_copied\": %llu, \"words_aliased\": %llu, "
               "\"combines_in_place\": %llu, \"combines_copied\": %llu}",
               static_cast<unsigned long long>(t.words_copied),
               static_cast<unsigned long long>(t.words_aliased),
               static_cast<unsigned long long>(t.combines_in_place),
               static_cast<unsigned long long>(t.combines_copied));
}

}  // namespace
}  // namespace hcmm

int main(int argc, char** argv) {
  using namespace hcmm;
  bool smoke = false;
  std::string gemm_out = "BENCH_GEMM.json";
  std::string plane_out = "BENCH_DATAPLANE.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gemm-out") == 0 && i + 1 < argc) {
      gemm_out = argv[++i];
    } else if (std::strcmp(argv[i], "--dataplane-out") == 0 && i + 1 < argc) {
      plane_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_dataplane [--smoke] [--gemm-out PATH] "
                   "[--dataplane-out PATH]\n");
      return 2;
    }
  }

  // ---- kernel GFLOP/s ----------------------------------------------------
  const GemmIdent vec_ident = gemm_vector_ident();
  const bool simd = vec_ident.isa != "scalar";
  std::printf("== gemm kernels (vector: %s %zux%zu) ==\n",
              vec_ident.isa.c_str(), vec_ident.mr, vec_ident.nr);
  std::vector<KernelResult> kernels;
  if (smoke) {
    kernels.push_back(bench_kernels(128, 128, 128, true, 3));
    kernels.push_back(bench_kernels(256, 256, 256, false, 3));
  } else {
    kernels.push_back(bench_kernels(256, 256, 256, true, 5));
    kernels.push_back(bench_kernels(512, 512, 512, false, 5));
    kernels.push_back(bench_kernels(1024, 1024, 1024, false, 3));
  }
  for (const auto& k : kernels) {
    char naive[32];
    if (k.has_naive) {
      std::snprintf(naive, sizeof naive, "%6.2f", k.naive_gflops);
    } else {
      std::snprintf(naive, sizeof naive, "  skip");
    }
    std::printf("  %4zux%4zux%4zu  naive %s  legacy %6.2f  micro %6.2f  "
                "vector %6.2f GFLOP/s  (vector/micro %.2fx, max %llu ulp)\n",
                k.m, k.k, k.n, naive, k.legacy_gflops, k.micro_gflops,
                k.vector_gflops, k.vector_gflops / k.micro_gflops,
                static_cast<unsigned long long>(k.vector_max_ulp));
  }

  // ---- GFLOP/s gates ------------------------------------------------------
  // Conservative floors: this machine sustains ~50 GFLOP/s on the AVX-512
  // path, so a 10 GFLOP/s floor (6 in smoke mode, whose shapes are smaller
  // and reps fewer) only trips on a real vectorization regression — e.g.
  // the dispatch silently landing on the scalar kernel — while leaving
  // ~5x headroom for slower shared CI silicon.  Skipped entirely when the
  // build has no SIMD kernels (HCMM_SIMD=OFF): a floor would then gate the
  // scalar kernel, which the ULP checks above already cover.  Also skipped
  // under sanitizers (HCMM_SANITIZED): shadow-memory checks on every packed
  // load/store cost ~25x, which no floor can straddle meaningfully.
#if defined(HCMM_SANITIZED)
  constexpr bool kSanitized = true;
#else
  constexpr bool kSanitized = false;
#endif
  if (simd && !kSanitized) {
    const double floor_gflops = smoke ? 6.0 : 10.0;
    double best = 0.0, worst = 1e300;
    for (const auto& k : kernels) {
      char label[96];
      std::snprintf(label, sizeof label,
                    "vector >= %.0f GFLOP/s at n=%zu (got %.2f)",
                    floor_gflops, k.n, k.vector_gflops);
      expect(k.vector_gflops >= floor_gflops, label);
      best = std::max(best, k.vector_gflops);
      worst = std::min(worst, k.vector_gflops);
    }
    if (!smoke) {
      // The blocking hierarchy exists to hold GFLOP/s flat as operands fall
      // out of cache; a decay cliff between n=256 and n=1024 means a block
      // size regressed.  (Smoke runs too few reps for this to be stable.)
      char label[96];
      std::snprintf(label, sizeof label,
                    "vector best-to-worst decay %.2fx within 1.5x band",
                    best / worst);
      expect(best <= 1.5 * worst, label);
    }
  } else {
    std::printf("  (GFLOP/s floors skipped: %s)\n",
                kSanitized ? "sanitized build" : "no SIMD ISA dispatched");
  }

  // ---- store ops ---------------------------------------------------------
  std::printf("== store split/join/combine ==\n");
  const StoreBenchResult st =
      bench_store_ops(smoke ? (1u << 16) : (1u << 20), smoke ? 20 : 50);
  std::printf("  %zu words x %d iters: zero-copy %.2f ms, deep-copy %.2f ms\n",
              st.words, st.iters, st.zero_copy_ms, st.deep_copy_ms);

  // ---- end-to-end --------------------------------------------------------
  const std::size_t n = smoke ? 256 : 1024;
  const std::uint32_t nodes = 64;
  std::printf("== end-to-end: 3D Diagonal, %u nodes, n=%zu ==\n", nodes, n);
  const Matrix a = random_matrix(n, n, 1001);
  const Matrix b = random_matrix(n, n, 1002);
  const auto alg = algo::make_algorithm(algo::AlgoId::kDiag3D);
  const int reps = smoke ? 2 : 3;
  const RunSample opt = best_of(*alg, a, b, nodes, CopyPolicy::kZeroCopy,
                                GemmKernel::kMicro, reps);
  const RunSample base = best_of(*alg, a, b, nodes, CopyPolicy::kDeepCopy,
                                 GemmKernel::kLegacyTiled, reps);

  expect(max_abs_diff(opt.c, base.c) <= 0.0,
         "optimized and baseline products bit-identical");
  expect(opt.totals.rounds == base.totals.rounds &&
             opt.totals.word_cost == base.totals.word_cost &&
             opt.totals.comm_time == base.totals.comm_time &&
             opt.totals.flops == base.totals.flops,
         "charged (a, b) costs identical under both configurations");
  expect(opt.peak_words == base.peak_words,
         "logical peak words identical under both configurations");
  expect(opt.totals.words_copied * 5 <= base.totals.words_copied,
         "zero-copy moves at least 5x fewer host words");
  const double speedup = base.wall_ms / opt.wall_ms;
  const double copy_reduction =
      static_cast<double>(base.totals.words_copied) /
      static_cast<double>(std::max<std::uint64_t>(1, opt.totals.words_copied));
  std::printf("  optimized  %8.2f ms  copied %10llu  aliased %10llu\n",
              opt.wall_ms,
              static_cast<unsigned long long>(opt.totals.words_copied),
              static_cast<unsigned long long>(opt.totals.words_aliased));
  std::printf("  baseline   %8.2f ms  copied %10llu  aliased %10llu\n",
              base.wall_ms,
              static_cast<unsigned long long>(base.totals.words_copied),
              static_cast<unsigned long long>(base.totals.words_aliased));
  std::printf("  wall-clock speedup %.2fx, copy reduction %.1fx\n", speedup,
              copy_reduction);

  // ---- artifacts ---------------------------------------------------------
  if (FILE* f = std::fopen(gemm_out.c_str(), "w")) {
    std::fprintf(f,
                 "{\"unit\": \"GFLOP/s\", \"smoke\": %s, "
                 "\"vector_isa\": \"%s\", \"vector_mr\": %zu, "
                 "\"vector_nr\": %zu, \"kernels\": [",
                 smoke ? "true" : "false", vec_ident.isa.c_str(),
                 vec_ident.mr, vec_ident.nr);
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      const auto& k = kernels[i];
      char naive[32];
      if (k.has_naive) {
        std::snprintf(naive, sizeof naive, "%.3f", k.naive_gflops);
      } else {
        std::snprintf(naive, sizeof naive, "null");  // skipped, not 0 GFLOP/s
      }
      std::fprintf(f,
                   "%s\n  {\"m\": %zu, \"k\": %zu, \"n\": %zu, "
                   "\"naive\": %s, \"legacy_tiled\": %.3f, \"micro\": %.3f, "
                   "\"vector\": %.3f, \"micro_vs_legacy\": %.3f, "
                   "\"vector_vs_micro\": %.3f, \"vector_max_ulp\": %llu, "
                   "\"vector_tolerance\": %.3e}",
                   i ? "," : "", k.m, k.k, k.n, naive, k.legacy_gflops,
                   k.micro_gflops, k.vector_gflops,
                   k.micro_gflops / k.legacy_gflops,
                   k.vector_gflops / k.micro_gflops,
                   static_cast<unsigned long long>(k.vector_max_ulp),
                   k.vector_tolerance);
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", gemm_out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", gemm_out.c_str());
    return 1;
  }

  if (FILE* f = std::fopen(plane_out.c_str(), "w")) {
    std::fprintf(
        f,
        "{\"smoke\": %s, \"store_microbench\": {\"words\": %zu, "
        "\"iters\": %d, \"zero_copy_ms\": %.3f, \"deep_copy_ms\": %.3f, "
        "\"zero_copy_words_copied\": %llu, \"deep_copy_words_copied\": "
        "%llu},\n \"end_to_end\": {\"algo\": \"3D Diagonal\", \"nodes\": %u, "
        "\"n\": %zu, \"port\": \"one-port\", \"repeats\": %d,\n",
        smoke ? "true" : "false", st.words, st.iters, st.zero_copy_ms,
        st.deep_copy_ms,
        static_cast<unsigned long long>(st.zero_plane.words_copied),
        static_cast<unsigned long long>(st.deep_plane.words_copied), nodes, n,
        reps);
    std::fprintf(f,
                 "  \"optimized\": {\"gemm_kernel\": \"micro\", "
                 "\"gemm_isa\": \"scalar-exact\", \"wall_ms\": %.3f, "
                 "\"plane\": ",
                 opt.wall_ms);
    json_plane(f, opt.totals);
    std::fprintf(f,
                 "},\n  \"baseline\": {\"gemm_kernel\": \"legacy_tiled\", "
                 "\"gemm_isa\": \"scalar-exact\", \"wall_ms\": %.3f, "
                 "\"plane\": ",
                 base.wall_ms);
    json_plane(f, base.totals);
    std::fprintf(f,
                 "},\n  \"wall_clock_speedup\": %.3f, "
                 "\"copy_reduction\": %.3f},\n \"checks_failed\": %d}\n",
                 speedup, copy_reduction, g_failures);
    std::fclose(f);
    std::printf("wrote %s\n", plane_out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", plane_out.c_str());
    return 1;
  }

  if (g_failures != 0) {
    std::fprintf(stderr, "%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
