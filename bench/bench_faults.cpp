// Fault-tolerance overhead on a 64-node cube: how much simulated time the
// layered recovery machinery (retry with backoff, fault-aware rerouting,
// subcube contraction) costs relative to a clean run of the same algorithm.
// Three sweeps:
//   1. transient drop probability — retries and backoff delay;
//   2. failed-link count — detours (extra hops and serialized start-ups);
//   3. correlated-burst vs independent fault processes at equal mean drop
//      rate — how much the *temporal structure* of faults costs on top of
//      their mass (bursts pile retries onto the same backoff ladder).
// Every run is seeded and deterministic, so the printed overheads are
// reproducible numbers, not noise.
//
// Usage: bench_faults [--json] [--out FILE]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <chrono>

#include "bench_util.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/fault/fuzz.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/runtime/socket_transport.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"
#include "hcmm/runtime/team.hpp"
#include "hcmm/sim/machine.hpp"

namespace {

using namespace hcmm;

constexpr std::uint32_t kDim = 6;
constexpr std::size_t kN = 64;

struct Row {
  std::string algorithm;
  std::string sweep;      // "drop_prob", "failed_links", "fault_process"
                          // or "wire_drop"
  double knob = 0.0;      // p_drop or link count
  PhaseStats totals;
  double time = 0.0;
  double overhead = 0.0;  // fraction of the clean-run time
  std::string process;    // "independent" / "burst" for the process sweep
  std::string backend;    // transport the faults ran over ("simulator" for
                          // the modeled sweeps, Transport::name() otherwise)
  std::string spec;       // fault::plan_spec reproducer of the fault process
};

double clean_time(const algo::DistributedMatmul& alg, const Matrix& a,
                  const Matrix& b, PortModel port) {
  Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
  const auto rep = alg.run(a, b, m).report;
  const auto t = rep.totals();
  return t.comm_time + t.compute_time;
}

void sweep_drop_prob(const algo::DistributedMatmul& alg, const Matrix& a,
                     const Matrix& b, PortModel port, double base,
                     std::vector<Row>& rows, bool table) {
  if (table) {
    bench::header(alg.name() + " (" + to_string(port) +
                  "): transient drop probability sweep");
    std::printf("  %-8s %10s %10s %12s %10s\n", "p_drop", "retries",
                "delay", "time", "overhead");
  }
  for (const double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    fault::FaultPlan plan;
    plan.transient.seed = 2026;
    plan.transient.drop_prob = p;
    plan.transient.max_attempts = 12;
    plan.transient.backoff_base = 10.0;
    Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
    const auto t = alg.run(a, b, m).report.totals();
    const double time = t.comm_time + t.compute_time;
    if (table) {
      std::printf("  %-8.2f %10llu %10.0f %12.0f %9.1f%%\n", p,
                  static_cast<unsigned long long>(t.retries), t.fault_delay,
                  time, 100.0 * (time - base) / base);
    }
    rows.push_back({alg.name(), "drop_prob", p, t, time, (time - base) / base,
                    "", "simulator", fault::plan_spec(plan)});
  }
}

void sweep_failed_links(const algo::DistributedMatmul& alg, const Matrix& a,
                        const Matrix& b, PortModel port, double base,
                        std::vector<Row>& rows, bool table) {
  if (table) {
    bench::header(alg.name() + " (" + to_string(port) +
                  "): failed-link count sweep");
    std::printf("  %-8s %10s %10s %12s %10s\n", "links", "reroutes",
                "extra_hops", "time", "overhead");
  }
  for (const std::uint32_t count : {0u, 1u, 2u, 4u, 8u}) {
    fault::FaultPlan plan;
    plan.set = fault::random_connected_link_faults(Hypercube(kDim), 7, count);
    Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
    const auto t = alg.run(a, b, m).report.totals();
    const double time = t.comm_time + t.compute_time;
    const auto links = plan.set.failed_links().size();
    if (table) {
      std::printf("  %-8u %10llu %10llu %12.0f %9.1f%%\n",
                  static_cast<unsigned>(links),
                  static_cast<unsigned long long>(t.reroutes),
                  static_cast<unsigned long long>(t.extra_hops), time,
                  100.0 * (time - base) / base);
    }
    rows.push_back({alg.name(), "failed_links", static_cast<double>(links), t,
                    time, (time - base) / base, "", "simulator",
                    fault::plan_spec(plan)});
  }
}

void sweep_fault_process(const algo::DistributedMatmul& alg, const Matrix& a,
                         const Matrix& b, PortModel port, double base,
                         std::vector<Row>& rows, bool table) {
  // Equal fault mass, different temporal structure: independent per-attempt
  // drops at p versus burst-modulated drops whose base rate is halved while
  // windows of 2 rounds per 8-round cycle multiply it by 5 — the
  // cycle-averaged multiplier (2*5 + 6)/8 = 2 restores the same mean p, so
  // any overhead gap is purely the cost of correlation.
  if (table) {
    bench::header(alg.name() + " (" + to_string(port) +
                  "): burst vs independent fault process (equal mean p)");
    std::printf("  %-8s %-12s %10s %10s %12s %10s\n", "p_drop", "process",
                "retries", "delay", "time", "overhead");
  }
  for (const double p : {0.01, 0.02, 0.05, 0.10}) {
    for (const bool burst : {false, true}) {
      fault::FaultPlan plan;
      plan.transient.seed = 2027;
      plan.transient.max_attempts = 12;
      plan.transient.backoff_base = 10.0;
      if (burst) {
        plan.transient.drop_prob = p / 2.0;
        plan.transient.burst.period = 8;
        plan.transient.burst.len = 2;
        plan.transient.burst.factor = 5.0;
      } else {
        plan.transient.drop_prob = p;
      }
      Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
      m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
      const auto t = alg.run(a, b, m).report.totals();
      const double time = t.comm_time + t.compute_time;
      const char* name = burst ? "burst" : "independent";
      if (table) {
        std::printf("  %-8.2f %-12s %10llu %10.0f %12.0f %9.1f%%\n", p, name,
                    static_cast<unsigned long long>(t.retries), t.fault_delay,
                    time, 100.0 * (time - base) / base);
      }
      rows.push_back({alg.name(), "fault_process", p, t, time,
                      (time - base) / base, name, "simulator",
                      fault::plan_spec(plan)});
    }
  }
}

void sweep_wire(std::vector<Row>& rows, bool table) {
  // The same question asked of real I/O: what does frame loss cost in wall
  // clock when recovery is the socket transport's ARQ instead of the
  // simulator's ladder?  SPMD Cannon on 4 ranks over loopback sockets; the
  // p = 0 row is the clean baseline.
  using namespace std::chrono_literals;
  const Matrix a = random_matrix(16, 16, 43);
  const Matrix b = random_matrix(16, 16, 44);
  if (table) {
    bench::header("spmd_cannon over sockets: wire drop probability sweep");
    std::printf("  %-8s %-14s %12s %12s %10s\n", "p_drop", "backend",
                "retransmits", "time_us", "overhead");
  }
  double base = 0.0;
  for (const double p : {0.0, 0.02, 0.05, 0.10}) {
    fault::FaultPlan plan;
    plan.wire.seed = 2028;
    plan.wire.drop_prob = p;
    rt::Team team(rt::make_socket_transport(4, 10s, plan.wire), 10s);
    (void)rt::spmd_cannon(team, a, b);  // warm the connections
    const auto t0 = std::chrono::steady_clock::now();
    (void)rt::spmd_cannon(team, a, b);
    const double time = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (p == 0.0) base = time;
    const rt::WireStats ws = team.wire_stats();
    PhaseStats t{};
    t.retries = ws.retransmits;
    if (table) {
      std::printf("  %-8.2f %-14s %12llu %12.0f %9.1f%%\n", p,
                  team.transport().name(),
                  static_cast<unsigned long long>(ws.retransmits), time,
                  100.0 * (time - base) / base);
    }
    rows.push_back({"spmd_cannon", "wire_drop", p, t, time,
                    (time - base) / base, "", team.transport().name(),
                    fault::plan_spec(plan)});
  }
}

std::string rows_json(const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\"cube\": " << (1u << kDim) << ", \"n\": " << kN << ", \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i != 0) os << ", ";
    os << "{\"algorithm\": \"" << r.algorithm << "\", \"sweep\": \"" << r.sweep
       << "\", \"knob\": " << r.knob << ", \"retries\": " << r.totals.retries
       << ", \"reroutes\": " << r.totals.reroutes
       << ", \"extra_hops\": " << r.totals.extra_hops
       << ", \"fault_startups\": " << r.totals.fault_startups
       << ", \"fault_delay\": " << r.totals.fault_delay
       << ", \"time\": " << r.time << ", \"overhead\": " << r.overhead;
    if (!r.process.empty()) os << ", \"process\": \"" << r.process << "\"";
    os << ", \"backend\": \"" << r.backend << "\", \"spec\": \"" << r.spec
       << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_faults [--json] [--out FILE]\n";
      return 2;
    }
  }

  std::vector<Row> rows;
  const Matrix a = random_matrix(kN, kN, 41);
  const Matrix b = random_matrix(kN, kN, 42);
  for (const auto id : {algo::AlgoId::kCannon, algo::AlgoId::kAll3D}) {
    const auto alg = algo::make_algorithm(id);
    const PortModel port = PortModel::kOnePort;
    if (!alg->supports(port) || !alg->applicable(kN, 1u << kDim)) continue;
    const double base = clean_time(*alg, a, b, port);
    sweep_drop_prob(*alg, a, b, port, base, rows, !json);
    sweep_failed_links(*alg, a, b, port, base, rows, !json);
    sweep_fault_process(*alg, a, b, port, base, rows, !json);
  }
  sweep_wire(rows, !json);

  const std::string doc = rows_json(rows);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << doc << "\n";
  }
  if (json) std::cout << doc << "\n";
  return 0;
}
