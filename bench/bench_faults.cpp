// Fault-tolerance overhead on a 64-node cube: how much simulated time the
// layered recovery machinery (retry with backoff, fault-aware rerouting,
// subcube contraction) costs relative to a clean run of the same algorithm.
// Two sweeps:
//   1. transient drop probability — retries and backoff delay;
//   2. failed-link count — detours (extra hops and serialized start-ups).
// Every run is seeded and deterministic, so the printed overheads are
// reproducible numbers, not noise.

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"

namespace {

using namespace hcmm;

constexpr std::uint32_t kDim = 6;
constexpr std::size_t kN = 64;

double clean_time(const algo::DistributedMatmul& alg, const Matrix& a,
                  const Matrix& b, PortModel port) {
  Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
  const auto rep = alg.run(a, b, m).report;
  const auto t = rep.totals();
  return t.comm_time + t.compute_time;
}

void sweep_drop_prob(const algo::DistributedMatmul& alg, const Matrix& a,
                     const Matrix& b, PortModel port, double base) {
  bench::header(alg.name() + " (" + to_string(port) +
                "): transient drop probability sweep");
  std::printf("  %-8s %10s %10s %12s %10s\n", "p_drop", "retries",
              "delay", "time", "overhead");
  for (const double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    fault::FaultPlan plan;
    plan.transient.seed = 2026;
    plan.transient.drop_prob = p;
    plan.transient.max_attempts = 12;
    plan.transient.backoff_base = 10.0;
    Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
    const auto t = alg.run(a, b, m).report.totals();
    const double time = t.comm_time + t.compute_time;
    std::printf("  %-8.2f %10llu %10.0f %12.0f %9.1f%%\n", p,
                static_cast<unsigned long long>(t.retries), t.fault_delay,
                time, 100.0 * (time - base) / base);
  }
}

void sweep_failed_links(const algo::DistributedMatmul& alg, const Matrix& a,
                        const Matrix& b, PortModel port, double base) {
  bench::header(alg.name() + " (" + to_string(port) +
                "): failed-link count sweep");
  std::printf("  %-8s %10s %10s %12s %10s\n", "links", "reroutes",
              "extra_hops", "time", "overhead");
  for (const std::uint32_t count : {0u, 1u, 2u, 4u, 8u}) {
    fault::FaultPlan plan;
    plan.set = fault::random_connected_link_faults(Hypercube(kDim), 7, count);
    Machine m(Hypercube(kDim), port, CostParams{150, 3, 1});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
    const auto t = alg.run(a, b, m).report.totals();
    const double time = t.comm_time + t.compute_time;
    std::printf("  %-8u %10llu %10llu %12.0f %9.1f%%\n",
                static_cast<unsigned>(plan.set.failed_links().size()),
                static_cast<unsigned long long>(t.reroutes),
                static_cast<unsigned long long>(t.extra_hops), time,
                100.0 * (time - base) / base);
  }
}

}  // namespace

int main() {
  const Matrix a = random_matrix(kN, kN, 41);
  const Matrix b = random_matrix(kN, kN, 42);
  for (const auto id : {algo::AlgoId::kCannon, algo::AlgoId::kAll3D}) {
    const auto alg = algo::make_algorithm(id);
    const PortModel port = PortModel::kOnePort;
    if (!alg->supports(port) || !alg->applicable(kN, 1u << kDim)) continue;
    const double base = clean_time(*alg, a, b, port);
    sweep_drop_prob(*alg, a, b, port, base);
    sweep_failed_links(*alg, a, b, port, base);
  }
  return 0;
}
