// Reproduces Figure 13 of the paper: for one-port hypercubes, which
// algorithm has the least communication overhead in each region of the
// (n, p) parameter space.  Four panels for four (t_s, t_w) settings — the
// paper names (150, 3) explicitly and "very small values of t_s"; the
// remaining sets are representative interpolations (see DESIGN.md).
//
// Legend: A = 3D All, D = 3D Diagonal, B = Berntsen, C = Cannon,
//         . = no contender applicable (p > n^3).

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/cost/model.hpp"

int main() {
  using namespace hcmm;
  const CostParams panels[] = {
      {150.0, 3.0, 1.0}, {50.0, 3.0, 1.0}, {10.0, 3.0, 1.0}, {2.0, 3.0, 1.0}};
  const char* names[] = {"(a) ts=150 tw=3", "(b) ts=50 tw=3",
                         "(c) ts=10 tw=3", "(d) ts=2 tw=3 (very small ts)"};
  const auto cands = cost::contenders(PortModel::kOnePort);
  bench::header("Figure 13: best algorithm regions, ONE-PORT hypercubes");
  std::printf("contenders: Cannon (C), Berntsen (B), 3DD (D), 3D All (A)\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("\n--- %s ---\n", names[i]);
    std::printf("%s", cost::region_map(PortModel::kOnePort, panels[i], cands,
                                       /*log2n*/ 4.0, 14.0,
                                       /*log2p*/ 3.0, 33.0,
                                       /*cols*/ 56, /*rows*/ 26)
                          .c_str());
  }
  std::printf(
      "\nExpected shape (paper §5.1): 3D All (A) fills p <= n^{3/2}; 3DD (D)"
      "\n rules n^{3/2} < p <= n^3 at large ts, ceding ground to Cannon (C)"
      "\n in n^{3/2} < p <= n^2 as ts shrinks.\n");
  return 0;
}
