// Reproduces Figure 14 of the paper: best-algorithm regions for MULTI-PORT
// hypercubes, same four (t_s, t_w) panels as Figure 13.  The multi-port
// contender set adds Ho–Johnsson–Edelman (H), which replaces Cannon
// wherever its n >= sqrt(p) log sqrt(p) condition holds.
//
// Legend: A = 3D All, D = 3D Diagonal, B = Berntsen, H = HJE, C = Cannon,
//         . = no contender applicable.

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/cost/model.hpp"

int main() {
  using namespace hcmm;
  const CostParams panels[] = {
      {150.0, 3.0, 1.0}, {50.0, 3.0, 1.0}, {10.0, 3.0, 1.0}, {2.0, 3.0, 1.0}};
  const char* names[] = {"(a) ts=150 tw=3", "(b) ts=50 tw=3",
                         "(c) ts=10 tw=3", "(d) ts=2 tw=3 (very small ts)"};
  const auto cands = cost::contenders(PortModel::kMultiPort);
  bench::header("Figure 14: best algorithm regions, MULTI-PORT hypercubes");
  std::printf(
      "contenders: Cannon (C), HJE (H), Berntsen (B), 3DD (D), 3D All (A)\n");
  for (int i = 0; i < 4; ++i) {
    std::printf("\n--- %s ---\n", names[i]);
    std::printf("%s", cost::region_map(PortModel::kMultiPort, panels[i], cands,
                                       /*log2n*/ 4.0, 14.0,
                                       /*log2p*/ 3.0, 33.0,
                                       /*cols*/ 56, /*rows*/ 26)
                          .c_str());
  }
  std::printf(
      "\nExpected shape (paper §5.2): 3D All (A) wins wherever applicable;"
      "\n in n^{3/2} < p <= n^2, 3DD (D) and Cannon/HJE split the region,"
      "\n Cannon edging 3DD only at very small ts.\n");
  return 0;
}
