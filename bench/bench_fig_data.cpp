// Machine-readable companion to bench_fig13 / bench_fig14: emits the full
// best-algorithm dataset as CSV (stdout) so the figures can be re-plotted
// with any tool.  One block per (port, t_s) panel.

#include <cstdio>

#include "hcmm/cost/model.hpp"

int main() {
  using namespace hcmm;
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    const auto cands = cost::contenders(port);
    for (const double ts : {150.0, 50.0, 10.0, 2.0}) {
      const CostParams cp{ts, 3.0, 1.0};
      std::fputs(cost::region_csv(port, cp, cands, 4.0, 14.0, 3.0, 33.0, 41,
                                  31)
                     .c_str(),
                 stdout);
    }
  }
  return 0;
}
