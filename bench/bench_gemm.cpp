// google-benchmark microbenchmarks of the local multiply kernels the
// distributed algorithms spend their compute phases in.

#include <benchmark/benchmark.h>

#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace {

using namespace hcmm;

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_naive(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_tiled(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmTiled)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmLegacyTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  set_gemm_kernel(GemmKernel::kLegacyTiled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_tiled(a, b));
  }
  set_gemm_kernel(GemmKernel::kMicro);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmLegacyTiled)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmThreaded(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_threaded(a, b, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmThreaded)->Args({256, 1})->Args({256, 2})->Args({256, 4});

void BM_GemmVector(benchmark::State& state) {
  // The SIMD fast path behind gemm_accumulate_fast — what the SPMD runtime
  // and benches dispatch.  Accumulates into a preallocated output, like the
  // runtime call sites.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  state.SetLabel(gemm_vector_ident().isa);
  for (auto _ : state) {
    gemm_accumulate_fast(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmVector)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_GemmVectorThreaded(benchmark::State& state) {
  // Vector path through multiply_threaded: parallel B packing plus MC-block
  // macro-loop parallelism, bit-identical to the serial vector path.
  const auto n = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(static_cast<std::size_t>(state.range(1)));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  set_gemm_kernel(GemmKernel::kVector);
  state.SetLabel(gemm_vector_ident().isa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_threaded(a, b, pool));
  }
  set_gemm_kernel(GemmKernel::kMicro);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmVectorThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4});

void BM_GemmAccumulateBlocks(benchmark::State& state) {
  // The distributed algorithms' inner shape: accumulate q narrow products.
  const std::size_t bh = 64;
  const std::size_t bw = 16;
  const Matrix a = random_matrix(bh, bw, 1);
  const Matrix b = random_matrix(bw, bh, 2);
  Matrix c(bh, bh);
  for (auto _ : state) {
    gemm_accumulate(a, b, c);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_GemmAccumulateBlocks);

}  // namespace

BENCHMARK_MAIN();
