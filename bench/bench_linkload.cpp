// Link-level traffic analysis: how evenly each algorithm spreads its words
// over the hypercube's links.  The paper's analysis is node-centric; this
// view shows *why* the schedules achieve their costs — the collectives-based
// algorithms keep link loads flat, while the hot spots of the diagonal
// schemes sit on the broadcast trees of the diagonal planes.

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/generate.hpp"

namespace {

using namespace hcmm;
using algo::AlgoId;

void analyze(AlgoId id, PortModel port, std::size_t n, std::uint32_t p) {
  const auto alg = algo::make_algorithm(id);
  if (!alg->supports(port) || !alg->applicable(n, p)) return;
  const Matrix a = random_matrix(n, n, 81);
  const Matrix b = random_matrix(n, n, 82);
  Machine machine(Hypercube::with_nodes(p), port, CostParams{150, 3, 1});
  machine.set_link_accounting(true);
  const auto result = alg->run(a, b, machine);
  const auto loads = machine.link_loads();
  const auto bal = summarize_links(loads, machine.cube().link_count());
  std::printf(
      "%-20s %-10s | %6llu links (%4.0f%% of machine) | max %7llu  mean "
      "%9.1f  imbalance %5.2f\n",
      alg->name().c_str(), to_string(port),
      static_cast<unsigned long long>(bal.links_used), 100.0 * bal.coverage,
      static_cast<unsigned long long>(bal.max_words), bal.mean_words,
      bal.imbalance);
  (void)result;
}

}  // namespace

int main() {
  bench::header("Link-load balance at n=64, p=64 (directed links)");
  std::printf("%-20s %-10s | %s\n", "algorithm", "port",
              "traffic spread over links");
  bench::rule();
  const AlgoId all[] = {AlgoId::kSimple,   AlgoId::kCannon,
                        AlgoId::kHJE,      AlgoId::kBerntsen,
                        AlgoId::kDNS,      AlgoId::kDiag2D,
                        AlgoId::kDiag3D,   AlgoId::kAllTrans,
                        AlgoId::kAll3D};
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    for (const AlgoId id : all) analyze(id, port, 64, 64);
    bench::rule();
  }
  std::printf(
      "\nimbalance = busiest link / mean used link; coverage = used links /"
      "\n all directed links.  The all-to-all style algorithms (Simple,"
      "\n 3D All) and Cannon's rings load the machine almost evenly; the"
      "\n diagonal schemes concentrate traffic on their broadcast trees,"
      "\n which is invisible in node-centric cost models but real on a"
      "\n machine.\n");
  return 0;
}
