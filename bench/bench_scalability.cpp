// Scalability study in the spirit of the paper's reference [5]
// (Gupta & Kumar, "Scalability of parallel algorithms for matrix
// multiplication"): fixed problem size, growing machine — parallel time,
// speedup and efficiency per algorithm from the Table 2 closed forms
// (compute = n^3/p multiply-adds).

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/cost/model.hpp"

namespace {

using namespace hcmm;
using algo::AlgoId;

void study(PortModel port, double n, const CostParams& cp) {
  std::printf("\nn=%.0f, %s (ts=%.0f tw=%.0f tc=%.0f):\n", n, to_string(port),
              cp.ts, cp.tw, cp.tc);
  const AlgoId algs[] = {AlgoId::kCannon, AlgoId::kHJE, AlgoId::kBerntsen,
                         AlgoId::kDNS, AlgoId::kDiag3D, AlgoId::kAll3D};
  std::printf("%10s |", "p");
  for (const AlgoId id : algs) std::printf(" %19s |", algo::to_string(id));
  std::printf("\n");
  const double serial = n * n * n * cp.tc;
  for (double p = 8; p <= 1024 * 1024; p *= 8) {
    std::printf("%10.0f |", p);
    for (const AlgoId id : algs) {
      if (!cost::within_processor_bound(id, n, p) ||
          (id == AlgoId::kHJE && port == PortModel::kOnePort)) {
        std::printf(" %19s |", "-");
        continue;
      }
      const double t = cost::table2(id, port, n, p).time(cp) +
                       n * n * n / p * cp.tc;
      const double eff = serial / (p * t);
      std::printf("   %9.3g (E=%3.0f%%) |", t, 100.0 * eff);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::header(
      "Scalability: parallel time and efficiency E = n^3 tc / (p T)");
  const CostParams cp{150.0, 3.0, 1.0};
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    study(port, 1024, cp);
    study(port, 4096, cp);
  }
  std::printf(
      "\nThe efficiency cliffs mark each algorithm's applicability bound"
      "\n (p <= n^2 or n^{3/2} or n^3); before the cliff, 3D All holds the"
      "\n highest efficiency at every p in its region, which is the paper's"
      "\n conclusion restated as a scalability statement.\n");
  return 0;
}
