// Reproduces Table 1 of the paper: optimal broadcasting and personalized
// communication costs on an N-processor hypercube, for one-port and
// multi-port nodes.  Every collective is *executed* on the simulator and
// its measured (a, b) — time = a*t_s + b*t_w — is printed beside the
// closed form.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/support/bits.hpp"

namespace {

using namespace hcmm;

struct Measured {
  double a;
  double b;
};

Measured run(PortModel port, std::uint32_t d, std::size_t m_words,
             const char* which) {
  Machine machine(Hypercube(d), port, CostParams{1.0, 1.0, 1.0});
  const Subcube sc(0, (1u << d) - 1u);
  const std::uint32_t n = sc.size();
  auto vec = [&](double v) { return std::vector<double>(m_words, v); };
  const std::string name = which;
  machine.reset_stats();
  if (name == "bcast") {
    machine.store().put(0, make_tag(1), vec(1.0));
    machine.reset_stats();
    coll::op_bcast(machine, sc, 0, make_tag(1));
  } else if (name == "scatter") {
    std::vector<Tag> tags(n);
    for (std::uint32_t r = 0; r < n; ++r) {
      tags[r] = make_tag(1, static_cast<std::uint16_t>(r));
      machine.store().put(0, tags[r], vec(1.0));
    }
    machine.reset_stats();
    coll::op_scatter(machine, sc, 0, tags);
  } else if (name == "allgather") {
    std::vector<Tag> tags(n);
    for (std::uint32_t r = 0; r < n; ++r) {
      tags[r] = make_tag(1, static_cast<std::uint16_t>(r));
      machine.store().put(sc.node_at(r), tags[r], vec(1.0));
    }
    machine.reset_stats();
    coll::op_allgather(machine, sc, tags);
  } else {  // alltoall
    std::vector<Tag> flat(static_cast<std::size_t>(n) * n);
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint32_t t = 0; t < n; ++t) {
        flat[static_cast<std::size_t>(s) * n + t] =
            make_tag(1, static_cast<std::uint16_t>(s),
                     static_cast<std::uint16_t>(t));
        machine.store().put(sc.node_at(s),
                            flat[static_cast<std::size_t>(s) * n + t],
                            vec(1.0));
      }
    }
    machine.reset_stats();
    coll::op_alltoall(machine, sc, flat);
  }
  const auto t = machine.report().totals();
  return {static_cast<double>(t.rounds), t.word_cost};
}

double formula_b(const std::string& which, PortModel port, std::uint32_t d,
                 double m) {
  const double n = std::exp2(d);
  const double dd = d;
  const bool multi = port == PortModel::kMultiPort && d >= 2;
  if (which == "bcast") return multi ? m : m * dd;
  if (which == "scatter" || which == "allgather") {
    return multi ? (n - 1) * m / dd : (n - 1) * m;
  }
  return multi ? n * m / 2.0 : n * m * dd / 2.0;  // alltoall
}

}  // namespace

int main() {
  using hcmm::bench::header;
  using hcmm::bench::verdict;
  header("Table 1: collective communication on an N-node hypercube");
  std::printf("%-10s %-10s %5s %8s | %8s %8s | %12s %12s  %s\n", "collective",
              "port", "N", "M", "a meas", "a form", "b measured", "b formula",
              "check");
  hcmm::bench::rule();
  for (const char* which : {"bcast", "scatter", "allgather", "alltoall"}) {
    for (const auto port :
         {hcmm::PortModel::kOnePort, hcmm::PortModel::kMultiPort}) {
      for (const std::uint32_t d : {2u, 3u, 4u, 6u}) {
        const std::size_t m = 60;  // divisible by every d used
        const auto meas = run(port, d, m, which);
        const double fb = formula_b(which, port, d, static_cast<double>(m));
        std::printf("%-10s %-10s %5u %8zu | %8.0f %8u | %12.1f %12.1f  %s\n",
                    which, hcmm::to_string(port), 1u << d, m, meas.a, d,
                    meas.b, fb, verdict(meas.b, fb));
      }
    }
  }
  std::printf(
      "\n(a = start-ups on the critical path, b = word-times; Table 1 of the"
      "\n paper gives a = log N for every collective and the b columns above."
      "\n Reductions are schedule inverses with identical costs — covered by"
      "\n the unit tests.)\n");
  return 0;
}
