// Reproduces Table 2 of the paper: communication overheads (a, b) with
// time = a*t_s + b*t_w for every algorithm on one-port and multi-port
// hypercubes.  Each algorithm is executed on the simulator; measured terms
// are printed beside the paper's closed-form entries.  Exactness is
// expected for Simple/3DD/All_Trans/3D All; the shift/route-based
// algorithms may come in slightly under the closed forms (their alignment
// terms are worst-case) — "better" in the check column.

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/cost/model.hpp"
#include "hcmm/matrix/generate.hpp"

namespace {

using namespace hcmm;
using algo::AlgoId;

void run_case(AlgoId id, PortModel port, std::size_t n, std::uint32_t p) {
  const auto alg = algo::make_algorithm(id);
  if (!alg->supports(port) || !alg->applicable(n, p)) return;
  const Matrix a = random_matrix(n, n, 21);
  const Matrix b = random_matrix(n, n, 22);
  Machine machine(Hypercube::with_nodes(p), port, CostParams{150.0, 3.0, 1.0});
  const auto result = alg->run(a, b, machine);
  const auto t = result.report.totals();
  const auto f = cost::table2(id, port, static_cast<double>(n),
                              static_cast<double>(p));
  const double mt = static_cast<double>(t.rounds) * 150.0 + t.word_cost * 3.0;
  const double ft = f.a * 150.0 + f.b * 3.0;
  std::printf("%-20s %-10s %5zu %6u | %6llu %8.1f | %9.1f %9.1f | %10.1f %10.1f  %s\n",
              alg->name().c_str(), to_string(port), n, p,
              static_cast<unsigned long long>(t.rounds), f.a, t.word_cost,
              f.b, mt, ft, bench::verdict(mt, ft, 0.05));
}

}  // namespace

int main() {
  bench::header(
      "Table 2: communication overhead (a, b), measured vs closed form "
      "(ts=150 tw=3)");
  std::printf("%-20s %-10s %5s %6s | %6s %8s | %9s %9s | %10s %10s  %s\n",
              "algorithm", "port", "n", "p", "a meas", "a form", "b meas",
              "b form", "t meas", "t form", "check");
  bench::rule();
  const AlgoId all[] = {AlgoId::kSimple,   AlgoId::kCannon,
                        AlgoId::kHJE,      AlgoId::kBerntsen,
                        AlgoId::kDNS,      AlgoId::kDiag2D,
                        AlgoId::kDiag3D,   AlgoId::kAllTrans,
                        AlgoId::kAll3D,    AlgoId::kAll3DRect,
                        AlgoId::kDNSCannon, AlgoId::kDiag3DCannon};
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    for (const AlgoId id : all) {
      run_case(id, port, 48, 16);
      run_case(id, port, 48, 64);
      run_case(id, port, 64, 64);
      run_case(id, port, 64, 512);
      run_case(id, port, 128, 512);
      run_case(id, port, 32, 256);   // rect-grid extension shapes (p = q^4)
      run_case(id, port, 64, 256);
      run_case(id, port, 32, 32);    // supernode shapes (p = s^3 r^2)
      run_case(id, port, 32, 128);
    }
    bench::rule();
  }
  std::printf(
      "\n'exact'  = measured equals the Table 2 entry to machine precision;"
      "\n'better' = honest routing beat the paper's worst-case alignment/p2p"
      "\n           terms (pipelining across rounds);"
      "\n'ok'     = within 5%%.  2D Diagonal and the rect-grid 3D All have no"
      "\n           Table 2 rows in the paper; their formulas are our"
      "\n           derivations (DESIGN.md).\n");
  return 0;
}
