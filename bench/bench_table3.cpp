// Reproduces Table 3 of the paper: architecture-independent traits — the
// processor-count bound p <= n^k and the overall space used.  Space is
// *measured* as the sum over nodes of peak resident words during the run
// and printed beside the paper's leading-order formula.  (The paper's
// entries drop lower-order terms such as the n^2 for C itself, so ratios
// hover slightly above 1.)

#include <cstdio>

#include "bench_util.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/cost/model.hpp"
#include "hcmm/matrix/generate.hpp"

namespace {

using namespace hcmm;
using algo::AlgoId;

const char* bound_name(AlgoId id) {
  switch (id) {
    case AlgoId::kSimple:
    case AlgoId::kCannon:
    case AlgoId::kHJE:
    case AlgoId::kDiag2D:
      return "p <= n^2";
    case AlgoId::kBerntsen:
    case AlgoId::kAllTrans:
    case AlgoId::kAll3D:
      return "p <= n^{3/2}";
    case AlgoId::kDNS:
    case AlgoId::kDiag3D:
      return "p <= n^3";
    case AlgoId::kAll3DRect:
    case AlgoId::kDNSCannon:
    case AlgoId::kDiag3DCannon:
      return "p <= n^2";
  }
  return "?";
}

void run_case(AlgoId id, PortModel port, std::size_t n, std::uint32_t p) {
  const auto alg = algo::make_algorithm(id);
  if (!alg->supports(port) || !alg->applicable(n, p)) return;
  const Matrix a = random_matrix(n, n, 31);
  const Matrix b = random_matrix(n, n, 32);
  Machine machine(Hypercube::with_nodes(p), port, CostParams{150.0, 3.0, 1.0});
  const auto result = alg->run(a, b, machine);
  const double meas = static_cast<double>(result.report.peak_words_total);
  const double form = cost::space_words(id, static_cast<double>(n),
                                        static_cast<double>(p));
  std::printf("%-20s %-13s %5zu %6u | %12.0f %12.0f | ratio %5.2f\n",
              alg->name().c_str(), bound_name(id), n, p, meas, form,
              meas / form);
}

}  // namespace

int main() {
  bench::header("Table 3: applicability bounds and overall space used (words)");
  std::printf("%-20s %-13s %5s %6s | %12s %12s |\n", "algorithm", "bound", "n",
              "p", "meas peak", "Table 3");
  bench::rule();
  const AlgoId all[] = {AlgoId::kSimple,   AlgoId::kCannon,
                        AlgoId::kHJE,      AlgoId::kBerntsen,
                        AlgoId::kDNS,      AlgoId::kDiag3D,
                        AlgoId::kAllTrans, AlgoId::kAll3D,
                        AlgoId::kAll3DRect,
                        AlgoId::kDNSCannon, AlgoId::kDiag3DCannon};
  for (const AlgoId id : all) {
    const PortModel port = id == AlgoId::kHJE ? PortModel::kMultiPort
                                              : PortModel::kOnePort;
    run_case(id, port, 48, 64);
    run_case(id, port, 64, 64);
    run_case(id, port, 64, 512);
    run_case(id, port, 64, 256);  // rect-grid extension shape
    run_case(id, port, 32, 128);  // supernode combination shape
  }
  std::printf(
      "\nTable 3 keeps leading terms only (it omits the n^2 words of C and"
      "\n alignment copies), so honest metering lands a little above 1.0 for"
      "\n the low-replication algorithms and at ~1.0 for the replicating"
      "\n ones.  The applicability bounds are enforced by applicable() and"
      "\n unit-tested.\n");
  return 0;
}
