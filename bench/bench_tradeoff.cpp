// The space-time tradeoff behind the paper's §3.5 combinations: at a fixed
// processor count p = sigma^3 rho^2, sliding sigma down (rho up) trades
// replication space (2 n^2 sigma) for Cannon start-ups (2(rho-1)).  Every
// point is a full simulated run of 3DD x Cannon with an explicit split;
// sigma = p^{1/3} is pure 3DD, sigma = 1 is pure Cannon.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/matrix/generate.hpp"

namespace {

using namespace hcmm;

void sweep(std::uint32_t p, std::size_t n, PortModel port,
           const CostParams& cp) {
  std::printf("\np=%u, n=%zu, %s (ts=%.0f tw=%.0f):\n", p, n, to_string(port),
              cp.ts, cp.tw);
  std::printf("  %8s %6s | %10s %12s %12s | %14s\n", "sigma", "rho",
              "start-ups", "comm time", "total time", "space (words)");
  const std::uint32_t lp = exact_log2(p);
  const Matrix a = random_matrix(n, n, 61);
  const Matrix b = random_matrix(n, n, 62);
  for (std::uint32_t ai = lp / 3 + 1; ai-- > 0;) {
    if ((lp - 3 * ai) % 2 != 0) continue;
    const std::uint32_t sigma = 1u << ai;
    const std::uint32_t rho = 1u << ((lp - 3 * ai) / 2);
    const auto alg = algo::detail::make_diag3d_cannon(std::pair{sigma, rho});
    if (!alg->applicable(n, p)) {
      std::printf("  %8u %6u   (n not divisible by sigma*rho)\n", sigma, rho);
      continue;
    }
    Machine machine(Hypercube::with_nodes(p), port, cp);
    const auto r = alg->run(a, b, machine);
    const auto t = r.report.totals();
    std::printf("  %8u %6u | %10llu %12.1f %12.1f | %14llu\n", sigma, rho,
                static_cast<unsigned long long>(t.rounds), t.comm_time,
                t.time(),
                static_cast<unsigned long long>(r.report.peak_words_total));
  }
}

}  // namespace

int main() {
  bench::header(
      "Space-time tradeoff: 3DD x Cannon over (sigma, rho) splits of p");
  const CostParams headline{150.0, 3.0, 1.0};
  const CostParams tiny{2.0, 3.0, 1.0};
  for (const auto port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    sweep(64, 64, port, headline);
    sweep(256, 64, port, headline);
    sweep(1024, 64, port, headline);
  }
  sweep(256, 64, PortModel::kOnePort, tiny);
  std::printf(
      "\nLarger sigma = fewer start-ups and more space (pure 3DD at sigma ="
      "\n p^{1/3}); smaller sigma = Cannon-like constant space but O(rho)"
      "\n start-ups.  At small ts the crossover moves toward small sigma —"
      "\n the same effect as Figure 13's Cannon wedge.\n");
  return 0;
}
