// Transport backend comparison: the real (t_s, t_w) of every Team backend,
// point latency and bandwidth from the calibration sweep, and the cost of
// the recovery ladder over genuinely lossy I/O — detection latency of a
// dead rank and the wall clock of the restart rung that heals it.
//
// Like bench_dataplane, the harness exits nonzero when its deterministic
// checks fail — bit identity of the SPMD product across backends, a located
// death diagnosis, and a clean bit-identical restart — so CI can gate on
// the exit code while wall-clock numbers are only reported.
//
// Usage: bench_transport [--json] [--out FILE] [--quick]

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "hcmm/analysis/calibration.hpp"
#include "hcmm/fault/fuzz.hpp"
#include "hcmm/fault/plan.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/runtime/socket_transport.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"
#include "hcmm/runtime/team.hpp"

namespace {

using namespace hcmm;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

fault::WireFaultSpec mild_loss() {
  fault::WireFaultSpec w;
  w.seed = 0xBE7C;
  w.drop_prob = 0.03;
  w.dup_prob = 0.03;
  w.reorder_prob = 0.03;
  return w;
}

struct BackendRow {
  std::string name;
  analysis::Calibration cal;
  double latency_us = 0.0;    ///< 1-word one-way time
  double bandwidth_mbps = 0.0;  ///< largest sweep point, MB/s one way
  // Socket backends only: recovery drill numbers (0 for mailbox).
  double abort_us = 0.0;    ///< run start -> located death diagnosis
  double restart_us = 0.0;  ///< clean restart run over the same transport
  std::string wire_spec;    ///< lossy backends: the reproducer fault spec
};

std::unique_ptr<rt::Team> make_team(const std::string& backend,
                                    std::uint32_t ranks) {
  if (backend == "mailbox") return std::make_unique<rt::Team>(ranks, 10s);
  if (backend == "socket") {
    return std::make_unique<rt::Team>(rt::make_socket_transport(ranks, 10s),
                                      10s);
  }
  return std::make_unique<rt::Team>(
      rt::make_socket_transport(ranks, 10s, mild_loss()), 10s);
}

/// Injected-death drill over @p backend: detection latency, then the
/// restart rung, whose product must be bit-identical to @p want.
void recovery_drill(const std::string& backend, const Matrix& a,
                    const Matrix& b, const Matrix& want, BackendRow& row) {
  auto team = make_team(backend, 4);
  team->inject_rank_death(2);
  const auto t0 = Clock::now();
  bool located = false;
  try {
    (void)rt::spmd_cannon(*team, a, b);
  } catch (const std::runtime_error& e) {
    row.abort_us = us_since(t0);
    located = std::string(e.what()).find("rank 2") != std::string::npos;
  }
  if (!located) {
    throw std::runtime_error("bench_transport: death on " + backend +
                             " was not diagnosed as rank 2");
  }
  team->clear_injections();
  const auto t1 = Clock::now();
  const Matrix c = rt::spmd_cannon(*team, a, b);
  row.restart_us = us_since(t1);
  if (std::memcmp(c.data().data(), want.data().data(),
                  want.rows() * want.cols() * sizeof(double)) != 0) {
    throw std::runtime_error("bench_transport: restart over " + backend +
                             " is not bit-identical to the mailbox run");
  }
}

std::string rows_json(const std::vector<BackendRow>& rows) {
  std::ostringstream os;
  os.precision(6);
  os << "{\"backends\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BackendRow& r = rows[i];
    if (i != 0) os << ", ";
    os << "{\"name\": \"" << r.name << "\", \"ts_us\": " << r.cal.ts_us
       << ", \"tw_us\": " << r.cal.tw_us
       << ", \"latency_us\": " << r.latency_us
       << ", \"bandwidth_mbps\": " << r.bandwidth_mbps
       << ", \"recovery_abort_us\": " << r.abort_us
       << ", \"recovery_restart_us\": " << r.restart_us;
    if (!r.wire_spec.empty()) os << ", \"wire_spec\": \"" << r.wire_spec
                                 << "\"";
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_transport [--json] [--out FILE] [--quick]\n";
      return 2;
    }
  }

  analysis::CalibrationConfig cfg;
  if (quick) {
    cfg.warmup = 2;
    cfg.iters = 8;
    cfg.reps = 3;
    cfg.words = {1, 64, 1024};
  }

  const Matrix a = random_matrix(16, 16, 71);
  const Matrix b = random_matrix(16, 16, 72);
  rt::Team ref(4, 10s);
  const Matrix want = rt::spmd_cannon(ref, a, b);

  std::vector<BackendRow> rows;
  try {
    for (const char* backend : {"mailbox", "socket", "socket+lossy"}) {
      BackendRow row;
      row.name = backend;
      if (row.name == "socket+lossy") {
        fault::FaultPlan wire_only;
        wire_only.wire = mild_loss();
        row.wire_spec = fault::plan_spec(wire_only);
      }
      {
        auto team = make_team(backend, 2);
        row.cal = analysis::calibrate(*team, cfg);
      }
      row.latency_us = row.cal.samples.front().oneway_us;
      const analysis::PingPongSample& big = row.cal.samples.back();
      if (big.oneway_us > 0) {
        row.bandwidth_mbps =
            static_cast<double>(big.words) * sizeof(double) / big.oneway_us;
      }
      if (row.name != "mailbox") recovery_drill(backend, a, b, want, row);
      rows.push_back(std::move(row));
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_transport: " << e.what() << "\n";
    return 1;
  }

  if (!json) {
    bench::header("transport backends: measured constants and recovery");
    std::printf("  %-14s %10s %10s %12s %12s %12s %12s\n", "backend", "ts_us",
                "tw_us", "lat_us", "bw_MB/s", "abort_us", "restart_us");
    for (const BackendRow& r : rows) {
      std::printf("  %-14s %10.2f %10.4f %12.2f %12.1f %12.0f %12.0f\n",
                  r.name.c_str(), r.cal.ts_us, r.cal.tw_us, r.latency_us,
                  r.bandwidth_mbps, r.abort_us, r.restart_us);
    }
  }

  const std::string doc = rows_json(rows);
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    f << doc << "\n";
  }
  if (json) std::cout << doc << "\n";
  return 0;
}
