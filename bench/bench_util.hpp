#pragma once
// Shared output helpers for the table/figure reproduction binaries.

#include <cstdio>
#include <string>

namespace hcmm::bench {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void rule() {
  std::printf("%s\n", std::string(100, '-').c_str());
}

/// measured/formula with a tolerance-free textual verdict.
inline const char* verdict(double measured, double formula, double tol = 0.02) {
  if (formula == 0.0) return measured == 0.0 ? "exact" : "DIFF";
  const double r = measured / formula;
  if (r > 1.0 - 1e-9 && r < 1.0 + 1e-9) return "exact";
  if (r >= 1.0 - tol && r <= 1.0 + tol) return "ok";
  if (r < 1.0) return "better";
  return "WORSE";
}

}  // namespace hcmm::bench
