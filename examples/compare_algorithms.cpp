// Run every applicable algorithm on the same problem and machine and rank
// them by simulated time — an interactive version of the paper's §5
// comparison.
//
//   ./compare_algorithms [n] [p] [one|multi] [ts] [tw]
//   defaults:            64   64   multi      150   3

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"

int main(int argc, char** argv) {
  using namespace hcmm;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const auto p =
      static_cast<std::uint32_t>(argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64);
  const PortModel port = (argc > 3 && std::strcmp(argv[3], "one") == 0)
                             ? PortModel::kOnePort
                             : PortModel::kMultiPort;
  const double ts = argc > 4 ? std::strtod(argv[4], nullptr) : 150.0;
  const double tw = argc > 5 ? std::strtod(argv[5], nullptr) : 3.0;
  if (!is_pow2(p)) {
    std::fprintf(stderr, "p must be a power of two\n");
    return 1;
  }

  std::printf("n=%zu, p=%u, %s hypercube, ts=%.1f tw=%.1f tc=1\n\n", n, p,
              to_string(port), ts, tw);
  const Matrix a = random_matrix(n, n, 11);
  const Matrix b = random_matrix(n, n, 12);
  const Matrix oracle = multiply_naive(a, b);

  struct Row {
    std::string name;
    std::uint64_t startups;
    double comm;
    double total;
    std::uint64_t space;
    bool correct;
  };
  std::vector<Row> rows;
  for (const auto& alg : algo::all_algorithms()) {
    if (!alg->supports(port)) {
      std::printf("  %-22s (not defined for %s nodes)\n", alg->name().c_str(),
                  to_string(port));
      continue;
    }
    if (!alg->applicable(n, p)) {
      std::printf("  %-22s (not applicable at n=%zu, p=%u)\n",
                  alg->name().c_str(), n, p);
      continue;
    }
    Machine machine(Hypercube::with_nodes(p), port, CostParams{ts, tw, 1.0});
    const auto result = alg->run(a, b, machine);
    const auto t = result.report.totals();
    rows.push_back({alg->name(), t.rounds, t.comm_time, t.time(),
                    result.report.peak_words_total,
                    max_abs_diff(result.c, oracle) < 1e-9});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& x, const Row& y) { return x.total < y.total; });

  std::printf("\n%-4s %-22s %10s %14s %14s %12s %s\n", "rank", "algorithm",
              "start-ups", "comm time", "total time", "space(words)",
              "verified");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%-4zu %-22s %10llu %14.1f %14.1f %12llu %s\n", i + 1,
                r.name.c_str(), static_cast<unsigned long long>(r.startups),
                r.comm, r.total, static_cast<unsigned long long>(r.space),
                r.correct ? "yes" : "NO");
  }
  return 0;
}
