// Textual reproduction of the paper's schematic figures — the data layouts
// of Figures 1, 3, 4, 6, 8, 9 and 12 — printed from the same partitioning
// rules the algorithm implementations stage with.  Handy when reading the
// paper side by side with the code.
//
//   ./layouts [q]      supernode/grid side, default 2 (p = 8 for 3-D views)

#include <cstdio>
#include <cstdlib>

#include "hcmm/topology/grid.hpp"

namespace {

using namespace hcmm;

void figure1(std::uint32_t q) {
  std::printf("\n-- Figure 1: matrix A partitioned into %ux%u blocks --\n", q,
              q);
  for (std::uint32_t i = 0; i < q; ++i) {
    for (std::uint32_t j = 0; j < q; ++j) std::printf("  A%u%u", i, j);
    std::printf("\n");
  }
}

void figure3(std::uint32_t q) {
  std::printf("\n-- Figure 3: DNS — initial face z=0, then A to z=j, B to "
              "z=i --\n");
  for (std::uint32_t i = 0; i < q; ++i) {
    for (std::uint32_t j = 0; j < q; ++j) {
      std::printf("  p(%u,%u,0): A%u%u B%u%u   -> A to p(%u,%u,%u), B to "
                  "p(%u,%u,%u)\n",
                  i, j, i, j, i, j, i, j, j, i, j, i);
    }
  }
}

void figure4(std::uint32_t q) {
  std::printf("\n-- Figure 4: 2-D Diagonal — column groups of A and row "
              "groups of B on the diagonal --\n");
  for (std::uint32_t j = 0; j < q; ++j) {
    std::printf("  p(%u,%u): A[:, group %u]  B[group %u, :]\n", j, j, j, j);
  }
  std::printf("  phase 1: p(j,j) scatters B pieces and broadcasts A down "
              "column j;\n  phase 2: reduce along rows onto the diagonal.\n");
}

void figure6(std::uint32_t q) {
  std::printf("\n-- Figure 6/7: 3-D Diagonal — plane x = y holds A_{k,i}, "
              "B_{k,i} at p(i,i,k) --\n");
  for (std::uint32_t i = 0; i < q; ++i) {
    for (std::uint32_t k = 0; k < q; ++k) {
      std::printf("  p(%u,%u,%u): A%u%u B%u%u   (B -> p(%u,%u,%u) in phase "
                  "1)\n",
                  i, i, k, k, i, k, i, i, k, k);
    }
  }
}

void figures8and9(std::uint32_t q) {
  const Grid3D grid(q * q * q);
  std::printf("\n-- Figure 8: A partitioned %u x %u for 3-D All (f(i,j) = "
              "i*%u+j) --\n",
              q, q * q, q);
  for (std::uint32_t k = 0; k < q; ++k) {
    for (std::uint32_t f = 0; f < q * q; ++f) std::printf("  A_{%u,%u}", k, f);
    std::printf("\n");
  }
  std::printf("\n-- Figure 9: B partitioned %u x %u (the transposed view "
              "phase 1 reconstructs) --\n",
              q * q, q);
  for (std::uint32_t f = 0; f < q * q; ++f) {
    for (std::uint32_t k = 0; k < q; ++k) std::printf("  B_{%u,%u}", f, k);
    std::printf("\n");
  }
  std::printf("\n   placement: p(i,j,k) holds A_{k,f(i,j)} and B_{k,f(i,j)}"
              ", e.g. ");
  std::printf("p(1,0,%u) -> A_{%u,%u}\n", q - 1, q - 1, grid.f(1, 0));
}

void figure12(std::uint32_t q) {
  std::printf("\n-- Figure 12: 3-D All phases at p(i,j,k) --\n");
  std::printf("  1. all-to-all personalized along y: row group l of "
              "B_{k,f(i,j)} -> p(i,l,k)\n");
  std::printf("  2. all-to-all broadcast of A along x  ||  of the B pieces "
              "along z\n");
  std::printf("  3. I_{k,i} = sum_m A_{k,f(m,j)} B_{f(m,j),i}\n");
  std::printf("  4. all-to-all reduction along y: piece l -> p(i,l,k) as "
              "C_{k,f(i,l)}\n");
  std::printf("  (q = %u: every phase runs in log %u rounds per chain)\n", q,
              q);
}

}  // namespace

int main(int argc, char** argv) {
  const auto q = static_cast<std::uint32_t>(
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2);
  if (q < 2 || q > 4 || (q & (q - 1)) != 0) {
    std::fprintf(stderr, "q must be 2 or 4\n");
    return 1;
  }
  std::printf("Data layouts of the paper's schematic figures, q = %u\n", q);
  figure1(q);
  figure3(q);
  figure4(q);
  figure6(q);
  figures8and9(q);
  figure12(q);
  return 0;
}
