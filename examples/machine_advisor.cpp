// Algorithm selection for a hypothetical hypercube machine: given the
// machine's (t_s, t_w) and a problem size, evaluate the paper's Table 2
// closed forms for every algorithm and recommend the fastest, then show
// the surrounding region of the (n, p) space — a personal slice of the
// paper's Figures 13/14.
//
//   ./machine_advisor [n] [p] [one|multi] [ts] [tw]
//   defaults:          1024  4096  one     150   3

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hcmm/algo/api.hpp"
#include "hcmm/cost/model.hpp"

int main(int argc, char** argv) {
  using namespace hcmm;
  using algo::AlgoId;
  const double n = argc > 1 ? std::strtod(argv[1], nullptr) : 1024;
  const double p = argc > 2 ? std::strtod(argv[2], nullptr) : 4096;
  const PortModel port = (argc > 3 && std::strcmp(argv[3], "multi") == 0)
                             ? PortModel::kMultiPort
                             : PortModel::kOnePort;
  const CostParams cp{argc > 4 ? std::strtod(argv[4], nullptr) : 150.0,
                      argc > 5 ? std::strtod(argv[5], nullptr) : 3.0, 1.0};

  std::printf("machine: %s hypercube, ts=%.1f, tw=%.1f; problem: n=%.0f on "
              "p=%.0f nodes\n\n",
              to_string(port), cp.ts, cp.tw, n, p);
  std::printf("%-22s %12s %14s %16s  %s\n", "algorithm", "a (ts)", "b (tw)",
              "comm time", "notes");
  const AlgoId all[] = {AlgoId::kSimple,   AlgoId::kCannon,  AlgoId::kHJE,
                        AlgoId::kBerntsen, AlgoId::kDNS,     AlgoId::kDiag3D,
                        AlgoId::kAllTrans, AlgoId::kAll3D,
                        AlgoId::kAll3DRect};
  for (const AlgoId id : all) {
    if (!cost::within_processor_bound(id, n, p)) {
      std::printf("%-22s %46s\n", algo::to_string(id),
                  "(p exceeds the algorithm's bound)");
      continue;
    }
    const auto c = cost::table2(id, port, n, p);
    const bool full_bw = cost::meets_port_condition(id, port, n, p);
    std::printf("%-22s %12.1f %14.1f %16.1f  %s\n", algo::to_string(id), c.a,
                c.b, c.time(cp),
                full_bw ? "" : "(messages too small for full bandwidth)");
  }

  algo::AlgoId best{};
  const auto cands = cost::contenders(port);
  if (cost::best_algorithm(port, n, p, cp, cands, best)) {
    std::printf("\nrecommended (among the paper's §5 contenders): %s\n",
                algo::to_string(best));
  } else {
    std::printf("\nno contender is applicable at this (n, p)\n");
  }

  const double ln = std::log2(n);
  const double lp = std::log2(p);
  std::printf("\nneighborhood of your point (rows: log2 p in [%.1f, %.1f], "
              "cols: log2 n in [%.1f, %.1f]):\n",
              lp - 4, lp + 4, ln - 4, ln + 4);
  std::printf("%s", cost::region_map(port, cp, cands, ln - 4, ln + 4, lp - 4,
                                     lp + 4, 33, 17)
                        .c_str());
  return 0;
}
