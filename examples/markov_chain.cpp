// Application example: steady state of a Markov chain by repeated squaring
// of its transition matrix — the "decompose other algorithms into a
// sequence of matrix multiplications" use case the paper's introduction
// motivates.  Every squaring runs distributed on the simulated hypercube
// with the 3D All algorithm; the example reports both the convergence of
// the chain and the accumulated simulated communication cost, and
// cross-checks the final distribution against a serial power iteration.
//
//   ./markov_chain [n] [squarings]     defaults: 48 6   (P^(2^6) = P^64)

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"

int main(int argc, char** argv) {
  using namespace hcmm;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const int squarings = argc > 2 ? std::atoi(argv[2]) : 6;
  const std::uint32_t p = 64;

  const auto alg = algo::make_algorithm(algo::AlgoId::kAll3D);
  if (!alg->applicable(n, p)) {
    std::fprintf(stderr, "n=%zu must be divisible by 16 for p=64\n", n);
    return 1;
  }

  std::printf("random-walk transition matrix P (%zux%zu); computing P^(2^%d) "
              "by distributed squaring on a %u-node hypercube\n\n",
              n, n, squarings, p);
  Matrix power = stochastic_matrix(n, 77);
  const Matrix original = power;

  double total_comm = 0.0;
  std::uint64_t total_startups = 0;
  for (int s = 1; s <= squarings; ++s) {
    Machine machine(Hypercube::with_nodes(p), PortModel::kMultiPort,
                    CostParams{150.0, 3.0, 1.0});
    auto result = alg->run(power, power, machine);
    power = std::move(result.c);
    const auto t = result.report.totals();
    total_comm += t.comm_time;
    total_startups += t.rounds;

    // Rows of P^(2^s) converge to the stationary distribution: measure the
    // spread between the first and last row.
    double spread = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      spread = std::max(spread, std::abs(power(0, j) - power(n - 1, j)));
    }
    std::printf("  after P^(2^%d): row spread %.3e   (simulated comm so far "
                "%.0f units, %llu start-ups)\n",
                s, spread, total_comm,
                static_cast<unsigned long long>(total_startups));
  }

  // Serial cross-check: the same power computed with the oracle kernel.
  Matrix serial = original;
  for (int s = 0; s < squarings; ++s) serial = multiply_naive(serial, serial);
  const double err = max_abs_diff(power, serial);
  std::printf("\nmax |distributed - serial| over P^(%0.f) = %.3g  (%s)\n",
              std::exp2(squarings), err, err < 1e-9 ? "verified" : "MISMATCH");

  std::printf("stationary distribution (first 8 entries): ");
  for (std::size_t j = 0; j < std::min<std::size_t>(8, n); ++j) {
    std::printf("%.4f ", power(0, j));
  }
  std::printf("\n");
  return err < 1e-9 ? 0 : 1;
}
