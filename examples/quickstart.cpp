// Quickstart: multiply two matrices with the paper's 3D All algorithm on a
// simulated 64-node multi-port hypercube, verify the product against a
// serial oracle, and print the per-phase cost report.
//
//   ./quickstart [n]          (n defaults to 64; must be divisible by 16)

#include <cstdio>
#include <cstdlib>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"

int main(int argc, char** argv) {
  using namespace hcmm;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::uint32_t p = 64;

  const auto alg = algo::make_algorithm(algo::AlgoId::kAll3D);
  if (!alg->applicable(n, p)) {
    std::fprintf(stderr,
                 "3D All needs n divisible by cbrt(p)^2 = 16 and p <= "
                 "n^{3/2}; n=%zu p=%u does not qualify\n",
                 n, p);
    return 1;
  }

  std::printf("Multiplying two %zux%zu matrices with \"%s\" on a simulated "
              "%u-node multi-port hypercube...\n\n",
              n, n, alg->name().c_str(), p);

  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);

  // ts/tw/tc are in the same abstract units the paper uses: a start-up
  // costs 150 word-times, one multiply-add one word-time.
  Machine machine(Hypercube::with_nodes(p), PortModel::kMultiPort,
                  CostParams{150.0, 3.0, 1.0});
  const auto result = alg->run(a, b, machine);

  const Matrix oracle = multiply_naive(a, b);
  const double err = max_abs_diff(result.c, oracle);
  std::printf("max |C - A*B| = %.3g  (%s)\n\n", err,
              err < 1e-9 ? "verified" : "MISMATCH");

  std::printf("%s\n", result.report.to_string().c_str());

  const auto totals = result.report.totals();
  std::printf("communication : %.0f time units in %llu start-ups\n",
              totals.comm_time,
              static_cast<unsigned long long>(totals.rounds));
  std::printf("computation   : %.0f time units (%llu multiply-adds/node)\n",
              totals.compute_time,
              static_cast<unsigned long long>(totals.flops));
  return err < 1e-9 ? 0 : 1;
}
