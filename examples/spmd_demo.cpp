// The algorithms as real parallel programs: run 3-D All and Cannon on the
// thread-per-rank SPMD runtime (one OS thread per simulated processor,
// genuine message passing), time them against the serial kernel, and
// verify all three agree.
//
//   ./spmd_demo [n]        default 128 (must divide by 16 for 64 ranks)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"

int main(int argc, char** argv) {
  using namespace hcmm;
  using clock = std::chrono::steady_clock;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  if (n % 16 != 0) {
    std::fprintf(stderr, "n must divide by 16 (64 ranks)\n");
    return 1;
  }
  const Matrix a = random_matrix(n, n, 71);
  const Matrix b = random_matrix(n, n, 72);

  std::printf("n=%zu, 64 ranks (OS threads), wall-clock timings:\n", n);

  auto t0 = clock::now();
  const Matrix serial = multiply_tiled(a, b);
  const auto serial_ms = std::chrono::duration<double, std::milli>(
      clock::now() - t0).count();
  std::printf("  serial tiled gemm        : %8.2f ms\n", serial_ms);

  rt::Team cannon_team(64);
  t0 = clock::now();
  const Matrix c1 = rt::spmd_cannon(cannon_team, a, b);
  std::printf("  SPMD Cannon   (64 ranks) : %8.2f ms   max|diff| = %.2e\n",
              std::chrono::duration<double, std::milli>(clock::now() - t0)
                  .count(),
              max_abs_diff(c1, serial));

  rt::Team cube(64);
  t0 = clock::now();
  const Matrix c2 = rt::spmd_all3d(cube, a, b);
  std::printf("  SPMD 3D All   (64 ranks) : %8.2f ms   max|diff| = %.2e\n",
              std::chrono::duration<double, std::milli>(clock::now() - t0)
                  .count(),
              max_abs_diff(c2, serial));

  t0 = clock::now();
  const Matrix c3 = rt::spmd_diag3d(cube, a, b);
  std::printf("  SPMD 3DD      (64 ranks) : %8.2f ms   max|diff| = %.2e\n",
              std::chrono::duration<double, std::milli>(clock::now() - t0)
                  .count(),
              max_abs_diff(c3, serial));

  t0 = clock::now();
  const Matrix c4 = rt::spmd_dns(cube, a, b);
  std::printf("  SPMD DNS      (64 ranks) : %8.2f ms   max|diff| = %.2e\n",
              std::chrono::duration<double, std::milli>(clock::now() - t0)
                  .count(),
              max_abs_diff(c4, serial));

  t0 = clock::now();
  const Matrix c5 = rt::spmd_berntsen(cube, a, b);
  std::printf("  SPMD Berntsen (64 ranks) : %8.2f ms   max|diff| = %.2e\n",
              std::chrono::duration<double, std::milli>(clock::now() - t0)
                  .count(),
              max_abs_diff(c5, serial));

  std::printf(
      "\n(On a many-core host the SPMD runs overlap their gemm calls; the\n"
      " per-rank message counts mirror the simulated algorithms', which is\n"
      " what bench_table2 measures in the paper's cost model.)\n");
  return max_abs_diff(c1, serial) < 1e-9 && max_abs_diff(c2, serial) < 1e-9
             ? 0
             : 1;
}
