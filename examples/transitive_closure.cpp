// Application example: graph transitive closure by Boolean matrix squaring
// (Dekel–Nassimi–Sahni's motivating use of parallel matmul, cited in the
// paper's introduction).  The adjacency matrix (with self-loops) is squared
// log n times on the simulated hypercube; after each squaring entries are
// clamped back to {0, 1}.  The result is verified against a serial
// Floyd–Warshall-style reachability computation.
//
//   ./transitive_closure [n]      default: 48 (divisible by 16 for p = 64)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hcmm/algo/api.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/prng.hpp"

int main(int argc, char** argv) {
  using namespace hcmm;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const std::uint32_t p = 64;

  const auto alg = algo::make_algorithm(algo::AlgoId::kDiag3D);
  if (!alg->applicable(n, p)) {
    std::fprintf(stderr, "n=%zu must be divisible by 4 for p=64\n", n);
    return 1;
  }

  // Sparse random digraph with self-loops.
  Prng rng(123);
  Matrix adj(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    adj(i, i) = 1.0;
    for (int e = 0; e < 3; ++e) adj(i, rng.next_below(n)) = 1.0;
  }

  std::printf("transitive closure of a %zu-vertex digraph by repeated "
              "Boolean squaring (3D Diagonal on %u simulated nodes)\n\n",
              n, p);

  Matrix reach = adj;
  double total_comm = 0.0;
  int rounds = 0;
  for (std::size_t span = 1; span < n; span *= 2, ++rounds) {
    Machine machine(Hypercube::with_nodes(p), PortModel::kOnePort,
                    CostParams{150.0, 3.0, 1.0});
    auto result = alg->run(reach, reach, machine);
    reach = std::move(result.c);
    for (double& v : reach.data()) v = v > 0.5 ? 1.0 : 0.0;  // Boolean clamp
    total_comm += result.report.totals().comm_time;
    std::size_t edges = 0;
    for (const double v : reach.data()) edges += (v > 0.5);
    std::printf("  after squaring %d: %zu reachable pairs\n", rounds + 1,
                edges);
  }

  // Serial verification: BFS-free reachability via iterative expansion.
  std::vector<std::vector<char>> truth(n, std::vector<char>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) truth[i][j] = adj(i, j) > 0.5;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        if (!truth[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (truth[k][j] && !truth[i][j]) {
            truth[i][j] = 1;
            changed = true;
          }
        }
      }
    }
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      mismatches += (truth[i][j] != (reach(i, j) > 0.5));
    }
  }
  std::printf("\nverification vs serial reachability: %zu mismatches (%s)\n",
              mismatches, mismatches == 0 ? "verified" : "FAILED");
  std::printf("total simulated communication: %.0f time units over %d "
              "distributed squarings\n",
              total_comm, rounds);
  return mismatches == 0 ? 0 : 1;
}
