#include "hcmm/abft/checksum.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <sstream>

#include "hcmm/support/check.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm::abft {

Checksums reference_checksums(const Matrix& a, const Matrix& b) {
  HCMM_CHECK(a.rows() == a.cols() && b.rows() == b.cols() &&
                 a.rows() == b.rows(),
             "reference_checksums: operands must be square and equal-sized");
  const std::size_t n = a.rows();
  Checksums out;
  out.row_sums.assign(n, 0.0);
  out.col_sums.assign(n, 0.0);
  // B·e and eᵀ·A first, then one more matrix–vector product each: O(n^2).
  std::vector<double> be(n, 0.0);   // (B·e)[k] = Σ_j B(k,j)
  std::vector<double> ea(n, 0.0);   // (eᵀA)[k] = Σ_i A(i,k)
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) be[k] += b(k, j);
    for (std::size_t i = 0; i < n; ++i) ea[k] += a(i, k);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) out.row_sums[i] += a(i, k) * be[k];
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) out.col_sums[j] += ea[k] * b(k, j);
  }
  return out;
}

Checksums reference_checksums(const Matrix& a, const Matrix& b,
                              ThreadPool& pool) {
  HCMM_CHECK(a.rows() == a.cols() && b.rows() == b.cols() &&
                 a.rows() == b.rows(),
             "reference_checksums: operands must be square and equal-sized");
  const std::size_t n = a.rows();
  Checksums out;
  out.row_sums.assign(n, 0.0);
  out.col_sums.assign(n, 0.0);
  std::vector<double> be(n, 0.0);
  std::vector<double> ea(n, 0.0);
  // Partition each output vector into contiguous chunks; every entry is one
  // job's serial inner sum, so the split never changes a rounding step.
  const std::size_t nchunks =
      std::min(n, std::max<std::size_t>(std::size_t{1},
                                        4 * pool.thread_count()));
  if (nchunks <= 1) return reference_checksums(a, b);
  const auto bounds = [n, nchunks](std::size_t t) {
    return std::pair{n * t / nchunks, n * (t + 1) / nchunks};
  };
  std::vector<std::function<void()>> jobs;
  jobs.reserve(nchunks);
  for (std::size_t t = 0; t < nchunks; ++t) {
    const auto [lo, hi] = bounds(t);
    jobs.push_back([&a, &b, &be, &ea, n, lo = lo, hi = hi] {
      for (std::size_t k = lo; k < hi; ++k) {
        for (std::size_t j = 0; j < n; ++j) be[k] += b(k, j);
        for (std::size_t i = 0; i < n; ++i) ea[k] += a(i, k);
      }
    });
  }
  pool.run_batch(std::move(jobs));

  jobs.clear();
  jobs.reserve(2 * nchunks);
  for (std::size_t t = 0; t < nchunks; ++t) {
    const auto [lo, hi] = bounds(t);
    jobs.push_back([&a, &be, &out, n, lo = lo, hi = hi] {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t k = 0; k < n; ++k) out.row_sums[i] += a(i, k) * be[k];
      }
    });
    jobs.push_back([&b, &ea, &out, n, lo = lo, hi = hi] {
      for (std::size_t j = lo; j < hi; ++j) {
        for (std::size_t k = 0; k < n; ++k) out.col_sums[j] += ea[k] * b(k, j);
      }
    });
  }
  pool.run_batch(std::move(jobs));
  return out;
}

Residues residues(const Matrix& c, const Checksums& ref) {
  const std::size_t n = c.rows();
  HCMM_CHECK(c.cols() == n && ref.row_sums.size() == n &&
                 ref.col_sums.size() == n,
             "residues: shape mismatch between product and checksums");
  Residues out;
  out.row.assign(n, 0.0);
  out.col.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.row[i] += c(i, j);
      out.col[j] += c(i, j);
    }
  }
  for (std::size_t i = 0; i < n; ++i) out.row[i] -= ref.row_sums[i];
  for (std::size_t j = 0; j < n; ++j) out.col[j] -= ref.col_sums[j];
  return out;
}

double residue_tolerance(const Checksums& ref) {
  double scale = 1.0;
  for (const double v : ref.row_sums) scale = std::max(scale, std::abs(v));
  for (const double v : ref.col_sums) scale = std::max(scale, std::abs(v));
  const double n = static_cast<double>(ref.row_sums.size());
  return 1e-10 * scale * std::max(1.0, n);
}

namespace {

[[nodiscard]] std::vector<std::size_t> flagged(const std::vector<double>& r,
                                               double tol) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (std::abs(r[i]) > tol) out.push_back(i);
  }
  return out;
}

[[nodiscard]] double max_abs_at(const std::vector<double>& r,
                                const std::vector<std::size_t>& idx) {
  double m = 0.0;
  for (const std::size_t i : idx) m = std::max(m, std::abs(r[i]));
  return m;
}

}  // namespace

VerifyResult verify_and_correct(Matrix& c, const Checksums& ref, double tol) {
  VerifyResult out;
  const std::size_t n = c.rows();
  const Residues r = residues(c, ref);
  const std::vector<std::size_t> fr = flagged(r.row, tol);
  const std::vector<std::size_t> fc = flagged(r.col, tol);
  out.detected = fr.size() + fc.size();
  if (fr.empty() && fc.empty()) return out;

  auto uncorrectable = [&](const char* why) {
    std::ostringstream os;
    os << why << ": " << fr.size() << " rows and " << fc.size()
       << " columns flagged";
    out.ok = false;
    out.events.push_back({EventKind::kUncorrectable, AbftEvent::kNoIndex,
                          AbftEvent::kNoIndex,
                          std::max(max_abs_at(r.row, fr), max_abs_at(r.col, fc)),
                          os.str()});
  };

  if (fr.size() == 1 && fc.size() == 1) {
    // A single flagged row and column cross at the corrupted element; the
    // column residue is exactly the error added there.
    const std::size_t i = fr.front();
    const std::size_t j = fc.front();
    c(i, j) -= r.col[j];
    out.corrected = 1;
    out.events.push_back(
        {EventKind::kElementCorrected, i, j, std::abs(r.col[j]), ""});
  } else if (fr.size() == 1) {
    // Error confined to one row (a corrupted A element spreads over the
    // whole row): the column residues are that row's element-wise errors.
    const std::size_t i = fr.front();
    for (std::size_t j = 0; j < n; ++j) c(i, j) -= r.col[j];
    out.corrected = fc.size();
    out.events.push_back({EventKind::kRowCorrected, i, AbftEvent::kNoIndex,
                          max_abs_at(r.col, fc), ""});
  } else if (fc.size() == 1) {
    // Mirror case: error confined to one column (a corrupted B element).
    const std::size_t j = fc.front();
    for (std::size_t i = 0; i < n; ++i) c(i, j) -= r.row[i];
    out.corrected = fr.size();
    out.events.push_back({EventKind::kColCorrected, AbftEvent::kNoIndex, j,
                          max_abs_at(r.row, fr), ""});
  } else {
    // Several rows *and* several columns flagged — the error is not
    // confined, so the residues cannot locate it.  (fr or fc empty with the
    // other non-empty lands here too: an inconsistent pattern.)
    uncorrectable("residue pattern spans multiple rows and columns");
    return out;
  }

  // Certify the repair: the corrected product must satisfy both invariants.
  const Residues post = residues(c, ref);
  if (!flagged(post.row, tol).empty() || !flagged(post.col, tol).empty()) {
    uncorrectable("correction did not converge");
  }
  return out;
}

}  // namespace hcmm::abft
