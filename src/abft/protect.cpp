#include "hcmm/abft/protect.hpp"

#include <sstream>
#include <utility>

#include "hcmm/abft/checksum.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::abft {
namespace {

/// "abft encode": every node contributes the checksums of its slice of the
/// product rows as one bundled 2n-word item (column-sum partial ‖ row-sum
/// partial), reduced to node 0 and broadcast back over the whole cube
/// through the regular collective schedules — the checksum traffic rides the
/// same machinery, legality checks, and cost model as the data it guards.
void run_encode(Machine& m, const Matrix& c) {
  const std::uint32_t p = m.cube().size();
  const std::size_t n = c.rows();
  const Subcube sc(0, p - 1);
  const Tag tag = make_tag(kSpaceChecksum);
  std::vector<std::pair<NodeId, std::uint64_t>> flops;
  flops.reserve(p);
  for (std::uint32_t r = 0; r < p; ++r) {
    const NodeId node = sc.node_at(r);
    const auto [lo, hi] = chunk_bounds(n, p, r);
    std::vector<double> part(2 * n, 0.0);
    for (std::size_t i = lo; i < hi; ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        part[j] += c(i, j);  // column-sum partial
        row_sum += c(i, j);
      }
      part[n + i] = row_sum;  // row-sum partial
    }
    m.store().put(node, tag, std::move(part));
    flops.emplace_back(node, 2 * (hi - lo) * n);
  }
  m.begin_phase("abft encode");
  m.charge_compute(flops);
  coll::op_reduce(m, sc, 0, tag);
  coll::op_bcast(m, sc, 0, tag);
}

/// "abft verify": each node re-sums its share of the product against the
/// broadcast checksums — ~4n²/p multiply-adds (row pass + column pass).
void run_verify(Machine& m, std::size_t n) {
  const std::uint32_t p = m.cube().size();
  m.begin_phase("abft verify");
  const std::uint64_t per_node =
      (4 * static_cast<std::uint64_t>(n) * n + p - 1) / p;
  std::vector<std::pair<NodeId, std::uint64_t>> flops;
  flops.reserve(p);
  for (NodeId node = 0; node < p; ++node) flops.emplace_back(node, per_node);
  m.charge_compute(flops);
}

}  // namespace

Protected::Protected(std::unique_ptr<algo::DistributedMatmul> inner)
    : inner_(std::move(inner)) {
  HCMM_CHECK(inner_ != nullptr, "abft::protect: null inner algorithm");
}

algo::AlgoId Protected::id() const noexcept { return inner_->id(); }

std::string Protected::name() const { return "ABFT(" + inner_->name() + ")"; }

bool Protected::applicable(std::size_t n, std::uint32_t p) const {
  return inner_->applicable(n, p);
}

bool Protected::supports(PortModel port) const {
  return inner_->supports(port);
}

algo::RunResult Protected::run(const Matrix& a, const Matrix& b,
                               Machine& m) const {
  struct CheckpointGuard {
    Machine& m;
    bool prev;
    ~CheckpointGuard() { m.set_checkpointing(prev); }
  } guard{m, m.checkpointing()};
  m.set_checkpointing(true);

  // Each recovery converts exactly one scheduled death — mid-run or
  // mid-replay — into a permanent structural fault, so the attempt budget is
  // the number of scheduled victims plus the final clean pass.  Checkpoint
  // corruption consumes no extra attempt: it only escalates the rollback a
  // death already paid for into a restart from scratch.
  std::uint64_t budget = 1;
  if (const fault::FaultPlan* plan = m.fault_plan()) {
    for (const auto& [round, victims] : plan->kill_at) {
      budget += victims.size();
    }
    for (const auto& [round, victims] : plan->kill_at_replay) {
      budget += victims.size();
    }
  }

  algo::RunResult res;
  for (std::uint64_t attempt = 0;; ++attempt) {
    try {
      res = inner_->run(a, b, m);
      run_encode(m, res.c);
      break;
    } catch (const fault::FaultAbort& abort) {
      const fault::FaultEvent ev = abort.event();
      const bool death = ev.kind == fault::FaultKind::kMidRunDeath ||
                         ev.kind == fault::FaultKind::kReplayDeath;
      if (!death || attempt + 1 >= budget) throw;
      HCMM_CHECK(m.fault_plan() != nullptr,
                 "mid-run death without an installed fault plan");
      auto updated = std::make_shared<fault::FaultPlan>(*m.fault_plan());
      updated->set.kill_node(ev.src);
      auto& triggers = ev.kind == fault::FaultKind::kMidRunDeath
                           ? updated->kill_at
                           : updated->kill_at_replay;
      if (auto it = triggers.find(ev.round); it != triggers.end()) {
        it->second.erase(ev.src);
        if (it->second.empty()) triggers.erase(it);
      }
      try {
        // Throws a located kUnroutable / kHostless FaultAbort when the death
        // leaves no feasible contraction — a clean abort, not a wrong answer.
        m.rollback_to_checkpoint(updated, ev);
      } catch (const fault::FaultAbort& ck) {
        // The snapshot the ladder wanted is corrupt (or was never taken):
        // escalate past rollback and re-run the whole algorithm from scratch
        // under the same updated plan.  Anything else is terminal.
        if (ck.event().kind != fault::FaultKind::kCheckpointCorrupt) throw;
        m.restart_from_scratch(updated, ck.event());
      }
    }
  }

  // Verdicts use host-recomputed reference checksums: the distributed
  // checksum channel above is charged like real traffic but could itself be
  // silently corrupted, so trusting it would let one flip defeat the scheme
  // (a deliberate idealization — see docs/ABFT.md).  The recompute runs on
  // the machine's pool; partitioning is per output entry, so the result is
  // bit-identical to the serial sum.
  const Checksums ref = reference_checksums(a, b, m.pool());
  run_verify(m, res.c.rows());
  VerifyResult vr = verify_and_correct(res.c, ref, residue_tolerance(ref));
  m.note_abft(vr.detected, vr.corrected);
  std::string first_detail;
  for (auto& ev : vr.events) {
    if (!vr.ok && first_detail.empty() &&
        ev.kind == EventKind::kUncorrectable) {
      first_detail = ev.to_string();
    }
    m.record_abft_event(std::move(ev));
  }
  if (!vr.ok) {
    throw fault::FaultAbort({fault::FaultKind::kAbftUncorrectable, 0, 0, 0, 0,
                             first_detail});
  }
  res.report = m.report();
  return res;
}

std::unique_ptr<algo::DistributedMatmul> protect(
    std::unique_ptr<algo::DistributedMatmul> inner) {
  return std::make_unique<Protected>(std::move(inner));
}

std::unique_ptr<algo::DistributedMatmul> make_protected(algo::AlgoId id) {
  return protect(algo::make_algorithm(id));
}

std::vector<std::unique_ptr<algo::DistributedMatmul>> all_protected() {
  std::vector<std::unique_ptr<algo::DistributedMatmul>> out;
  for (auto& a : algo::all_algorithms()) out.push_back(protect(std::move(a)));
  return out;
}

}  // namespace hcmm::abft
