// 3-D All algorithm (paper §4.2.2) — the paper's headline contribution.
// Same A-style partition for BOTH operands (p_{i,j,k} holds A_{k,f(i,j)}
// and B_{k,f(i,j)}, Fig. 8).  Phase 1 is an all-to-all personalized
// exchange of B row-groups along y, which re-shuffles B into the transposed
// layout 3D All_Trans assumes — at a cost of only (t_s + t_w n^2/2p) log q.
// Phase 2 all-to-all broadcasts A along x and the B piece bundles along z
// (overlapped on multi-port nodes); phase 3 is the same all-to-all
// reduction along y as All_Trans.  C comes out aligned like A and B.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class All3D final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override { return AlgoId::kAll3D; }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p) || exact_log2(p) % 3 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 3);
    // Row groups of a block are (n/q^2) x (n/q^2); need n divisible by q^2.
    return n % (static_cast<std::size_t>(q) * q) == 0 &&
           static_cast<std::uint64_t>(p) * p <=
               static_cast<std::uint64_t>(n) * n * n;  // p <= n^{3/2}
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "All3D: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "All3D: not applicable for n=" << n << " p="
                                              << machine.cube().size());
    const Grid3D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t bh = n / q;        // block height
    const std::size_t bw = n / (q * q);  // block width == row-group height
    DataStore& store = machine.store();

    auto ta = [](std::uint32_t k, std::uint32_t f) { return tag3(kSpaceA, k, f); };
    auto tb = [](std::uint32_t k, std::uint32_t f) { return tag3(kSpaceB, k, f); };
    // Row-group piece: group `dst` of B_{k, f(i, src)} inside chain (i,k).
    auto tpb = [q](std::uint32_t i, std::uint32_t k, std::uint32_t src,
                   std::uint32_t dst) {
      return tag3(kSpacePieceB, i, k, src * q + dst);
    };
    auto ti = [](std::uint32_t k, std::uint32_t i, std::uint32_t l) {
      return tag3(kSpaceI, k, i, l);
    };

    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const NodeId nd = grid.node(i, j, k);
          const std::uint32_t f = grid.f(i, j);
          stage_region(machine, nd, ta(k, f), SemOperand::kA, a, k * bh,
                       f * bw, bh, bw);
          stage_region(machine, nd, tb(k, f), SemOperand::kB, b, k * bh,
                       f * bw, bh, bw);
        }
      }
    }
    machine.reset_stats();

    // Phase 1: cut each local B block into q row groups and exchange them
    // all-to-all (personalized) along y: group l of B_{k,f(i,j)} goes to
    // p_{i,l,k}.  (The cutting is local data movement, not communication.)
    machine.begin_phase("alltoall B");
    {
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          for (std::uint32_t k = 0; k < q; ++k) {
            const NodeId nd = grid.node(i, j, k);
            std::vector<SemanticEvent::Piece> pieces;
            pieces.reserve(q);
            for (std::uint32_t l = 0; l < q; ++l) {
              pieces.push_back({tpb(i, k, j, l), {l * bw, 0, bw, bw}});
            }
            slice_item(machine, nd, tb(k, grid.f(i, j)), bh, bw, pieces);
          }
        }
      }
      std::vector<coll::PreparedColl> exchanges;
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const Subcube chain = grid.y_chain(i, k);
          std::vector<Tag> flat(static_cast<std::size_t>(q) * q, 0);
          for (std::uint32_t j = 0; j < q; ++j) {
            const std::uint32_t src_rank = chain.rank_of(grid.node(i, j, k));
            for (std::uint32_t l = 0; l < q; ++l) {
              const std::uint32_t dst_rank = chain.rank_of(grid.node(i, l, k));
              flat[static_cast<std::size_t>(src_rank) * q + dst_rank] =
                  tpb(i, k, j, l);
            }
          }
          exchanges.push_back(coll::prep_alltoall(machine, chain, flat));
        }
      }
      coll::run_prepared(machine, exchanges);
    }

    // Phase 2: all-to-all broadcast of A along x, and of the B piece
    // bundles along z.  After this p_{i,j,k} holds A_{k,f(*,j)} and
    // group j of B_{m,f(i,*)} for every m — i.e. B_{f(*,j),i} of Fig. 9.
    std::vector<coll::PreparedColl> ag_a;
    std::vector<coll::PreparedColl> ag_b;
    for (std::uint32_t j = 0; j < q; ++j) {
      for (std::uint32_t k = 0; k < q; ++k) {
        const Subcube chain = grid.x_chain(j, k);
        std::vector<Tag> tags(q);
        for (std::uint32_t i = 0; i < q; ++i) {
          tags[chain.rank_of(grid.node(i, j, k))] = ta(k, grid.f(i, j));
        }
        ag_a.push_back(coll::prep_allgather(machine, chain, tags));
      }
    }
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        const Subcube chain = grid.z_chain(i, j);
        std::vector<std::vector<Tag>> bundles(q);
        for (std::uint32_t k = 0; k < q; ++k) {
          auto& bundle = bundles[chain.rank_of(grid.node(i, j, k))];
          bundle.reserve(q);
          // After phase 1, p_{i,j,k} holds pieces tpb(i, k, l, j) for all l.
          for (std::uint32_t l = 0; l < q; ++l) {
            bundle.push_back(tpb(i, k, l, j));
          }
        }
        ag_b.push_back(coll::prep_allgather_bundles(machine, chain, bundles));
      }
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("allgather A||B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : ag_a) all.push_back(std::move(c));
      for (auto& c : ag_b) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("allgather A");
      coll::run_prepared(machine, ag_a);
      machine.begin_phase("allgather B");
      coll::run_prepared(machine, ag_b);
    }

    // Compute: I_{k,i} = sum_m A_{k,f(m,j)} * B_{f(m,j),i}, where
    // B_{f(m,j),i} is the column-wise concatenation over l of piece
    // tpb(i, m, l, j).  Then cut I into its q column pieces for phase 3.
    machine.begin_phase("compute");
    {
      std::vector<GemmJob> jobs;
      std::vector<Accum> partials;
      std::vector<std::array<std::uint32_t, 3>> coords;
      partials.reserve(static_cast<std::size_t>(q) * q * q);
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          for (std::uint32_t k = 0; k < q; ++k) {
            const NodeId nd = grid.node(i, j, k);
            partials.push_back(make_accum(machine, nd, bh, bh));
            coords.push_back({i, j, k});
            for (std::uint32_t m = 0; m < q; ++m) {
              std::vector<Tag> piece_tags;
              piece_tags.reserve(q);
              for (std::uint32_t l = 0; l < q; ++l) {
                piece_tags.push_back(tpb(i, m, l, j));
              }
              jobs.push_back(
                  GemmJob{nd, mat_ref(store, nd, ta(k, grid.f(m, j)), bh, bw),
                          mat_concat_cols(store, nd, piece_tags, bw, bw),
                          GemmDest::into(partials.back())});
            }
          }
        }
      }
      run_gemm_jobs(machine, std::move(jobs));
      for (std::size_t s = 0; s < partials.size(); ++s) {
        const auto [i, j, k] = coords[s];
        std::vector<SemanticEvent::Piece> pieces;
        pieces.reserve(q);
        for (std::uint32_t l = 0; l < q; ++l) {
          pieces.push_back({ti(k, i, l), {0, l * bw, bh, bw}});
        }
        flush_slices(machine, partials[s], pieces);
      }
    }

    // Phase 3: all-to-all reduction along y (identical to All_Trans).
    machine.begin_phase("reduce-scatter");
    {
      std::vector<coll::PreparedColl> reductions;
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const Subcube chain = grid.y_chain(i, k);
          std::vector<Tag> tags(q);
          for (std::uint32_t l = 0; l < q; ++l) {
            tags[chain.rank_of(grid.node(i, l, k))] = ti(k, i, l);
          }
          reductions.push_back(
              coll::prep_reduce_scatter(machine, chain, tags));
        }
      }
      coll::run_prepared(machine, reductions);
    }

    RunResult out;
    out.c = Matrix(n, n);
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t k = 0; k < q; ++k) {
          collect_block(machine, grid.node(i, j, k), ti(k, i, j), bh, bw,
                        out.c, k * bh, grid.f(i, j) * bw);
        }
      }
    }
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_all3d() {
  return std::make_unique<All3D>();
}

}  // namespace hcmm::algo::detail
