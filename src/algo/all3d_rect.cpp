// 3-D All on a rectangular p^{1/4} x p^{1/4} x sqrt(p) grid — the
// extension the paper sketches in §4.2.2's closing paragraph: "mapping a
// 3-D grid of size p^{1/4} x p^{1/4} x sqrt(p) onto a p-processor hypercube
// can allow us to use upto n^2 processors ... the overall space requirement
// increases to n^2 sqrt(p) + n^2 p^{1/4}".
//
// With qx = qy = p^{1/4} and qz = sqrt(p) = qx*qy, the blocks become square
// (n/sqrt(p) each side) and B's row partition aligns directly with A's
// column partition, which simplifies phase 1 from an all-to-all
// personalized exchange to gathers along y:
//   stage   : p_{i,j,k} holds A_{k,f(i,j)} and B_{k,f(i,j)}, f(i,j)=i*qy+j;
//   phase 1 : along every y-chain (i,*,k), the blocks B_{k,f(i,*)} gather
//             to the member y = k mod qy (whose plane needs row-block k);
//   phase 2 : all-to-all broadcast of A along x, and of the gathered B
//             bundles along z (only the members with k = m*qy + j
//             contribute) — each node acquires A_{k,f(*,j)} (n^2 p^{1/4}
//             overall) and B's full plane-j row set (n^2 sqrt(p) overall,
//             the paper's space figures);
//   compute : I^j_{k,i} = sum_m A_{k,f(m,j)} * B[rows f(m,j), col-group i]
//             — complete within the plane, no partial sums;
//   phase 3 : all-to-all reduction along y sums the planes and leaves
//             C_{k,f(i,j)} at p_{i,j,k}, aligned with A and B.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class All3DRect final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override {
    return AlgoId::kAll3DRect;
  }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p) || exact_log2(p) % 4 != 0) return false;
    const std::uint32_t qz = 1u << (exact_log2(p) / 2);  // sqrt(p)
    return n % qz == 0 && static_cast<std::uint64_t>(p) <= n * n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "All3DRect: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "All3DRect: not applicable for n=" << n << " p="
                                                  << machine.cube().size());
    const std::uint32_t q1 = 1u << (exact_log2(machine.cube().size()) / 4);
    const std::uint32_t qz = q1 * q1;
    const Grid3DRect grid(q1, q1, qz);
    const std::size_t blk = n / qz;  // square block edge
    DataStore& store = machine.store();

    auto ta = [](std::uint32_t k, std::uint32_t f) { return tag3(kSpaceA, k, f); };
    auto tb = [](std::uint32_t k, std::uint32_t f) { return tag3(kSpaceB, k, f); };
    auto ti = [](std::uint32_t k, std::uint32_t i, std::uint32_t l) {
      return tag3(kSpaceI, k, i, l);
    };

    for (std::uint32_t i = 0; i < q1; ++i) {
      for (std::uint32_t j = 0; j < q1; ++j) {
        for (std::uint32_t k = 0; k < qz; ++k) {
          const NodeId nd = grid.node(i, j, k);
          const std::uint32_t f = grid.f(i, j);
          stage_region(machine, nd, ta(k, f), SemOperand::kA, a, k * blk,
                       f * blk, blk, blk);
          stage_region(machine, nd, tb(k, f), SemOperand::kB, b, k * blk,
                       f * blk, blk, blk);
        }
      }
    }
    machine.reset_stats();

    // Phase 1: along each y-chain, gather B_{k, f(i,*)} to y = k mod qy.
    machine.begin_phase("gather B along y");
    {
      std::vector<coll::PreparedColl> gathers;
      for (std::uint32_t i = 0; i < q1; ++i) {
        for (std::uint32_t k = 0; k < qz; ++k) {
          const Subcube chain = grid.y_chain(i, k);
          std::vector<Tag> tags(q1);
          for (std::uint32_t l = 0; l < q1; ++l) {
            tags[chain.rank_of(grid.node(i, l, k))] = tb(k, grid.f(i, l));
          }
          gathers.push_back(coll::prep_gather(
              machine, chain, grid.node(i, k % q1, k), tags));
        }
      }
      coll::run_prepared(machine, gathers);
    }

    // Phase 2: all-to-all broadcast of A along x; all-to-all broadcast of
    // the gathered B bundles along z (sparse: only k = m*qy + j members
    // contribute on chain (i,j,*)).
    std::vector<coll::PreparedColl> ag_a;
    std::vector<coll::PreparedColl> ag_b;
    for (std::uint32_t j = 0; j < q1; ++j) {
      for (std::uint32_t k = 0; k < qz; ++k) {
        const Subcube chain = grid.x_chain(j, k);
        std::vector<Tag> tags(q1);
        for (std::uint32_t i = 0; i < q1; ++i) {
          tags[chain.rank_of(grid.node(i, j, k))] = ta(k, grid.f(i, j));
        }
        ag_a.push_back(coll::prep_allgather(machine, chain, tags));
      }
    }
    for (std::uint32_t i = 0; i < q1; ++i) {
      for (std::uint32_t j = 0; j < q1; ++j) {
        const Subcube chain = grid.z_chain(i, j);
        std::vector<std::vector<Tag>> bundles(qz);
        for (std::uint32_t m = 0; m < q1; ++m) {
          const std::uint32_t k = m * q1 + j;
          auto& bundle = bundles[chain.rank_of(grid.node(i, j, k))];
          for (std::uint32_t l = 0; l < q1; ++l) {
            bundle.push_back(tb(k, grid.f(i, l)));
          }
        }
        ag_b.push_back(coll::prep_allgather_bundles(machine, chain, bundles));
      }
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("allgather A||B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : ag_a) all.push_back(std::move(c));
      for (auto& c : ag_b) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("allgather A");
      coll::run_prepared(machine, ag_a);
      machine.begin_phase("allgather B");
      coll::run_prepared(machine, ag_b);
    }

    // Compute: the complete plane-j product slice I^j_{k,i}
    // (blk x qy*blk), then cut into qy column pieces for phase 3.
    machine.begin_phase("compute");
    {
      std::vector<GemmJob> jobs;
      std::vector<Accum> slices;
      std::vector<std::array<std::uint32_t, 3>> coords;
      slices.reserve(static_cast<std::size_t>(q1) * q1 * qz);
      for (std::uint32_t i = 0; i < q1; ++i) {
        for (std::uint32_t j = 0; j < q1; ++j) {
          for (std::uint32_t k = 0; k < qz; ++k) {
            const NodeId nd = grid.node(i, j, k);
            slices.push_back(make_accum(
                machine, nd, blk, static_cast<std::size_t>(q1) * blk));
            coords.push_back({i, j, k});
            for (std::uint32_t m = 0; m < q1; ++m) {
              const std::uint32_t row_block = m * q1 + j;
              std::vector<Tag> piece_tags;
              piece_tags.reserve(q1);
              for (std::uint32_t l = 0; l < q1; ++l) {
                piece_tags.push_back(tb(row_block, grid.f(i, l)));
              }
              jobs.push_back(GemmJob{
                  nd, mat_ref(store, nd, ta(k, grid.f(m, j)), blk, blk),
                  mat_concat_cols(store, nd, piece_tags, blk, blk),
                  GemmDest::into(slices.back())});
            }
          }
        }
      }
      run_gemm_jobs(machine, std::move(jobs));
      for (std::size_t s = 0; s < slices.size(); ++s) {
        const auto [i, j, k] = coords[s];
        std::vector<SemanticEvent::Piece> pieces;
        pieces.reserve(q1);
        for (std::uint32_t l = 0; l < q1; ++l) {
          pieces.push_back({ti(k, i, l), {0, l * blk, blk, blk}});
        }
        flush_slices(machine, slices[s], pieces);
      }
    }

    // Phase 3: all-to-all reduction along y sums the plane slices.
    machine.begin_phase("reduce-scatter");
    {
      std::vector<coll::PreparedColl> reductions;
      for (std::uint32_t i = 0; i < q1; ++i) {
        for (std::uint32_t k = 0; k < qz; ++k) {
          const Subcube chain = grid.y_chain(i, k);
          std::vector<Tag> tags(q1);
          for (std::uint32_t l = 0; l < q1; ++l) {
            tags[chain.rank_of(grid.node(i, l, k))] = ti(k, i, l);
          }
          reductions.push_back(
              coll::prep_reduce_scatter(machine, chain, tags));
        }
      }
      coll::run_prepared(machine, reductions);
    }

    RunResult out;
    out.c = Matrix(n, n);
    for (std::uint32_t i = 0; i < q1; ++i) {
      for (std::uint32_t j = 0; j < q1; ++j) {
        for (std::uint32_t k = 0; k < qz; ++k) {
          collect_block(machine, grid.node(i, j, k), ti(k, i, j), blk, blk,
                        out.c, k * blk, grid.f(i, j) * blk);
        }
      }
    }
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_all3d_rect() {
  return std::make_unique<All3DRect>();
}

}  // namespace hcmm::algo::detail
