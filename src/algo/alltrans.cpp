// 3-D All_Trans algorithm (paper §4.2.1) — the 2-D Diagonal scheme extended
// so that EVERY processor column holds operand data, not just the diagonal.
// A is partitioned q x q^2 (Fig. 8) and B q^2 x q (Fig. 9) with p_{i,j,k}
// holding A_{k,f(i,j)} and B_{f(i,j),k}, f(i,j) = i*q + j — i.e. B starts
// distributed like A's transpose.  Phase 1 gathers each row of B along x to
// the plane x = z; phase 2 all-to-all broadcasts A along x while the
// gathered B bundles broadcast along z; phase 3 is an all-to-all reduction
// along y that leaves C aligned like A.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class AllTrans final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override {
    return AlgoId::kAllTrans;
  }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p) || exact_log2(p) % 3 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 3);
    // Blocks are (n/q) x (n/q^2); the reduction pieces are (n/q) x (n/q^2).
    return n % (static_cast<std::size_t>(q) * q) == 0 &&
           static_cast<std::uint64_t>(p) * p <=
               static_cast<std::uint64_t>(n) * n * n;  // p <= n^{3/2}
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "AllTrans: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "AllTrans: not applicable for n=" << n << " p="
                                                 << machine.cube().size());
    const Grid3D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t bh = n / q;        // block height of A pieces
    const std::size_t bw = n / (q * q);  // block width of A pieces
    DataStore& store = machine.store();

    // A_{k, f(i,j)}: k-th block row, f(i,j)-th block column (Fig. 8).
    auto ta = [](std::uint32_t k, std::uint32_t f) { return tag3(kSpaceA, k, f); };
    // B_{f(i,j), k} (Fig. 9): stored transposed relative to A's layout.
    auto tb = [](std::uint32_t f, std::uint32_t k) { return tag3(kSpaceB, f, k); };
    // I piece destined to y = l (becomes C_{k, f(i,l)}).
    auto ti = [](std::uint32_t k, std::uint32_t i, std::uint32_t l) {
      return tag3(kSpaceI, k, i, l);
    };

    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const NodeId nd = grid.node(i, j, k);
          const std::uint32_t f = grid.f(i, j);
          stage_region(machine, nd, ta(k, f), SemOperand::kA, a, k * bh,
                       f * bw, bh, bw);
          stage_region(machine, nd, tb(f, k), SemOperand::kB, b, f * bw,
                       k * bh, bw, bh);
        }
      }
    }
    machine.reset_stats();

    // Phase 1: gather B_{f(*,j),k} along each x-chain to the node x = k.
    machine.begin_phase("gather B");
    {
      std::vector<coll::PreparedColl> gathers;
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const Subcube chain = grid.x_chain(j, k);
          std::vector<Tag> tags(q);
          for (std::uint32_t i = 0; i < q; ++i) {
            tags[chain.rank_of(grid.node(i, j, k))] = tb(grid.f(i, j), k);
          }
          gathers.push_back(
              coll::prep_gather(machine, chain, grid.node(k, j, k), tags));
        }
      }
      coll::run_prepared(machine, gathers);
    }

    // Phase 2: all-to-all broadcast of A along x; one-to-all broadcast of
    // the gathered B bundle from p_{k,j,k} along z.  Multi-port overlaps.
    std::vector<coll::PreparedColl> ag_a;
    std::vector<coll::PreparedColl> bc_b;
    for (std::uint32_t j = 0; j < q; ++j) {
      for (std::uint32_t k = 0; k < q; ++k) {
        const Subcube chain = grid.x_chain(j, k);
        std::vector<Tag> tags(q);
        for (std::uint32_t i = 0; i < q; ++i) {
          tags[chain.rank_of(grid.node(i, j, k))] = ta(k, grid.f(i, j));
        }
        ag_a.push_back(coll::prep_allgather(machine, chain, tags));
      }
    }
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        // Node p_{i,j,i} holds B_{f(*,j),i}; broadcast the bundle along z.
        std::vector<Tag> bundle(q);
        for (std::uint32_t l = 0; l < q; ++l) bundle[l] = tb(grid.f(l, j), i);
        bc_b.push_back(coll::prep_bcast_bundle(machine, grid.z_chain(i, j),
                                               grid.node(i, j, i), bundle));
      }
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("allgather A||bcast B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : ag_a) all.push_back(std::move(c));
      for (auto& c : bc_b) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("allgather A");
      coll::run_prepared(machine, ag_a);
      machine.begin_phase("bcast B");
      coll::run_prepared(machine, bc_b);
    }

    // Compute: p_{i,j,k} forms I_{k,i} = sum_l A_{k,f(l,j)} B_{f(l,j),i},
    // then cuts it into q column pieces for the reduction.
    machine.begin_phase("compute");
    {
      std::vector<GemmJob> jobs;
      std::vector<Accum> partials;
      std::vector<std::array<std::uint32_t, 3>> coords;
      partials.reserve(static_cast<std::size_t>(q) * q * q);
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          for (std::uint32_t k = 0; k < q; ++k) {
            const NodeId nd = grid.node(i, j, k);
            partials.push_back(make_accum(machine, nd, bh, bh));
            coords.push_back({i, j, k});
            for (std::uint32_t l = 0; l < q; ++l) {
              jobs.push_back(
                  GemmJob{nd, mat_ref(store, nd, ta(k, grid.f(l, j)), bh, bw),
                          mat_ref(store, nd, tb(grid.f(l, j), i), bw, bh),
                          GemmDest::into(partials.back())});
            }
          }
        }
      }
      run_gemm_jobs(machine, std::move(jobs));
      for (std::size_t s = 0; s < partials.size(); ++s) {
        const auto [i, j, k] = coords[s];
        std::vector<SemanticEvent::Piece> pieces;
        pieces.reserve(q);
        for (std::uint32_t l = 0; l < q; ++l) {
          pieces.push_back({ti(k, i, l), {0, l * bw, bh, bw}});
        }
        flush_slices(machine, partials[s], pieces);
      }
    }

    // Phase 3: all-to-all reduction along y; piece l of I_{k,i} lands at
    // p_{i,l,k} as C_{k,f(i,l)}.
    machine.begin_phase("reduce-scatter");
    {
      std::vector<coll::PreparedColl> reductions;
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const Subcube chain = grid.y_chain(i, k);
          std::vector<Tag> tags(q);
          for (std::uint32_t l = 0; l < q; ++l) {
            tags[chain.rank_of(grid.node(i, l, k))] = ti(k, i, l);
          }
          reductions.push_back(
              coll::prep_reduce_scatter(machine, chain, tags));
        }
      }
      coll::run_prepared(machine, reductions);
    }

    RunResult out;
    out.c = Matrix(n, n);
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t k = 0; k < q; ++k) {
          collect_block(machine, grid.node(i, j, k), ti(k, i, j), bh, bw,
                        out.c, k * bh, grid.f(i, j) * bw);
        }
      }
    }
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_alltrans() {
  return std::make_unique<AllTrans>();
}

}  // namespace hcmm::algo::detail
