// Berntsen's algorithm (paper §3.4): split A by columns and B by rows into
// cbrt(p) sets; subcube k (one x-y plane of the 3-D grid) computes the
// outer product of set k with Cannon's algorithm on its q x q face; the
// cbrt(p) outer products then combine by an all-to-all reduction along z.
// Applicable for p <= n^{3/2}; starts from a non-checkerboard distribution
// and ends with C distributed differently from A and B (the drawback the
// paper notes).

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/coll/ring.hpp"
#include "hcmm/coll/route.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class Berntsen final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override {
    return AlgoId::kBerntsen;
  }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p) || exact_log2(p) % 3 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 3);
    // A sub-blocks are (n/q) x (n/q^2) and the final reduce-scatter cuts
    // (n/q) x (n/q) outer-product blocks into q row groups.
    return n % (static_cast<std::size_t>(q) * q) == 0 &&
           static_cast<std::uint64_t>(p) * p <=
               static_cast<std::uint64_t>(n) * n * n;  // p <= n^{3/2}
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "Berntsen: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "Berntsen: not applicable for n=" << n << " p="
                                                 << machine.cube().size());
    const Grid3D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t bh = n / q;        // Cannon block height on each face
    const std::size_t bw = n / (q * q);  // A block width / B block height

    // Face k (plane z = k) gets column set k of A, block (i,j) of the set
    // at face position (row i, col j), and row set k of B likewise.
    auto face_node = [&grid](std::uint32_t k, std::uint32_t row,
                             std::uint32_t col) {
      return grid.node(col, row, k);  // row = y, col = x
    };
    auto ta = [](std::uint32_t k, std::uint32_t i, std::uint32_t j) {
      return tag3(kSpaceA, k, i, j);
    };
    auto tb = [](std::uint32_t k, std::uint32_t i, std::uint32_t j) {
      return tag3(kSpaceB, k, i, j);
    };
    auto to = [](std::uint32_t k, std::uint32_t i, std::uint32_t j) {
      return tag3(kSpaceI, k, i, j);
    };
    // Final C piece: row group z of outer-product block (i,j).
    auto tc = [](std::uint32_t i, std::uint32_t j, std::uint32_t z) {
      return tag3(kSpaceC, i, j, z);
    };

    for (std::uint32_t k = 0; k < q; ++k) {
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          // A set k is columns [k*n/q, (k+1)*n/q); its (i,j) sub-block is
          // (n/q) x (n/q^2).  B set k is the corresponding rows.
          stage_region(machine, face_node(k, i, j), ta(k, i, j),
                       SemOperand::kA, a, i * bh, k * bh + j * bw, bh, bw);
          stage_region(machine, face_node(k, i, j), tb(k, i, j),
                       SemOperand::kB, b, k * bh + i * bw, j * bh, bw, bh);
        }
      }
    }
    machine.reset_stats();

    // Outer products: Cannon on every face, all faces in lockstep (they
    // are disjoint subcubes, so each round carries every face's transfers
    // and the measured cost equals one face's schedule).
    {
      std::vector<CannonFace> faces;
      faces.reserve(q);
      for (std::uint32_t k = 0; k < q; ++k) {
        faces.push_back(CannonFace{
            GridFace{
                .q = q,
                .node = [&grid, k](std::uint32_t row, std::uint32_t col) {
                  return grid.node(col, row, k);
                },
                .row_chain = [&grid, k](std::uint32_t row) {
                  return grid.x_chain(row, k);
                },
                .col_chain = [&grid, k](std::uint32_t col) {
                  return grid.y_chain(col, k);
                },
            },
            [ta, k](std::uint32_t i, std::uint32_t j) { return ta(k, i, j); },
            [tb, k](std::uint32_t i, std::uint32_t j) { return tb(k, i, j); },
            [to, k](std::uint32_t i, std::uint32_t j) { return to(k, i, j); },
        });
      }
      cannon_lockstep(machine, faces, bh, bw, bh, "cannon ");
    }

    // Reduction: corresponding processors across faces form z-chains; cut
    // each outer-product block into q row groups and reduce-scatter so that
    // face z keeps group z.
    machine.begin_phase("reduce-scatter z");
    {
      for (std::uint32_t k = 0; k < q; ++k) {
        for (std::uint32_t i = 0; i < q; ++i) {
          for (std::uint32_t j = 0; j < q; ++j) {
            const NodeId nd = face_node(k, i, j);
            std::vector<SemanticEvent::Piece> pieces;
            pieces.reserve(q);
            for (std::uint32_t z = 0; z < q; ++z) {
              pieces.push_back({tc(i, j, z), {z * bw, 0, bw, bh}});
            }
            slice_item(machine, nd, to(k, i, j), bh, bh, pieces);
          }
        }
      }
      std::vector<coll::PreparedColl> reductions;
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          const Subcube chain = grid.z_chain(j, i);  // x = col j, y = row i
          std::vector<Tag> tags(q);
          for (std::uint32_t z = 0; z < q; ++z) {
            tags[chain.rank_of(face_node(z, i, j))] = tc(i, j, z);
          }
          reductions.push_back(
              coll::prep_reduce_scatter(machine, chain, tags));
        }
      }
      coll::run_prepared(machine, reductions);
    }

    RunResult out;
    out.c = Matrix(n, n);
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t z = 0; z < q; ++z) {
          collect_block(machine, face_node(z, i, j), tc(i, j, z), bw, bh,
                        out.c, i * bh + z * bw, j * bh);
        }
      }
    }
    out.report = machine.report();
    return out;
  }

};

}  // namespace

std::unique_ptr<DistributedMatmul> make_berntsen() {
  return std::make_unique<Berntsen>();
}

}  // namespace hcmm::algo::detail
