// Cannon's algorithm (paper §3.2): skew-align A and B on the sqrt(p) x
// sqrt(p) grid, then sqrt(p) shift-multiply-add steps along Gray-code rings.
// Constant storage (3 n^2 overall) but O(sqrt(p)) start-ups.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class Cannon final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override { return AlgoId::kCannon; }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p)) return false;
    if (exact_log2(p) % 2 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 2);
    return n % q == 0 && static_cast<std::uint64_t>(p) <= n * n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "Cannon: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "Cannon: not applicable for n=" << n << " p="
                                               << machine.cube().size());
    const Grid2D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t blk = n / q;
    auto node = [&grid](std::uint32_t i, std::uint32_t j) {
      return grid.node(i, j);
    };
    auto ta = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceA, i, j); };
    auto tb = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceB, i, j); };
    auto tc = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceC, i, j); };

    stage_blocks(machine, a, q, q, node, ta, SemOperand::kA);
    stage_blocks(machine, b, q, q, node, tb, SemOperand::kB);
    machine.reset_stats();

    GridFace face{
        .q = q,
        .node = node,
        .row_chain = [&grid](std::uint32_t i) { return grid.row_chain(i); },
        .col_chain = [&grid](std::uint32_t j) { return grid.col_chain(j); },
    };
    cannon_core(machine, face, ta, tb, tc, blk, blk, blk, "");

    RunResult out;
    out.c = gather_blocks(machine, n, q, q, node, tc);
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_cannon() {
  return std::make_unique<Cannon>();
}

}  // namespace hcmm::algo::detail
