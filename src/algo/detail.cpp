#include "hcmm/algo/detail.hpp"
#include <unordered_map>

#include "hcmm/coll/ring.hpp"
#include "hcmm/coll/route.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/sim/schedule.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::algo::detail {

Tag tag3(std::uint16_t space, std::uint32_t a, std::uint32_t b,
         std::uint32_t c) {
  HCMM_CHECK(a < 0x10000 && b < 0x10000 && c < 0x10000,
             "tag3: coordinate too large");
  return make_tag(space, static_cast<std::uint16_t>(a),
                  static_cast<std::uint16_t>(b), static_cast<std::uint16_t>(c));
}

Matrix mat_from(const DataStore& store, NodeId node, Tag tag, std::size_t r,
                std::size_t c) {
  const Payload& p = store.get(node, tag);
  HCMM_CHECK(p.size() == r * c, "mat_from: payload of " << p.size()
                                                        << " words is not "
                                                        << r << "x" << c);
  store.count_copy(p.size(), node, tag);
  return Matrix(r, c, p.to_vector());
}

void put_mat(DataStore& store, NodeId node, Tag tag, Matrix&& m) {
  store.put(node, tag, std::move(m).take());
}

MatRef mat_ref(const DataStore& store, NodeId node, Tag tag, std::size_t r,
               std::size_t c) {
  const Payload& p = store.get(node, tag);
  HCMM_CHECK(p.size() == r * c, "mat_ref: payload of " << p.size()
                                                       << " words is not " << r
                                                       << "x" << c);
  if (store.copy_policy() == CopyPolicy::kDeepCopy) {
    // Reproduce the historical materialize-per-job behavior for bench A/B.
    store.count_copy(p.size(), node, tag);
    return MatRef{make_payload(p.to_vector()), r, c, {{tag, 0}}};
  }
  store.count_alias(p.size(), node, tag);
  return MatRef{p, r, c, {{tag, 0}}};
}

MatRef mat_own(Matrix&& m) {
  const std::size_t r = m.rows();
  const std::size_t c = m.cols();
  return MatRef{make_payload(std::move(m).take()), r, c, {}};
}

MatRef mat_concat_cols(const DataStore& store, NodeId node,
                       std::span<const Tag> piece_tags, std::size_t piece_rows,
                       std::size_t piece_cols) {
  Matrix whole(piece_rows, piece_tags.size() * piece_cols);
  std::vector<std::pair<Tag, std::size_t>> srcs;
  srcs.reserve(piece_tags.size());
  for (std::size_t l = 0; l < piece_tags.size(); ++l) {
    paste_block(store, node, piece_tags[l], piece_rows, piece_cols, whole, 0,
                l * piece_cols);
    srcs.emplace_back(piece_tags[l], l * piece_cols);
  }
  const std::size_t r = whole.rows();
  const std::size_t c = whole.cols();
  return MatRef{make_payload(std::move(whole).take()), r, c, std::move(srcs)};
}

void paste_block(const DataStore& store, NodeId node, Tag tag, std::size_t r,
                 std::size_t c, Matrix& out, std::size_t r0, std::size_t c0) {
  const Payload& p = store.get(node, tag);
  HCMM_CHECK(p.size() == r * c, "paste_block: payload of " << p.size()
                                                           << " words is not "
                                                           << r << "x" << c);
  store.count_copy(p.size(), node, tag);
  out.set_block(r0, c0, r, c, p.span());
}

namespace {

SemanticEvent::Operand operand_of(const MatRef& m) {
  return {m.rows, m.cols, m.srcs};
}

}  // namespace

void run_gemm_jobs(Machine& machine, std::vector<GemmJob> jobs) {
  std::vector<Matrix> products(jobs.size());
  std::vector<std::function<void()>> work;
  work.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    work.emplace_back([&jobs, &products, i] {
      products[i] = multiply_tiled(jobs[i].a.view(), jobs[i].b.view());
    });
  }
  machine.pool().run_batch(std::move(work));
  machine.notify_gemm_batch(jobs.size());

  // A node may own several jobs in one batch (e.g. the log q group
  // products of an HJE step); it performs them back to back, so its charge
  // is the sum.
  std::unordered_map<NodeId, std::uint64_t> per_node;
  for (const auto& j : jobs) {
    per_node[j.node] += gemm_flops(j.a.rows, j.a.cols, j.b.cols);
  }
  std::vector<std::pair<NodeId, std::uint64_t>> flops(per_node.begin(),
                                                      per_node.end());
  machine.charge_compute(flops);

  // Deliver each product to the destination its job declares, in job order,
  // announcing every delivery so the semantic pass sees declaration and
  // effect as one unit — the declaration cannot lie about where a product
  // went, because this loop *is* where it goes.
  DataStore& store = machine.store();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    GemmJob& job = jobs[i];
    if (machine.semantics_observed()) {
      SemanticEvent ev;
      ev.kind = SemanticEvent::Kind::kGemm;
      ev.node = job.node;
      ev.a = operand_of(job.a);
      ev.b = operand_of(job.b);
      ev.dest_kind = job.dest.kind;
      ev.dest_tag = job.dest.tag;
      ev.accum_id = job.dest.accum != nullptr ? job.dest.accum->id : 0;
      machine.notify_semantic(ev);
    }
    switch (job.dest.kind) {
      case SemanticEvent::Dest::kPut:
        put_mat(store, job.node, job.dest.tag, std::move(products[i]));
        break;
      case SemanticEvent::Dest::kCombine:
        store.combine(job.node, job.dest.tag,
                      make_payload(std::move(products[i]).take()));
        break;
      case SemanticEvent::Dest::kAccum:
        HCMM_CHECK(job.dest.accum != nullptr,
                   "run_gemm_jobs: accumulate destination without an Accum");
        HCMM_CHECK(job.dest.accum->node == job.node,
                   "run_gemm_jobs: accumulator owned by node "
                       << job.dest.accum->node << ", job runs on "
                       << job.node);
        job.dest.accum->sum += products[i];
        break;
    }
  }
}

Accum make_accum(Machine& machine, NodeId node, std::size_t rows,
                 std::size_t cols) {
  return Accum{node, Matrix(rows, cols), machine.next_accum_id()};
}

void stage_region(Machine& machine, NodeId node, Tag tag, SemOperand op,
                  const Matrix& src, std::size_t r0, std::size_t c0,
                  std::size_t rows, std::size_t cols) {
  if (machine.semantics_observed()) {
    SemanticEvent ev;
    ev.kind = SemanticEvent::Kind::kStage;
    ev.node = node;
    ev.tag = tag;
    ev.op = op;
    ev.rect = {r0, c0, rows, cols};
    machine.notify_semantic(ev);
  }
  put_mat(machine.store(), node, tag, src.block(r0, c0, rows, cols));
}

void stage_zero(Machine& machine, NodeId node, Tag tag, std::size_t rows,
                std::size_t cols) {
  if (machine.semantics_observed()) {
    SemanticEvent ev;
    ev.kind = SemanticEvent::Kind::kStageZero;
    ev.node = node;
    ev.tag = tag;
    ev.rect = {0, 0, rows, cols};
    machine.notify_semantic(ev);
  }
  put_mat(machine.store(), node, tag, Matrix(rows, cols));
}

void slice_item(Machine& machine, NodeId node, Tag tag, std::size_t src_rows,
                std::size_t src_cols,
                std::span<const SemanticEvent::Piece> pieces) {
  if (machine.semantics_observed()) {
    SemanticEvent ev;
    ev.kind = SemanticEvent::Kind::kSlice;
    ev.node = node;
    ev.tag = tag;
    ev.rect = {0, 0, src_rows, src_cols};
    ev.pieces.assign(pieces.begin(), pieces.end());
    machine.notify_semantic(ev);
  }
  DataStore& store = machine.store();
  const Matrix whole = mat_from(store, node, tag, src_rows, src_cols);
  store.erase(node, tag);
  for (const SemanticEvent::Piece& pc : pieces) {
    HCMM_CHECK(pc.rect.r0 + pc.rect.rows <= src_rows &&
                   pc.rect.c0 + pc.rect.cols <= src_cols,
               "slice_item: piece exceeds the source item");
    put_mat(store, node, pc.tag,
            whole.block(pc.rect.r0, pc.rect.c0, pc.rect.rows, pc.rect.cols));
  }
}

void flush_slices(Machine& machine, const Accum& acc,
                  std::span<const SemanticEvent::Piece> pieces) {
  if (machine.semantics_observed()) {
    SemanticEvent ev;
    ev.kind = SemanticEvent::Kind::kAccumFlushSlices;
    ev.node = acc.node;
    ev.accum_id = acc.id;
    ev.rect = {0, 0, acc.sum.rows(), acc.sum.cols()};
    ev.pieces.assign(pieces.begin(), pieces.end());
    machine.notify_semantic(ev);
  }
  for (const SemanticEvent::Piece& pc : pieces) {
    HCMM_CHECK(pc.rect.r0 + pc.rect.rows <= acc.sum.rows() &&
                   pc.rect.c0 + pc.rect.cols <= acc.sum.cols(),
               "flush_slices: piece exceeds the accumulator");
    put_mat(machine.store(), acc.node, pc.tag,
            acc.sum.block(pc.rect.r0, pc.rect.c0, pc.rect.rows,
                          pc.rect.cols));
  }
}

void flush_combine(Machine& machine, Accum& acc, Tag dest) {
  if (machine.semantics_observed()) {
    SemanticEvent ev;
    ev.kind = SemanticEvent::Kind::kAccumFlushCombine;
    ev.node = acc.node;
    ev.tag = dest;
    ev.accum_id = acc.id;
    ev.rect = {0, 0, acc.sum.rows(), acc.sum.cols()};
    machine.notify_semantic(ev);
  }
  machine.store().combine(acc.node, dest,
                          make_payload(std::move(acc.sum).take()));
}

void collect_block(Machine& machine, NodeId node, Tag tag, std::size_t rows,
                   std::size_t cols, Matrix& out, std::size_t r0,
                   std::size_t c0) {
  if (machine.semantics_observed()) {
    SemanticEvent ev;
    ev.kind = SemanticEvent::Kind::kCollect;
    ev.node = node;
    ev.tag = tag;
    ev.rect = {r0, c0, rows, cols};
    machine.notify_semantic(ev);
  }
  paste_block(machine.store(), node, tag, rows, cols, out, r0, c0);
}

void cannon_lockstep(Machine& machine, std::span<const CannonFace> faces,
                     std::size_t ar, std::size_t ac, std::size_t bc,
                     const std::string& phase_prefix) {
  if (faces.empty()) return;
  const std::uint32_t q = faces[0].grid.q;
  for (const auto& f : faces) {
    HCMM_CHECK(f.grid.q == q, "cannon_lockstep: faces must share one q");
  }
  const std::size_t nf = faces.size();
  DataStore& store = machine.store();

  // cur_a[f][i][c]: tag of the A block currently at face f position (i, c).
  std::vector<std::vector<std::vector<Tag>>> cur_a(nf), cur_b(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    cur_a[f].assign(q, std::vector<Tag>(q));
    cur_b[f].assign(q, std::vector<Tag>(q));
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        cur_a[f][i][j] = faces[f].a_tag(i, j);
        cur_b[f][i][j] = faces[f].b_tag(i, j);
        stage_zero(machine, faces[f].grid.node(i, j), faces[f].c_tag(i, j),
                   ar, bc);
      }
    }
  }

  // Alignment: A_{i,j} moves left by i (to column j-i), B_{i,j} moves up by
  // j (to row i-j), so position (i,j) holds k-index (i+j) afterwards.
  // The alignment saturates every chain (all nodes shift at once), so
  // multipath splitting buys nothing and plain dimension-ordered routing is
  // used; multi-port overlaps the A and B permutations, halving the phase
  // exactly as §3.2 assumes.
  machine.begin_phase(phase_prefix + "align");
  std::vector<RouteRequest> reqs_a;
  std::vector<RouteRequest> reqs_b;
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        reqs_a.push_back({.src = faces[f].grid.node(i, j),
                          .dst = faces[f].grid.node(i, (j + q - i) % q),
                          .tags = {cur_a[f][i][j]}});
        reqs_b.push_back({.src = faces[f].grid.node(i, j),
                          .dst = faces[f].grid.node((i + q - j) % q, j),
                          .tags = {cur_b[f][i][j]}});
      }
    }
  }
  Schedule align_a = route_p2p(machine.cube(), machine.port(), reqs_a);
  Schedule align_b = route_p2p(machine.cube(), machine.port(), reqs_b);
  if (machine.port() == PortModel::kMultiPort) {
    const Schedule both[] = {std::move(align_a), std::move(align_b)};
    machine.run(par(both));
  } else {
    machine.run(align_a);
    machine.run(align_b);
  }
  for (std::size_t f = 0; f < nf; ++f) {
    std::vector<std::vector<Tag>> na(q, std::vector<Tag>(q));
    std::vector<std::vector<Tag>> nb(q, std::vector<Tag>(q));
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        na[i][(j + q - i) % q] = cur_a[f][i][j];
        nb[(i + q - j) % q][j] = cur_b[f][i][j];
      }
    }
    cur_a[f] = std::move(na);
    cur_b[f] = std::move(nb);
  }

  // q steps of multiply-add; q-1 of them followed by a unit shift of A
  // left along each row ring and of B up along each column ring.
  machine.begin_phase(phase_prefix + "steps");
  for (std::uint32_t step = 0; step < q; ++step) {
    std::vector<GemmJob> jobs;
    jobs.reserve(nf * q * q);
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          const NodeId node = faces[f].grid.node(i, j);
          jobs.push_back(GemmJob{node,
                                 mat_ref(store, node, cur_a[f][i][j], ar, ac),
                                 mat_ref(store, node, cur_b[f][i][j], ac, bc),
                                 GemmDest::combine(faces[f].c_tag(i, j))});
        }
      }
    }
    run_gemm_jobs(machine, std::move(jobs));
    if (step + 1 == q) break;

    // Ring position along a row is the column coordinate; along a column it
    // is the row coordinate.
    std::vector<Schedule> shifts_a;
    std::vector<Schedule> shifts_b;
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::uint32_t i = 0; i < q; ++i) {
        std::vector<std::vector<Tag>> row_tags(q);
        for (std::uint32_t c = 0; c < q; ++c) row_tags[c] = {cur_a[f][i][c]};
        shifts_a.push_back(
            coll::ring_shift_unit(faces[f].grid.row_chain(i), row_tags, -1));
      }
      for (std::uint32_t c = 0; c < q; ++c) {
        std::vector<std::vector<Tag>> col_tags(q);
        for (std::uint32_t i = 0; i < q; ++i) col_tags[i] = {cur_b[f][i][c]};
        shifts_b.push_back(
            coll::ring_shift_unit(faces[f].grid.col_chain(c), col_tags, -1));
      }
    }
    Schedule shift_a = par(shifts_a);
    Schedule shift_b = par(shifts_b);
    if (machine.port() == PortModel::kMultiPort) {
      const Schedule both[] = {std::move(shift_a), std::move(shift_b)};
      machine.run(par(both));
    } else {
      machine.run(shift_a);
      machine.run(shift_b);
    }
    // Apply the circular moves to the tag maps.
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::uint32_t i = 0; i < q; ++i) {
        std::vector<Tag> row(q);
        for (std::uint32_t c = 0; c < q; ++c) {
          row[(c + q - 1) % q] = cur_a[f][i][c];
        }
        cur_a[f][i] = std::move(row);
      }
      for (std::uint32_t c = 0; c < q; ++c) {
        std::vector<Tag> col(q);
        for (std::uint32_t i = 0; i < q; ++i) {
          col[(i + q - 1) % q] = cur_b[f][i][c];
        }
        for (std::uint32_t i = 0; i < q; ++i) cur_b[f][i][c] = col[i];
      }
    }
  }
}

void cannon_core(Machine& machine, const GridFace& face,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& a_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& b_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& c_tag,
                 std::size_t ar, std::size_t ac, std::size_t bc,
                 const std::string& phase_prefix) {
  const CannonFace faces[] = {CannonFace{face, a_tag, b_tag, c_tag}};
  cannon_lockstep(machine, faces, ar, ac, bc, phase_prefix);
}

void stage_blocks(Machine& machine, const Matrix& a, std::uint32_t bh,
                  std::uint32_t bw,
                  const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
                  const std::function<Tag(std::uint32_t, std::uint32_t)>& tag,
                  SemOperand op) {
  HCMM_CHECK(a.rows() % bh == 0 && a.cols() % bw == 0,
             "stage_blocks: " << a.rows() << "x" << a.cols()
                              << " not divisible into " << bh << "x" << bw
                              << " blocks");
  const std::size_t h = a.rows() / bh;
  const std::size_t w = a.cols() / bw;
  for (std::uint32_t bi = 0; bi < bh; ++bi) {
    for (std::uint32_t bj = 0; bj < bw; ++bj) {
      stage_region(machine, placer(bi, bj), tag(bi, bj), op, a, bi * h,
                   bj * w, h, w);
    }
  }
}

Matrix gather_blocks(
    Machine& machine, std::size_t n, std::uint32_t bh, std::uint32_t bw,
    const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
    const std::function<Tag(std::uint32_t, std::uint32_t)>& tag) {
  Matrix out(n, n);
  const std::size_t h = n / bh;
  const std::size_t w = n / bw;
  for (std::uint32_t bi = 0; bi < bh; ++bi) {
    for (std::uint32_t bj = 0; bj < bw; ++bj) {
      collect_block(machine, placer(bi, bj), tag(bi, bj), h, w, out, bi * h,
                    bj * w);
    }
  }
  return out;
}

}  // namespace hcmm::algo::detail
