#include "hcmm/algo/detail.hpp"
#include <unordered_map>

#include "hcmm/coll/ring.hpp"
#include "hcmm/coll/route.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/sim/schedule.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::algo::detail {

Tag tag3(std::uint16_t space, std::uint32_t a, std::uint32_t b,
         std::uint32_t c) {
  HCMM_CHECK(a < 0x10000 && b < 0x10000 && c < 0x10000,
             "tag3: coordinate too large");
  return make_tag(space, static_cast<std::uint16_t>(a),
                  static_cast<std::uint16_t>(b), static_cast<std::uint16_t>(c));
}

Matrix mat_from(const DataStore& store, NodeId node, Tag tag, std::size_t r,
                std::size_t c) {
  const Payload& p = store.get(node, tag);
  HCMM_CHECK(p.size() == r * c, "mat_from: payload of " << p.size()
                                                        << " words is not "
                                                        << r << "x" << c);
  store.count_copy(p.size(), node, tag);
  return Matrix(r, c, p.to_vector());
}

void put_mat(DataStore& store, NodeId node, Tag tag, Matrix&& m) {
  store.put(node, tag, std::move(m).take());
}

MatRef mat_ref(const DataStore& store, NodeId node, Tag tag, std::size_t r,
               std::size_t c) {
  const Payload& p = store.get(node, tag);
  HCMM_CHECK(p.size() == r * c, "mat_ref: payload of " << p.size()
                                                       << " words is not " << r
                                                       << "x" << c);
  if (store.copy_policy() == CopyPolicy::kDeepCopy) {
    // Reproduce the historical materialize-per-job behavior for bench A/B.
    store.count_copy(p.size(), node, tag);
    return MatRef{make_payload(p.to_vector()), r, c};
  }
  store.count_alias(p.size(), node, tag);
  return MatRef{p, r, c};
}

MatRef mat_own(Matrix&& m) {
  const std::size_t r = m.rows();
  const std::size_t c = m.cols();
  return MatRef{make_payload(std::move(m).take()), r, c};
}

void paste_block(const DataStore& store, NodeId node, Tag tag, std::size_t r,
                 std::size_t c, Matrix& out, std::size_t r0, std::size_t c0) {
  const Payload& p = store.get(node, tag);
  HCMM_CHECK(p.size() == r * c, "paste_block: payload of " << p.size()
                                                           << " words is not "
                                                           << r << "x" << c);
  store.count_copy(p.size(), node, tag);
  out.set_block(r0, c0, r, c, p.span());
}

void run_gemm_jobs(Machine& machine, std::vector<GemmJob> jobs,
                   const std::function<void(std::size_t, Matrix&&)>& sink) {
  std::vector<Matrix> products(jobs.size());
  std::vector<std::function<void()>> work;
  work.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    work.emplace_back([&jobs, &products, i] {
      products[i] = multiply_tiled(jobs[i].a.view(), jobs[i].b.view());
    });
  }
  machine.pool().run_batch(std::move(work));
  machine.notify_gemm_batch(jobs.size());

  // A node may own several jobs in one batch (e.g. the log q group
  // products of an HJE step); it performs them back to back, so its charge
  // is the sum.
  std::unordered_map<NodeId, std::uint64_t> per_node;
  for (const auto& j : jobs) {
    per_node[j.node] += gemm_flops(j.a.rows, j.a.cols, j.b.cols);
  }
  std::vector<std::pair<NodeId, std::uint64_t>> flops(per_node.begin(),
                                                      per_node.end());
  machine.charge_compute(flops);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sink(i, std::move(products[i]));
  }
}

void cannon_lockstep(Machine& machine, std::span<const CannonFace> faces,
                     std::size_t ar, std::size_t ac, std::size_t bc,
                     const std::string& phase_prefix) {
  if (faces.empty()) return;
  const std::uint32_t q = faces[0].grid.q;
  for (const auto& f : faces) {
    HCMM_CHECK(f.grid.q == q, "cannon_lockstep: faces must share one q");
  }
  const std::size_t nf = faces.size();
  DataStore& store = machine.store();

  // cur_a[f][i][c]: tag of the A block currently at face f position (i, c).
  std::vector<std::vector<std::vector<Tag>>> cur_a(nf), cur_b(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    cur_a[f].assign(q, std::vector<Tag>(q));
    cur_b[f].assign(q, std::vector<Tag>(q));
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        cur_a[f][i][j] = faces[f].a_tag(i, j);
        cur_b[f][i][j] = faces[f].b_tag(i, j);
        put_mat(store, faces[f].grid.node(i, j), faces[f].c_tag(i, j),
                Matrix(ar, bc));
      }
    }
  }

  // Alignment: A_{i,j} moves left by i (to column j-i), B_{i,j} moves up by
  // j (to row i-j), so position (i,j) holds k-index (i+j) afterwards.
  // The alignment saturates every chain (all nodes shift at once), so
  // multipath splitting buys nothing and plain dimension-ordered routing is
  // used; multi-port overlaps the A and B permutations, halving the phase
  // exactly as §3.2 assumes.
  machine.begin_phase(phase_prefix + "align");
  std::vector<RouteRequest> reqs_a;
  std::vector<RouteRequest> reqs_b;
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        reqs_a.push_back({.src = faces[f].grid.node(i, j),
                          .dst = faces[f].grid.node(i, (j + q - i) % q),
                          .tags = {cur_a[f][i][j]}});
        reqs_b.push_back({.src = faces[f].grid.node(i, j),
                          .dst = faces[f].grid.node((i + q - j) % q, j),
                          .tags = {cur_b[f][i][j]}});
      }
    }
  }
  Schedule align_a = route_p2p(machine.cube(), machine.port(), reqs_a);
  Schedule align_b = route_p2p(machine.cube(), machine.port(), reqs_b);
  if (machine.port() == PortModel::kMultiPort) {
    const Schedule both[] = {std::move(align_a), std::move(align_b)};
    machine.run(par(both));
  } else {
    machine.run(align_a);
    machine.run(align_b);
  }
  for (std::size_t f = 0; f < nf; ++f) {
    std::vector<std::vector<Tag>> na(q, std::vector<Tag>(q));
    std::vector<std::vector<Tag>> nb(q, std::vector<Tag>(q));
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        na[i][(j + q - i) % q] = cur_a[f][i][j];
        nb[(i + q - j) % q][j] = cur_b[f][i][j];
      }
    }
    cur_a[f] = std::move(na);
    cur_b[f] = std::move(nb);
  }

  // q steps of multiply-add; q-1 of them followed by a unit shift of A
  // left along each row ring and of B up along each column ring.
  machine.begin_phase(phase_prefix + "steps");
  for (std::uint32_t step = 0; step < q; ++step) {
    std::vector<GemmJob> jobs;
    jobs.reserve(nf * q * q);
    std::vector<std::pair<NodeId, Tag>> dests;
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          const NodeId node = faces[f].grid.node(i, j);
          jobs.push_back(GemmJob{node,
                                 mat_ref(store, node, cur_a[f][i][j], ar, ac),
                                 mat_ref(store, node, cur_b[f][i][j], ac, bc)});
          dests.emplace_back(node, faces[f].c_tag(i, j));
        }
      }
    }
    run_gemm_jobs(machine, std::move(jobs), [&](std::size_t idx, Matrix&& m) {
      store.combine(dests[idx].first, dests[idx].second,
                    make_payload(std::move(m).take()));
    });
    if (step + 1 == q) break;

    // Ring position along a row is the column coordinate; along a column it
    // is the row coordinate.
    std::vector<Schedule> shifts_a;
    std::vector<Schedule> shifts_b;
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::uint32_t i = 0; i < q; ++i) {
        std::vector<std::vector<Tag>> row_tags(q);
        for (std::uint32_t c = 0; c < q; ++c) row_tags[c] = {cur_a[f][i][c]};
        shifts_a.push_back(
            coll::ring_shift_unit(faces[f].grid.row_chain(i), row_tags, -1));
      }
      for (std::uint32_t c = 0; c < q; ++c) {
        std::vector<std::vector<Tag>> col_tags(q);
        for (std::uint32_t i = 0; i < q; ++i) col_tags[i] = {cur_b[f][i][c]};
        shifts_b.push_back(
            coll::ring_shift_unit(faces[f].grid.col_chain(c), col_tags, -1));
      }
    }
    Schedule shift_a = par(shifts_a);
    Schedule shift_b = par(shifts_b);
    if (machine.port() == PortModel::kMultiPort) {
      const Schedule both[] = {std::move(shift_a), std::move(shift_b)};
      machine.run(par(both));
    } else {
      machine.run(shift_a);
      machine.run(shift_b);
    }
    // Apply the circular moves to the tag maps.
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::uint32_t i = 0; i < q; ++i) {
        std::vector<Tag> row(q);
        for (std::uint32_t c = 0; c < q; ++c) {
          row[(c + q - 1) % q] = cur_a[f][i][c];
        }
        cur_a[f][i] = std::move(row);
      }
      for (std::uint32_t c = 0; c < q; ++c) {
        std::vector<Tag> col(q);
        for (std::uint32_t i = 0; i < q; ++i) {
          col[(i + q - 1) % q] = cur_b[f][i][c];
        }
        for (std::uint32_t i = 0; i < q; ++i) cur_b[f][i][c] = col[i];
      }
    }
  }
}

void cannon_core(Machine& machine, const GridFace& face,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& a_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& b_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& c_tag,
                 std::size_t ar, std::size_t ac, std::size_t bc,
                 const std::string& phase_prefix) {
  const CannonFace faces[] = {CannonFace{face, a_tag, b_tag, c_tag}};
  cannon_lockstep(machine, faces, ar, ac, bc, phase_prefix);
}

void stage_blocks(Machine& machine, const Matrix& a, std::uint32_t bh,
                  std::uint32_t bw,
                  const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
                  const std::function<Tag(std::uint32_t, std::uint32_t)>& tag) {
  HCMM_CHECK(a.rows() % bh == 0 && a.cols() % bw == 0,
             "stage_blocks: " << a.rows() << "x" << a.cols()
                              << " not divisible into " << bh << "x" << bw
                              << " blocks");
  const std::size_t h = a.rows() / bh;
  const std::size_t w = a.cols() / bw;
  for (std::uint32_t bi = 0; bi < bh; ++bi) {
    for (std::uint32_t bj = 0; bj < bw; ++bj) {
      put_mat(machine.store(), placer(bi, bj), tag(bi, bj),
              a.block(bi * h, bj * w, h, w));
    }
  }
}

Matrix gather_blocks(
    const Machine& machine, std::size_t n, std::uint32_t bh, std::uint32_t bw,
    const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
    const std::function<Tag(std::uint32_t, std::uint32_t)>& tag) {
  Matrix out(n, n);
  const std::size_t h = n / bh;
  const std::size_t w = n / bw;
  for (std::uint32_t bi = 0; bi < bh; ++bi) {
    for (std::uint32_t bj = 0; bj < bw; ++bj) {
      paste_block(machine.store(), placer(bi, bj), tag(bi, bj), h, w, out,
                  bi * h, bj * w);
    }
  }
  return out;
}

}  // namespace hcmm::algo::detail
