// 2-D Diagonal algorithm (paper §4.1.1) — the building block of the 3-D
// Diagonal scheme, runnable in its own right.  Matrix A is split into q
// column groups and B into q row groups, both held by the diagonal
// processors p_{j,j} of a q x q grid.  Column j of processors computes the
// outer product of group j: p_{j,j} broadcasts its A columns and scatters
// its B rows down the processor column, every node multiplies, and partial
// results reduce across processor rows back onto the diagonal, leaving C
// aligned exactly like A.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class Diag2D final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override { return AlgoId::kDiag2D; }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p)) return false;
    if (exact_log2(p) % 2 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 2);
    // Column groups of A and row groups of B must split evenly, and the
    // scatter pieces of B are (n/q) x (n/q) blocks.
    return n % q == 0 && q <= n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "Diag2D: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "Diag2D: not applicable for n=" << n << " p="
                                               << machine.cube().size());
    const Grid2D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t w = n / q;  // group width
    DataStore& store = machine.store();

    // Stage: p_{j,j} holds A's column group j (n x w) and B's row group j
    // (w x n), the latter pre-cut into its q scatter pieces (w x w each).
    auto ta = [](std::uint32_t j) { return tag3(kSpaceA, j); };
    auto tb_piece = [](std::uint32_t j, std::uint32_t i) {
      return tag3(kSpacePieceB, j, i);
    };
    auto tc_piece = [](std::uint32_t i) { return tag3(kSpaceC, i); };
    for (std::uint32_t j = 0; j < q; ++j) {
      const NodeId diag = grid.node(j, j);
      stage_region(machine, diag, ta(j), SemOperand::kA, a, 0, j * w, n, w);
      for (std::uint32_t i = 0; i < q; ++i) {
        stage_region(machine, diag, tb_piece(j, i), SemOperand::kB, b, j * w,
                     i * w, w, w);
      }
    }
    machine.reset_stats();

    // Phase 1: p_{j,j} scatters B pieces down its processor column (piece i
    // to p_{i,j}).  All columns run concurrently (disjoint chains).
    machine.begin_phase("scatter B");
    {
      std::vector<coll::PreparedColl> scatters;
      for (std::uint32_t j = 0; j < q; ++j) {
        const Subcube chain = grid.col_chain(j);
        std::vector<Tag> tags(q);
        for (std::uint32_t i = 0; i < q; ++i) {
          tags[chain.rank_of(grid.node(i, j))] = tb_piece(j, i);
        }
        scatters.push_back(
            coll::prep_scatter(machine, chain, grid.node(j, j), tags));
      }
      coll::run_prepared(machine, scatters);
    }

    // Phase 2: p_{j,j} broadcasts its A column group down the same chains.
    machine.begin_phase("bcast A");
    {
      std::vector<coll::PreparedColl> bcasts;
      for (std::uint32_t j = 0; j < q; ++j) {
        bcasts.push_back(coll::prep_bcast(machine, grid.col_chain(j),
                                          grid.node(j, j), ta(j)));
      }
      coll::run_prepared(machine, bcasts);
    }

    // Compute: p_{i,j} forms columns [i*w, (i+1)*w) of outer product j:
    // A-group-j (n x w) times B piece (w x w).
    machine.begin_phase("compute");
    {
      std::vector<GemmJob> jobs;
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          const NodeId nd = grid.node(i, j);
          jobs.push_back(GemmJob{nd, mat_ref(store, nd, ta(j), n, w),
                                 mat_ref(store, nd, tb_piece(j, i), w, w),
                                 GemmDest::put(tc_piece(i))});
        }
      }
      run_gemm_jobs(machine, std::move(jobs));
    }

    // Phase 3: reduce C's column group i across processor row i onto the
    // diagonal p_{i,i}.
    machine.begin_phase("reduce");
    {
      std::vector<coll::PreparedColl> reduces;
      for (std::uint32_t i = 0; i < q; ++i) {
        reduces.push_back(coll::prep_reduce(machine, grid.row_chain(i),
                                            grid.node(i, i), tc_piece(i)));
      }
      coll::run_prepared(machine, reduces);
    }

    RunResult out;
    out.c = Matrix(n, n);
    for (std::uint32_t i = 0; i < q; ++i) {
      collect_block(machine, grid.node(i, i), tc_piece(i), n, w, out.c, 0,
                    i * w);
    }
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_diag2d() {
  return std::make_unique<Diag2D>();
}

}  // namespace hcmm::algo::detail
