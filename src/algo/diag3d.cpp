// 3-D Diagonal algorithm (paper §4.1.2) — the first of the paper's two new
// algorithms.  Operands live on the diagonal plane x = y of a cbrt(p)^3
// grid, identically distributed: p_{i,i,k} holds A_{k,i} and B_{k,i}.
// Phase 1 moves B blocks point-to-point to the plane y = z; phase 2
// broadcasts A along x and the relocated B along z (overlapping on
// multi-port nodes); each node multiplies one block pair; phase 3 reduces
// along y back onto the diagonal plane, leaving C aligned like A and B.
// Versus DNS this saves a third of the start-ups and words (Table 2).

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/coll/route.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class Diag3D final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override { return AlgoId::kDiag3D; }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p) || exact_log2(p) % 3 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 3);
    return n % q == 0 &&
           static_cast<std::uint64_t>(p) <=
               static_cast<std::uint64_t>(n) * n * n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "Diag3D: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "Diag3D: not applicable for n=" << n << " p="
                                               << machine.cube().size());
    const Grid3D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t blk = n / q;
    DataStore& store = machine.store();
    auto ta = [](std::uint32_t k, std::uint32_t i) { return tag3(kSpaceA, k, i); };
    auto tb = [](std::uint32_t k, std::uint32_t i) { return tag3(kSpaceB, k, i); };
    auto tc = [](std::uint32_t k, std::uint32_t i) { return tag3(kSpaceC, k, i); };

    // Stage on the diagonal plane: p_{i,i,k} holds A_{k,i} and B_{k,i}.
    auto diag_node = [&grid](std::uint32_t k, std::uint32_t i) {
      return grid.node(i, i, k);
    };
    stage_blocks(machine, a, q, q, diag_node, ta, SemOperand::kA);
    stage_blocks(machine, b, q, q, diag_node, tb, SemOperand::kB);
    machine.reset_stats();

    // Phase 1: p_{i,i,k} sends B_{k,i} to p_{i,k,k}.  Each message travels
    // inside its own y-chain, so the pattern is congestion-free and takes
    // log q rounds.
    machine.begin_phase("p2p B");
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t k = 0; k < q; ++k) {
        if (i == k) continue;
        reqs.push_back({.src = grid.node(i, i, k),
                        .dst = grid.node(i, k, k),
                        .tags = {tb(k, i)}});
      }
    }
    coll::op_route(machine, reqs);

    // Phase 2: p_{i,i,k} broadcasts A_{k,i} along x to p_{*,i,k};
    // p_{i,k,k} broadcasts B_{k,i} along z to p_{i,k,*}.
    std::vector<coll::PreparedColl> bcast_a;
    std::vector<coll::PreparedColl> bcast_b;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t k = 0; k < q; ++k) {
        bcast_a.push_back(coll::prep_bcast(machine, grid.x_chain(i, k),
                                           grid.node(i, i, k), ta(k, i)));
        bcast_b.push_back(coll::prep_bcast(machine, grid.z_chain(i, k),
                                           grid.node(i, k, k), tb(k, i)));
      }
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("bcast A||B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : bcast_a) all.push_back(std::move(c));
      for (auto& c : bcast_b) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("bcast A");
      coll::run_prepared(machine, bcast_a);
      machine.begin_phase("bcast B");
      coll::run_prepared(machine, bcast_b);
    }

    // Compute: p_{i,j,k} forms I_{k,i} = A_{k,j} * B_{j,i}.
    machine.begin_phase("compute");
    std::vector<GemmJob> jobs;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const NodeId nd = grid.node(i, j, k);
          jobs.push_back(GemmJob{nd, mat_ref(store, nd, ta(k, j), blk, blk),
                                 mat_ref(store, nd, tb(j, i), blk, blk),
                                 GemmDest::put(tc(k, i))});
        }
      }
    }
    run_gemm_jobs(machine, std::move(jobs));

    // Phase 3: all-to-one reduction along y onto the diagonal plane.
    machine.begin_phase("reduce");
    std::vector<coll::PreparedColl> reduces;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t k = 0; k < q; ++k) {
        reduces.push_back(coll::prep_reduce(machine, grid.y_chain(i, k),
                                            grid.node(i, i, k), tc(k, i)));
      }
    }
    coll::run_prepared(machine, reduces);

    RunResult out;
    out.c = gather_blocks(machine, n, q, q, diag_node, tc);
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_diag3d() {
  return std::make_unique<Diag3D>();
}

}  // namespace hcmm::algo::detail
