// 3-D Diagonal x Cannon combination (paper §3.5): the hypercube is viewed
// as a sigma^3 grid of supernodes, each a rho x rho Cannon mesh
// (p = sigma^3 rho^2).  Superblocks move between supernodes exactly as in
// the 3-D Diagonal algorithm — per intra-position (u, v), over chains of
// corresponding processors — and each supernode multiplies its superblock
// pair with Cannon's algorithm internally.  The paper presents only the
// DNS x Cannon instance and notes that "the combination of any proposed new
// algorithm with Cannon's algorithm would yield an algorithm better than
// the combination algorithm of the DNS and Cannon"; this is that better
// combination.  Space drops from 2n^2 p^{1/3} to 2n^2 sigma at the price of
// 2(rho - 1) extra start-ups, and the sigma^3 rho^2 shapes fill the
// processor counts where no pure algorithm applies (p = 32, 128, ...).

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/algo/supergrid.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/coll/route.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::algo::detail {
namespace {

class Diag3DCannon final : public DistributedMatmul {
 public:
  explicit Diag3DCannon(
      std::optional<std::pair<std::uint32_t, std::uint32_t>> split)
      : split_(split) {}

  [[nodiscard]] AlgoId id() const noexcept override {
    return AlgoId::kDiag3DCannon;
  }

  [[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint32_t>>
  split_for(std::uint32_t p) const {
    if (split_) {
      const auto [sigma, rho] = *split_;
      if (static_cast<std::uint64_t>(sigma) * sigma * sigma * rho * rho != p) {
        return std::nullopt;
      }
      return split_;
    }
    return default_super_split(p);
  }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    const auto split = split_for(p);
    if (!split) return false;
    const auto [sigma, rho] = *split;
    const std::uint64_t side = static_cast<std::uint64_t>(sigma) * rho;
    return n % side == 0 &&
           static_cast<std::uint64_t>(p) <=
               static_cast<std::uint64_t>(n) * n * n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    const std::uint32_t p = machine.cube().size();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "Diag3DCannon: square operands required");
    HCMM_CHECK(applicable(n, p), "Diag3DCannon: not applicable for n="
                                     << n << " p=" << p);
    const auto [sigma, rho] = *split_for(p);
    const SuperGrid sg(sigma, rho);
    const std::size_t bs = n / (static_cast<std::size_t>(sigma) * rho);

    // Superblock (r, c) of A, sub-block (u, v): tag packs (r*sigma + c).
    auto ta = [sigma = sigma](std::uint32_t r, std::uint32_t c,
                              std::uint32_t u, std::uint32_t v) {
      return tag3(kSpaceA, r * sigma + c, u, v);
    };
    auto tb = [sigma = sigma](std::uint32_t r, std::uint32_t c,
                              std::uint32_t u, std::uint32_t v) {
      return tag3(kSpaceB, r * sigma + c, u, v);
    };
    auto ti = [sigma = sigma](std::uint32_t r, std::uint32_t c,
                              std::uint32_t u, std::uint32_t v) {
      return tag3(kSpaceI, r * sigma + c, u, v);
    };
    auto stage_sub = [&](const Matrix& src, SemOperand op, Tag tag, NodeId nd,
                         std::uint32_t r, std::uint32_t c, std::uint32_t u,
                         std::uint32_t v) {
      stage_region(machine, nd, tag, op, src,
                   (static_cast<std::size_t>(r) * rho + u) * bs,
                   (static_cast<std::size_t>(c) * rho + v) * bs, bs, bs);
    };

    // Stage on the diagonal supernode plane: supernode (i,i,k) holds the
    // superblocks A_{k,i} and B_{k,i}, Cannon-checkerboarded.
    for (std::uint32_t i = 0; i < sigma; ++i) {
      for (std::uint32_t k = 0; k < sigma; ++k) {
        for (std::uint32_t u = 0; u < rho; ++u) {
          for (std::uint32_t v = 0; v < rho; ++v) {
            const NodeId nd = sg.node(u, v, i, i, k);
            stage_sub(a, SemOperand::kA, ta(k, i, u, v), nd, k, i, u, v);
            stage_sub(b, SemOperand::kB, tb(k, i, u, v), nd, k, i, u, v);
          }
        }
      }
    }
    machine.reset_stats();

    // Phase 1: B superblocks to the plane y = z, per intra-position.
    machine.begin_phase("p2p B");
    {
      std::vector<RouteRequest> reqs;
      for (std::uint32_t i = 0; i < sigma; ++i) {
        for (std::uint32_t k = 0; k < sigma; ++k) {
          if (i == k) continue;
          for (std::uint32_t u = 0; u < rho; ++u) {
            for (std::uint32_t v = 0; v < rho; ++v) {
              reqs.push_back({.src = sg.node(u, v, i, i, k),
                              .dst = sg.node(u, v, i, k, k),
                              .tags = {tb(k, i, u, v)}});
            }
          }
        }
      }
      coll::op_route(machine, reqs);
    }

    // Phase 2: A along supernode-x, relocated B along supernode-z.
    std::vector<coll::PreparedColl> bcast_a;
    std::vector<coll::PreparedColl> bcast_b;
    for (std::uint32_t i = 0; i < sigma; ++i) {
      for (std::uint32_t k = 0; k < sigma; ++k) {
        for (std::uint32_t u = 0; u < rho; ++u) {
          for (std::uint32_t v = 0; v < rho; ++v) {
            bcast_a.push_back(coll::prep_bcast(machine,
                                               sg.super_x_chain(u, v, i, k),
                                               sg.node(u, v, i, i, k),
                                               ta(k, i, u, v)));
            bcast_b.push_back(coll::prep_bcast(machine,
                                               sg.super_z_chain(u, v, i, k),
                                               sg.node(u, v, i, k, k),
                                               tb(k, i, u, v)));
          }
        }
      }
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("bcast A||B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : bcast_a) all.push_back(std::move(c));
      for (auto& c : bcast_b) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("bcast A");
      coll::run_prepared(machine, bcast_a);
      machine.begin_phase("bcast B");
      coll::run_prepared(machine, bcast_b);
    }

    // Compute: every supernode (i,j,k) multiplies A_{k,j} * B_{j,i} with
    // Cannon on its rho x rho face; all sigma^3 faces run in lockstep.
    {
      std::vector<CannonFace> faces;
      faces.reserve(static_cast<std::size_t>(sigma) * sigma * sigma);
      for (std::uint32_t i = 0; i < sigma; ++i) {
        for (std::uint32_t j = 0; j < sigma; ++j) {
          for (std::uint32_t k = 0; k < sigma; ++k) {
            faces.push_back(CannonFace{
                sg.face(i, j, k),
                [ta, k, j](std::uint32_t u, std::uint32_t v) {
                  return ta(k, j, u, v);
                },
                [tb, j, i](std::uint32_t u, std::uint32_t v) {
                  return tb(j, i, u, v);
                },
                [ti, k, i](std::uint32_t u, std::uint32_t v) {
                  return ti(k, i, u, v);
                },
            });
          }
        }
      }
      cannon_lockstep(machine, faces, bs, bs, bs, "cannon ");
    }

    // Phase 3: reduce the supernode partial products along supernode-y
    // back onto the diagonal plane.
    machine.begin_phase("reduce");
    {
      std::vector<coll::PreparedColl> reduces;
      for (std::uint32_t i = 0; i < sigma; ++i) {
        for (std::uint32_t k = 0; k < sigma; ++k) {
          for (std::uint32_t u = 0; u < rho; ++u) {
            for (std::uint32_t v = 0; v < rho; ++v) {
              reduces.push_back(coll::prep_reduce(
                  machine, sg.super_y_chain(u, v, i, k),
                  sg.node(u, v, i, i, k), ti(k, i, u, v)));
            }
          }
        }
      }
      coll::run_prepared(machine, reduces);
    }

    RunResult out;
    out.c = Matrix(n, n);
    for (std::uint32_t i = 0; i < sigma; ++i) {
      for (std::uint32_t k = 0; k < sigma; ++k) {
        for (std::uint32_t u = 0; u < rho; ++u) {
          for (std::uint32_t v = 0; v < rho; ++v) {
            collect_block(machine, sg.node(u, v, i, i, k), ti(k, i, u, v), bs,
                          bs, out.c,
                          (static_cast<std::size_t>(k) * rho + u) * bs,
                          (static_cast<std::size_t>(i) * rho + v) * bs);
          }
        }
      }
    }
    out.report = machine.report();
    return out;
  }

 private:
  std::optional<std::pair<std::uint32_t, std::uint32_t>> split_;
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_diag3d_cannon(
    std::optional<std::pair<std::uint32_t, std::uint32_t>> split) {
  return std::make_unique<Diag3DCannon>(split);
}

}  // namespace hcmm::algo::detail
