// Dekel–Nassimi–Sahni (paper §3.5, generalized block form): operands start
// on the z = 0 face of a cbrt(p)^3 grid; A and B travel to their diagonal
// planes point-to-point, are broadcast along y / x, every node multiplies
// one block pair, and partial products reduce along z back to the face.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/coll/route.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class Dns final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override { return AlgoId::kDNS; }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p) || exact_log2(p) % 3 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 3);
    return n % q == 0 &&
           static_cast<std::uint64_t>(p) <=
               static_cast<std::uint64_t>(n) * n * n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "DNS: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "DNS: not applicable for n=" << n << " p="
                                            << machine.cube().size());
    const Grid3D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t blk = n / q;
    DataStore& store = machine.store();
    auto ta = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceA, i, j); };
    auto tb = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceB, i, j); };
    auto tc = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceC, i, j); };
    auto face_node = [&grid](std::uint32_t i, std::uint32_t j) {
      return grid.node(i, j, 0);
    };

    stage_blocks(machine, a, q, q, face_node, ta, SemOperand::kA);
    stage_blocks(machine, b, q, q, face_node, tb, SemOperand::kB);
    machine.reset_stats();

    // Phase 1: A_ij to p_{i,j,j} and B_ij to p_{i,j,i}, point-to-point
    // along z.  Both messages leave the same source, so they serialize on
    // one-port nodes and contend for z links on multi-port nodes, exactly
    // the paper's observation that this phase cannot be overlapped.
    machine.begin_phase("p2p to planes");
    std::vector<RouteRequest> reqs;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        if (j != 0) {
          reqs.push_back({.src = grid.node(i, j, 0),
                          .dst = grid.node(i, j, j),
                          .tags = {ta(i, j)}});
        }
        if (i != 0) {
          reqs.push_back({.src = grid.node(i, j, 0),
                          .dst = grid.node(i, j, i),
                          .tags = {tb(i, j)}});
        }
      }
    }
    coll::op_route(machine, reqs);

    // Phase 2: broadcast A_ij from p_{i,j,j} along y (to p_{i,*,j}) and
    // B_ij from p_{i,j,i} along x (to p_{*,j,i}); afterwards p_{i,j,k}
    // holds A_{i,k} and B_{k,j}.  Multi-port overlaps the two.
    std::vector<coll::PreparedColl> bcast_a;
    std::vector<coll::PreparedColl> bcast_b;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        bcast_a.push_back(coll::prep_bcast(machine, grid.y_chain(i, j),
                                           grid.node(i, j, j), ta(i, j)));
        bcast_b.push_back(coll::prep_bcast(machine, grid.x_chain(j, i),
                                           grid.node(i, j, i), tb(i, j)));
      }
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("bcast A||B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : bcast_a) all.push_back(std::move(c));
      for (auto& c : bcast_b) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("bcast A");
      coll::run_prepared(machine, bcast_a);
      machine.begin_phase("bcast B");
      coll::run_prepared(machine, bcast_b);
    }

    // Compute: p_{i,j,k} multiplies A_{i,k} * B_{k,j}.
    machine.begin_phase("compute");
    std::vector<GemmJob> jobs;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        for (std::uint32_t k = 0; k < q; ++k) {
          const NodeId nd = grid.node(i, j, k);
          jobs.push_back(GemmJob{nd, mat_ref(store, nd, ta(i, k), blk, blk),
                                 mat_ref(store, nd, tb(k, j), blk, blk),
                                 GemmDest::put(tc(i, j))});
        }
      }
    }
    run_gemm_jobs(machine, std::move(jobs));

    // Phase 3: all-to-one reduction along z back to the face.
    machine.begin_phase("reduce");
    std::vector<coll::PreparedColl> reduces;
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        reduces.push_back(coll::prep_reduce(machine, grid.z_chain(i, j),
                                            grid.node(i, j, 0), tc(i, j)));
      }
    }
    coll::run_prepared(machine, reduces);

    RunResult out;
    out.c = gather_blocks(machine, n, q, q, face_node, tc);
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_dns() {
  return std::make_unique<Dns>();
}

}  // namespace hcmm::algo::detail
