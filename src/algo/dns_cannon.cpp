// DNS x Cannon combination (paper §3.5): the generalized Dekel–Nassimi–
// Sahni scheme on a sigma^3 grid of supernodes, each computing its
// superblock product with Cannon on a rho x rho mesh (p = sigma^3 rho^2).
// This is the combination the paper describes and then deliberately omits,
// because 3DD x Cannon (diag3d_cannon.cpp) dominates it — which our
// benches confirm.  It is the space-saving DNS: replication drops from
// 2n^2 p^{1/3} to 2n^2 sigma.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/algo/supergrid.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/coll/route.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::algo::detail {
namespace {

class DnsCannon final : public DistributedMatmul {
 public:
  explicit DnsCannon(
      std::optional<std::pair<std::uint32_t, std::uint32_t>> split)
      : split_(split) {}

  [[nodiscard]] AlgoId id() const noexcept override {
    return AlgoId::kDNSCannon;
  }

  [[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint32_t>>
  split_for(std::uint32_t p) const {
    if (split_) {
      const auto [sigma, rho] = *split_;
      if (static_cast<std::uint64_t>(sigma) * sigma * sigma * rho * rho != p) {
        return std::nullopt;
      }
      return split_;
    }
    return default_super_split(p);
  }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    const auto split = split_for(p);
    if (!split) return false;
    const auto [sigma, rho] = *split;
    const std::uint64_t side = static_cast<std::uint64_t>(sigma) * rho;
    return n % side == 0 &&
           static_cast<std::uint64_t>(p) <=
               static_cast<std::uint64_t>(n) * n * n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    const std::uint32_t p = machine.cube().size();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "DnsCannon: square operands required");
    HCMM_CHECK(applicable(n, p),
               "DnsCannon: not applicable for n=" << n << " p=" << p);
    const auto [sigma, rho] = *split_for(p);
    const SuperGrid sg(sigma, rho);
    const std::size_t bs = n / (static_cast<std::size_t>(sigma) * rho);

    auto ta = [sigma = sigma](std::uint32_t r, std::uint32_t c,
                              std::uint32_t u, std::uint32_t v) {
      return tag3(kSpaceA, r * sigma + c, u, v);
    };
    auto tb = [sigma = sigma](std::uint32_t r, std::uint32_t c,
                              std::uint32_t u, std::uint32_t v) {
      return tag3(kSpaceB, r * sigma + c, u, v);
    };
    auto tc = [sigma = sigma](std::uint32_t r, std::uint32_t c,
                              std::uint32_t u, std::uint32_t v) {
      return tag3(kSpaceC, r * sigma + c, u, v);
    };
    auto stage_sub = [&](const Matrix& src, SemOperand op, Tag tag, NodeId nd,
                         std::uint32_t r, std::uint32_t c, std::uint32_t u,
                         std::uint32_t v) {
      stage_region(machine, nd, tag, op, src,
                   (static_cast<std::size_t>(r) * rho + u) * bs,
                   (static_cast<std::size_t>(c) * rho + v) * bs, bs, bs);
    };

    // Stage on the z = 0 supernode face.
    for (std::uint32_t i = 0; i < sigma; ++i) {
      for (std::uint32_t j = 0; j < sigma; ++j) {
        for (std::uint32_t u = 0; u < rho; ++u) {
          for (std::uint32_t v = 0; v < rho; ++v) {
            const NodeId nd = sg.node(u, v, i, j, 0);
            stage_sub(a, SemOperand::kA, ta(i, j, u, v), nd, i, j, u, v);
            stage_sub(b, SemOperand::kB, tb(i, j, u, v), nd, i, j, u, v);
          }
        }
      }
    }
    machine.reset_stats();

    // Phase 1: A_{ij} to supernode (i,j,j) and B_{ij} to (i,j,i), per
    // intra-position, point-to-point along supernode-z.
    machine.begin_phase("p2p to planes");
    {
      std::vector<RouteRequest> reqs;
      for (std::uint32_t i = 0; i < sigma; ++i) {
        for (std::uint32_t j = 0; j < sigma; ++j) {
          for (std::uint32_t u = 0; u < rho; ++u) {
            for (std::uint32_t v = 0; v < rho; ++v) {
              if (j != 0) {
                reqs.push_back({.src = sg.node(u, v, i, j, 0),
                                .dst = sg.node(u, v, i, j, j),
                                .tags = {ta(i, j, u, v)}});
              }
              if (i != 0) {
                reqs.push_back({.src = sg.node(u, v, i, j, 0),
                                .dst = sg.node(u, v, i, j, i),
                                .tags = {tb(i, j, u, v)}});
              }
            }
          }
        }
      }
      coll::op_route(machine, reqs);
    }

    // Phase 2: A along supernode-y, B along supernode-x.
    std::vector<coll::PreparedColl> bcast_a;
    std::vector<coll::PreparedColl> bcast_b;
    for (std::uint32_t i = 0; i < sigma; ++i) {
      for (std::uint32_t j = 0; j < sigma; ++j) {
        for (std::uint32_t u = 0; u < rho; ++u) {
          for (std::uint32_t v = 0; v < rho; ++v) {
            bcast_a.push_back(coll::prep_bcast(machine,
                                               sg.super_y_chain(u, v, i, j),
                                               sg.node(u, v, i, j, j),
                                               ta(i, j, u, v)));
            bcast_b.push_back(coll::prep_bcast(machine,
                                               sg.super_x_chain(u, v, j, i),
                                               sg.node(u, v, i, j, i),
                                               tb(i, j, u, v)));
          }
        }
      }
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("bcast A||B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : bcast_a) all.push_back(std::move(c));
      for (auto& c : bcast_b) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("bcast A");
      coll::run_prepared(machine, bcast_a);
      machine.begin_phase("bcast B");
      coll::run_prepared(machine, bcast_b);
    }

    // Compute: supernode (i,j,k) multiplies A_{i,k} * B_{k,j} with Cannon.
    {
      std::vector<CannonFace> faces;
      faces.reserve(static_cast<std::size_t>(sigma) * sigma * sigma);
      for (std::uint32_t i = 0; i < sigma; ++i) {
        for (std::uint32_t j = 0; j < sigma; ++j) {
          for (std::uint32_t k = 0; k < sigma; ++k) {
            faces.push_back(CannonFace{
                sg.face(i, j, k),
                [ta, i, k](std::uint32_t u, std::uint32_t v) {
                  return ta(i, k, u, v);
                },
                [tb, k, j](std::uint32_t u, std::uint32_t v) {
                  return tb(k, j, u, v);
                },
                [tc, i, j](std::uint32_t u, std::uint32_t v) {
                  return tc(i, j, u, v);
                },
            });
          }
        }
      }
      cannon_lockstep(machine, faces, bs, bs, bs, "cannon ");
    }

    // Phase 3: reduce along supernode-z back to the face.
    machine.begin_phase("reduce");
    {
      std::vector<coll::PreparedColl> reduces;
      for (std::uint32_t i = 0; i < sigma; ++i) {
        for (std::uint32_t j = 0; j < sigma; ++j) {
          for (std::uint32_t u = 0; u < rho; ++u) {
            for (std::uint32_t v = 0; v < rho; ++v) {
              reduces.push_back(coll::prep_reduce(
                  machine, sg.super_z_chain(u, v, i, j),
                  sg.node(u, v, i, j, 0), tc(i, j, u, v)));
            }
          }
        }
      }
      coll::run_prepared(machine, reduces);
    }

    RunResult out;
    out.c = Matrix(n, n);
    for (std::uint32_t i = 0; i < sigma; ++i) {
      for (std::uint32_t j = 0; j < sigma; ++j) {
        for (std::uint32_t u = 0; u < rho; ++u) {
          for (std::uint32_t v = 0; v < rho; ++v) {
            collect_block(machine, sg.node(u, v, i, j, 0), tc(i, j, u, v), bs,
                          bs, out.c,
                          (static_cast<std::size_t>(i) * rho + u) * bs,
                          (static_cast<std::size_t>(j) * rho + v) * bs);
          }
        }
      }
    }
    out.report = machine.report();
    return out;
  }

 private:
  std::optional<std::pair<std::uint32_t, std::uint32_t>> split_;
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_dns_cannon(
    std::optional<std::pair<std::uint32_t, std::uint32_t>> split) {
  return std::make_unique<DnsCannon>(split);
}

}  // namespace hcmm::algo::detail
