// Ho–Johnsson–Edelman (paper §3.3, Algorithm 1): Cannon's algorithm
// re-engineered to use the full bandwidth of a multi-port hypercube.  Each
// local A block is cut into log q column groups and each B block into
// log q row groups; group l follows its own Hamiltonian walk whose
// dimension sequence is the binary-reflected Gray code's rotated left by l,
// so at every step the log q groups of A travel on distinct row links and
// the log q groups of B on distinct column links — all 2 log q ports busy,
// shrinking the per-step data term by a factor of log q.
//
// Alignment is the XOR skew of Algorithm 1's first loop: A's column field
// is XORed with the row field (and vice versa for B) one bit at a time, so
// after it processor (u, v) holds the operand pair with common k-index
// gray_decode(u ^ v).  Each walk then visits each k-index exactly once
// (accumulated masks rotl(gray(k), l) are distinct), which is the
// correctness argument for summing group products per step.
//
// One-port machines gain nothing over Cannon here (the paper lists "-"),
// so this implementation is multi-port only.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/support/gray.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class Hje final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override { return AlgoId::kHJE; }

  [[nodiscard]] bool supports(PortModel port) const override {
    return port == PortModel::kMultiPort;
  }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p)) return false;
    if (exact_log2(p) % 2 != 0) return false;
    const std::uint32_t q = 1u << (exact_log2(p) / 2);
    const std::uint32_t g = exact_log2(p) / 2;
    // The paper requires each processor to hold at least log sqrt(p) rows
    // and columns: n / sqrt(p) >= log sqrt(p).
    return n % q == 0 && n / q >= std::max(1u, g);
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "HJE: square operands required");
    HCMM_CHECK(machine.port() == PortModel::kMultiPort,
               "HJE: defined for multi-port hypercubes only");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "HJE: not applicable for n=" << n << " p="
                                            << machine.cube().size());
    const Grid2D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::uint32_t g = grid.chain_dim();
    const std::size_t blk = n / q;
    const std::uint32_t p = grid.p();
    DataStore& store = machine.store();

    auto ta = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceA, i, j); };
    auto tb = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceB, i, j); };
    auto tc = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceC, i, j); };
    auto node_of = [&grid](std::uint32_t i, std::uint32_t j) {
      return grid.node(i, j);
    };
    stage_blocks(machine, a, q, q, node_of, ta, SemOperand::kA);
    stage_blocks(machine, b, q, q, node_of, tb, SemOperand::kB);
    machine.reset_stats();

    // Current whole-block tag per node (indexed by node id).
    std::vector<Tag> cur_a(p), cur_b(p);
    for (std::uint32_t i = 0; i < q; ++i) {
      for (std::uint32_t j = 0; j < q; ++j) {
        cur_a[node_of(i, j)] = ta(i, j);
        cur_b[node_of(i, j)] = tb(i, j);
        stage_zero(machine, node_of(i, j), tc(i, j), blk, blk);
      }
    }

    // Alignment: bit k of the row field (global bit g+k) drives an exchange
    // of A across column-field bit k, and vice versa for B — Algorithm 1's
    // first loop.  A and B exchanges ride different fields, so each of the
    // g rounds carries both.
    machine.begin_phase("xor align");
    for (std::uint32_t k = 0; k < g; ++k) {
      Round round;
      std::vector<Tag> next_a = cur_a;
      std::vector<Tag> next_b = cur_b;
      for (NodeId nd = 0; nd < p; ++nd) {
        const std::uint32_t v = nd & (q - 1);  // column field
        const std::uint32_t u = nd >> g;       // row field
        if (bit_of(u, k) != 0) {
          const NodeId partner = flip_bit(nd, k);
          round.transfers.push_back(Transfer{.src = nd,
                                             .dst = partner,
                                             .tags = {cur_a[nd]},
                                             .combine = false,
                                             .move_src = true});
          next_a[partner] = cur_a[nd];
        }
        if (bit_of(v, k) != 0) {
          const NodeId partner = flip_bit(nd, g + k);
          round.transfers.push_back(Transfer{.src = nd,
                                             .dst = partner,
                                             .tags = {cur_b[nd]},
                                             .combine = false,
                                             .move_src = true});
          next_b[partner] = cur_b[nd];
        }
      }
      Schedule s;
      s.rounds.push_back(std::move(round));
      machine.run(s);
      cur_a = std::move(next_a);
      cur_b = std::move(next_b);
    }

    // Cut every aligned block into g pieces (A by columns, B by rows).
    // Piece widths follow chunk_bounds over the block edge.
    auto tpa = [](std::uint32_t i, std::uint32_t j, std::uint32_t l) {
      return tag3(kSpacePieceA, i, j, l);
    };
    auto tpb = [](std::uint32_t i, std::uint32_t j, std::uint32_t l) {
      return tag3(kSpacePieceB, i, j, l);
    };
    // piece tag + owner-block coordinates currently held, per node, per l.
    std::vector<std::vector<Tag>> cur_pa(p, std::vector<Tag>(g));
    std::vector<std::vector<Tag>> cur_pb(p, std::vector<Tag>(g));
    for (NodeId nd = 0; nd < p; ++nd) {
      const auto [ai, aj] = unpack(cur_a[nd]);
      const auto [bi, bj] = unpack(cur_b[nd]);
      std::vector<SemanticEvent::Piece> a_pieces;
      std::vector<SemanticEvent::Piece> b_pieces;
      for (std::uint32_t l = 0; l < g; ++l) {
        const auto [lo, hi] = chunk_bounds(blk, g, l);
        a_pieces.push_back({tpa(ai, aj, l), {0, lo, blk, hi - lo}});
        b_pieces.push_back({tpb(bi, bj, l), {lo, 0, hi - lo, blk}});
        cur_pa[nd][l] = tpa(ai, aj, l);
        cur_pb[nd][l] = tpb(bi, bj, l);
      }
      slice_item(machine, nd, cur_a[nd], blk, blk, a_pieces);
      slice_item(machine, nd, cur_b[nd], blk, blk, b_pieces);
    }

    // Main loop: q multiply steps; between steps, piece l of A swaps across
    // column-field bit (c_k + l) mod g and piece l of B across the same bit
    // of the row field, where c_k is the Gray-code change bit of step k.
    machine.begin_phase("steps");
    for (std::uint32_t step = 0; step < q; ++step) {
      // Group products accumulate host-side per node, then one combine
      // lands the step's sum in the node's C block.
      std::vector<Accum> csums;
      csums.reserve(p);
      for (NodeId nd = 0; nd < p; ++nd) {
        csums.push_back(make_accum(machine, nd, blk, blk));
      }
      std::vector<GemmJob> jobs;
      for (NodeId nd = 0; nd < p; ++nd) {
        for (std::uint32_t l = 0; l < g; ++l) {
          const auto [lo, hi] = chunk_bounds(blk, g, l);
          jobs.push_back(GemmJob{
              nd, mat_ref(store, nd, cur_pa[nd][l], blk, hi - lo),
              mat_ref(store, nd, cur_pb[nd][l], hi - lo, blk),
              GemmDest::into(csums[nd])});
        }
      }
      run_gemm_jobs(machine, std::move(jobs));
      for (NodeId nd = 0; nd < p; ++nd) {
        const std::uint32_t v = nd & (q - 1);
        const std::uint32_t u = nd >> g;
        flush_combine(machine, csums[nd],
                      tc(gray_decode(u), gray_decode(v)));
      }
      if (step + 1 == q) break;

      const std::uint32_t c = gray_change_bit(step, g);
      Round round;
      std::vector<std::vector<Tag>> next_pa = cur_pa;
      std::vector<std::vector<Tag>> next_pb = cur_pb;
      for (NodeId nd = 0; nd < p; ++nd) {
        for (std::uint32_t l = 0; l < g; ++l) {
          const std::uint32_t delta = (c + l) % g;
          const NodeId pa_partner = flip_bit(nd, delta);      // column field
          const NodeId pb_partner = flip_bit(nd, g + delta);  // row field
          round.transfers.push_back(Transfer{.src = nd,
                                             .dst = pa_partner,
                                             .tags = {cur_pa[nd][l]},
                                             .combine = false,
                                             .move_src = true});
          next_pa[pa_partner][l] = cur_pa[nd][l];
          round.transfers.push_back(Transfer{.src = nd,
                                             .dst = pb_partner,
                                             .tags = {cur_pb[nd][l]},
                                             .combine = false,
                                             .move_src = true});
          next_pb[pb_partner][l] = cur_pb[nd][l];
        }
      }
      Schedule s;
      s.rounds.push_back(std::move(round));
      machine.run(s);
      cur_pa = std::move(next_pa);
      cur_pb = std::move(next_pb);
    }

    RunResult out;
    out.c = gather_blocks(machine, n, q, q, node_of, tc);
    out.report = machine.report();
    return out;
  }

 private:
  // Recover (i, j) block coordinates from an A/B tag.
  static std::pair<std::uint32_t, std::uint32_t> unpack(Tag t) {
    return {static_cast<std::uint32_t>((t >> 32) & 0xFFFF),
            static_cast<std::uint32_t>((t >> 16) & 0xFFFF)};
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_hje() {
  return std::make_unique<Hje>();
}

}  // namespace hcmm::algo::detail
