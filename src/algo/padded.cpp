#include "hcmm/algo/padded.hpp"

#include "hcmm/support/check.hpp"

namespace hcmm::algo {

std::size_t padded_size(const DistributedMatmul& alg, std::size_t n,
                        std::uint32_t p) {
  for (std::size_t cand = n; cand <= 4 * n; ++cand) {
    if (alg.applicable(cand, p)) return cand;
  }
  return 0;
}

RunResult padded_multiply(const DistributedMatmul& alg, const Matrix& a,
                          const Matrix& b, Machine& machine) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "padded_multiply: square operands required");
  const std::size_t np = padded_size(alg, n, machine.cube().size());
  HCMM_CHECK(np != 0, "padded_multiply: no applicable padded size for "
                          << alg.name() << " at p=" << machine.cube().size());
  if (np == n) return alg.run(a, b, machine);
  Matrix ap(np, np);
  Matrix bp(np, np);
  ap.set_block(0, 0, a);
  bp.set_block(0, 0, b);
  RunResult r = alg.run(ap, bp, machine);
  r.c = r.c.block(0, 0, n, n);
  return r;
}

}  // namespace hcmm::algo
