#include "hcmm/algo/api.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::algo {

const char* to_string(AlgoId id) noexcept {
  switch (id) {
    case AlgoId::kSimple:   return "Simple";
    case AlgoId::kCannon:   return "Cannon";
    case AlgoId::kHJE:      return "Ho-Johnsson-Edelman";
    case AlgoId::kBerntsen: return "Berntsen";
    case AlgoId::kDNS:      return "DNS";
    case AlgoId::kDiag2D:   return "2D Diagonal";
    case AlgoId::kDiag3D:   return "3D Diagonal";
    case AlgoId::kAllTrans: return "3D All_Trans";
    case AlgoId::kAll3D:    return "3D All";
    case AlgoId::kAll3DRect: return "3D All (rect grid)";
    case AlgoId::kDNSCannon: return "DNS x Cannon";
    case AlgoId::kDiag3DCannon: return "3DD x Cannon";
  }
  return "?";
}

bool DistributedMatmul::supports(PortModel) const { return true; }

std::unique_ptr<DistributedMatmul> make_algorithm(AlgoId id) {
  switch (id) {
    case AlgoId::kSimple:   return detail::make_simple();
    case AlgoId::kCannon:   return detail::make_cannon();
    case AlgoId::kHJE:      return detail::make_hje();
    case AlgoId::kBerntsen: return detail::make_berntsen();
    case AlgoId::kDNS:      return detail::make_dns();
    case AlgoId::kDiag2D:   return detail::make_diag2d();
    case AlgoId::kDiag3D:   return detail::make_diag3d();
    case AlgoId::kAllTrans: return detail::make_alltrans();
    case AlgoId::kAll3D:    return detail::make_all3d();
    case AlgoId::kAll3DRect: return detail::make_all3d_rect();
    case AlgoId::kDNSCannon: return detail::make_dns_cannon();
    case AlgoId::kDiag3DCannon: return detail::make_diag3d_cannon();
  }
  HCMM_CHECK(false, "make_algorithm: unknown id");
  return nullptr;
}

std::vector<std::unique_ptr<DistributedMatmul>> all_algorithms() {
  std::vector<std::unique_ptr<DistributedMatmul>> out;
  for (const AlgoId id :
       {AlgoId::kSimple, AlgoId::kCannon, AlgoId::kHJE, AlgoId::kBerntsen,
        AlgoId::kDNS, AlgoId::kDiag2D, AlgoId::kDiag3D, AlgoId::kAllTrans,
        AlgoId::kAll3D, AlgoId::kAll3DRect, AlgoId::kDNSCannon,
        AlgoId::kDiag3DCannon}) {
    out.push_back(make_algorithm(id));
  }
  return out;
}

}  // namespace hcmm::algo
