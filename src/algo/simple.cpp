// Algorithm Simple (paper §3.1): block-checkerboard layout on a sqrt(p) x
// sqrt(p) grid; every row all-to-all broadcasts its A blocks, every column
// its B blocks, then each node owns everything it needs for its C block.
// Space-hungry (2 n^2 sqrt(p) overall) but only 2 log sqrt(p) start-ups.

#include "hcmm/algo/detail.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/grid.hpp"

namespace hcmm::algo::detail {
namespace {

class Simple final : public DistributedMatmul {
 public:
  [[nodiscard]] AlgoId id() const noexcept override { return AlgoId::kSimple; }

  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override {
    if (!is_pow2(p)) return false;
    if (exact_log2(p) % 2 != 0) return false;  // needs a square grid
    const std::uint32_t q = 1u << (exact_log2(p) / 2);
    return n % q == 0 && static_cast<std::uint64_t>(p) <= n * n;
  }

  [[nodiscard]] RunResult run(const Matrix& a, const Matrix& b,
                              Machine& machine) const override {
    const std::size_t n = a.rows();
    HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
               "Simple: square operands required");
    HCMM_CHECK(applicable(n, machine.cube().size()),
               "Simple: not applicable for n=" << n << " p="
                                               << machine.cube().size());
    const Grid2D grid(machine.cube().size());
    const std::uint32_t q = grid.q();
    const std::size_t blk = n / q;
    auto node = [&grid](std::uint32_t i, std::uint32_t j) {
      return grid.node(i, j);
    };
    auto ta = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceA, i, j); };
    auto tb = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceB, i, j); };
    auto tc = [](std::uint32_t i, std::uint32_t j) { return tag3(kSpaceC, i, j); };

    stage_blocks(machine, a, q, q, node, ta, SemOperand::kA);
    stage_blocks(machine, b, q, q, node, tb, SemOperand::kB);
    machine.reset_stats();

    // Phase 1: all-to-all broadcast of A inside every row; phase 2: of B
    // inside every column.  Distinct rows (columns) are disjoint chains, so
    // they always overlap; the two phases themselves overlap only on
    // multi-port nodes (paper §3.1).
    std::vector<coll::PreparedColl> rows;
    std::vector<coll::PreparedColl> cols;
    for (std::uint32_t i = 0; i < q; ++i) {
      const Subcube chain = grid.row_chain(i);
      std::vector<Tag> tags(q);
      for (std::uint32_t j = 0; j < q; ++j) {
        tags[chain.rank_of(grid.node(i, j))] = ta(i, j);
      }
      rows.push_back(coll::prep_allgather(machine, chain, tags));
    }
    for (std::uint32_t j = 0; j < q; ++j) {
      const Subcube chain = grid.col_chain(j);
      std::vector<Tag> tags(q);
      for (std::uint32_t i = 0; i < q; ++i) {
        tags[chain.rank_of(grid.node(i, j))] = tb(i, j);
      }
      cols.push_back(coll::prep_allgather(machine, chain, tags));
    }
    if (machine.port() == PortModel::kMultiPort) {
      machine.begin_phase("allgather A||B");
      std::vector<coll::PreparedColl> all;
      for (auto& c : rows) all.push_back(std::move(c));
      for (auto& c : cols) all.push_back(std::move(c));
      coll::run_prepared(machine, all);
    } else {
      machine.begin_phase("allgather A rows");
      coll::run_prepared(machine, rows);
      machine.begin_phase("allgather B cols");
      coll::run_prepared(machine, cols);
    }

    // Local C_ij = sum_k A_ik * B_kj.
    machine.begin_phase("compute");
    DataStore& store = machine.store();
    for (std::uint32_t k = 0; k < q; ++k) {
      std::vector<GemmJob> jobs;
      for (std::uint32_t i = 0; i < q; ++i) {
        for (std::uint32_t j = 0; j < q; ++j) {
          const NodeId nd = node(i, j);
          if (k == 0) stage_zero(machine, nd, tc(i, j), blk, blk);
          jobs.push_back(GemmJob{nd, mat_ref(store, nd, ta(i, k), blk, blk),
                                 mat_ref(store, nd, tb(k, j), blk, blk),
                                 GemmDest::combine(tc(i, j))});
        }
      }
      run_gemm_jobs(machine, std::move(jobs));
    }

    RunResult out;
    out.c = gather_blocks(machine, n, q, q, node, tc);
    out.report = machine.report();
    return out;
  }
};

}  // namespace

std::unique_ptr<DistributedMatmul> make_simple() {
  return std::make_unique<Simple>();
}

}  // namespace hcmm::algo::detail
