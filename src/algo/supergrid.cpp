#include "hcmm/algo/supergrid.hpp"

#include "hcmm/support/check.hpp"
#include "hcmm/support/gray.hpp"

namespace hcmm::algo::detail {

SuperGrid::SuperGrid(std::uint32_t sigma, std::uint32_t rho)
    : sigma_(sigma),
      rho_(rho),
      gs_(exact_log2(sigma)),
      gr_(exact_log2(rho)) {
  HCMM_CHECK(3 * gs_ + 2 * gr_ <= 20, "SuperGrid: machine too large");
}

NodeId SuperGrid::node(std::uint32_t u, std::uint32_t v, std::uint32_t i,
                       std::uint32_t j, std::uint32_t k) const {
  HCMM_CHECK(u < rho_ && v < rho_, "SuperGrid: intra position out of range");
  HCMM_CHECK(i < sigma_ && j < sigma_ && k < sigma_,
             "SuperGrid: supernode out of range");
  NodeId n = gray_encode(v);
  n |= gray_encode(u) << gr_;
  n |= gray_encode(i) << (2 * gr_);
  n |= gray_encode(j) << (2 * gr_ + gs_);
  n |= gray_encode(k) << (2 * gr_ + 2 * gs_);
  return n;
}

namespace {
std::uint32_t field_mask(std::uint32_t width, std::uint32_t shift) {
  return width == 0 ? 0u : ((1u << width) - 1u) << shift;
}
}  // namespace

Subcube SuperGrid::super_x_chain(std::uint32_t u, std::uint32_t v,
                                 std::uint32_t j, std::uint32_t k) const {
  return Subcube(node(u, v, 0, j, k), field_mask(gs_, 2 * gr_));
}

Subcube SuperGrid::super_y_chain(std::uint32_t u, std::uint32_t v,
                                 std::uint32_t i, std::uint32_t k) const {
  return Subcube(node(u, v, i, 0, k), field_mask(gs_, 2 * gr_ + gs_));
}

Subcube SuperGrid::super_z_chain(std::uint32_t u, std::uint32_t v,
                                 std::uint32_t i, std::uint32_t j) const {
  return Subcube(node(u, v, i, j, 0), field_mask(gs_, 2 * gr_ + 2 * gs_));
}

GridFace SuperGrid::face(std::uint32_t i, std::uint32_t j,
                         std::uint32_t k) const {
  return GridFace{
      .q = rho_,
      .node = [this, i, j, k](std::uint32_t row, std::uint32_t col) {
        return node(row, col, i, j, k);
      },
      .row_chain = [this, i, j, k](std::uint32_t row) {
        return Subcube(node(row, 0, i, j, k), field_mask(gr_, 0));
      },
      .col_chain = [this, i, j, k](std::uint32_t col) {
        return Subcube(node(0, col, i, j, k), field_mask(gr_, gr_));
      },
  };
}

std::optional<std::pair<std::uint32_t, std::uint32_t>> default_super_split(
    std::uint32_t p) {
  if (!is_pow2(p)) return std::nullopt;
  const std::uint32_t lp = exact_log2(p);
  // Largest sigma = 2^a with 3a <= lp and lp - 3a even.
  for (std::uint32_t a = lp / 3 + 1; a-- > 0;) {
    if ((lp - 3 * a) % 2 == 0) {
      return std::pair{1u << a, 1u << ((lp - 3 * a) / 2)};
    }
  }
  return std::nullopt;
}

}  // namespace hcmm::algo::detail
