// AliasLifetimePass: the data plane's borrow checker.  The abstract heap in
// interpret_trace() reconstructs which item views which allocation at what
// extent; this pass turns every rule the interpreter fires into a located
// diagnostic:
//
//   alias.nested-split        split of a tag whose reserved byte is in use
//   alias.split-size-mismatch part sizes do not partition the item
//   alias.use-after-join      access to a part a join already consumed
//   alias.duplicate-item      insert over an existing (node, tag) item
//   alias.missing-item        access to an item that does not exist
//   alias.combine-shared      in-place combine while other views share the
//                             buffer (the mutation would be observable)
//   alias.part-leak (warn)    split parts still resident at end of run
//
// Legal runs captured from a live Machine are clean by construction — the
// DataStore throws on most of these — so the pass earns its keep on
// fabricated traces (negative tests) and as the executable specification
// the cross-validation in hcmm_lint holds the store to.

#include "hcmm/analysis/trace.hpp"

namespace hcmm::analysis {

namespace {

class AliasSink final : public TraceSink {
 public:
  explicit AliasSink(DiagnosticList& out) : out_(out) {}

  void on_violation(std::string_view code, std::string message,
                    std::string hint, const TraceLoc& loc) override {
    Diagnostic d;
    d.severity =
        code == "alias.part-leak" ? Severity::kWarning : Severity::kError;
    d.pass = "alias-lifetime";
    d.code = std::string(code);
    // Trace diagnostics locate by event index (round field) and, for
    // schedule events, the transfer within the offending round.
    d.round = loc.event;
    d.transfer = loc.transfer;
    d.message = std::move(message);
    d.hint = std::move(hint);
    out_.add(std::move(d));
  }

 private:
  DiagnosticList& out_;
};

class AliasLifetimePass final : public TracePass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "alias-lifetime";
  }

  void run(const TraceInput& in, DiagnosticList& out) const override {
    if (in.trace == nullptr) return;
    AliasSink sink(out);
    interpret_trace(*in.trace, &sink);
  }
};

}  // namespace

std::unique_ptr<TracePass> make_alias_lifetime_pass() {
  return std::make_unique<AliasLifetimePass>();
}

}  // namespace hcmm::analysis
