#include "hcmm/analysis/calibration.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "hcmm/cost/model.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/runtime/spmd_matmul.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::analysis {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double us_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Tag space reserved for the calibration ping-pong (ordinary user tags,
/// bit 63 clear; one tag per sweep point keeps the streams disjoint).
constexpr std::uint64_t kCalTag = 0x0Cu << 24;

/// Multiply-add time from a short local gemm, min over repetitions.
/// @p fast selects the vector fast path (what the SPMD ports actually run)
/// versus the bit-exact oracle that gemm_accumulate dispatches by default.
[[nodiscard]] double measure_tc_us(bool fast) {
  constexpr std::size_t kSide = 48;
  const Matrix a = random_matrix(kSide, kSide, 11);
  const Matrix b = random_matrix(kSide, kSide, 12);
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    Matrix c(kSide, kSide);
    const auto t0 = Clock::now();
    if (fast) {
      gemm_accumulate_fast(a, b, c);
    } else {
      gemm_accumulate(a, b, c);
    }
    best = std::min(best, us_between(t0, Clock::now()));
  }
  const double madds = static_cast<double>(kSide * kSide * kSide);
  return best / madds;
}

/// Least squares for oneway_us ~ ts + tw * words, slope and intercept
/// clamped non-negative (a loopback sweep can fit a slightly negative slope
/// when every size lands in one cache line; the clamp keeps the constants
/// physical).
void fit_line(const std::vector<PingPongSample>& s, double& ts, double& tw,
              double& residual) {
  const double n = static_cast<double>(s.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const PingPongSample& p : s) {
    const double x = static_cast<double>(p.words);
    sx += x;
    sy += p.oneway_us;
    sxx += x * x;
    sxy += x * p.oneway_us;
  }
  const double denom = n * sxx - sx * sx;
  tw = denom > 0 ? std::max(0.0, (n * sxy - sx * sy) / denom) : 0.0;
  ts = std::max((sy - tw * sx) / n, 1e-3);
  residual = 0.0;
  for (const PingPongSample& p : s) {
    const double fit = ts + tw * static_cast<double>(p.words);
    residual = std::max(residual, std::abs(fit - p.oneway_us) /
                                      std::max(p.oneway_us, 1e-9));
  }
}

struct AuditPoint {
  const rt::SpmdAlgo* algo;
  algo::AlgoId id;
  std::uint32_t ranks;
  std::size_t n;
};

[[nodiscard]] std::vector<AuditPoint> audit_points(std::uint32_t max_ranks) {
  // CLI-name -> cost-model identity for the eight SPMD ports.
  static constexpr std::pair<std::string_view, algo::AlgoId> kIds[] = {
      {"cannon", algo::AlgoId::kCannon},     {"all3d", algo::AlgoId::kAll3D},
      {"simple", algo::AlgoId::kSimple},     {"dns", algo::AlgoId::kDNS},
      {"diag3d", algo::AlgoId::kDiag3D},     {"berntsen", algo::AlgoId::kBerntsen},
      {"diag2d", algo::AlgoId::kDiag2D},     {"alltrans", algo::AlgoId::kAllTrans},
  };
  std::vector<AuditPoint> points;
  for (const rt::SpmdAlgo& a : rt::spmd_algorithms()) {
    const std::uint32_t p = a.grid_dim == 2 ? 4u : 8u;
    if (p > max_ranks) continue;
    // Grid side is 2 either way; blocks of side n/2 or n/4.
    const std::size_t n = a.block_exp == 2 || a.grid_dim == 2 ? 32 : 16;
    for (const auto& [name, id] : kIds) {
      if (name == a.name) points.push_back({&a, id, p, n});
    }
  }
  return points;
}

[[nodiscard]] std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

Calibration calibrate(rt::Team& team, const CalibrationConfig& cfg) {
  HCMM_CHECK(team.size() >= 2, "calibrate: need at least 2 ranks");
  HCMM_CHECK(cfg.iters >= 1 && cfg.reps >= 1 && !cfg.words.empty(),
             "calibrate: bad config");
  Calibration cal;
  cal.backend = team.transport().name();
  // The SPMD ports compute through gemm_accumulate_fast, so the t_c that
  // feeds the Table 2 predictions is the vector path's; the oracle's is
  // kept alongside so the report shows what verification-grade compute
  // would cost.
  cal.tc_oracle_us = measure_tc_us(false);
  cal.tc_vector_us = measure_tc_us(true);
  cal.tc_us = cal.tc_vector_us;
  const GemmIdent ident = gemm_vector_ident();
  cal.gemm_kernel = ident.path;
  cal.gemm_isa = ident.isa;
  cal.samples.resize(cfg.words.size());

  // One run per sweep: every warmup/iter/rep round trip happens inside a
  // single team.run so thread spawn cost never pollutes the timings.
  team.run([&](rt::Rank& r) {
    if (r.id() > 1) return;  // spectators (the factory may give more ranks)
    for (std::size_t si = 0; si < cfg.words.size(); ++si) {
      const std::size_t words = cfg.words[si];
      const std::uint64_t tag = kCalTag + si;
      Matrix payload(1, words);
      double best = std::numeric_limits<double>::infinity();
      for (std::uint32_t rep = 0; rep < cfg.reps + 1; ++rep) {
        // rep 0 is the untimed warmup round (cfg.warmup ping-pongs).
        const std::uint32_t count = rep == 0 ? cfg.warmup : cfg.iters;
        const auto t0 = Clock::now();
        for (std::uint32_t it = 0; it < count; ++it) {
          if (r.id() == 0) {
            r.send(1, tag, payload);
            payload = r.recv(1, tag);
          } else {
            payload = r.recv(0, tag);
            r.send(0, tag, payload);
          }
        }
        if (rep == 0 || count == 0) continue;
        const double rt_us = us_between(t0, Clock::now());
        best = std::min(best, rt_us / (2.0 * count));
      }
      if (r.id() == 0) {
        cal.samples[si] = {words, best};
      }
    }
  });
  fit_line(cal.samples, cal.ts_us, cal.tw_us, cal.fit_residual);
  return cal;
}

CostParams measured_params(const Calibration& cal) {
  return CostParams{cal.ts_us, cal.tw_us, cal.tc_us};
}

Table2CalReport table2_report(const TeamFactory& make_team,
                              const CalibrationConfig& cfg,
                              std::uint32_t max_ranks) {
  Table2CalReport report;
  report.band_lo = cfg.band_lo;
  report.band_hi = cfg.band_hi;
  {
    auto team = make_team(2);
    report.cal = calibrate(*team, cfg);
  }
  const CostParams cp = measured_params(report.cal);

  for (const AuditPoint& pt : audit_points(max_ranks)) {
    auto team = make_team(pt.ranks);
    const std::size_t n = pt.n;
    const Matrix a = random_matrix(n, n, 901);
    const Matrix b = random_matrix(n, n, 902);
    // Per-run dispatch overhead (thread spawn, join, run bookkeeping) is a
    // constant the closed form does not model; measure it the same way and
    // fold it into the prediction, or every row at audit-friendly n would
    // really be gating the thread library.
    double spawn_us = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      const auto s0 = Clock::now();
      team->run([](rt::Rank&) {});
      spawn_us = std::min(spawn_us, us_between(s0, Clock::now()));
    }
    // One warmup run (connections, allocator), then the timed one.
    (void)pt.algo->fn(*team, a, b);
    const auto t0 = Clock::now();
    const Matrix c = pt.algo->fn(*team, a, b);
    const double measured = us_between(t0, Clock::now());
    HCMM_CHECK(c.rows() == n, "table2_report: bad result shape");

    const double dn = static_cast<double>(n);
    const double dp = static_cast<double>(pt.ranks);
    const cost::CommCost comm =
        cost::table2(pt.id, PortModel::kOnePort, dn, dp);
    const double predicted =
        spawn_us + comm.time(cp) + 2.0 * dn * dn * dn / dp * cp.tc;

    Table2Measured row;
    row.algo = std::string(pt.algo->name);
    row.ranks = pt.ranks;
    row.n = n;
    row.predicted_us = predicted;
    row.measured_us = measured;
    row.ratio = predicted > 0 ? measured / predicted : 0.0;
    row.within = row.ratio >= cfg.band_lo && row.ratio <= cfg.band_hi;
    report.all_within = report.all_within && row.within;
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string to_json(const Table2CalReport& report) {
  std::ostringstream os;
  os << "{\n  \"backend\": \"" << report.cal.backend << "\",\n"
     << "  \"ts_us\": " << fmt(report.cal.ts_us) << ",\n"
     << "  \"tw_us\": " << fmt(report.cal.tw_us) << ",\n"
     << "  \"tc_us\": " << fmt(report.cal.tc_us) << ",\n"
     << "  \"tc_oracle_us\": " << fmt(report.cal.tc_oracle_us) << ",\n"
     << "  \"tc_vector_us\": " << fmt(report.cal.tc_vector_us) << ",\n"
     << "  \"gemm_kernel\": \"" << report.cal.gemm_kernel << "\",\n"
     << "  \"gemm_isa\": \"" << report.cal.gemm_isa << "\",\n"
     << "  \"fit_residual\": " << fmt(report.cal.fit_residual) << ",\n"
     << "  \"samples\": [";
  for (std::size_t i = 0; i < report.cal.samples.size(); ++i) {
    const PingPongSample& s = report.cal.samples[i];
    os << (i != 0 ? "," : "") << "\n    {\"words\": " << s.words
       << ", \"oneway_us\": " << fmt(s.oneway_us) << "}";
  }
  os << "\n  ],\n  \"band\": [" << fmt(report.band_lo) << ", "
     << fmt(report.band_hi) << "],\n  \"table2\": [";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const Table2Measured& r = report.rows[i];
    os << (i != 0 ? "," : "") << "\n    {\"algo\": \"" << r.algo
       << "\", \"ranks\": " << r.ranks << ", \"n\": " << r.n
       << ", \"predicted_us\": " << fmt(r.predicted_us)
       << ", \"measured_us\": " << fmt(r.measured_us)
       << ", \"ratio\": " << fmt(r.ratio)
       << ", \"within\": " << (r.within ? "true" : "false") << "}";
  }
  os << "\n  ],\n  \"all_within\": "
     << (report.all_within ? "true" : "false") << "\n}\n";
  return os.str();
}

}  // namespace hcmm::analysis
