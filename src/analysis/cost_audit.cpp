#include "hcmm/analysis/cost_audit.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "hcmm/analysis/legality.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::analysis {

StaticCost static_cost(const Schedule& schedule, const Hypercube& cube,
                       PortModel port, const Placement& initial) {
  StaticCost out;
  Placement cur = initial;
  for (const Round& round : schedule.rounds) {
    if (round.empty()) continue;  // empty rounds are free (Machine::run)
    std::unordered_map<std::uint64_t, std::size_t> out_words;
    std::unordered_map<std::uint64_t, std::size_t> in_words;
    struct Pending {
      NodeId dst;
      Tag tag;
      std::size_t words;
    };
    std::vector<Pending> deliveries;
    std::vector<std::pair<NodeId, Tag>> erasures;
    for (const Transfer& t : round.transfers) {
      if (!cube.contains(t.src) || !cube.contains(t.dst) ||
          !cube.are_neighbors(t.src, t.dst)) {
        out.exact = false;  // the topology pass owns reporting this
        continue;
      }
      std::size_t words = 0;
      for (const Tag tag : t.tags) {
        if (!cur.has(t.src, tag)) {
          out.exact = false;  // the dataflow pass owns reporting this
          continue;
        }
        words += cur.words(t.src, tag);
        deliveries.push_back({t.dst, tag, cur.words(t.src, tag)});
        if (t.move_src) erasures.emplace_back(t.src, tag);
      }
      const PortKeys keys = port_keys(port, t.src, t.dst);
      out_words[keys.out] += words;
      in_words[keys.in] += words;
    }
    for (const auto& [node, tag] : erasures) cur.erase(node, tag);
    for (const Pending& p : deliveries) {
      if (!cur.has(p.dst, p.tag)) cur.add(p.dst, p.tag, p.words);
    }
    std::size_t round_words = 0;
    for (const auto& [k, w] : out_words) round_words = std::max(round_words, w);
    for (const auto& [k, w] : in_words) round_words = std::max(round_words, w);
    out.a += 1;
    out.b += round_words;
  }
  return out;
}

namespace {

std::vector<double> item(std::size_t m_words) {
  return std::vector<double>(m_words, 1.0);
}

// Tag naming for audit items: space 0x7A, (a, b) = rank coordinates.
Tag rank_tag(std::uint32_t r) {
  return make_tag(0x7A, static_cast<std::uint16_t>(r));
}
Tag pair_tag(std::uint32_t s, std::uint32_t d) {
  return make_tag(0x7B, static_cast<std::uint16_t>(s),
                  static_cast<std::uint16_t>(d));
}

std::vector<BuilderCase> make_cases() {
  using cost::CollKind;
  std::vector<BuilderCase> cases;

  cases.push_back({"bcast (sbt_bcast)", CollKind::kBcast,
                   [](Machine& m, const Subcube& sc, std::size_t mw) {
                     const NodeId root = sc.node_at(0);
                     m.store().put(root, rank_tag(0), item(mw));
                     return coll::prep_bcast(m, sc, root, rank_tag(0)).schedule;
                   }});

  cases.push_back({"reduce (sbt_reduce)", CollKind::kReduce,
                   [](Machine& m, const Subcube& sc, std::size_t mw) {
                     for (std::uint32_t r = 0; r < sc.size(); ++r) {
                       m.store().put(sc.node_at(r), rank_tag(0), item(mw));
                     }
                     const NodeId root = sc.node_at(0);
                     return coll::prep_reduce(m, sc, root, rank_tag(0))
                         .schedule;
                   }});

  cases.push_back({"scatter (rh_scatter)", CollKind::kScatter,
                   [](Machine& m, const Subcube& sc, std::size_t mw) {
                     const NodeId root = sc.node_at(0);
                     std::vector<Tag> tags(sc.size());
                     for (std::uint32_t r = 0; r < sc.size(); ++r) {
                       tags[r] = rank_tag(r);
                       m.store().put(root, tags[r], item(mw));
                     }
                     return coll::prep_scatter(m, sc, root, tags).schedule;
                   }});

  cases.push_back({"gather (bin_gather)", CollKind::kGather,
                   [](Machine& m, const Subcube& sc, std::size_t mw) {
                     std::vector<Tag> tags(sc.size());
                     for (std::uint32_t r = 0; r < sc.size(); ++r) {
                       tags[r] = rank_tag(r);
                       m.store().put(sc.node_at(r), tags[r], item(mw));
                     }
                     const NodeId root = sc.node_at(0);
                     return coll::prep_gather(m, sc, root, tags).schedule;
                   }});

  cases.push_back({"allgather (rd_allgather)", CollKind::kAllgather,
                   [](Machine& m, const Subcube& sc, std::size_t mw) {
                     std::vector<Tag> tags(sc.size());
                     for (std::uint32_t r = 0; r < sc.size(); ++r) {
                       tags[r] = rank_tag(r);
                       m.store().put(sc.node_at(r), tags[r], item(mw));
                     }
                     return coll::prep_allgather(m, sc, tags).schedule;
                   }});

  cases.push_back({"reduce-scatter (rh_reduce_scatter)",
                   CollKind::kReduceScatter,
                   [](Machine& m, const Subcube& sc, std::size_t mw) {
                     std::vector<Tag> tags(sc.size());
                     for (std::uint32_t r = 0; r < sc.size(); ++r) {
                       tags[r] = rank_tag(r);
                     }
                     for (std::uint32_t nr = 0; nr < sc.size(); ++nr) {
                       for (std::uint32_t r = 0; r < sc.size(); ++r) {
                         m.store().put(sc.node_at(nr), tags[r], item(mw));
                       }
                     }
                     return coll::prep_reduce_scatter(m, sc, tags).schedule;
                   }});

  cases.push_back({"all-to-all (aapc)", CollKind::kAllToAll,
                   [](Machine& m, const Subcube& sc, std::size_t mw) {
                     const std::uint32_t n = sc.size();
                     std::vector<Tag> flat(static_cast<std::size_t>(n) * n, 0);
                     for (std::uint32_t s = 0; s < n; ++s) {
                       for (std::uint32_t d = 0; d < n; ++d) {
                         if (s == d) continue;
                         const Tag t = pair_tag(s, d);
                         flat[static_cast<std::size_t>(s) * n + d] = t;
                         m.store().put(sc.node_at(s), t, item(mw));
                       }
                     }
                     return coll::prep_alltoall(m, sc, flat).schedule;
                   }});

  return cases;
}

}  // namespace

const std::vector<BuilderCase>& collective_builder_cases() {
  static const std::vector<BuilderCase> cases = make_cases();
  return cases;
}

DiagnosticList audit_collective_builders(std::uint32_t dim,
                                         std::size_t m_words, PortModel port) {
  HCMM_CHECK(dim >= 1 && m_words > 0 && m_words % dim == 0,
             "audit: m_words must be a positive multiple of dim for exact "
             "chunk balance");
  DiagnosticList out;
  const Hypercube cube(dim);
  const Subcube sc(0, cube.size() - 1);
  for (const BuilderCase& bc : collective_builder_cases()) {
    Machine m(cube, port, CostParams{});
    const Schedule s = bc.prepare(m, sc, m_words);
    const Placement placed = snapshot_placement(m.store());
    const StaticCost got = static_cost(s, cube, port, placed);
    const cost::CommCost want = cost::table1(
        bc.kind, port, cube.size(), static_cast<double>(m_words));
    if (!got.exact) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.pass = "cost-audit";
      d.code = "cost.inexact";
      d.message = bc.name + ": static cost could not be computed exactly "
                            "(absent tags in the compiled schedule)";
      out.add(std::move(d));
      continue;
    }
    const auto want_a = static_cast<std::uint64_t>(want.a);
    const auto want_b = static_cast<std::uint64_t>(want.b);
    if (got.a != want_a || got.b != want_b) {
      std::ostringstream os;
      os << bc.name << " on " << cube.size() << " nodes (" << to_string(port)
         << ", M=" << m_words << "): static (a, b) = (" << got.a << ", "
         << got.b << ") but Table 1 says (" << want_a << ", " << want_b
         << ")";
      Diagnostic d;
      d.severity = Severity::kError;
      d.pass = "cost-audit";
      d.code = got.a != want_a ? "cost.startup-mismatch" : "cost.word-mismatch";
      d.message = os.str();
      d.hint =
          "the builder lost its Table 1 optimality — check round structure "
          "(a) or bundle/chunk balance (b)";
      out.add(std::move(d));
    }
  }
  return out;
}

}  // namespace hcmm::analysis
