#include "hcmm/analysis/diagnostics.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <utility>

namespace hcmm::analysis {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote:    return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError:   return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << analysis::to_string(severity) << ": [" << code << "]";
  if (round != kNoLoc) {
    os << " round " << round;
    if (transfer != kNoLoc) os << ", transfer " << transfer;
  }
  os << ": " << message;
  if (!hint.empty()) os << "\n  hint: " << hint;
  return os.str();
}

void DiagnosticList::add(Diagnostic d) { diags_.push_back(std::move(d)); }

void DiagnosticList::merge(DiagnosticList other) {
  diags_.insert(diags_.end(), std::make_move_iterator(other.diags_.begin()),
                std::make_move_iterator(other.diags_.end()));
}

std::size_t DiagnosticList::count(Severity s) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diags_.begin(), diags_.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

void DiagnosticList::sort_by_location() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.round, a.transfer, a.code) <
                            std::tie(b.round, b.transfer, b.code);
                   });
}

std::string DiagnosticList::to_string() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) os << d.to_string() << "\n";
  return os.str();
}

}  // namespace hcmm::analysis
