// HappensBeforePass: vector-clock race detection over a RunTrace.
//
// Thread model.  Each simulated node is one logical thread; host-side ops
// with no node (kNoNode) run on a distinguished driver thread.  Algorithm
// code between schedule runs is node-local (an SPMD program would execute
// it on the node), and a node that owns several GEMM jobs of one batch
// performs them back to back (see run_gemm_jobs), so node granularity is
// the true concurrency of the simulated machine.
//
// Synchronization.  The ONLY cross-thread happens-before edges are schedule
// deliveries: a transfer src -> dst joins dst's clock with src's pre-round
// clock.  Reads performed by a transfer happen at the source's clock;
// in-place combine deliveries write at the destination's post-join clock.
//
// Races.  Every access the abstract interpreter reports carries the buffer
// identity and extent of the touched words.  Two accesses to overlapping
// extents of one buffer, at least one a write, whose epochs are ordered by
// neither clock, form a race; the diagnostic names both events (witness
// pair).  Legal runs are provably race-free: the store mutates in place
// only through a buffer's unique reference, and uniqueness means every
// earlier access flowed into the writer through delivery edges — the pass
// re-derives that proof per run and refutes it on fabricated traces.

#include <cstdint>
#include <string>
#include <vector>

#include "hcmm/analysis/trace.hpp"

namespace hcmm::analysis {

namespace {

/// FastTrack-style epoch: thread `tid` at its local time `t`.
struct Epoch {
  std::uint32_t tid = 0;
  std::uint64_t t = 0;
};

struct Access {
  Epoch at;
  std::size_t off = 0;
  std::size_t len = 0;
  bool write = false;
  std::size_t event = kNoLoc;  ///< witness location
  NodeId node = 0;
  Tag tag = 0;
};

class RaceSink final : public TraceSink {
 public:
  RaceSink(std::uint32_t nodes, DiagnosticList& out)
      : driver_(nodes), clocks_(nodes + 1), times_(nodes + 1, 0), out_(out) {
    for (auto& vc : clocks_) vc.assign(nodes + 1, 0);
    // Every thread has observed its own time 0.
  }

  void on_read(NodeId node, Tag tag, const AbstractView& v,
               const TraceLoc& loc) override {
    access(node, tag, v, /*write=*/false, loc);
  }

  void on_write(NodeId node, Tag tag, const AbstractView& v,
                const TraceLoc& loc) override {
    access(node, tag, v, /*write=*/true, loc);
  }

  void on_edge(NodeId src, NodeId dst, const TraceLoc& loc) override {
    (void)loc;
    if (src == dst) return;
    std::vector<std::uint64_t>& d = clocks_[tid_of(dst)];
    const std::vector<std::uint64_t>& s = clocks_[tid_of(src)];
    for (std::size_t i = 0; i < d.size(); ++i) d[i] = std::max(d[i], s[i]);
  }

 private:
  [[nodiscard]] std::uint32_t tid_of(NodeId node) const noexcept {
    // Out-of-cube nodes (fabricated traces) fold onto the driver thread.
    return node >= driver_ ? driver_ : node;
  }

  /// True iff @p e happened before the current state of thread @p tid.
  [[nodiscard]] bool happens_before(const Epoch& e, std::uint32_t tid) const {
    return clocks_[tid][e.tid] >= e.t;
  }

  void access(NodeId node, Tag tag, const AbstractView& v, bool write,
              const TraceLoc& loc) {
    const std::uint32_t tid = tid_of(node);
    times_[tid] += 1;
    clocks_[tid][tid] = times_[tid];
    Access cur{{tid, times_[tid]}, v.off, v.len, write, loc.event, node, tag};

    if (v.buffer >= history_.size()) history_.resize(v.buffer + 1);
    std::vector<Access>& hist = history_[v.buffer];
    for (const Access& prev : hist) {
      if (!(prev.write || write)) continue;
      if (prev.off + prev.len <= cur.off || cur.off + cur.len <= prev.off) {
        continue;  // disjoint extents of one buffer never conflict
      }
      if (happens_before(prev.at, tid)) continue;
      report_race(prev, cur, v.buffer);
    }
    // Drop history entries the new access supersedes: anything ordered
    // before it, covered by its extent, and no stronger than it.
    std::erase_if(hist, [&](const Access& prev) {
      return happens_before(prev.at, tid) && prev.off >= cur.off &&
             prev.off + prev.len <= cur.off + cur.len &&
             (!prev.write || cur.write);
    });
    hist.push_back(cur);
  }

  void report_race(const Access& a, const Access& b, std::size_t buffer) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "happens-before";
    d.code = "race.conflicting-access";
    d.round = b.event;  // trace diagnostics locate by event index
    d.message =
        std::string(b.write ? "write" : "read") + " of tag " +
        std::to_string(b.tag) + " on node " + std::to_string(b.node) +
        " (event " + std::to_string(b.event) + ") races with " +
        (a.write ? "write" : "read") + " of tag " + std::to_string(a.tag) +
        " on node " + std::to_string(a.node) + " (event " +
        std::to_string(a.event) + "): overlapping extents of buffer #" +
        std::to_string(buffer) + " with no happens-before order";
    d.hint =
        "order the accesses with a transfer edge, or give the writer a "
        "unique buffer";
    out_.add(std::move(d));
  }

  const std::uint32_t driver_;  ///< tid of host ops with no node
  std::vector<std::vector<std::uint64_t>> clocks_;  ///< per-thread VCs
  std::vector<std::uint64_t> times_;                ///< per-thread local time
  std::vector<std::vector<Access>> history_;        ///< per-buffer accesses
  DiagnosticList& out_;
};

class HappensBeforePass final : public TracePass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "happens-before";
  }

  void run(const TraceInput& in, DiagnosticList& out) const override {
    if (in.trace == nullptr) return;
    RaceSink sink(in.cube.size(), out);
    interpret_trace(*in.trace, &sink);
  }
};

}  // namespace

std::unique_ptr<TracePass> make_happens_before_pass() {
  return std::make_unique<HappensBeforePass>();
}

}  // namespace hcmm::analysis
