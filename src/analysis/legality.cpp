#include "hcmm/analysis/legality.hpp"

#include <iterator>
#include <sstream>
#include <unordered_map>

#include "hcmm/support/bits.hpp"

namespace hcmm::analysis {
namespace {

RoundViolation make_violation(RoundViolation::Rule rule, std::size_t transfer,
                              std::string message) {
  RoundViolation v;
  v.rule = rule;
  v.transfer = transfer;
  v.message = std::move(message);
  return v;
}

bool topology_ok(const Hypercube& cube, const Transfer& t) {
  return cube.contains(t.src) && cube.contains(t.dst) &&
         cube.are_neighbors(t.src, t.dst);
}

}  // namespace

std::vector<RoundViolation> check_round_topology(const Hypercube& cube,
                                                 const Round& round) {
  std::vector<RoundViolation> out;
  for (std::size_t i = 0; i < round.transfers.size(); ++i) {
    const Transfer& t = round.transfers[i];
    if (!cube.contains(t.src) || !cube.contains(t.dst)) {
      std::ostringstream os;
      os << "transfer endpoint out of range (" << t.src << "->" << t.dst
         << " on a " << cube.size() << "-node cube)";
      out.push_back(make_violation(RoundViolation::Rule::kEndpointOutOfRange,
                                   i, os.str()));
    } else if (!cube.are_neighbors(t.src, t.dst)) {
      std::ostringstream os;
      os << "transfer " << t.src << "->" << t.dst
         << " does not follow a hypercube link";
      out.push_back(
          make_violation(RoundViolation::Rule::kNotALink, i, os.str()));
    }
    if (t.tags.empty()) {
      out.push_back(make_violation(RoundViolation::Rule::kEmptyTags, i,
                                   "transfer with no tags"));
    }
  }
  return out;
}

PortKeys port_keys(PortModel port, NodeId src, NodeId dst) {
  PortKeys k;
  if (port == PortModel::kOnePort) {
    k.out = src;
    k.in = dst;
  } else {
    const std::uint32_t dim = exact_log2(src ^ dst);
    k.out = (static_cast<std::uint64_t>(src) << 8) | dim;
    k.in = (static_cast<std::uint64_t>(dst) << 8) | dim;
  }
  return k;
}

std::vector<RoundViolation> check_round_ports(const Hypercube& cube,
                                              PortModel port,
                                              const Round& round) {
  std::vector<RoundViolation> out;
  std::unordered_map<std::uint64_t, int> out_use;
  std::unordered_map<std::uint64_t, int> in_use;
  const bool multi = port == PortModel::kMultiPort;
  for (std::size_t i = 0; i < round.transfers.size(); ++i) {
    const Transfer& t = round.transfers[i];
    if (!topology_ok(cube, t)) continue;  // reported by the topology rules
    const PortKeys keys = port_keys(port, t.src, t.dst);
    if (++out_use[keys.out] != 1) {
      std::ostringstream os;
      os << to_string(port) << " violation: node " << t.src << " sends twice";
      if (multi) os << " on link dimension " << exact_log2(t.src ^ t.dst);
      os << " in one round";
      out.push_back(
          make_violation(RoundViolation::Rule::kDoubleSend, i, os.str()));
    }
    if (++in_use[keys.in] != 1) {
      std::ostringstream os;
      os << to_string(port) << " violation: node " << t.dst
         << " receives twice";
      if (multi) os << " on link dimension " << exact_log2(t.src ^ t.dst);
      os << " in one round";
      out.push_back(
          make_violation(RoundViolation::Rule::kDoubleReceive, i, os.str()));
    }
  }
  return out;
}

std::vector<RoundViolation> check_round(const Hypercube& cube, PortModel port,
                                        const Round& round) {
  std::vector<RoundViolation> out = check_round_topology(cube, round);
  std::vector<RoundViolation> ports = check_round_ports(cube, port, round);
  out.insert(out.end(), std::make_move_iterator(ports.begin()),
             std::make_move_iterator(ports.end()));
  return out;
}

}  // namespace hcmm::analysis
