#include "hcmm/analysis/passes.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "hcmm/analysis/legality.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::analysis {
namespace {

std::string tag_str(Tag tag) {
  std::ostringstream os;
  os << "0x" << std::hex << tag;
  return os.str();
}

Diagnostic diag(Severity sev, std::string_view pass, std::string code,
                std::size_t round, std::size_t transfer, std::string message,
                std::string hint) {
  Diagnostic d;
  d.severity = sev;
  d.pass = std::string(pass);
  d.code = std::move(code);
  d.round = round;
  d.transfer = transfer;
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

// ---- topology -------------------------------------------------------------

class TopologyPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "topology";
  }

  void run(const AnalysisInput& in, DiagnosticList& out) const override {
    const Schedule& s = *in.schedule;
    for (std::size_t r = 0; r < s.rounds.size(); ++r) {
      for (const RoundViolation& v :
           check_round_topology(in.cube, s.rounds[r])) {
        std::string code = "topology.not-a-link";
        std::string hint =
            "multi-hop moves must be routed hop by hop (sim/Router); direct "
            "transfers may only cross one hypercube link";
        switch (v.rule) {
          case RoundViolation::Rule::kEndpointOutOfRange:
            code = "topology.endpoint-range";
            hint = "keep transfer endpoints below the cube size";
            break;
          case RoundViolation::Rule::kEmptyTags:
            code = "topology.empty-tags";
            hint = "drop the transfer or attach the items it should carry";
            break;
          default:
            break;
        }
        out.add(diag(Severity::kError, name(), std::move(code), r, v.transfer,
                     v.message, std::move(hint)));
      }
    }
  }
};

// ---- port model -----------------------------------------------------------

class PortPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "port";
  }

  void run(const AnalysisInput& in, DiagnosticList& out) const override {
    const Schedule& s = *in.schedule;
    for (std::size_t r = 0; r < s.rounds.size(); ++r) {
      for (const RoundViolation& v :
           check_round_ports(in.cube, in.port, s.rounds[r])) {
        const bool send = v.rule == RoundViolation::Rule::kDoubleSend;
        out.add(diag(
            Severity::kError, name(),
            send ? "port.double-send" : "port.double-recv", r, v.transfer,
            v.message,
            "move the transfer to its own round, or (one-port) serialize the "
            "conflicting schedules with seq() instead of par()"));
      }
    }
  }
};

// ---- dataflow -------------------------------------------------------------

class DataflowPass final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dataflow";
  }

  void run(const AnalysisInput& in, DiagnosticList& out) const override {
    if (in.initial == nullptr) return;  // nothing to interpret against
    const Schedule& s = *in.schedule;
    Placement cur = *in.initial;

    using Loc = std::pair<NodeId, Tag>;
    std::map<Loc, std::size_t> moved;  // -> round the item was moved away in
    struct Delivery {
      std::size_t round;
      std::size_t transfer;
      bool used;
    };
    std::vector<Delivery> deliveries;
    std::map<Loc, std::vector<std::size_t>> contribs;  // current copy's makers

    const auto mark_read = [&](NodeId node, Tag tag) {
      const auto it = contribs.find({node, tag});
      if (it == contribs.end()) return;
      for (const std::size_t di : it->second) deliveries[di].used = true;
    };

    for (std::size_t r = 0; r < s.rounds.size(); ++r) {
      struct Pending {
        NodeId dst;
        Tag tag;
        std::size_t words;
        bool combine;
        std::size_t transfer;
      };
      std::vector<Pending> pend;
      std::vector<Loc> erasures;
      for (std::size_t ti = 0; ti < s.rounds[r].transfers.size(); ++ti) {
        const Transfer& t = s.rounds[r].transfers[ti];
        for (const Tag tag : t.tags) {
          if (!cur.has(t.src, tag)) {
            const auto mv = moved.find({t.src, tag});
            if (mv != moved.end()) {
              std::ostringstream os;
              os << "node " << t.src << " sends tag " << tag_str(tag)
                 << " which it moved away in round " << mv->second;
              out.add(diag(Severity::kError, name(), "dataflow.use-after-move",
                           r, ti, os.str(),
                           "clear move_src on the earlier transfer, or "
                           "re-deliver the item before reusing it"));
            } else {
              std::ostringstream os;
              os << "node " << t.src << " does not hold tag " << tag_str(tag)
                 << " when this round starts";
              out.add(diag(Severity::kError, name(), "dataflow.absent-tag", r,
                           ti, os.str(),
                           "stage the item in the initial placement or fix "
                           "the source rank computation"));
            }
            continue;
          }
          mark_read(t.src, tag);
          pend.push_back({t.dst, tag, cur.words(t.src, tag), t.combine, ti});
          if (t.move_src) erasures.emplace_back(t.src, tag);
        }
      }
      // All reads above saw pre-round state (Machine semantics): apply the
      // moves first, then the deliveries.
      for (const Loc& loc : erasures) {
        cur.erase(loc.first, loc.second);
        contribs.erase(loc);
        moved[loc] = r;
      }
      for (const Pending& p : pend) {
        const std::size_t di = deliveries.size();
        deliveries.push_back({r, p.transfer, false});
        if (p.combine) {
          if (!cur.has(p.dst, p.tag)) {
            std::ostringstream os;
            os << "combine into absent item: node " << p.dst
               << " holds no tag " << tag_str(p.tag);
            out.add(diag(Severity::kError, name(),
                         "dataflow.combine-into-absent", r, p.transfer,
                         os.str(),
                         "deliver or stage the base item first, or clear "
                         "`combine` to insert a fresh copy"));
            deliveries[di].used = true;  // already reported; not also "dead"
            continue;
          }
          const std::size_t have = cur.words(p.dst, p.tag);
          if (have != 0 && p.words != 0 && have != p.words) {
            std::ostringstream os;
            os << "combine size mismatch on node " << p.dst << " tag "
               << tag_str(p.tag) << " (" << have << " vs " << p.words
               << " words)";
            out.add(diag(Severity::kError, name(),
                         "dataflow.combine-size-mismatch", r, p.transfer,
                         os.str(),
                         "element-wise reduction requires equal item sizes"));
          }
          contribs[{p.dst, p.tag}].push_back(di);
        } else {
          if (cur.has(p.dst, p.tag)) {
            std::ostringstream os;
            os << "node " << p.dst << " already holds tag " << tag_str(p.tag)
               << "; the store rejects duplicate inserts";
            out.add(diag(Severity::kError, name(),
                         "dataflow.duplicate-delivery", r, p.transfer,
                         os.str(),
                         "set `combine` for reductions, or move/erase the "
                         "old copy before re-delivering"));
            deliveries[di].used = true;
            continue;
          }
          cur.add(p.dst, p.tag, p.words);
          moved.erase({p.dst, p.tag});
          contribs[{p.dst, p.tag}] = {di};
        }
      }
    }

    if (in.expected_final == nullptr) return;
    // Items required at the end count as read; everything else delivered but
    // never consumed marks its transfer dead.
    for (const auto& [node, tags] : in.expected_final->nodes()) {
      for (const auto& [tag, words] : tags) {
        (void)words;
        if (!cur.has(node, tag)) {
          std::ostringstream os;
          os << "expected final item tag " << tag_str(tag) << " on node "
             << node << " never arrives";
          out.add(diag(Severity::kError, name(), "dataflow.final-missing",
                       kNoLoc, kNoLoc, os.str(),
                       "the schedule ends before delivering this item"));
          continue;
        }
        mark_read(node, tag);
      }
    }
    std::map<std::pair<std::size_t, std::size_t>,
             std::pair<std::size_t, std::size_t>>
        per_transfer;  // (round, transfer) -> (unused, total)
    for (const Delivery& d : deliveries) {
      auto& e = per_transfer[{d.round, d.transfer}];
      e.second += 1;
      if (!d.used) e.first += 1;
    }
    for (const auto& [loc, counts] : per_transfer) {
      if (counts.first != counts.second || counts.second == 0) continue;
      std::ostringstream os;
      os << "dead transfer: none of its " << counts.second
         << " delivered item(s) is ever read or required in the final "
            "placement";
      out.add(diag(Severity::kWarning, name(), "dataflow.dead-transfer",
                   loc.first, loc.second, os.str(),
                   "delete the transfer; it spends bandwidth on data nobody "
                   "consumes"));
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_topology_pass() {
  return std::make_unique<TopologyPass>();
}
std::unique_ptr<Pass> make_port_pass() { return std::make_unique<PortPass>(); }
std::unique_ptr<Pass> make_dataflow_pass() {
  return std::make_unique<DataflowPass>();
}

Analyzer Analyzer::with_default_passes() {
  Analyzer a;
  a.add_pass(make_topology_pass());
  a.add_pass(make_port_pass());
  a.add_pass(make_dataflow_pass());
  return a;
}

Analyzer& Analyzer::add_pass(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

DiagnosticList Analyzer::analyze(const AnalysisInput& in) const {
  HCMM_CHECK(in.schedule != nullptr, "analyze: null schedule");
  DiagnosticList out;
  for (const auto& pass : passes_) pass->run(in, out);
  out.sort_by_location();
  return out;
}

DiagnosticList analyze_schedule(const Schedule& schedule, const Hypercube& cube,
                                PortModel port, const Placement* initial,
                                const Placement* expected_final) {
  AnalysisInput in;
  in.schedule = &schedule;
  in.cube = cube;
  in.port = port;
  in.initial = initial;
  in.expected_final = expected_final;
  return Analyzer::with_default_passes().analyze(in);
}

}  // namespace hcmm::analysis
