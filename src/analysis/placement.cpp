#include "hcmm/analysis/placement.hpp"

namespace hcmm::analysis {

void Placement::erase(NodeId node, Tag tag) {
  const auto it = items_.find(node);
  if (it == items_.end()) return;
  it->second.erase(tag);
}

bool Placement::has(NodeId node, Tag tag) const {
  const auto it = items_.find(node);
  return it != items_.end() && it->second.count(tag) != 0;
}

std::size_t Placement::words(NodeId node, Tag tag) const {
  const auto it = items_.find(node);
  if (it == items_.end()) return 0;
  const auto jt = it->second.find(tag);
  return jt == it->second.end() ? 0 : jt->second;
}

Placement snapshot_placement(const DataStore& store) {
  Placement out;
  for (NodeId node = 0; node < store.node_count(); ++node) {
    for (const auto& [tag, words] : store.items(node)) {
      out.add(node, tag, words);
    }
  }
  return out;
}

}  // namespace hcmm::analysis
