#include "hcmm/analysis/rules.hpp"

#include <algorithm>

namespace hcmm::analysis {
namespace {

// Sorted by id (find_rule binary-searches).
constexpr RuleMeta kRules[] = {
    {"alias.combine-shared", "AliasCombineShared",
     "A combine targeted a buffer that is still aliased by another live item",
     "docs/ANALYSIS.md#alias-and-lifetime-verification"},
    {"alias.duplicate-item", "AliasDuplicateItem",
     "An item was created under a (node, tag) that is already live",
     "docs/ANALYSIS.md#alias-and-lifetime-verification"},
    {"alias.missing-item", "AliasMissingItem",
     "An operation referenced a (node, tag) with no live item",
     "docs/ANALYSIS.md#alias-and-lifetime-verification"},
    {"alias.nested-split", "AliasNestedSplit",
     "A split part was split again before its parent join",
     "docs/ANALYSIS.md#alias-and-lifetime-verification"},
    {"alias.part-leak", "AliasPartLeak",
     "A split part was never rejoined or erased",
     "docs/ANALYSIS.md#alias-and-lifetime-verification"},
    {"alias.split-size-mismatch", "AliasSplitSizeMismatch",
     "Split part sizes do not sum to the parent item's words",
     "docs/ANALYSIS.md#alias-and-lifetime-verification"},
    {"alias.use-after-join", "AliasUseAfterJoin",
     "A split part was used after its join consumed it",
     "docs/ANALYSIS.md#alias-and-lifetime-verification"},
    {"cost.inexact", "CostInexact",
     "Static cost extraction saw a transferred tag absent from the placement",
     "docs/ANALYSIS.md#table-1-builder-audit"},
    {"cost.startup-mismatch", "CostStartupMismatch",
     "A collective builder's static start-up count diverged from Table 1",
     "docs/ANALYSIS.md#table-1-builder-audit"},
    {"cost.table2-divergence", "CostTable2Divergence",
     "An algorithm's end-to-end static (a, b) left the calibrated band "
     "around its Table 2 closed form",
     "docs/ANALYSIS.md#table-2-closed-form-audit"},
    {"cost.word-mismatch", "CostWordMismatch",
     "A collective builder's static word cost diverged from Table 1",
     "docs/ANALYSIS.md#table-1-builder-audit"},
    {"dataflow.absent-tag", "DataflowAbsentTag",
     "A transfer sources a tag that is not present at its source node",
     "docs/ANALYSIS.md#schedule-passes"},
    {"dataflow.combine-into-absent", "DataflowCombineIntoAbsent",
     "A combine transfer targets a node holding no item under the tag",
     "docs/ANALYSIS.md#schedule-passes"},
    {"dataflow.combine-size-mismatch", "DataflowCombineSizeMismatch",
     "A combine transfer's payload size differs from its target item",
     "docs/ANALYSIS.md#schedule-passes"},
    {"dataflow.dead-transfer", "DataflowDeadTransfer",
     "A delivered item is overwritten before anything reads it",
     "docs/ANALYSIS.md#schedule-passes"},
    {"dataflow.duplicate-delivery", "DataflowDuplicateDelivery",
     "Two non-combine transfers deliver the same (node, tag) in one round",
     "docs/ANALYSIS.md#schedule-passes"},
    {"dataflow.final-missing", "DataflowFinalMissing",
     "A tag expected live at schedule end is absent",
     "docs/ANALYSIS.md#schedule-passes"},
    {"dataflow.use-after-move", "DataflowUseAfterMove",
     "A transfer sources a tag already consumed by a move in the same round",
     "docs/ANALYSIS.md#schedule-passes"},
    {"plane.divergence", "PlaneDivergence",
     "Trace-predicted data-plane stats diverge from the store's counters",
     "docs/ANALYSIS.md#data-plane-cross-validation"},
    {"port.double-recv", "PortDoubleRecv",
     "A node receives twice in one round under the one-port model",
     "docs/ANALYSIS.md#schedule-passes"},
    {"port.double-send", "PortDoubleSend",
     "A node sends twice in one round under the one-port model",
     "docs/ANALYSIS.md#schedule-passes"},
    {"race.conflicting-access", "RaceConflictingAccess",
     "Two accesses to one buffer are unordered by happens-before",
     "docs/ANALYSIS.md#happens-before-race-detection"},
    {"semantic.duplicate-product", "SemanticDuplicateProduct",
     "Some scalar product a_ik*b_kj contributed to C more than once",
     "docs/ANALYSIS.md#semantic-dataflow-certification"},
    {"semantic.misplaced-product", "SemanticMisplacedProduct",
     "A product term landed at C coordinates its factors do not dictate",
     "docs/ANALYSIS.md#semantic-dataflow-certification"},
    {"semantic.missing-product", "SemanticMissingProduct",
     "Some scalar product a_ik*b_kj never reached C",
     "docs/ANALYSIS.md#semantic-dataflow-certification"},
    {"semantic.operand-mismatch", "SemanticOperandMismatch",
     "A GEMM operand's provenance does not form the operand rectangle the "
     "multiplication needs, or a collected item is not a product multiset",
     "docs/ANALYSIS.md#semantic-dataflow-certification"},
    {"topology.empty-tags", "TopologyEmptyTags",
     "A transfer bundles no tags",
     "docs/ANALYSIS.md#schedule-passes"},
    {"topology.endpoint-range", "TopologyEndpointRange",
     "A transfer endpoint lies outside the machine's node range",
     "docs/ANALYSIS.md#schedule-passes"},
    {"topology.not-a-link", "TopologyNotALink",
     "A transfer's endpoints are not hypercube neighbors",
     "docs/ANALYSIS.md#schedule-passes"},
};

}  // namespace

std::span<const RuleMeta> all_rules() { return kRules; }

const RuleMeta* find_rule(std::string_view id) {
  const auto it = std::lower_bound(
      std::begin(kRules), std::end(kRules), id,
      [](const RuleMeta& r, std::string_view v) { return r.id < v; });
  if (it != std::end(kRules) && it->id == id) return &*it;
  return nullptr;
}

}  // namespace hcmm::analysis
