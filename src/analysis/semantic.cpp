// Semantic dataflow certification (see analysis/semantic.hpp).
//
// The interpreter walks the RunTrace exactly like analysis/trace.cpp's
// physical replay — store ops in order, schedules round by round with
// pre-round source capture — but over a heap of *symbolic* values:
//
//   Opaque       — words with no tracked provenance (ABFT checksums, items
//                  put outside the declarative helpers)
//   Region       — a rectangle of operand A or B in absolute element
//                  coordinates (stage_region)
//   Prods        — a multiset of product-term boxes, each the scalar
//                  products a_{ik} b_{kj} of one (i-range, k-range, j-range)
//                  triple at a local rectangle of the item (GEMM results,
//                  zero-staged accumulators, combines thereof)
//   Frag         — a word range of a parent value (chunked transfers); the
//                  parent snapshot rides along so a later join restores it
//   Concat       — ordered juxtaposition of values a join could not merge
//
// Values are immutable and shared; every trace operation maps to a total
// function on them.  Declarations bind to the store ops that follow them:
// the trusted helpers in algo/detail.cpp emit each declaration immediately
// before performing exactly the physical operation it describes, so a
// (node, tag)-keyed pending map pairs them up without any lookahead.

#include "hcmm/analysis/semantic.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>

#include "hcmm/sim/schedule.hpp"
#include "hcmm/sim/store.hpp"

namespace hcmm::analysis {
namespace {

using Rect = SemanticEvent::Rect;
using Piece = SemanticEvent::Piece;

std::string hex_tag(Tag t) {
  std::ostringstream os;
  os << "0x" << std::hex << t;
  return os.str();
}

std::string rect_str(const Rect& r) {
  std::ostringstream os;
  os << "[" << r.r0 << "," << r.r0 + r.rows << ")x[" << r.c0 << ","
     << r.c0 + r.cols << ")";
  return os.str();
}

/// One product-term box: the scalar products a_{ik} b_{kj} for
/// i in [gr, gr+rows), j in [gc, gc+cols), k in [k0, k1), laid out at local
/// rectangle (lr, lc, rows, cols) of the item that carries them.
struct Term {
  std::size_t lr = 0, lc = 0, rows = 0, cols = 0;
  std::size_t gr = 0, gc = 0;
  std::size_t k0 = 0, k1 = 0;

  friend bool operator<(const Term& a, const Term& b) {
    return std::tie(a.lr, a.lc, a.rows, a.cols, a.gr, a.gc, a.k0, a.k1) <
           std::tie(b.lr, b.lc, b.rows, b.cols, b.gr, b.gc, b.k0, b.k1);
  }
  friend bool operator==(const Term& a, const Term& b) {
    return std::tie(a.lr, a.lc, a.rows, a.cols, a.gr, a.gc, a.k0, a.k1) ==
           std::tie(b.lr, b.lc, b.rows, b.cols, b.gr, b.gc, b.k0, b.k1);
  }
};

struct SymVal;
using SymPtr = std::shared_ptr<const SymVal>;

struct SymVal {
  enum class Kind : std::uint8_t { kOpaque, kRegion, kProds, kConcat, kFrag };
  Kind kind = Kind::kOpaque;
  std::size_t words = 0;

  SemOperand op = SemOperand::kA;  ///< kRegion
  Rect rect{};                     ///< kRegion: operand rectangle
  std::size_t rows = 0, cols = 0;  ///< kProds: item shape
  std::vector<Term> terms;         ///< kProds, kept sorted (canonical form)
  std::vector<SymPtr> pieces;      ///< kConcat
  SymPtr parent;                   ///< kFrag
  std::size_t off = 0;             ///< kFrag: word offset into parent
};

using VK = SymVal::Kind;

SymPtr make_opaque(std::size_t words) {
  auto v = std::make_shared<SymVal>();
  v->words = words;
  return v;
}

SymPtr make_region(SemOperand op, const Rect& r) {
  auto v = std::make_shared<SymVal>();
  v->kind = VK::kRegion;
  v->op = op;
  v->rect = r;
  v->words = r.rows * r.cols;
  return v;
}

SymPtr make_prods(std::size_t rows, std::size_t cols, std::vector<Term> ts) {
  auto v = std::make_shared<SymVal>();
  v->kind = VK::kProds;
  v->rows = rows;
  v->cols = cols;
  v->words = rows * cols;
  std::sort(ts.begin(), ts.end());
  v->terms = std::move(ts);
  return v;
}

SymPtr make_concat(std::vector<SymPtr> pieces) {
  auto v = std::make_shared<SymVal>();
  v->kind = VK::kConcat;
  for (const SymPtr& p : pieces) v->words += p->words;
  v->pieces = std::move(pieces);
  return v;
}

SymPtr make_frag(SymPtr parent, std::size_t off, std::size_t len) {
  auto v = std::make_shared<SymVal>();
  v->kind = VK::kFrag;
  v->parent = std::move(parent);
  v->off = off;
  v->words = len;
  return v;
}

bool rect_eq(const Rect& a, const Rect& b) {
  return a.r0 == b.r0 && a.c0 == b.c0 && a.rows == b.rows && a.cols == b.cols;
}

/// Structural equality.  Prods terms are sorted at construction, so two
/// values built from the same multiset through different combine orders
/// compare equal — which is what lets chunked reduces rejoin exactly.
bool sym_equal(const SymPtr& a, const SymPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->words != b->words) return false;
  switch (a->kind) {
    case VK::kOpaque:
      return true;
    case VK::kRegion:
      return a->op == b->op && rect_eq(a->rect, b->rect);
    case VK::kProds:
      return a->rows == b->rows && a->cols == b->cols && a->terms == b->terms;
    case VK::kConcat:
      if (a->pieces.size() != b->pieces.size()) return false;
      for (std::size_t i = 0; i < a->pieces.size(); ++i) {
        if (!sym_equal(a->pieces[i], b->pieces[i])) return false;
      }
      return true;
    case VK::kFrag:
      return a->off == b->off && sym_equal(a->parent, b->parent);
  }
  return false;
}

/// Word range [off, off+len) of @p v — a split part.  Partial ranges stay
/// Frags (never eagerly restricted), so a later join of sibling parts can
/// always recognize the common parent and restore it exactly.
SymPtr sub_words(const SymPtr& v, std::size_t off, std::size_t len) {
  if (off == 0 && len == v->words) return v;
  if (v->kind == VK::kOpaque) return make_opaque(len);
  if (v->kind == VK::kFrag) return make_frag(v->parent, v->off + off, len);
  return make_frag(v, off, len);
}

/// Sub-rectangle @p p of a shaped value — a slice_item / flush_slices piece.
SymPtr sub_rect(const SymPtr& v, const Rect& p) {
  switch (v->kind) {
    case VK::kRegion:
      return make_region(
          v->op, {v->rect.r0 + p.r0, v->rect.c0 + p.c0, p.rows, p.cols});
    case VK::kProds: {
      std::vector<Term> ts;
      for (const Term& t : v->terms) {
        const std::size_t rlo = std::max(t.lr, p.r0);
        const std::size_t rhi = std::min(t.lr + t.rows, p.r0 + p.rows);
        const std::size_t clo = std::max(t.lc, p.c0);
        const std::size_t chi = std::min(t.lc + t.cols, p.c0 + p.cols);
        if (rlo >= rhi || clo >= chi) continue;
        Term nt;
        nt.lr = rlo - p.r0;
        nt.lc = clo - p.c0;
        nt.rows = rhi - rlo;
        nt.cols = chi - clo;
        nt.gr = t.gr + (rlo - t.lr);
        nt.gc = t.gc + (clo - t.lc);
        nt.k0 = t.k0;
        nt.k1 = t.k1;
        ts.push_back(nt);
      }
      return make_prods(p.rows, p.cols, std::move(ts));
    }
    default:
      return make_opaque(p.rows * p.cols);
  }
}

/// Element-wise sum.  Product multisets union; equal-range fragments push
/// the combine down to their parents (chunked reduces); anything touching
/// an untracked value stays untracked.
SymPtr combine_vals(const SymPtr& x, const SymPtr& y) {
  if (x == nullptr) return y;
  if (y == nullptr) return x;
  if (x->words != y->words) return make_opaque(std::max(x->words, y->words));
  if (x->kind == VK::kProds && y->kind == VK::kProds && x->rows == y->rows &&
      x->cols == y->cols) {
    std::vector<Term> ts = x->terms;
    ts.insert(ts.end(), y->terms.begin(), y->terms.end());
    return make_prods(x->rows, x->cols, std::move(ts));
  }
  if (x->kind == VK::kFrag && y->kind == VK::kFrag && x->off == y->off &&
      x->parent->words == y->parent->words) {
    return sub_words(combine_vals(x->parent, y->parent), x->off, x->words);
  }
  if (x->kind == VK::kConcat && y->kind == VK::kConcat &&
      x->pieces.size() == y->pieces.size()) {
    std::vector<SymPtr> ps;
    ps.reserve(x->pieces.size());
    for (std::size_t i = 0; i < x->pieces.size(); ++i) {
      if (x->pieces[i]->words != y->pieces[i]->words) {
        return make_opaque(x->words);
      }
      ps.push_back(combine_vals(x->pieces[i], y->pieces[i]));
    }
    return make_concat(std::move(ps));
  }
  return make_opaque(x->words);
}

/// Merge two adjacent join parts into one value, or nullptr if they do not
/// compose: sibling fragments of one parent re-fuse (restoring the parent
/// when the last sibling arrives), regions stack vertically, product
/// multisets stack with rebased local rows.
SymPtr merge2(const SymPtr& x, const SymPtr& y) {
  if (x->kind == VK::kOpaque && y->kind == VK::kOpaque) {
    return make_opaque(x->words + y->words);
  }
  if (x->kind == VK::kFrag && y->kind == VK::kFrag &&
      y->off == x->off + x->words && sym_equal(x->parent, y->parent)) {
    return sub_words(x->parent, x->off, x->words + y->words);
  }
  if (x->kind == VK::kRegion && y->kind == VK::kRegion && x->op == y->op &&
      x->rect.c0 == y->rect.c0 && x->rect.cols == y->rect.cols &&
      y->rect.r0 == x->rect.r0 + x->rect.rows) {
    return make_region(
        x->op, {x->rect.r0, x->rect.c0, x->rect.rows + y->rect.rows,
                x->rect.cols});
  }
  if (x->kind == VK::kProds && y->kind == VK::kProds && x->cols == y->cols) {
    std::vector<Term> ts = x->terms;
    ts.reserve(ts.size() + y->terms.size());
    for (Term t : y->terms) {
      t.lr += x->rows;
      ts.push_back(t);
    }
    return make_prods(x->rows + y->rows, x->cols, std::move(ts));
  }
  return nullptr;
}

SymPtr join_vals(const std::vector<SymPtr>& parts) {
  std::vector<SymPtr> flat;
  for (const SymPtr& p : parts) {
    if (p->kind == VK::kConcat) {
      flat.insert(flat.end(), p->pieces.begin(), p->pieces.end());
    } else {
      flat.push_back(p);
    }
  }
  if (flat.empty()) return make_opaque(0);
  std::vector<SymPtr> acc;
  for (const SymPtr& p : flat) {
    if (!acc.empty()) {
      if (SymPtr m = merge2(acc.back(), p)) {
        acc.back() = std::move(m);
        continue;
      }
    }
    acc.push_back(p);
  }
  return acc.size() == 1 ? acc[0] : make_concat(std::move(acc));
}

std::optional<std::pair<std::size_t, std::size_t>> value_shape(
    const SymPtr& v) {
  if (v->kind == VK::kRegion) return std::pair{v->rect.rows, v->rect.cols};
  if (v->kind == VK::kProds) return std::pair{v->rows, v->cols};
  return std::nullopt;
}

constexpr const char* kOperandMismatch = "semantic.operand-mismatch";
constexpr const char* kMisplaced = "semantic.misplaced-product";
constexpr const char* kMissing = "semantic.missing-product";
constexpr const char* kDuplicate = "semantic.duplicate-product";

/// Per-code cap: a single upstream defect cascades (every downstream GEMM
/// and collect sees the poisoned value), and the coverage check can fault
/// many cells; past the cap one suppression notice replaces the flood.
constexpr std::size_t kMaxPerCode = 8;

class SemInterp {
 public:
  SemInterp(const RunTrace& trace, DiagnosticList& out)
      : trace_(trace), out_(out) {}

  SemanticSummary run() {
    for (std::size_t ei = 0; ei < trace_.events.size(); ++ei) {
      const TraceEvent& ev = trace_.events[ei];
      TraceLoc loc;
      loc.event = ei;
      switch (ev.kind) {
        case TraceEvent::Kind::kStoreOp:
          apply_store(ev.store, loc);
          break;
        case TraceEvent::Kind::kSchedule:
          apply_schedule(trace_.schedules[ev.schedule], loc);
          break;
        case TraceEvent::Kind::kSemantic:
          apply_semantic(ev.sem, loc);
          break;
        case TraceEvent::Kind::kPhase:
        case TraceEvent::Kind::kGemmBatch:
          break;
        case TraceEvent::Kind::kRollback:
          // Recovery discarded the store: every symbolic value, pending
          // transfer, accumulator, and staged box dies with it.  The re-run
          // re-stages operands and rebuilds coverage from scratch, so the
          // exactly-once check judges only the surviving (replayed +
          // resumed) computation — which is exactly what produced the final
          // C.
          heap_.clear();
          pend_put_.clear();
          pend_combine_.clear();
          accums_.clear();
          boxes_.clear();
          break;
      }
    }
    check_coverage();
    summary_.n = n_;
    return summary_;
  }

 private:
  using Key = std::pair<NodeId, Tag>;

  void diag(const char* code, std::string msg, std::string hint,
            const TraceLoc& loc) {
    summary_.clean = false;
    std::size_t& count = diag_count_[code];
    count += 1;
    if (count > kMaxPerCode) return;
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "semantic";
    d.code = code;
    // Trace diagnostics locate by event index (round field) and, inside a
    // schedule event, the (round, transfer) via the transfer field.
    d.round = loc.event;
    d.transfer = loc.transfer;
    d.message = std::move(msg);
    if (count == kMaxPerCode) {
      d.message += " (further " + std::string(code) + " suppressed)";
    }
    d.hint = std::move(hint);
    out_.add(std::move(d));
  }

  SymPtr take_pending(std::map<Key, SymPtr>& pend, const Key& key) {
    const auto it = pend.find(key);
    if (it == pend.end()) return nullptr;
    SymPtr v = std::move(it->second);
    pend.erase(it);
    return v;
  }

  [[nodiscard]] SymPtr lookup(NodeId node, Tag tag) const {
    const auto it = heap_.find(Key{node, tag});
    return it == heap_.end() ? nullptr : it->second;
  }

  // -- store ops -----------------------------------------------------------

  void apply_store(const StoreEvent& ev, const TraceLoc& loc) {
    const Key key{ev.node, ev.tag};
    switch (ev.kind) {
      case StoreEvent::Kind::kPut:
      case StoreEvent::Kind::kPutShared: {
        SymPtr v = take_pending(pend_put_, key);
        if (v == nullptr || v->words != ev.words) v = make_opaque(ev.words);
        heap_[key] = std::move(v);
        break;
      }
      case StoreEvent::Kind::kErase:
        heap_.erase(key);
        break;
      case StoreEvent::Kind::kSplit: {
        SymPtr parent = lookup(ev.node, ev.tag);
        if (parent == nullptr) parent = make_opaque(ev.words);
        std::vector<std::size_t> sizes = ev.sizes;
        if (sizes.size() != ev.parts.size()) {
          sizes.resize(ev.parts.size());
          for (std::size_t i = 0; i < ev.parts.size(); ++i) {
            const auto [lo, hi] = chunk_bounds(ev.words, ev.parts.size(), i);
            sizes[i] = hi - lo;
          }
        }
        std::size_t total = 0;
        for (const std::size_t s : sizes) total += s;
        if (total != parent->words) parent = make_opaque(total);
        heap_.erase(key);
        std::size_t off = 0;
        for (std::size_t i = 0; i < ev.parts.size(); ++i) {
          heap_[Key{ev.node, ev.parts[i]}] = sub_words(parent, off, sizes[i]);
          off += sizes[i];
        }
        break;
      }
      case StoreEvent::Kind::kJoin: {
        std::vector<SymPtr> vals;
        vals.reserve(ev.parts.size());
        bool complete = true;
        for (const Tag part : ev.parts) {
          SymPtr v = lookup(ev.node, part);
          if (v == nullptr) complete = false;
          vals.push_back(std::move(v));
          heap_.erase(Key{ev.node, part});
        }
        SymPtr joined =
            complete ? join_vals(vals) : make_opaque(ev.words);
        if (joined->words != ev.words) joined = make_opaque(ev.words);
        heap_[key] = std::move(joined);
        break;
      }
      case StoreEvent::Kind::kCombineInPlace:
      case StoreEvent::Kind::kCombineCopied: {
        const auto it = heap_.find(key);
        if (it == heap_.end()) break;
        SymPtr incoming = take_pending(pend_combine_, key);
        if (incoming == nullptr) incoming = make_opaque(ev.words);
        it->second = combine_vals(it->second, incoming);
        break;
      }
      case StoreEvent::Kind::kHostCopy:
      case StoreEvent::Kind::kHostAlias:
        break;
    }
    (void)loc;
  }

  // -- schedules (mirrors trace.cpp: reads see pre-round state) ------------

  void apply_schedule(const Schedule& s, TraceLoc loc) {
    for (std::size_t r = 0; r < s.rounds.size(); ++r) {
      loc.round = r;
      apply_round(s.rounds[r], loc);
    }
  }

  void apply_round(const Round& round, const TraceLoc& loc) {
    struct Delivery {
      NodeId dst = 0;
      Tag tag = 0;
      SymPtr v;
      bool combine = false;
    };
    std::vector<Delivery> deliveries;
    std::vector<Key> erasures;
    for (const Transfer& t : round.transfers) {
      for (const Tag tag : t.tags) {
        deliveries.push_back({t.dst, tag, lookup(t.src, tag), t.combine});
        if (t.move_src) erasures.emplace_back(t.src, tag);
      }
    }
    for (const Key& k : erasures) heap_.erase(k);
    for (Delivery& d : deliveries) {
      if (d.v == nullptr) continue;
      if (d.combine) {
        const auto it = heap_.find(Key{d.dst, d.tag});
        if (it != heap_.end()) {
          it->second = combine_vals(it->second, d.v);
        }
      } else {
        heap_[Key{d.dst, d.tag}] = std::move(d.v);
      }
    }
    (void)loc;
  }

  // -- semantic declarations -----------------------------------------------

  void apply_semantic(const SemanticEvent& s, const TraceLoc& loc) {
    switch (s.kind) {
      case SemanticEvent::Kind::kStage:
        n_ = std::max({n_, s.rect.r0 + s.rect.rows, s.rect.c0 + s.rect.cols});
        pend_put_[Key{s.node, s.tag}] = make_region(s.op, s.rect);
        break;
      case SemanticEvent::Kind::kStageZero:
        pend_put_[Key{s.node, s.tag}] =
            make_prods(s.rect.rows, s.rect.cols, {});
        break;
      case SemanticEvent::Kind::kSlice:
        apply_slice(s, loc);
        break;
      case SemanticEvent::Kind::kGemm:
        apply_gemm(s, loc);
        break;
      case SemanticEvent::Kind::kAccumFlushSlices: {
        const SymPtr v = take_accum(s.accum_id, s.rect);
        for (const Piece& pc : s.pieces) {
          pend_put_[Key{s.node, pc.tag}] = sub_rect(v, pc.rect);
        }
        break;
      }
      case SemanticEvent::Kind::kAccumFlushCombine:
        pend_combine_[Key{s.node, s.tag}] = take_accum(s.accum_id, s.rect);
        break;
      case SemanticEvent::Kind::kCollect:
        apply_collect(s, loc);
        break;
    }
  }

  SymPtr take_accum(std::uint64_t id, const Rect& shape) {
    const auto it = accums_.find(id);
    if (it == accums_.end()) return make_prods(shape.rows, shape.cols, {});
    SymPtr v = std::move(it->second);
    accums_.erase(it);
    return v;
  }

  void apply_slice(const SemanticEvent& s, const TraceLoc& loc) {
    const SymPtr v = lookup(s.node, s.tag);
    if (v == nullptr) return;  // untracked source; pieces fall to Opaque
    if (const auto sh = value_shape(v);
        sh && (sh->first != s.rect.rows || sh->second != s.rect.cols)) {
      diag(kOperandMismatch,
           "sliced item " + hex_tag(s.tag) + " on node " +
               std::to_string(s.node) + " declared " +
               std::to_string(s.rect.rows) + "x" +
               std::to_string(s.rect.cols) + " but carries a " +
               std::to_string(sh->first) + "x" + std::to_string(sh->second) +
               " value",
           "make the slice declaration match the staged shape", loc);
      return;
    }
    for (const Piece& pc : s.pieces) {
      pend_put_[Key{s.node, pc.tag}] = sub_rect(v, pc.rect);
    }
  }

  /// One GEMM operand resolved to its global coordinates: pieces sorted by
  /// column offset, tiling [0, cols) contiguously, all sharing row start r0.
  struct ResolvedOp {
    std::size_t rows = 0, cols = 0;
    std::size_t r0 = 0;
    struct Pc {
      std::size_t off = 0;  ///< column offset within the operand
      Rect rect{};          ///< global region the piece covers
    };
    std::vector<Pc> pieces;
  };

  std::optional<ResolvedOp> resolve_operand(NodeId node,
                                            const SemanticEvent::Operand& o,
                                            SemOperand which, const char* side,
                                            const TraceLoc& loc) {
    const char* want = which == SemOperand::kA ? "A" : "B";
    if (o.srcs.empty()) {
      diag(kOperandMismatch,
           std::string("GEMM ") + side + " operand on node " +
               std::to_string(node) + " has no tracked provenance",
           "build operands with mat_ref/mat_concat_cols, not mat_own", loc);
      return std::nullopt;
    }
    ResolvedOp r;
    r.rows = o.rows;
    r.cols = o.cols;
    for (const auto& [tag, off] : o.srcs) {
      const SymPtr v = lookup(node, tag);
      if (v == nullptr) {
        diag(kOperandMismatch,
             std::string("GEMM ") + side + " operand reads item " +
                 hex_tag(tag) + " absent from node " + std::to_string(node),
             "the item was never delivered, or was erased before use", loc);
        return std::nullopt;
      }
      if (v->kind != VK::kRegion || v->op != which) {
        diag(kOperandMismatch,
             std::string("GEMM ") + side + " operand item " + hex_tag(tag) +
                 " on node " + std::to_string(node) + " is not a region of " +
                 want,
             "stage the operand with stage_region and move it intact", loc);
        return std::nullopt;
      }
      if (v->rect.rows != o.rows) {
        diag(kOperandMismatch,
             std::string("GEMM ") + side + " operand item " + hex_tag(tag) +
                 " spans " + std::to_string(v->rect.rows) + " rows of " +
                 want + ", operand declares " + std::to_string(o.rows),
             "", loc);
        return std::nullopt;
      }
      r.pieces.push_back({off, v->rect});
    }
    std::sort(r.pieces.begin(), r.pieces.end(),
              [](const ResolvedOp::Pc& a, const ResolvedOp::Pc& b) {
                return a.off < b.off;
              });
    std::size_t at = 0;
    for (const ResolvedOp::Pc& pc : r.pieces) {
      if (pc.off != at) {
        diag(kOperandMismatch,
             std::string("GEMM ") + side + " operand pieces on node " +
                 std::to_string(node) + " do not tile its columns: gap at " +
                 std::to_string(at),
             "concatenate pieces contiguously with mat_concat_cols", loc);
        return std::nullopt;
      }
      at += pc.rect.cols;
      if (pc.rect.r0 != r.pieces.front().rect.r0) {
        diag(kOperandMismatch,
             std::string("GEMM ") + side + " operand pieces on node " +
                 std::to_string(node) + " mix " + want + " row starts " +
                 std::to_string(r.pieces.front().rect.r0) + " and " +
                 std::to_string(pc.rect.r0),
             "", loc);
        return std::nullopt;
      }
    }
    if (at != o.cols) {
      diag(kOperandMismatch,
           std::string("GEMM ") + side + " operand pieces on node " +
               std::to_string(node) + " cover " + std::to_string(at) +
               " of its " + std::to_string(o.cols) + " columns",
           "", loc);
      return std::nullopt;
    }
    r.r0 = r.pieces.front().rect.r0;
    return r;
  }

  void apply_gemm(const SemanticEvent& s, const TraceLoc& loc) {
    summary_.gemm_products += 1;
    SymPtr product;
    const auto a = resolve_operand(s.node, s.a, SemOperand::kA, "A", loc);
    const auto b = resolve_operand(s.node, s.b, SemOperand::kB, "B", loc);
    if (a && b) {
      bool ok = true;
      if (a->cols != b->rows) {
        diag(kOperandMismatch,
             "GEMM on node " + std::to_string(s.node) +
                 ": inner dimensions disagree (A has " +
                 std::to_string(a->cols) + " cols, B has " +
                 std::to_string(b->rows) + " rows)",
             "", loc);
        ok = false;
      }
      // A's global column range must coincide with B's global row range:
      // the product then sums a_{ik} b_{kj} over k in [b.r0, b.r0+a.cols).
      if (ok) {
        for (const ResolvedOp::Pc& pc : a->pieces) {
          if (pc.rect.c0 != b->r0 + pc.off) {
            diag(kOperandMismatch,
                 "GEMM on node " + std::to_string(s.node) +
                     ": A columns at offset " + std::to_string(pc.off) +
                     " hold k=" + std::to_string(pc.rect.c0) +
                     " but B rows supply k=" + std::to_string(b->r0 + pc.off),
                 "pair operand blocks with matching k ranges", loc);
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        std::vector<Term> ts;
        ts.reserve(b->pieces.size());
        for (const ResolvedOp::Pc& pc : b->pieces) {
          Term t;
          t.lr = 0;
          t.lc = pc.off;
          t.rows = a->rows;
          t.cols = pc.rect.cols;
          t.gr = a->r0;
          t.gc = pc.rect.c0;
          t.k0 = b->r0;
          t.k1 = b->r0 + a->cols;
          ts.push_back(t);
        }
        product = make_prods(a->rows, b->cols, std::move(ts));
      }
    }
    if (product == nullptr) product = make_opaque(s.a.rows * s.b.cols);
    switch (s.dest_kind) {
      case SemanticEvent::Dest::kPut:
        pend_put_[Key{s.node, s.dest_tag}] = std::move(product);
        break;
      case SemanticEvent::Dest::kCombine:
        pend_combine_[Key{s.node, s.dest_tag}] = std::move(product);
        break;
      case SemanticEvent::Dest::kAccum: {
        const auto it = accums_.find(s.accum_id);
        accums_[s.accum_id] = it == accums_.end()
                                  ? std::move(product)
                                  : combine_vals(it->second, product);
        break;
      }
    }
  }

  void apply_collect(const SemanticEvent& s, const TraceLoc& loc) {
    summary_.blocks_collected += 1;
    const SymPtr v = lookup(s.node, s.tag);
    if (v == nullptr) {
      diag(kOperandMismatch,
           "collected item " + hex_tag(s.tag) + " absent from node " +
               std::to_string(s.node),
           "the C block was never produced or was erased", loc);
      return;
    }
    if (v->kind != VK::kProds) {
      diag(kOperandMismatch,
           "collected item " + hex_tag(s.tag) + " on node " +
               std::to_string(s.node) +
               " has untracked provenance (not a product multiset)",
           "C blocks must flow from declared GEMM destinations", loc);
      return;
    }
    if (v->rows != s.rect.rows || v->cols != s.rect.cols) {
      diag(kOperandMismatch,
           "collected item " + hex_tag(s.tag) + " is " +
               std::to_string(v->rows) + "x" + std::to_string(v->cols) +
               ", declared C block is " + rect_str(s.rect),
           "", loc);
      return;
    }
    for (const Term& t : v->terms) {
      summary_.terms_collected += 1;
      if (t.gr != s.rect.r0 + t.lr || t.gc != s.rect.c0 + t.lc) {
        diag(kMisplaced,
             "product block for C rows [" + std::to_string(t.gr) + "," +
                 std::to_string(t.gr + t.rows) + ") cols [" +
                 std::to_string(t.gc) + "," + std::to_string(t.gc + t.cols) +
                 ") collected at C(" + std::to_string(s.rect.r0 + t.lr) +
                 "," + std::to_string(s.rect.c0 + t.lc) + ") from item " +
                 hex_tag(s.tag) + " on node " + std::to_string(s.node),
             "collect each block at the coordinates its factors dictate",
             loc);
      }
      boxes_.push_back(
          {t.gr, t.gr + t.rows, t.gc, t.gc + t.cols, t.k0, t.k1, loc.event});
    }
  }

  // -- exactly-once coverage -----------------------------------------------

  struct Box {
    std::size_t r0, r1, c0, c1, k0, k1;
    std::size_t event;  ///< collect event that contributed it
  };

  void check_coverage() {
    if (n_ == 0) return;  // no staged operands: nothing was claimed
    std::vector<Box> bs;
    bs.reserve(boxes_.size());
    for (Box b : boxes_) {
      b.r1 = std::min(b.r1, n_);
      b.c1 = std::min(b.c1, n_);
      b.k1 = std::min(b.k1, n_);
      if (b.r0 < b.r1 && b.c0 < b.c1 && b.k0 < b.k1) bs.push_back(b);
    }
    std::vector<std::size_t> xs{0, n_}, ys{0, n_}, zs{0, n_};
    for (const Box& b : bs) {
      xs.push_back(b.r0);
      xs.push_back(b.r1);
      ys.push_back(b.c0);
      ys.push_back(b.c1);
      zs.push_back(b.k0);
      zs.push_back(b.k1);
    }
    for (auto* v : {&xs, &ys, &zs}) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    }
    const std::size_t nx = xs.size() - 1;
    const std::size_t ny = ys.size() - 1;
    const std::size_t nz = zs.size() - 1;
    std::vector<std::uint32_t> cnt(nx * ny * nz, 0);
    const auto cell = [&](std::size_t i, std::size_t j, std::size_t k) {
      return (i * ny + j) * nz + k;
    };
    const auto span = [](const std::vector<std::size_t>& v, std::size_t lo,
                         std::size_t hi) {
      const auto a = std::lower_bound(v.begin(), v.end(), lo) - v.begin();
      const auto b = std::lower_bound(v.begin(), v.end(), hi) - v.begin();
      return std::pair<std::size_t, std::size_t>(a, b);
    };
    for (const Box& b : bs) {
      const auto [i0, i1] = span(xs, b.r0, b.r1);
      const auto [j0, j1] = span(ys, b.c0, b.c1);
      const auto [k0, k1] = span(zs, b.k0, b.k1);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          for (std::size_t k = k0; k < k1; ++k) cnt[cell(i, j, k)] += 1;
        }
      }
    }
    for (std::size_t i = 0; i < nx; ++i) {
      for (std::size_t j = 0; j < ny; ++j) {
        for (std::size_t k = 0; k < nz; ++k) {
          const std::uint32_t c = cnt[cell(i, j, k)];
          if (c == 1) continue;
          const std::string where =
              "a[i,k]*b[k,j] for i in [" + std::to_string(xs[i]) + "," +
              std::to_string(xs[i + 1]) + "), k in [" + std::to_string(zs[k]) +
              "," + std::to_string(zs[k + 1]) + "), j in [" +
              std::to_string(ys[j]) + "," + std::to_string(ys[j + 1]) + ")";
          if (c == 0) {
            TraceLoc loc;  // end-of-trace: no witness event
            diag(kMissing, "products " + where + " never reached C",
                 "some GEMM contribution was dropped or never computed", loc);
          } else {
            TraceLoc loc;
            std::string events;
            std::size_t found = 0;
            for (const Box& b : bs) {
              if (xs[i] >= b.r0 && xs[i] < b.r1 && ys[j] >= b.c0 &&
                  ys[j] < b.c1 && zs[k] >= b.k0 && zs[k] < b.k1) {
                loc.event = loc.event == kNoLoc
                                ? b.event
                                : std::max(loc.event, b.event);
                events += (events.empty() ? "" : ", ") +
                          std::to_string(b.event);
                if (++found == 2) break;
              }
            }
            diag(kDuplicate,
                 "products " + where + " reached C " + std::to_string(c) +
                     " times (collect events " + events + ")",
                 "the same contribution was accumulated more than once", loc);
          }
        }
      }
    }
  }

  const RunTrace& trace_;
  DiagnosticList& out_;
  SemanticSummary summary_;
  std::size_t n_ = 0;
  std::map<Key, SymPtr> heap_;
  std::map<Key, SymPtr> pend_put_;
  std::map<Key, SymPtr> pend_combine_;
  std::map<std::uint64_t, SymPtr> accums_;
  std::vector<Box> boxes_;
  std::map<std::string, std::size_t> diag_count_;
};

class SemanticTracePass final : public TracePass {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "semantic";
  }
  void run(const TraceInput& in, DiagnosticList& out) const override {
    if (in.trace != nullptr) run_semantic_pass(*in.trace, out);
  }
};

}  // namespace

SemanticSummary run_semantic_pass(const RunTrace& trace,
                                  DiagnosticList& out) {
  return SemInterp(trace, out).run();
}

std::unique_ptr<TracePass> make_semantic_pass() {
  return std::make_unique<SemanticTracePass>();
}

std::string SemanticCertificate::to_string() const {
  std::ostringstream os;
  os << subject << " ["
     << (port == PortModel::kOnePort ? "one-port" : "multi-port") << "] d={";
  for (std::size_t i = 0; i < dims_checked.size(); ++i) {
    os << (i != 0 ? "," : "") << dims_checked[i];
  }
  os << "} exactly-once: " << (clean_all_dims ? "PROVEN" : "VIOLATED");
  if (certified_all_p) {
    os << "; all p via schema: " << closed_form;
  } else if (clean_all_dims) {
    os << "; sampled dimensions only";
  }
  return os.str();
}

SemanticCertificate certify_semantics(
    std::string subject, PortModel port,
    const std::vector<std::pair<std::uint32_t, SemanticSummary>>& by_dim,
    const DimCertificate* legality) {
  SemanticCertificate c;
  c.subject = std::move(subject);
  c.port = port;
  c.clean_all_dims = !by_dim.empty();
  for (const auto& [d, s] : by_dim) {
    c.dims_checked.push_back(d);
    c.summaries.push_back(s);
    if (!s.clean || s.terms_collected == 0) c.clean_all_dims = false;
  }
  if (legality != nullptr) {
    c.closed_form = legality->closed_form;
    c.certified_all_p = c.clean_all_dims && legality->certified_all_p;
  }
  return c;
}

}  // namespace hcmm::analysis
