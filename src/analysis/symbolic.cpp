#include "hcmm/analysis/symbolic.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "hcmm/support/bits.hpp"

namespace hcmm::analysis {

const char* to_string(RoundSchema s) noexcept {
  switch (s) {
    case RoundSchema::kUniformDim: return "uniform-dim";
    case RoundSchema::kPermutation: return "permutation";
    case RoundSchema::kDimPartitioned: return "dim-partitioned";
    case RoundSchema::kIrregular: return "irregular";
  }
  return "?";
}

RoundSchema classify_round(const Round& round) {
  if (round.transfers.empty()) return RoundSchema::kUniformDim;

  bool single_link = true;   // every transfer crosses exactly one dimension
  bool uniform = true;       // ... and the same one
  std::uint32_t dim0 = 0;
  bool first = true;
  std::unordered_set<NodeId> srcs;
  std::unordered_set<NodeId> dsts;
  bool srcs_distinct = true;
  bool dsts_distinct = true;
  std::unordered_map<std::uint64_t, std::uint32_t> out_ports;
  std::unordered_map<std::uint64_t, std::uint32_t> in_ports;
  bool ports_exclusive = true;

  for (const Transfer& t : round.transfers) {
    const std::uint32_t diff = t.src ^ t.dst;
    if (!is_pow2(diff)) {
      single_link = false;
      break;
    }
    const std::uint32_t dim = exact_log2(diff);
    if (first) {
      dim0 = dim;
      first = false;
    } else if (dim != dim0) {
      uniform = false;
    }
    srcs_distinct &= srcs.insert(t.src).second;
    dsts_distinct &= dsts.insert(t.dst).second;
    const std::uint64_t ok = (static_cast<std::uint64_t>(t.src) << 8) | dim;
    const std::uint64_t ik = (static_cast<std::uint64_t>(t.dst) << 8) | dim;
    ports_exclusive &= ++out_ports[ok] == 1;
    ports_exclusive &= ++in_ports[ik] == 1;
  }
  if (!single_link) return RoundSchema::kIrregular;
  if (uniform && srcs_distinct) return RoundSchema::kUniformDim;
  if (srcs_distinct && dsts_distinct) return RoundSchema::kPermutation;
  if (ports_exclusive) return RoundSchema::kDimPartitioned;
  return RoundSchema::kIrregular;
}

namespace {

/// "R(d) = a·d + b" when the sampled (dim, rounds) points are collinear.
std::string affine_form(const std::vector<std::pair<std::uint32_t,
                                                    std::int64_t>>& pts,
                        bool& affine) {
  affine = false;
  if (pts.size() < 2) return "";
  const std::int64_t dx = pts[1].first - pts[0].first;
  if (dx == 0) return "";
  const std::int64_t num = pts[1].second - pts[0].second;
  if (num % dx != 0) return "";
  const std::int64_t a = num / dx;
  const std::int64_t b = pts[0].second - a * static_cast<std::int64_t>(pts[0].first);
  for (const auto& [d, r] : pts) {
    if (a * static_cast<std::int64_t>(d) + b != r) return "";
  }
  affine = true;
  std::ostringstream os;
  os << "R(d) = ";
  if (a != 0) {
    os << a << "d";
    if (b > 0) os << " + " << b;
    if (b < 0) os << " - " << -b;
  } else {
    os << b;
  }
  return os.str();
}

}  // namespace

DimCertificate certify_dimension_schema(std::string subject, PortModel port,
                                        std::span<const SampledRun> runs) {
  DimCertificate cert;
  cert.subject = std::move(subject);
  cert.port = port;

  std::vector<std::pair<std::uint32_t, std::int64_t>> counts;
  std::set<RoundSchema> seen;
  bool all_covered = true;
  for (const SampledRun& run : runs) {
    cert.dims_checked.push_back(run.dim);
    std::int64_t rounds_at_dim = 0;
    if (run.schedules == nullptr) continue;
    for (const Schedule& s : *run.schedules) {
      for (const Round& r : s.rounds) {
        rounds_at_dim += 1;
        cert.rounds_total += 1;
        const RoundSchema schema = classify_round(r);
        seen.insert(schema);
        switch (schema) {
          case RoundSchema::kUniformDim: cert.uniform_rounds += 1; break;
          case RoundSchema::kPermutation: cert.permutation_rounds += 1; break;
          case RoundSchema::kDimPartitioned:
            cert.dim_partitioned_rounds += 1;
            // Lemma D only proves multi-port legality.
            if (port == PortModel::kOnePort) all_covered = false;
            break;
          case RoundSchema::kIrregular:
            cert.irregular_rounds += 1;
            all_covered = false;
            break;
        }
      }
    }
    counts.emplace_back(run.dim, rounds_at_dim);
  }

  bool affine = false;
  const std::string form = affine_form(counts, affine);
  std::ostringstream os;
  // The affine fit is descriptive only: Cannon-family schedules grow with
  // q = 2^(d/2), yet every round still matches a lemma, which is what the
  // certificate actually rests on.
  if (affine) os << form << "; ";
  os << "rounds:";
  for (const RoundSchema s :
       {RoundSchema::kUniformDim, RoundSchema::kPermutation,
        RoundSchema::kDimPartitioned, RoundSchema::kIrregular}) {
    if (seen.count(s) != 0) os << " " << to_string(s);
  }
  cert.closed_form = os.str();
  cert.certified_all_p = all_covered && cert.rounds_total > 0;
  return cert;
}

std::string DimCertificate::to_string() const {
  std::ostringstream os;
  os << subject << " ["
     << (port == PortModel::kOnePort ? "one-port" : "multi-port") << "] d={";
  for (std::size_t i = 0; i < dims_checked.size(); ++i) {
    os << (i != 0 ? "," : "") << dims_checked[i];
  }
  os << "}: " << rounds_total << " rounds (" << uniform_rounds << " uniform, "
     << permutation_rounds << " permutation, " << dim_partitioned_rounds
     << " dim-partitioned, " << irregular_rounds << " irregular); "
     << closed_form << "; all-p "
     << (certified_all_p ? "CERTIFIED" : "not certified");
  return os.str();
}

}  // namespace hcmm::analysis
