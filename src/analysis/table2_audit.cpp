#include "hcmm/analysis/table2_audit.hpp"

#include <sstream>

#include "hcmm/analysis/placement.hpp"
#include "hcmm/cost/model.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"

namespace hcmm::analysis {

using algo::AlgoId;

Table2Form table2_form(AlgoId id, PortModel port) {
  const bool multi = port == PortModel::kMultiPort;
  switch (id) {
    case AlgoId::kSimple:
      if (multi) {
        return {"lg(p)/2", "n^2/(sqrt(p) lg sqrt(p)) (1 - 1/sqrt(p))"};
      }
      return {"lg p", "2n^2/sqrt(p) (1 - 1/sqrt(p))"};
    case AlgoId::kCannon:
      if (multi) {
        return {"sqrt(p) - 1 + lg(p)/2",
                "n^2/sqrt(p) (1 - 1/sqrt(p) + lg(p)/(2 sqrt(p)))"};
      }
      return {"2(sqrt(p) - 1) + lg p",
              "n^2/sqrt(p) (2 - 2/sqrt(p) + lg(p)/sqrt(p))"};
    case AlgoId::kHJE:
      if (multi) {
        return {"sqrt(p) - 1 + lg(p)/2",
                "n^2/sqrt(p) (2/lg(p) - 2/(sqrt(p) lg(p)) + lg(p)/(2 sqrt(p)))"};
      }
      return table2_form(AlgoId::kCannon, port);  // the paper's "-"
    case AlgoId::kBerntsen:
      if (multi) {
        return {"cbrt(p) - 1 + 2 lg(p)/3",
                "n^2/p^(2/3) ((1 + 3/lg(p))(1 - 1/cbrt(p)) + lg(p)/(3 cbrt(p)))"};
      }
      return {"2(cbrt(p) - 1) + lg p",
              "n^2/p^(2/3) (3(1 - 1/cbrt(p)) + 2 lg(p)/(3 cbrt(p)))"};
    case AlgoId::kDNS:
      if (multi) return {"4 lg(p)/3", "4 n^2/p^(2/3)"};
      return {"5 lg(p)/3", "n^2/p^(2/3) * 5 lg(p)/3"};
    case AlgoId::kDiag2D:
      if (multi) {
        return {"3 lg(p)/2",
                "n^2/sqrt(p) ((1 - 1/sqrt(p))/lg sqrt(p) + 2)"};
      }
      return {"3 lg(p)/2", "n^2/sqrt(p) (1 - 1/sqrt(p) + lg p)"};
    case AlgoId::kDiag3D:
      if (multi) return {"lg p", "3 n^2/p^(2/3)"};
      return {"4 lg(p)/3", "n^2/p^(2/3) * 4 lg(p)/3"};
    case AlgoId::kAllTrans:
      if (multi) {
        return {"lg p", "n^2/p^(2/3) ((6/lg(p))(1 - 1/cbrt(p)) + 1)"};
      }
      return {"4 lg(p)/3", "n^2/p^(2/3) (3(1 - 1/cbrt(p)) + lg(p)/3)"};
    case AlgoId::kAll3D:
      if (multi) {
        return {"lg p",
                "n^2/p^(2/3) ((6/lg(p))(1 - 1/cbrt(p)) + [n^2/(p cbrt(p)) >= "
                "lg cbrt(p) ? 1/(2 cbrt(p)) : lg(p)/(6 cbrt(p))])"};
      }
      return {"4 lg(p)/3",
              "n^2/p^(2/3) (3(1 - 1/cbrt(p)) + lg(p)/(6 cbrt(p)))"};
    case AlgoId::kAll3DRect:
      // q1 = p^(1/4); derived for the extension (DESIGN.md).
      if (multi) {
        return {"2 lg(q1) + lg sqrt(p)",
                "2(q1 - 1) n^2/(p lg(q1)) + max((q1 - 1) n^2/(p lg(q1)), "
                "q1 n^2/p (lg(q1) + q1 - 1)/lg sqrt(p))"};
      }
      return {"3 lg(q1) + lg sqrt(p)",
              "3(q1 - 1) n^2/p + q1 n^2/p (lg(q1) + q1 - 1)"};
    case AlgoId::kDNSCannon:
      // p = sigma^3 rho^2, m = n^2/(sigma^2 rho^2); rho = 1 reduces to
      // DNS, sigma = 1 to pure Cannon (the movement terms vanish).
      if (multi) {
        return {"4 lg(sigma) + lg(rho) + (rho - 1)",
                "m (4 + lg(rho) + (rho - 1))"};
      }
      return {"5 lg(sigma) + 2 lg(rho) + 2(rho - 1)",
              "m (5 lg(sigma) + 2 lg(rho) + 2(rho - 1))"};
    case AlgoId::kDiag3DCannon:
      if (multi) {
        return {"3 lg(sigma) + lg(rho) + (rho - 1)",
                "m (3 + lg(rho) + (rho - 1))"};
      }
      return {"4 lg(sigma) + 2 lg(rho) + 2(rho - 1)",
              "m (4 lg(sigma) + 2 lg(rho) + 2(rho - 1))"};
  }
  return {"?", "?"};
}

Table2Tolerance table2_tolerance(AlgoId id, PortModel port) {
  // Calibrated against EXPERIMENTS.md's measured worst cases (the "within
  // k%" column of the Table 2 section plus the documented structural gaps),
  // with headroom for the small-chunk rounding the lint dims exercise.
  // Anything beyond these bands is a real cost regression.
  const bool multi = port == PortModel::kMultiPort;
  switch (id) {
    case AlgoId::kSimple:
      return multi ? Table2Tolerance{0.05, 0.10} : Table2Tolerance{0.02, 0.03};
    case AlgoId::kCannon:
      return multi ? Table2Tolerance{0.02, 0.06} : Table2Tolerance{0.01, 0.01};
    case AlgoId::kHJE:
      return multi ? Table2Tolerance{0.05, 0.12} : Table2Tolerance{0.01, 0.01};
    case AlgoId::kBerntsen:
      return multi ? Table2Tolerance{0.05, 0.08} : Table2Tolerance{0.02, 0.03};
    case AlgoId::kDNS:
      // One-port runs ~10% *below* the paper: e-cube routing pipelines
      // phase 1's two messages, which Table 2 charges sequentially.
      return multi ? Table2Tolerance{0.05, 0.08} : Table2Tolerance{0.15, 0.15};
    case AlgoId::kDiag2D:
      return multi ? Table2Tolerance{0.05, 0.06} : Table2Tolerance{0.02, 0.03};
    case AlgoId::kDiag3D:
      return multi ? Table2Tolerance{0.05, 0.08} : Table2Tolerance{0.02, 0.03};
    case AlgoId::kAllTrans:
      return multi ? Table2Tolerance{0.05, 0.10} : Table2Tolerance{0.02, 0.05};
    case AlgoId::kAll3D:
      return multi ? Table2Tolerance{0.05, 0.09} : Table2Tolerance{0.02, 0.05};
    case AlgoId::kAll3DRect:
      // The multi-port z-phase sits up to ~1.4x above the ideal
      // rotated-tree bound (sparse-contributor rank clustering).
      return multi ? Table2Tolerance{0.10, 0.45} : Table2Tolerance{0.05, 0.10};
    case AlgoId::kDNSCannon:
    case AlgoId::kDiag3DCannon:
      // rho = 1 degenerates to DNS / 3DD, so the one-port band must cover
      // DNS's e-cube start-up pipelining (13% fewer start-ups at d = 9).
      return multi ? Table2Tolerance{0.10, 0.20} : Table2Tolerance{0.15, 0.15};
  }
  return {0.0, 0.0};
}

std::string Table2Sample::to_string() const {
  std::ostringstream os;
  os << algo::to_string(id) << " ["
     << (port == PortModel::kOnePort ? "one-port" : "multi-port")
     << "] d=" << dim << " n=" << n << ": static (a, b) = (" << got_a << ", "
     << got_b << ") vs Table 2 (" << want_a << ", " << want_b << ") — "
     << (within ? "WITHIN band" : "DIVERGED");
  return os.str();
}

std::size_t table2_audit_n(AlgoId id, PortModel port, std::uint32_t dim) {
  const auto alg = algo::make_algorithm(id);
  if (!alg->supports(port)) return 0;
  const std::uint32_t p = 1u << dim;
  std::size_t best = 0;
  for (const std::size_t n :
       {8u, 12u, 16u, 24u, 32u, 48u, 64u, 96u, 128u, 144u, 192u}) {
    if (alg->applicable(n, p) &&
        cost::applicable(id, port, static_cast<double>(n),
                         static_cast<double>(p))) {
      best = n;
    }
  }
  return best;
}

std::optional<Table2Sample> audit_algorithm_table2(AlgoId id, PortModel port,
                                                   std::uint32_t dim,
                                                   DiagnosticList& out) {
  const std::size_t n = table2_audit_n(id, port, dim);
  if (n == 0) return std::nullopt;
  const auto alg = algo::make_algorithm(id);
  const Hypercube cube(dim);
  Machine m(cube, port, CostParams{});

  Table2Sample s;
  s.id = id;
  s.port = port;
  s.dim = dim;
  s.n = n;
  m.set_schedule_observer([&](const Schedule& sched) {
    const Placement placed = snapshot_placement(m.store());
    const StaticCost c = static_cost(sched, cube, port, placed);
    s.got_a += static_cast<double>(c.a);
    s.got_b += static_cast<double>(c.b);
    s.exact = s.exact && c.exact;
  });
  const Matrix a = random_matrix(n, n, 23);
  const Matrix b = random_matrix(n, n, 29);
  (void)alg->run(a, b, m);

  const cost::CommCost want = cost::table2(id, port, static_cast<double>(n),
                                           static_cast<double>(1u << dim));
  s.want_a = want.a;
  s.want_b = want.b;

  const std::string where = alg->name() + " on " + std::to_string(1u << dim) +
                            " nodes (" + to_string(port) + ", n=" +
                            std::to_string(n) + ")";
  if (!s.exact) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "table2";
    d.code = "cost.inexact";
    d.message = where + ": static cost could not be computed exactly "
                        "(absent tags in an emitted schedule)";
    out.add(std::move(d));
    s.within = false;
    return s;
  }

  const Table2Tolerance tol = table2_tolerance(id, port);
  const auto rel = [](double got, double want_v) {
    return std::abs(got - want_v) / std::max(want_v, 1.0);
  };
  const double da = rel(s.got_a, s.want_a);
  const double db = rel(s.got_b, s.want_b);
  const Table2Form form = table2_form(id, port);
  if (da > tol.a) {
    std::ostringstream os;
    os << where << ": start-ups " << s.got_a << " diverge from Table 2's "
       << s.want_a << " (a = " << form.a << ") by " << da * 100.0
       << "% (band " << tol.a * 100.0 << "%)";
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "table2";
    d.code = "cost.table2-divergence";
    d.message = os.str();
    d.hint = "a phase gained or lost rounds — diff the schedule round count "
             "against the startup polynomial";
    out.add(std::move(d));
    s.within = false;
  }
  if (db > tol.b) {
    std::ostringstream os;
    os << where << ": critical-path words " << s.got_b
       << " diverge from Table 2's " << s.want_b << " (b = " << form.b
       << ") by " << db * 100.0 << "% (band " << tol.b * 100.0 << "%)";
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "table2";
    d.code = "cost.table2-divergence";
    d.message = os.str();
    d.hint = "message sizes or chunking changed — diff per-phase word "
             "volumes against the bandwidth polynomial";
    out.add(std::move(d));
    s.within = false;
  }
  return s;
}

}  // namespace hcmm::analysis
