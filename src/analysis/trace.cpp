#include "hcmm/analysis/trace.hpp"

#include <map>
#include <sstream>
#include <utility>

#include "hcmm/sim/machine.hpp"

namespace hcmm::analysis {

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder::TraceRecorder(Machine& m) : machine_(m) {
  trace_.policy = m.store().copy_policy();
  m.store().set_op_observer([this](const StoreEvent& ev) {
    TraceEvent te;
    te.kind = TraceEvent::Kind::kStoreOp;
    te.store = ev;
    trace_.events.push_back(std::move(te));
  });
  m.set_phase_observer([this](std::string_view name) {
    TraceEvent te;
    te.kind = TraceEvent::Kind::kPhase;
    te.phase = std::string(name);
    trace_.events.push_back(std::move(te));
  });
  m.set_gemm_observer([this](std::size_t jobs) {
    TraceEvent te;
    te.kind = TraceEvent::Kind::kGemmBatch;
    te.gemm_jobs = jobs;
    trace_.events.push_back(std::move(te));
  });
  m.set_semantic_observer([this](const SemanticEvent& ev) {
    TraceEvent te;
    te.kind = TraceEvent::Kind::kSemantic;
    te.sem = ev;
    trace_.events.push_back(std::move(te));
  });
  m.set_schedule_observer(
      [this](const Schedule& s) { record_schedule(s); });
  m.set_rollback_observer([this]() {
    TraceEvent te;
    te.kind = TraceEvent::Kind::kRollback;
    trace_.events.push_back(std::move(te));
  });
}

TraceRecorder::~TraceRecorder() {
  machine_.store().set_op_observer({});
  machine_.set_phase_observer({});
  machine_.set_gemm_observer({});
  machine_.set_semantic_observer({});
  machine_.set_schedule_observer({});
  machine_.set_rollback_observer({});
}

void TraceRecorder::record_schedule(const Schedule& s) {
  TraceEvent te;
  te.kind = TraceEvent::Kind::kSchedule;
  te.schedule = trace_.schedules.size();
  trace_.schedules.push_back(s);
  trace_.events.push_back(std::move(te));
}

// ---------------------------------------------------------------------------
// Abstract interpretation

namespace {

std::string hex_tag(Tag tag) {
  std::ostringstream os;
  os << "0x" << std::hex << tag;
  return os.str();
}

/// The view a (node, tag) item holds into an abstract allocation.
struct AbstractItem {
  std::size_t buffer = 0;
  std::size_t off = 0;
  std::size_t len = 0;
};

class Interp {
 public:
  Interp(const RunTrace& trace, TraceSink* sink)
      : trace_(trace), sink_(sink) {}

  DataPlaneStats run() {
    for (std::size_t e = 0; e < trace_.events.size(); ++e) {
      const TraceEvent& ev = trace_.events[e];
      TraceLoc loc;
      loc.event = e;
      switch (ev.kind) {
        case TraceEvent::Kind::kStoreOp:
          apply_store_op(ev.store, loc);
          break;
        case TraceEvent::Kind::kSchedule:
          apply_schedule(trace_.schedules[ev.schedule], loc);
          break;
        case TraceEvent::Kind::kPhase:
          if (sink_) sink_->on_phase(ev.phase, loc);
          break;
        case TraceEvent::Kind::kGemmBatch:
          if (sink_) sink_->on_gemm_batch(ev.gemm_jobs, loc);
          break;
        case TraceEvent::Kind::kSemantic:
          // Provenance declarations never touch the abstract heap; they are
          // consumed by the semantic pass (analysis/semantic.hpp).
          if (sink_) sink_->on_semantic(ev.sem, loc);
          break;
        case TraceEvent::Kind::kRollback:
          // Recovery discarded the store: every live item dies with it and
          // the run rebuilds from empty.  Buffer ids stay monotone (refs_
          // keeps growing) so race history in sinks never aliases a new
          // allocation onto a pre-rollback one.
          items_.clear();
          joined_.clear();
          stats_ = DataPlaneStats{};
          if (sink_) sink_->on_rollback(loc);
          break;
      }
    }
    finish();
    return stats_;
  }

 private:
  using Key = std::pair<NodeId, Tag>;

  std::size_t fresh_buffer() {
    refs_.push_back(0);
    return refs_.size() - 1;
  }

  [[nodiscard]] AbstractView view_of(const AbstractItem& it) const {
    return {it.buffer, it.off, it.len, refs_[it.buffer]};
  }

  void violation(std::string_view code, std::string message, std::string hint,
                 const TraceLoc& loc) {
    if (sink_) {
      sink_->on_violation(code, std::move(message), std::move(hint), loc);
    }
  }

  /// Report a read access on an existing item.
  void read(NodeId node, Tag tag, const AbstractItem& it,
            const TraceLoc& loc) {
    if (sink_) sink_->on_read(node, tag, view_of(it), loc);
  }

  void add_ref(std::size_t buffer) { refs_[buffer] += 1; }
  void drop_ref(std::size_t buffer) { refs_[buffer] -= 1; }

  /// Insert an item, flagging a duplicate (the live store throws instead).
  void insert(NodeId node, Tag tag, AbstractItem it, const TraceLoc& loc) {
    const auto pos = items_.find(Key{node, tag});
    if (pos != items_.end()) {
      violation("alias.duplicate-item",
                "node " + std::to_string(node) + " already holds tag " +
                    hex_tag(tag),
                "erase or move the existing item before re-inserting", loc);
      drop_ref(pos->second.buffer);
      items_.erase(pos);
    }
    add_ref(it.buffer);
    items_.emplace(Key{node, tag}, it);
    joined_.erase(Key{node, tag});
  }

  /// Remove an item if present; returns false when absent.
  bool remove(NodeId node, Tag tag) {
    const auto it = items_.find(Key{node, tag});
    if (it == items_.end()) return false;
    drop_ref(it->second.buffer);
    items_.erase(it);
    return true;
  }

  /// Find an item, reporting use-after-join / missing-item when absent.
  /// @p required suppresses the missing-item report for advisory lookups.
  AbstractItem* lookup(NodeId node, Tag tag, const TraceLoc& loc,
                       std::string_view what, bool required = true) {
    const auto it = items_.find(Key{node, tag});
    if (it != items_.end()) return &it->second;
    const auto j = joined_.find(Key{node, tag});
    if (j != joined_.end()) {
      violation("alias.use-after-join",
                std::string(what) + " of tag " + hex_tag(tag) + " on node " +
                    std::to_string(node) + " after join at event " +
                    std::to_string(j->second.event) + " consumed it",
                "read the joined item, or join after the last use", loc);
    } else if (required) {
      violation("alias.missing-item",
                std::string(what) + " of absent tag " + hex_tag(tag) +
                    " on node " + std::to_string(node),
                "", loc);
    }
    return nullptr;
  }

  void apply_store_op(const StoreEvent& ev, const TraceLoc& loc) {
    switch (ev.kind) {
      case StoreEvent::Kind::kPut:
      case StoreEvent::Kind::kPutShared:
        // A top-level put allocates; a top-level put_shared wraps a payload
        // the host just built (the interpreter cannot see host sharing, and
        // delivery-level put_shared is muted, so fresh is exact).
        insert(ev.node, ev.tag, {fresh_buffer(), 0, ev.words}, loc);
        break;
      case StoreEvent::Kind::kErase:
        if (!remove(ev.node, ev.tag)) {
          lookup(ev.node, ev.tag, loc, "erase");
        }
        break;
      case StoreEvent::Kind::kSplit:
        apply_split(ev, loc);
        break;
      case StoreEvent::Kind::kJoin:
        apply_join(ev, loc);
        break;
      case StoreEvent::Kind::kCombineInPlace: {
        AbstractItem* it = lookup(ev.node, ev.tag, loc, "combine");
        if (it == nullptr) break;
        if (refs_[it->buffer] > 1) {
          violation("alias.combine-shared",
                    "in-place combine into tag " + hex_tag(ev.tag) +
                        " on node " + std::to_string(ev.node) + " while " +
                        std::to_string(refs_[it->buffer] - 1) +
                        " other view(s) share its buffer",
                    "clone before accumulating, or erase the other views",
                    loc);
        }
        if (sink_) sink_->on_write(ev.node, ev.tag, view_of(*it), loc);
        stats_.combines_in_place += 1;
        break;
      }
      case StoreEvent::Kind::kCombineCopied: {
        AbstractItem* it = lookup(ev.node, ev.tag, loc, "combine");
        if (it == nullptr) break;
        read(ev.node, ev.tag, *it, loc);
        drop_ref(it->buffer);
        *it = {fresh_buffer(), 0, it->len};
        add_ref(it->buffer);
        stats_.combines_copied += 1;
        stats_.words_copied += ev.words;
        break;
      }
      case StoreEvent::Kind::kHostCopy:
      case StoreEvent::Kind::kHostAlias: {
        if (ev.kind == StoreEvent::Kind::kHostCopy) {
          stats_.words_copied += ev.words;
        } else {
          stats_.words_aliased += ev.words;
        }
        if (ev.node == kNoNode || ev.tag == 0) break;
        AbstractItem* it =
            lookup(ev.node, ev.tag, loc, "host read", /*required=*/false);
        if (it != nullptr) read(ev.node, ev.tag, *it, loc);
        break;
      }
    }
  }

  void apply_split(const StoreEvent& ev, const TraceLoc& loc) {
    if ((ev.tag >> 56) != 0) {
      violation("alias.nested-split",
                "split of tag " + hex_tag(ev.tag) +
                    " whose reserved part byte is already in use "
                    "(splitting a split part)",
                "join the parts back before splitting again", loc);
    }
    AbstractItem* parent = lookup(ev.node, ev.tag, loc, "split");
    if (parent == nullptr) return;
    // Per-part sizes ride on the event; fall back to even chunks when a
    // fabricated trace omits them.
    std::vector<std::size_t> sizes = ev.sizes;
    if (sizes.size() != ev.parts.size()) {
      sizes.resize(ev.parts.size());
      for (std::size_t i = 0; i < ev.parts.size(); ++i) {
        const auto [lo, hi] = chunk_bounds(ev.words, ev.parts.size(), i);
        sizes[i] = hi - lo;
      }
    }
    std::size_t total = 0;
    for (const std::size_t s : sizes) total += s;
    if (total != parent->len) {
      violation("alias.split-size-mismatch",
                "split sizes of tag " + hex_tag(ev.tag) + " on node " +
                    std::to_string(ev.node) + " sum to " +
                    std::to_string(total) + " != item size " +
                    std::to_string(parent->len),
                "make the part sizes partition the item exactly", loc);
    }
    const AbstractItem whole = *parent;
    remove(ev.node, ev.tag);
    std::size_t off = 0;
    for (std::size_t i = 0; i < ev.parts.size(); ++i) {
      if (trace_.policy == CopyPolicy::kZeroCopy) {
        insert(ev.node, ev.parts[i], {whole.buffer, whole.off + off, sizes[i]},
               loc);
        stats_.words_aliased += sizes[i];
      } else {
        insert(ev.node, ev.parts[i], {fresh_buffer(), 0, sizes[i]}, loc);
        stats_.words_copied += sizes[i];
      }
      off += sizes[i];
    }
    if (trace_.policy == CopyPolicy::kDeepCopy) {
      // Materializing the parts reads the whole parent once.
      if (sink_) {
        sink_->on_read(ev.node, ev.tag,
                       {whole.buffer, whole.off, whole.len,
                        refs_[whole.buffer] + 1},
                       loc);
      }
    }
    stats_.split_ops += 1;
  }

  void apply_join(const StoreEvent& ev, const TraceLoc& loc) {
    std::vector<AbstractItem> parts;
    parts.reserve(ev.parts.size());
    bool all_present = true;
    for (const Tag pt : ev.parts) {
      AbstractItem* it = lookup(ev.node, pt, loc, "join");
      if (it == nullptr) {
        all_present = false;
        continue;
      }
      parts.push_back(*it);
    }
    std::size_t total = 0;
    for (const AbstractItem& p : parts) total += p.len;
    // Mirror DataStore::join's re-alias condition exactly.
    bool contiguous = trace_.policy == CopyPolicy::kZeroCopy && all_present &&
                      !parts.empty();
    if (contiguous) {
      std::size_t off = parts[0].off;
      for (const AbstractItem& p : parts) {
        if (p.buffer != parts[0].buffer || p.off != off) {
          contiguous = false;
          break;
        }
        off += p.len;
      }
    }
    if (!contiguous) {
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (sink_) {
          sink_->on_read(ev.node, ev.parts[i],
                         {parts[i].buffer, parts[i].off, parts[i].len,
                          refs_[parts[i].buffer]},
                         loc);
        }
      }
    }
    for (const Tag pt : ev.parts) {
      if (remove(ev.node, pt)) joined_[Key{ev.node, pt}] = loc;
    }
    if (contiguous) {
      insert(ev.node, ev.tag, {parts[0].buffer, parts[0].off, total}, loc);
      stats_.words_aliased += total;
    } else {
      insert(ev.node, ev.tag, {fresh_buffer(), 0, total}, loc);
      stats_.words_copied += total;
    }
    stats_.join_ops += 1;
  }

  void apply_schedule(const Schedule& s, TraceLoc loc) {
    for (std::size_t r = 0; r < s.rounds.size(); ++r) {
      loc.round = r;
      apply_round(s.rounds[r], loc);
    }
  }

  /// In-flight delivery view during one round: the payload execute_round()
  /// read before applying moves.  Non-combine deliveries hand their view to
  /// the destination item; combine deliveries keep it alive to round end —
  /// both exactly as the Machine's delivery vector does, so the uniqueness
  /// the in-place combine test sees here matches Payload::unique() there.
  struct Delivery {
    NodeId src = 0;
    NodeId dst = 0;
    Tag tag = 0;
    AbstractItem view;
    bool combine = false;
    bool live = false;  ///< view registered (source item existed)
    TraceLoc loc;
  };

  void apply_round(const Round& round, TraceLoc loc) {
    std::vector<Delivery> deliveries;
    std::vector<Key> erasures;
    // All reads see pre-round state.
    for (std::size_t ti = 0; ti < round.transfers.size(); ++ti) {
      const Transfer& t = round.transfers[ti];
      loc.transfer = ti;
      for (const Tag tag : t.tags) {
        Delivery d;
        d.src = t.src;
        d.dst = t.dst;
        d.tag = tag;
        d.combine = t.combine;
        d.loc = loc;
        AbstractItem* it = lookup(t.src, tag, loc, "transfer");
        if (it != nullptr) {
          read(t.src, tag, *it, loc);
          d.view = *it;
          d.live = true;
          add_ref(it->buffer);
        }
        deliveries.push_back(d);
        if (t.move_src) erasures.emplace_back(t.src, tag);
      }
    }
    loc.transfer = kNoLoc;
    for (const auto& [node, tag] : erasures) remove(node, tag);
    for (Delivery& d : deliveries) {
      if (!d.live) continue;
      if (sink_) sink_->on_edge(d.src, d.dst, d.loc);
      if (d.combine) {
        AbstractItem* dst = lookup(d.dst, d.tag, d.loc, "combine delivery");
        if (dst == nullptr) continue;
        if (trace_.policy == CopyPolicy::kZeroCopy &&
            refs_[dst->buffer] == 1) {
          if (sink_) sink_->on_write(d.dst, d.tag, view_of(*dst), d.loc);
          stats_.combines_in_place += 1;
        } else {
          read(d.dst, d.tag, *dst, d.loc);
          drop_ref(dst->buffer);
          *dst = {fresh_buffer(), 0, dst->len};
          add_ref(dst->buffer);
          stats_.combines_copied += 1;
          stats_.words_copied += d.view.len;
        }
        // The delivered view stays alive to round end (dropped below).
      } else {
        // put_shared: the in-flight view becomes the destination item, so
        // the net reference count is unchanged.
        drop_ref(d.view.buffer);
        insert(d.dst, d.tag, d.view, d.loc);
        d.live = false;
      }
    }
    for (const Delivery& d : deliveries) {
      if (d.live) drop_ref(d.view.buffer);
    }
  }

  void finish() {
    // Split parts still resident at end of run never re-joined their whole:
    // the reserved-byte namespace leaks and the next split of the base tag
    // would collide.
    for (const auto& [key, item] : items_) {
      if ((key.second >> 56) == 0) continue;
      TraceLoc loc;  // end-of-trace, no event location
      violation("alias.part-leak",
                "split part " + hex_tag(key.second) + " on node " +
                    std::to_string(key.first) +
                    " still resident at end of run",
                "join or erase every part the algorithm splits", loc);
    }
  }

  const RunTrace& trace_;
  TraceSink* sink_;
  DataPlaneStats stats_;
  std::map<Key, AbstractItem> items_;
  std::map<Key, TraceLoc> joined_;  ///< tags consumed by a join, for UAJ
  std::vector<std::size_t> refs_;   ///< per-buffer reference counts
};

}  // namespace

DataPlaneStats interpret_trace(const RunTrace& trace, TraceSink* sink) {
  return Interp(trace, sink).run();
}

void cross_validate_plane(const RunTrace& trace, const DataPlaneStats& measured,
                          DiagnosticList& out) {
  const DataPlaneStats predicted = interpret_trace(trace, nullptr);
  const auto check = [&out](const char* field, std::uint64_t pred,
                            std::uint64_t meas) {
    if (pred == meas) return;
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = "plane-validate";
    d.code = "plane.divergence";
    d.message = std::string(field) + ": trace model predicts " +
                std::to_string(pred) + ", store measured " +
                std::to_string(meas);
    d.hint = "the abstract heap no longer matches DataStore semantics";
    out.add(std::move(d));
  };
  check("words_copied", predicted.words_copied, measured.words_copied);
  check("words_aliased", predicted.words_aliased, measured.words_aliased);
  check("split_ops", predicted.split_ops, measured.split_ops);
  check("join_ops", predicted.join_ops, measured.join_ops);
  check("combines_in_place", predicted.combines_in_place,
        measured.combines_in_place);
  check("combines_copied", predicted.combines_copied,
        measured.combines_copied);
}

}  // namespace hcmm::analysis
