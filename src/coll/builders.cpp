#include "hcmm/coll/builders.hpp"

#include "hcmm/support/check.hpp"

namespace hcmm::coll {
namespace {

// Spread the low bits of @p idx over the local dimensions order[0..count).
std::uint32_t spread(std::uint32_t idx, const DimOrder& order,
                     std::uint32_t count) {
  std::uint32_t rank = 0;
  for (std::uint32_t b = 0; b < count; ++b) {
    if (bit_of(idx, b) != 0) rank |= (1u << order[b]);
  }
  return rank;
}

void check_order(const Subcube& sc, const DimOrder& order) {
  HCMM_CHECK(order.size() == sc.dim(), "dim order size != subcube dim");
  std::uint32_t seen = 0;
  for (const std::uint32_t o : order) {
    HCMM_CHECK(o < sc.dim(), "dim order entry out of range");
    HCMM_CHECK((seen & (1u << o)) == 0, "dim order entry repeated");
    seen |= (1u << o);
  }
}

}  // namespace

DimOrder identity_order(std::uint32_t d) {
  DimOrder o(d);
  for (std::uint32_t i = 0; i < d; ++i) o[i] = i;
  return o;
}

DimOrder rotated_order(std::uint32_t d, std::uint32_t j) {
  DimOrder o(d);
  for (std::uint32_t i = 0; i < d; ++i) o[i] = (j + i) % d;
  return o;
}

Schedule sbt_bcast(const Subcube& sc, std::uint32_t root_rank,
                   const DimOrder& order, std::span<const Tag> tags) {
  check_order(sc, order);
  HCMM_CHECK(root_rank < sc.size(), "root rank out of range");
  const std::uint32_t d = sc.dim();
  Schedule out;
  out.rounds.reserve(d);
  const std::vector<Tag> tag_vec(tags.begin(), tags.end());
  for (std::uint32_t r = 0; r < d; ++r) {
    Round round;
    round.transfers.reserve(1u << r);
    for (std::uint32_t s = 0; s < (1u << r); ++s) {
      const std::uint32_t rel = spread(s, order, r);
      const std::uint32_t from = root_rank ^ rel;
      const std::uint32_t to = from ^ (1u << order[r]);
      round.transfers.push_back(Transfer{.src = sc.node_at(from),
                                         .dst = sc.node_at(to),
                                         .tags = tag_vec,
                                         .combine = false,
                                         .move_src = false});
    }
    out.rounds.push_back(std::move(round));
  }
  return out;
}

Schedule sbt_reduce(const Subcube& sc, std::uint32_t root_rank,
                    const DimOrder& order, std::span<const Tag> tags) {
  check_order(sc, order);
  HCMM_CHECK(root_rank < sc.size(), "root rank out of range");
  const std::uint32_t d = sc.dim();
  Schedule out;
  out.rounds.reserve(d);
  const std::vector<Tag> tag_vec(tags.begin(), tags.end());
  for (std::uint32_t r = d; r-- > 0;) {
    Round round;
    round.transfers.reserve(1u << r);
    for (std::uint32_t s = 0; s < (1u << r); ++s) {
      const std::uint32_t rel = spread(s, order, r);
      const std::uint32_t to = root_rank ^ rel;
      const std::uint32_t from = to ^ (1u << order[r]);
      round.transfers.push_back(Transfer{.src = sc.node_at(from),
                                         .dst = sc.node_at(to),
                                         .tags = tag_vec,
                                         .combine = true,
                                         .move_src = true});
    }
    out.rounds.push_back(std::move(round));
  }
  return out;
}

Schedule rh_scatter(const Subcube& sc, std::uint32_t root_rank,
                    const DimOrder& order,
                    std::span<const std::vector<Tag>> tags_by_rank) {
  check_order(sc, order);
  const std::uint32_t d = sc.dim();
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "scatter: need one tag list per rank");
  Schedule out;
  out.rounds.reserve(d);
  for (std::uint32_t t = 0; t < d; ++t) {
    const std::uint32_t r = d - 1 - t;  // dimension being split this round
    Round round;
    round.transfers.reserve(1u << t);
    for (std::uint32_t s = 0; s < (1u << t); ++s) {
      // Processed (higher) dims: order[r+1..d-1].
      std::uint32_t rel_base = 0;
      for (std::uint32_t b = 0; b < t; ++b) {
        if (bit_of(s, b) != 0) rel_base |= (1u << order[r + 1 + b]);
      }
      const std::uint32_t from = root_rank ^ rel_base;
      const std::uint32_t to = from ^ (1u << order[r]);
      Transfer tr{.src = sc.node_at(from),
                  .dst = sc.node_at(to),
                  .tags = {},
                  .combine = false,
                  .move_src = true};
      for (std::uint32_t low = 0; low < (1u << r); ++low) {
        const std::uint32_t rel_dest =
            rel_base ^ (1u << order[r]) ^ spread(low, order, r);
        const std::uint32_t dest = root_rank ^ rel_dest;
        const auto& dest_tags = tags_by_rank[dest];
        tr.tags.insert(tr.tags.end(), dest_tags.begin(), dest_tags.end());
      }
      if (!tr.tags.empty()) round.transfers.push_back(std::move(tr));
    }
    if (!round.empty()) out.rounds.push_back(std::move(round));
  }
  return out;
}

Schedule bin_gather(const Subcube& sc, std::uint32_t root_rank,
                    const DimOrder& order,
                    std::span<const std::vector<Tag>> tags_by_rank) {
  check_order(sc, order);
  const std::uint32_t d = sc.dim();
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "gather: need one tag list per rank");
  Schedule out;
  out.rounds.reserve(d);
  for (std::uint32_t t = 0; t < d; ++t) {
    Round round;
    for (std::uint32_t s = 0; s < (1u << (d - 1 - t)); ++s) {
      // Unprocessed (higher) dims: order[t+1..d-1].
      std::uint32_t rel_high = 0;
      for (std::uint32_t b = 0; b < d - 1 - t; ++b) {
        if (bit_of(s, b) != 0) rel_high |= (1u << order[t + 1 + b]);
      }
      const std::uint32_t from_rel = rel_high | (1u << order[t]);
      Transfer tr{.src = sc.node_at(root_rank ^ from_rel),
                  .dst = sc.node_at(root_rank ^ rel_high),
                  .tags = {},
                  .combine = false,
                  .move_src = true};
      // The sender holds the items of every rank in from_rel + processed span.
      for (std::uint32_t low = 0; low < (1u << t); ++low) {
        const std::uint32_t holder =
            root_rank ^ from_rel ^ spread(low, order, t);
        const auto& held = tags_by_rank[holder];
        tr.tags.insert(tr.tags.end(), held.begin(), held.end());
      }
      if (!tr.tags.empty()) round.transfers.push_back(std::move(tr));
    }
    if (!round.empty()) out.rounds.push_back(std::move(round));
  }
  return out;
}

Schedule rd_allgather(const Subcube& sc, const DimOrder& order,
                      std::span<const std::vector<Tag>> tags_by_rank) {
  check_order(sc, order);
  const std::uint32_t d = sc.dim();
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "allgather: need one tag list per rank");
  Schedule out;
  out.rounds.reserve(d);
  for (std::uint32_t r = 0; r < d; ++r) {
    Round round;
    round.transfers.reserve(sc.size());
    for (std::uint32_t x = 0; x < sc.size(); ++x) {
      Transfer tr{.src = sc.node_at(x),
                  .dst = sc.node_at(x ^ (1u << order[r])),
                  .tags = {},
                  .combine = false,
                  .move_src = false};
      for (std::uint32_t low = 0; low < (1u << r); ++low) {
        const std::uint32_t held = x ^ spread(low, order, r);
        const auto& tags = tags_by_rank[held];
        tr.tags.insert(tr.tags.end(), tags.begin(), tags.end());
      }
      if (!tr.tags.empty()) round.transfers.push_back(std::move(tr));
    }
    if (!round.empty()) out.rounds.push_back(std::move(round));
  }
  return out;
}

Schedule rh_reduce_scatter(const Subcube& sc, const DimOrder& order,
                           std::span<const std::vector<Tag>> tags_by_rank) {
  check_order(sc, order);
  const std::uint32_t d = sc.dim();
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "reduce_scatter: need one tag list per rank");
  Schedule out;
  out.rounds.reserve(d);
  for (std::uint32_t t = 0; t < d; ++t) {
    const std::uint32_t r = d - 1 - t;
    // Mask of already-processed dims (order[r+1..d-1]).
    std::uint32_t processed = 0;
    for (std::uint32_t b = r + 1; b < d; ++b) processed |= (1u << order[b]);
    Round round;
    round.transfers.reserve(sc.size());
    for (std::uint32_t x = 0; x < sc.size(); ++x) {
      const std::uint32_t partner = x ^ (1u << order[r]);
      Transfer tr{.src = sc.node_at(x),
                  .dst = sc.node_at(partner),
                  .tags = {},
                  .combine = true,
                  .move_src = true};
      for (std::uint32_t low = 0; low < (1u << r); ++low) {
        // Destination ranks on the partner's side that are still live at x.
        const std::uint32_t dest = (x & processed) |
                                   (partner & (1u << order[r])) |
                                   spread(low, order, r);
        const auto& tags = tags_by_rank[dest];
        tr.tags.insert(tr.tags.end(), tags.begin(), tags.end());
      }
      if (!tr.tags.empty()) round.transfers.push_back(std::move(tr));
    }
    if (!round.empty()) out.rounds.push_back(std::move(round));
  }
  return out;
}

Schedule aapc(const Subcube& sc, const DimOrder& order,
              const std::function<std::vector<Tag>(std::uint32_t,
                                                   std::uint32_t)>& tag_fn) {
  check_order(sc, order);
  const std::uint32_t d = sc.dim();
  const std::uint32_t n = sc.size();
  Schedule out;
  out.rounds.reserve(d);
  std::uint32_t processed = 0;
  for (std::uint32_t r = 0; r < d; ++r) {
    const std::uint32_t bit = 1u << order[r];
    // Group crossing items by their (from -> to) link.
    std::vector<Transfer> transfers;
    for (std::uint32_t from = 0; from < n; ++from) {
      Transfer tr{.src = sc.node_at(from),
                  .dst = sc.node_at(from ^ bit),
                  .tags = {},
                  .combine = false,
                  .move_src = true};
      // Items (s, dest) located at `from` before this round:
      // from = (s & ~processed) | (dest & processed); they cross iff
      // s and dest differ on `bit`, i.e. dest's bit != from's bit.
      for (std::uint32_t s = 0; s < n; ++s) {
        if ((s & ~processed) != (from & ~processed)) continue;
        for (std::uint32_t dest = 0; dest < n; ++dest) {
          if ((dest & processed) != (from & processed)) continue;
          if (((dest ^ from) & bit) == 0) continue;
          auto tags = tag_fn(s, dest);
          tr.tags.insert(tr.tags.end(), tags.begin(), tags.end());
        }
      }
      if (!tr.tags.empty()) transfers.push_back(std::move(tr));
    }
    processed |= bit;
    if (!transfers.empty()) {
      out.rounds.push_back(Round{.transfers = std::move(transfers)});
    }
  }
  return out;
}

}  // namespace hcmm::coll
