#include "hcmm/coll/collectives.hpp"

#include <limits>

#include "hcmm/coll/builders.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::coll {
namespace {

bool multiport(const Machine& m, const Subcube& sc) {
  // A 1-dimensional "chain" has a single link per node, so the rotated-tree
  // machinery degenerates to the one-port schedule; skip the split overhead.
  return m.port() == PortModel::kMultiPort && sc.dim() >= 2;
}

// The paper's Table 2 "conditions" column in action: full multi-port
// bandwidth needs every message to be at least log N words, else the
// chunks cannot keep all links busy and the single-tree schedule is used
// ("multiple ports can be used only for the [other] phases", §4.2.2).
bool splittable(const Machine& m, const Subcube& sc, std::size_t min_words) {
  return multiport(m, sc) && min_words >= sc.dim();
}

std::vector<std::vector<Tag>> singleton_lists(std::span<const Tag> tags) {
  std::vector<std::vector<Tag>> out(tags.size());
  for (std::size_t i = 0; i < tags.size(); ++i) out[i] = {tags[i]};
  return out;
}

// Spread a bundle of items over d rotated-tree instances with *exactly*
// balanced loads: the concatenated bundle of T words is sliced at the
// boundaries T*j/d, items straddling a boundary are cut there
// (split_sizes), and each slice rides one instance.  Round costs follow the
// max instance load, so exact balance is what makes the measured multi-port
// bundle costs land on Table 1's (N-1)M/log N to the word.  Cut items'
// rejoin actions are appended for every node in @p join_nodes.
std::vector<std::vector<Tag>> spread_bundle(
    Machine& m, NodeId holder, std::span<const Tag> tags, std::uint32_t d,
    std::span<const NodeId> join_nodes, std::vector<JoinAction>& joins) {
  std::vector<std::vector<Tag>> per_instance(d);
  std::size_t total = 0;
  for (const Tag tag : tags) total += m.store().item_words(holder, tag);
  auto boundary = [&](std::uint32_t j) { return total * j / d; };
  // Instance owning stream position x: the last slice starting at or
  // before x.
  auto inst_of = [&](std::size_t x) {
    std::uint32_t j = d - 1;
    while (j > 0 && boundary(j) > x) --j;
    return j;
  };
  std::size_t off = 0;
  for (const Tag tag : tags) {
    const std::size_t words = m.store().item_words(holder, tag);
    if (words == 0) {
      per_instance[inst_of(off)].push_back(tag);
      continue;
    }
    // Cut the item at every slice boundary strictly inside it.
    std::vector<std::size_t> cut_sizes;
    std::size_t prev = off;
    for (std::uint32_t j = inst_of(off) + 1; j < d; ++j) {
      const std::size_t b = boundary(j);
      if (b <= prev) continue;
      if (b >= off + words) break;
      cut_sizes.push_back(b - prev);
      prev = b;
    }
    cut_sizes.push_back(off + words - prev);
    if (cut_sizes.size() == 1) {
      per_instance[inst_of(off)].push_back(tag);  // rides whole
      off += words;
      continue;
    }
    const auto parts = m.store().split_sizes(holder, tag, cut_sizes);
    std::size_t start = off;
    for (const Tag part : parts) {
      per_instance[inst_of(start)].push_back(part);
      start += m.store().item_words(holder, part);
    }
    for (const NodeId node : join_nodes) {
      joins.push_back(JoinAction{node, parts, tag});
    }
    off += words;
  }
  return per_instance;
}

}  // namespace

PreparedColl prep_bcast(Machine& m, const Subcube& sc, NodeId root, Tag tag) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  const std::uint32_t root_rank = sc.rank_of(root);
  if (!splittable(m, sc, m.store().item_words(root, tag))) {
    const Tag tags[] = {tag};
    out.schedule = sbt_bcast(sc, root_rank, identity_order(sc.dim()), tags);
    return out;
  }
  const std::uint32_t d = sc.dim();
  const std::vector<Tag> parts = m.store().split(root, tag, d);
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    const Tag tags[] = {parts[j]};
    insts.push_back(sbt_bcast(sc, root_rank, rotated_order(d, j), tags));
  }
  out.schedule = par(insts);
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    out.joins.push_back(JoinAction{sc.node_at(r), parts, tag});
  }
  return out;
}

PreparedColl prep_bcast_bundle(Machine& m, const Subcube& sc, NodeId root,
                               std::span<const Tag> tags) {
  PreparedColl out;
  if (sc.dim() == 0 || tags.empty()) return out;
  const std::uint32_t root_rank = sc.rank_of(root);
  if (!multiport(m, sc)) {
    out.schedule = sbt_bcast(sc, root_rank, identity_order(sc.dim()), tags);
    return out;
  }
  const std::uint32_t d = sc.dim();
  // Spread the bundle over the d rotated trees; large items are chunked,
  // small ones travel whole on the lightest tree.
  const std::vector<NodeId> members = sc.nodes();
  const auto per_instance = spread_bundle(m, root, tags, d, members, out.joins);
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    if (per_instance[j].empty()) continue;
    insts.push_back(sbt_bcast(sc, root_rank, rotated_order(d, j),
                              per_instance[j]));
  }
  out.schedule = par(insts);
  return out;
}

PreparedColl prep_allgather_bundles(
    Machine& m, const Subcube& sc,
    std::span<const std::vector<Tag>> tags_by_rank) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "prep_allgather_bundles: one bundle per rank required");
  if (!multiport(m, sc)) {
    out.schedule =
        rd_allgather(sc, identity_order(sc.dim()), tags_by_rank);
    return out;
  }
  const std::uint32_t d = sc.dim();
  // Spread every rank's bundle over the d rotated instances; chunked items
  // are rejoined on every member after the run.
  const std::vector<NodeId> members = sc.nodes();
  std::vector<std::vector<std::vector<Tag>>> per_rank(sc.size());
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    per_rank[r] = spread_bundle(m, sc.node_at(r), tags_by_rank[r], d, members,
                                out.joins);
  }
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    std::vector<std::vector<Tag>> lists(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) lists[r] = per_rank[r][j];
    insts.push_back(rd_allgather(sc, rotated_order(d, j), lists));
  }
  out.schedule = par(insts);
  return out;
}

PreparedColl prep_reduce(Machine& m, const Subcube& sc, NodeId root, Tag tag) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  const std::uint32_t root_rank = sc.rank_of(root);
  if (!splittable(m, sc, m.store().item_words(root, tag))) {
    const Tag tags[] = {tag};
    out.schedule = sbt_reduce(sc, root_rank, identity_order(sc.dim()), tags);
    return out;
  }
  const std::uint32_t d = sc.dim();
  std::vector<Tag> parts;
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    parts = m.store().split(sc.node_at(r), tag, d);  // same derived tags everywhere
  }
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    const Tag tags[] = {parts[j]};
    insts.push_back(sbt_reduce(sc, root_rank, rotated_order(d, j), tags));
  }
  out.schedule = par(insts);
  out.joins.push_back(JoinAction{root, parts, tag});
  return out;
}

PreparedColl prep_scatter(Machine& m, const Subcube& sc, NodeId root,
                          std::span<const Tag> tags_by_rank) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "prep_scatter: one tag per rank required");
  const std::uint32_t root_rank = sc.rank_of(root);
  std::size_t min_words = std::numeric_limits<std::size_t>::max();
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    if (r == root_rank) continue;
    min_words = std::min(min_words, m.store().item_words(root, tags_by_rank[r]));
  }
  if (!splittable(m, sc, min_words)) {
    auto lists = singleton_lists(tags_by_rank);
    out.schedule = rh_scatter(sc, root_rank, identity_order(sc.dim()), lists);
    return out;
  }
  const std::uint32_t d = sc.dim();
  // parts_of[r][j]: chunk j of the item destined to rank r.
  std::vector<std::vector<Tag>> parts_of(sc.size());
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    if (r == root_rank) continue;  // root's own item never moves
    parts_of[r] = m.store().split(root, tags_by_rank[r], d);
  }
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    std::vector<std::vector<Tag>> lists(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      // Rotate which instance carries each rank's (unevenly sized) chunks
      // so the big remainders average out across instances.
      if (r != root_rank) lists[r] = {parts_of[r][(j + r) % d]};
    }
    insts.push_back(rh_scatter(sc, root_rank, rotated_order(d, j), lists));
  }
  out.schedule = par(insts);
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    if (r == root_rank) continue;
    out.joins.push_back(JoinAction{sc.node_at(r), parts_of[r], tags_by_rank[r]});
  }
  return out;
}

PreparedColl prep_gather(Machine& m, const Subcube& sc, NodeId root,
                         std::span<const Tag> tags_by_rank) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "prep_gather: one tag per rank required");
  const std::uint32_t root_rank = sc.rank_of(root);
  std::size_t min_words = std::numeric_limits<std::size_t>::max();
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    if (r == root_rank) continue;
    min_words = std::min(min_words,
                         m.store().item_words(sc.node_at(r), tags_by_rank[r]));
  }
  if (!splittable(m, sc, min_words)) {
    auto lists = singleton_lists(tags_by_rank);
    out.schedule = bin_gather(sc, root_rank, identity_order(sc.dim()), lists);
    return out;
  }
  const std::uint32_t d = sc.dim();
  std::vector<std::vector<Tag>> parts_of(sc.size());
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    if (r == root_rank) continue;
    parts_of[r] = m.store().split(sc.node_at(r), tags_by_rank[r], d);
  }
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    std::vector<std::vector<Tag>> lists(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      if (r != root_rank) lists[r] = {parts_of[r][(j + r) % d]};
    }
    insts.push_back(bin_gather(sc, root_rank, rotated_order(d, j), lists));
  }
  out.schedule = par(insts);
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    if (r == root_rank) continue;
    out.joins.push_back(JoinAction{root, parts_of[r], tags_by_rank[r]});
  }
  return out;
}

PreparedColl prep_allgather(Machine& m, const Subcube& sc,
                            std::span<const Tag> tags_by_rank) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "prep_allgather: one tag per rank required");
  std::size_t min_words = std::numeric_limits<std::size_t>::max();
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    min_words = std::min(min_words,
                         m.store().item_words(sc.node_at(r), tags_by_rank[r]));
  }
  if (!splittable(m, sc, min_words)) {
    auto lists = singleton_lists(tags_by_rank);
    out.schedule = rd_allgather(sc, identity_order(sc.dim()), lists);
    return out;
  }
  const std::uint32_t d = sc.dim();
  std::vector<std::vector<Tag>> parts_of(sc.size());
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    parts_of[r] = m.store().split(sc.node_at(r), tags_by_rank[r], d);
  }
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    std::vector<std::vector<Tag>> lists(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      lists[r] = {parts_of[r][(j + r) % d]};
    }
    insts.push_back(rd_allgather(sc, rotated_order(d, j), lists));
  }
  out.schedule = par(insts);
  for (std::uint32_t node_r = 0; node_r < sc.size(); ++node_r) {
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      out.joins.push_back(
          JoinAction{sc.node_at(node_r), parts_of[r], tags_by_rank[r]});
    }
  }
  return out;
}

PreparedColl prep_reduce_scatter(Machine& m, const Subcube& sc,
                                 std::span<const Tag> tags_by_rank) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  HCMM_CHECK(tags_by_rank.size() == sc.size(),
             "prep_reduce_scatter: one tag per rank required");
  std::size_t min_words = std::numeric_limits<std::size_t>::max();
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    min_words = std::min(min_words,
                         m.store().item_words(sc.node_at(0), tags_by_rank[r]));
  }
  if (!splittable(m, sc, min_words)) {
    auto lists = singleton_lists(tags_by_rank);
    out.schedule = rh_reduce_scatter(sc, identity_order(sc.dim()), lists);
    return out;
  }
  const std::uint32_t d = sc.dim();
  std::vector<std::vector<Tag>> parts_of(sc.size());
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    for (std::uint32_t node_r = 0; node_r < sc.size(); ++node_r) {
      parts_of[r] = m.store().split(sc.node_at(node_r), tags_by_rank[r], d);
    }
  }
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    std::vector<std::vector<Tag>> lists(sc.size());
    for (std::uint32_t r = 0; r < sc.size(); ++r) {
      lists[r] = {parts_of[r][(j + r) % d]};
    }
    insts.push_back(rh_reduce_scatter(sc, rotated_order(d, j), lists));
  }
  out.schedule = par(insts);
  for (std::uint32_t r = 0; r < sc.size(); ++r) {
    out.joins.push_back(JoinAction{sc.node_at(r), parts_of[r], tags_by_rank[r]});
  }
  return out;
}

PreparedColl prep_alltoall(Machine& m, const Subcube& sc,
                           std::span<const Tag> tags_flat) {
  PreparedColl out;
  if (sc.dim() == 0) return out;
  const std::uint32_t n = sc.size();
  HCMM_CHECK(tags_flat.size() == static_cast<std::size_t>(n) * n,
             "prep_alltoall: need N*N tag entries");
  std::size_t min_words = std::numeric_limits<std::size_t>::max();
  for (std::uint32_t s2 = 0; s2 < n; ++s2) {
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      const Tag t = tags_flat[static_cast<std::size_t>(s2) * n + dst];
      if (t == 0 || s2 == dst) continue;
      min_words = std::min(min_words, m.store().item_words(sc.node_at(s2), t));
    }
  }
  if (!splittable(m, sc, min_words)) {
    auto tag_fn = [&tags_flat, n](std::uint32_t s,
                                  std::uint32_t dst) -> std::vector<Tag> {
      const Tag t = tags_flat[static_cast<std::size_t>(s) * n + dst];
      if (t == 0 || s == dst) return {};
      return {t};
    };
    out.schedule = aapc(sc, identity_order(sc.dim()), tag_fn);
    return out;
  }
  const std::uint32_t d = sc.dim();
  // parts[s * n + dst] = chunk tags of item (s, dst).
  std::vector<std::vector<Tag>> parts(static_cast<std::size_t>(n) * n);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      const Tag t = tags_flat[static_cast<std::size_t>(s) * n + dst];
      if (t == 0 || s == dst) continue;
      parts[static_cast<std::size_t>(s) * n + dst] =
          m.store().split(sc.node_at(s), t, d);
    }
  }
  std::vector<Schedule> insts;
  insts.reserve(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    auto tag_fn = [&parts, n, j, d](std::uint32_t s,
                                    std::uint32_t dst) -> std::vector<Tag> {
      const auto& ps = parts[static_cast<std::size_t>(s) * n + dst];
      if (ps.empty()) return {};
      // Rotate chunk assignment per (src, dst) so uneven chunk remainders
      // spread evenly over the d concurrent instances.
      return {ps[(j + s + dst) % d]};
    };
    insts.push_back(aapc(sc, rotated_order(d, j), tag_fn));
  }
  out.schedule = par(insts);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      const auto& ps = parts[static_cast<std::size_t>(s) * n + dst];
      if (ps.empty()) continue;
      out.joins.push_back(JoinAction{
          sc.node_at(dst), ps, tags_flat[static_cast<std::size_t>(s) * n + dst]});
    }
  }
  return out;
}

void run_prepared(Machine& m, std::span<PreparedColl> colls) {
  std::vector<Schedule> schedules;
  schedules.reserve(colls.size());
  for (const auto& c : colls) schedules.push_back(c.schedule);
  // Checked merge: the prepared collectives were built independently, so
  // their per-round link disjointness is a claim the static port-legality
  // pass verifies here, naming the offending round and link on failure.
  m.run(par(schedules, m.cube(), m.port()));
  for (const auto& c : colls) {
    for (const auto& j : c.joins) m.store().join(j.node, j.parts, j.out);
  }
}

void run_prepared(Machine& m, PreparedColl&& coll) {
  PreparedColl colls[] = {std::move(coll)};
  run_prepared(m, colls);
}

void op_bcast(Machine& m, const Subcube& sc, NodeId root, Tag tag) {
  run_prepared(m, prep_bcast(m, sc, root, tag));
}
void op_reduce(Machine& m, const Subcube& sc, NodeId root, Tag tag) {
  run_prepared(m, prep_reduce(m, sc, root, tag));
}
void op_scatter(Machine& m, const Subcube& sc, NodeId root,
                std::span<const Tag> tags_by_rank) {
  run_prepared(m, prep_scatter(m, sc, root, tags_by_rank));
}
void op_gather(Machine& m, const Subcube& sc, NodeId root,
               std::span<const Tag> tags_by_rank) {
  run_prepared(m, prep_gather(m, sc, root, tags_by_rank));
}
void op_allgather(Machine& m, const Subcube& sc,
                  std::span<const Tag> tags_by_rank) {
  run_prepared(m, prep_allgather(m, sc, tags_by_rank));
}
void op_reduce_scatter(Machine& m, const Subcube& sc,
                       std::span<const Tag> tags_by_rank) {
  run_prepared(m, prep_reduce_scatter(m, sc, tags_by_rank));
}
void op_alltoall(Machine& m, const Subcube& sc,
                 std::span<const Tag> tags_flat) {
  run_prepared(m, prep_alltoall(m, sc, tags_flat));
}

}  // namespace hcmm::coll
