#include "hcmm/coll/ring.hpp"

#include "hcmm/support/check.hpp"
#include "hcmm/support/gray.hpp"

namespace hcmm::coll {

NodeId ring_node(const Subcube& sc, std::uint32_t c) {
  HCMM_CHECK(c < sc.size(), "ring position " << c << " out of range");
  return sc.node_at(gray_encode(c));
}

std::uint32_t ring_position(const Subcube& sc, NodeId node) {
  return gray_decode(sc.rank_of(node));
}

Schedule ring_shift_unit(const Subcube& sc,
                         std::span<const std::vector<Tag>> tags_by_pos,
                         int direction) {
  HCMM_CHECK(direction == 1 || direction == -1,
             "ring_shift_unit: direction must be +/-1");
  HCMM_CHECK(tags_by_pos.size() == sc.size(),
             "ring_shift_unit: one tag list per position required");
  Schedule out;
  if (sc.dim() == 0) return out;
  const std::uint32_t q = sc.size();
  Round round;
  round.transfers.reserve(q);
  for (std::uint32_t c = 0; c < q; ++c) {
    if (tags_by_pos[c].empty()) continue;
    const std::uint32_t to = direction == 1 ? (c + 1) % q : (c + q - 1) % q;
    round.transfers.push_back(Transfer{.src = ring_node(sc, c),
                                       .dst = ring_node(sc, to),
                                       .tags = tags_by_pos[c],
                                       .combine = false,
                                       .move_src = true});
  }
  if (!round.empty()) out.rounds.push_back(std::move(round));
  return out;
}

}  // namespace hcmm::coll
