#include "hcmm/coll/route.hpp"

#include <limits>
#include <unordered_set>

#include "hcmm/support/check.hpp"

namespace hcmm::coll {
namespace {

// One in-flight sub-message: travels its dimension order from front to back.
struct Part {
  NodeId pos;
  NodeId dst;
  std::vector<std::uint32_t> order;  // global dimensions, rotated
  std::uint32_t next = 0;
  std::vector<Tag> tags;
};

Schedule pack_rounds(std::vector<Part> parts) {
  Schedule out;
  std::erase_if(parts, [](const Part& p) { return p.pos == p.dst; });
  while (!parts.empty()) {
    Round round;
    std::unordered_set<std::uint64_t> out_busy;
    std::unordered_set<std::uint64_t> in_busy;
    for (auto& p : parts) {
      const std::uint32_t dim = p.order[p.next];
      const NodeId next_pos = flip_bit(p.pos, dim);
      const std::uint64_t ok = (static_cast<std::uint64_t>(p.pos) << 8) | dim;
      const std::uint64_t ik = (static_cast<std::uint64_t>(next_pos) << 8) | dim;
      if (out_busy.contains(ok) || in_busy.contains(ik)) continue;
      out_busy.insert(ok);
      in_busy.insert(ik);
      round.transfers.push_back(Transfer{.src = p.pos,
                                         .dst = next_pos,
                                         .tags = p.tags,
                                         .combine = false,
                                         .move_src = true});
      p.pos = next_pos;
      ++p.next;
    }
    HCMM_CHECK(!round.empty(), "prep_route: no progress (internal error)");
    out.rounds.push_back(std::move(round));
    std::erase_if(parts, [](const Part& p) { return p.next == p.order.size(); });
  }
  return out;
}

}  // namespace

PreparedColl prep_route(Machine& m, std::span<const RouteRequest> reqs) {
  PreparedColl out;
  if (!m.routing_faults().empty()) {
    // Structural faults void the edge-disjointness that justifies the
    // rotated-order multi-path splitting below, so compile conservatively:
    // every message follows its fault-aware e-cube path whole.  The Machine
    // still repairs contraction remnants and transients at execution time.
    // routing_faults() (not the raw plan) so a checkpoint replay rebuilds
    // the prefix schedules exactly as originally measured.
    out.schedule =
        route_p2p_avoiding(m.cube(), m.port(), reqs, m.routing_faults());
    return out;
  }
  if (m.port() == PortModel::kOnePort) {
    out.schedule = route_p2p(m.cube(), m.port(), reqs);
    return out;
  }
  // All messages split into the same number of chunks, H = the longest hop
  // count in the phase.  A message with h < H hops sends its H chunks over
  // its h rotated paths, ceil(H/h) per path, pipelined over the rounds the
  // longer messages need anyway — so every round carries M/H words per link
  // and the phase costs H*t_s + t_w*M, the multi-port point-to-point cost
  // the paper charges (e.g. 3DD phase 1).
  std::uint32_t max_h = 0;
  for (const RouteRequest& r : reqs) {
    HCMM_CHECK(m.cube().contains(r.src) && m.cube().contains(r.dst),
               "prep_route: endpoint out of range");
    max_h = std::max(max_h, popcount32(r.src ^ r.dst));
  }
  std::vector<Part> parts;
  for (const RouteRequest& r : reqs) {
    if (r.src == r.dst) continue;
    HCMM_CHECK(!r.tags.empty(), "prep_route: request with no tags");
    std::vector<std::uint32_t> dims;
    for (std::uint32_t b = 0; b < m.cube().dim(); ++b) {
      if (bit_of(r.src ^ r.dst, b) != 0) dims.push_back(b);
    }
    const auto h = static_cast<std::uint32_t>(dims.size());
    std::size_t min_words = std::numeric_limits<std::size_t>::max();
    for (const Tag t : r.tags) {
      min_words = std::min(min_words, m.store().item_words(r.src, t));
    }
    if (max_h == 1 || min_words < max_h) {
      // Too small to keep the parallel paths busy: ship whole.
      parts.push_back(Part{r.src, r.dst, dims, 0, r.tags});
      continue;
    }
    std::vector<std::vector<Tag>> chunk_tags(r.tags.size());
    for (std::size_t t = 0; t < r.tags.size(); ++t) {
      chunk_tags[t] = m.store().split(r.src, r.tags[t], max_h);
      out.joins.push_back(JoinAction{r.dst, chunk_tags[t], r.tags[t]});
    }
    for (std::uint32_t i = 0; i < max_h; ++i) {
      std::vector<std::uint32_t> order(h);
      for (std::uint32_t s = 0; s < h; ++s) order[s] = dims[(i + s) % h];
      std::vector<Tag> tags;
      tags.reserve(r.tags.size());
      for (const auto& ct : chunk_tags) tags.push_back(ct[i]);
      parts.push_back(Part{r.src, r.dst, std::move(order), 0, std::move(tags)});
    }
  }
  out.schedule = pack_rounds(std::move(parts));
  return out;
}

void op_route(Machine& m, std::span<const RouteRequest> reqs) {
  run_prepared(m, prep_route(m, reqs));
}

}  // namespace hcmm::coll
