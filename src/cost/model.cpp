#include "hcmm/cost/model.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "hcmm/support/check.hpp"

namespace hcmm::cost {
namespace {

using algo::AlgoId;

double lg(double x) { return std::log2(x); }

}  // namespace

CommCost table2(AlgoId id, PortModel port, double n, double p) {
  HCMM_CHECK(n >= 1 && p >= 1, "table2: n and p must be >= 1");
  if (p <= 1) return {0.0, 0.0};
  const double n2 = n * n;
  const double sp = std::sqrt(p);         // sqrt(p)
  const double cp = std::cbrt(p);         // cbrt(p)
  const double p23 = cp * cp;             // p^(2/3)
  const double logp = lg(p);
  const bool multi = port == PortModel::kMultiPort;

  switch (id) {
    case AlgoId::kSimple:
      if (multi) {
        return {0.5 * logp, n2 / (sp * lg(sp)) * (1.0 - 1.0 / sp)};
      }
      return {logp, 2.0 * n2 / sp * (1.0 - 1.0 / sp)};

    case AlgoId::kCannon:
      if (multi) {
        return {sp - 1.0 + 0.5 * logp,
                n2 / sp * (1.0 - 1.0 / sp + logp / (2.0 * sp))};
      }
      return {2.0 * (sp - 1.0) + logp,
              n2 / sp * (2.0 - 2.0 / sp + logp / sp)};

    case AlgoId::kHJE:
      if (multi) {
        return {sp - 1.0 + 0.5 * logp,
                n2 / sp * (2.0 / logp - 2.0 / (sp * logp) + logp / (2.0 * sp))};
      }
      return table2(AlgoId::kCannon, port, n, p);  // paper lists "-"

    case AlgoId::kBerntsen:
      if (multi) {
        return {cp - 1.0 + (2.0 / 3.0) * logp,
                n2 / p23 * ((1.0 + 3.0 / logp) * (1.0 - 1.0 / cp) +
                            logp / (3.0 * cp))};
      }
      return {2.0 * (cp - 1.0) + logp,
              n2 / p23 * (3.0 * (1.0 - 1.0 / cp) + 2.0 * logp / (3.0 * cp))};

    case AlgoId::kDNS:
      if (multi) return {(4.0 / 3.0) * logp, 4.0 * n2 / p23};
      return {(5.0 / 3.0) * logp, n2 / p23 * (5.0 / 3.0) * logp};

    case AlgoId::kDiag2D: {
      // Derived (not tabulated in the paper): scatter + broadcast along
      // columns, reduce along rows, all three sequential; messages of
      // n^2/sqrt(p).  Multi-port divides only the data terms that Table 1
      // improves: scatter by log sqrt(p); the broadcast and reduction of
      // whole n^2/sqrt(p) groups become t_w * M.
      const double m = n2 / sp;
      if (multi) {
        const double lsp = std::max(1.0, lg(sp));
        return {1.5 * logp, m * (1.0 - 1.0 / sp) / lsp + 2.0 * m};
      }
      return {1.5 * logp, m * (1.0 - 1.0 / sp) + 2.0 * m * lg(sp)};
    }

    case AlgoId::kDiag3D:
      if (multi) return {logp, 3.0 * n2 / p23};
      return {(4.0 / 3.0) * logp, n2 / p23 * (4.0 / 3.0) * logp};

    case AlgoId::kAllTrans:
      if (multi) {
        return {logp, n2 / p23 * ((6.0 / logp) * (1.0 - 1.0 / cp) + 1.0)};
      }
      return {(4.0 / 3.0) * logp,
              n2 / p23 * (3.0 * (1.0 - 1.0 / cp) + logp / 3.0)};

    case AlgoId::kAll3DRect: {
      // Derived for the extension (not tabulated in the paper): qx = qy =
      // q1 = p^{1/4}, qz = sqrt(p), square blocks of m = n^2/p words.
      // Phases: gather along y ((q1-1)m), allgather A along x ((q1-1)m),
      // allgather of the sparse B bundles along z — q1 contributors of
      // q1*m each, costing q1*m*(lg q1 + q1 - 1) with a contributor-aware
      // dimension order — and reduce-scatter along y ((q1-1)m).  The
      // one-port terms are measured exactly; the multi-port z-term is the
      // ideal rotated-tree bound, which rank clustering of the sparse
      // contributors misses by up to ~1.5x (see EXPERIMENTS.md).
      const double q1 = std::sqrt(sp);
      const double m = n2 / p;
      const double lq1 = std::max(1.0, lg(q1));
      const double lqz = std::max(1.0, lg(sp));
      const double zterm = q1 * m * (lg(q1) + q1 - 1.0);
      if (multi) {
        return {2.0 * lg(q1) + lqz,
                2.0 * (q1 - 1.0) * m / lq1 +
                    std::max((q1 - 1.0) * m / lq1, zterm / lqz)};
      }
      return {3.0 * lg(q1) + lg(sp), 3.0 * (q1 - 1.0) * m + zterm};
    }

    case AlgoId::kDNSCannon:
    case AlgoId::kDiag3DCannon: {
      // Derived for the §3.5 combinations with the canonical split
      // (largest sigma, p = sigma^3 rho^2): superblock movement costs the
      // base algorithm's pattern on messages of m = n^2/(sigma^2 rho^2)
      // per processor, plus an internal Cannon of rho x rho on the same
      // message size.  With rho = 1 these reduce to DNS / 3DD exactly.
      double a3 = std::cbrt(p);  // fallback when no exact split exists
      double rho = 1.0;
      const double lp = lg(p);
      for (int ai = static_cast<int>(lp / 3); ai >= 0; --ai) {
        const double rem = lp - 3 * ai;
        if (rem >= 0 && std::fmod(rem, 2.0) == 0.0) {
          a3 = std::exp2(ai);
          rho = std::exp2(rem / 2.0);
          break;
        }
      }
      // sigma = 1 means no supernode grid at all: the canonical split is a
      // pure rho x rho Cannon and the superblock-movement terms vanish.
      // (The one-port forms get this for free — their movement terms scale
      // with lg sigma — but the multi-port bandwidth term is a constant
      // per-phase volume that must be dropped explicitly.)
      if (a3 == 1.0) return table2(AlgoId::kCannon, port, n, p);
      const double m = n2 / (a3 * a3 * rho * rho);
      const double ls = lg(a3);
      const double lr = std::max(0.0, lg(rho));
      const double move = id == AlgoId::kDNSCannon ? 5.0 : 4.0;  // phases 1-3
      if (multi) {
        const double move_m = id == AlgoId::kDNSCannon ? 4.0 : 3.0;
        return {move_m * ls + lr + (rho - 1.0),
                m * (move_m + lr + (rho - 1.0))};
      }
      return {move * ls + 2.0 * lr + 2.0 * (rho - 1.0),
              m * (move * ls + 2.0 * lr + 2.0 * (rho - 1.0))};
    }

    case AlgoId::kAll3D:
      if (multi) {
        // Two regimes: with large enough messages phase 1 also drives all
        // ports (first Table 2 row); otherwise only phases 2 and 3 do.
        const double phase1_msg = n2 / (p * cp);
        const double base = (6.0 / logp) * (1.0 - 1.0 / cp);
        if (phase1_msg >= lg(cp)) {
          return {logp, n2 / p23 * (base + 1.0 / (2.0 * cp))};
        }
        return {logp, n2 / p23 * (base + logp / (6.0 * cp))};
      }
      return {(4.0 / 3.0) * logp,
              n2 / p23 * (3.0 * (1.0 - 1.0 / cp) + logp / (6.0 * cp))};
  }
  HCMM_CHECK(false, "table2: unknown algorithm");
  return {};
}

bool within_processor_bound(AlgoId id, double n, double p) {
  switch (id) {
    case AlgoId::kSimple:
    case AlgoId::kCannon:
    case AlgoId::kHJE:
    case AlgoId::kDiag2D:
      return p <= n * n;
    case AlgoId::kBerntsen:
    case AlgoId::kAllTrans:
    case AlgoId::kAll3D:
      return p <= std::pow(n, 1.5);
    case AlgoId::kDNS:
    case AlgoId::kDiag3D:
      return p <= n * n * n;
    case AlgoId::kAll3DRect:
    case AlgoId::kDNSCannon:
    case AlgoId::kDiag3DCannon:
      return p <= n * n;
  }
  return false;
}

bool meets_port_condition(AlgoId id, PortModel port, double n, double p) {
  if (port == PortModel::kOnePort) {
    // One-port imposes no message-size condition beyond p <= n^k, except
    // HJE which simply is not defined (we treat it as Cannon).
    return true;
  }
  const double n2 = n * n;
  const double cp = std::cbrt(p);
  const double sp = std::sqrt(p);
  switch (id) {
    case AlgoId::kSimple:
      return n2 >= p * lg(sp);
    case AlgoId::kCannon:
    case AlgoId::kDiag2D:
      return true;
    case AlgoId::kHJE:
      return n >= sp * lg(sp);
    case AlgoId::kBerntsen:
    case AlgoId::kAllTrans:
      return n2 >= p * lg(cp);
    case AlgoId::kDNS:
    case AlgoId::kDiag3D:
      return n2 >= cp * cp * lg(cp);
    case AlgoId::kAll3D:
      return n2 >= p * lg(cp);  // weaker second-row condition
    case AlgoId::kAll3DRect:
      return n2 >= p * lg(sp);
    case AlgoId::kDNSCannon:
    case AlgoId::kDiag3DCannon:
      return true;
  }
  return false;
}

bool applicable(AlgoId id, PortModel port, double n, double p) {
  return within_processor_bound(id, n, p) &&
         meets_port_condition(id, port, n, p);
}

double space_words(AlgoId id, double n, double p) {
  const double n2 = n * n;
  switch (id) {
    case AlgoId::kSimple:
      return 2.0 * n2 * std::sqrt(p);
    case AlgoId::kCannon:
    case AlgoId::kHJE:
      return 3.0 * n2;
    case AlgoId::kBerntsen:
      return 2.0 * n2 + n2 * std::cbrt(p);
    case AlgoId::kDNS:
    case AlgoId::kDiag3D:
    case AlgoId::kAllTrans:
    case AlgoId::kAll3D:
      return 2.0 * n2 * std::cbrt(p);
    case AlgoId::kDiag2D:
      return 2.0 * n2 + n2 * std::sqrt(p) / std::sqrt(p);  // ~3 n^2
    case AlgoId::kAll3DRect:
      // The paper's stated figure for the extension.
      return n2 * std::sqrt(p) + n2 * std::sqrt(std::sqrt(p));
    case AlgoId::kDNSCannon:
    case AlgoId::kDiag3DCannon: {
      // 2 n^2 sigma with the canonical split.
      const double lp = lg(p);
      for (int ai = static_cast<int>(lp / 3); ai >= 0; --ai) {
        if (std::fmod(lp - 3 * ai, 2.0) == 0.0) {
          return 2.0 * n2 * std::exp2(ai);
        }
      }
      return 2.0 * n2 * std::cbrt(p);
    }
  }
  return 0.0;
}

std::vector<algo::AlgoId> contenders(PortModel port) {
  if (port == PortModel::kMultiPort) {
    return {AlgoId::kCannon, AlgoId::kHJE, AlgoId::kBerntsen, AlgoId::kDiag3D,
            AlgoId::kAll3D};
  }
  return {AlgoId::kCannon, AlgoId::kBerntsen, AlgoId::kDiag3D, AlgoId::kAll3D};
}

bool best_algorithm(PortModel port, double n, double p, const CostParams& cp,
                    std::span<const algo::AlgoId> candidates,
                    algo::AlgoId& best) {
  double best_time = std::numeric_limits<double>::infinity();
  bool found = false;
  for (const AlgoId id : candidates) {
    if (!applicable(id, port, n, p)) continue;
    const double t = table2(id, port, n, p).time(cp);
    if (t < best_time) {
      best_time = t;
      best = id;
      found = true;
    }
  }
  return found;
}

char map_letter(algo::AlgoId id) noexcept {
  switch (id) {
    case AlgoId::kSimple:   return 'S';
    case AlgoId::kCannon:   return 'C';
    case AlgoId::kHJE:      return 'H';
    case AlgoId::kBerntsen: return 'B';
    case AlgoId::kDNS:      return 'N';
    case AlgoId::kDiag2D:   return '2';
    case AlgoId::kDiag3D:   return 'D';
    case AlgoId::kAllTrans: return 'T';
    case AlgoId::kAll3D:    return 'A';
    case AlgoId::kAll3DRect: return 'R';
    case AlgoId::kDNSCannon: return 'n';
    case AlgoId::kDiag3DCannon: return 'd';
  }
  return '?';
}

std::string region_map(PortModel port, const CostParams& cp,
                       std::span<const algo::AlgoId> candidates,
                       double log2n_min, double log2n_max, double log2p_min,
                       double log2p_max, std::size_t cols, std::size_t rows) {
  HCMM_CHECK(cols >= 2 && rows >= 2, "region_map: grid too small");
  std::ostringstream os;
  for (std::size_t r = 0; r < rows; ++r) {
    const double log2p =
        log2p_max - (log2p_max - log2p_min) * static_cast<double>(r) /
                        static_cast<double>(rows - 1);
    os.width(6);
    os.precision(1);
    os << std::fixed << log2p << " |";
    for (std::size_t c = 0; c < cols; ++c) {
      const double log2n =
          log2n_min + (log2n_max - log2n_min) * static_cast<double>(c) /
                          static_cast<double>(cols - 1);
      algo::AlgoId best{};
      if (best_algorithm(port, std::exp2(log2n), std::exp2(log2p), cp,
                         candidates, best)) {
        os << map_letter(best);
      } else {
        os << '.';
      }
    }
    os << '\n';
  }
  os << "log2(p)" << std::string(cols > 10 ? cols - 10 : 0, ' ')
     << "  (x: log2 n in [" << log2n_min << ", " << log2n_max << "])\n";
  return os.str();
}

std::string region_csv(PortModel port, const CostParams& cp,
                       std::span<const algo::AlgoId> candidates,
                       double log2n_min, double log2n_max, double log2p_min,
                       double log2p_max, std::size_t cols, std::size_t rows) {
  HCMM_CHECK(cols >= 2 && rows >= 2, "region_csv: grid too small");
  std::ostringstream os;
  os << "port,ts,tw,log2n,log2p,winner,comm_time\n";
  for (std::size_t r = 0; r < rows; ++r) {
    const double log2p =
        log2p_min + (log2p_max - log2p_min) * static_cast<double>(r) /
                        static_cast<double>(rows - 1);
    for (std::size_t c = 0; c < cols; ++c) {
      const double log2n =
          log2n_min + (log2n_max - log2n_min) * static_cast<double>(c) /
                          static_cast<double>(cols - 1);
      const double n = std::exp2(log2n);
      const double p = std::exp2(log2p);
      algo::AlgoId best{};
      os << (port == PortModel::kOnePort ? "one" : "multi") << ',' << cp.ts
         << ',' << cp.tw << ',' << log2n << ',' << log2p << ',';
      if (best_algorithm(port, n, p, cp, candidates, best)) {
        os << algo::to_string(best) << ','
           << table2(best, port, n, p).time(cp);
      } else {
        os << "-,inf";
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace hcmm::cost
