#include "hcmm/cost/table1.hpp"

#include "hcmm/support/bits.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::cost {

const char* to_string(CollKind k) noexcept {
  switch (k) {
    case CollKind::kBcast:         return "bcast";
    case CollKind::kReduce:        return "reduce";
    case CollKind::kScatter:       return "scatter";
    case CollKind::kGather:        return "gather";
    case CollKind::kAllgather:     return "allgather";
    case CollKind::kReduceScatter: return "reduce-scatter";
    case CollKind::kAllToAll:      return "all-to-all";
  }
  return "?";
}

CommCost table1(CollKind kind, PortModel port, std::uint32_t n_nodes,
                double m_words) {
  HCMM_CHECK(is_pow2(n_nodes), "table1: N must be a power of two");
  const auto d = static_cast<double>(exact_log2(n_nodes));
  const auto n = static_cast<double>(n_nodes);
  if (d == 0) return {};  // a single node: every collective is a no-op
  CommCost c;
  c.a = d;
  switch (kind) {
    case CollKind::kBcast:
    case CollKind::kReduce:
      c.b = d * m_words;
      break;
    case CollKind::kScatter:
    case CollKind::kGather:
    case CollKind::kAllgather:
    case CollKind::kReduceScatter:
      c.b = (n - 1.0) * m_words;
      break;
    case CollKind::kAllToAll:
      c.b = d * n * m_words / 2.0;
      break;
  }
  // All log N ports drivable only from dimension 2 and messages of at least
  // log N words (the Table 2 "conditions" column); coll/collectives falls
  // back to the single-tree schedule below that, and so does the bound.
  if (port == PortModel::kMultiPort && d >= 2.0 && m_words >= d) c.b /= d;
  return c;
}

}  // namespace hcmm::cost
