#include "hcmm/fault/fuzz.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "hcmm/support/check.hpp"
#include "hcmm/support/prng.hpp"

namespace hcmm::fault {
namespace {

// ---------------------------------------------------------------------------
// Feature universe

/// Ladder rungs in escalation order.  "clean" sits outside the escalation
/// chain (a clean pass escalates to nothing), so transitions pair only the
/// six recovery rungs.
constexpr const char* kRungs[] = {
    "clean", "retry", "reroute", "contraction", "rollback", "restart", "abort",
};

/// Every located FaultKind a run can observe (kNone excluded).
constexpr FaultKind kKinds[] = {
    FaultKind::kDrop,           FaultKind::kCorrupt,
    FaultKind::kSpike,          FaultKind::kReroute,
    FaultKind::kNodeDeath,      FaultKind::kRetryExhausted,
    FaultKind::kUnroutable,     FaultKind::kHostless,
    FaultKind::kSilentCorrupt,  FaultKind::kMidRunDeath,
    FaultKind::kAbftUncorrectable, FaultKind::kDetourFault,
    FaultKind::kReplayDeath,    FaultKind::kCheckpointCorrupt,
    FaultKind::kBudgetExhausted,
};

[[nodiscard]] std::string rung_feature(const char* rung) {
  return std::string("rung:") + rung;
}

[[nodiscard]] std::string kind_feature(FaultKind k) {
  return std::string("kind:") + to_string(k);
}

[[nodiscard]] std::string esc_feature(const char* from, const char* to) {
  return std::string("esc:") + from + "->" + to;
}

/// Wire-layer fault kinds the socket transport's ARQ recovers from (kDelay
/// excluded: a delayed frame is indistinguishable from a slow wire and
/// exercises no dedicated recovery path).
constexpr const char* kWireFeatures[] = {
    "wire:drop", "wire:duplicate", "wire:reorder", "wire:flip",
    "wire:reconnect",
};

// ---------------------------------------------------------------------------
// Shared formatting helpers (reproducer spec)

[[nodiscard]] std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void spec_error(const std::string& token, const char* why) {
  throw std::invalid_argument("plan_from_spec: " + std::string(why) +
                              " in token \"" + token + "\"");
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& token,
                                      const std::string& text) {
  if (text.empty()) spec_error(token, "empty integer");
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    spec_error(token, "malformed integer");
  }
  return v;
}

[[nodiscard]] double parse_double(const std::string& token,
                                  const std::string& text) {
  if (text.empty()) spec_error(token, "empty number");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    spec_error(token, "malformed number");
  }
  return v;
}

[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Mutation helpers

/// A random link of @p cube.
[[nodiscard]] std::pair<NodeId, NodeId> random_link(Prng& rng,
                                                    const Hypercube& cube) {
  const auto a = static_cast<NodeId>(rng.next_below(cube.size()));
  const auto k = static_cast<std::uint32_t>(rng.next_below(cube.dim()));
  return {a, cube.neighbor(a, k)};
}

/// Add one connectivity-preserving link fault; false when 32 draws found
/// none (the plan keeps working without it).
bool add_connected_link(FaultPlan& plan, const Hypercube& cube, Prng& rng) {
  for (int tries = 0; tries < 32; ++tries) {
    const auto [a, b] = random_link(rng, cube);
    if (plan.set.link_failed(a, b)) continue;
    FaultSet with = plan.set;
    with.fail_link(a, b);
    if (!with.connected(cube)) continue;
    plan.set = std::move(with);
    return true;
  }
  return false;
}

/// Kill one node whose death keeps the live cube connected and hostable;
/// returns the victim, or no value when 32 draws found none.
[[nodiscard]] bool pick_safe_victim(const FaultPlan& plan,
                                    const Hypercube& cube, Prng& rng,
                                    NodeId& victim) {
  for (int tries = 0; tries < 32; ++tries) {
    const auto n = static_cast<NodeId>(rng.next_below(cube.size()));
    if (plan.set.node_dead(n)) continue;
    FaultSet with = plan.set;
    with.kill_node(n);
    if (!with.connected(cube)) continue;
    bool hostable = true;
    try {
      for (NodeId d : with.dead_nodes()) (void)with.host(cube, d);
    } catch (const FaultAbort&) {
      hostable = false;
    }
    if (!hostable) continue;
    victim = n;
    return true;
  }
  return false;
}

/// Make sure a plan whose transient model is live has a usable retry loop,
/// and a live wire model a seed of its own.
void ensure_retry_defaults(FaultPlan& plan, Prng& rng) {
  if (plan.wire.any() && plan.wire.seed == 0) {
    plan.wire.seed = rng.next_u64() | 1u;
  }
  if (!plan.transient.any()) return;
  if (plan.transient.seed == 0) plan.transient.seed = rng.next_u64() | 1u;
  if (plan.transient.backoff_base == 0.0) plan.transient.backoff_base = 0.25;
}

}  // namespace

// ---------------------------------------------------------------------------
// observed_features / CoverageMap

std::vector<std::string> observed_features(const RunObservation& obs) {
  bool rung[sizeof kRungs / sizeof kRungs[0]] = {};
  const bool recovered = obs.retries > 0 || obs.reroutes > 0 ||
                         obs.recoveries > 0 || obs.restarts > 0 ||
                         obs.contracted;
  rung[0] = obs.completed && !recovered && obs.event_kinds.empty();
  rung[1] = obs.retries > 0;
  rung[2] = obs.reroutes > 0;
  rung[3] = obs.contracted;
  rung[4] = obs.recoveries > 0;
  rung[5] = obs.restarts > 0;
  rung[6] = obs.abort_kind != FaultKind::kNone;

  std::vector<std::string> out;
  for (std::size_t i = 0; i < sizeof kRungs / sizeof kRungs[0]; ++i) {
    if (rung[i]) out.push_back(rung_feature(kRungs[i]));
  }
  // An escalation transition is two adjacent ladder rungs exercised by the
  // same run — the co-occurrence is what a second-order fault forces.
  for (std::size_t i = 1; i + 1 < sizeof kRungs / sizeof kRungs[0]; ++i) {
    if (rung[i] && rung[i + 1]) {
      out.push_back(esc_feature(kRungs[i], kRungs[i + 1]));
    }
  }
  std::set<FaultKind> kinds(obs.event_kinds.begin(), obs.event_kinds.end());
  if (obs.abort_kind != FaultKind::kNone) kinds.insert(obs.abort_kind);
  kinds.erase(FaultKind::kNone);
  for (FaultKind k : kinds) out.push_back(kind_feature(k));
  if (obs.wire_drops > 0) out.emplace_back("wire:drop");
  if (obs.wire_dups > 0) out.emplace_back("wire:duplicate");
  if (obs.wire_reorders > 0) out.emplace_back("wire:reorder");
  if (obs.wire_flips > 0) out.emplace_back("wire:flip");
  if (obs.wire_reconnects > 0) out.emplace_back("wire:reconnect");
  return out;
}

const std::vector<std::string>& CoverageMap::universe() {
  static const std::vector<std::string> u = [] {
    std::vector<std::string> v;
    for (const char* r : kRungs) v.push_back(rung_feature(r));
    for (std::size_t i = 1; i + 1 < sizeof kRungs / sizeof kRungs[0]; ++i) {
      v.push_back(esc_feature(kRungs[i], kRungs[i + 1]));
    }
    for (FaultKind k : kKinds) v.push_back(kind_feature(k));
    for (const char* w : kWireFeatures) v.emplace_back(w);
    return v;
  }();
  return u;
}

bool CoverageMap::record(const std::string& feature) {
  return seen_.insert(feature).second;
}

std::size_t CoverageMap::record_all(const std::vector<std::string>& features) {
  std::size_t novel = 0;
  for (const auto& f : features) novel += record(f) ? 1u : 0u;
  return novel;
}

double CoverageMap::ratio() const {
  const auto& u = universe();
  std::size_t covered = 0;
  for (const auto& f : u) covered += seen_.contains(f) ? 1u : 0u;
  return u.empty() ? 1.0
                   : static_cast<double>(covered) /
                         static_cast<double>(u.size());
}

std::vector<std::string> CoverageMap::missing() const {
  std::vector<std::string> out;
  for (const auto& f : universe()) {
    if (!seen_.contains(f)) out.push_back(f);
  }
  return out;
}

std::string CoverageMap::json() const {
  const auto& u = universe();
  std::size_t covered = 0;
  for (const auto& f : u) covered += seen_.contains(f) ? 1u : 0u;
  std::ostringstream os;
  os << "{\n  \"universe\": " << u.size() << ",\n  \"covered\": " << covered
     << ",\n  \"ratio\": " << fmt_double(ratio()) << ",\n  \"seen\": [";
  bool first = true;
  for (const auto& f : seen_) {
    os << (first ? "" : ", ") << '"' << f << '"';
    first = false;
  }
  os << "],\n  \"missing\": [";
  first = true;
  for (const auto& f : missing()) {
    os << (first ? "" : ", ") << '"' << f << '"';
    first = false;
  }
  os << "]\n}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Seed corpus

std::vector<Scenario> fuzz_seed_corpus(const Hypercube& cube,
                                       std::uint64_t seed) {
  HCMM_CHECK(cube.dim() >= 3, "fuzz_seed_corpus: cube dimension must be >= 3");
  Prng rng(seed ^ 0xf022a9e5eedc0de5ULL);
  std::vector<Scenario> out;

  {
    // The clean rung: recovery machinery armed but never fired.
    out.push_back({"baseline-empty", FaultPlan{}});
  }
  {
    // Correlated bursts amplified on retransmissions, decorrelated by
    // jitter: the retry rung under its hardest transient regime.
    Scenario s{"burst-retry-storm", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.drop_prob = 0.03;
    s.plan.transient.corrupt_prob = 0.02;
    s.plan.transient.burst = {8, 3, 5.0};
    s.plan.transient.retry_factor = 3.0;
    s.plan.transient.jitter = 0.4;
    s.plan.transient.backoff_base = 0.5;
    s.plan.transient.max_attempts = 16;
    out.push_back(std::move(s));
  }
  {
    // Detours across a minefield: every re-planned hop may itself be
    // discovered failed, forcing mid-flight re-planning.
    Scenario s{"detour-minefield", FaultPlan{}};
    s.plan.set = random_connected_link_faults(cube, rng.next_u64(), 2);
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.detour_fail_prob = 0.25;
    out.push_back(std::move(s));
  }
  {
    // First-order death, then a second death while the rollback replays
    // the checkpointed prefix: two full recoveries in one run.
    Scenario s{"death-then-replay-death", FaultPlan{}};
    const NodeId v1 = safe_victim(cube, rng.next_u64(), s.plan.set);
    s.plan.kill_node_at_round(v1, 6);
    FaultSet after = s.plan.set;
    after.kill_node(v1);
    const NodeId v2 = safe_victim(cube, rng.next_u64(), after);
    s.plan.kill_node_at_replay_round(v2, 0);
    out.push_back(std::move(s));
  }
  {
    // Every early checkpoint corrupt: the rollback a death pays for keeps
    // failing its integrity check, so recovery escalates to a restart.
    Scenario s{"corrupt-checkpoint", FaultPlan{}};
    const NodeId v = safe_victim(cube, rng.next_u64(), s.plan.set);
    s.plan.kill_node_at_round(v, 6);
    for (std::uint64_t ord = 0; ord < 8; ++ord) {
      s.plan.corrupt_checkpoint.insert(ord);
    }
    out.push_back(std::move(s));
  }
  {
    // Restart first (early checkpoints corrupt), then a later death rolls
    // back onto a post-restart healthy checkpoint: restart and rollback
    // rungs in one run.
    Scenario s{"restart-then-rollback", FaultPlan{}};
    const NodeId v1 = safe_victim(cube, rng.next_u64(), s.plan.set);
    s.plan.kill_node_at_round(v1, 4);
    FaultSet after = s.plan.set;
    after.kill_node(v1);
    const NodeId v2 = safe_victim(cube, rng.next_u64(), after);
    s.plan.kill_node_at_round(v2, 6);
    for (std::uint64_t ord = 0; ord < 4; ++ord) {
      s.plan.corrupt_checkpoint.insert(ord);
    }
    out.push_back(std::move(s));
  }
  {
    // Same shape, but the recovery allowance covers only the restart: the
    // second death finds the budget spent and must abort cleanly.
    Scenario s{"recovery-budget-abort", FaultPlan{}};
    const NodeId v1 = safe_victim(cube, rng.next_u64(), s.plan.set);
    s.plan.kill_node_at_round(v1, 4);
    FaultSet after = s.plan.set;
    after.kill_node(v1);
    const NodeId v2 = safe_victim(cube, rng.next_u64(), after);
    s.plan.kill_node_at_round(v2, 6);
    for (std::uint64_t ord = 0; ord < 4; ++ord) {
      s.plan.corrupt_checkpoint.insert(ord);
    }
    s.plan.budget.max_recoveries = 1;
    out.push_back(std::move(s));
  }
  {
    // Heavy drops under a tight retry allowance: the budget, not the
    // per-message attempt cap, is what gives out.
    Scenario s{"retry-budget-squeeze", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.drop_prob = 0.6;
    s.plan.transient.max_attempts = 10;
    s.plan.transient.backoff_base = 0.1;
    s.plan.budget.max_retries = 3;
    out.push_back(std::move(s));
  }
  {
    // Latency spikes against a recovery deadline on cumulative fault delay.
    Scenario s{"deadline-squeeze", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.spike_prob = 0.9;
    s.plan.transient.spike_time = 5.0;
    s.plan.budget.deadline = 8.0;
    out.push_back(std::move(s));
  }
  {
    // A dead node with every neighbor dead: contraction has no host and the
    // plan must be rejected with a located abort.
    Scenario s{"hostless-cluster", FaultPlan{}};
    s.plan.set.kill_node(0);
    for (std::uint32_t k = 0; k < cube.dim(); ++k) {
      s.plan.set.kill_node(cube.neighbor(0, k));
    }
    out.push_back(std::move(s));
  }
  {
    // Every link of one node cut: the live cube is disconnected and no
    // route can exist.
    Scenario s{"severed-node", FaultPlan{}};
    const NodeId n = static_cast<NodeId>(cube.size() - 1);
    for (std::uint32_t k = 0; k < cube.dim(); ++k) {
      s.plan.set.fail_link(n, cube.neighbor(n, k));
    }
    out.push_back(std::move(s));
  }
  {
    // Structural storm: a pre-dead node plus link faults plus transients —
    // retries, reroutes and contraction all active in one run.
    Scenario s{"contraction-storm", FaultPlan{}};
    s.plan.set = random_connected_link_faults(cube, rng.next_u64(), 2);
    const NodeId v = safe_victim(cube, rng.next_u64(), s.plan.set);
    s.plan.set.kill_node(v);
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.drop_prob = 0.02;
    s.plan.transient.corrupt_prob = 0.01;
    s.plan.transient.backoff_base = 0.25;
    s.plan.transient.max_attempts = 12;
    out.push_back(std::move(s));
  }
  {
    // Rare silent flips: the ABFT-protected run must detect and correct.
    Scenario s{"silent-flips", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.silent_prob = 0.004;
    out.push_back(std::move(s));
  }
  {
    // Flip storm: more corruption than single-error residues can repair —
    // the protected run must refuse the product, not return it wrong.
    Scenario s{"silent-storm", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.silent_prob = 0.3;
    out.push_back(std::move(s));
  }
  {
    // Total loss on every attempt: the per-message attempt cap is the
    // abort path (kRetryExhausted), not the run-wide budget.
    Scenario s{"drop-exhaustion", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64() | 1u;
    s.plan.transient.drop_prob = 1.0;
    s.plan.transient.max_attempts = 3;
    s.plan.transient.backoff_base = 0.1;
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Mutation

FaultPlan mutate_plan(const FaultPlan& base, const Hypercube& cube,
                      std::uint64_t seed) {
  Prng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  FaultPlan plan = base;
  const std::uint64_t steps = 1 + rng.next_below(3);
  for (std::uint64_t step = 0; step < steps; ++step) {
    switch (rng.next_below(24)) {
      case 0:
        add_connected_link(plan, cube, rng);
        break;
      case 1: {
        NodeId v = 0;
        if (pick_safe_victim(plan, cube, rng, v)) plan.set.kill_node(v);
        break;
      }
      case 2:
        plan.transient.drop_prob = rng.uniform(0.0, 0.08);
        break;
      case 3:
        plan.transient.corrupt_prob = rng.uniform(0.0, 0.05);
        break;
      case 4:
        plan.transient.spike_prob = rng.uniform(0.0, 0.5);
        plan.transient.spike_time = rng.uniform(0.5, 4.0);
        break;
      case 5:
        plan.transient.silent_prob = rng.uniform(0.0, 0.01);
        break;
      case 6:
        plan.transient.burst = {
            static_cast<std::uint32_t>(4 + rng.next_below(12)),
            static_cast<std::uint32_t>(1 + rng.next_below(4)),
            rng.uniform(2.0, 8.0)};
        break;
      case 7:
        plan.transient.retry_factor = rng.uniform(1.0, 5.0);
        break;
      case 8:
        plan.transient.jitter = rng.uniform(0.0, 0.5);
        break;
      case 9:
        plan.transient.detour_fail_prob = rng.uniform(0.0, 0.3);
        break;
      case 10: {
        NodeId v = 0;
        if (pick_safe_victim(plan, cube, rng, v)) {
          plan.kill_node_at_round(v, 2 + rng.next_below(16));
        }
        break;
      }
      case 11: {
        NodeId v = 0;
        if (pick_safe_victim(plan, cube, rng, v)) {
          plan.kill_node_at_replay_round(v, rng.next_below(4));
        }
        break;
      }
      case 12:
        plan.corrupt_checkpoint.insert(rng.next_below(6));
        break;
      case 13:
        plan.budget.max_retries = 1 + rng.next_below(8);
        break;
      case 14:
        plan.budget.max_reroutes = 1 + rng.next_below(4);
        break;
      case 15:
        plan.budget.max_recoveries = 1 + rng.next_below(3);
        break;
      case 16:
        plan.budget.deadline = rng.uniform(2.0, 40.0);
        break;
      case 17:
        plan.transient.seed = rng.next_u64() | 1u;
        break;
      case 18: {
        // Deliberate hostless cluster — the kHostless abort path is itself
        // a coverage target.
        const auto n = static_cast<NodeId>(rng.next_below(cube.size()));
        plan.set.kill_node(n);
        for (std::uint32_t k = 0; k < cube.dim(); ++k) {
          plan.set.kill_node(cube.neighbor(n, k));
        }
        break;
      }
      case 19: {
        // Deliberate disconnect — the kUnroutable abort path.
        const auto n = static_cast<NodeId>(rng.next_below(cube.size()));
        for (std::uint32_t k = 0; k < cube.dim(); ++k) {
          plan.set.fail_link(n, cube.neighbor(n, k));
        }
        break;
      }
      // Wire-layer (socket transport) mutations.  No-ops on the simulator;
      // the chaos tool's wire stage runs the plan's .wire over a lossy
      // socket team, so these arms explore the transport recovery paths.
      case 20:
        plan.wire.drop_prob = rng.uniform(0.0, 0.3);
        break;
      case 21:
        plan.wire.dup_prob = rng.uniform(0.0, 0.3);
        plan.wire.reorder_prob = rng.uniform(0.0, 0.3);
        break;
      case 22:
        plan.wire.flip_prob = rng.uniform(0.0, 0.2);
        plan.wire.delay_prob = rng.uniform(0.0, 0.2);
        plan.wire.delay_ms = static_cast<std::uint32_t>(1 + rng.next_below(8));
        break;
      case 23:
        plan.wire.reconnect_prob = rng.uniform(0.0, 0.05);
        break;
      default:
        break;
    }
  }
  ensure_retry_defaults(plan, rng);
  return plan;
}

// ---------------------------------------------------------------------------
// Shrinking

namespace {

/// Every one-component-removed sub-plan of @p p, in deterministic order.
[[nodiscard]] std::vector<FaultPlan> shrink_candidates(const FaultPlan& p) {
  std::vector<FaultPlan> out;
  for (const std::uint64_t key : p.set.failed_links()) {
    FaultPlan c = p;
    FaultSet rebuilt;
    for (const std::uint64_t other : p.set.failed_links()) {
      if (other == key) continue;
      rebuilt.fail_link(static_cast<NodeId>(other >> 32),
                        static_cast<NodeId>(other & 0xffffffffULL));
    }
    for (const NodeId d : p.set.dead_nodes()) rebuilt.kill_node(d);
    c.set = std::move(rebuilt);
    out.push_back(std::move(c));
  }
  for (const NodeId dead : p.set.dead_nodes()) {
    FaultPlan c = p;
    FaultSet rebuilt;
    for (const std::uint64_t key : p.set.failed_links()) {
      rebuilt.fail_link(static_cast<NodeId>(key >> 32),
                        static_cast<NodeId>(key & 0xffffffffULL));
    }
    for (const NodeId d : p.set.dead_nodes()) {
      if (d != dead) rebuilt.kill_node(d);
    }
    c.set = std::move(rebuilt);
    out.push_back(std::move(c));
  }
  for (const auto& [round, victims] : p.kill_at) {
    for (const NodeId v : victims) {
      FaultPlan c = p;
      c.kill_at[round].erase(v);
      if (c.kill_at[round].empty()) c.kill_at.erase(round);
      out.push_back(std::move(c));
    }
  }
  for (const auto& [round, victims] : p.kill_at_replay) {
    for (const NodeId v : victims) {
      FaultPlan c = p;
      c.kill_at_replay[round].erase(v);
      if (c.kill_at_replay[round].empty()) c.kill_at_replay.erase(round);
      out.push_back(std::move(c));
    }
  }
  for (const std::uint64_t ord : p.corrupt_checkpoint) {
    FaultPlan c = p;
    c.corrupt_checkpoint.erase(ord);
    out.push_back(std::move(c));
  }
  const auto channel = [&out, &p](auto&& zero) {
    FaultPlan c = p;
    zero(c);
    out.push_back(std::move(c));
  };
  const TransientSpec& t = p.transient;
  if (t.drop_prob != 0.0) {
    channel([](FaultPlan& c) { c.transient.drop_prob = 0.0; });
  }
  if (t.corrupt_prob != 0.0) {
    channel([](FaultPlan& c) { c.transient.corrupt_prob = 0.0; });
  }
  if (t.spike_prob != 0.0 || t.spike_time != 0.0) {
    channel([](FaultPlan& c) {
      c.transient.spike_prob = 0.0;
      c.transient.spike_time = 0.0;
    });
  }
  if (t.silent_prob != 0.0) {
    channel([](FaultPlan& c) { c.transient.silent_prob = 0.0; });
  }
  if (t.burst.active()) {
    channel([](FaultPlan& c) { c.transient.burst = {}; });
  }
  if (t.retry_factor != 1.0) {
    channel([](FaultPlan& c) { c.transient.retry_factor = 1.0; });
  }
  if (t.jitter != 0.0) {
    channel([](FaultPlan& c) { c.transient.jitter = 0.0; });
  }
  if (t.detour_fail_prob != 0.0) {
    channel([](FaultPlan& c) { c.transient.detour_fail_prob = 0.0; });
  }
  if (p.budget.max_retries != 0) {
    channel([](FaultPlan& c) { c.budget.max_retries = 0; });
  }
  if (p.budget.max_reroutes != 0) {
    channel([](FaultPlan& c) { c.budget.max_reroutes = 0; });
  }
  if (p.budget.max_recoveries != 0) {
    channel([](FaultPlan& c) { c.budget.max_recoveries = 0; });
  }
  if (p.budget.deadline != 0.0) {
    channel([](FaultPlan& c) { c.budget.deadline = 0.0; });
  }
  const WireFaultSpec& w = p.wire;
  if (w.drop_prob != 0.0) {
    channel([](FaultPlan& c) { c.wire.drop_prob = 0.0; });
  }
  if (w.dup_prob != 0.0) {
    channel([](FaultPlan& c) { c.wire.dup_prob = 0.0; });
  }
  if (w.reorder_prob != 0.0) {
    channel([](FaultPlan& c) { c.wire.reorder_prob = 0.0; });
  }
  if (w.delay_prob != 0.0) {
    channel([](FaultPlan& c) {
      c.wire.delay_prob = 0.0;
      c.wire.delay_ms = WireFaultSpec{}.delay_ms;
    });
  }
  if (w.flip_prob != 0.0) {
    channel([](FaultPlan& c) { c.wire.flip_prob = 0.0; });
  }
  if (w.reconnect_prob != 0.0) {
    channel([](FaultPlan& c) { c.wire.reconnect_prob = 0.0; });
  }
  return out;
}

}  // namespace

FaultPlan shrink_plan(
    const FaultPlan& plan,
    const std::function<bool(const FaultPlan&)>& still_fails) {
  FaultPlan cur = plan;
  bool changed = true;
  while (changed) {
    changed = false;
    for (FaultPlan& cand : shrink_candidates(cur)) {
      if (still_fails(cand)) {
        cur = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Reproducer spec + JSON

std::string plan_spec(const FaultPlan& plan) {
  std::vector<std::string> tokens;
  const TransientSpec& t = plan.transient;
  const TransientSpec dflt;
  if (t.seed != dflt.seed) tokens.push_back("seed=" + std::to_string(t.seed));
  if (t.drop_prob != dflt.drop_prob) {
    tokens.push_back("drop=" + fmt_double(t.drop_prob));
  }
  if (t.corrupt_prob != dflt.corrupt_prob) {
    tokens.push_back("corrupt=" + fmt_double(t.corrupt_prob));
  }
  if (t.spike_prob != dflt.spike_prob || t.spike_time != dflt.spike_time) {
    tokens.push_back("spike=" + fmt_double(t.spike_prob) + "," +
                     fmt_double(t.spike_time));
  }
  if (t.max_attempts != dflt.max_attempts) {
    tokens.push_back("attempts=" + std::to_string(t.max_attempts));
  }
  if (t.backoff_base != dflt.backoff_base) {
    tokens.push_back("backoff=" + fmt_double(t.backoff_base));
  }
  if (t.silent_prob != dflt.silent_prob) {
    tokens.push_back("silent=" + fmt_double(t.silent_prob));
  }
  if (t.burst.period != 0 || t.burst.len != 0 || t.burst.factor != 1.0) {
    tokens.push_back("burst=" + std::to_string(t.burst.period) + "," +
                     std::to_string(t.burst.len) + "," +
                     fmt_double(t.burst.factor));
  }
  if (t.retry_factor != dflt.retry_factor) {
    tokens.push_back("rfactor=" + fmt_double(t.retry_factor));
  }
  if (t.jitter != dflt.jitter) {
    tokens.push_back("jitter=" + fmt_double(t.jitter));
  }
  if (t.detour_fail_prob != dflt.detour_fail_prob) {
    tokens.push_back("detour=" + fmt_double(t.detour_fail_prob));
  }
  const WireFaultSpec& w = plan.wire;
  const WireFaultSpec wdflt;
  if (w.seed != wdflt.seed) tokens.push_back("wseed=" + std::to_string(w.seed));
  if (w.drop_prob != wdflt.drop_prob) {
    tokens.push_back("wdrop=" + fmt_double(w.drop_prob));
  }
  if (w.dup_prob != wdflt.dup_prob) {
    tokens.push_back("wdup=" + fmt_double(w.dup_prob));
  }
  if (w.reorder_prob != wdflt.reorder_prob) {
    tokens.push_back("wreorder=" + fmt_double(w.reorder_prob));
  }
  if (w.delay_prob != wdflt.delay_prob || w.delay_ms != wdflt.delay_ms) {
    tokens.push_back("wdelay=" + fmt_double(w.delay_prob) + "," +
                     std::to_string(w.delay_ms));
  }
  if (w.flip_prob != wdflt.flip_prob) {
    tokens.push_back("wflip=" + fmt_double(w.flip_prob));
  }
  if (w.reconnect_prob != wdflt.reconnect_prob) {
    tokens.push_back("wreconn=" + fmt_double(w.reconnect_prob));
  }
  for (const std::uint64_t key : plan.set.failed_links()) {
    tokens.push_back("link=" + std::to_string(key >> 32) + "-" +
                     std::to_string(key & 0xffffffffULL));
  }
  for (const NodeId d : plan.set.dead_nodes()) {
    tokens.push_back("dead=" + std::to_string(d));
  }
  for (const auto& [round, victims] : plan.kill_at) {
    for (const NodeId v : victims) {
      tokens.push_back("kill@" + std::to_string(round) + "=" +
                       std::to_string(v));
    }
  }
  for (const auto& [round, victims] : plan.kill_at_replay) {
    for (const NodeId v : victims) {
      tokens.push_back("killr@" + std::to_string(round) + "=" +
                       std::to_string(v));
    }
  }
  for (const std::uint64_t ord : plan.corrupt_checkpoint) {
    tokens.push_back("ckpt=" + std::to_string(ord));
  }
  if (plan.budget.any()) {
    tokens.push_back("budget=" + std::to_string(plan.budget.max_retries) +
                     "," + std::to_string(plan.budget.max_reroutes) + "," +
                     std::to_string(plan.budget.max_recoveries) + "," +
                     fmt_double(plan.budget.deadline));
  }
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i != 0) out += ';';
    out += tokens[i];
  }
  return out;
}

FaultPlan plan_from_spec(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& token : split(spec, ';')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) spec_error(token, "missing '='");
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    if (key == "seed") {
      plan.transient.seed = parse_u64(token, val);
    } else if (key == "drop") {
      plan.transient.drop_prob = parse_double(token, val);
    } else if (key == "corrupt") {
      plan.transient.corrupt_prob = parse_double(token, val);
    } else if (key == "spike") {
      const auto parts = split(val, ',');
      if (parts.size() != 2) spec_error(token, "want spike=<prob>,<time>");
      plan.transient.spike_prob = parse_double(token, parts[0]);
      plan.transient.spike_time = parse_double(token, parts[1]);
    } else if (key == "attempts") {
      plan.transient.max_attempts =
          static_cast<std::uint32_t>(parse_u64(token, val));
    } else if (key == "backoff") {
      plan.transient.backoff_base = parse_double(token, val);
    } else if (key == "silent") {
      plan.transient.silent_prob = parse_double(token, val);
    } else if (key == "burst") {
      const auto parts = split(val, ',');
      if (parts.size() != 3) {
        spec_error(token, "want burst=<period>,<len>,<factor>");
      }
      plan.transient.burst.period =
          static_cast<std::uint32_t>(parse_u64(token, parts[0]));
      plan.transient.burst.len =
          static_cast<std::uint32_t>(parse_u64(token, parts[1]));
      plan.transient.burst.factor = parse_double(token, parts[2]);
    } else if (key == "rfactor") {
      plan.transient.retry_factor = parse_double(token, val);
    } else if (key == "jitter") {
      plan.transient.jitter = parse_double(token, val);
    } else if (key == "detour") {
      plan.transient.detour_fail_prob = parse_double(token, val);
    } else if (key == "wseed") {
      plan.wire.seed = parse_u64(token, val);
    } else if (key == "wdrop") {
      plan.wire.drop_prob = parse_double(token, val);
    } else if (key == "wdup") {
      plan.wire.dup_prob = parse_double(token, val);
    } else if (key == "wreorder") {
      plan.wire.reorder_prob = parse_double(token, val);
    } else if (key == "wdelay") {
      const auto parts = split(val, ',');
      if (parts.size() != 2) spec_error(token, "want wdelay=<prob>,<ms>");
      plan.wire.delay_prob = parse_double(token, parts[0]);
      plan.wire.delay_ms =
          static_cast<std::uint32_t>(parse_u64(token, parts[1]));
    } else if (key == "wflip") {
      plan.wire.flip_prob = parse_double(token, val);
    } else if (key == "wreconn") {
      plan.wire.reconnect_prob = parse_double(token, val);
    } else if (key == "link") {
      const auto parts = split(val, '-');
      if (parts.size() != 2) spec_error(token, "want link=<a>-<b>");
      plan.set.fail_link(static_cast<NodeId>(parse_u64(token, parts[0])),
                         static_cast<NodeId>(parse_u64(token, parts[1])));
    } else if (key == "dead") {
      plan.set.kill_node(static_cast<NodeId>(parse_u64(token, val)));
    } else if (key.rfind("kill@", 0) == 0) {
      plan.kill_node_at_round(static_cast<NodeId>(parse_u64(token, val)),
                              parse_u64(token, key.substr(5)));
    } else if (key.rfind("killr@", 0) == 0) {
      plan.kill_node_at_replay_round(
          static_cast<NodeId>(parse_u64(token, val)),
          parse_u64(token, key.substr(6)));
    } else if (key == "ckpt") {
      plan.corrupt_checkpoint.insert(parse_u64(token, val));
    } else if (key == "budget") {
      const auto parts = split(val, ',');
      if (parts.size() != 4) {
        spec_error(token,
                   "want budget=<retries>,<reroutes>,<recoveries>,<deadline>");
      }
      plan.budget.max_retries = parse_u64(token, parts[0]);
      plan.budget.max_reroutes = parse_u64(token, parts[1]);
      plan.budget.max_recoveries = parse_u64(token, parts[2]);
      plan.budget.deadline = parse_double(token, parts[3]);
    } else {
      spec_error(token, "unknown key");
    }
  }
  return plan;
}

std::string plan_json(const FaultPlan& plan) {
  std::ostringstream os;
  os << "{\"spec\": \"" << plan_spec(plan) << "\", \"links\": [";
  bool first = true;
  for (const std::uint64_t key : plan.set.failed_links()) {
    os << (first ? "" : ", ") << "[" << (key >> 32) << ", "
       << (key & 0xffffffffULL) << "]";
    first = false;
  }
  os << "], \"dead\": [";
  first = true;
  for (const NodeId d : plan.set.dead_nodes()) {
    os << (first ? "" : ", ") << d;
    first = false;
  }
  os << "], \"kill_at\": {";
  first = true;
  for (const auto& [round, victims] : plan.kill_at) {
    os << (first ? "" : ", ") << '"' << round << "\": [";
    bool inner = true;
    for (const NodeId v : victims) {
      os << (inner ? "" : ", ") << v;
      inner = false;
    }
    os << "]";
    first = false;
  }
  os << "}, \"kill_at_replay\": {";
  first = true;
  for (const auto& [round, victims] : plan.kill_at_replay) {
    os << (first ? "" : ", ") << '"' << round << "\": [";
    bool inner = true;
    for (const NodeId v : victims) {
      os << (inner ? "" : ", ") << v;
      inner = false;
    }
    os << "]";
    first = false;
  }
  os << "}, \"corrupt_checkpoint\": [";
  first = true;
  for (const std::uint64_t ord : plan.corrupt_checkpoint) {
    os << (first ? "" : ", ") << ord;
    first = false;
  }
  os << "], \"transient\": {\"seed\": " << plan.transient.seed
     << ", \"drop\": " << fmt_double(plan.transient.drop_prob)
     << ", \"corrupt\": " << fmt_double(plan.transient.corrupt_prob)
     << ", \"spike\": " << fmt_double(plan.transient.spike_prob)
     << ", \"silent\": " << fmt_double(plan.transient.silent_prob)
     << ", \"burst_period\": " << plan.transient.burst.period
     << ", \"burst_len\": " << plan.transient.burst.len
     << ", \"burst_factor\": " << fmt_double(plan.transient.burst.factor)
     << ", \"retry_factor\": " << fmt_double(plan.transient.retry_factor)
     << ", \"jitter\": " << fmt_double(plan.transient.jitter)
     << ", \"detour\": " << fmt_double(plan.transient.detour_fail_prob)
     << "}, \"wire\": {\"seed\": " << plan.wire.seed
     << ", \"drop\": " << fmt_double(plan.wire.drop_prob)
     << ", \"duplicate\": " << fmt_double(plan.wire.dup_prob)
     << ", \"reorder\": " << fmt_double(plan.wire.reorder_prob)
     << ", \"delay\": " << fmt_double(plan.wire.delay_prob)
     << ", \"delay_ms\": " << plan.wire.delay_ms
     << ", \"flip\": " << fmt_double(plan.wire.flip_prob)
     << ", \"reconnect\": " << fmt_double(plan.wire.reconnect_prob)
     << "}, \"budget\": {\"max_retries\": " << plan.budget.max_retries
     << ", \"max_reroutes\": " << plan.budget.max_reroutes
     << ", \"max_recoveries\": " << plan.budget.max_recoveries
     << ", \"deadline\": " << fmt_double(plan.budget.deadline) << "}}";
  return os.str();
}

}  // namespace hcmm::fault
