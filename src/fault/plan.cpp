#include "hcmm/fault/plan.hpp"

#include <sstream>
#include <vector>

#include "hcmm/support/check.hpp"

namespace hcmm::fault {
namespace {

// splitmix64 finalizer: the same mixer the Prng seeds through, reused here
// as a stateless hash so transient-fault decisions need no mutable state.
[[nodiscard]] constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the attempt coordinates.
[[nodiscard]] double hash_unit(std::uint64_t seed, std::uint64_t round,
                               NodeId src, NodeId dst,
                               std::uint32_t attempt) noexcept {
  std::uint64_t h = mix(seed);
  h = mix(h ^ round);
  h = mix(h ^ ((static_cast<std::uint64_t>(src) << 32) | dst));
  h = mix(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Domain-separation salt so the silent-corruption stream is independent of
// the drop/corrupt/spike stream on the same (round, src, dst) coordinates.
constexpr std::uint64_t kSilentSalt = 0xabf7c0de5117e417ULL;
// Further salts keep the burst-window, backoff-jitter, and detour-discovery
// streams independent of each other and of every stream above.
constexpr std::uint64_t kBurstSalt = 0xb0857c0de1234567ULL;
constexpr std::uint64_t kJitterSalt = 0x217e7e00b0ff0000ULL;
constexpr std::uint64_t kDetourSalt = 0xde700cde70e4faceULL;
// Wire-layer (socket transport) streams: frame fate, reconnect tear-downs,
// retransmission jitter, and flip-site selection are four independent
// streams over the same (channel, seq, attempt) coordinates.
constexpr std::uint64_t kWireFrameSalt = 0x3169e7f8a3e0c0deULL;
constexpr std::uint64_t kWireReconnSalt = 0x7ec0127ec0127ec0ULL;
constexpr std::uint64_t kWireJitterSalt = 0x91b7e12fdead5a17ULL;
constexpr std::uint64_t kWireFlipSalt = 0xf11b517e0fb17f1bULL;

[[nodiscard]] std::uint64_t wire_hash(std::uint64_t seed, std::uint64_t salt,
                                      std::uint64_t channel, std::uint64_t seq,
                                      std::uint32_t attempt) noexcept {
  std::uint64_t h = mix(seed ^ salt);
  h = mix(h ^ channel);
  h = mix(h ^ seq);
  h = mix(h ^ attempt);
  return h;
}

[[nodiscard]] double wire_unit(std::uint64_t seed, std::uint64_t salt,
                               std::uint64_t channel, std::uint64_t seq,
                               std::uint32_t attempt) noexcept {
  return static_cast<double>(wire_hash(seed, salt, channel, seq, attempt) >>
                             11) *
         0x1.0p-53;
}

[[nodiscard]] std::uint64_t silent_hash(std::uint64_t seed, std::uint64_t round,
                                        NodeId src, NodeId dst) noexcept {
  std::uint64_t h = mix(seed ^ kSilentSalt);
  h = mix(h ^ round);
  h = mix(h ^ ((static_cast<std::uint64_t>(src) << 32) | dst));
  return h;
}

}  // namespace

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kSpike: return "latency-spike";
    case FaultKind::kReroute: return "reroute";
    case FaultKind::kNodeDeath: return "node-death";
    case FaultKind::kRetryExhausted: return "retry-exhausted";
    case FaultKind::kUnroutable: return "unroutable";
    case FaultKind::kHostless: return "hostless";
    case FaultKind::kSilentCorrupt: return "silent-corrupt";
    case FaultKind::kMidRunDeath: return "mid-run-death";
    case FaultKind::kAbftUncorrectable: return "abft-uncorrectable";
    case FaultKind::kDetourFault: return "detour-fault";
    case FaultKind::kReplayDeath: return "replay-death";
    case FaultKind::kCheckpointCorrupt: return "checkpoint-corrupt";
    case FaultKind::kBudgetExhausted: return "budget-exhausted";
  }
  return "?";
}

const char* to_string(WireFault f) noexcept {
  switch (f) {
    case WireFault::kNone: return "none";
    case WireFault::kDrop: return "wire-drop";
    case WireFault::kDuplicate: return "wire-duplicate";
    case WireFault::kReorder: return "wire-reorder";
    case WireFault::kDelay: return "wire-delay";
    case WireFault::kFlip: return "wire-flip";
    case WireFault::kReconnect: return "wire-reconnect";
  }
  return "?";
}

WireFault WireFaultSpec::frame_fault(std::uint64_t channel, std::uint64_t seq,
                                     std::uint32_t attempt) const noexcept {
  if (!any() || attempt >= kWireAttemptCeiling) return WireFault::kNone;
  const double u = wire_unit(seed, kWireFrameSalt, channel, seq, attempt);
  const auto clamp01 = [](double p) { return p < 1.0 ? p : 1.0; };
  double acc = clamp01(drop_prob);
  if (u < acc) return WireFault::kDrop;
  acc = clamp01(acc + dup_prob);
  if (u < acc) return WireFault::kDuplicate;
  acc = clamp01(acc + reorder_prob);
  if (u < acc) return WireFault::kReorder;
  acc = clamp01(acc + delay_prob);
  if (u < acc) return WireFault::kDelay;
  acc = clamp01(acc + flip_prob);
  if (u < acc) return WireFault::kFlip;
  return WireFault::kNone;
}

bool WireFaultSpec::reconnect_hit(std::uint64_t channel, std::uint64_t seq,
                                  std::uint32_t attempt) const noexcept {
  if (reconnect_prob <= 0.0 || attempt >= kWireAttemptCeiling) return false;
  return wire_unit(seed, kWireReconnSalt, channel, seq, attempt) <
         reconnect_prob;
}

double WireFaultSpec::jitter_unit(std::uint64_t channel, std::uint64_t seq,
                                  std::uint32_t attempt) const noexcept {
  return wire_unit(seed, kWireJitterSalt, channel, seq, attempt);
}

std::uint64_t WireFaultSpec::flip_site(std::uint64_t channel,
                                       std::uint64_t seq,
                                       std::uint32_t attempt) const noexcept {
  return wire_hash(seed, kWireFlipSalt, channel, seq, attempt);
}

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  os << fault::to_string(kind) << ": " << src << " -> " << dst << ", round "
     << round;
  if (attempt != 0) os << ", attempt " << attempt;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

FaultAbort::FaultAbort(FaultEvent event)
    : std::runtime_error("fault abort — " + event.to_string()),
      event_(std::move(event)) {}

void FaultSet::fail_link(NodeId a, NodeId b) {
  HCMM_CHECK(a != b, "FaultSet::fail_link: " << a << " is not a link");
  links_.insert(link_key(a, b));
}

void FaultSet::kill_node(NodeId n) { dead_.insert(n); }

bool FaultSet::connected(const Hypercube& cube) const {
  // BFS over live nodes and healthy links from the lowest live node.
  const std::uint32_t p = cube.size();
  std::vector<bool> seen(p, false);
  NodeId start = p;  // sentinel: no live node
  for (NodeId n = 0; n < p; ++n) {
    if (!node_dead(n)) {
      start = n;
      break;
    }
  }
  if (start == p) return false;  // everything dead
  std::vector<NodeId> queue{start};
  seen[start] = true;
  std::size_t live_seen = 1;
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    for (std::uint32_t k = 0; k < cube.dim(); ++k) {
      const NodeId v = cube.neighbor(u, k);
      if (seen[v] || node_dead(v) || link_failed(u, v)) continue;
      seen[v] = true;
      ++live_seen;
      queue.push_back(v);
    }
  }
  std::size_t live_total = 0;
  for (NodeId n = 0; n < p; ++n) {
    if (!node_dead(n)) ++live_total;
  }
  return live_seen == live_total;
}

NodeId FaultSet::host(const Hypercube& cube, NodeId n) const {
  HCMM_CHECK(cube.contains(n), "FaultSet::host: node " << n << " out of range");
  if (!node_dead(n)) return n;
  for (std::uint32_t k = 0; k < cube.dim(); ++k) {
    const NodeId partner = cube.neighbor(n, k);
    if (!node_dead(partner)) return partner;
  }
  throw FaultAbort(FaultEvent{.kind = FaultKind::kHostless,
                              .src = n,
                              .dst = n,
                              .round = 0,
                              .attempt = 0,
                              .detail = "every neighbor of the dead node is "
                                        "dead too — no partner to contract "
                                        "onto"});
}

FaultKind FaultPlan::attempt_outcome(std::uint64_t round, NodeId src,
                                     NodeId dst,
                                     std::uint32_t attempt) const noexcept {
  if (!transient.any()) return FaultKind::kNone;
  const double u = hash_unit(transient.seed, round, src, dst, attempt);
  // Correlated bursts scale every probability inside the window; targeted
  // retry faults scale drop/corrupt on retransmissions (attempt >= 2).
  // Both multipliers compose, clamped so thresholds stay well ordered.
  double scale = in_burst(round) ? transient.burst.factor : 1.0;
  double rscale = attempt >= 2 ? transient.retry_factor : 1.0;
  const auto clamp01 = [](double p) { return p < 1.0 ? p : 1.0; };
  const double drop = clamp01(transient.drop_prob * scale * rscale);
  const double corrupt = clamp01(transient.corrupt_prob * scale * rscale);
  const double spike = clamp01(transient.spike_prob * scale);
  if (u < drop) return FaultKind::kDrop;
  if (u < clamp01(drop + corrupt)) return FaultKind::kCorrupt;
  if (u < clamp01(drop + corrupt + spike)) return FaultKind::kSpike;
  return FaultKind::kNone;
}

bool FaultPlan::silent_hit(std::uint64_t round, NodeId src,
                           NodeId dst) const noexcept {
  if (transient.silent_prob <= 0.0) return false;
  const std::uint64_t h = silent_hash(transient.seed, round, src, dst);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < transient.silent_prob;
}

std::uint64_t FaultPlan::silent_site(std::uint64_t round, NodeId src,
                                     NodeId dst) const noexcept {
  // One extra mix so the site bits are independent of the hit decision.
  return mix(silent_hash(transient.seed, round, src, dst));
}

bool FaultPlan::in_burst(std::uint64_t round) const noexcept {
  const BurstSpec& b = transient.burst;
  if (!b.active()) return false;
  // The window start inside each cycle is a pure hash of (seed, cycle); the
  // window may wrap into the next cycle so every offset is reachable.
  const std::uint64_t cycle = round / b.period;
  const std::uint64_t start =
      mix(mix(transient.seed ^ kBurstSalt) ^ cycle) % b.period;
  const std::uint64_t off = round % b.period;
  const std::uint64_t rel = (off + b.period - start) % b.period;
  return rel < b.len;
}

bool FaultPlan::detour_hit(std::uint64_t round, NodeId a,
                           NodeId b) const noexcept {
  if (transient.detour_fail_prob <= 0.0) return false;
  std::uint64_t h = mix(transient.seed ^ kDetourSalt);
  h = mix(h ^ round);
  h = mix(h ^ link_key(a, b));
  return static_cast<double>(h >> 11) * 0x1.0p-53 <
         transient.detour_fail_prob;
}

double FaultPlan::jitter_unit(std::uint64_t round, NodeId src, NodeId dst,
                              std::uint32_t attempt) const noexcept {
  std::uint64_t h = mix(transient.seed ^ kJitterSalt);
  h = mix(h ^ round);
  h = mix(h ^ ((static_cast<std::uint64_t>(src) << 32) | dst));
  h = mix(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace hcmm::fault
