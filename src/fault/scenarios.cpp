#include "hcmm/fault/scenarios.hpp"

#include "hcmm/support/check.hpp"
#include "hcmm/support/prng.hpp"

namespace hcmm::fault {
namespace {

/// A random link of @p cube.
[[nodiscard]] std::pair<NodeId, NodeId> random_link(Prng& rng,
                                                    const Hypercube& cube) {
  const auto a = static_cast<NodeId>(rng.next_below(cube.size()));
  const auto k = static_cast<std::uint32_t>(rng.next_below(cube.dim()));
  return {a, cube.neighbor(a, k)};
}

/// A random live node whose death keeps the live cube connected.
[[nodiscard]] NodeId random_safe_victim(Prng& rng, const Hypercube& cube,
                                        const FaultSet& base) {
  for (int tries = 0; tries < 64; ++tries) {
    const auto n = static_cast<NodeId>(rng.next_below(cube.size()));
    if (base.node_dead(n)) continue;
    FaultSet with = base;
    with.kill_node(n);
    if (with.connected(cube)) return n;
  }
  HCMM_CHECK(false, "chaos_scenarios: no safe victim node found");
  return 0;  // unreachable
}

}  // namespace

NodeId safe_victim(const Hypercube& cube, std::uint64_t seed,
                   const FaultSet& base) {
  Prng rng(seed);
  return random_safe_victim(rng, cube, base);
}

std::vector<Scenario> abft_scenarios(const Hypercube& cube,
                                     std::uint64_t seed) {
  HCMM_CHECK(cube.dim() >= 2, "abft_scenarios: cube too small to break");
  Prng rng(seed);
  std::vector<Scenario> out;
  {
    // Rare flips: usually zero or one per run, the single-error class the
    // Huang-Abraham residues correct outright.
    Scenario s{"silent-rare", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64();
    s.plan.transient.silent_prob = 0.002;
    out.push_back(std::move(s));
  }
  {
    // Frequent flips: several per run, spanning rows and columns — the
    // protected run must either repair them all or refuse the product.
    Scenario s{"silent-burst", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64();
    s.plan.transient.silent_prob = 0.02;
    out.push_back(std::move(s));
  }
  {
    // Silent flips underneath detected drops: the retry layer resends what
    // it can see while the checksum layer handles what it cannot.
    Scenario s{"silent-plus-drops", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64();
    s.plan.transient.drop_prob = 0.04;
    s.plan.transient.corrupt_prob = 0.01;
    s.plan.transient.max_attempts = 10;
    s.plan.transient.backoff_base = 8.0;
    s.plan.transient.silent_prob = 0.004;
    out.push_back(std::move(s));
  }
  return out;
}

FaultSet random_connected_link_faults(const Hypercube& cube,
                                      std::uint64_t seed,
                                      std::uint32_t count) {
  Prng rng(seed);
  FaultSet set;
  const std::uint32_t budget = count * 16 + 16;  // bounded rejection sampling
  for (std::uint32_t tries = 0;
       tries < budget && set.failed_links().size() < count; ++tries) {
    const auto [a, b] = random_link(rng, cube);
    if (set.link_failed(a, b)) continue;
    FaultSet with = set;
    with.fail_link(a, b);
    if (with.connected(cube)) set = std::move(with);
  }
  return set;
}

std::vector<Scenario> chaos_scenarios(const Hypercube& cube,
                                      std::uint64_t seed) {
  HCMM_CHECK(cube.dim() >= 2, "chaos_scenarios: cube too small to break");
  Prng rng(seed);
  std::vector<Scenario> out;

  // Baseline: an installed-but-empty plan.  The campaign checks this run is
  // bit-identical to a plan-free run — the zero-overhead guarantee.
  out.push_back({"baseline-empty-plan", FaultPlan{}});

  {
    Scenario s{"single-link-failure", FaultPlan{}};
    const auto [a, b] = random_link(rng, cube);
    s.plan.set.fail_link(a, b);  // one link never disconnects a d>=2 cube
    out.push_back(std::move(s));
  }
  {
    Scenario s{"transient-drops", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64();
    s.plan.transient.drop_prob = 0.06;
    s.plan.transient.corrupt_prob = 0.02;
    s.plan.transient.max_attempts = 10;
    s.plan.transient.backoff_base = 8.0;
    out.push_back(std::move(s));
  }
  {
    Scenario s{"latency-spikes", FaultPlan{}};
    s.plan.transient.seed = rng.next_u64();
    s.plan.transient.spike_prob = 0.1;
    s.plan.transient.spike_time = 400.0;
    s.plan.transient.max_attempts = 6;
    out.push_back(std::move(s));
  }
  {
    Scenario s{"single-node-death", FaultPlan{}};
    s.plan.set.kill_node(random_safe_victim(rng, cube, FaultSet{}));
    out.push_back(std::move(s));
  }
  {
    // Everything at once: a few broken links, a dead node, drops and spikes.
    Scenario s{"storm", FaultPlan{}};
    s.plan.set = random_connected_link_faults(cube, rng.next_u64(),
                                              cube.dim() >= 4 ? 3u : 1u);
    s.plan.set.kill_node(random_safe_victim(rng, cube, s.plan.set));
    HCMM_CHECK(s.plan.set.connected(cube), "chaos_scenarios: storm broke the cube");
    s.plan.transient.seed = rng.next_u64();
    s.plan.transient.drop_prob = 0.04;
    s.plan.transient.corrupt_prob = 0.01;
    s.plan.transient.spike_prob = 0.05;
    s.plan.transient.spike_time = 200.0;
    s.plan.transient.max_attempts = 12;
    s.plan.transient.backoff_base = 4.0;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace hcmm::fault
