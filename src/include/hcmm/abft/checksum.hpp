#pragma once
// Huang–Abraham algorithm-based fault tolerance (ABFT) for matmul: the true
// product C = A·B satisfies two linear invariants that can be computed in
// O(n^2) without ever forming C,
//   row sums  C·e   = A·(B·e)
//   col sums  eᵀ·C  = (eᵀ·A)·B
// and any corruption confined to one row or one column of C (which is what a
// single flipped A, B, or partial-C element produces) leaves a residue
// pattern that both locates the error and carries the exact value needed to
// subtract it back out — detection and correction without recomputation.

#include <cstdint>
#include <vector>

#include "hcmm/abft/event.hpp"
#include "hcmm/matrix/matrix.hpp"

namespace hcmm {
class ThreadPool;
}

namespace hcmm::abft {

/// Reference checksums of the true product, from the operands alone.
struct Checksums {
  std::vector<double> row_sums;  ///< row_sums[i] = Σ_j C(i,j)  (= A·(B·e))
  std::vector<double> col_sums;  ///< col_sums[j] = Σ_i C(i,j)  (= eᵀA·B)
};

[[nodiscard]] Checksums reference_checksums(const Matrix& a, const Matrix& b);

/// Same checksums with the output vectors partitioned across @p pool's
/// threads.  Every entry is still one thread's serial sum in the exact order
/// of the serial version, so the result is bit-identical for any thread
/// count (including 1).
[[nodiscard]] Checksums reference_checksums(const Matrix& a, const Matrix& b,
                                            ThreadPool& pool);

/// Residues of a computed product against the reference:
/// row[i] = Σ_j C(i,j) − row_sums[i],  col[j] = Σ_i C(i,j) − col_sums[j].
struct Residues {
  std::vector<double> row;
  std::vector<double> col;
};

[[nodiscard]] Residues residues(const Matrix& c, const Checksums& ref);

/// Detection threshold scaled to the checksum magnitudes.  Floating-point
/// noise in the n-term residue sums is ~n·eps·scale; injected corruption is
/// Θ(1) — many orders of magnitude apart at the sizes simulated here.
[[nodiscard]] double residue_tolerance(const Checksums& ref);

/// Outcome of one verification pass over a computed product.
struct VerifyResult {
  std::uint64_t detected = 0;   ///< residue entries flagged over tolerance
  std::uint64_t corrected = 0;  ///< product elements repaired
  bool ok = true;               ///< product certified within tolerance
  std::vector<AbftEvent> events;
};

/// Verify @p c against @p ref and repair it in place when the flagged
/// residues are confined to a single row or a single column (the
/// Huang–Abraham correctable class); re-verifies after the repair.
/// ok == false means the corruption spans several rows *and* several
/// columns, or the repair did not converge — the product cannot be trusted.
[[nodiscard]] VerifyResult verify_and_correct(Matrix& c, const Checksums& ref,
                                              double tol);

}  // namespace hcmm::abft
