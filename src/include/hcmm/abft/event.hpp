#pragma once
// Located ABFT verification outcomes — the algorithm-layer counterpart of
// fault::FaultEvent.  Deliberately standalone (no sim/ includes) so
// SimReport can carry AbftEvents without a dependency cycle: abft builds on
// sim, while sim only needs this vocabulary type.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

namespace hcmm::abft {

/// What the checksum verification concluded about one detected corruption.
enum class EventKind : std::uint8_t {
  kElementCorrected,  ///< single element error located and subtracted out
  kRowCorrected,      ///< single-row error corrected from the column residues
  kColCorrected,      ///< single-column error corrected from the row residues
  kUncorrectable,     ///< residue pattern matches no single-row/column error
};

[[nodiscard]] constexpr const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kElementCorrected: return "element-corrected";
    case EventKind::kRowCorrected: return "row-corrected";
    case EventKind::kColCorrected: return "col-corrected";
    case EventKind::kUncorrectable: return "uncorrectable";
  }
  return "?";
}

/// One located ABFT finding: which row/column of the global product the
/// checksum residues implicated, and the residue magnitude involved.
/// `row`/`col` are kNoIndex when the event does not pin that coordinate.
struct AbftEvent {
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

  EventKind kind = EventKind::kUncorrectable;
  std::size_t row = kNoIndex;
  std::size_t col = kNoIndex;
  double magnitude = 0.0;  ///< max |residue| attributed to this event
  std::string detail;

  /// "row-corrected: row 5, |residue| 3.25 (detail)"
  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    os << abft::to_string(kind) << ":";
    if (row != kNoIndex) os << " row " << row;
    if (col != kNoIndex) os << (row != kNoIndex ? "," : "") << " col " << col;
    os << " |residue| " << magnitude;
    if (!detail.empty()) os << " (" << detail << ")";
    return os.str();
  }
};

}  // namespace hcmm::abft
