#pragma once
// abft::protect — wrap any DistributedMatmul in Huang–Abraham checksum
// protection plus checkpoint/rollback recovery.  The wrapper is itself a
// DistributedMatmul, so everything that enumerates algorithms (chaos runs,
// the static analyzer, benches) can sweep the protected variants unchanged.
//
// What a protected run adds on top of the inner algorithm:
//   * phase-boundary checkpointing on the Machine, so a scheduled mid-run
//     node death (FaultPlan::kill_at) rolls back to the last boundary,
//     converts the death into a permanent structural fault, and replays —
//     deterministically — instead of failing the run;
//   * an "abft encode" phase that reduces + broadcasts the per-node checksum
//     partials through the regular collective schedules (charged under the
//     paper's cost model like any other phase);
//   * an "abft verify" phase that checks the assembled product against the
//     reference checksums, correcting any single-row/column corruption in
//     place and aborting cleanly (FaultAbort, kAbftUncorrectable) when the
//     residue pattern cannot locate the error.  docs/ABFT.md is the
//     narrative description.

#include <memory>
#include <vector>

#include "hcmm/algo/api.hpp"

namespace hcmm::abft {

/// Tag space of the checksum items threaded through the encode collectives
/// (disjoint from the algorithm spaces 1–7 and the audit space 0x7A/0x7B).
inline constexpr std::uint16_t kSpaceChecksum = 0x2A;

class Protected final : public algo::DistributedMatmul {
 public:
  explicit Protected(std::unique_ptr<algo::DistributedMatmul> inner);

  [[nodiscard]] algo::AlgoId id() const noexcept override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool applicable(std::size_t n, std::uint32_t p) const override;
  [[nodiscard]] bool supports(PortModel port) const override;
  [[nodiscard]] algo::RunResult run(const Matrix& a, const Matrix& b,
                                    Machine& machine) const override;

 private:
  std::unique_ptr<algo::DistributedMatmul> inner_;
};

/// Wrap @p inner in ABFT protection.
[[nodiscard]] std::unique_ptr<algo::DistributedMatmul> protect(
    std::unique_ptr<algo::DistributedMatmul> inner);

/// make_algorithm + protect.
[[nodiscard]] std::unique_ptr<algo::DistributedMatmul> make_protected(
    algo::AlgoId id);

/// Every registered algorithm, protected — the ABFT mirror of
/// algo::all_algorithms(), in the same order.
[[nodiscard]] std::vector<std::unique_ptr<algo::DistributedMatmul>>
all_protected();

}  // namespace hcmm::abft
