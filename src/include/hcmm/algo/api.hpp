#pragma once
// Public interface of the distributed matrix-multiplication algorithms:
// the paper's two contributions (3-D Diagonal and 3-D All, plus their
// intermediate forms 2-D Diagonal and 3-D All_Trans) and every baseline it
// compares against (Simple, Cannon, Ho–Johnsson–Edelman, Berntsen, DNS).
//
// Usage: construct a Machine for the target hypercube/port model, pick an
// algorithm, and call run().  The algorithm stages the operands in the
// paper's initial distribution (not charged), executes its communication
// and computation phases on the simulated machine (charged and reported per
// phase), and gathers the product for verification.

#include <memory>
#include <string>
#include <vector>

#include "hcmm/matrix/matrix.hpp"
#include "hcmm/sim/machine.hpp"

namespace hcmm::algo {

enum class AlgoId : std::uint8_t {
  kSimple,    ///< §3.1 all-to-all broadcast algorithm
  kCannon,    ///< §3.2 Cannon's algorithm
  kHJE,       ///< §3.3 Ho–Johnsson–Edelman (multi-port only)
  kBerntsen,  ///< §3.4 Berntsen's algorithm
  kDNS,       ///< §3.5 Dekel–Nassimi–Sahni
  kDiag2D,    ///< §4.1.1 2-D Diagonal (building block of 3DD)
  kDiag3D,    ///< §4.1.2 3-D Diagonal — first proposed algorithm
  kAllTrans,  ///< §4.2.1 3-D All_Trans (building block of 3D All)
  kAll3D,     ///< §4.2.2 3-D All — second proposed algorithm
  kAll3DRect, ///< §4.2.2 closing remark: 3-D All on a p^{1/4} x p^{1/4} x
              ///< sqrt(p) grid, usable up to p <= n^2 (extension)
  kDNSCannon,    ///< §3.5 DNS x Cannon supernode combination
  kDiag3DCannon, ///< §3.5 3DD x Cannon — the "better combination" the
                 ///< paper asserts but does not spell out
};

[[nodiscard]] const char* to_string(AlgoId id) noexcept;

/// Outcome of one distributed run: the assembled product and the per-phase
/// cost report measured by the Machine.
struct RunResult {
  Matrix c;
  SimReport report;
};

class DistributedMatmul {
 public:
  virtual ~DistributedMatmul() = default;

  [[nodiscard]] virtual AlgoId id() const noexcept = 0;
  /// Display name; wrappers (e.g. abft::protect) decorate the inner name.
  [[nodiscard]] virtual std::string name() const { return to_string(id()); }

  /// True iff the algorithm can run an n x n product on p nodes: processor
  /// count of the right shape (square / cube power of two), the paper's
  /// p <= n^k bound (Table 3), and block divisibility.
  [[nodiscard]] virtual bool applicable(std::size_t n,
                                        std::uint32_t p) const = 0;

  /// True iff the algorithm is defined for @p port.  Only HJE is
  /// restricted (multi-port; on one-port machines it degenerates to
  /// Cannon, which the paper lists as "-").
  [[nodiscard]] virtual bool supports(PortModel port) const;

  /// Execute a*b on @p machine.  Requires applicable(a.rows(),
  /// machine.cube().size()) and square equal-sized operands.
  [[nodiscard]] virtual RunResult run(const Matrix& a, const Matrix& b,
                                      Machine& machine) const = 0;
};

/// Factory for a single algorithm.
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_algorithm(AlgoId id);

/// All ten algorithms (nine from the paper plus the rectangular-grid
/// 3-D All extension), in the paper's presentation order.
[[nodiscard]] std::vector<std::unique_ptr<DistributedMatmul>> all_algorithms();

}  // namespace hcmm::algo
