#pragma once
// Shared machinery for the algorithm implementations: tag vocabulary,
// Matrix <-> payload conversion, the parallel local-compute helper, and the
// Cannon core reused by both Cannon's algorithm and Berntsen's subcube
// outer products.
//
// Every helper that creates, cuts, multiplies or collects operand data also
// *declares* what it did as a SemanticEvent (sim/semantic.hpp) on the
// machine's semantic observer.  The helpers physically perform exactly what
// they declare — run_gemm_jobs delivers each product to the destination its
// job names, slice_item cuts the rectangles it announces — so the semantic
// certification pass (analysis/semantic.hpp) can trust the declarations
// without trusting the algorithms.

#include <functional>
#include <span>
#include <vector>

#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/matrix.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/semantic.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::algo::detail {

// Tag spaces (first field of make_tag).  Kept below 0x100 so the store's
// part-tag byte stays clear.
inline constexpr std::uint16_t kSpaceA = 1;
inline constexpr std::uint16_t kSpaceB = 2;
inline constexpr std::uint16_t kSpaceC = 3;
inline constexpr std::uint16_t kSpaceI = 4;       // outer-product partials
inline constexpr std::uint16_t kSpacePieceA = 5;  // sub-block pieces of A
inline constexpr std::uint16_t kSpacePieceB = 6;
inline constexpr std::uint16_t kSpacePieceI = 7;

[[nodiscard]] Tag tag3(std::uint16_t space, std::uint32_t a,
                       std::uint32_t b = 0, std::uint32_t c = 0);

/// Read item (node, tag) as an r x c matrix (copies the payload; use
/// mat_ref/paste_block where a borrow or a single paste suffices).
[[nodiscard]] Matrix mat_from(const DataStore& store, NodeId node, Tag tag,
                              std::size_t r, std::size_t c);

/// Store a matrix as item (node, tag).
void put_mat(DataStore& store, NodeId node, Tag tag, Matrix&& m);

/// A payload-backed gemm operand: holds a reference on the payload's buffer
/// (so later store mutations cannot invalidate it) and exposes the words as
/// a borrowed r x c MatrixView — no copy.  `srcs` is the operand's
/// provenance: the store items the words came from as (tag, column offset)
/// pairs (one at offset 0 for mat_ref; one per pasted block for
/// mat_concat_cols; empty for mat_own, which has none).
struct MatRef {
  Payload p;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::pair<Tag, std::size_t>> srcs;

  [[nodiscard]] MatrixView view() const noexcept {
    return {p.data(), rows, cols};
  }
};

/// Borrow item (node, tag) as an r x c operand (zero-copy).
[[nodiscard]] MatRef mat_ref(const DataStore& store, NodeId node, Tag tag,
                             std::size_t r, std::size_t c);

/// Wrap a locally computed matrix as an operand (takes ownership).  The
/// operand carries no provenance; prefer mat_concat_cols for operands
/// assembled from store items so the semantic pass can track them.
[[nodiscard]] MatRef mat_own(Matrix&& m);

/// Assemble an operand by pasting the store items @p piece_tags (each
/// @p piece_rows x @p piece_cols, all on @p node) side by side into one
/// piece_rows x (count * piece_cols) matrix; provenance records each piece
/// at its column offset.
[[nodiscard]] MatRef mat_concat_cols(const DataStore& store, NodeId node,
                                     std::span<const Tag> piece_tags,
                                     std::size_t piece_rows,
                                     std::size_t piece_cols);

/// Paste item (node, tag), an r x c block, into @p out with top-left corner
/// (r0, c0) — one copy straight from the payload, no intermediate Matrix.
/// Carries no semantic meaning; use collect_block for final C assembly.
void paste_block(const DataStore& store, NodeId node, Tag tag, std::size_t r,
                 std::size_t c, Matrix& out, std::size_t r0, std::size_t c0);

/// A host-side product accumulator: run_gemm_jobs adds products into `sum`,
/// flush_slices / flush_combine store the total back into the data plane.
/// The id ties the accumulate declarations to the flush declaration.
struct Accum {
  NodeId node = 0;
  Matrix sum;
  std::uint64_t id = 0;
};

/// Fresh zeroed rows x cols accumulator owned by @p node.
[[nodiscard]] Accum make_accum(Machine& machine, NodeId node,
                               std::size_t rows, std::size_t cols);

/// Where run_gemm_jobs delivers one job's product.
struct GemmDest {
  SemanticEvent::Dest kind = SemanticEvent::Dest::kPut;
  Tag tag = 0;          ///< kPut: fresh item; kCombine: existing item
  Accum* accum = nullptr;

  [[nodiscard]] static GemmDest put(Tag t) {
    return {SemanticEvent::Dest::kPut, t, nullptr};
  }
  [[nodiscard]] static GemmDest combine(Tag t) {
    return {SemanticEvent::Dest::kCombine, t, nullptr};
  }
  [[nodiscard]] static GemmDest into(Accum& a) {
    return {SemanticEvent::Dest::kAccum, 0, &a};
  }
};

/// One local multiply-accumulate unit: a * b delivered to `dest`.  Operands
/// are borrowed views of store payloads (or assembled via mat_concat_cols),
/// so queueing a job moves no matrix words.
struct GemmJob {
  NodeId node = 0;
  MatRef a;
  MatRef b;
  GemmDest dest;
};

/// Run all jobs on the machine's thread pool, charge t_c per multiply-add
/// (max over nodes, accumulating per node across jobs), and deliver each
/// product to its declared destination — put_mat / store.combine on the
/// job's node, or a host Accum.  Deterministic: products are computed in
/// parallel but delivered in job order.
void run_gemm_jobs(Machine& machine, std::vector<GemmJob> jobs);

/// Stage @p src block (r0, c0, rows, cols) — absolute element coordinates —
/// as item (node, tag) declared as that rectangle of operand @p op.  Not
/// charged (initial distribution / host-side prep).
void stage_region(Machine& machine, NodeId node, Tag tag, SemOperand op,
                  const Matrix& src, std::size_t r0, std::size_t c0,
                  std::size_t rows, std::size_t cols);

/// Stage a zeroed rows x cols accumulator item (an empty product multiset).
void stage_zero(Machine& machine, NodeId node, Tag tag, std::size_t rows,
                std::size_t cols);

/// Cut item (node, tag) — shape src_rows x src_cols — into @p pieces, each
/// a sub-rectangle within the item: the source is erased and every piece
/// becomes its own item.  The pieces need not cover the source.
void slice_item(Machine& machine, NodeId node, Tag tag, std::size_t src_rows,
                std::size_t src_cols,
                std::span<const SemanticEvent::Piece> pieces);

/// Store sub-rectangles of @p acc's sum as items on its node (the
/// outer-product slice handoff of AllTrans / 3-D All).
void flush_slices(Machine& machine, const Accum& acc,
                  std::span<const SemanticEvent::Piece> pieces);

/// Combine @p acc's whole sum into the existing item (acc.node, dest);
/// consumes the sum.
void flush_combine(Machine& machine, Accum& acc, Tag dest);

/// Read item (node, tag), a rows x cols block, into @p out at (r0, c0),
/// declaring it as the C block with top-left element (r0, c0) — every final
/// C assembly must go through this (or gather_blocks) so the semantic pass
/// can check the collected product multiset.
void collect_block(Machine& machine, NodeId node, Tag tag, std::size_t rows,
                   std::size_t cols, Matrix& out, std::size_t r0,
                   std::size_t c0);

/// A q x q processor grid view: Cannon's core runs on any structure that
/// provides node lookup and row/column chain subcubes (the whole machine for
/// Cannon, one x-y plane for Berntsen).
struct GridFace {
  std::uint32_t q = 0;
  std::function<NodeId(std::uint32_t row, std::uint32_t col)> node;
  std::function<Subcube(std::uint32_t row)> row_chain;
  std::function<Subcube(std::uint32_t col)> col_chain;
};

/// One Cannon face: a q x q grid view plus the tag layout of its operands.
struct CannonFace {
  GridFace grid;
  std::function<Tag(std::uint32_t, std::uint32_t)> a_tag;
  std::function<Tag(std::uint32_t, std::uint32_t)> b_tag;
  std::function<Tag(std::uint32_t, std::uint32_t)> c_tag;
};

/// Cannon's algorithm on every face in lockstep: operands already staged as
/// a_tag(i,j) / b_tag(i,j) at grid.node(i,j) with block shapes (ar x ac)
/// and (ac x bc); the alignment and the q shift-multiply-add steps
/// accumulate into store items c_tag(i,j) of shape ar x bc (created here).
/// Faces must live on pairwise link-disjoint node sets (disjoint subcubes)
/// and share one q, so each round carries every face's transfers and the
/// measured cost equals a single face's schedule — which is how Berntsen's
/// subcube outer products and the DNS/3DD x Cannon supernode combinations
/// execute on the real machine.
///
/// Multi-port machines overlap the A and B movements of each phase, exactly
/// as the paper's §3.2 analysis assumes.
void cannon_lockstep(Machine& machine, std::span<const CannonFace> faces,
                     std::size_t ar, std::size_t ac, std::size_t bc,
                     const std::string& phase_prefix);

/// Single-face convenience used by plain Cannon.
void cannon_core(Machine& machine, const GridFace& face,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& a_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& b_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& c_tag,
                 std::size_t ar, std::size_t ac, std::size_t bc,
                 const std::string& phase_prefix);

/// Stage a's blocks: block (bi, bj) of the bh x bw block grid goes to
/// placer(bi, bj) under tag(bi, bj), declared as that rectangle of operand
/// @p op.  Not charged (initial distribution).
void stage_blocks(Machine& machine, const Matrix& a, std::uint32_t bh,
                  std::uint32_t bw,
                  const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
                  const std::function<Tag(std::uint32_t, std::uint32_t)>& tag,
                  SemOperand op);

/// Assemble an n x n matrix from blocks: block (bi, bj) read from
/// placer(bi, bj) under tag(bi, bj), declared as collected C blocks.
[[nodiscard]] Matrix gather_blocks(
    Machine& machine, std::size_t n, std::uint32_t bh, std::uint32_t bw,
    const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
    const std::function<Tag(std::uint32_t, std::uint32_t)>& tag);

}  // namespace hcmm::algo::detail
