#pragma once
// Shared machinery for the algorithm implementations: tag vocabulary,
// Matrix <-> payload conversion, the parallel local-compute helper, and the
// Cannon core reused by both Cannon's algorithm and Berntsen's subcube
// outer products.

#include <functional>
#include <span>
#include <vector>

#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/matrix.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::algo::detail {

// Tag spaces (first field of make_tag).  Kept below 0x100 so the store's
// part-tag byte stays clear.
inline constexpr std::uint16_t kSpaceA = 1;
inline constexpr std::uint16_t kSpaceB = 2;
inline constexpr std::uint16_t kSpaceC = 3;
inline constexpr std::uint16_t kSpaceI = 4;       // outer-product partials
inline constexpr std::uint16_t kSpacePieceA = 5;  // sub-block pieces of A
inline constexpr std::uint16_t kSpacePieceB = 6;
inline constexpr std::uint16_t kSpacePieceI = 7;

[[nodiscard]] Tag tag3(std::uint16_t space, std::uint32_t a,
                       std::uint32_t b = 0, std::uint32_t c = 0);

/// Read item (node, tag) as an r x c matrix (copies the payload; use
/// mat_ref/paste_block where a borrow or a single paste suffices).
[[nodiscard]] Matrix mat_from(const DataStore& store, NodeId node, Tag tag,
                              std::size_t r, std::size_t c);

/// Store a matrix as item (node, tag).
void put_mat(DataStore& store, NodeId node, Tag tag, Matrix&& m);

/// A payload-backed gemm operand: holds a reference on the payload's buffer
/// (so later store mutations cannot invalidate it) and exposes the words as
/// a borrowed r x c MatrixView — no copy.
struct MatRef {
  Payload p;
  std::size_t rows = 0;
  std::size_t cols = 0;

  [[nodiscard]] MatrixView view() const noexcept {
    return {p.data(), rows, cols};
  }
};

/// Borrow item (node, tag) as an r x c operand (zero-copy).
[[nodiscard]] MatRef mat_ref(const DataStore& store, NodeId node, Tag tag,
                             std::size_t r, std::size_t c);

/// Wrap a locally computed matrix as an operand (takes ownership).
[[nodiscard]] MatRef mat_own(Matrix&& m);

/// Paste item (node, tag), an r x c block, into @p out with top-left corner
/// (r0, c0) — one copy straight from the payload, no intermediate Matrix.
void paste_block(const DataStore& store, NodeId node, Tag tag, std::size_t r,
                 std::size_t c, Matrix& out, std::size_t r0, std::size_t c0);

/// One local multiply-accumulate unit: result[job] = a * b.  Operands are
/// borrowed views of store payloads (or owned via mat_own), so queueing a
/// job moves no matrix words.
struct GemmJob {
  NodeId node = 0;
  MatRef a;
  MatRef b;
};

/// Run all jobs on the machine's thread pool, charge t_c per multiply-add
/// (max over nodes, accumulating per node across jobs), and hand each
/// product to @p sink(job_index, product).  Deterministic: products are
/// computed in parallel but consumed in job order.
void run_gemm_jobs(Machine& machine, std::vector<GemmJob> jobs,
                   const std::function<void(std::size_t, Matrix&&)>& sink);

/// A q x q processor grid view: Cannon's core runs on any structure that
/// provides node lookup and row/column chain subcubes (the whole machine for
/// Cannon, one x-y plane for Berntsen).
struct GridFace {
  std::uint32_t q = 0;
  std::function<NodeId(std::uint32_t row, std::uint32_t col)> node;
  std::function<Subcube(std::uint32_t row)> row_chain;
  std::function<Subcube(std::uint32_t col)> col_chain;
};

/// One Cannon face: a q x q grid view plus the tag layout of its operands.
struct CannonFace {
  GridFace grid;
  std::function<Tag(std::uint32_t, std::uint32_t)> a_tag;
  std::function<Tag(std::uint32_t, std::uint32_t)> b_tag;
  std::function<Tag(std::uint32_t, std::uint32_t)> c_tag;
};

/// Cannon's algorithm on every face in lockstep: operands already staged as
/// a_tag(i,j) / b_tag(i,j) at grid.node(i,j) with block shapes (ar x ac)
/// and (ac x bc); the alignment and the q shift-multiply-add steps
/// accumulate into store items c_tag(i,j) of shape ar x bc (created here).
/// Faces must live on pairwise link-disjoint node sets (disjoint subcubes)
/// and share one q, so each round carries every face's transfers and the
/// measured cost equals a single face's schedule — which is how Berntsen's
/// subcube outer products and the DNS/3DD x Cannon supernode combinations
/// execute on the real machine.
///
/// Multi-port machines overlap the A and B movements of each phase, exactly
/// as the paper's §3.2 analysis assumes.
void cannon_lockstep(Machine& machine, std::span<const CannonFace> faces,
                     std::size_t ar, std::size_t ac, std::size_t bc,
                     const std::string& phase_prefix);

/// Single-face convenience used by plain Cannon.
void cannon_core(Machine& machine, const GridFace& face,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& a_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& b_tag,
                 const std::function<Tag(std::uint32_t, std::uint32_t)>& c_tag,
                 std::size_t ar, std::size_t ac, std::size_t bc,
                 const std::string& phase_prefix);

/// Stage a's blocks: block (bi, bj) of the bh x bw block grid goes to
/// placer(bi, bj) under tag(bi, bj).  Not charged (initial distribution).
void stage_blocks(Machine& machine, const Matrix& a, std::uint32_t bh,
                  std::uint32_t bw,
                  const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
                  const std::function<Tag(std::uint32_t, std::uint32_t)>& tag);

/// Assemble an n x n matrix from blocks: block (bi, bj) read from
/// placer(bi, bj) under tag(bi, bj).
[[nodiscard]] Matrix gather_blocks(
    const Machine& machine, std::size_t n, std::uint32_t bh, std::uint32_t bw,
    const std::function<NodeId(std::uint32_t, std::uint32_t)>& placer,
    const std::function<Tag(std::uint32_t, std::uint32_t)>& tag);

}  // namespace hcmm::algo::detail
