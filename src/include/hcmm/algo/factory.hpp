#pragma once
// Internal per-algorithm factories (one translation unit each); the public
// entry points are make_algorithm / all_algorithms in api.hpp.

#include <memory>
#include <optional>
#include <utility>

#include "hcmm/algo/api.hpp"

namespace hcmm::algo::detail {

[[nodiscard]] std::unique_ptr<DistributedMatmul> make_simple();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_cannon();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_hje();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_berntsen();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_dns();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_diag2d();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_diag3d();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_alltrans();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_all3d();
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_all3d_rect();

/// The §3.5 supernode combinations; @p split optionally pins
/// (sigma, rho) with p = sigma^3 * rho^2 (default: largest sigma).
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_dns_cannon(
    std::optional<std::pair<std::uint32_t, std::uint32_t>> split = {});
[[nodiscard]] std::unique_ptr<DistributedMatmul> make_diag3d_cannon(
    std::optional<std::pair<std::uint32_t, std::uint32_t>> split = {});

}  // namespace hcmm::algo::detail
