#pragma once
// Arbitrary-size frontend: every algorithm in this library requires n to
// divide evenly into its block grid (the paper assumes as much).  For
// arbitrary n, pad A and B with zeros up to the algorithm's granularity,
// run, and crop — the zero rows/columns contribute nothing to the product.

#include "hcmm/algo/api.hpp"

namespace hcmm::algo {

/// Smallest n' >= n at which @p alg is applicable on p nodes (n' is probed
/// in steps of 1 up to 4x n); 0 if none exists (e.g. p of the wrong shape).
[[nodiscard]] std::size_t padded_size(const DistributedMatmul& alg,
                                      std::size_t n, std::uint32_t p);

/// Multiply two (not necessarily square-divisible) n x n matrices with
/// @p alg on @p machine by zero-padding to padded_size() and cropping the
/// result.  The report reflects the padded run (that is what the machine
/// executed).  Throws if no padded size exists.
[[nodiscard]] RunResult padded_multiply(const DistributedMatmul& alg,
                                        const Matrix& a, const Matrix& b,
                                        Machine& machine);

}  // namespace hcmm::algo
