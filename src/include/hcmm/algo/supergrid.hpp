#pragma once
// Supernode decomposition for the paper's §3.5 combination algorithms: the
// hypercube is viewed as a sigma x sigma x sigma 3-D grid of supernodes,
// each supernode a rho x rho Cannon mesh (p = sigma^3 * rho^2).  Superblock
// movement between supernodes happens per intra-position (u, v) — the
// corresponding processors of the supernodes form chains that are genuine
// subcubes — and each supernode multiplies its superblocks with Cannon's
// algorithm internally, trading start-ups for replication space.

#include <cstdint>
#include <optional>
#include <utility>

#include "hcmm/algo/detail.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::algo::detail {

class SuperGrid {
 public:
  /// @p sigma supernode grid side, @p rho Cannon mesh side (both powers of
  /// two); the machine has sigma^3 * rho^2 nodes.
  SuperGrid(std::uint32_t sigma, std::uint32_t rho);

  [[nodiscard]] std::uint32_t sigma() const noexcept { return sigma_; }
  [[nodiscard]] std::uint32_t rho() const noexcept { return rho_; }
  [[nodiscard]] std::uint32_t p() const noexcept {
    return sigma_ * sigma_ * sigma_ * rho_ * rho_;
  }

  /// Hypercube node of intra-position (u, v) in supernode (i, j, k).
  [[nodiscard]] NodeId node(std::uint32_t u, std::uint32_t v, std::uint32_t i,
                            std::uint32_t j, std::uint32_t k) const;

  /// Chains of corresponding processors across supernodes (u, v fixed).
  [[nodiscard]] Subcube super_x_chain(std::uint32_t u, std::uint32_t v,
                                      std::uint32_t j, std::uint32_t k) const;
  [[nodiscard]] Subcube super_y_chain(std::uint32_t u, std::uint32_t v,
                                      std::uint32_t i, std::uint32_t k) const;
  [[nodiscard]] Subcube super_z_chain(std::uint32_t u, std::uint32_t v,
                                      std::uint32_t i, std::uint32_t j) const;

  /// The rho x rho Cannon face of supernode (i, j, k): face position
  /// (row u, col v) -> node(u, v, i, j, k).
  [[nodiscard]] GridFace face(std::uint32_t i, std::uint32_t j,
                              std::uint32_t k) const;

 private:
  std::uint32_t sigma_, rho_;
  std::uint32_t gs_, gr_;  // log2 sizes
};

/// Canonical (sigma, rho) split of p = sigma^3 * rho^2: the largest sigma
/// (most supernode parallelism, fewest Cannon start-ups) whose remainder is
/// a perfect square.  Empty when log2(p) cannot be written as 3a + 2b.
[[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint32_t>>
default_super_split(std::uint32_t p);

}  // namespace hcmm::algo::detail
