#pragma once
// mpptest-style transport calibration: measure the machine the runtime is
// *actually* running on, then feed the measured constants back into the
// paper's cost model.
//
// The paper's Table 2 predictions are parameterized by (t_s, t_w) — message
// start-up and per-word transmission time — which GuptaS94 takes as machine
// constants (the headline set is t_s = 150, t_w = 3 in multiply-add units).
// calibrate() measures the real pair for whichever Transport backs a Team,
// the way mpptest does: a rank-0 <-> rank-1 ping-pong per message size,
// `warmup` untimed iterations to fault in buffers and warm connections,
// `iters` timed round trips per repetition, and the *minimum* over
// repetitions (not the mean — the minimum filters scheduler noise and is the
// standard mpptest estimator).  A least-squares line through the per-size
// one-way times yields t_s (intercept, us) and t_w (slope, us per 8-byte
// word); a short local gemm timing yields t_c so compute can be predicted in
// the same units.
//
// table2_report() then closes the loop demanded by the audit: for each SPMD
// algorithm port it evaluates the Table 2 closed form with the *measured*
// constants (cost::table2(id, port, n, p) -> a*t_s + b*t_w, plus the
// 2n^3/p * t_c compute term and the measured per-run dispatch overhead,
// the constant the closed form does not model), runs the same algorithm
// for real over the backend, and reports predicted vs. measured inside a
// tolerance band.  The
// band is deliberately wide (default [0.02x, 100x]): the loopback backends
// share one machine (p ranks timeshare the cores, so compute serializes up
// to p-fold), and the topology-agnostic SPMD ports send more messages than
// the hypercube schedules the closed forms count.  What the band *does*
// catch is an order-of-magnitude latency regression — e.g. a transport bug
// that parks every message on a poll tick instead of a wakeup turns the
// ratio three-orders-of-magnitude wrong and fails the gate — while staying
// robust to core-sharing and sanitizer slowdowns, which shift the
// calibrated constants and the measured runs together.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hcmm/runtime/team.hpp"
#include "hcmm/sim/types.hpp"

namespace hcmm::analysis {

struct PingPongSample {
  std::size_t words = 0;   ///< payload size in 8-byte words (doubles)
  double oneway_us = 0.0;  ///< min-over-reps one-way time, microseconds
};

struct CalibrationConfig {
  std::uint32_t warmup = 4;  ///< untimed ping-pongs per size
  std::uint32_t iters = 32;  ///< timed ping-pongs per repetition
  std::uint32_t reps = 5;    ///< repetitions; the minimum is kept
  std::vector<std::size_t> words = {1, 16, 64, 256, 1024, 4096};
  /// Accepted measured/predicted ratio band for table2_report.
  double band_lo = 0.02;
  double band_hi = 100.0;
};

struct Calibration {
  std::string backend;       ///< Transport::name() of the measured backend
  double ts_us = 0.0;        ///< fitted start-up, us per message
  double tw_us = 0.0;        ///< fitted bandwidth, us per 8-byte word
  double tc_us = 0.0;        ///< multiply-add time of the SPMD compute path
  double tc_oracle_us = 0.0; ///< multiply-add time of the bit-exact oracle
  double tc_vector_us = 0.0; ///< multiply-add time of the vector fast path
  std::string gemm_kernel;   ///< gemm path backing tc_us ("vector", ...)
  std::string gemm_isa;      ///< ISA of that path ("avx512", "scalar", ...)
  double fit_residual = 0.0; ///< worst relative residual of the (ts,tw) fit
  std::vector<PingPongSample> samples;
};

/// Ping-pong sweep between ranks 0 and 1 of @p team (which must have at
/// least 2 ranks, both local).  Leaves the team reusable.
[[nodiscard]] Calibration calibrate(rt::Team& team,
                                    const CalibrationConfig& cfg = {});

/// Measured constants as cost-model parameters, microsecond units — what
/// plugs straight into cost::table2(...).time(...).
[[nodiscard]] CostParams measured_params(const Calibration& cal);

/// One predicted-vs-measured row of the calibrated Table 2 report.
struct Table2Measured {
  std::string algo;        ///< SPMD port name ("cannon", "all3d", ...)
  std::uint32_t ranks = 0;
  std::size_t n = 0;
  double predicted_us = 0.0;  ///< closed form at measured (t_s, t_w, t_c)
  double measured_us = 0.0;   ///< wall clock of the real run over the backend
  double ratio = 0.0;         ///< measured / predicted
  bool within = false;        ///< ratio inside [band_lo, band_hi]
};

struct Table2CalReport {
  Calibration cal;
  double band_lo = 0.0;
  double band_hi = 0.0;
  std::vector<Table2Measured> rows;
  bool all_within = true;
};

/// Builds teams over one backend; ranks is the team size requested.
using TeamFactory =
    std::function<std::unique_ptr<rt::Team>(std::uint32_t ranks)>;

/// Calibrate the backend, then run every SPMD port that fits in
/// @p max_ranks (grid algorithms at p = 4, cubic ones at p = 8) and diff
/// wall clock against the Table 2 closed form evaluated at the measured
/// constants.
[[nodiscard]] Table2CalReport table2_report(const TeamFactory& make_team,
                                            const CalibrationConfig& cfg = {},
                                            std::uint32_t max_ranks = 8);

/// Machine-readable form of the report (one JSON object).
[[nodiscard]] std::string to_json(const Table2CalReport& report);

}  // namespace hcmm::analysis
