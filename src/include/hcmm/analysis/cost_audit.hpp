#pragma once
// Static communication-cost extraction and the Table 1 audit.
//
// static_cost() computes the (a, b) pair a schedule will be charged by the
// Machine — a = start-ups (non-empty rounds), b = word-times on the critical
// path — purely from the schedule and an abstract placement, mirroring
// Machine::execute_round's accounting without moving a payload.
//
// audit_collective_builders() drives every registered collective builder
// through the real coll::prep_* compilation path on a d-cube, extracts its
// static cost and compares against the cost::table1 closed form: the a-term
// must match exactly (integer equality), the b-term to the word when the
// item size divides evenly over the log N chunk instances (the audit
// requires d | M so it always does).  Any mismatch is an error diagnostic —
// a builder that silently lost its Table 1 optimality fails the lint gate.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hcmm/analysis/diagnostics.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/cost/table1.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/schedule.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::analysis {

/// Statically computed cost of one schedule.
struct StaticCost {
  std::uint64_t a = 0;  ///< non-empty rounds = start-ups on the critical path
  std::uint64_t b = 0;  ///< sum over rounds of the max per-port word count
  /// False when a transferred tag was absent from the interpreted placement
  /// (b is then a lower bound); the dataflow pass reports the actual bug.
  bool exact = true;
};

[[nodiscard]] StaticCost static_cost(const Schedule& schedule,
                                     const Hypercube& cube, PortModel port,
                                     const Placement& initial);

/// One registered collective builder under audit.
struct BuilderCase {
  std::string name;
  cost::CollKind kind = cost::CollKind::kBcast;
  /// Stage initial items of m_words per rank on the machine, compile via the
  /// real coll::prep_* path, and return the compiled schedule.
  std::function<Schedule(Machine& m, const Subcube& sc, std::size_t m_words)>
      prepare;
};

/// The registry: all seven Table 1 builders of coll/builders.hpp via their
/// coll/collectives compilation wrappers.
[[nodiscard]] const std::vector<BuilderCase>& collective_builder_cases();

/// Audit every registered builder on a @p dim-cube with items of @p m_words
/// words (must be a positive multiple of @p dim) under @p port.
[[nodiscard]] DiagnosticList audit_collective_builders(std::uint32_t dim,
                                                       std::size_t m_words,
                                                       PortModel port);

}  // namespace hcmm::analysis
