#pragma once
// Diagnostics engine of the static schedule analyzer.  A Diagnostic pins one
// rule violation to a (round, transfer) location with a severity, a stable
// machine-readable code ("port.double-send"), a human message and a fix
// hint; DiagnosticList collects, sorts, counts and formats them.  The JSON
// exporter lives in sim/report_io next to the other machine-readable output.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hcmm::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// Location value for schedule-wide diagnostics (no specific round/transfer).
inline constexpr std::size_t kNoLoc = static_cast<std::size_t>(-1);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string pass;               ///< pass that produced it
  std::string code;               ///< stable id, e.g. "port.double-send"
  std::size_t round = kNoLoc;     ///< 0-based round index
  std::size_t transfer = kNoLoc;  ///< 0-based transfer index within the round
  std::string message;
  std::string hint;               ///< suggested fix; may be empty

  /// "error: [port.double-send] round 3, transfer 2: ...\n  hint: ..."
  [[nodiscard]] std::string to_string() const;
};

class DiagnosticList {
 public:
  void add(Diagnostic d);
  void merge(DiagnosticList other);

  [[nodiscard]] const std::vector<Diagnostic>& diags() const noexcept {
    return diags_;
  }
  [[nodiscard]] bool empty() const noexcept { return diags_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return diags_.size(); }
  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] std::size_t error_count() const noexcept {
    return count(Severity::kError);
  }
  [[nodiscard]] bool has_errors() const noexcept { return error_count() > 0; }

  /// Order by (round, transfer, code); schedule-wide diagnostics last.
  void sort_by_location();

  /// One line per diagnostic (empty string when clean).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace hcmm::analysis
