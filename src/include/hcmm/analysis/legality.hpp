#pragma once
// The single implementation of per-round schedule legality, shared by the
// static analyzer (analysis/passes) and the runtime validator
// (Machine::validate_round) so the two can never drift apart.  Rules are the
// paper's §2 architecture constraints: transfers cross real hypercube links
// only, and each node drives its ports within the one-port / multi-port
// budget every round.

#include <cstdint>
#include <string>
#include <vector>

#include "hcmm/sim/schedule.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::analysis {

/// One violated rule inside one round.
struct RoundViolation {
  enum class Rule : std::uint8_t {
    kEndpointOutOfRange,  ///< src or dst is not a node of the cube
    kNotALink,            ///< src->dst is not a hypercube edge
    kEmptyTags,           ///< transfer carries no items
    kDoubleSend,          ///< one-port: second send by a node; multi-port:
                          ///< second send on one directed link
    kDoubleReceive,       ///< likewise for the receive side
  };
  Rule rule = Rule::kNotALink;
  std::size_t transfer = 0;  ///< index into round.transfers
  std::string message;
};

/// Structural / topology rules (port-model independent).
[[nodiscard]] std::vector<RoundViolation> check_round_topology(
    const Hypercube& cube, const Round& round);

/// Port-model occupancy rules.  Transfers failing the topology rules are
/// skipped (their link dimension is undefined).
[[nodiscard]] std::vector<RoundViolation> check_round_ports(
    const Hypercube& cube, PortModel port, const Round& round);

/// All rules at once: topology violations followed by port violations.
/// This is what Machine::validate_round and the fault-repair path run, so
/// repaired rounds face exactly the rules original schedules do.
[[nodiscard]] std::vector<RoundViolation> check_round(const Hypercube& cube,
                                                      PortModel port,
                                                      const Round& round);

/// Direction-resolved port keys of one transfer: per node under one-port,
/// per node-link under multi-port.  This is the quantity the validators
/// book occupancy on and the Machine's cost accounting maxes over.
struct PortKeys {
  std::uint64_t out = 0;
  std::uint64_t in = 0;
};
[[nodiscard]] PortKeys port_keys(PortModel port, NodeId src, NodeId dst);

}  // namespace hcmm::analysis
