#pragma once
// Pass-based static verifier for communication schedules.  Every collective
// builder and algorithm phase can be checked against the paper's §2
// architecture rules and against an abstract data placement *before* any
// payload moves — the same "verify the schedule, not the run" discipline the
// runtime validator applies too late and with no diagnostics.
//
// Passes:
//   topology  — every transfer crosses a real link of the target cube
//   port      — one-port / multi-port occupancy per round (static twin of
//               Machine::validate_round; both call analysis/legality)
//   dataflow  — abstract interpretation of rounds over a Placement: sends of
//               absent tags, use-after-move, combine into missing items,
//               duplicate deliveries, dead transfers never read again
//
// The cost-audit pass lives in analysis/cost_audit (it needs the Table 1
// closed forms from src/cost).  How to add a pass: docs/ANALYSIS.md.

#include <memory>
#include <string_view>
#include <vector>

#include "hcmm/analysis/diagnostics.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/sim/schedule.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::analysis {

/// Everything a pass may look at.  The optional placements gate optional
/// checks: without `initial` the dataflow pass has nothing to interpret and
/// stays silent; `expected_final` additionally enables dead-transfer and
/// final-state checking.
struct AnalysisInput {
  const Schedule* schedule = nullptr;
  Hypercube cube{0};
  PortModel port = PortModel::kOnePort;
  const Placement* initial = nullptr;
  const Placement* expected_final = nullptr;
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void run(const AnalysisInput& in, DiagnosticList& out) const = 0;
};

[[nodiscard]] std::unique_ptr<Pass> make_topology_pass();
[[nodiscard]] std::unique_ptr<Pass> make_port_pass();
[[nodiscard]] std::unique_ptr<Pass> make_dataflow_pass();

/// Pass manager: an ordered pipeline of passes over one AnalysisInput.
class Analyzer {
 public:
  Analyzer() = default;

  /// topology + port + dataflow, in that order.
  [[nodiscard]] static Analyzer with_default_passes();

  Analyzer& add_pass(std::unique_ptr<Pass> pass);
  [[nodiscard]] DiagnosticList analyze(const AnalysisInput& in) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Convenience: run the default pipeline over one schedule.
[[nodiscard]] DiagnosticList analyze_schedule(
    const Schedule& schedule, const Hypercube& cube, PortModel port,
    const Placement* initial = nullptr,
    const Placement* expected_final = nullptr);

}  // namespace hcmm::analysis
