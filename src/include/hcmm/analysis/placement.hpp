#pragma once
// Abstract placement: which tags live on which node and how many words each
// holds.  The dataflow and cost passes interpret schedules over this state
// instead of moving real payloads — "verify the schedule, not the run".
// A word count of 0 means "present, size unknown"; size-dependent checks
// are skipped for such items.

#include <cstddef>
#include <unordered_map>

#include "hcmm/sim/store.hpp"
#include "hcmm/sim/types.hpp"

namespace hcmm::analysis {

class Placement {
 public:
  using TagMap = std::unordered_map<Tag, std::size_t>;

  void add(NodeId node, Tag tag, std::size_t words = 0) {
    items_[node][tag] = words;
  }
  void erase(NodeId node, Tag tag);

  [[nodiscard]] bool has(NodeId node, Tag tag) const;
  /// Word count of an item; 0 when absent or of unknown size.
  [[nodiscard]] std::size_t words(NodeId node, Tag tag) const;

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] const std::unordered_map<NodeId, TagMap>& nodes()
      const noexcept {
    return items_;
  }

 private:
  std::unordered_map<NodeId, TagMap> items_;
};

/// Snapshot of a DataStore's current contents with real word counts — the
/// initial state the lint tool hands the analyzer before each phase.
[[nodiscard]] Placement snapshot_placement(const DataStore& store);

}  // namespace hcmm::analysis
