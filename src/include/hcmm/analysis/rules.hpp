#pragma once
// The diagnostic-rule registry: one metadata record per rule ID any
// analysis pass can emit.  sarif_json() folds these into the SARIF
// tool.driver.rules array (name, short description, help URI into
// docs/ANALYSIS.md), so SARIF consumers — code-scanning UIs, triage
// dashboards — render every finding with documentation attached.
//
// Adding a diagnostic code to a pass REQUIRES registering it here:
// tests/test_semantic.cpp's rule-exhaustiveness test scans the source tree
// for rule-ID literals and fails on any that lack metadata (and on any
// registered rule no pass emits, so the registry cannot rot).

#include <span>
#include <string_view>

namespace hcmm::analysis {

/// SARIF reportingDescriptor metadata for one rule ID.
struct RuleMeta {
  std::string_view id;          ///< e.g. "semantic.missing-product"
  std::string_view name;        ///< SARIF PascalCase name
  std::string_view short_desc;  ///< one-sentence description
  std::string_view help_uri;    ///< docs/ANALYSIS.md anchor
};

/// Every registered rule, sorted by id.
[[nodiscard]] std::span<const RuleMeta> all_rules();

/// Metadata for @p id, or nullptr if unregistered.
[[nodiscard]] const RuleMeta* find_rule(std::string_view id);

}  // namespace hcmm::analysis
