#pragma once
// Semantic dataflow certification: prove that a run computed C = A·B with
// every scalar product a_{ik}·b_{kj} contributed exactly once, from the
// trace alone.
//
// The trusted algo::detail helpers annotate the trace with provenance
// declarations (sim/semantic.hpp) that they physically enforce: stage_region
// declares which rectangle of which operand an item holds, run_gemm_jobs
// declares each product and then *is* the code that delivers it, slice and
// flush declare how items are cut, collect_block declares where an item
// lands in C.  The semantic pass abstractly re-executes the trace over a
// per-(node, tag) heap of symbolic values — operand regions, product-term
// multisets, byte-range fragments — propagating them through every split,
// join, combine and schedule delivery exactly as analysis/trace.cpp replays
// the physical data plane.  At the end the collected C blocks must tile
// [0,n)² and their product terms must cover the cube [0,n)³ of (i, k, j)
// index triples exactly once.
//
// Diagnostics (all errors, SARIF-exported and located at the witness event):
//   semantic.operand-mismatch  — a GEMM operand's provenance does not form
//       the contiguous operand rectangle the multiplication needs (wrong
//       region, wrong operand, k-misaligned pieces), or a collected item is
//       not a product multiset at all
//   semantic.misplaced-product — a product term landed at C coordinates
//       other than the ones its factors dictate
//   semantic.missing-product   — some a_{ik}·b_{kj} never reached C
//   semantic.duplicate-product — some a_{ik}·b_{kj} reached C twice
//
// A clean pass at one dimension is a proof for that p.  certify_semantics()
// lifts it: clean passes at every sampled dimension plus the Lemma U/P/D
// schema-legality certificate (analysis/symbolic.hpp) — whose argument is
// dimension-independent — yield an all-p semantic certificate.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hcmm/analysis/diagnostics.hpp"
#include "hcmm/analysis/symbolic.hpp"
#include "hcmm/analysis/trace.hpp"

namespace hcmm::analysis {

/// Census of one run's semantic interpretation.
struct SemanticSummary {
  std::size_t n = 0;                 ///< matrix order inferred from staging
  std::size_t gemm_products = 0;     ///< product declarations interpreted
  std::size_t blocks_collected = 0;  ///< C blocks collected
  std::size_t terms_collected = 0;   ///< product terms inside those blocks
  bool clean = true;                 ///< no semantic.* diagnostics emitted
};

/// Abstractly re-execute @p trace's data plane over the symbolic-value heap,
/// checking exactly-once product coverage.  Appends semantic.* diagnostics
/// to @p out and returns the census.
SemanticSummary run_semantic_pass(const RunTrace& trace, DiagnosticList& out);

/// TracePass adapter (pass name "semantic") for generic pass pipelines.
[[nodiscard]] std::unique_ptr<TracePass> make_semantic_pass();

/// All-p semantic certificate: exactly-once coverage witnessed at every
/// sampled dimension, extended to all p by the schema-legality certificate.
struct SemanticCertificate {
  std::string subject;
  PortModel port = PortModel::kOnePort;
  std::vector<std::uint32_t> dims_checked;
  std::vector<SemanticSummary> summaries;  ///< parallel to dims_checked
  bool clean_all_dims = false;   ///< zero semantic.* diagnostics at every dim
  bool certified_all_p = false;  ///< clean_all_dims && schema legality all-p
  std::string closed_form;       ///< round-schema summary from the lifter

  [[nodiscard]] std::string to_string() const;
};

/// Assemble the certificate from per-dimension semantic summaries and the
/// (optional) Lemma U/P/D legality certificate for the same subject.
[[nodiscard]] SemanticCertificate certify_semantics(
    std::string subject, PortModel port,
    const std::vector<std::pair<std::uint32_t, SemanticSummary>>& by_dim,
    const DimCertificate* legality);

}  // namespace hcmm::analysis
