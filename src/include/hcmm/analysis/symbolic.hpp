#pragma once
// Parametric (all-p) legality certification.
//
// The per-round checks in analysis/legality.cpp prove port legality for one
// concrete cube size.  This header lifts them to symbolic *round schemas*
// whose legality follows from structure alone, for every hypercube
// dimension d — so one lint run certifies an algorithm for all power-of-two
// p, not just the sizes it sampled.
//
// Lemma U (uniform dimension).  If every transfer of a round crosses the
//   same dimension k (dst = src XOR 2^k) and the sources are pairwise
//   distinct, then the destinations are pairwise distinct too, every node
//   sends and receives at most one message, and the round is legal under
//   BOTH port models on every cube with d > k.
//
// Lemma P (permutation).  If the sources are pairwise distinct and the
//   destinations are pairwise distinct, each node sends at most one and
//   receives at most one message (one-port legal), and since a node has one
//   link per dimension, each (node, dimension) port carries at most one
//   message (multi-port legal) — again for every d large enough to contain
//   the nodes.
//
// Lemma D (dimension-partitioned).  If for every (node, dimension) pair at
//   most one transfer leaves and at most one arrives, the round is
//   multi-port legal for every d (one-port legality is NOT implied: a node
//   may drive several dimensions at once).
//
// A round matching no lemma is "irregular": its legality remains exactly
// what the concrete passes verified for the sampled sizes.  A certificate
// is therefore sound for all p exactly when every round of every sampled
// run matches a lemma — the sampled dims witness that the builder emits
// only lemma-shaped rounds; an affine round-count fit R(d), when one
// exists, is reported as corroborating description.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hcmm/sim/schedule.hpp"
#include "hcmm/sim/types.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::analysis {

/// Which lemma (if any) covers one round.
enum class RoundSchema : std::uint8_t {
  kUniformDim,      ///< Lemma U: one dimension, distinct sources
  kPermutation,     ///< Lemma P: distinct sources and destinations
  kDimPartitioned,  ///< Lemma D: per-(node, dim) occupancy at most one
  kIrregular,       ///< no lemma applies; concrete checking only
};

[[nodiscard]] const char* to_string(RoundSchema s) noexcept;

/// Classify @p round against the lemmas (strongest first: U, then P, then
/// D).  Empty rounds classify as kUniformDim (vacuously legal).
[[nodiscard]] RoundSchema classify_round(const Round& round);

/// One schedule run of a subject at one sampled cube dimension.
struct SampledRun {
  std::uint32_t dim = 0;
  const std::vector<Schedule>* schedules = nullptr;
};

/// The all-p legality certificate for one (subject, port model) pair.
struct DimCertificate {
  std::string subject;  ///< e.g. "DNS" or "cube all-gather"
  PortModel port = PortModel::kOnePort;
  std::vector<std::uint32_t> dims_checked;

  // Round census across every sampled run.
  std::size_t rounds_total = 0;
  std::size_t uniform_rounds = 0;
  std::size_t permutation_rounds = 0;
  std::size_t dim_partitioned_rounds = 0;
  std::size_t irregular_rounds = 0;

  /// Human-readable schema summary, e.g.
  /// "R(d) = 6d - 3; every round uniform-dimension or permutation".
  std::string closed_form;

  /// True iff every round of every sampled run matches a lemma that implies
  /// legality under `port` — a dimension-independent argument, so the
  /// certificate extends to every power-of-two machine on which the builder
  /// emits the same round schemas as the samples witnessed.
  bool certified_all_p = false;

  [[nodiscard]] std::string to_string() const;
};

/// Certify @p subject from runs sampled at several cube dimensions.
/// Lemma D counts toward certification only under kMultiPort.
[[nodiscard]] DimCertificate certify_dimension_schema(
    std::string subject, PortModel port, std::span<const SampledRun> runs);

}  // namespace hcmm::analysis
