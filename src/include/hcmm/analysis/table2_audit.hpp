#pragma once
// The Table 2 audit: symbolic cost certificates for whole algorithms.
//
// Where cost_audit.hpp checks each collective *builder* against Table 1,
// this pass checks each registered *algorithm* end to end against the
// paper's Table 2 closed forms.  table2_form() renders the startup (a) and
// bandwidth (b) polynomials symbolically in the paper's variables (p = 2^d,
// matrix order n) — the same expressions cost::table2() evaluates
// numerically.  audit_algorithm_table2() runs the algorithm on a 2^dim
// machine at an audit-friendly problem size, statically extracts the
// (a, b) pair of every schedule it emits against the live placement
// (analysis::static_cost — the Machine's own accounting, computed without
// moving a payload), sums them, and diffs the total against the closed
// form.  A divergence beyond the calibrated band is a located
// `cost.table2-divergence` error.
//
// The bands (table2_tolerance) encode the *documented* gaps between the
// executable schedules and the paper's algebra — EXPERIMENTS.md's measured
// worst cases, e.g. DNS one-port runs ~10% below Table 2 because e-cube
// routing pipelines phase 1's two messages that the paper charges
// sequentially, and the rectangular 3D All extension's multi-port z-phase
// sits up to ~1.4x above the ideal rotated-tree bound.  Those known
// divergence classes therefore produce NO findings; anything outside the
// band means an algorithm silently lost its Table 2 cost and fails the
// lint gate.

#include <cstdint>
#include <optional>
#include <string>

#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/cost_audit.hpp"
#include "hcmm/analysis/diagnostics.hpp"

namespace hcmm::analysis {

/// Table 2 startup/bandwidth polynomials, rendered symbolically.
struct Table2Form {
  std::string a;  ///< start-up term, e.g. "2(sqrt(p)-1) + lg p"
  std::string b;  ///< per-word term, e.g. "(n^2/sqrt(p))(2 - 2/sqrt(p) + ...)"

  [[nodiscard]] std::string to_string() const { return "a = " + a + "; b = " + b; }
};

/// The closed form cost::table2() evaluates, as the paper writes it.
[[nodiscard]] Table2Form table2_form(algo::AlgoId id, PortModel port);

/// Calibrated worst-case relative divergence between the executable
/// schedules and the closed forms (EXPERIMENTS.md); the audit band.
struct Table2Tolerance {
  double a = 0.0;
  double b = 0.0;
};
[[nodiscard]] Table2Tolerance table2_tolerance(algo::AlgoId id, PortModel port);

/// One audited sample point: measured static totals vs. the closed form.
struct Table2Sample {
  algo::AlgoId id{};
  PortModel port = PortModel::kOnePort;
  std::uint32_t dim = 0;
  std::size_t n = 0;
  double got_a = 0.0;   ///< start-ups summed over the run's schedules
  double got_b = 0.0;   ///< critical-path words summed over the schedules
  double want_a = 0.0;  ///< cost::table2(...).a at (n, 2^dim)
  double want_b = 0.0;  ///< cost::table2(...).b at (n, 2^dim)
  bool exact = true;    ///< static extraction saw every transferred tag
  bool within = true;   ///< both divergences inside the calibrated band

  [[nodiscard]] std::string to_string() const;
};

/// Largest audit-friendly matrix order for (id, port, p = 2^dim): the
/// algorithm must accept it and the Table 2 conditions (processor bound and
/// multi-port message-size requirement) must hold, so the closed form is
/// being evaluated inside its own validity region.  0 when none exists.
[[nodiscard]] std::size_t table2_audit_n(algo::AlgoId id, PortModel port,
                                         std::uint32_t dim);

/// Run the algorithm at table2_audit_n on a 2^dim machine, statically cost
/// every schedule it emits, and diff against the Table 2 closed form.
/// Appends a `cost.table2-divergence` error per out-of-band term (or
/// `cost.inexact` if extraction failed).  std::nullopt when no
/// audit-friendly n exists or the algorithm does not support @p port.
[[nodiscard]] std::optional<Table2Sample> audit_algorithm_table2(
    algo::AlgoId id, PortModel port, std::uint32_t dim, DiagnosticList& out);

}  // namespace hcmm::analysis
