#pragma once
// Dynamic-trace capture and trace-level verification passes.
//
// The schedule passes in analysis/passes.hpp see one schedule at a time; the
// alias/lifetime and happens-before analyses need the *whole run*: every
// split/join/combine the algorithm performs on the DataStore, interleaved
// with every schedule it executes, segmented by phase.  TraceRecorder
// captures exactly that from a live Machine (store-op observer + phase
// observer + GEMM-batch observer + schedule observer), producing a RunTrace.
//
// Trace passes then abstractly re-execute the trace over an abstract heap
// that reconstructs buffer identity from the event sequence alone — which
// item is a view into which allocation, at what extent, with how many
// outstanding references — without ever looking at host pointers:
//
//   alias-lifetime — the data plane's "borrow checker": nested splits,
//       split-size mismatches, use-after-join, in-place combines into a
//       buffer other views can still observe, parts leaked at end of run
//   happens-before — vector-clock race detection: transfer deliveries are
//       the only cross-node synchronization edges; any two accesses to
//       overlapping extents of one buffer, at least one a write, with
//       incomparable clocks is a race (reported with the witness pair)
//
// The same interpretation predicts the DataPlaneStats the run must produce,
// so every lint run cross-validates the static model against the measured
// counters (plane.divergence when they disagree).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hcmm/analysis/diagnostics.hpp"
#include "hcmm/sim/schedule.hpp"
#include "hcmm/sim/semantic.hpp"
#include "hcmm/sim/store.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm {
class Machine;
}

namespace hcmm::analysis {

/// One captured event.  Store ops carry the StoreEvent verbatim; schedules
/// are indexed into RunTrace::schedules to keep events cheap to copy.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kStoreOp, kSchedule, kPhase, kGemmBatch, kSemantic, kRollback,
  };
  Kind kind = Kind::kStoreOp;
  StoreEvent store;          ///< kStoreOp
  std::size_t schedule = 0;  ///< kSchedule: index into RunTrace::schedules
  std::string phase;         ///< kPhase
  std::size_t gemm_jobs = 0; ///< kGemmBatch
  SemanticEvent sem;         ///< kSemantic (see sim/semantic.hpp)
  // kRollback carries no payload: recovery discarded the store (checkpoint
  // rollback or restart from scratch) and the run rebuilds from empty.
};

/// Everything one run did to the data plane, in order.
struct RunTrace {
  CopyPolicy policy = CopyPolicy::kZeroCopy;
  std::vector<TraceEvent> events;
  std::vector<Schedule> schedules;

  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }
  void clear() {
    events.clear();
    schedules.clear();
  }
};

/// RAII capture: installs the Machine's store-op, phase, GEMM and schedule
/// observers on construction and clears them on destruction.  A host that
/// needs its own schedule observer (hcmm_lint does) should install it after
/// constructing the recorder and forward each schedule to record_schedule().
class TraceRecorder {
 public:
  explicit TraceRecorder(Machine& m);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Append a schedule event (also wired as the Machine's schedule observer).
  void record_schedule(const Schedule& s);

  [[nodiscard]] const RunTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] RunTrace take() { return std::move(trace_); }
  void reset() { trace_.clear(); }

 private:
  Machine& machine_;
  RunTrace trace_;
};

/// Location of a trace diagnostic: the event index, plus — for events that
/// execute a schedule — the round and transfer within it.
struct TraceLoc {
  std::size_t event = kNoLoc;
  std::size_t round = kNoLoc;
  std::size_t transfer = kNoLoc;
};

/// An abstract buffer view at access time: which allocation, what extent,
/// and how many references (item views plus in-flight deliveries) the
/// allocation has — the static twin of Payload::unique().
struct AbstractView {
  std::size_t buffer = kNoLoc;
  std::size_t off = 0;
  std::size_t len = 0;
  std::size_t refs = 1;
};

/// Hooks invoked by interpret_trace() as it re-executes a RunTrace over the
/// abstract heap.  Passes subclass this; default implementations ignore.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Payload words at (node, tag) were read (transfer source read, host
  /// copy/alias, copying combine or join).
  virtual void on_read(NodeId node, Tag tag, const AbstractView& v,
                       const TraceLoc& loc) {
    (void)node, (void)tag, (void)v, (void)loc;
  }
  /// Payload words at (node, tag) were written in place.
  virtual void on_write(NodeId node, Tag tag, const AbstractView& v,
                        const TraceLoc& loc) {
    (void)node, (void)tag, (void)v, (void)loc;
  }
  /// A delivery synchronized dst after src (the only cross-node HB edge).
  virtual void on_edge(NodeId src, NodeId dst, const TraceLoc& loc) {
    (void)src, (void)dst, (void)loc;
  }
  /// An alias/lifetime rule fired.
  virtual void on_violation(std::string_view code, std::string message,
                            std::string hint, const TraceLoc& loc) {
    (void)code, (void)message, (void)hint, (void)loc;
  }
  virtual void on_phase(std::string_view name, const TraceLoc& loc) {
    (void)name, (void)loc;
  }
  virtual void on_gemm_batch(std::size_t jobs, const TraceLoc& loc) {
    (void)jobs, (void)loc;
  }
  /// A semantic provenance declaration (ignored by the alias/race passes;
  /// consumed by analysis/semantic.hpp).
  virtual void on_semantic(const SemanticEvent& ev, const TraceLoc& loc) {
    (void)ev, (void)loc;
  }
  /// Recovery discarded the store and the run restarts from empty state
  /// (checkpoint rollback / restart).  Passes drop their abstract heaps —
  /// surviving items are recovery casualties, not leaks or races.
  virtual void on_rollback(const TraceLoc& loc) { (void)loc; }
};

/// Abstractly re-execute @p trace, reporting accesses, synchronization
/// edges and alias violations through @p sink (may be null), and return the
/// DataPlaneStats the run is predicted to have measured.  Exact for
/// fault-free runs; fault detours and replay take paths the trace does not
/// record, so prediction is only advisory there.
DataPlaneStats interpret_trace(const RunTrace& trace, TraceSink* sink);

/// Everything a trace pass may look at.
struct TraceInput {
  const RunTrace* trace = nullptr;
  Hypercube cube{0};
  PortModel port = PortModel::kOnePort;
};

class TracePass {
 public:
  virtual ~TracePass() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void run(const TraceInput& in, DiagnosticList& out) const = 0;
};

/// Alias/lifetime verification (codes "alias.*"; see file comment).
[[nodiscard]] std::unique_ptr<TracePass> make_alias_lifetime_pass();
/// Vector-clock race detection (code "race.conflicting-access").
[[nodiscard]] std::unique_ptr<TracePass> make_happens_before_pass();

/// Compare the trace-predicted DataPlaneStats against the measured counters
/// of the run, appending one "plane.divergence" error per differing field.
void cross_validate_plane(const RunTrace& trace, const DataPlaneStats& measured,
                          DiagnosticList& out);

}  // namespace hcmm::analysis
