#pragma once
// Pure schedule builders for the hypercube collectives of Table 1 of the
// paper (Johnsson & Ho's optimal broadcasting / personalized communication).
// Each builder is parameterized by a *dimension order* — a permutation of the
// subcube's local dimensions.  One-port collectives use a single instance
// with the identity order; multi-port collectives run log N instances with
// rotated orders concurrently (one spanning binomial tree per rotation, all
// edge-disjoint within every round), which is what buys the extra factor of
// log N bandwidth in Table 1.
//
// Conventions:
//  * ranks are subcube-local (0..N-1); node = sc.node_at(rank);
//  * "tags_by_rank[r]" are the item(s) owned by / destined to local rank r;
//  * builders never touch payloads — the Machine moves data at run time.

#include <functional>
#include <span>
#include <vector>

#include "hcmm/sim/schedule.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::coll {

/// A permutation of 0..d-1 (local dimension indices).
using DimOrder = std::vector<std::uint32_t>;

/// Identity order 0,1,...,d-1.
[[nodiscard]] DimOrder identity_order(std::uint32_t d);
/// Identity order rotated left by @p j: j, j+1, ..., j-1 (mod d).
[[nodiscard]] DimOrder rotated_order(std::uint32_t d, std::uint32_t j);

/// One-to-all broadcast over a spanning binomial tree rooted at local rank
/// @p root_rank.  d rounds; in round r every covered node relays @p tags
/// along dimension order[r].  Sources keep their copies.
[[nodiscard]] Schedule sbt_bcast(const Subcube& sc, std::uint32_t root_rank,
                                 const DimOrder& order,
                                 std::span<const Tag> tags);

/// All-to-one reduction: exact inverse of sbt_bcast with combining moves.
/// Every member must hold every tag in @p tags; afterwards only the root
/// does (element-wise sums).
[[nodiscard]] Schedule sbt_reduce(const Subcube& sc, std::uint32_t root_rank,
                                  const DimOrder& order,
                                  std::span<const Tag> tags);

/// One-to-all personalized broadcast (scatter) by recursive halving: the
/// root initially holds tags_by_rank[r] for every rank r; afterwards each
/// rank holds its own.  d rounds moving (N/2 + N/4 + ... + 1) items.
[[nodiscard]] Schedule rh_scatter(const Subcube& sc, std::uint32_t root_rank,
                                  const DimOrder& order,
                                  std::span<const std::vector<Tag>> tags_by_rank);

/// All-to-one personalized gather: inverse of rh_scatter (no combining);
/// rank r starts with tags_by_rank[r], the root ends with all of them.
[[nodiscard]] Schedule bin_gather(const Subcube& sc, std::uint32_t root_rank,
                                  const DimOrder& order,
                                  std::span<const std::vector<Tag>> tags_by_rank);

/// All-to-all broadcast by recursive doubling: rank r starts with
/// tags_by_rank[r]; everyone ends with everything.  Round r exchanges the
/// 2^r items accumulated so far (single start-up per round).
[[nodiscard]] Schedule rd_allgather(const Subcube& sc, const DimOrder& order,
                                    std::span<const std::vector<Tag>> tags_by_rank);

/// All-to-all reduction (reduce-scatter) by recursive halving: every member
/// holds ALL tags (partial sums); afterwards rank r holds only
/// tags_by_rank[r], fully combined.  Inverse of rd_allgather with combining.
[[nodiscard]] Schedule rh_reduce_scatter(
    const Subcube& sc, const DimOrder& order,
    std::span<const std::vector<Tag>> tags_by_rank);

/// All-to-all personalized communication: item (s,d) starts at rank s and
/// ends at rank d.  Round r routes every item across dimension order[r] if
/// source and destination differ there; each node relays N items per round
/// (N/2 of them crossing), the Table 1 cost (t_s + t_w*N*M/2) * log N.
/// @p tag_fn(s, d) yields the tags of item (s,d); empty means no item.
[[nodiscard]] Schedule aapc(
    const Subcube& sc, const DimOrder& order,
    const std::function<std::vector<Tag>(std::uint32_t, std::uint32_t)>& tag_fn);

}  // namespace hcmm::coll
