#pragma once
// Machine-level collective operations.  Each prep_* function compiles one
// collective for the machine's port model:
//   one-port  : a single identity-order instance of the Table 1 schedule;
//   multi-port: every payload is split into log N chunks and log N
//               dimension-rotated instances run concurrently (edge-disjoint
//               per round), realizing the Table 1 multi-port bandwidths.
// The returned PreparedColl carries the schedule plus the store fix-ups
// (chunk joins) to apply after execution.  Preparing is what performs the
// splits, so prepare only immediately before running.
//
// Several collectives can be overlapped on a multi-port machine by preparing
// each and passing them together to run_prepared — the paper does this
// wherever it says two phases "can occur in parallel" (e.g. the A and B
// broadcasts of the 3DD second phase, which travel along different grid
// dimensions).

#include <span>
#include <vector>

#include "hcmm/sim/machine.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::coll {

/// Post-execution store fix-up: join chunk items back into a whole.
struct JoinAction {
  NodeId node = 0;
  std::vector<Tag> parts;
  Tag out = 0;
};

/// A compiled collective: schedule plus deferred joins.
struct PreparedColl {
  Schedule schedule;
  std::vector<JoinAction> joins;
};

/// One-to-all broadcast of @p tag from @p root to every member of @p sc.
[[nodiscard]] PreparedColl prep_bcast(Machine& m, const Subcube& sc,
                                      NodeId root, Tag tag);

/// Bundle broadcast: several items travel together (one start-up per round).
/// Used e.g. by 3D All_Trans phase 2, where the root broadcasts the q B
/// blocks gathered in phase 1 as one message.
[[nodiscard]] PreparedColl prep_bcast_bundle(Machine& m, const Subcube& sc,
                                             NodeId root,
                                             std::span<const Tag> tags);

/// Bundle all-to-all broadcast: rank r contributes all of tags_by_rank[r];
/// every member ends with every bundle.  Used by 3D All phase 2, where each
/// node's contribution is the set of B pieces acquired in phase 1.
[[nodiscard]] PreparedColl prep_allgather_bundles(
    Machine& m, const Subcube& sc,
    std::span<const std::vector<Tag>> tags_by_rank);

/// All-to-one reduction (element-wise sum) of @p tag into @p root; every
/// member must hold @p tag, and afterwards only the root does.
[[nodiscard]] PreparedColl prep_reduce(Machine& m, const Subcube& sc,
                                       NodeId root, Tag tag);

/// Scatter: the root holds tags_by_rank[r] for every local rank r and keeps
/// only its own; rank r receives tags_by_rank[r].
[[nodiscard]] PreparedColl prep_scatter(Machine& m, const Subcube& sc,
                                        NodeId root,
                                        std::span<const Tag> tags_by_rank);

/// Gather: rank r holds tags_by_rank[r]; afterwards the root holds all.
[[nodiscard]] PreparedColl prep_gather(Machine& m, const Subcube& sc,
                                       NodeId root,
                                       std::span<const Tag> tags_by_rank);

/// All-to-all broadcast: rank r starts with tags_by_rank[r]; every member
/// ends with every tag.
[[nodiscard]] PreparedColl prep_allgather(Machine& m, const Subcube& sc,
                                          std::span<const Tag> tags_by_rank);

/// All-to-all reduction (reduce-scatter): every member holds all tags as
/// partial sums; afterwards rank r holds only tags_by_rank[r], combined.
[[nodiscard]] PreparedColl prep_reduce_scatter(
    Machine& m, const Subcube& sc, std::span<const Tag> tags_by_rank);

/// All-to-all personalized: tags_flat[s * N + d] moves from rank s to rank
/// d (entries may be 0 == absent; diagonal entries stay put).
[[nodiscard]] PreparedColl prep_alltoall(Machine& m, const Subcube& sc,
                                         std::span<const Tag> tags_flat);

/// Execute prepared collectives concurrently (parallel round merge), then
/// apply their joins.
void run_prepared(Machine& m, std::span<PreparedColl> colls);
void run_prepared(Machine& m, PreparedColl&& coll);

// ---- single-shot conveniences (prepare + run) ----
void op_bcast(Machine& m, const Subcube& sc, NodeId root, Tag tag);
void op_reduce(Machine& m, const Subcube& sc, NodeId root, Tag tag);
void op_scatter(Machine& m, const Subcube& sc, NodeId root,
                std::span<const Tag> tags_by_rank);
void op_gather(Machine& m, const Subcube& sc, NodeId root,
               std::span<const Tag> tags_by_rank);
void op_allgather(Machine& m, const Subcube& sc,
                  std::span<const Tag> tags_by_rank);
void op_reduce_scatter(Machine& m, const Subcube& sc,
                       std::span<const Tag> tags_by_rank);
void op_alltoall(Machine& m, const Subcube& sc,
                 std::span<const Tag> tags_flat);

}  // namespace hcmm::coll
