#pragma once
// Ring communication inside a chain subcube.  Ring position c maps to the
// member with local rank gray_encode(c), so positions c and c+1 (mod q) are
// hypercube neighbors and a circular unit shift crosses exactly one link —
// the property Cannon's shift-multiply-add steps rely on (paper §3.2).

#include <span>
#include <vector>

#include "hcmm/sim/schedule.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm::coll {

/// Hypercube member node sitting at ring position @p c of chain @p sc.
[[nodiscard]] NodeId ring_node(const Subcube& sc, std::uint32_t c);

/// Ring position of member @p node.
[[nodiscard]] std::uint32_t ring_position(const Subcube& sc, NodeId node);

/// Circular shift by one position: the holder at position c sends
/// tags_by_pos[c] to position (c + direction) mod q.  One round, one link
/// per node each way; @p direction is +1 (right/down) or -1.
[[nodiscard]] Schedule ring_shift_unit(
    const Subcube& sc, std::span<const std::vector<Tag>> tags_by_pos,
    int direction);

}  // namespace hcmm::coll
