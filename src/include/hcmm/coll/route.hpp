#pragma once
// Machine-level point-to-point phases.  On one-port machines this is plain
// dimension-ordered routing (sim/router.hpp).  On multi-port machines each
// message of m words over h hops is cut into h parts sent along the h
// edge-disjoint rotated dimension orders, pipelining to h*t_s + t_w*m —
// the multi-port cost the paper charges for the DNS and 3DD first phases.
// Contention between different messages is resolved honestly by greedy
// round packing, so saturated patterns (e.g. Cannon's alignment, where
// every node in a chain is sending) serialize instead of assuming ideal
// bandwidth.

#include <span>

#include "hcmm/coll/collectives.hpp"
#include "hcmm/sim/router.hpp"

namespace hcmm::coll {

/// Compile a point-to-point phase for the machine's port model.
[[nodiscard]] PreparedColl prep_route(Machine& m,
                                      std::span<const RouteRequest> reqs);

/// Convenience: prep + run + join.
void op_route(Machine& m, std::span<const RouteRequest> reqs);

}  // namespace hcmm::coll
