#pragma once
// The (a, b) communication-overhead pair with time = a*t_s + b*t_w — the
// shape in which Tables 1 and 2 of the paper tabulate every cost.  Split out
// of cost/model.hpp so the static analyzer can audit against the closed
// forms without pulling in the whole algorithm-level model.

#include "hcmm/sim/types.hpp"

namespace hcmm::cost {

struct CommCost {
  double a = 0.0;
  double b = 0.0;

  [[nodiscard]] double time(const CostParams& cp) const noexcept {
    return a * cp.ts + b * cp.tw;
  }
};

}  // namespace hcmm::cost
