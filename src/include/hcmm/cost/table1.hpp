#pragma once
// Closed forms of Table 1 of the paper (Johnsson & Ho's optimal collective
// costs on an N-node hypercube) for an item size of M words per rank, in
// both port models — exactly what the schedules built by coll/builders (and
// their rotated-tree multi-port compositions in coll/collectives) achieve.
// The static analyzer's cost audit compares every builder's statically
// extracted (a, b) against these expressions.

#include <cstdint>

#include "hcmm/cost/comm_cost.hpp"
#include "hcmm/sim/types.hpp"

namespace hcmm::cost {

/// The Table 1 collectives as implemented by coll/builders.
enum class CollKind : std::uint8_t {
  kBcast,          ///< one-to-all broadcast (sbt_bcast)
  kReduce,         ///< all-to-one reduction (sbt_reduce)
  kScatter,        ///< personalized broadcast (rh_scatter)
  kGather,         ///< personalized gather (bin_gather)
  kAllgather,      ///< all-to-all broadcast (rd_allgather)
  kReduceScatter,  ///< all-to-all reduction (rh_reduce_scatter)
  kAllToAll,       ///< all-to-all personalized (aapc)
};

[[nodiscard]] const char* to_string(CollKind k) noexcept;

/// Table 1 cost for @p n_nodes = 2^d nodes and items of @p m_words words:
/// one-port      a = d for all;  b: bcast/reduce d*M, scatter/gather and
///               (all)gather/reduce-scatter (N-1)*M, all-to-all d*N*M/2.
/// multi-port    same a; b divided by d (the log N rotated edge-disjoint
///               tree instances), provided d >= 2 and M >= d — below that
///               the builders fall back to the one-port schedule, and so
///               does this function.
[[nodiscard]] CommCost table1(CollKind kind, PortModel port,
                              std::uint32_t n_nodes, double m_words);

}  // namespace hcmm::cost
