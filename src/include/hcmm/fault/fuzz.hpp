#pragma once
// Coverage-guided chaos fuzzing of the recovery ladder.
//
// The chaos campaign (tools/hcmm_chaos) no longer just sweeps a fixed
// scenario catalogue: it *searches* the fault-plan space for recovery paths
// it has not exercised yet.  The search is classic coverage-guided fuzzing,
// specialized to the simulator's determinism:
//
//   feature map — every run is distilled into named recovery-path features:
//       which ladder rungs fired (retry, reroute, contraction, rollback,
//       restart, located abort, clean pass), which FaultKinds were observed,
//       and which adjacent ladder escalations co-occurred in one run.  The
//       universe is enumerable up front, so "coverage" is a plain ratio.
//   corpus + mutation — plans that light up novel features are admitted to
//       the corpus; children are derived by seeded structural/transient/
//       scheduled-fault mutations.  Everything is a pure function of the
//       campaign seed: the same seed replays the identical campaign.
//   shrinking — a failing plan is delta-debugged against its failure
//       predicate down to a locally-minimal sub-plan, serialized as a
//       one-line spec that round-trips exactly (the reproducer format
//       checked into CI artifacts; see docs/FAULTS.md).

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "hcmm/fault/plan.hpp"
#include "hcmm/fault/scenarios.hpp"

namespace hcmm::fault {

/// What one chaos run exercised, distilled from its SimReport (or its
/// located abort).  The driver fills this; observed_features() names it.
struct RunObservation {
  bool completed = false;            ///< a product was produced
  std::uint64_t retries = 0;         ///< totals().retries
  std::uint64_t reroutes = 0;        ///< totals().reroutes
  std::uint64_t recoveries = 0;      ///< report.recoveries
  std::uint64_t restarts = 0;        ///< report.restarts
  bool contracted = false;           ///< any dead node was hosted
  std::vector<FaultKind> event_kinds;           ///< located fault events
  FaultKind abort_kind = FaultKind::kNone;      ///< kNone unless aborted
  /// Wire-layer (socket transport) fault counters, from WireStats of a run
  /// over the lossy transport; all zero for simulator-only runs.
  std::uint64_t wire_drops = 0;       ///< frames lost pre-transmit
  std::uint64_t wire_dups = 0;        ///< frames transmitted twice
  std::uint64_t wire_reorders = 0;    ///< frames swapped behind a successor
  std::uint64_t wire_flips = 0;       ///< payload flips (CRC rejections)
  std::uint64_t wire_reconnects = 0;  ///< connection tear-down / re-establish
};

/// The recovery-path feature names @p obs exercised: ladder rungs
/// ("rung:retry"), observed fault kinds ("kind:drop"), and the adjacent
/// ladder escalations that co-occurred in the run ("esc:rollback->restart").
[[nodiscard]] std::vector<std::string> observed_features(
    const RunObservation& obs);

/// Coverage over the enumerable recovery-path feature universe.
class CoverageMap {
 public:
  /// Every feature the fuzzer aims for: the 7 ladder rungs, the located
  /// FaultKind vocabulary, the 5 adjacent escalation transitions, and the
  /// 5 wire-layer fault kinds the socket transport recovers from
  /// ("wire:drop", "wire:duplicate", "wire:reorder", "wire:flip",
  /// "wire:reconnect").
  [[nodiscard]] static const std::vector<std::string>& universe();

  /// Record @p feature; true when it was novel.  Off-universe features are
  /// kept (they show up in json()) but do not count toward ratio().
  bool record(const std::string& feature);
  /// Record every feature; returns how many were novel.
  std::size_t record_all(const std::vector<std::string>& features);

  [[nodiscard]] bool seen(const std::string& feature) const {
    return seen_.contains(feature);
  }
  /// Covered fraction of universe(), in [0, 1].
  [[nodiscard]] double ratio() const;
  /// Universe features not yet seen, in universe order.
  [[nodiscard]] std::vector<std::string> missing() const;
  /// {"universe": N, "covered": M, "ratio": r, "seen": [...], "missing":
  /// [...]} — the CI coverage artifact.
  [[nodiscard]] std::string json() const;

 private:
  std::set<std::string> seen_;
};

/// Hand-tuned second-order seed plans the fuzzer starts from.  Each is
/// chosen to reach a specific corner of the feature universe (burst-
/// modulated retries, detour minefields, replay deaths, corrupt
/// checkpoints, budget exhaustion, structural aborts...), so the campaign
/// crosses the coverage gate quickly and mutation explores from there.
/// Deterministic in (cube, seed); requires cube.dim() >= 3.
[[nodiscard]] std::vector<Scenario> fuzz_seed_corpus(const Hypercube& cube,
                                                     std::uint64_t seed);

/// One deterministic mutation step: derive a child from @p base by applying
/// 1-3 seeded mutations — structural faults (connectivity-preserving except
/// for the deliberate disconnect/hostless mutations, which target the
/// structural abort paths), transient knobs (probabilities, bursts, retry
/// amplification, jitter, detour discovery), scheduled mid-run and replay
/// deaths, checkpoint corruption, and budget tightening.  Pure function of
/// (base, cube, seed).
[[nodiscard]] FaultPlan mutate_plan(const FaultPlan& base,
                                    const Hypercube& cube, std::uint64_t seed);

/// Delta-debug @p plan against @p still_fails down to a locally-minimal
/// failing plan: greedily remove one component at a time — a failed link, a
/// dead node, one scheduled death, one checkpoint corruption, one transient
/// channel, one budget limit — keeping each removal only when the predicate
/// still fails, iterated to a fixpoint.  Every candidate handed to the
/// predicate is a sub-plan of the input; the input itself is assumed
/// failing and is returned unchanged when nothing can be removed.
[[nodiscard]] FaultPlan shrink_plan(
    const FaultPlan& plan,
    const std::function<bool(const FaultPlan&)>& still_fails);

/// One-line reproducer spec: ordered `key=value` tokens joined by ';'
/// ("link=0-1;dead=5;drop=0.03;kill@6=2;ckpt=0;budget=4,0,0,0;...").
/// plan_from_spec(plan_spec(p)) reconstructs p exactly, doubles included.
[[nodiscard]] std::string plan_spec(const FaultPlan& plan);

/// Parse a plan_spec() string.  Throws std::invalid_argument with the
/// offending token on malformed input.
[[nodiscard]] FaultPlan plan_from_spec(const std::string& spec);

/// JSON rendering of a plan for human-facing campaign reports (the spec
/// string is embedded under "spec" so the JSON is also machine-replayable).
[[nodiscard]] std::string plan_json(const FaultPlan& plan);

}  // namespace hcmm::fault
