#pragma once
// Deterministic fault injection for the simulated hypercube.  A FaultPlan
// describes, up front and fully seeded, which links and nodes are down for
// the whole run plus a reproducible stochastic model of transient
// per-message faults (drops, detected corruption, latency spikes).  The
// Machine consumes a plan through set_fault_plan() and applies layered
// recovery: retry with exponential backoff for transient faults, fault-aware
// e-cube rerouting around failed links, and subcube contraction of each dead
// node onto its bit-interleaving partner.  The same plan always produces the
// same faults, the same recovery, and the same measured costs — chaos runs
// are experiments, not noise.  docs/FAULTS.md is the narrative description.

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "hcmm/topology/hypercube.hpp"

namespace hcmm::fault {

/// Canonical undirected key of the link {a, b}.
[[nodiscard]] constexpr std::uint64_t link_key(NodeId a, NodeId b) noexcept {
  const NodeId lo = a < b ? a : b;
  const NodeId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// What went wrong with one message attempt / one structural element.
enum class FaultKind : std::uint8_t {
  kNone,            ///< no fault on this attempt
  kDrop,            ///< message lost in flight; sender must resend
  kCorrupt,         ///< payload rejected at the receiver (CRC); resend
  kSpike,           ///< delivered, but with extra latency
  kReroute,         ///< transfer detoured around failed links / a dead host
  kNodeDeath,       ///< node dead for the whole run; hosted by its partner
  kRetryExhausted,  ///< transient fault persisted past the attempt budget
  kUnroutable,      ///< no healthy path between the physical endpoints
  kHostless,        ///< dead node with every neighbor dead too
  kSilentCorrupt,   ///< payload flipped in flight; CRC passed (ABFT-only)
  kMidRunDeath,     ///< scheduled node death fired mid-run
  kAbftUncorrectable,  ///< ABFT detected corruption it cannot correct
  kDetourFault,        ///< reroute detour link discovered failed mid-flight
  kReplayDeath,        ///< node death during checkpoint rollback/replay
  kCheckpointCorrupt,  ///< checkpoint snapshot failed its integrity digest
  kBudgetExhausted,    ///< recovery budget / deadline exceeded
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// What the lossy wire layer does to one frame transmission.  These are
/// *transport-level* faults — they happen to encoded frames between two
/// rt::Team ranks, below the message abstraction, and are recovered by the
/// socket transport's ARQ (retransmission, dedup, reordering buffer, CRC
/// rejection) rather than by the simulator's recovery ladder.
enum class WireFault : std::uint8_t {
  kNone,       ///< frame goes out untouched
  kDrop,       ///< frame never hits the wire; the RTO retransmits it
  kDuplicate,  ///< frame transmitted twice; receiver dedups by sequence
  kReorder,    ///< frame held back and released after its successor
  kDelay,      ///< frame held back delay_ms, then released (no reordering)
  kFlip,       ///< one payload byte flipped; the CRC rejects the frame
  kReconnect,  ///< connection torn down; session epoch bumps on reconnect
};

[[nodiscard]] const char* to_string(WireFault f) noexcept;

/// Seeded deterministic wire-layer fault process — the "LossyTransport"
/// decoration of the socket backend.  Every decision is a pure hash of
/// (seed, channel, seq, attempt) in the same splitmix64 style as
/// TransientSpec, with its own domain-separation salts, so a given frame
/// transmission always suffers the same fate under the same spec while the
/// streams stay independent of the simulator's fault draws.  `channel` is
/// the directed rank pair ((from << 32) | to); `attempt` is 1 for the first
/// transmission and counts retransmissions up.  Faults stop firing at
/// attempt >= kWireAttemptCeiling so every frame eventually gets through on
/// a live connection — loss shapes timing and recovery work, never
/// delivery, which is what keeps spmd results bit-identical under loss.
struct WireFaultSpec {
  /// Retransmission attempts are fault-exempt from this attempt on: the
  /// escape hatch that bounds worst-case delivery under drop_prob = 1.
  static constexpr std::uint32_t kWireAttemptCeiling = 6;

  std::uint64_t seed = 0;
  double drop_prob = 0.0;       ///< lose the frame, per transmission
  double dup_prob = 0.0;        ///< transmit the frame twice
  double reorder_prob = 0.0;    ///< swap the frame behind its successor
  double delay_prob = 0.0;      ///< hold the frame delay_ms before sending
  std::uint32_t delay_ms = 5;   ///< held-frame release delay
  double flip_prob = 0.0;       ///< flip one payload byte (CRC rejects)
  double reconnect_prob = 0.0;  ///< tear the connection down pre-transmit

  [[nodiscard]] bool any() const noexcept {
    return drop_prob + dup_prob + reorder_prob + delay_prob + flip_prob +
               reconnect_prob >
           0.0;
  }

  /// Deterministic fate of transmission @p attempt of frame @p seq on
  /// @p channel: one of kNone / kDrop / kDuplicate / kReorder / kDelay /
  /// kFlip from a single hash draw against the stacked thresholds.
  [[nodiscard]] WireFault frame_fault(std::uint64_t channel, std::uint64_t seq,
                                      std::uint32_t attempt) const noexcept;

  /// True iff the connection is torn down instead of transmitting this
  /// frame (an independent salted stream, so reconnects compose with the
  /// per-frame faults above).
  [[nodiscard]] bool reconnect_hit(std::uint64_t channel, std::uint64_t seq,
                                   std::uint32_t attempt) const noexcept;

  /// Deterministic jitter unit in [0, 1) for retransmission backoff —
  /// the same decorrelation machinery as TransientSpec::jitter, keyed on
  /// the wire coordinates.
  [[nodiscard]] double jitter_unit(std::uint64_t channel, std::uint64_t seq,
                                   std::uint32_t attempt) const noexcept;

  /// Deterministic site hash of a kFlip: which payload byte flips and by
  /// which XOR mask (low 8 bits, never 0).
  [[nodiscard]] std::uint64_t flip_site(std::uint64_t channel,
                                        std::uint64_t seq,
                                        std::uint32_t attempt) const noexcept;
};

/// One located fault occurrence — the unit of chaos diagnosis.  `round` is
/// the machine's run-wide round sequence number at the time of the fault
/// (0-based, reset together with the stats).
struct FaultEvent {
  FaultKind kind = FaultKind::kNone;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t round = 0;
  std::uint32_t attempt = 0;
  std::string detail;

  /// "drop: 3 -> 7, round 12, attempt 2 (detail)"
  [[nodiscard]] std::string to_string() const;
};

/// Thrown when recovery is impossible (retry budget exhausted, healthy cube
/// disconnected, dead node with no live partner).  Carries the located
/// FaultEvent so a failed chaos run aborts with a diagnosis, never a crash.
class FaultAbort : public std::runtime_error {
 public:
  explicit FaultAbort(FaultEvent event);
  [[nodiscard]] const FaultEvent& event() const noexcept { return event_; }

 private:
  FaultEvent event_;
};

/// Permanent structural faults: links that never carry a message again and
/// nodes that are dead for the whole run.  Ordered containers so iteration
/// (reports, host resolution) is deterministic.
class FaultSet {
 public:
  void fail_link(NodeId a, NodeId b);
  void kill_node(NodeId n);

  [[nodiscard]] bool link_failed(NodeId a, NodeId b) const {
    return links_.contains(link_key(a, b));
  }
  [[nodiscard]] bool node_dead(NodeId n) const { return dead_.contains(n); }
  [[nodiscard]] bool empty() const noexcept {
    return links_.empty() && dead_.empty();
  }
  [[nodiscard]] const std::set<std::uint64_t>& failed_links() const noexcept {
    return links_;
  }
  [[nodiscard]] const std::set<NodeId>& dead_nodes() const noexcept {
    return dead_;
  }

  /// True iff the live nodes of @p cube are mutually reachable over healthy
  /// links (the precondition for fault-aware rerouting to always succeed).
  [[nodiscard]] bool connected(const Hypercube& cube) const;

  /// Physical host of @p n under subcube contraction: n itself when alive,
  /// otherwise its lowest-dimension live neighbor (the bit-interleaving
  /// partner).  Throws FaultAbort(kHostless) when every neighbor is dead.
  [[nodiscard]] NodeId host(const Hypercube& cube, NodeId n) const;

 private:
  std::set<std::uint64_t> links_;
  std::set<NodeId> dead_;
};

/// Correlated-burst modulation of the transient model: real transports fail
/// in bursts, not as independent per-message events (CommBench-style
/// measurements, PAPERS.md).  Rounds inside a burst window see every
/// transient probability multiplied by `factor`.  The window position inside
/// each cycle is a pure hash of (seed, cycle), so bursts move around from
/// cycle to cycle but replay bit-identically.
struct BurstSpec {
  std::uint32_t period = 0;  ///< rounds per burst cycle; 0 disables
  std::uint32_t len = 0;     ///< burst window length in rounds
  double factor = 1.0;       ///< probability multiplier inside the window

  [[nodiscard]] bool active() const noexcept {
    return period > 0 && len > 0 && factor != 1.0;
  }
};

/// Seeded model of per-message-attempt transient faults.  Every decision is
/// a pure hash of (seed, round, src, dst, attempt) — no mutable RNG state —
/// so replays and resimulations see the identical fault pattern.
struct TransientSpec {
  std::uint64_t seed = 0;
  double drop_prob = 0.0;     ///< message lost, per attempt
  double corrupt_prob = 0.0;  ///< detected corruption (resend), per attempt
  double spike_prob = 0.0;    ///< latency spike, per attempt
  double spike_time = 0.0;    ///< simulated time added by one spike
  std::uint32_t max_attempts = 6;  ///< total attempts incl. the first
  double backoff_base = 0.0;  ///< wait before retry k: backoff_base * 2^(k-1)
  /// Silent data corruption, per delivered message: the payload is altered
  /// in flight but the CRC still passes, so the transport delivers it and
  /// charges nothing.  Invisible to the retry/reroute recovery layers; only
  /// ABFT checksum verification (abft::protect) can catch it.
  double silent_prob = 0.0;
  /// Correlated burst windows (see BurstSpec).  Inert without base
  /// probabilities, so the empty-plan bit-identity guarantee is unaffected.
  BurstSpec burst{};
  /// Faults that target recovery traffic: retransmission attempts (attempt
  /// >= 2) see drop_prob and corrupt_prob multiplied by this factor — the
  /// link that just dropped a message is more likely to drop the resend.
  double retry_factor = 1.0;
  /// Deterministic backoff jitter: retry k waits
  /// backoff_base * 2^(k-1) * (1 + jitter * u) with u a pure hash in [0, 1),
  /// so synchronized retries across links decorrelate instead of storming.
  /// 0 keeps the historical bit-identical backoff.
  double jitter = 0.0;
  /// Per detour hop: probability that the hop's link is *discovered* failed
  /// mid-flight (a second-order fault only reroute recovery can trigger).
  /// The Machine converts the discovery into a permanent structural fault
  /// and re-plans the detour from the current node.
  double detour_fail_prob = 0.0;

  [[nodiscard]] bool any() const noexcept {
    return drop_prob + corrupt_prob + spike_prob + silent_prob > 0.0;
  }
};

/// Run-wide budgets on recovery work.  0 fields are unlimited.  Exceeding a
/// budget raises a located FaultAbort(kBudgetExhausted): when the machine
/// cannot finish within its recovery allowance it must abort cleanly at the
/// point of exhaustion, never thrash.
struct RecoveryBudget {
  std::uint64_t max_retries = 0;     ///< transient resends across the run
  std::uint64_t max_reroutes = 0;    ///< detours incl. mid-flight re-plans
  std::uint64_t max_recoveries = 0;  ///< checkpoint rollbacks + restarts
  double deadline = 0.0;             ///< cap on cumulative fault_delay

  [[nodiscard]] bool any() const noexcept {
    return max_retries > 0 || max_reroutes > 0 || max_recoveries > 0 ||
           deadline > 0.0;
  }
};

/// A full fault scenario: structural faults, the transient model, and
/// scheduled mid-run node deaths.
struct FaultPlan {
  FaultSet set;
  TransientSpec transient;
  /// Scheduled deaths: at run-wide round `r` (before the round executes),
  /// every node in kill_at[r] dies.  The Machine raises a located
  /// FaultAbort(kMidRunDeath); the ABFT recovery driver converts the death
  /// into a permanent structural fault, rolls back to the last phase
  /// checkpoint, and replays.  Ordered map so iteration is deterministic.
  std::map<std::uint64_t, std::set<NodeId>> kill_at;
  /// Second-order deaths: node dies while the machine is *replaying* the
  /// checkpointed prefix after a rollback.  Keyed by run-wide round like
  /// kill_at, but only consulted while replay is in progress, so the fault
  /// specifically targets recovery traffic.  Raises kReplayDeath.
  std::map<std::uint64_t, std::set<NodeId>> kill_at_replay;
  /// Checkpoint-state corruption: the k-th checkpoint taken during the run
  /// (0-based ordinal, monotone across rollbacks) fails its integrity digest
  /// when a rollback later tries to restore it.  Raises kCheckpointCorrupt;
  /// the recovery driver escalates to a restart from scratch.
  std::set<std::uint64_t> corrupt_checkpoint;
  /// Run-wide recovery budgets / deadline (0 = unlimited).
  RecoveryBudget budget{};
  /// Wire-layer fault process for the socket transport (the LossyTransport
  /// decoration).  Invisible to the simulated Machine — only rt::Team's
  /// socket backend consumes it.
  WireFaultSpec wire{};

  void kill_node_at_round(NodeId n, std::uint64_t round) {
    kill_at[round].insert(n);
  }
  void kill_node_at_replay_round(NodeId n, std::uint64_t round) {
    kill_at_replay[round].insert(n);
  }

  [[nodiscard]] bool empty() const noexcept {
    return set.empty() && !transient.any() && kill_at.empty() &&
           kill_at_replay.empty() && corrupt_checkpoint.empty() &&
           !budget.any() && !wire.any();
  }

  /// Deterministic outcome of one message attempt: kNone (delivered),
  /// kSpike (delivered late), or kDrop / kCorrupt (must resend).
  [[nodiscard]] FaultKind attempt_outcome(std::uint64_t round, NodeId src,
                                          NodeId dst,
                                          std::uint32_t attempt) const noexcept;

  /// True iff the message sent on logical link (src, dst) in run-wide round
  /// @p round is silently corrupted.  Keyed on *logical* endpoints so the
  /// decision is independent of contraction state and replays bit-identically
  /// during checkpoint recovery.
  [[nodiscard]] bool silent_hit(std::uint64_t round, NodeId src,
                                NodeId dst) const noexcept;

  /// Deterministic site hash of a silent corruption — the corrupted tag,
  /// element index, and delta are all derived from it.
  [[nodiscard]] std::uint64_t silent_site(std::uint64_t round, NodeId src,
                                          NodeId dst) const noexcept;

  /// True iff run-wide round @p round falls inside a correlated burst
  /// window (pure hash of the transient seed and the round's burst cycle).
  [[nodiscard]] bool in_burst(std::uint64_t round) const noexcept;

  /// True iff detour hop (a, b) attempted in round @p round is discovered
  /// failed mid-flight.  Keyed on the canonical link so both directions
  /// agree, and salted so it is independent of attempt_outcome draws.
  [[nodiscard]] bool detour_hit(std::uint64_t round, NodeId a,
                                NodeId b) const noexcept;

  /// Deterministic jitter unit in [0, 1) for retry @p attempt of message
  /// (src, dst) in round @p round; scales the backoff by
  /// (1 + transient.jitter * u).
  [[nodiscard]] double jitter_unit(std::uint64_t round, NodeId src, NodeId dst,
                                   std::uint32_t attempt) const noexcept;
};

}  // namespace hcmm::fault
