#pragma once
// Named, seeded fault scenarios — the catalogue the chaos campaign
// (tools/hcmm_chaos) sweeps and the property tests draw from.  Every
// scenario is a pure function of (cube, seed): the same arguments always
// pick the same failed links, dead nodes and transient parameters.

#include <cstdint>
#include <string>
#include <vector>

#include "hcmm/fault/plan.hpp"

namespace hcmm::fault {

/// One catalogue entry: a human-readable name plus the plan itself.
struct Scenario {
  std::string name;
  FaultPlan plan;
};

/// The standard chaos catalogue for @p cube: an empty baseline plan,
/// single-link failure, transient drops/corruption, a latency-spike storm,
/// single node death, and a combined "storm" scenario.  Every structural
/// fault set keeps the live cube connected, so recovery is always possible
/// and a correct product is the required outcome.
[[nodiscard]] std::vector<Scenario> chaos_scenarios(const Hypercube& cube,
                                                    std::uint64_t seed);

/// Up to @p count random failed links chosen so the cube stays connected
/// after every addition (links whose removal would disconnect it are
/// skipped).  Deterministic in (cube, seed, count).
[[nodiscard]] FaultSet random_connected_link_faults(const Hypercube& cube,
                                                    std::uint64_t seed,
                                                    std::uint32_t count);

/// A random node, live under @p base, whose death keeps the live cube
/// connected — the victim chaos death scenarios use.  Deterministic in
/// (cube, seed, base).
[[nodiscard]] NodeId safe_victim(const Hypercube& cube, std::uint64_t seed,
                                 const FaultSet& base);

/// The ABFT chaos catalogue: silent-corruption sweeps at rising intensity
/// plus a silent+transient mix.  These faults pass the transport CRC, so
/// the retry/reroute layers never see them — only checksum-protected
/// (abft::protect) runs can detect, correct, or cleanly refuse them.
/// Unprotected runs under these plans produce silently wrong products; the
/// campaign must never sweep them unprotected.
[[nodiscard]] std::vector<Scenario> abft_scenarios(const Hypercube& cube,
                                                   std::uint64_t seed);

}  // namespace hcmm::fault
