#pragma once
// Local (single-node) dense multiply kernels.  The distributed algorithms
// spend their compute time in gemm_accumulate on sub-blocks; the tiled and
// threaded variants exist so the examples/benches can show realistic local
// arithmetic rates, and the naive variant is the oracle the others are
// tested against.
//
// All kernels share one arithmetic contract: element (i, j) accumulates its
// initial value plus a(i,k)*b(k,j) over strictly ascending k, one rounded
// multiply and one rounded add per term.  That makes every kernel (naive,
// legacy tiled, register-blocked micro) bit-identical — reordering i/j tiling
// never touches a given element's summation order.
//
// Operands are MatrixView borrows, so callers can feed store payload slices
// straight into the kernels without materializing a Matrix.

#include <cstddef>
#include <cstdint>

#include "hcmm/matrix/matrix.hpp"

namespace hcmm {

class ThreadPool;

/// C = A * B with the textbook triple loop (i-k-j order).  Oracle kernel.
[[nodiscard]] Matrix multiply_naive(const Matrix& a, const Matrix& b);

/// Kernel selector for the accumulate/tiled/threaded entry points.  kMicro
/// (default) is the register-blocked packed microkernel; kLegacyTiled is the
/// previous cache-tiled scalar kernel, kept for bench A/B comparisons.
/// Process-wide; both produce bit-identical results.
enum class GemmKernel : std::uint8_t { kMicro, kLegacyTiled };

void set_gemm_kernel(GemmKernel k) noexcept;
[[nodiscard]] GemmKernel gemm_kernel() noexcept;

/// C += A * B.  This is the kernel every distributed algorithm calls on its
/// local sub-blocks.
void gemm_accumulate(MatrixView a, MatrixView b, Matrix& c);

/// C = A * B.
[[nodiscard]] Matrix multiply_tiled(MatrixView a, MatrixView b);

/// C = A * B with rows of C partitioned across @p pool's threads.
[[nodiscard]] Matrix multiply_threaded(MatrixView a, MatrixView b,
                                       ThreadPool& pool);

/// Number of fused multiply-add operations a m x k by k x n product performs.
[[nodiscard]] constexpr std::uint64_t gemm_flops(std::size_t m, std::size_t k,
                                                 std::size_t n) noexcept {
  return static_cast<std::uint64_t>(m) * k * n;
}

}  // namespace hcmm
