#pragma once
// Local (single-node) dense multiply kernels.  The distributed algorithms
// spend their compute time in gemm_accumulate on sub-blocks; the tiled and
// threaded variants exist so the examples/benches can show realistic local
// arithmetic rates, and the naive variant is the oracle the others are
// tested against.
//
// All kernels share one arithmetic contract: element (i, j) accumulates its
// initial value plus a(i,k)*b(k,j) over strictly ascending k, one rounded
// multiply and one rounded add per term.  That makes every kernel (naive,
// legacy tiled, register-blocked micro) bit-identical — reordering i/j tiling
// never touches a given element's summation order.
//
// Operands are MatrixView borrows, so callers can feed store payload slices
// straight into the kernels without materializing a Matrix.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hcmm/matrix/matrix.hpp"

namespace hcmm {

class ThreadPool;

/// C = A * B with the textbook triple loop (i-k-j order).  Oracle kernel.
[[nodiscard]] Matrix multiply_naive(const Matrix& a, const Matrix& b);

/// Kernel selector for the accumulate/tiled/threaded entry points.
///
///  * kMicro (default) — register-blocked packed scalar microkernel; obeys
///    the strictly-ascending-k one-rounding-per-step contract, so it is
///    bit-identical to multiply_naive.  This is the bit-exact oracle rung
///    of the verification ladder; distributed algorithms and ABFT stay here.
///  * kLegacyTiled — the previous cache-tiled scalar kernel, also
///    bit-exact, kept for bench A/B comparisons.
///  * kVector — the SIMD path: runtime-dispatched microkernel (AVX-512 ->
///    AVX2+FMA -> NEON -> packed scalar) under the full BLIS mc/kc/nc
///    blocking hierarchy with packed A micropanels and packed B panels.
///    FMA fuses each term's rounding, so results are ULP-bounded against
///    the oracle (gemm_verify.hpp), not bit-identical — opt in where that
///    ladder rung is acceptable (benches, the SPMD runtime path).
///
/// Process-wide.  The HCMM_GEMM_KERNEL environment variable overrides the
/// default: "oracle"/"micro", "legacy", "vector" select the path; "scalar",
/// "avx2", "avx512", "neon" select the vector path pinned to that
/// microkernel (an unavailable ISA or any other value throws CheckError —
/// same strict parsing as HCMM_RT_TIMEOUT_MS).
enum class GemmKernel : std::uint8_t { kMicro, kLegacyTiled, kVector };

void set_gemm_kernel(GemmKernel k) noexcept;
[[nodiscard]] GemmKernel gemm_kernel() noexcept;

/// Identity of a gemm path, for bench JSON rows and calibration output.
struct GemmIdent {
  std::string path;  ///< "micro" | "legacy" | "vector"
  std::string isa;   ///< microkernel ISA; "scalar-exact" for the bit-exact paths
  std::size_t mr = 0, nr = 0;  ///< register tile of the path's microkernel
};

/// Identity of the currently selected process-wide kernel.
[[nodiscard]] GemmIdent gemm_ident();

/// Identity of the vector path (which microkernel dispatch resolved to),
/// independent of the process-wide selector.  First call resolves dispatch:
/// HCMM_GEMM_KERNEL pin if set, else the widest ISA the CPU supports, and
/// gates the chosen kernel on a quick ULP-bounded self-test against the
/// oracle (CheckError if it fails — a miscompiled kernel never dispatches).
[[nodiscard]] GemmIdent gemm_vector_ident();

/// ISA names the vector path can be pinned to on this build + machine
/// (always contains "scalar").  These are the dispatchable kernels the
/// equivalence tests sweep.
[[nodiscard]] std::vector<std::string> gemm_vector_isas();

/// Drops the cached HCMM_GEMM_KERNEL parse and the resolved vector kernel
/// so tests can exercise the override; also resets the process-wide
/// selector to its (env-aware) default.
void reset_gemm_env_for_testing();

/// C += A * B.  This is the kernel every distributed algorithm calls on its
/// local sub-blocks; it follows the process-wide selector.
void gemm_accumulate(MatrixView a, MatrixView b, Matrix& c);

/// C += A * B through the vector path regardless of the process-wide
/// selector (still honoring an HCMM_GEMM_KERNEL ISA pin).  The SPMD runtime
/// ranks call this: their products are verified under the ULP rung, not the
/// bit-exact one, so they get the fast kernels without flipping the global
/// default under the simulator's feet.
void gemm_accumulate_fast(MatrixView a, MatrixView b, Matrix& c);

/// C = A * B.
[[nodiscard]] Matrix multiply_tiled(MatrixView a, MatrixView b);

/// C = A * B with rows of C partitioned across @p pool's threads.
[[nodiscard]] Matrix multiply_threaded(MatrixView a, MatrixView b,
                                       ThreadPool& pool);

/// Number of fused multiply-add operations a m x k by k x n product performs.
[[nodiscard]] constexpr std::uint64_t gemm_flops(std::size_t m, std::size_t k,
                                                 std::size_t n) noexcept {
  return static_cast<std::uint64_t>(m) * k * n;
}

}  // namespace hcmm
