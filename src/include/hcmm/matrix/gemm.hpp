#pragma once
// Local (single-node) dense multiply kernels.  The distributed algorithms
// spend their compute time in gemm_accumulate on sub-blocks; the tiled and
// threaded variants exist so the examples/benches can show realistic local
// arithmetic rates, and the naive variant is the oracle the others are
// tested against.

#include <cstddef>

#include "hcmm/matrix/matrix.hpp"

namespace hcmm {

class ThreadPool;

/// C = A * B with the textbook triple loop (i-k-j order).  Oracle kernel.
[[nodiscard]] Matrix multiply_naive(const Matrix& a, const Matrix& b);

/// C += A * B, cache-tiled.  This is the kernel every distributed algorithm
/// calls on its local sub-blocks.
void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B, cache-tiled.
[[nodiscard]] Matrix multiply_tiled(const Matrix& a, const Matrix& b);

/// C = A * B with rows of C partitioned across @p pool's threads.
[[nodiscard]] Matrix multiply_threaded(const Matrix& a, const Matrix& b,
                                       ThreadPool& pool);

/// Number of fused multiply-add operations a m x k by k x n product performs.
[[nodiscard]] constexpr std::uint64_t gemm_flops(std::size_t m, std::size_t k,
                                                 std::size_t n) noexcept {
  return static_cast<std::uint64_t>(m) * k * n;
}

}  // namespace hcmm
