#pragma once
// The ULP-bounded rung of the gemm verification ladder.
//
// The ladder has two rungs:
//
//   1. Bit-exact:  kMicro and kLegacyTiled follow the strictly-ascending-k
//      one-rounded-multiply-one-rounded-add contract, so they equal
//      multiply_naive to the bit.  Distributed algorithms and ABFT run on
//      this rung by default — every existing bit-identity gate still holds.
//
//   2. ULP-bounded:  the vectorized kernels keep ascending-k accumulation
//      per element but fuse each term's multiply and add into one rounding
//      (FMA), and edge tiles accumulate a panel partial sum before adding
//      it to C.  Both deviations are classical backward-stable roundoff:
//      per element the difference from the oracle is at most
//
//          |c_vec - c_oracle| <= 2 * k * eps * amax * bmax
//
//      (k rounded terms, each of magnitude <= amax*bmax, each rounding
//      contributing <= eps of its term, for both sequences).  That is the
//      same error model abft::residue_tolerance applies to its n-term
//      checksum sums, with the generic 1e-10 headline constant replaced by
//      the sharp per-term bound.  gemm_tolerance() evaluates it; a safety
//      factor of 8 covers the edge-tile reassociation and keeps the gate
//      meaningful: real kernel bugs are wrong by whole values, ~1e12 ULPs.
//
// compare_gemm() applies the bound element-wise and also reports the worst
// ULP distance, so the gate reads "within B(k) ULPs at accumulation scale".

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hcmm/matrix/matrix.hpp"

namespace hcmm {

/// Distance in units-in-the-last-place between two doubles: the number of
/// representable doubles strictly between them (0 when bitwise equal).
/// Signed values are mapped onto a monotone integer line, so the distance
/// across +/-0 is well defined (ulp_distance(-0.0, +0.0) == 0).  Any NaN
/// yields the maximum distance.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b);

/// Element-wise absolute tolerance for a k-deep gemm accumulation over
/// operands bounded by |a| <= amax, |b| <= bmax (see the error model above).
[[nodiscard]] double gemm_tolerance(std::size_t k, double amax, double bmax);

/// max |m_ij| over all elements (0 for empty matrices).
[[nodiscard]] double max_abs(const Matrix& m);

/// Result of a ULP-bounded comparison of a computed product against the
/// bit-exact oracle's product.
struct GemmCompare {
  bool ok = true;             ///< every element within gemm_tolerance
  double max_abs_diff = 0.0;  ///< worst |test - oracle|
  double tolerance = 0.0;     ///< the bound applied
  std::uint64_t max_ulp = 0;  ///< worst element-wise ULP distance
  std::size_t over = 0;       ///< elements beyond tolerance
};

/// Compare @p test against @p oracle (same shape) for a product whose inner
/// dimension was @p k and whose operands were bounded by amax/bmax.
[[nodiscard]] GemmCompare compare_gemm(const Matrix& test, const Matrix& oracle,
                                       std::size_t k, double amax, double bmax);

/// One shape of the kernel-equivalence matrix.
struct LadderRow {
  std::size_t m = 0, k = 0, n = 0;
  GemmCompare cmp;
};

/// Report of one vectorized kernel gated against the bit-exact oracle
/// across the edge-shape matrix (tile remainders, k < kc, k spanning
/// several kc panels, single rows/columns, 1x1).
struct LadderReport {
  std::string isa;  ///< microkernel the vector path resolved to
  std::vector<LadderRow> rows;
  bool ok = true;
};

/// Run the currently selected vector kernel over the edge-shape matrix and
/// compare against the oracle under the ULP bound.  This is the gate the
/// tests and the bench harness apply to every dispatchable kernel.
[[nodiscard]] LadderReport verify_vector_kernel();

}  // namespace hcmm
