#pragma once
// Deterministic matrix generators for tests, examples and benchmarks.

#include <cstdint>

#include "hcmm/matrix/matrix.hpp"
#include "hcmm/support/prng.hpp"

namespace hcmm {

/// Uniform random entries in [-1, 1), reproducible from @p seed.
[[nodiscard]] Matrix random_matrix(std::size_t rows, std::size_t cols,
                                   std::uint64_t seed);

/// Entry (i,j) = i*cols + j; handy for tracking data movement in tests
/// because every element value identifies its origin.
[[nodiscard]] Matrix index_matrix(std::size_t rows, std::size_t cols);

/// Symmetric diagonally-dominant matrix (useful for iterative examples).
[[nodiscard]] Matrix spd_matrix(std::size_t n, std::uint64_t seed);

/// Row-stochastic matrix (rows sum to 1) — a random-walk transition matrix,
/// used by the Markov-chain example.
[[nodiscard]] Matrix stochastic_matrix(std::size_t n, std::uint64_t seed);

}  // namespace hcmm
