#pragma once
// Dense row-major matrix of doubles.  Deliberately minimal: the distributed
// algorithms move *blocks* of these around, so the operations that matter are
// block extraction/insertion and the local multiply kernels (gemm.hpp).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hcmm {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix adopting @p data (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::vector<double> take() && noexcept { return std::move(data_); }

  /// Copy of the h x w block whose top-left element is (r0, c0).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0, std::size_t h,
                             std::size_t w) const;

  /// Overwrite the block at (r0, c0) with @p b.
  void set_block(std::size_t r0, std::size_t c0, const Matrix& b);

  /// Overwrite the h x w block at (r0, c0) with the row-major words of
  /// @p src (size h*w) — pastes borrowed payload views without an
  /// intermediate Matrix.
  void set_block(std::size_t r0, std::size_t c0, std::size_t h, std::size_t w,
                 std::span<const double> src);

  /// Add @p b element-wise into the block at (r0, c0).
  void add_block(std::size_t r0, std::size_t c0, const Matrix& b);

  /// Add the row-major words of @p src (size h*w) element-wise into the
  /// h x w block at (r0, c0).
  void add_block(std::size_t r0, std::size_t c0, std::size_t h, std::size_t w,
                 std::span<const double> src);

  /// Element-wise in-place addition; shapes must match.
  Matrix& operator+=(const Matrix& other);

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] static Matrix zeros(std::size_t rows, std::size_t cols);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Borrowed row-major view of a rows x cols block of doubles — what the gemm
/// kernels consume, so operands can come straight out of store payloads
/// without being copied into a Matrix first.  Non-owning: the referenced
/// words must outlive the view.
struct MatrixView {
  const double* ptr = nullptr;
  std::size_t rows = 0;
  std::size_t cols = 0;

  MatrixView() = default;
  MatrixView(const double* p, std::size_t r, std::size_t c)
      : ptr(p), rows(r), cols(c) {}
  // NOLINTNEXTLINE(google-explicit-constructor): Matrix is-a view source.
  MatrixView(const Matrix& m)
      : ptr(m.data().data()), rows(m.rows()), cols(m.cols()) {}

  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return ptr[r * cols + c];
  }
  [[nodiscard]] std::size_t size() const noexcept { return rows * cols; }
};

/// max_{ij} |a_ij - b_ij|; shapes must match.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(const Matrix& m);

/// True iff shapes match and max_abs_diff <= tol.
[[nodiscard]] bool approx_equal(const Matrix& a, const Matrix& b, double tol);

}  // namespace hcmm
