#pragma once
// TCP socket backend for rt::Team: the same SPMD programs, over real I/O.
//
// Topology: one *endpoint* per rank — a loopback listener plus a dedicated
// I/O thread owning every socket of that rank — and a full mesh of
// connections between ranks, the higher rank connecting to the lower
// rank's listener.  Ranks may all live in one process (the loopback
// configuration the tests and the calibration tool use) or be spread over
// many processes (tools/hcmm_rank), one endpoint each.
//
// Reliability is end-to-end at the frame layer, not delegated to TCP,
// because the LossyTransport decorator deliberately breaks the wire:
//
//   ARQ           — every data frame carries a per-connection sequence
//                   number; the receiver delivers in order, buffers
//                   reordered frames, drops duplicates, and returns
//                   cumulative acks.  Unacked frames retransmit on an
//                   exponential-backoff timer whose jitter comes from the
//                   FaultPlan wire machinery (fault::WireFaultSpec::
//                   jitter_unit), so retry schedules are deterministic.
//   CRC           — payload corruption (injected bit flips) is caught by
//                   the payload CRC; the frame is dropped unacked and the
//                   retransmission heals it.
//   heartbeats    — each connection beacons at timeout/8; silence past the
//                   failure-detector horizon (the Team timeout) marks the
//                   peer dead.  A *slow* rank never trips this: its
//                   endpoint's I/O thread keeps beaconing while the rank
//                   thread computes, preserving the mailbox backend's
//                   slow-vs-dead semantics.
//   reconnection  — a broken connection is re-established by the connector
//                   side under a new session epoch, at most
//                   kReconnectAttempts consecutive times; frames from a
//                   stale epoch are discarded, and unacked frames are
//                   retransmitted under the new epoch.  Exhausting the
//                   budget (or a vanished listener) marks the peer dead
//                   with a located diagnosis.
//   death notices — a rank's primary failure is broadcast as a kDeath
//                   frame so remote waiters fail fast with DeadPeerError
//                   instead of waiting out the detector horizon.
//   run isolation — frames carry the Team::run generation; frames from an
//                   earlier run are acked (to stop their retransmission)
//                   but never delivered into the current run.
//
// Wire-fault injection (drop / duplicate / reorder / delay / bit-flip /
// forced reconnect) sits exactly at the frame-transmit seam, driven by the
// seeded pure-hash fault::WireFaultSpec carried in a FaultPlan, so chaos
// campaigns replay bit-for-bit.  Control frames (ack, heartbeat, death,
// hello) are exempt — faults attack data, not the failure detector — and
// fault draws stop at WireFaultSpec::kWireAttemptCeiling retransmissions of
// the same frame, so delivery over a live connection is guaranteed and
// results stay bit-identical to the mailbox backend.

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "hcmm/fault/plan.hpp"
#include "hcmm/runtime/transport.hpp"

namespace hcmm::rt {

namespace detail {
class SocketTeam;
}

class SocketTransport : public Transport {
 public:
  /// Consecutive failed reconnection attempts after which a peer is
  /// declared dead (the counter resets on every successful reconnect).
  static constexpr std::uint32_t kReconnectAttempts = 3;

  struct Config {
    std::uint32_t ranks = 0;
    /// Ranks hosted by this process (ascending, non-empty).
    std::vector<std::uint32_t> local_ranks;
    /// Failure-detector horizon; normally the Team recv timeout.
    std::chrono::milliseconds horizon{30000};
    /// Wire-fault injection; default (empty) transmits cleanly.
    fault::WireFaultSpec wire{};
  };

  /// Binds one loopback listener per local rank; no connections yet.
  explicit SocketTransport(Config cfg);
  ~SocketTransport() override;

  /// Listener port of local rank @p rank (valid after construction, before
  /// connect_mesh) — what a multi-process harness exchanges out of band.
  [[nodiscard]] std::uint16_t listen_port(std::uint32_t rank) const;

  /// Establish the full mesh: @p ports maps every rank to its listener
  /// port.  Blocks until every connection this side initiates is up, then
  /// starts the I/O threads.  Must be called exactly once before use.
  void connect_mesh(const std::vector<std::uint16_t>& ports);

  [[nodiscard]] const char* name() const noexcept override;
  [[nodiscard]] std::uint32_t ranks() const noexcept override;
  [[nodiscard]] const std::vector<std::uint32_t>& local_ranks()
      const noexcept override;
  void begin_run() override;
  void send(std::uint32_t from, std::uint32_t to, std::uint64_t tag,
            Matrix m) override;
  [[nodiscard]] RecvStatus wait_recv(std::uint32_t to, std::uint32_t from,
                                     std::uint64_t tag,
                                     std::chrono::milliseconds slice,
                                     Matrix* out) override;
  [[nodiscard]] BarrierStatus barrier(
      std::uint32_t rank, std::chrono::milliseconds timeout) override;
  void notify_failure(std::uint32_t rank, const std::string& message) override;
  [[nodiscard]] std::vector<RemoteFailure> remote_failures() const override;
  [[nodiscard]] WireStats wire_stats() const override;

 private:
  std::unique_ptr<detail::SocketTeam> impl_;
};

/// The wire-layer fault decorator: a SocketTransport whose transmit path
/// runs every data frame through the seeded drop/duplicate/reorder/delay/
/// bit-flip/reconnect fate draw of @p Config::wire.  Construct it with a
/// FaultPlan's wire spec (fault::plan_from_spec understands the wdrop=/
/// wflip=/... tokens) and the chaos campaign replays deterministically.
class LossyTransport final : public SocketTransport {
 public:
  explicit LossyTransport(Config cfg) : SocketTransport(arm(std::move(cfg))) {}
  [[nodiscard]] const char* name() const noexcept override {
    return "socket+lossy";
  }

 private:
  static Config arm(Config cfg) {
    // A LossyTransport with an all-zero spec would silently test nothing.
    if (!cfg.wire.any()) cfg.wire.drop_prob = 0.05;
    if (cfg.wire.seed == 0) cfg.wire.seed = 1;
    return cfg;
  }
};

/// Convenience: an all-ranks-local loopback socket team, mesh already
/// connected.  @p wire non-empty yields a LossyTransport.
[[nodiscard]] std::unique_ptr<SocketTransport> make_socket_transport(
    std::uint32_t ranks, std::chrono::milliseconds horizon,
    fault::WireFaultSpec wire = {});

}  // namespace hcmm::rt
