#pragma once
// The paper's algorithms as real SPMD message-passing programs on the
// thread-per-rank runtime (rt::Team) — topology-agnostic, the way one would
// write them over MPI today.  The simulated-machine implementations in
// algo/ are the cost-faithful reproduction; these exist to demonstrate the
// same dataflow executing with genuine concurrency, and they share no code
// with the simulator, so agreement between the two is itself a check.

#include <span>
#include <string_view>

#include "hcmm/matrix/matrix.hpp"
#include "hcmm/runtime/team.hpp"

namespace hcmm::rt {

/// Cannon's algorithm on a sqrt(p) x sqrt(p) rank grid; the team must have
/// p ranks with p a perfect square and n divisible by sqrt(p).
[[nodiscard]] Matrix spmd_cannon(Team& team, const Matrix& a, const Matrix& b);

/// 3-D All on a cbrt(p)^3 rank grid; the team must have p ranks with p a
/// perfect cube and n divisible by cbrt(p)^2.
[[nodiscard]] Matrix spmd_all3d(Team& team, const Matrix& a, const Matrix& b);

/// Algorithm Simple: all-to-all broadcasts along rank-grid rows and
/// columns; p a perfect square, n divisible by sqrt(p).
[[nodiscard]] Matrix spmd_simple(Team& team, const Matrix& a, const Matrix& b);

/// DNS on a cbrt(p)^3 rank grid; n divisible by cbrt(p).
[[nodiscard]] Matrix spmd_dns(Team& team, const Matrix& a, const Matrix& b);

/// 3-D Diagonal on a cbrt(p)^3 rank grid; n divisible by cbrt(p).
[[nodiscard]] Matrix spmd_diag3d(Team& team, const Matrix& a, const Matrix& b);

/// Berntsen on a cbrt(p)^3 rank grid (Cannon inside each z-plane, reduction
/// across planes); n divisible by cbrt(p)^2.
[[nodiscard]] Matrix spmd_berntsen(Team& team, const Matrix& a,
                                   const Matrix& b);

/// 2-D Diagonal on a sqrt(p)^2 rank grid; n divisible by sqrt(p).
[[nodiscard]] Matrix spmd_diag2d(Team& team, const Matrix& a, const Matrix& b);

/// 3-D All_Trans on a cbrt(p)^3 rank grid (B starts in the transposed
/// layout of Fig. 9); n divisible by cbrt(p)^2.
[[nodiscard]] Matrix spmd_alltrans(Team& team, const Matrix& a,
                                   const Matrix& b);

// (Ho–Johnsson–Edelman has no topology-agnostic port: its whole point is
// driving all log p hypercube links at once, which a rank abstraction
// cannot express; on the simulated machine see algo/hje.cpp.)

/// Signature shared by every SPMD port above.
using SpmdFn = Matrix (*)(Team&, const Matrix&, const Matrix&);

struct SpmdAlgo {
  std::string_view name;  ///< stable CLI name, e.g. "cannon", "all3d"
  SpmdFn fn = nullptr;
  /// p must be a perfect grid_dim-th power: 2 for the sqrt(p) x sqrt(p)
  /// grids, 3 for the cbrt(p)^3 cubes.
  std::uint32_t grid_dim = 2;
  /// n must divide by (grid side)^block_exp — 1 when ranks own blk x blk
  /// blocks of side n/q, 2 when they own slices of side n/q^2.
  std::uint32_t block_exp = 1;
};

/// Name-indexed registry over the eight ports — what tools (hcmm_rank,
/// hcmm_calibrate) use to pick an algorithm from the command line without
/// hard-coding the list in every binary.
[[nodiscard]] std::span<const SpmdAlgo> spmd_algorithms() noexcept;

/// Lookup by CLI name; nullptr when unknown.
[[nodiscard]] const SpmdAlgo* spmd_by_name(std::string_view name) noexcept;

}  // namespace hcmm::rt
