#pragma once
// The paper's algorithms as real SPMD message-passing programs on the
// thread-per-rank runtime (rt::Team) — topology-agnostic, the way one would
// write them over MPI today.  The simulated-machine implementations in
// algo/ are the cost-faithful reproduction; these exist to demonstrate the
// same dataflow executing with genuine concurrency, and they share no code
// with the simulator, so agreement between the two is itself a check.

#include "hcmm/matrix/matrix.hpp"
#include "hcmm/runtime/team.hpp"

namespace hcmm::rt {

/// Cannon's algorithm on a sqrt(p) x sqrt(p) rank grid; the team must have
/// p ranks with p a perfect square and n divisible by sqrt(p).
[[nodiscard]] Matrix spmd_cannon(Team& team, const Matrix& a, const Matrix& b);

/// 3-D All on a cbrt(p)^3 rank grid; the team must have p ranks with p a
/// perfect cube and n divisible by cbrt(p)^2.
[[nodiscard]] Matrix spmd_all3d(Team& team, const Matrix& a, const Matrix& b);

/// Algorithm Simple: all-to-all broadcasts along rank-grid rows and
/// columns; p a perfect square, n divisible by sqrt(p).
[[nodiscard]] Matrix spmd_simple(Team& team, const Matrix& a, const Matrix& b);

/// DNS on a cbrt(p)^3 rank grid; n divisible by cbrt(p).
[[nodiscard]] Matrix spmd_dns(Team& team, const Matrix& a, const Matrix& b);

/// 3-D Diagonal on a cbrt(p)^3 rank grid; n divisible by cbrt(p).
[[nodiscard]] Matrix spmd_diag3d(Team& team, const Matrix& a, const Matrix& b);

/// Berntsen on a cbrt(p)^3 rank grid (Cannon inside each z-plane, reduction
/// across planes); n divisible by cbrt(p)^2.
[[nodiscard]] Matrix spmd_berntsen(Team& team, const Matrix& a,
                                   const Matrix& b);

/// 2-D Diagonal on a sqrt(p)^2 rank grid; n divisible by sqrt(p).
[[nodiscard]] Matrix spmd_diag2d(Team& team, const Matrix& a, const Matrix& b);

/// 3-D All_Trans on a cbrt(p)^3 rank grid (B starts in the transposed
/// layout of Fig. 9); n divisible by cbrt(p)^2.
[[nodiscard]] Matrix spmd_alltrans(Team& team, const Matrix& a,
                                   const Matrix& b);

// (Ho–Johnsson–Edelman has no topology-agnostic port: its whole point is
// driving all log p hypercube links at once, which a rank abstraction
// cannot express; on the simulated machine see algo/hje.cpp.)

}  // namespace hcmm::rt
