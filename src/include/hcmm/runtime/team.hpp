#pragma once
// A minimal SPMD runtime: one OS thread per local rank, blocking
// point-to-point matrix messages and a barrier — the MPI subset the paper's
// algorithms need, so they can run as real parallel programs
// (runtime/spmd_matmul.hpp) and not only on the simulated machine.
// Messages between a (from, to) pair with the same tag are delivered in
// FIFO order; recv blocks until a matching message arrives and fails loudly
// after a timeout instead of deadlocking silently.
//
// The message mechanism is pluggable (runtime/transport.hpp): by default
// ranks are threads of this process exchanging matrices through in-memory
// mailboxes, but the same Team (and the same SPMD functions) run unchanged
// over the TCP socket backend, where ranks may live in other OS processes
// (runtime/socket_transport.hpp, tools/hcmm_rank).
//
// Failure semantics distinguish slow peers from dead peers: a recv waits in
// doubling slices up to the timeout (each extra slice counts as a retry, so
// merely slow peers cost patience, not aborts), while a peer that is known
// dead — it threw, a test injected its death, or its process vanished —
// aborts the waiter immediately with a located DeadPeerError.  Team::run
// aggregates every primary failure (one per originating rank, including
// failures reported by remote processes) into its diagnosis; secondary
// unwinding (PeerAbort / DeadPeerError) is never reported as a cause.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "hcmm/matrix/matrix.hpp"
#include "hcmm/runtime/transport.hpp"

namespace hcmm::rt {

class Rank;

/// Secondary failure: this rank aborted only because some other rank's
/// primary failure was already diagnosed.  Team::run swallows these.
class PeerAbort : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Secondary failure: the specific peer this rank was waiting on is known
/// dead, so the wait was cut short with a located diagnosis instead of
/// letting the timeout expire.
class DeadPeerError : public std::runtime_error {
 public:
  DeadPeerError(std::uint32_t rank, const std::string& what)
      : std::runtime_error(what), rank_(rank) {}
  [[nodiscard]] std::uint32_t rank() const noexcept { return rank_; }

 private:
  std::uint32_t rank_;
};

/// One rank's primary failure in the last Team::run.
struct RankError {
  std::uint32_t rank = 0;
  std::string message;
};

/// Forget the cached HCMM_RT_TIMEOUT_MS value so the next Team
/// construction re-reads the environment.  Test-only: the variable is
/// otherwise read exactly once per process.
void reset_env_overrides_for_testing();

class Team {
 public:
  /// @p ranks number of SPMD ranks (threads of this process, mailbox
  /// backend); @p recv_timeout how long a recv/barrier may wait before the
  /// run is declared deadlocked.  When omitted, the HCMM_RT_TIMEOUT_MS
  /// environment variable (strict positive integer milliseconds, read once
  /// per process) is consulted, then a 30 s default.  A malformed value —
  /// trailing garbage, zero, overflow — throws with a diagnostic naming the
  /// offending text.
  explicit Team(std::uint32_t ranks,
                std::optional<std::chrono::milliseconds> recv_timeout =
                    std::nullopt);

  /// Run over an explicit backend (socket, lossy socket, ...).  The
  /// transport decides the team size and which ranks this process hosts.
  explicit Team(std::unique_ptr<Transport> transport,
                std::optional<std::chrono::milliseconds> recv_timeout =
                    std::nullopt);

  [[nodiscard]] std::uint32_t size() const noexcept { return ranks_; }
  [[nodiscard]] std::chrono::milliseconds timeout() const noexcept {
    return timeout_;
  }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const Transport& transport() const noexcept {
    return *transport_;
  }

  /// Run @p fn on every local rank concurrently and join.  A single failing
  /// rank rethrows its original exception; several failing ranks (or any
  /// failure reported by a remote process) throw one std::runtime_error
  /// naming every failed rank and message.  Secondary PeerAbort /
  /// DeadPeerError unwinds are not failures.  Reusable for successive runs.
  void run(const std::function<void(Rank&)>& fn);

  /// Primary failures of the last run, sorted by rank (empty on success).
  [[nodiscard]] const std::vector<RankError>& last_run_errors() const noexcept {
    return rank_errors_;
  }

  /// Extra doubling wait slices recvs needed in the last run — evidence of
  /// slow (but live) peers.
  [[nodiscard]] std::uint64_t last_run_recv_retries() const noexcept {
    return recv_retries_.load(std::memory_order_relaxed);
  }

  /// Cumulative wire counters of the underlying transport (all zero for
  /// the mailbox backend).
  [[nodiscard]] WireStats wire_stats() const { return transport_->wire_stats(); }

  /// Fault injection (testing): @p rank dies — cleanly, as a diagnosed
  /// primary failure — when it starts its (@p after_ops + 1)-th team
  /// operation (send/recv/barrier) of a run.
  void inject_rank_death(std::uint32_t rank, std::uint64_t after_ops = 0);

  /// Fault injection (testing): @p rank sleeps @p delay before every team
  /// operation, making it slow but live (exercises recv retry slices).
  void inject_rank_delay(std::uint32_t rank, std::chrono::milliseconds delay);

  void clear_injections();

 private:
  friend class Rank;

  void send(std::uint32_t from, std::uint32_t to, std::uint64_t tag, Matrix m);
  [[nodiscard]] Matrix recv(std::uint32_t to, std::uint32_t from,
                            std::uint64_t tag);
  void barrier_wait(std::uint32_t rank);
  /// Applies injected delay/death for @p rank's next operation.
  void check_injections(std::uint32_t rank);

  std::unique_ptr<Transport> transport_;
  std::uint32_t ranks_;
  std::chrono::milliseconds timeout_;
  std::vector<RankError> rank_errors_;  // primary failures, last run
  std::atomic<std::uint64_t> recv_retries_{0};
  std::mutex inj_mu_;  // guards the injection tables below
  std::vector<std::uint64_t> op_counts_;
  std::map<std::uint32_t, std::uint64_t> death_at_;
  std::map<std::uint32_t, std::chrono::milliseconds> delay_;
};

/// Per-rank handle passed to the SPMD function.
class Rank {
 public:
  Rank(Team& team, std::uint32_t id) : team_(team), id_(id) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return team_.size(); }

  /// Asynchronous: enqueue @p m for @p to under @p tag and return.
  void send(std::uint32_t to, std::uint64_t tag, Matrix m) {
    team_.send(id_, to, tag, std::move(m));
  }

  /// Block until a message from @p from under @p tag arrives.
  [[nodiscard]] Matrix recv(std::uint32_t from, std::uint64_t tag) {
    return team_.recv(id_, from, tag);
  }

  /// Block until every rank reaches the barrier.
  void barrier() { team_.barrier_wait(id_); }

 private:
  Team& team_;
  std::uint32_t id_;
};

}  // namespace hcmm::rt
