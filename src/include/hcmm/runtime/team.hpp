#pragma once
// A minimal SPMD runtime: one OS thread per rank, blocking point-to-point
// matrix messages and a barrier — the MPI subset the paper's algorithms
// need, so they can run as real parallel programs (runtime/spmd_matmul.hpp)
// and not only on the simulated machine.  Messages between a (from, to)
// pair with the same key are delivered in FIFO order; recv blocks until a
// matching message arrives and fails loudly after a timeout instead of
// deadlocking silently.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "hcmm/matrix/matrix.hpp"

namespace hcmm::rt {

class Rank;

class Team {
 public:
  /// @p ranks number of SPMD ranks (threads); @p recv_timeout how long a
  /// recv may wait before the run is declared deadlocked.
  explicit Team(std::uint32_t ranks,
                std::chrono::milliseconds recv_timeout =
                    std::chrono::milliseconds(30000));

  [[nodiscard]] std::uint32_t size() const noexcept { return ranks_; }

  /// Run @p fn on every rank concurrently and join.  The first exception
  /// thrown by any rank is rethrown here (other ranks may then time out and
  /// are joined regardless).  Reusable for successive runs.
  void run(const std::function<void(Rank&)>& fn);

 private:
  friend class Rank;

  struct Key {
    std::uint32_t to;
    std::uint32_t from;
    std::uint64_t tag;
    auto operator<=>(const Key&) const = default;
  };

  void send(std::uint32_t from, std::uint32_t to, std::uint64_t tag, Matrix m);
  [[nodiscard]] Matrix recv(std::uint32_t to, std::uint32_t from,
                            std::uint64_t tag);
  void barrier_wait();

  std::uint32_t ranks_;
  std::chrono::milliseconds timeout_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Matrix>> mailboxes_;
  // Generation-counting barrier.
  std::uint32_t barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool failed_ = false;  // a rank threw: wake everyone so they can unwind
};

/// Per-rank handle passed to the SPMD function.
class Rank {
 public:
  Rank(Team& team, std::uint32_t id) : team_(team), id_(id) {}

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return team_.size(); }

  /// Asynchronous: enqueue @p m for @p to under @p tag and return.
  void send(std::uint32_t to, std::uint64_t tag, Matrix m) {
    team_.send(id_, to, tag, std::move(m));
  }

  /// Block until a message from @p from under @p tag arrives.
  [[nodiscard]] Matrix recv(std::uint32_t from, std::uint64_t tag) {
    return team_.recv(id_, from, tag);
  }

  /// Block until every rank reaches the barrier.
  void barrier() { team_.barrier_wait(); }

 private:
  Team& team_;
  std::uint32_t id_;
};

}  // namespace hcmm::rt
