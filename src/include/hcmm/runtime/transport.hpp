#pragma once
// Pluggable message-passing backends for the SPMD runtime.
//
// rt::Team owns *policy* — doubling-slice recv waits, slow-vs-dead
// discrimination, primary-failure aggregation, fault injection — while a
// Transport owns *mechanism*: how a matrix message physically travels from
// one rank to another and how the team-wide barrier and failure flags are
// shared.  Two backends exist:
//
//   MailboxTransport  — the original in-process backend: one mutex, one
//       condition variable, FIFO deques keyed by (to, from, tag).  All
//       ranks are local; nothing ever touches a wire.
//   SocketTransport   — TCP loopback/process backend (socket_transport.hpp):
//       length-prefixed CRC-framed messages, per-frame retransmission with
//       exponential backoff and deterministic jitter, heartbeat failure
//       detection, session epochs, and bounded reconnection.  Ranks may be
//       spread over several OS processes (tools/hcmm_rank).
//
// The Transport contract deliberately mirrors the semantics the mailbox
// backend always had, so Team behaves identically over both: a wait_recv
// reports *why* it returned (message, slice expiry, located dead peer,
// team-wide abort) and Team turns that into retries, DeadPeerError, or
// PeerAbort exactly as before.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hcmm/matrix/matrix.hpp"

namespace hcmm::rt {

/// Wire-level counters a transport accumulates over its lifetime.  The
/// mailbox backend reports all-zero; the socket backend counts real frames
/// plus every injected wire fault (LossyTransport), which is how chaos
/// campaigns prove the lossy paths actually fired.
struct WireStats {
  std::uint64_t frames_sent = 0;      ///< data frames handed to the wire
  std::uint64_t frames_received = 0;  ///< well-formed frames accepted
  std::uint64_t payload_bytes = 0;    ///< matrix payload bytes delivered
  std::uint64_t retransmits = 0;      ///< RTO-expired resends
  std::uint64_t crc_rejects = 0;      ///< frames dropped for bad CRC
  std::uint64_t heartbeats = 0;       ///< heartbeat frames sent
  std::uint64_t drops = 0;            ///< injected: frame lost pre-transmit
  std::uint64_t dups = 0;             ///< injected: frame transmitted twice
  std::uint64_t reorders = 0;         ///< injected: frame swapped back
  std::uint64_t delays = 0;           ///< injected: frame held back
  std::uint64_t flips = 0;            ///< injected: payload bit flipped
  std::uint64_t reconnects = 0;       ///< connection re-establishments
  std::uint64_t stale_discards = 0;   ///< stale epoch/run frames discarded
};

/// Why a bounded wait for a message returned.
enum class RecvStatus : std::uint8_t {
  kReady,     ///< a matching message was dequeued
  kTimedOut,  ///< the slice expired with no message (peer merely slow?)
  kPeerDead,  ///< the specific sender is known dead — located diagnosis
  kAborted,   ///< some rank failed — unwind without a located cause
};

/// Why a barrier wait returned.
enum class BarrierStatus : std::uint8_t { kOk, kTimedOut, kAborted };

/// A failure that originated outside this process (socket backend): a peer
/// process reported a rank's primary failure, or its connection died.
struct RemoteFailure {
  std::uint32_t rank = 0;
  std::string message;
};

class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  /// Backend name for reports/benchmarks ("mailbox", "socket",
  /// "socket+lossy").
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Total ranks in the team, across every participating process.
  [[nodiscard]] virtual std::uint32_t ranks() const noexcept = 0;

  /// The ranks hosted by *this* process, ascending.  Team::run spawns one
  /// thread per local rank; remote ranks run elsewhere.
  [[nodiscard]] virtual const std::vector<std::uint32_t>& local_ranks()
      const noexcept = 0;

  /// Reset per-run state (pending messages, failure flags, barrier) and
  /// advance the run generation so frames from a previous run can never be
  /// delivered into this one.
  virtual void begin_run() = 0;

  /// Asynchronous FIFO send of @p m from @p from to @p to under @p tag.
  /// Tag bit 63 is reserved for transport control traffic.
  virtual void send(std::uint32_t from, std::uint32_t to, std::uint64_t tag,
                    Matrix m) = 0;

  /// Wait up to @p slice for a message matching (to, from, tag); on kReady
  /// the message is moved into @p out.  Failure reporting wins over a ready
  /// message, and a located dead sender wins over a generic abort — the
  /// order Team's recv semantics require.
  [[nodiscard]] virtual RecvStatus wait_recv(std::uint32_t to,
                                             std::uint32_t from,
                                             std::uint64_t tag,
                                             std::chrono::milliseconds slice,
                                             Matrix* out) = 0;

  /// Block rank @p rank until every rank reaches the barrier, up to
  /// @p timeout.
  [[nodiscard]] virtual BarrierStatus barrier(
      std::uint32_t rank, std::chrono::milliseconds timeout) = 0;

  /// Record rank @p rank's primary failure: mark it dead, set the team-wide
  /// failure flag, wake every waiter — and, on the socket backend,
  /// broadcast the death to every peer process.
  virtual void notify_failure(std::uint32_t rank,
                              const std::string& message) = 0;

  /// Failures that originated in *other* processes during the current run
  /// (empty for in-process backends).  Team::run merges these into its
  /// diagnosis so a dead worker process surfaces as a located primary
  /// failure, not a silent zero result.
  [[nodiscard]] virtual std::vector<RemoteFailure> remote_failures() const = 0;

  /// Cumulative wire counters (all zero for in-process backends).
  [[nodiscard]] virtual WireStats wire_stats() const = 0;
};

/// The original in-process backend: every rank is a thread of this process,
/// messages live in FIFO deques under one mutex.
[[nodiscard]] std::unique_ptr<Transport> make_mailbox_transport(
    std::uint32_t ranks);

}  // namespace hcmm::rt
