#pragma once
// Frame codec for the socket transport: length-prefixed, CRC-protected
// matrix messages plus the control vocabulary (acks, heartbeats, death
// notices, connection hellos).
//
// A frame is a fixed 72-byte header followed by payload_len payload bytes.
// All integers are little-endian.  The header carries its own CRC32 over
// the preceding 68 bytes, and the payload carries a separate CRC32 so a
// flipped payload bit is rejected without tearing the stream — the header
// still parses, the reader skips payload_len bytes, drops the frame, and
// the sender's retransmission timer heals the loss.
//
//   offset  field        notes
//   ------  -----------  ------------------------------------------
//      0    magic        0x4843'4D4D ("HCMM")
//      4    kind         FrameKind
//      5    (pad)        3 zero bytes
//      8    from         sending rank (kDeath: the dead rank)
//     12    to           receiving rank
//     16    epoch        connection incarnation (connector-owned)
//     20    (pad)        4 zero bytes
//     24    run_gen      Team::run generation the message belongs to
//     32    seq          per-connection data sequence number
//     40    ack          cumulative ack: highest contiguous seq received
//     48    tag          message tag (bit 63 = transport control)
//     56    rows, cols   matrix shape (u32 each; kData only)
//     64    payload_len  payload bytes following the header
//     68    payload_crc  CRC32 of the payload bytes
//     72    header_crc   CRC32 of bytes [0, 72)
//
// (Total header size 76 bytes with the trailing header_crc.)

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace hcmm::rt::wire {

inline constexpr std::uint32_t kMagic = 0x4843'4D4Du;
inline constexpr std::size_t kHeaderSize = 76;
/// Refuse absurd frames before allocating: 1 GiB of payload is far beyond
/// any matrix block the algorithms exchange.
inline constexpr std::uint32_t kMaxPayload = 1u << 30;

enum class FrameKind : std::uint8_t {
  kData = 0,       ///< matrix message (payload = rows*cols doubles)
  kAck = 1,        ///< bare cumulative ack
  kHeartbeat = 2,  ///< liveness beacon
  kDeath = 3,      ///< rank `from` suffered a primary failure (payload = msg)
  kHello = 4,      ///< connection handshake: `from` + `epoch` identify it
};

[[nodiscard]] const char* to_string(FrameKind k) noexcept;

struct FrameHeader {
  FrameKind kind = FrameKind::kData;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t epoch = 0;
  std::uint64_t run_gen = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint64_t tag = 0;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) of @p bytes.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Serialize @p h (and its header CRC) into @p out, which must hold
/// kHeaderSize bytes.
void encode_header(const FrameHeader& h, std::uint8_t* out) noexcept;

/// Parse and validate kHeaderSize bytes: magic, header CRC, kind range, and
/// payload_len <= kMaxPayload.  nullopt means the stream is corrupt beyond
/// recovery (on TCP this only happens under deliberate fault injection into
/// the header, which the transport does not do — payload flips are the
/// recoverable corruption).
[[nodiscard]] std::optional<FrameHeader> decode_header(
    const std::uint8_t* buf) noexcept;

}  // namespace hcmm::rt::wire
