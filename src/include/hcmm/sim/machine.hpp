#pragma once
// The simulated hypercube machine: per-node data stores plus bulk-synchronous
// execution of communication schedules under the paper's cost model.
//
// Cost accounting (paper §2): executing one round costs every *active* node
//   one-port  : t_s + t_w * max(words sent, words received)
//   multi-port: max over links of (t_s + t_w * max(out, in on that link))
// and the round's cost is the max over nodes; a phase is the sum of its
// rounds.  The measured pair (a, b) with time = a*t_s + b*t_w is what
// Table 2 of the paper tabulates per algorithm, so the Machine reports both
// terms separately.

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "hcmm/abft/event.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/fault/plan.hpp"
#include "hcmm/sim/schedule.hpp"
#include "hcmm/sim/semantic.hpp"
#include "hcmm/sim/store.hpp"
#include "hcmm/sim/types.hpp"
#include "hcmm/support/thread_pool.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm {

/// Measured costs of one named phase of an algorithm.
struct PhaseStats {
  std::string name;
  std::uint64_t rounds = 0;       ///< measured a-term (start-ups on the critical path)
  double word_cost = 0.0;         ///< measured b-term (word-times on the critical path)
  std::uint64_t messages = 0;     ///< total point-to-point messages
  std::uint64_t link_words = 0;   ///< total words crossing links (aggregate traffic)
  std::uint64_t flops = 0;        ///< multiply-adds on the critical path
  double comm_time = 0.0;
  double compute_time = 0.0;

  // Resilience accounting — all zero on fault-free runs.  The fault_* fields
  // measure what recovery added: fault_startups start-ups are already inside
  // `rounds`, fault_word_cost word-times inside `word_cost`, and fault_delay
  // (backoff waits + latency spikes) inside `comm_time`.
  std::uint64_t retries = 0;         ///< transient resends (drops + corruptions)
  std::uint64_t reroutes = 0;        ///< transfers detoured around faults
  std::uint64_t extra_hops = 0;      ///< detour hops beyond the direct link
  std::uint64_t fault_startups = 0;  ///< start-ups added by recovery
  double fault_word_cost = 0.0;      ///< word-times added by recovery
  double fault_delay = 0.0;          ///< backoff waits and spike latency

  // ABFT / checkpoint accounting (abft::protect + Machine checkpointing).
  // checkpoint_cost time is already inside comm_time (a breakdown, not an
  // addition); silent_corruptions counts *injected* ground-truth events,
  // abft_detected/corrected what the checksum verification concluded.
  std::uint64_t checkpoints = 0;        ///< phase-boundary snapshots taken
  double checkpoint_cost = 0.0;         ///< time spent writing checkpoints
  std::uint64_t silent_corruptions = 0; ///< payloads flipped past the CRC
  std::uint64_t abft_detected = 0;      ///< checksum residues flagged
  std::uint64_t abft_corrected = 0;     ///< elements repaired from residues

  // Host data-plane accounting (DataStore::plane_stats deltas): how many
  // words the *simulator* physically copied vs aliased while executing the
  // phase.  Wall-clock efficiency of the host process — never part of the
  // charged (a, b) model cost.
  std::uint64_t words_copied = 0;       ///< host words physically duplicated
  std::uint64_t words_aliased = 0;      ///< host words shared by view
  std::uint64_t combines_in_place = 0;  ///< combine() mutated in place
  std::uint64_t combines_copied = 0;    ///< combine() clone-add-swap fallback

  [[nodiscard]] double time() const noexcept { return comm_time + compute_time; }
  [[nodiscard]] bool faulted() const noexcept {
    return retries || reroutes || extra_hops || fault_startups ||
           silent_corruptions || fault_word_cost > 0.0 || fault_delay > 0.0;
  }
  void add(const PhaseStats& other);
};

/// Traffic carried by one directed link over a run (link accounting).
struct LinkLoad {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t words = 0;
  std::uint64_t messages = 0;
};

/// Aggregate view of how evenly an algorithm loads the machine's links.
struct LinkBalance {
  std::uint64_t links_used = 0;
  std::uint64_t max_words = 0;
  double mean_words = 0.0;
  /// max/mean over used links; 1.0 = perfectly even traffic.
  double imbalance = 0.0;
  /// Fraction of the machine's directed links that carried any traffic.
  double coverage = 0.0;
};

/// Summarize per-link traffic against a machine of @p total_links
/// undirected links (each counted twice for the directed view).
[[nodiscard]] LinkBalance summarize_links(std::span<const LinkLoad> loads,
                                          std::uint64_t total_links);

/// Full execution report of one distributed algorithm run.
struct SimReport {
  PortModel port = PortModel::kOnePort;
  CostParams params;
  std::vector<PhaseStats> phases;
  std::uint64_t peak_words_total = 0;  ///< Table 3's "overall space used"
  /// End-to-end makespan under asynchronous execution of the same
  /// schedules: a transfer starts as soon as its payload is resident at the
  /// source and both ports are free — no round or phase barriers — while
  /// local compute stages barrier the DAG.  Always <= totals().time(); the
  /// gap is what the paper's phase-synchronous accounting leaves on the
  /// table (see bench_async).
  double async_makespan = 0.0;
  /// Located fault occurrences recorded during the run (capped; the
  /// PhaseStats counters are exhaustive even when this list is not).
  std::vector<fault::FaultEvent> fault_events;
  /// Located ABFT verification outcomes (capped like fault_events).
  std::vector<abft::AbftEvent> abft_events;
  /// Completed checkpoint rollback-and-replay recoveries.
  std::uint64_t recoveries = 0;
  /// Restart-from-scratch escalations (checkpoint corrupt / unavailable).
  std::uint64_t restarts = 0;

  [[nodiscard]] PhaseStats totals() const;
  /// Multi-line human-readable table.
  [[nodiscard]] std::string to_string() const;
};

class Machine {
 public:
  /// @p pool optional shared thread pool for local compute; a private
  /// single-thread pool is created when omitted.
  Machine(Hypercube cube, PortModel port, CostParams params,
          std::shared_ptr<ThreadPool> pool = nullptr);

  [[nodiscard]] const Hypercube& cube() const noexcept { return cube_; }
  [[nodiscard]] PortModel port() const noexcept { return port_; }
  [[nodiscard]] const CostParams& params() const noexcept { return params_; }
  [[nodiscard]] DataStore& store() noexcept { return store_; }
  [[nodiscard]] const DataStore& store() const noexcept { return store_; }
  [[nodiscard]] ThreadPool& pool() noexcept { return *pool_; }

  /// Start a new named phase; subsequent run()/charge_compute() calls
  /// accumulate into it.
  void begin_phase(std::string name);

  /// Validate and execute @p s, moving payloads and charging costs.
  void run(const Schedule& s);

  /// Charge local computation: the current phase's compute time grows by
  /// t_c * max(flops) (bulk-synchronous step), flops counts multiply-adds.
  void charge_compute(std::span<const std::pair<NodeId, std::uint64_t>> per_node);

  /// Phases measured since construction / reset_stats().
  [[nodiscard]] SimReport report() const;

  /// Forget measured phases and reset store peak metering; use after staging
  /// initial operands so distribution does not count as algorithm cost.
  void reset_stats();

  /// Enable per-directed-link traffic accounting (off by default; small
  /// per-transfer overhead).  Counters clear with reset_stats().
  void set_link_accounting(bool on) { link_accounting_ = on; }

  /// Per-link traffic recorded since reset_stats(), busiest first.
  [[nodiscard]] std::vector<LinkLoad> link_loads() const;

  /// Install a hook invoked with every schedule at the top of run(), before
  /// any round executes.  Used by tools (hcmm_lint) to statically analyze
  /// each schedule an algorithm emits against the live store placement.
  /// Pass an empty function to remove.
  void set_schedule_observer(std::function<void(const Schedule&)> obs) {
    observer_ = std::move(obs);
  }

  /// Install a hook invoked with the phase name whenever a new phase opens
  /// (begin_phase, including the checkpoint-boundary re-entry after a
  /// rollback; swallowed replay boundaries do not fire).  Used by the
  /// analysis trace recorder to segment store-op traces by phase.
  void set_phase_observer(std::function<void(std::string_view)> obs) {
    phase_observer_ = std::move(obs);
  }

  /// Install a hook invoked with the job count after every run_gemm_jobs
  /// batch completes.  The jobs of one batch execute concurrently on the
  /// pool, so the hook marks the boundary of a concurrency region for the
  /// happens-before race analysis.
  void set_gemm_observer(std::function<void(std::size_t)> obs) {
    gemm_observer_ = std::move(obs);
  }
  /// Called by algo::detail::run_gemm_jobs after each batch.
  void notify_gemm_batch(std::size_t jobs) {
    if (gemm_observer_) gemm_observer_(jobs);
  }

  /// Install a hook invoked with every semantic provenance declaration the
  /// trusted algo::detail helpers emit (staging, cuts, GEMM destinations,
  /// accumulator flushes, C-block collection).  Each event precedes the
  /// store op(s) it annotates.  Used by the analysis trace recorder; empty
  /// function removes.
  void set_semantic_observer(std::function<void(const SemanticEvent&)> obs) {
    semantic_observer_ = std::move(obs);
  }
  /// Called by the algo::detail helpers; a no-op unless observed.
  void notify_semantic(const SemanticEvent& ev) {
    if (semantic_observer_) semantic_observer_(ev);
  }
  [[nodiscard]] bool semantics_observed() const noexcept {
    return static_cast<bool>(semantic_observer_);
  }

  /// Fresh per-run id for a host-side GEMM accumulator (algo::detail::Accum);
  /// ties kGemm accumulate events to the flush that stores the sum.
  [[nodiscard]] std::uint64_t next_accum_id() noexcept { return ++accum_seq_; }

  /// Install a deterministic fault plan (nullptr clears).  Survives
  /// reset_stats(), so operands can be staged before the measured run.  With
  /// a non-empty structural fault set this resolves every dead node's
  /// contraction host up front and verifies the live cube stays connected,
  /// throwing fault::FaultAbort (kHostless / kUnroutable) when recovery is
  /// impossible.  An installed-but-empty plan takes the exact fault-free
  /// execution path: measured costs are bit-identical to no plan at all.
  void set_fault_plan(std::shared_ptr<const fault::FaultPlan> plan);
  [[nodiscard]] bool has_fault_plan() const noexcept {
    return fault_ != nullptr;
  }
  [[nodiscard]] const fault::FaultPlan* fault_plan() const noexcept {
    return fault_.get();
  }

  /// Physical host of logical node @p n under subcube contraction: @p n
  /// itself unless its plan declares it dead.
  [[nodiscard]] NodeId host_of(NodeId n) const;

  /// The structural fault set schedule builders must route around.  While a
  /// checkpoint replay is in flight this is the set that was in effect when
  /// the checkpoint was taken — NOT the current plan's — so the replayed
  /// prefix rebuilds round-for-round the schedules the original execution
  /// measured (a recovery grows the current set mid-run; routing the prefix
  /// around the new death would drift the replay).
  [[nodiscard]] const fault::FaultSet& routing_faults() const noexcept;

  /// Located faults recorded since reset_stats() (capped at a few hundred;
  /// phase counters keep exact totals).
  [[nodiscard]] std::span<const fault::FaultEvent> fault_events() const noexcept {
    return fault_events_;
  }

  /// Enable phase-boundary checkpointing: every begin_phase() snapshots the
  /// full store placement plus the measured stats, charging the paper's
  /// write-out cost t_w * max-per-node resident words into the new phase.
  /// Used by abft::protect so a mid-run node death can roll back to the last
  /// phase boundary instead of restarting the run.
  void set_checkpointing(bool on) { checkpointing_ = on; }
  [[nodiscard]] bool checkpointing() const noexcept { return checkpointing_; }

  /// Roll back to the most recent checkpoint after a FaultAbort(kMidRunDeath):
  /// installs @p plan (the old plan with the death converted into a permanent
  /// structural fault — validated exactly like set_fault_plan, so this throws
  /// a located kHostless / kUnroutable FaultAbort when contraction is
  /// impossible), records @p death, and arms the replay state consumed by the
  /// next reset_stats().  The caller then re-runs the algorithm from the top:
  /// rounds before the checkpointed boundary replay their store effects
  /// without charging costs, and measurement resumes at the boundary.
  void rollback_to_checkpoint(std::shared_ptr<const fault::FaultPlan> plan,
                              const fault::FaultEvent& death);

  /// Escalation above rollback: restart the whole run from scratch because
  /// the checkpoint the ladder wanted is corrupt or was never taken.  Like
  /// rollback_to_checkpoint this installs @p plan (validated the same way),
  /// records @p cause, and arms the next reset_stats() — but the restore
  /// target is the empty initial state, so the caller's re-run measures from
  /// round 0.  Run-wide recovery accounting (budgets, restart/recovery
  /// counts, discovered detour faults, checkpoint ordinals) survives: a
  /// restart does not launder the recovery budget.
  void restart_from_scratch(std::shared_ptr<const fault::FaultPlan> plan,
                            const fault::FaultEvent& cause);

  /// Number of completed rollback_to_checkpoint() recoveries this run.
  [[nodiscard]] std::uint64_t recoveries() const noexcept { return recoveries_; }
  /// Number of restart_from_scratch() escalations this run.
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }

  /// Install a hook fired whenever recovery discards store state — a
  /// checkpoint rollback or a restart from scratch.  The analysis trace
  /// recorder uses it to emit a kRollback event so the abstract interpreters
  /// reset alongside the machine instead of diagnosing phantom leaks.
  void set_rollback_observer(std::function<void()> obs) {
    rollback_observer_ = std::move(obs);
  }

  /// ABFT accounting hooks (called by abft::protect after verification).
  void note_abft(std::uint64_t detected, std::uint64_t corrected);
  void record_abft_event(abft::AbftEvent ev);
  [[nodiscard]] std::span<const abft::AbftEvent> abft_events() const noexcept {
    return abft_events_;
  }

 private:
  PhaseStats& current_phase();
  /// Fold the store's copy/alias counter delta since the last fold into the
  /// current phase (no-op on the counters when no phase exists yet).
  void fold_plane_stats();
  void execute_round(const Round& round, PhaseStats& ph);
  void execute_round_faulty(const Round& round, PhaseStats& ph);
  /// A detoured logical transfer: the physical node path and its word count.
  struct Detour {
    std::vector<NodeId> path;
    std::size_t words = 0;
  };
  void execute_detours(std::vector<Detour>& detours, PhaseStats& ph);
  void apply_transients(NodeId src, NodeId dst, std::size_t words,
                        PhaseStats& ph);
  /// Count one retry / one reroute / @p delay seconds of recovery delay
  /// against the plan's run-wide RecoveryBudget; throws a located
  /// FaultAbort(kBudgetExhausted) at the first overrun.
  void charge_retry_budget(NodeId src, NodeId dst, std::uint32_t attempt);
  void charge_reroute_budget(NodeId src, NodeId dst);
  void charge_delay_budget(double delay, NodeId src, NodeId dst);
  /// Gate shared by rollback/restart on budget.max_recoveries.
  void charge_recovery_budget(const fault::FaultEvent& cause);
  void note_link(NodeId src, NodeId dst, std::size_t words);
  void record_event(fault::FaultEvent ev);
  void validate_round(const Round& round) const;

  // Run-wide asynchronous timing state (reset by reset_stats).  Transfers
  // chain through data_ready/port_free across phase boundaries; compute
  // acts as a global barrier by raising `floor`.
  struct AsyncState {
    std::map<std::pair<NodeId, Tag>, double> data_ready;
    std::map<std::uint64_t, double> port_free;  // keyed per port model
    double makespan = 0.0;
    double floor = 0.0;
  };
  AsyncState async_;

  Hypercube cube_;
  PortModel port_;
  CostParams params_;
  DataStore store_;
  std::shared_ptr<ThreadPool> pool_;
  std::vector<PhaseStats> phases_;
  /// Store counter snapshot at the last fold; deltas attribute per phase.
  DataPlaneStats plane_mark_;
  bool link_accounting_ = false;
  std::unordered_map<std::uint64_t, LinkLoad> link_traffic_;
  std::function<void(const Schedule&)> observer_;
  std::function<void(std::string_view)> phase_observer_;
  std::function<void(std::size_t)> gemm_observer_;
  std::function<void(const SemanticEvent&)> semantic_observer_;
  std::function<void()> rollback_observer_;
  std::uint64_t accum_seq_ = 0;

  // Fault-injection state.  host_ maps logical -> physical node and is
  // non-empty exactly while a non-empty plan is installed; round_seq_ is the
  // run-wide executed-round counter feeding the transient-fault hash.
  // discovered_ holds detour links found failed mid-flight — physical
  // reality, so it persists across rollbacks and restarts — and effective_
  // is always plan set ∪ discovered_, the set routing actually avoids.
  std::shared_ptr<const fault::FaultPlan> fault_;
  std::vector<NodeId> host_;
  fault::FaultSet discovered_;
  fault::FaultSet effective_;
  std::vector<fault::FaultEvent> fault_events_;
  std::uint64_t round_seq_ = 0;

  // Run-wide recovery-budget meters.  Never checkpointed and never restored:
  // budgets cap what the whole run may spend on recovery, so rolling back
  // must not refund them.
  std::uint64_t rb_retries_ = 0;
  std::uint64_t rb_reroutes_ = 0;
  double rb_delay_ = 0.0;

  // Checkpoint / replay state.  A Checkpoint freezes everything measurement
  // depends on at a phase boundary; replay after rollback re-executes the
  // prefix rounds for their store effects only, then verifies the rebuilt
  // placement matches the snapshot before measurement resumes.
  struct Checkpoint {
    std::vector<PhaseStats> phases;
    analysis::Placement placement;
    std::uint64_t round_seq = 0;
    /// begin_phase() calls made before this boundary.  Replay swallows
    /// exactly this many calls before treating the next one as the boundary;
    /// counting calls (not phases) keeps the boundary aligned when the
    /// checkpoint contains the implicit "main" phase, which no begin_phase()
    /// call ever opened.
    std::size_t begin_calls = 0;
    AsyncState async;
    std::vector<fault::FaultEvent> events;
    std::unordered_map<std::uint64_t, LinkLoad> links;
    fault::FaultSet faults;  ///< structural set in effect when taken
    /// The plan scheduled this snapshot's integrity digest to fail; a later
    /// rollback discovers the corruption and must escalate to a restart.
    bool corrupted = false;
  };
  void take_checkpoint();
  void execute_round_replay(const Round& round);
  void maybe_silent_corrupt(const Transfer& t, std::span<Payload> payloads,
                            PhaseStats* ph);

  bool checkpointing_ = false;
  std::vector<Checkpoint> checkpoints_;
  std::size_t begin_calls_ = 0;  ///< begin_phase() calls since reset_stats()
  fault::FaultSet replay_faults_;  ///< routing set frozen for the replay
  bool pending_restore_ = false;  ///< next reset_stats() restores + replays
  bool pending_restart_ = false;  ///< next reset_stats() is a from-scratch
                                  ///< re-measure that keeps budget meters
  /// Recovery-ladder history (deaths, contractions after rollback, restart
  /// causes).  Part of the run-wide recovery ledger: rollbacks restore
  /// fault_events_ to the checkpoint's state, which would silently erase
  /// the very fault a *previous* recovery handled, so ladder events are
  /// kept here and prepended to the report instead.
  std::vector<fault::FaultEvent> recovery_events_;
  bool replaying_ = false;
  std::uint64_t replay_until_ = 0;       ///< round_seq_ at the target boundary
  std::size_t replay_phase_calls_ = 0;   ///< begin_phase() calls to swallow
  std::uint64_t recoveries_ = 0;
  std::uint64_t restarts_ = 0;
  /// 0-based ordinal of the next checkpoint taken; monotone across rollbacks
  /// and restarts so corrupt_checkpoint[k] targets the k-th snapshot of the
  /// whole run, not of the current attempt (resetting it would re-corrupt
  /// snapshot 0 forever and recovery could never terminate).
  std::uint64_t ckpt_ordinal_ = 0;
  std::vector<abft::AbftEvent> abft_events_;
};

}  // namespace hcmm
