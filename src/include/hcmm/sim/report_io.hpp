#pragma once
// Machine-readable export of execution reports and region maps, for
// downstream plotting or regression tracking: CSV (one row per phase) and a
// minimal JSON document.  Both are plain strings — the caller decides where
// they go.

#include <string>
#include <vector>

#include "hcmm/analysis/diagnostics.hpp"
#include "hcmm/sim/machine.hpp"

namespace hcmm {

/// CSV with header: phase,a_ts,b_tw,messages,link_words,flops,comm_time,
/// compute_time,retries,reroutes,extra_hops,fault_startups,fault_word_cost,
/// fault_delay,checkpoints,checkpoint_cost,silent_corruptions,abft_detected,
/// abft_corrected,words_copied,words_aliased,combines_in_place,
/// combines_copied — one row per phase plus a TOTAL row.  The last four
/// columns are host data-plane counters (simulator wall-clock accounting,
/// never part of the charged (a, b) model).
[[nodiscard]] std::string report_csv(const SimReport& report);

/// JSON object: {"port": ..., "params": {...}, "phases": [...],
/// "totals": {...}, "peak_words_total": ..., "recoveries": ...,
/// "fault_events": [...], "abft_events": [...]}.  Phase objects carry the
/// resilience and ABFT counters alongside the cost fields; fault events are
/// {"kind", "src", "dst", "round", "attempt", "detail"}, ABFT events
/// {"kind", "row", "col", "magnitude", "detail"} (row/col null when the
/// event does not pin that coordinate).
[[nodiscard]] std::string report_json(const SimReport& report);

/// JSON export of static-analysis findings: {"errors": n, "warnings": n,
/// "notes": n, "diagnostics": [{"severity", "pass", "code", "round",
/// "transfer", "message", "hint"}, ...]}.  Locationless findings emit
/// round/transfer as null.
[[nodiscard]] std::string diagnostics_json(const analysis::DiagnosticList& dl);

/// CSV export of static-analysis findings with header
/// severity,pass,code,round,transfer,message,hint — one row per diagnostic.
/// Text fields are double-quoted with embedded quotes doubled; control
/// characters (newlines, tabs in multi-line hints) are escaped as \xNN so
/// every diagnostic stays on one physical row.  Locationless findings leave
/// round/transfer empty.
[[nodiscard]] std::string diagnostics_csv(const analysis::DiagnosticList& dl);

/// SARIF 2.1.0 export of static-analysis findings, one run with tool driver
/// "hcmm_lint": each distinct diagnostic code becomes a reporting rule —
/// carrying the registered name, short description and docs/ANALYSIS.md
/// help URI from analysis/rules.hpp — and each diagnostic a result whose
/// logical location is "<subject>/round <r>/transfer <t>".  @p subjects
/// names the analyzed artifact per diagnostic (parallel to dl.diags();
/// pass {} to omit).
[[nodiscard]] std::string sarif_json(const analysis::DiagnosticList& dl,
                                     const std::vector<std::string>& subjects);

}  // namespace hcmm
