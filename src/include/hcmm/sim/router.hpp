#pragma once
// Store-and-forward point-to-point routing for communication phases that are
// not collectives (the paper's "point-to-point communication" phases, e.g.
// 3DD phase 1 and DNS phase 1, and Cannon's alignment shifts).
//
// Dimension-ordered (e-cube) routing: a message always corrects the lowest
// bit in which its current position differs from its destination.  Rounds
// are packed greedily subject to the port model, so congestion-free patterns
// (the ones the paper charges max-distance * (t_s + t_w*m) for) finish in
// max-distance rounds, and contended patterns serialize honestly instead of
// assuming ideal cost.

#include <span>
#include <vector>

#include "hcmm/fault/plan.hpp"
#include "hcmm/sim/schedule.hpp"
#include "hcmm/sim/types.hpp"

namespace hcmm {

/// One end-to-end message: all @p tags travel together (single start-up per
/// hop).  Copies at intermediate hops are moved, not replicated.
struct RouteRequest {
  NodeId src = 0;
  NodeId dst = 0;
  std::vector<Tag> tags;
};

/// Compile @p reqs into a round schedule legal under @p port.
/// Requests with src == dst are no-ops and contribute no cost.
[[nodiscard]] Schedule route_p2p(const Hypercube& cube, PortModel port,
                                 std::span<const RouteRequest> reqs);

/// Deterministic shortest path src..dst that avoids failed links and dead
/// intermediate nodes (the endpoints themselves are accepted as given — the
/// caller has already resolved contraction hosts).  Tie-breaking is
/// lowest-dimension-first, so on a healthy cube the result is exactly the
/// e-cube path (correct the lowest differing bit each hop).  Returns the
/// node sequence including both endpoints; empty when unreachable.
[[nodiscard]] std::vector<NodeId> fault_aware_path(const Hypercube& cube,
                                                   const fault::FaultSet& faults,
                                                   NodeId src, NodeId dst);

/// route_p2p that detours around @p faults: every message follows its
/// fault_aware_path, rounds are packed greedily under the port model.
/// Degenerates to route_p2p's schedules when the fault set is empty.
/// Throws CheckError when some request has no healthy path.
[[nodiscard]] Schedule route_p2p_avoiding(const Hypercube& cube,
                                          PortModel port,
                                          std::span<const RouteRequest> reqs,
                                          const fault::FaultSet& faults);

}  // namespace hcmm
