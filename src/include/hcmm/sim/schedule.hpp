#pragma once
// A Schedule is the compiled form of one communication phase: a sequence of
// synchronous rounds, each a set of single-link transfers.  Collective
// builders (coll/) emit schedules; the Machine executes them, validating the
// port model and charging t_s + t_w*m per round (max over nodes).

#include <cstdint>
#include <span>
#include <vector>

#include "hcmm/sim/types.hpp"

namespace hcmm {

/// One message crossing one hypercube link during one round.  A message may
/// bundle several store items (tags) — they share a single start-up, which
/// is how e.g. recursive-doubling all-to-all broadcast keeps its t_s term at
/// log N while its data term grows.
struct Transfer {
  NodeId src = 0;
  NodeId dst = 0;
  std::vector<Tag> tags;
  /// If set, each tag is element-wise added into the destination's existing
  /// item (reduction semantics) instead of inserted as a new item.
  bool combine = false;
  /// If set, the source's copy is erased after the round (shift/route/reduce
  /// semantics: data moves rather than replicates).
  bool move_src = false;
};

/// All transfers that happen concurrently in one synchronous step.
struct Round {
  std::vector<Transfer> transfers;
  [[nodiscard]] bool empty() const noexcept { return transfers.empty(); }
};

/// A sequence of rounds.
struct Schedule {
  std::vector<Round> rounds;

  [[nodiscard]] std::size_t round_count() const noexcept { return rounds.size(); }
  [[nodiscard]] bool empty() const noexcept { return rounds.empty(); }

  /// Total number of point-to-point messages.
  [[nodiscard]] std::size_t transfer_count() const noexcept;

  /// Append @p other after this schedule's rounds.
  void append(const Schedule& other);
};

/// Sequential composition: rounds of each schedule in order.
[[nodiscard]] Schedule seq(std::span<const Schedule> parts);

/// Parallel composition: round i of the result is the union of round i of
/// every part.  Legal on multi-port machines when the parts use disjoint
/// link sets per round (e.g. broadcasts along different grid dimensions);
/// the Machine's validator rejects genuinely conflicting merges.
[[nodiscard]] Schedule par(std::span<const Schedule> parts);

class Hypercube;  // topology/hypercube.hpp

/// Checked parallel composition: merges like par(parts), then runs the
/// static port-legality pass on every merged round and throws CheckError
/// naming the offending round and link if the parts collide under @p port
/// on @p cube.  Use when merging independently built schedules whose link
/// disjointness is a claim, not a construction invariant.
[[nodiscard]] Schedule par(std::span<const Schedule> parts,
                           const Hypercube& cube, PortModel port);

}  // namespace hcmm
