#pragma once
// Semantic provenance events: the dataflow declarations the semantic
// certification pass (analysis/semantic.hpp) interprets.
//
// A StoreEvent says *that* an item appeared; a SemanticEvent says *what the
// item means* in terms of the product C = A·B — which sub-rectangle of an
// input operand it stages, which partial products a GEMM wrote where, how a
// host-side cut partitions an item, and which C block a final host read
// collects.  Every event is emitted by a trusted helper in algo/detail that
// *physically performs* exactly what the event declares (run_gemm_jobs
// delivers to the declared destination itself; slice_item cuts the declared
// rectangles itself), so a declaration cannot drift from the behavior it
// describes.  Events are emitted immediately *before* the store ops they
// annotate; the interpreter binds each pending declaration to the matching
// store op that follows it.

#include <cstdint>
#include <utility>
#include <vector>

#include "hcmm/sim/types.hpp"

namespace hcmm {

/// Which input operand a staged region belongs to.
enum class SemOperand : std::uint8_t { kA, kB };

/// One semantic provenance declaration.  Field use by kind:
///  kStage             item `tag` on `node` is rect `rect` of operand `op`
///                     (rect in absolute element coordinates of A or B)
///  kStageZero         item `tag` on `node` is a zeroed rect.rows x rect.cols
///                     accumulator (an empty product multiset)
///  kSlice             item `tag` on `node` (shape rect.rows x rect.cols) is
///                     cut into `pieces`, each a sub-rect *within the item*
///  kGemm              one product a x b on `node` goes to the destination
///                     (dest_kind / dest_tag / accum_id)
///  kAccumFlushSlices  host accumulator `accum_id` on `node` (shape
///                     rect.rows x rect.cols) is stored as the items in
///                     `pieces`, each a sub-rect within the accumulator
///  kAccumFlushCombine host accumulator `accum_id` on `node` is combined
///                     into the existing item `tag`
///  kCollect           item `tag` on `node`, a rect.rows x rect.cols block,
///                     is read back as C(rect.r0 .. , rect.c0 ..)
struct SemanticEvent {
  enum class Kind : std::uint8_t {
    kStage,
    kStageZero,
    kSlice,
    kGemm,
    kAccumFlushSlices,
    kAccumFlushCombine,
    kCollect,
  };

  /// Half-open element rectangle [r0, r0+rows) x [c0, c0+cols).
  struct Rect {
    std::size_t r0 = 0;
    std::size_t c0 = 0;
    std::size_t rows = 0;
    std::size_t cols = 0;
  };

  /// One cut piece: the item it becomes and its rect within the source.
  struct Piece {
    Tag tag = 0;
    Rect rect;
  };

  /// Provenance of one GEMM operand: its shape plus the store items whose
  /// words it borrows — (tag, column offset) pairs, each piece occupying the
  /// full row range starting at its column offset (mat_ref yields a single
  /// piece at offset 0; mat_concat_cols yields one per pasted block).  An
  /// empty `srcs` means the operand has no provenance (mat_own of a host
  /// matrix the helpers did not build), which the semantic pass reports.
  struct Operand {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::pair<Tag, std::size_t>> srcs;
  };

  /// Where run_gemm_jobs delivers a product.
  enum class Dest : std::uint8_t { kPut, kCombine, kAccum };

  Kind kind = Kind::kStage;
  NodeId node = 0;
  Tag tag = 0;
  SemOperand op = SemOperand::kA;  ///< kStage only
  Rect rect;
  std::vector<Piece> pieces;  ///< kSlice / kAccumFlushSlices

  // kGemm only.
  Operand a;
  Operand b;
  Dest dest_kind = Dest::kPut;
  Tag dest_tag = 0;
  std::uint64_t accum_id = 0;  ///< kGemm (kAccum dest) and kAccumFlush*
};

}  // namespace hcmm
