#pragma once
// Per-node data stores.  Every simulated node owns a map Tag -> payload;
// the Machine moves payloads between stores when executing schedules.
// Payloads are immutable shared *slices* of reference-counted buffers:
// broadcast replicates a view (not the words), split/join re-alias one
// backing buffer, and the store meters *logical* words per node — the
// quantity Table 3 of the paper calls "overall space used".  The host-side
// copy/alias counters (DataPlaneStats) measure the simulator's own data
// movement, the wall-clock analogue of the paper's link-transfer counts;
// they never feed the charged (a, b) cost model.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hcmm/sim/types.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {

class DataStore;

/// Immutable shared slice of `len` doubles at `offset` into a shared buffer.
/// Copying a Payload copies the view (one shared_ptr bump), never the words.
/// The pointer-style accessors (`p->size()`, `*p`) keep the historical
/// shared_ptr call sites working; `*p` is a *deep copy* of the viewed words
/// and is meant for tests and diagnostics only.
class Payload {
 public:
  Payload() = default;

  /// View of all of @p buf (may be empty, must not be null).
  explicit Payload(std::shared_ptr<std::vector<double>> buf)
      : buf_(std::move(buf)) {
    len_ = buf_ ? buf_->size() : 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }
  [[nodiscard]] std::size_t offset() const noexcept { return off_; }

  [[nodiscard]] const double* data() const noexcept {
    return buf_ ? buf_->data() + off_ : nullptr;
  }
  [[nodiscard]] std::span<const double> span() const noexcept {
    return {data(), len_};
  }
  [[nodiscard]] double operator[](std::size_t i) const {
    return (*buf_)[off_ + i];
  }

  /// Sub-view of @p len words starting @p off words into this view.
  [[nodiscard]] Payload slice(std::size_t off, std::size_t len) const {
    HCMM_CHECK(off + len <= len_, "payload: slice [" << off << ", "
                                                     << off + len
                                                     << ") exceeds view of "
                                                     << len_ << " words");
    Payload out = *this;
    out.off_ += off;
    out.len_ = len;
    return out;
  }

  /// Deep copy of the viewed words (O(len); tests/diagnostics).
  [[nodiscard]] std::vector<double> to_vector() const {
    return {data(), data() + len_};
  }

  /// True iff this view is the only reference to its backing buffer — the
  /// store may then mutate the words in place (see DataStore::combine).
  [[nodiscard]] bool unique() const noexcept { return buf_.use_count() == 1; }

  /// True iff both views share one backing buffer (regardless of range).
  [[nodiscard]] bool same_buffer(const Payload& o) const noexcept {
    return buf_ == o.buf_;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return buf_ != nullptr;
  }
  [[nodiscard]] friend bool operator==(const Payload& p,
                                       std::nullptr_t) noexcept {
    return p.buf_ == nullptr;
  }

  // shared_ptr-compatible spellings: p->size(), (*p)[i], *p == vector.
  [[nodiscard]] const Payload* operator->() const noexcept { return this; }
  [[nodiscard]] std::vector<double> operator*() const { return to_vector(); }

 private:
  friend class DataStore;  // in-place combine mutates the unique buffer

  std::shared_ptr<std::vector<double>> buf_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

/// Wrap @p data as a whole-buffer payload (the one unavoidable allocation a
/// producer pays; everything downstream moves views).
[[nodiscard]] inline Payload make_payload(std::vector<double> data) {
  return Payload(std::make_shared<std::vector<double>>(std::move(data)));
}

/// Inclusive chunk boundaries used whenever a payload is split into nearly
/// equal parts (multi-port collectives): part i of n covers
/// [total*i/n, total*(i+1)/n).  Shared so schedule builders and the store
/// always agree on part sizes.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> chunk_bounds(
    std::size_t total, std::size_t parts, std::size_t i) noexcept {
  return {total * i / parts, total * (i + 1) / parts};
}

/// Host data-plane counters: how many words the simulator physically
/// duplicated vs shared by aliasing.  Monotonic since construction; the
/// Machine folds per-phase deltas into PhaseStats.
struct DataPlaneStats {
  std::uint64_t words_copied = 0;       ///< words physically duplicated
  std::uint64_t words_aliased = 0;      ///< words shared by view instead
  std::uint64_t split_ops = 0;
  std::uint64_t join_ops = 0;
  std::uint64_t combines_in_place = 0;  ///< accumulator mutated in place
  std::uint64_t combines_copied = 0;    ///< clone-add-swap fallbacks
};

[[nodiscard]] constexpr DataPlaneStats operator-(
    const DataPlaneStats& a, const DataPlaneStats& b) noexcept {
  return {a.words_copied - b.words_copied,
          a.words_aliased - b.words_aliased,
          a.split_ops - b.split_ops,
          a.join_ops - b.join_ops,
          a.combines_in_place - b.combines_in_place,
          a.combines_copied - b.combines_copied};
}

/// Data-plane strategy.  kZeroCopy (default) aliases on split/join and
/// mutates unique combine targets in place; kDeepCopy reproduces the
/// historical materialize-everything behavior so benches can A/B the two
/// with bit-identical results (same arithmetic, different host traffic).
enum class CopyPolicy : std::uint8_t { kZeroCopy, kDeepCopy };

/// Sentinel node id for host-side events not tied to one node's store.
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One observable mutation of a DataStore, reported to the op observer in
/// execution order.  The static alias/lifetime analyzer reconstructs the
/// abstract heap (buffer identity, view extents, uniqueness) from this
/// sequence alone — the event carries tags and sizes, never pointers.
struct StoreEvent {
  enum class Kind : std::uint8_t {
    kPut,            ///< fresh item inserted (new buffer unless delivered)
    kPutShared,      ///< shared view inserted (delivery / re-alias)
    kErase,          ///< item removed
    kSplit,          ///< item replaced by its parts (tags in `parts`)
    kJoin,           ///< parts (in `parts`) concatenated into `tag`
    kCombineInPlace, ///< combine mutated the target buffer in place
    kCombineCopied,  ///< combine took the clone-add-swap fallback
    kHostCopy,       ///< a layer above duplicated a payload's words
    kHostAlias,      ///< a layer above borrowed a payload view (e.g. gemm)
  };
  Kind kind = Kind::kPut;
  NodeId node = kNoNode;
  Tag tag = 0;
  std::vector<Tag> parts;  ///< kSplit: parts created; kJoin: parts consumed
  std::vector<std::size_t> sizes;  ///< per-part words, parallel to `parts`
  std::size_t words = 0;
};

using StoreObserver = std::function<void(const StoreEvent&)>;

class DataStore {
 public:
  /// @p n_nodes number of simulated nodes.
  explicit DataStore(std::uint32_t n_nodes);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Insert a new item; the tag must not already exist on @p node.
  void put(NodeId node, Tag tag, std::vector<double> data);
  void put_shared(NodeId node, Tag tag, Payload payload);

  /// Fetch an existing item.
  [[nodiscard]] const Payload& get(NodeId node, Tag tag) const;
  [[nodiscard]] bool has(NodeId node, Tag tag) const;
  [[nodiscard]] std::size_t item_words(NodeId node, Tag tag) const;

  /// Remove an item (must exist).
  void erase(NodeId node, Tag tag);

  /// Element-wise add @p addend into the existing item @p tag.  Mutates the
  /// target buffer in place when this item is its only reference (ascending
  /// index order either way, so the sums are bit-identical).
  void combine(NodeId node, Tag tag, const Payload& addend);

  /// Replace item @p tag with @p parts chunk items tagged
  /// make_part_tag(tag, i); returns the part tags.  Boundaries follow
  /// chunk_bounds so builders can predict part sizes.  Parts alias the
  /// original buffer (no words move) under kZeroCopy.
  std::vector<Tag> split(NodeId node, Tag tag, std::size_t parts);

  /// Like split() but with explicit part sizes (must sum to the item's
  /// size; at most 255 parts).  Used for exactly balanced bundle slicing.
  std::vector<Tag> split_sizes(NodeId node, Tag tag,
                               std::span<const std::size_t> sizes);

  /// Concatenate the items @p part_tags (erased) into a new item @p out_tag.
  /// When every part is a consecutive slice of one buffer (the split() that
  /// produced them was zero-copy and the parts come back in order), the
  /// result is a single re-aliased view; otherwise the words materialize.
  void join(NodeId node, std::span<const Tag> part_tags, Tag out_tag);

  /// Deterministic derived tag for part @p i of @p tag (what split() uses).
  [[nodiscard]] static Tag make_part_tag(Tag tag, std::size_t i) noexcept;

  /// Current logical words resident on @p node.
  [[nodiscard]] std::size_t words(NodeId node) const;
  /// High-water logical words on @p node since construction / reset.
  [[nodiscard]] std::size_t peak_words(NodeId node) const;
  /// Sum of per-node peaks — the paper's "overall space used".
  [[nodiscard]] std::uint64_t total_peak_words() const;

  /// Reset peak metering to current occupancy (e.g. after staging inputs).
  void reset_peaks();

  /// Number of items on @p node.
  [[nodiscard]] std::size_t item_count(NodeId node) const;

  /// All items on @p node as (tag, words) pairs, unspecified order; what the
  /// static analyzer snapshots as a schedule's initial placement.
  [[nodiscard]] std::vector<std::pair<Tag, std::size_t>> items(
      NodeId node) const;

  /// Host copy/alias counters since construction.
  [[nodiscard]] const DataPlaneStats& plane_stats() const noexcept {
    return plane_;
  }

  /// Record a host-side copy/alias performed *on* store payloads by a layer
  /// above (e.g. assembling a Matrix from a payload, or borrowing a view
  /// into a gemm kernel), so the counters cover the whole data plane.  The
  /// optional (node, tag) locate the access for the op observer; callers
  /// that borrow anonymous buffers may omit them.
  void count_copy(std::size_t words, NodeId node = kNoNode, Tag tag = 0) const {
    plane_.words_copied += words;
    notify({StoreEvent::Kind::kHostCopy, node, tag, {}, {}, words});
  }
  void count_alias(std::size_t words, NodeId node = kNoNode,
                   Tag tag = 0) const {
    plane_.words_aliased += words;
    notify({StoreEvent::Kind::kHostAlias, node, tag, {}, {}, words});
  }

  /// Install a hook invoked after every store mutation and host copy/alias,
  /// in execution order (empty function removes it).  Used by the static
  /// analyzer's trace recorder; never affects behavior or counters.
  void set_op_observer(StoreObserver obs) { op_observer_ = std::move(obs); }
  [[nodiscard]] const StoreObserver& op_observer() const noexcept {
    return op_observer_;
  }

  /// Suppress op-observer events while @p on (counters still accumulate).
  /// The Machine mutes the store while executing schedule rounds: delivery
  /// effects are derivable from the schedule itself, which the recorder
  /// already captures, so only out-of-schedule ops (staging, collective
  /// prep, join actions) surface as events.
  void set_event_muting(bool on) noexcept { muted_ = on; }

  void set_copy_policy(CopyPolicy p) noexcept { policy_ = p; }
  [[nodiscard]] CopyPolicy copy_policy() const noexcept { return policy_; }

 private:
  struct NodeStore {
    std::unordered_map<Tag, Payload> items;
    std::size_t cur_words = 0;
    std::size_t peak_words = 0;
  };

  NodeStore& at(NodeId node);
  [[nodiscard]] const NodeStore& at(NodeId node) const;
  void bump(NodeStore& ns, std::ptrdiff_t delta);
  /// Composite ops (split/join) emit one event, not their internal steps.
  struct MuteScope {
    explicit MuteScope(DataStore& store) noexcept
        : s(store), prev(store.muted_) {
      store.muted_ = true;
    }
    ~MuteScope() { s.muted_ = prev; }
    MuteScope(const MuteScope&) = delete;
    MuteScope& operator=(const MuteScope&) = delete;
    DataStore& s;
    bool prev;
  };
  void notify(StoreEvent ev) const {
    if (!muted_ && op_observer_) op_observer_(ev);
  }

  std::vector<NodeStore> nodes_;
  CopyPolicy policy_ = CopyPolicy::kZeroCopy;
  // Metering only (never behavior); mutable so const readers can count.
  mutable DataPlaneStats plane_;
  StoreObserver op_observer_;
  bool muted_ = false;
};

}  // namespace hcmm
