#pragma once
// Per-node data stores.  Every simulated node owns a map Tag -> payload;
// the Machine moves payloads between stores when executing schedules.
// Payloads are immutable and shared (broadcast replicates a pointer, not the
// words), but the store meters *logical* words per node — the quantity
// Table 3 of the paper calls "overall space used".

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hcmm/sim/types.hpp"

namespace hcmm {

/// Immutable shared payload of `words` doubles.
using Payload = std::shared_ptr<const std::vector<double>>;

/// Inclusive chunk boundaries used whenever a payload is split into nearly
/// equal parts (multi-port collectives): part i of n covers
/// [total*i/n, total*(i+1)/n).  Shared so schedule builders and the store
/// always agree on part sizes.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> chunk_bounds(
    std::size_t total, std::size_t parts, std::size_t i) noexcept {
  return {total * i / parts, total * (i + 1) / parts};
}

class DataStore {
 public:
  /// @p n_nodes number of simulated nodes.
  explicit DataStore(std::uint32_t n_nodes);

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Insert a new item; the tag must not already exist on @p node.
  void put(NodeId node, Tag tag, std::vector<double> data);
  void put_shared(NodeId node, Tag tag, Payload payload);

  /// Fetch an existing item.
  [[nodiscard]] const Payload& get(NodeId node, Tag tag) const;
  [[nodiscard]] bool has(NodeId node, Tag tag) const;
  [[nodiscard]] std::size_t item_words(NodeId node, Tag tag) const;

  /// Remove an item (must exist).
  void erase(NodeId node, Tag tag);

  /// Element-wise add @p addend into the existing item @p tag.
  void combine(NodeId node, Tag tag, const Payload& addend);

  /// Replace item @p tag with @p parts chunk items tagged
  /// make_part_tag(tag, i); returns the part tags.  Boundaries follow
  /// chunk_bounds so builders can predict part sizes.
  std::vector<Tag> split(NodeId node, Tag tag, std::size_t parts);

  /// Like split() but with explicit part sizes (must sum to the item's
  /// size; at most 255 parts).  Used for exactly balanced bundle slicing.
  std::vector<Tag> split_sizes(NodeId node, Tag tag,
                               std::span<const std::size_t> sizes);

  /// Concatenate the items @p part_tags (erased) into a new item @p out_tag.
  void join(NodeId node, std::span<const Tag> part_tags, Tag out_tag);

  /// Deterministic derived tag for part @p i of @p tag (what split() uses).
  [[nodiscard]] static Tag make_part_tag(Tag tag, std::size_t i) noexcept;

  /// Current logical words resident on @p node.
  [[nodiscard]] std::size_t words(NodeId node) const;
  /// High-water logical words on @p node since construction / reset.
  [[nodiscard]] std::size_t peak_words(NodeId node) const;
  /// Sum of per-node peaks — the paper's "overall space used".
  [[nodiscard]] std::uint64_t total_peak_words() const;

  /// Reset peak metering to current occupancy (e.g. after staging inputs).
  void reset_peaks();

  /// Number of items on @p node.
  [[nodiscard]] std::size_t item_count(NodeId node) const;

  /// All items on @p node as (tag, words) pairs, unspecified order; what the
  /// static analyzer snapshots as a schedule's initial placement.
  [[nodiscard]] std::vector<std::pair<Tag, std::size_t>> items(
      NodeId node) const;

 private:
  struct NodeStore {
    std::unordered_map<Tag, Payload> items;
    std::size_t cur_words = 0;
    std::size_t peak_words = 0;
  };

  NodeStore& at(NodeId node);
  [[nodiscard]] const NodeStore& at(NodeId node) const;
  void bump(NodeStore& ns, std::ptrdiff_t delta);

  std::vector<NodeStore> nodes_;
};

}  // namespace hcmm
