#pragma once
// Shared simulator vocabulary: tags naming data items, the two port models
// of the paper (§2), and the linear communication-cost parameters.

#include <cstdint>

#include "hcmm/topology/hypercube.hpp"

namespace hcmm {

/// Names one data item in a node's store.  The same Tag on different nodes
/// refers to *that node's copy* (stores are per-node namespaces), which is
/// exactly what broadcast/reduce semantics need.
using Tag = std::uint64_t;

/// Structured tag from up to four 16-bit fields: (space, a, b, c).
/// `space` distinguishes matrices / phases; a,b,c are block coordinates.
[[nodiscard]] constexpr Tag make_tag(std::uint16_t space, std::uint16_t a = 0,
                                     std::uint16_t b = 0,
                                     std::uint16_t c = 0) noexcept {
  return (static_cast<Tag>(space) << 48) | (static_cast<Tag>(a) << 32) |
         (static_cast<Tag>(b) << 16) | static_cast<Tag>(c);
}

/// The two hypercube node architectures analyzed in the paper.
enum class PortModel : std::uint8_t {
  /// At most one send and one receive in flight at a time (concurrent
  /// send+receive allowed — the paper's Cannon/all-to-all accounting
  /// charges a bidirectional exchange a single t_s + t_w*m).
  kOnePort,
  /// All log p links may be driven simultaneously, one transfer per link
  /// per direction.
  kMultiPort,
};

[[nodiscard]] const char* to_string(PortModel m) noexcept;

/// Linear communication/computation cost parameters (paper §2):
/// moving m words across one link costs ts + tw*m; one scalar multiply-add
/// costs tc.  Units are arbitrary but must be consistent; the paper uses
/// "word transmission times".
struct CostParams {
  double ts = 150.0;  ///< message start-up cost (paper's headline set)
  double tw = 3.0;    ///< per-word transmission time
  double tc = 1.0;    ///< per multiply-add computation time
};

}  // namespace hcmm
