#pragma once
// Bit-manipulation helpers used throughout the hypercube topology and
// collective-schedule code.  All node ids are unsigned 32-bit; a p-processor
// hypercube has dimension d = log2(p) with p an exact power of two.

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace hcmm {

/// True iff @p x is a (positive) power of two.
[[nodiscard]] constexpr bool is_pow2(std::uint32_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x > 0.
[[nodiscard]] constexpr std::uint32_t ilog2(std::uint32_t x) {
  if (x == 0) throw std::invalid_argument("ilog2: x must be positive");
  return 31u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// Exact log2; requires x to be a power of two.
[[nodiscard]] constexpr std::uint32_t exact_log2(std::uint32_t x) {
  if (!is_pow2(x)) throw std::invalid_argument("exact_log2: not a power of two");
  return ilog2(x);
}

/// Extract bit @p k of @p x (0 = least significant).
[[nodiscard]] constexpr std::uint32_t bit_of(std::uint32_t x, std::uint32_t k) noexcept {
  return (x >> k) & 1u;
}

/// Flip bit @p k of @p x.
[[nodiscard]] constexpr std::uint32_t flip_bit(std::uint32_t x, std::uint32_t k) noexcept {
  return x ^ (1u << k);
}

/// Number of set bits — Hamming weight.
[[nodiscard]] constexpr std::uint32_t popcount32(std::uint32_t x) noexcept {
  return static_cast<std::uint32_t>(std::popcount(x));
}

/// Hamming distance between two node ids = hop distance on the hypercube.
[[nodiscard]] constexpr std::uint32_t hamming(std::uint32_t a, std::uint32_t b) noexcept {
  return popcount32(a ^ b);
}

/// Exact integer cube root for perfect cubes (p = q^3); throws otherwise.
[[nodiscard]] std::uint32_t exact_cbrt(std::uint32_t p);

/// Exact integer square root for perfect squares; throws otherwise.
[[nodiscard]] std::uint32_t exact_sqrt(std::uint32_t p);

}  // namespace hcmm
