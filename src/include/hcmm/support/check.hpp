#pragma once
// Precondition / invariant checking.  HCMM_CHECK throws hcmm::CheckError with
// a formatted message; it is used for programmer-visible API contracts and
// for the simulator's schedule validators (which must never be compiled out:
// a schedule that violates the port model silently would invalidate every
// measured cost in the benchmarks).

#include <sstream>
#include <stdexcept>
#include <string>

namespace hcmm {

/// Thrown when an HCMM_CHECK contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace hcmm

#define HCMM_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream hcmm_check_os_;                                  \
      hcmm_check_os_ << msg; /* NOLINT */                                 \
      ::hcmm::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                   hcmm_check_os_.str());                 \
    }                                                                     \
  } while (false)
