#pragma once
// Runtime CPU-feature detection for kernel dispatch.  x86 features come from
// cpuid (via the compiler's __builtin_cpu_supports, which also checks that
// the OS enabled the corresponding xsave state); AArch64 features come from
// getauxval(AT_HWCAP).  Detection runs once per process and is cached.
//
// The gemm dispatcher consumes this to pick the widest microkernel the
// machine actually supports (AVX-512 -> AVX2+FMA -> NEON -> scalar); the
// HCMM_GEMM_KERNEL environment override (parsed in matrix/gemm.cpp) can pin
// a narrower one for A/B runs and for proving the fallback paths.

#include <string>

namespace hcmm::cpu {

struct Features {
  // x86-64.  avx512 here means the F+DQ+VL subset the gemm kernel needs.
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512dq = false;
  bool avx512vl = false;
  // AArch64 (Advanced SIMD is architecturally mandatory, but we still read
  // the auxval so a future SVE bit lands the same way).
  bool neon = false;
};

/// Detected features of the executing CPU, cached after the first call.
[[nodiscard]] const Features& features();

/// Space-separated list of the detected feature names ("avx2 fma avx512f
/// ..."), or "generic" when none of the known SIMD sets is present.
[[nodiscard]] std::string summary();

}  // namespace hcmm::cpu
