#pragma once
// Binary-reflected Gray codes (BRGC).  Used to embed rings into hypercubes:
// consecutive Gray codewords differ in exactly one bit, so walking positions
// 0,1,...,2^d-1 of the code visits hypercube nodes along single links.
// Cannon's shift-multiply-add steps ride these rings (paper §3.2), and the
// Ho–Johnsson–Edelman schedule is defined in terms of the bit position in
// which successive (shifted) Gray codewords differ (paper Algorithm 1).

#include <cstdint>
#include <vector>

namespace hcmm {

/// k-th codeword of the binary-reflected Gray code.
[[nodiscard]] constexpr std::uint32_t gray_encode(std::uint32_t k) noexcept {
  return k ^ (k >> 1);
}

/// Inverse of gray_encode: the rank of codeword @p g in the BRGC sequence.
[[nodiscard]] constexpr std::uint32_t gray_decode(std::uint32_t g) noexcept {
  std::uint32_t k = 0;
  for (; g != 0; g >>= 1) k ^= g;
  return k;
}

/// Bit position in which the k-th and (k+1)-th d-bit Gray codewords differ.
/// For the BRGC this is the number of trailing ones of k ... equivalently the
/// position of the lowest set bit of (k+1).  Indices wrap modulo 2^d, so
/// gray_change_bit(2^d - 1, d) closes the ring back to codeword 0.
[[nodiscard]] std::uint32_t gray_change_bit(std::uint32_t k, std::uint32_t d);

/// The full d-bit Gray sequence: 2^d codewords, adjacent ones 1 bit apart,
/// and the last adjacent to the first (a Hamiltonian ring of the d-cube).
[[nodiscard]] std::vector<std::uint32_t> gray_sequence(std::uint32_t d);

}  // namespace hcmm
