#pragma once
// Deterministic PRNG (splitmix64 / xoshiro256**) so that every test, example
// and benchmark generates identical matrices across platforms and standard
// library versions.  std::mt19937 seeding/distributions are implementation-
// defined in subtle ways; this keeps experiment outputs reproducible.

#include <cstdint>

namespace hcmm {

/// xoshiro256** seeded through splitmix64.  Deterministic across platforms.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) via rejection-free Lemire reduction.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace hcmm
