#pragma once
// Minimal fixed-size thread pool used to run the per-node local gemm work of
// a simulated phase in parallel, and by the threaded gemm kernel.  Jobs in a
// batch must write to disjoint outputs; results are then independent of
// scheduling, keeping every run bit-reproducible.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcmm {

class ThreadPool {
 public:
  /// @p n_threads 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Run all @p jobs (possibly on the calling thread too) and wait for
  /// completion.  Exceptions from jobs are rethrown (first one wins).
  void run_batch(std::vector<std::function<void()>> jobs);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::function<void()>>* batch_ = nullptr;
  std::size_t next_job_ = 0;
  std::size_t jobs_done_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace hcmm
