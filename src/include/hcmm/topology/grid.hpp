#pragma once
// Virtual 2-D and 3-D processor grids embedded into a hypercube.
//
// Embedding: the node id is split into one bit field per grid axis and each
// coordinate is placed in its field in *binary-reflected Gray code*.  Two
// consequences, both used by the algorithms (paper §2, §3.2):
//   1. every one-dimensional chain of the grid (fix all coordinates but one)
//      is a subcube, so collectives inside a chain run at hypercube speed;
//   2. consecutive coordinates along an axis differ in exactly one bit, so a
//      circular unit shift along a grid line crosses exactly one link —
//      which is what makes Cannon's shift-multiply-add steps cost
//      t_s + t_w*m each.

#include <array>
#include <cstdint>

#include "hcmm/topology/hypercube.hpp"

namespace hcmm {

/// A q x q grid of processors (p = q^2) embedded in a (2 log q)-cube.
/// Coordinates are (row r, col c); matrices map block (i,j) to grid (i,j).
class Grid2D {
 public:
  /// @p p total processors; must be an even power of two (p = q^2).
  explicit Grid2D(std::uint32_t p);

  [[nodiscard]] std::uint32_t p() const noexcept { return q_ * q_; }
  [[nodiscard]] std::uint32_t q() const noexcept { return q_; }
  /// log2(q): the dimension of each chain subcube.
  [[nodiscard]] std::uint32_t chain_dim() const noexcept { return g_; }
  [[nodiscard]] const Hypercube& cube() const noexcept { return cube_; }

  /// Hypercube node hosting grid position (row, col).
  [[nodiscard]] NodeId node(std::uint32_t row, std::uint32_t col) const;
  /// Inverse of node(): {row, col}.
  [[nodiscard]] std::array<std::uint32_t, 2> coords(NodeId n) const;

  /// Chain subcube of row @p row (col varies).
  [[nodiscard]] Subcube row_chain(std::uint32_t row) const;
  /// Chain subcube of column @p col (row varies).
  [[nodiscard]] Subcube col_chain(std::uint32_t col) const;

 private:
  std::uint32_t q_;
  std::uint32_t g_;  // log2(q)
  Hypercube cube_;
};

/// A q x q x q grid of processors (p = q^3) embedded in a (3 log q)-cube.
/// Coordinates follow the paper's p_{i,j,k} convention: i runs along the
/// x-direction, j along y, k along z.  f(i,j) = i*q + j (paper §4.2).
class Grid3D {
 public:
  /// @p p total processors; must be a power of two that is a perfect cube.
  explicit Grid3D(std::uint32_t p);

  [[nodiscard]] std::uint32_t p() const noexcept { return q_ * q_ * q_; }
  [[nodiscard]] std::uint32_t q() const noexcept { return q_; }
  [[nodiscard]] std::uint32_t chain_dim() const noexcept { return g_; }
  [[nodiscard]] const Hypercube& cube() const noexcept { return cube_; }

  /// Hypercube node hosting grid position (i, j, k) = (x, y, z).
  [[nodiscard]] NodeId node(std::uint32_t i, std::uint32_t j,
                            std::uint32_t k) const;
  /// Inverse of node(): {i, j, k}.
  [[nodiscard]] std::array<std::uint32_t, 3> coords(NodeId n) const;

  /// Chain along x: {p_{*,j,k}}.
  [[nodiscard]] Subcube x_chain(std::uint32_t j, std::uint32_t k) const;
  /// Chain along y: {p_{i,*,k}}.
  [[nodiscard]] Subcube y_chain(std::uint32_t i, std::uint32_t k) const;
  /// Chain along z: {p_{i,j,*}}.
  [[nodiscard]] Subcube z_chain(std::uint32_t i, std::uint32_t j) const;

  /// The paper's linearization f(i,j) = i*q + j of an x-y position.
  [[nodiscard]] std::uint32_t f(std::uint32_t i, std::uint32_t j) const;

 private:
  std::uint32_t q_;
  std::uint32_t g_;  // log2(q)
  Hypercube cube_;
};

/// A qx x qy x qz grid of processors (p = qx*qy*qz, each side a power of
/// two) embedded in a hypercube — the shape behind the paper's §4.2.2
/// closing remark: a p^{1/4} x p^{1/4} x sqrt(p) grid lets the 3-D All
/// scheme use up to n^2 processors.  Same Gray-coded bit-field embedding as
/// the square grids.
class Grid3DRect {
 public:
  Grid3DRect(std::uint32_t qx, std::uint32_t qy, std::uint32_t qz);

  [[nodiscard]] std::uint32_t p() const noexcept { return qx_ * qy_ * qz_; }
  [[nodiscard]] std::uint32_t qx() const noexcept { return qx_; }
  [[nodiscard]] std::uint32_t qy() const noexcept { return qy_; }
  [[nodiscard]] std::uint32_t qz() const noexcept { return qz_; }
  [[nodiscard]] const Hypercube& cube() const noexcept { return cube_; }

  [[nodiscard]] NodeId node(std::uint32_t i, std::uint32_t j,
                            std::uint32_t k) const;
  [[nodiscard]] std::array<std::uint32_t, 3> coords(NodeId n) const;

  [[nodiscard]] Subcube x_chain(std::uint32_t j, std::uint32_t k) const;
  [[nodiscard]] Subcube y_chain(std::uint32_t i, std::uint32_t k) const;
  [[nodiscard]] Subcube z_chain(std::uint32_t i, std::uint32_t j) const;

  /// f(i,j) = i*qy + j, the x-y linearization (range [0, qx*qy)).
  [[nodiscard]] std::uint32_t f(std::uint32_t i, std::uint32_t j) const;

 private:
  std::uint32_t qx_, qy_, qz_;
  std::uint32_t gx_, gy_, gz_;  // per-axis log2 sizes
  Hypercube cube_;
};

}  // namespace hcmm
