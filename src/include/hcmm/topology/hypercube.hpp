#pragma once
// The 2-ary n-cube ("hypercube") topology.  Nodes are numbered 0..2^d-1 and
// two nodes are joined by a (full-duplex) link iff their ids differ in
// exactly one bit.  All communication in the simulator happens along these
// links only; anything longer-range is routed hop by hop.

#include <cstdint>
#include <vector>

#include "hcmm/support/bits.hpp"

namespace hcmm {

using NodeId = std::uint32_t;

/// A d-dimensional hypercube with 2^d nodes.
class Hypercube {
 public:
  /// Construct a hypercube of dimension @p dim (2^dim nodes); dim <= 20.
  explicit Hypercube(std::uint32_t dim);

  /// Construct the hypercube with exactly @p p nodes; p must be a power of 2.
  [[nodiscard]] static Hypercube with_nodes(std::uint32_t p);

  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return 1u << dim_; }

  /// Neighbor of @p node across dimension @p k (flip bit k).
  [[nodiscard]] NodeId neighbor(NodeId node, std::uint32_t k) const;

  /// True iff @p a and @p b are joined by a link.
  [[nodiscard]] bool are_neighbors(NodeId a, NodeId b) const noexcept {
    return a < size() && b < size() && hamming(a, b) == 1;
  }

  /// Hop distance (Hamming distance) between two nodes.
  [[nodiscard]] std::uint32_t distance(NodeId a, NodeId b) const;

  /// All dim() neighbors of @p node.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  /// Total number of (undirected) links: d * 2^(d-1).
  [[nodiscard]] std::uint64_t link_count() const noexcept {
    return dim_ == 0 ? 0 : static_cast<std::uint64_t>(dim_) << (dim_ - 1);
  }

  [[nodiscard]] bool contains(NodeId node) const noexcept { return node < size(); }

 private:
  std::uint32_t dim_;
};

/// A subcube of a larger hypercube: the set of nodes agreeing with @p base on
/// every bit outside @p dims_mask.  One-dimensional chains of a virtual grid
/// embedded by bit fields are exactly such subcubes (paper §2), which is what
/// lets every collective run at hypercube speed inside a grid line.
class Subcube {
 public:
  /// @p base      a member node (its bits inside dims_mask are ignored)
  /// @p dims_mask bitmask of the free dimensions
  Subcube(NodeId base, std::uint32_t dims_mask);

  /// Number of free dimensions (the subcube's own hypercube dimension).
  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  /// Number of member nodes, 2^dim().
  [[nodiscard]] std::uint32_t size() const noexcept { return 1u << dim_; }
  /// Global bit position of the k-th free dimension (ascending order).
  [[nodiscard]] std::uint32_t dim_bit(std::uint32_t k) const;
  /// Bitmask of free dimensions.
  [[nodiscard]] std::uint32_t dims_mask() const noexcept { return dims_mask_; }
  /// The fixed bits shared by every member.
  [[nodiscard]] NodeId base() const noexcept { return base_; }

  /// Member with local rank @p r: bits of r spread over the free dimensions.
  [[nodiscard]] NodeId node_at(std::uint32_t r) const;
  /// Local rank of member @p node (inverse of node_at).
  [[nodiscard]] std::uint32_t rank_of(NodeId node) const;
  [[nodiscard]] bool contains(NodeId node) const noexcept {
    return (node & ~dims_mask_) == base_;
  }

  /// All members in rank order.
  [[nodiscard]] std::vector<NodeId> nodes() const;

 private:
  NodeId base_;
  std::uint32_t dims_mask_;
  std::uint32_t dim_;
  std::vector<std::uint32_t> bit_positions_;
};

}  // namespace hcmm
