#include "hcmm/matrix/gemm.hpp"

#include <algorithm>
#include <functional>

#include "hcmm/support/check.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm {
namespace {

constexpr std::size_t kTile = 64;

// C[r0:r1] += A[r0:r1] * B, tiled over k and j for cache reuse.
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t kk = a.cols();
  const std::size_t nn = b.cols();
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();
  for (std::size_t k0 = 0; k0 < kk; k0 += kTile) {
    const std::size_t k1 = std::min(kk, k0 + kTile);
    for (std::size_t j0 = 0; j0 < nn; j0 += kTile) {
      const std::size_t j1 = std::min(nn, j0 + kTile);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = pa + i * kk;
        double* crow = pc + i * nn;
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = arow[k];
          const double* brow = pb + k * nn;
          for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

Matrix multiply_naive(const Matrix& a, const Matrix& b) {
  HCMM_CHECK(a.cols() == b.rows(), "multiply: inner dimensions differ ("
                                       << a.cols() << " vs " << b.rows() << ")");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

void gemm_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  HCMM_CHECK(a.cols() == b.rows(), "gemm_accumulate: inner dimensions differ ("
                                       << a.cols() << " vs " << b.rows() << ")");
  HCMM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
             "gemm_accumulate: output shape mismatch");
  gemm_rows(a, b, c, 0, a.rows());
}

Matrix multiply_tiled(const Matrix& a, const Matrix& b) {
  HCMM_CHECK(a.cols() == b.rows(), "multiply: inner dimensions differ");
  Matrix c(a.rows(), b.cols());
  gemm_rows(a, b, c, 0, a.rows());
  return c;
}

Matrix multiply_threaded(const Matrix& a, const Matrix& b, ThreadPool& pool) {
  HCMM_CHECK(a.cols() == b.rows(), "multiply: inner dimensions differ");
  Matrix c(a.rows(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t nchunks = std::min(m, 4 * pool.thread_count());
  if (nchunks <= 1) {
    gemm_rows(a, b, c, 0, m);
    return c;
  }
  std::vector<std::function<void()>> jobs;
  jobs.reserve(nchunks);
  for (std::size_t t = 0; t < nchunks; ++t) {
    const std::size_t r0 = m * t / nchunks;
    const std::size_t r1 = m * (t + 1) / nchunks;
    if (r0 == r1) continue;
    jobs.push_back([&a, &b, &c, r0, r1] { gemm_rows(a, b, c, r0, r1); });
  }
  pool.run_batch(std::move(jobs));
  return c;
}

}  // namespace hcmm
