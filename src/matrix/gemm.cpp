#include "hcmm/matrix/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "gemm_kernels.hpp"
#include "hcmm/matrix/gemm_verify.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/support/cpu.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm {
namespace {

std::atomic<GemmKernel> g_kernel{GemmKernel::kMicro};

// ---------------------------------------------------------------------------
// Bit-exact rung: the register-blocked scalar microkernel (kMicro, the
// verification-ladder oracle) and the legacy cache-tiled kernel.  Both obey
// the strictly-ascending-k one-rounded-multiply-one-rounded-add contract,
// so they equal multiply_naive to the bit.

// Register blocking of the oracle microkernel: each update keeps a kMR x kNR
// block of C in accumulators, so C is loaded/stored once per k-panel instead
// of once per k step (the legacy kernel's main memory-traffic cost).
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;
// k-panel depth: kMR rows of packed A (kKC*kMR doubles) plus the B lines the
// panel touches stay cache-resident across the j sweep.
constexpr std::size_t kKC = 256;

constexpr std::size_t kTile = 64;  // legacy kernel's cache tile

// Legacy kernel: C[r0:r1] += A[r0:r1] * B, tiled over k and j for cache
// reuse, scalar accumulation through memory.  Kept selectable so the bench
// harness can measure the microkernel against it on identical inputs.
void gemm_rows_legacy(MatrixView a, MatrixView b, Matrix& c, std::size_t r0,
                      std::size_t r1) {
  const std::size_t kk = a.cols;
  const std::size_t nn = b.cols;
  const double* pa = a.ptr;
  const double* pb = b.ptr;
  double* pc = c.data().data();
  for (std::size_t k0 = 0; k0 < kk; k0 += kTile) {
    const std::size_t k1 = std::min(kk, k0 + kTile);
    for (std::size_t j0 = 0; j0 < nn; j0 += kTile) {
      const std::size_t j1 = std::min(nn, j0 + kTile);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = pa + i * kk;
        double* crow = pc + i * nn;
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = arow[k];
          const double* brow = pb + k * nn;
          for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

// Oracle microkernel path: C[r0:r1] += A[r0:r1] * B.  A's rows are packed
// into kMR-interleaved micro-panels (unit-stride loads in the inner loop);
// full kMR x kNR blocks run in register accumulators, with scalar tail paths
// for the ragged row/column edges.  Per C element the arithmetic is the
// exact k-ascending mul-add sequence of the legacy kernel, so results are
// bit-identical.
void gemm_rows_micro(MatrixView a, MatrixView b, Matrix& c, std::size_t r0,
                     std::size_t r1) {
  const std::size_t kk = a.cols;
  const std::size_t nn = b.cols;
  const double* pa = a.ptr;
  const double* pb = b.ptr;
  double* pc = c.data().data();
  if (r0 >= r1 || kk == 0 || nn == 0) return;

  std::vector<double> apack(kMR * std::min(kKC, kk));
  const std::size_t full_rows = r0 + ((r1 - r0) / kMR) * kMR;

  for (std::size_t k0 = 0; k0 < kk; k0 += kKC) {
    const std::size_t kc = std::min(kKC, kk - k0);
    for (std::size_t i0 = r0; i0 < full_rows; i0 += kMR) {
      // Pack the panel: apack[k*kMR + r] = A(i0+r, k0+k).
      for (std::size_t k = 0; k < kc; ++k) {
        for (std::size_t r = 0; r < kMR; ++r) {
          apack[k * kMR + r] = pa[(i0 + r) * kk + k0 + k];
        }
      }
      std::size_t j0 = 0;
      for (; j0 + kNR <= nn; j0 += kNR) {
        double acc[kMR][kNR];
        for (std::size_t r = 0; r < kMR; ++r) {
          const double* crow = pc + (i0 + r) * nn + j0;
          for (std::size_t jj = 0; jj < kNR; ++jj) acc[r][jj] = crow[jj];
        }
        const double* ap = apack.data();
        for (std::size_t k = 0; k < kc; ++k, ap += kMR) {
          const double* brow = pb + (k0 + k) * nn + j0;
          for (std::size_t r = 0; r < kMR; ++r) {
            const double ar = ap[r];
            for (std::size_t jj = 0; jj < kNR; ++jj) {
              acc[r][jj] += ar * brow[jj];
            }
          }
        }
        for (std::size_t r = 0; r < kMR; ++r) {
          double* crow = pc + (i0 + r) * nn + j0;
          for (std::size_t jj = 0; jj < kNR; ++jj) crow[jj] = acc[r][jj];
        }
      }
      // Column tail (nn % kNR): scalar, same k order, packed A reused.
      for (; j0 < nn; ++j0) {
        for (std::size_t r = 0; r < kMR; ++r) {
          double cv = pc[(i0 + r) * nn + j0];
          const double* ap = apack.data() + r;
          for (std::size_t k = 0; k < kc; ++k) {
            cv += ap[k * kMR] * pb[(k0 + k) * nn + j0];
          }
          pc[(i0 + r) * nn + j0] = cv;
        }
      }
    }
    // Row tail ((r1-r0) % kMR): plain scalar rows over this k-panel.
    for (std::size_t i = full_rows; i < r1; ++i) {
      const double* arow = pa + i * kk;
      double* crow = pc + i * nn;
      for (std::size_t j = 0; j < nn; ++j) {
        double cv = crow[j];
        for (std::size_t k = k0; k < k0 + kc; ++k) {
          cv += arow[k] * pb[k * nn + j];
        }
        crow[j] = cv;
      }
    }
  }
}

void gemm_rows(MatrixView a, MatrixView b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  if (g_kernel.load(std::memory_order_relaxed) == GemmKernel::kLegacyTiled) {
    gemm_rows_legacy(a, b, c, r0, r1);
  } else {
    gemm_rows_micro(a, b, c, r0, r1);
  }
}

// ---------------------------------------------------------------------------
// ULP-bounded rung: the vectorized BLIS hierarchy.
//
//   for jc in steps of NC:                       (columns of B/C)
//     for k0 in steps of KC:                     (depth)
//       pack B(k0:k0+kc, jc:jc+nc) -> nr-interleaved panels   [~L3]
//       for ic in steps of MC:                   (rows of A/C)
//         pack A(ic:ic+mc, k0:k0+kc) -> mr-interleaved panels [~L2]
//         for jr, ir over the packed panels:     (macrokernel)
//           microkernel: mr x nr register tile, kc-deep FMA   [~L1/regs]
//
// Full tiles run straight into C; edge tiles (m % mr, n % nr) run into a
// zeroed mr x nr scratch tile whose valid region is then added to C — the
// packed panels are zero-padded so the scratch lanes are exact zeros.

constexpr std::size_t kVecMC = 128;   // rows per packed-A block
constexpr std::size_t kVecKC = 256;   // k-panel depth
constexpr std::size_t kVecNC = 2048;  // columns per packed-B panel
constexpr std::size_t kMaxMR = 8;     // largest mr over all microkernels
constexpr std::size_t kMaxNR = 16;    // largest nr over all microkernels

[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

// Pack the mc x kc block of A at @p a (row stride lda) into mr-interleaved
// micropanels: out[panel][k*mr + r] = A(panel*mr + r, k), missing rows of
// the last panel zero-padded.
void pack_a_block(const double* a, std::size_t lda, std::size_t mc,
                  std::size_t kc, std::size_t mr, double* out) {
  for (std::size_t i0 = 0; i0 < mc; i0 += mr) {
    const std::size_t rows = std::min(mr, mc - i0);
    for (std::size_t k = 0; k < kc; ++k) {
      for (std::size_t r = 0; r < rows; ++r) {
        out[k * mr + r] = a[(i0 + r) * lda + k];
      }
      for (std::size_t r = rows; r < mr; ++r) out[k * mr + r] = 0.0;
    }
    out += kc * mr;
  }
}

// Pack the kc x nc block of B at @p b (row stride ldb) into nr-interleaved
// panels: out[panel][k*nr + j] = B(k, panel*nr + j), missing columns of the
// last panel zero-padded.
void pack_b_block(const double* b, std::size_t ldb, std::size_t kc,
                  std::size_t nc, std::size_t nr, double* out) {
  for (std::size_t j0 = 0; j0 < nc; j0 += nr) {
    const std::size_t cols = std::min(nr, nc - j0);
    double* dst = out;
    for (std::size_t k = 0; k < kc; ++k, dst += nr) {
      const double* src = b + k * ldb + j0;
      for (std::size_t j = 0; j < cols; ++j) dst[j] = src[j];
      for (std::size_t j = cols; j < nr; ++j) dst[j] = 0.0;
    }
    out += kc * nr;
  }
}

// C[0:mc, 0:nc] += Apack * Bpack over one (mc x kc) x (kc x nc) block pair.
void macro_kernel(const gemmk::MicroKernel& uk, const double* apack,
                  const double* bpack, std::size_t mc, std::size_t nc,
                  std::size_t kc, double* c, std::size_t ldc) {
  const std::size_t mr = uk.mr;
  const std::size_t nr = uk.nr;
  for (std::size_t j0 = 0; j0 < nc; j0 += nr) {
    const std::size_t cols = std::min(nr, nc - j0);
    const double* bp = bpack + (j0 / nr) * kc * nr;
    for (std::size_t i0 = 0; i0 < mc; i0 += mr) {
      const std::size_t rows = std::min(mr, mc - i0);
      const double* ap = apack + (i0 / mr) * kc * mr;
      double* cblk = c + i0 * ldc + j0;
      if (rows == mr && cols == nr) {
        uk.fn(kc, ap, bp, cblk, ldc);
      } else {
        double tile[kMaxMR * kMaxNR] = {};
        uk.fn(kc, ap, bp, tile, nr);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t j = 0; j < cols; ++j) {
            cblk[r * ldc + j] += tile[r * nr + j];
          }
        }
      }
    }
  }
}

// The vector-path driver.  With a pool, B packing is split across threads
// and the MC row blocks of each (jc, k0) panel pair run as one batch; every
// C element is computed by exactly one job with arithmetic independent of
// the split, so threaded and serial runs are bit-identical to each other.
void gemm_vector(const gemmk::MicroKernel& uk, MatrixView a, MatrixView b,
                 Matrix& c, ThreadPool* pool) {
  const std::size_t m = a.rows;
  const std::size_t kk = a.cols;
  const std::size_t nn = b.cols;
  if (m == 0 || kk == 0 || nn == 0) return;
  const std::size_t mr = uk.mr;
  const std::size_t nr = uk.nr;
  double* pc = c.data().data();

  std::vector<double> bpack(ceil_div(std::min(kVecNC, nn), nr) * nr * kVecKC);
  std::vector<double> apack;  // serial path only; jobs allocate their own

  for (std::size_t jc = 0; jc < nn; jc += kVecNC) {
    const std::size_t nc = std::min(kVecNC, nn - jc);
    for (std::size_t k0 = 0; k0 < kk; k0 += kVecKC) {
      const std::size_t kc = std::min(kVecKC, kk - k0);
      const double* bsrc = b.ptr + k0 * nn + jc;
      const std::size_t npanels = ceil_div(nc, nr);
      if (pool != nullptr && npanels > 1) {
        // Multithreaded packing: disjoint nr-panel ranges per job.
        const std::size_t nchunks =
            std::min(npanels, std::max<std::size_t>(1, pool->thread_count()));
        std::vector<std::function<void()>> jobs;
        jobs.reserve(nchunks);
        for (std::size_t t = 0; t < nchunks; ++t) {
          const std::size_t p0 = npanels * t / nchunks;
          const std::size_t p1 = npanels * (t + 1) / nchunks;
          if (p0 == p1) continue;
          jobs.push_back([&, p0, p1] {
            pack_b_block(bsrc + p0 * nr, nn, kc,
                         std::min(nc, p1 * nr) - p0 * nr, nr,
                         bpack.data() + p0 * nr * kc);
          });
        }
        pool->run_batch(std::move(jobs));
      } else {
        pack_b_block(bsrc, nn, kc, nc, nr, bpack.data());
      }

      const std::size_t nblocks = ceil_div(m, kVecMC);
      if (pool != nullptr && nblocks > 1) {
        // Macro-loop parallelism: each job packs its own A block and owns
        // a disjoint row range of C.
        std::vector<std::function<void()>> jobs;
        jobs.reserve(nblocks);
        for (std::size_t blk = 0; blk < nblocks; ++blk) {
          const std::size_t ic = blk * kVecMC;
          const std::size_t mc = std::min(kVecMC, m - ic);
          jobs.push_back([&, ic, mc] {
            std::vector<double> ap(ceil_div(mc, mr) * mr * kc);
            pack_a_block(a.ptr + ic * kk + k0, kk, mc, kc, mr, ap.data());
            macro_kernel(uk, ap.data(), bpack.data(), mc, nc, kc,
                         pc + ic * nn + jc, nn);
          });
        }
        pool->run_batch(std::move(jobs));
      } else {
        apack.resize(ceil_div(std::min(kVecMC, m), mr) * mr * kc);
        for (std::size_t ic = 0; ic < m; ic += kVecMC) {
          const std::size_t mc = std::min(kVecMC, m - ic);
          pack_a_block(a.ptr + ic * kk + k0, kk, mc, kc, mr, apack.data());
          macro_kernel(uk, apack.data(), bpack.data(), mc, nc, kc,
                       pc + ic * nn + jc, nn);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch: environment override, CPU-feature resolution, ULP self-test.

struct EnvSelect {
  std::optional<GemmKernel> kernel;  ///< process-default override
  std::optional<std::string> isa;    ///< vector-path microkernel pin
};

/// Strict parse of HCMM_GEMM_KERNEL — the same reject-garbage discipline as
/// HCMM_RT_TIMEOUT_MS: an unknown value throws instead of silently running
/// a kernel the operator did not ask for.
[[nodiscard]] EnvSelect parse_env_kernel() {
  const char* env = std::getenv("HCMM_GEMM_KERNEL");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return {};
  const std::string v(env);
  EnvSelect s;
  if (v == "oracle" || v == "micro") {
    s.kernel = GemmKernel::kMicro;
  } else if (v == "legacy") {
    s.kernel = GemmKernel::kLegacyTiled;
  } else if (v == "vector") {
    s.kernel = GemmKernel::kVector;
  } else if (v == "scalar" || v == "avx2" || v == "avx512" || v == "neon") {
    s.kernel = GemmKernel::kVector;
    s.isa = v;
  } else {
    HCMM_CHECK(false, "HCMM_GEMM_KERNEL: expected one of oracle|micro|legacy|"
                      "vector|scalar|avx2|avx512|neon, got \""
                          << v << "\"");
  }
  return s;
}

[[nodiscard]] bool isa_supported(const std::string& isa) {
  const cpu::Features& f = cpu::features();
  if (isa == "avx512") return f.avx512f && f.avx512dq && f.avx512vl;
  if (isa == "avx2") return f.avx2 && f.fma;
  if (isa == "neon") return f.neon;
  return isa == "scalar";
}

[[nodiscard]] gemmk::MicroKernel kernel_for(const std::string& isa) {
  if (isa == "avx512") return gemmk::avx512_kernel();
  if (isa == "avx2") return gemmk::avx2_kernel();
  if (isa == "neon") return gemmk::neon_kernel();
  return gemmk::scalar_kernel();
}

[[nodiscard]] gemmk::MicroKernel resolve_kernel(
    const std::optional<std::string>& pin) {
  if (pin) {
    const gemmk::MicroKernel k = kernel_for(*pin);
    HCMM_CHECK(k.fn != nullptr,
               "HCMM_GEMM_KERNEL: ISA \"" << *pin
                                          << "\" is not compiled into this "
                                             "build");
    HCMM_CHECK(isa_supported(*pin), "HCMM_GEMM_KERNEL: ISA \""
                                        << *pin
                                        << "\" is not supported by this CPU");
    return k;
  }
  for (const char* isa : {"avx512", "avx2", "neon"}) {
    const gemmk::MicroKernel k = kernel_for(isa);
    if (k.fn != nullptr && isa_supported(isa)) return k;
  }
  return gemmk::scalar_kernel();
}

/// The dispatch gate: before a vectorized kernel is published, its results
/// over a few tail-heavy shapes must sit within the ULP bound of the
/// bit-exact oracle.  A miscompiled or wrong kernel is off by whole values
/// (~1e12 ULPs), so this cheap check can never pass one.
void self_test(const gemmk::MicroKernel& uk) {
  constexpr struct {
    std::size_t m, k, n;
  } kShapes[] = {{4, 8, 8}, {5, 9, 17}, {3, 300, 7}};
  for (const auto& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, 7001 + s.m);
    const Matrix b = random_matrix(s.k, s.n, 7002 + s.n);
    const Matrix oracle = multiply_naive(a, b);
    Matrix c(s.m, s.n);
    gemm_vector(uk, a, b, c, nullptr);
    const GemmCompare cmp =
        compare_gemm(c, oracle, s.k, max_abs(a), max_abs(b));
    HCMM_CHECK(cmp.ok, "gemm self-test: vector kernel '"
                           << uk.isa << "' diverges from the oracle by "
                           << cmp.max_abs_diff << " (" << cmp.max_ulp
                           << " ULPs) at " << s.m << "x" << s.k << "x" << s.n
                           << ", beyond tolerance " << cmp.tolerance);
  }
}

// Environment and dispatch state, read once per process; the reset hook
// drops it the way rt::reset_env_overrides_for_testing does.
std::mutex g_gemm_mu;
bool g_env_applied = false;     // NOLINT
EnvSelect g_env;                // NOLINT
bool g_vec_resolved = false;    // NOLINT
gemmk::MicroKernel g_vec;       // NOLINT

void apply_env_locked() {
  if (g_env_applied) return;
  g_env = parse_env_kernel();
  g_env_applied = true;
  if (g_env.kernel) g_kernel.store(*g_env.kernel, std::memory_order_relaxed);
}

void ensure_env() {
  std::lock_guard lock(g_gemm_mu);
  apply_env_locked();
}

[[nodiscard]] gemmk::MicroKernel vector_kernel() {
  std::lock_guard lock(g_gemm_mu);
  apply_env_locked();
  if (!g_vec_resolved) {
    const gemmk::MicroKernel k = resolve_kernel(g_env.isa);
    self_test(k);  // throws on failure; resolution retried next call
    g_vec = k;
    g_vec_resolved = true;
  }
  return g_vec;
}

}  // namespace

void set_gemm_kernel(GemmKernel k) noexcept {
  g_kernel.store(k, std::memory_order_relaxed);
}

GemmKernel gemm_kernel() noexcept {
  return g_kernel.load(std::memory_order_relaxed);
}

GemmIdent gemm_ident() {
  ensure_env();
  switch (g_kernel.load(std::memory_order_relaxed)) {
    case GemmKernel::kLegacyTiled:
      return {"legacy", "scalar-exact", 1, kTile};
    case GemmKernel::kVector:
      return gemm_vector_ident();
    case GemmKernel::kMicro:
      break;
  }
  return {"micro", "scalar-exact", kMR, kNR};
}

GemmIdent gemm_vector_ident() {
  const gemmk::MicroKernel k = vector_kernel();
  return {"vector", k.isa, k.mr, k.nr};
}

std::vector<std::string> gemm_vector_isas() {
  std::vector<std::string> out;
  for (const char* isa : {"avx512", "avx2", "neon"}) {
    if (kernel_for(isa).fn != nullptr && isa_supported(isa)) {
      out.emplace_back(isa);
    }
  }
  out.emplace_back("scalar");
  return out;
}

void reset_gemm_env_for_testing() {
  std::lock_guard lock(g_gemm_mu);
  g_env_applied = false;
  g_env = {};
  g_vec_resolved = false;
  g_vec = {};
  g_kernel.store(GemmKernel::kMicro, std::memory_order_relaxed);
}

Matrix multiply_naive(const Matrix& a, const Matrix& b) {
  HCMM_CHECK(a.cols() == b.rows(), "multiply: inner dimensions differ ("
                                       << a.cols() << " vs " << b.rows() << ")");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

void gemm_accumulate(MatrixView a, MatrixView b, Matrix& c) {
  HCMM_CHECK(a.cols == b.rows, "gemm_accumulate: inner dimensions differ ("
                                   << a.cols << " vs " << b.rows << ")");
  HCMM_CHECK(c.rows() == a.rows && c.cols() == b.cols,
             "gemm_accumulate: output shape mismatch");
  ensure_env();
  if (g_kernel.load(std::memory_order_relaxed) == GemmKernel::kVector) {
    gemm_vector(vector_kernel(), a, b, c, nullptr);
  } else {
    gemm_rows(a, b, c, 0, a.rows);
  }
}

void gemm_accumulate_fast(MatrixView a, MatrixView b, Matrix& c) {
  HCMM_CHECK(a.cols == b.rows, "gemm_accumulate_fast: inner dimensions differ ("
                                   << a.cols << " vs " << b.rows << ")");
  HCMM_CHECK(c.rows() == a.rows && c.cols() == b.cols,
             "gemm_accumulate_fast: output shape mismatch");
  gemm_vector(vector_kernel(), a, b, c, nullptr);
}

Matrix multiply_tiled(MatrixView a, MatrixView b) {
  HCMM_CHECK(a.cols == b.rows, "multiply: inner dimensions differ");
  Matrix c(a.rows, b.cols);
  ensure_env();
  if (g_kernel.load(std::memory_order_relaxed) == GemmKernel::kVector) {
    gemm_vector(vector_kernel(), a, b, c, nullptr);
  } else {
    gemm_rows(a, b, c, 0, a.rows);
  }
  return c;
}

Matrix multiply_threaded(MatrixView a, MatrixView b, ThreadPool& pool) {
  HCMM_CHECK(a.cols == b.rows, "multiply: inner dimensions differ");
  Matrix c(a.rows, b.cols);
  ensure_env();
  const std::size_t m = a.rows;
  if (g_kernel.load(std::memory_order_relaxed) == GemmKernel::kVector) {
    // Blocked parallelism: threaded B packing + MC-block macro loops.
    gemm_vector(vector_kernel(), a, b, c, &pool);
    return c;
  }
  // Bit-exact kernels: split over whole rows — thread count can never touch
  // an element's summation order.
  const std::size_t nchunks = std::min(m, 4 * pool.thread_count());
  if (nchunks <= 1) {
    gemm_rows(a, b, c, 0, m);
    return c;
  }
  std::vector<std::function<void()>> jobs;
  jobs.reserve(nchunks);
  for (std::size_t t = 0; t < nchunks; ++t) {
    const std::size_t r0 = m * t / nchunks;
    const std::size_t r1 = m * (t + 1) / nchunks;
    if (r0 == r1) continue;
    jobs.push_back([a, b, &c, r0, r1] { gemm_rows(a, b, c, r0, r1); });
  }
  pool.run_batch(std::move(jobs));
  return c;
}

}  // namespace hcmm
