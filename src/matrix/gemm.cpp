#include "hcmm/matrix/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <vector>

#include "hcmm/support/check.hpp"
#include "hcmm/support/thread_pool.hpp"

namespace hcmm {
namespace {

std::atomic<GemmKernel> g_kernel{GemmKernel::kMicro};

// Register blocking of the microkernel: each update keeps a kMR x kNR block
// of C in accumulators, so C is loaded/stored once per k-panel instead of
// once per k step (the legacy kernel's main memory-traffic cost).
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;
// k-panel depth: kMR rows of packed A (kKC*kMR doubles) plus the B lines the
// panel touches stay cache-resident across the j sweep.
constexpr std::size_t kKC = 256;

constexpr std::size_t kTile = 64;  // legacy kernel's cache tile

// Legacy kernel: C[r0:r1] += A[r0:r1] * B, tiled over k and j for cache
// reuse, scalar accumulation through memory.  Kept selectable so the bench
// harness can measure the microkernel against it on identical inputs.
void gemm_rows_legacy(MatrixView a, MatrixView b, Matrix& c, std::size_t r0,
                      std::size_t r1) {
  const std::size_t kk = a.cols;
  const std::size_t nn = b.cols;
  const double* pa = a.ptr;
  const double* pb = b.ptr;
  double* pc = c.data().data();
  for (std::size_t k0 = 0; k0 < kk; k0 += kTile) {
    const std::size_t k1 = std::min(kk, k0 + kTile);
    for (std::size_t j0 = 0; j0 < nn; j0 += kTile) {
      const std::size_t j1 = std::min(nn, j0 + kTile);
      for (std::size_t i = r0; i < r1; ++i) {
        const double* arow = pa + i * kk;
        double* crow = pc + i * nn;
        for (std::size_t k = k0; k < k1; ++k) {
          const double aik = arow[k];
          const double* brow = pb + k * nn;
          for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

// Microkernel path: C[r0:r1] += A[r0:r1] * B.  A's rows are packed into
// kMR-interleaved micro-panels (unit-stride loads in the inner loop); full
// kMR x kNR blocks run in register accumulators, with scalar tail paths for
// the ragged row/column edges.  Per C element the arithmetic is the exact
// k-ascending mul-add sequence of the legacy kernel, so results are
// bit-identical.
void gemm_rows_micro(MatrixView a, MatrixView b, Matrix& c, std::size_t r0,
                     std::size_t r1) {
  const std::size_t kk = a.cols;
  const std::size_t nn = b.cols;
  const double* pa = a.ptr;
  const double* pb = b.ptr;
  double* pc = c.data().data();
  if (r0 >= r1 || kk == 0 || nn == 0) return;

  std::vector<double> apack(kMR * std::min(kKC, kk));
  const std::size_t full_rows = r0 + ((r1 - r0) / kMR) * kMR;

  for (std::size_t k0 = 0; k0 < kk; k0 += kKC) {
    const std::size_t kc = std::min(kKC, kk - k0);
    for (std::size_t i0 = r0; i0 < full_rows; i0 += kMR) {
      // Pack the panel: apack[k*kMR + r] = A(i0+r, k0+k).
      for (std::size_t k = 0; k < kc; ++k) {
        for (std::size_t r = 0; r < kMR; ++r) {
          apack[k * kMR + r] = pa[(i0 + r) * kk + k0 + k];
        }
      }
      std::size_t j0 = 0;
      for (; j0 + kNR <= nn; j0 += kNR) {
        double acc[kMR][kNR];
        for (std::size_t r = 0; r < kMR; ++r) {
          const double* crow = pc + (i0 + r) * nn + j0;
          for (std::size_t jj = 0; jj < kNR; ++jj) acc[r][jj] = crow[jj];
        }
        const double* ap = apack.data();
        for (std::size_t k = 0; k < kc; ++k, ap += kMR) {
          const double* brow = pb + (k0 + k) * nn + j0;
          for (std::size_t r = 0; r < kMR; ++r) {
            const double ar = ap[r];
            for (std::size_t jj = 0; jj < kNR; ++jj) {
              acc[r][jj] += ar * brow[jj];
            }
          }
        }
        for (std::size_t r = 0; r < kMR; ++r) {
          double* crow = pc + (i0 + r) * nn + j0;
          for (std::size_t jj = 0; jj < kNR; ++jj) crow[jj] = acc[r][jj];
        }
      }
      // Column tail (nn % kNR): scalar, same k order, packed A reused.
      for (; j0 < nn; ++j0) {
        for (std::size_t r = 0; r < kMR; ++r) {
          double cv = pc[(i0 + r) * nn + j0];
          const double* ap = apack.data() + r;
          for (std::size_t k = 0; k < kc; ++k) {
            cv += ap[k * kMR] * pb[(k0 + k) * nn + j0];
          }
          pc[(i0 + r) * nn + j0] = cv;
        }
      }
    }
    // Row tail ((r1-r0) % kMR): plain scalar rows over this k-panel.
    for (std::size_t i = full_rows; i < r1; ++i) {
      const double* arow = pa + i * kk;
      double* crow = pc + i * nn;
      for (std::size_t j = 0; j < nn; ++j) {
        double cv = crow[j];
        for (std::size_t k = k0; k < k0 + kc; ++k) {
          cv += arow[k] * pb[k * nn + j];
        }
        crow[j] = cv;
      }
    }
  }
}

void gemm_rows(MatrixView a, MatrixView b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  if (g_kernel.load(std::memory_order_relaxed) == GemmKernel::kMicro) {
    gemm_rows_micro(a, b, c, r0, r1);
  } else {
    gemm_rows_legacy(a, b, c, r0, r1);
  }
}

}  // namespace

void set_gemm_kernel(GemmKernel k) noexcept {
  g_kernel.store(k, std::memory_order_relaxed);
}

GemmKernel gemm_kernel() noexcept {
  return g_kernel.load(std::memory_order_relaxed);
}

Matrix multiply_naive(const Matrix& a, const Matrix& b) {
  HCMM_CHECK(a.cols() == b.rows(), "multiply: inner dimensions differ ("
                                       << a.cols() << " vs " << b.rows() << ")");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

void gemm_accumulate(MatrixView a, MatrixView b, Matrix& c) {
  HCMM_CHECK(a.cols == b.rows, "gemm_accumulate: inner dimensions differ ("
                                   << a.cols << " vs " << b.rows << ")");
  HCMM_CHECK(c.rows() == a.rows && c.cols() == b.cols,
             "gemm_accumulate: output shape mismatch");
  gemm_rows(a, b, c, 0, a.rows);
}

Matrix multiply_tiled(MatrixView a, MatrixView b) {
  HCMM_CHECK(a.cols == b.rows, "multiply: inner dimensions differ");
  Matrix c(a.rows, b.cols);
  gemm_rows(a, b, c, 0, a.rows);
  return c;
}

Matrix multiply_threaded(MatrixView a, MatrixView b, ThreadPool& pool) {
  HCMM_CHECK(a.cols == b.rows, "multiply: inner dimensions differ");
  Matrix c(a.rows, b.cols);
  const std::size_t m = a.rows;
  const std::size_t nchunks = std::min(m, 4 * pool.thread_count());
  if (nchunks <= 1) {
    gemm_rows(a, b, c, 0, m);
    return c;
  }
  std::vector<std::function<void()>> jobs;
  jobs.reserve(nchunks);
  for (std::size_t t = 0; t < nchunks; ++t) {
    const std::size_t r0 = m * t / nchunks;
    const std::size_t r1 = m * (t + 1) / nchunks;
    if (r0 == r1) continue;
    jobs.push_back([a, b, &c, r0, r1] { gemm_rows(a, b, c, r0, r1); });
  }
  pool.run_batch(std::move(jobs));
  return c;
}

}  // namespace hcmm
