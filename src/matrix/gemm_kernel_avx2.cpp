// AVX2+FMA gemm microkernel: 6x8 tile of C in 12 ymm accumulators, two ymm
// B loads and one folded A broadcast per row per k step.  Compiled with a
// per-function target attribute instead of a global -mavx2 flag, so this TU
// builds (as a stub) on every architecture and the no-SIMD CI leg only has
// to define HCMM_DISABLE_SIMD.

#include "gemm_kernels.hpp"

#if !defined(HCMM_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HCMM_GEMM_AVX2 1
#include <immintrin.h>
#endif

namespace hcmm::gemmk {

#if defined(HCMM_GEMM_AVX2)
namespace {

constexpr std::size_t kMR = 6;
constexpr std::size_t kNR = 8;

__attribute__((target("avx2,fma"))) void tile_6x8(std::size_t kc,
                                                  const double* ap,
                                                  const double* bp, double* c,
                                                  std::size_t ldc) {
  __m256d acc[kMR][2];
  for (std::size_t r = 0; r < kMR; ++r) {
    acc[r][0] = _mm256_loadu_pd(c + r * ldc);
    acc[r][1] = _mm256_loadu_pd(c + r * ldc + 4);
  }
  for (std::size_t k = 0; k < kc; ++k, ap += kMR, bp += kNR) {
    const __m256d b0 = _mm256_loadu_pd(bp);
    const __m256d b1 = _mm256_loadu_pd(bp + 4);
    for (std::size_t r = 0; r < kMR; ++r) {
      const __m256d a = _mm256_set1_pd(ap[r]);
      acc[r][0] = _mm256_fmadd_pd(a, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(a, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < kMR; ++r) {
    _mm256_storeu_pd(c + r * ldc, acc[r][0]);
    _mm256_storeu_pd(c + r * ldc + 4, acc[r][1]);
  }
}

}  // namespace

MicroKernel avx2_kernel() { return {"avx2", kMR, kNR, &tile_6x8}; }
#else
MicroKernel avx2_kernel() { return {}; }
#endif

}  // namespace hcmm::gemmk
