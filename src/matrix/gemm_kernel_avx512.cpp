// AVX-512 gemm microkernel: 8x16 tile of C in 16 zmm accumulators, two zmm
// B loads and folded A broadcasts per k step.  Per-function target
// attribute; stub on non-x86 or HCMM_DISABLE_SIMD builds.

#include "gemm_kernels.hpp"

#if !defined(HCMM_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HCMM_GEMM_AVX512 1
#include <immintrin.h>
#endif

namespace hcmm::gemmk {

#if defined(HCMM_GEMM_AVX512)
namespace {

constexpr std::size_t kMR = 8;
constexpr std::size_t kNR = 16;

__attribute__((target("avx512f,avx512dq,avx512vl"))) void tile_8x16(
    std::size_t kc, const double* ap, const double* bp, double* c,
    std::size_t ldc) {
  __m512d acc[kMR][2];
  for (std::size_t r = 0; r < kMR; ++r) {
    acc[r][0] = _mm512_loadu_pd(c + r * ldc);
    acc[r][1] = _mm512_loadu_pd(c + r * ldc + 8);
  }
  for (std::size_t k = 0; k < kc; ++k, ap += kMR, bp += kNR) {
    const __m512d b0 = _mm512_loadu_pd(bp);
    const __m512d b1 = _mm512_loadu_pd(bp + 8);
    for (std::size_t r = 0; r < kMR; ++r) {
      const __m512d a = _mm512_set1_pd(ap[r]);
      acc[r][0] = _mm512_fmadd_pd(a, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_pd(a, b1, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < kMR; ++r) {
    _mm512_storeu_pd(c + r * ldc, acc[r][0]);
    _mm512_storeu_pd(c + r * ldc + 8, acc[r][1]);
  }
}

}  // namespace

MicroKernel avx512_kernel() { return {"avx512", kMR, kNR, &tile_8x16}; }
#else
MicroKernel avx512_kernel() { return {}; }
#endif

}  // namespace hcmm::gemmk
