// AArch64 Advanced SIMD (NEON) gemm microkernel: 4x8 tile of C in 16
// float64x2 accumulators using lane-broadcast FMLA.  Advanced SIMD is
// architecturally mandatory on AArch64, so no target attribute is needed —
// the guard only excludes other architectures and no-SIMD builds.

#include "gemm_kernels.hpp"

#if !defined(HCMM_DISABLE_SIMD) && defined(__aarch64__)
#define HCMM_GEMM_NEON 1
#include <arm_neon.h>
#endif

namespace hcmm::gemmk {

#if defined(HCMM_GEMM_NEON)
namespace {

constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;

void tile_4x8(std::size_t kc, const double* ap, const double* bp, double* c,
              std::size_t ldc) {
  float64x2_t acc[kMR][4];
  for (std::size_t r = 0; r < kMR; ++r) {
    for (std::size_t v = 0; v < 4; ++v) {
      acc[r][v] = vld1q_f64(c + r * ldc + 2 * v);
    }
  }
  for (std::size_t k = 0; k < kc; ++k, ap += kMR, bp += kNR) {
    float64x2_t b[4];
    for (std::size_t v = 0; v < 4; ++v) b[v] = vld1q_f64(bp + 2 * v);
    for (std::size_t r = 0; r < kMR; ++r) {
      const float64x2_t a = vdupq_n_f64(ap[r]);
      for (std::size_t v = 0; v < 4; ++v) {
        acc[r][v] = vfmaq_f64(acc[r][v], a, b[v]);
      }
    }
  }
  for (std::size_t r = 0; r < kMR; ++r) {
    for (std::size_t v = 0; v < 4; ++v) {
      vst1q_f64(c + r * ldc + 2 * v, acc[r][v]);
    }
  }
}

}  // namespace

MicroKernel neon_kernel() { return {"neon", kMR, kNR, &tile_4x8}; }
#else
MicroKernel neon_kernel() { return {}; }
#endif

}  // namespace hcmm::gemmk
