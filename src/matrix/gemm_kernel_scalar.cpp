// Portable packed-panel gemm microkernel: the dispatch floor every build
// has.  Same packed ABI and loop structure as the vector kernels, but plain
// rounded multiply + rounded add per term (no FMA) — on interior tiles this
// is the oracle's exact arithmetic, and it is what the no-SIMD CI leg and
// non-x86/non-ARM machines run.

#include "gemm_kernels.hpp"

namespace hcmm::gemmk {
namespace {

constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 8;

void tile_4x8(std::size_t kc, const double* ap, const double* bp, double* c,
              std::size_t ldc) {
  double acc[kMR][kNR];
  for (std::size_t r = 0; r < kMR; ++r) {
    for (std::size_t j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (std::size_t k = 0; k < kc; ++k, ap += kMR, bp += kNR) {
    for (std::size_t r = 0; r < kMR; ++r) {
      const double a = ap[r];
      for (std::size_t j = 0; j < kNR; ++j) acc[r][j] += a * bp[j];
    }
  }
  for (std::size_t r = 0; r < kMR; ++r) {
    for (std::size_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

}  // namespace

MicroKernel scalar_kernel() { return {"scalar", kMR, kNR, &tile_4x8}; }

}  // namespace hcmm::gemmk
