#pragma once
// Private microkernel ABI of the vectorized gemm path (matrix/gemm.cpp).
//
// A microkernel computes one MR x NR register tile:
//
//     C[0:mr, 0:nr] += Apanel * Bpanel
//
// where Apanel is an mr-interleaved packed micropanel (ap[k*mr + r] =
// A(i0+r, k0+k), kc steps deep) and Bpanel an nr-interleaved packed panel
// (bp[k*nr + j] = B(k0+k, j0+j)).  C is written in place with row stride
// ldc.  Each C element accumulates its kc terms over strictly ascending k;
// the vector kernels use FMA (one rounding per term instead of two), which
// is exactly the deviation the ULP verification ladder bounds.
//
// Every ISA TU always compiles; when its instruction set cannot be targeted
// (wrong architecture, or -DHCMM_SIMD=OFF defining HCMM_DISABLE_SIMD) the
// getter returns {fn = nullptr} and the dispatcher skips it.  The vector
// kernels are compiled with per-function target attributes, so no global
// -mavx2/-mavx512 flags are needed and the fallback build is just a macro.

#include <cstddef>

namespace hcmm::gemmk {

struct MicroKernel {
  using Fn = void (*)(std::size_t kc, const double* ap, const double* bp,
                      double* c, std::size_t ldc);
  const char* isa = "none";  ///< "avx512" | "avx2+fma" | "neon" | "scalar"
  std::size_t mr = 0;
  std::size_t nr = 0;
  Fn fn = nullptr;
};

/// 8x16 FMA tile over 512-bit registers; needs AVX-512 F+DQ+VL.
[[nodiscard]] MicroKernel avx512_kernel();

/// 6x8 FMA tile over 256-bit registers; needs AVX2 + FMA.
[[nodiscard]] MicroKernel avx2_kernel();

/// 4x8 tile over 128-bit float64x2 FMLA; AArch64 Advanced SIMD.
[[nodiscard]] MicroKernel neon_kernel();

/// Portable 4x8 tile, plain mul+add — the dispatch floor on any machine.
[[nodiscard]] MicroKernel scalar_kernel();

}  // namespace hcmm::gemmk
