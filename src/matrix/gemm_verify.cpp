#include "hcmm/matrix/gemm_verify.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

[[nodiscard]] std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

/// Monotone map of the double line onto the unsigned integer line: negative
/// values (sign bit set) map below positives, adjacent representable
/// doubles map to adjacent integers.  The two's-complement form (~u + 1 for
/// negatives) sends -0.0 and +0.0 to the same integer, so distances across
/// zero count only the representable nonzero values between the operands.
[[nodiscard]] std::uint64_t ordered(double x) {
  const std::uint64_t u = bits_of(x);
  constexpr std::uint64_t kSign = 0x8000000000000000ULL;
  return (u & kSign) != 0 ? ~u + 1 : (u | kSign);
}

}  // namespace

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t x = ordered(a);
  const std::uint64_t y = ordered(b);
  return x > y ? x - y : y - x;
}

double gemm_tolerance(std::size_t k, double amax, double bmax) {
  // Each of the k terms is bounded by amax*bmax and contributes at most one
  // deviating rounding (FMA fuses the multiply's), each worth eps of the
  // term; 8x safety covers the edge-tile panel reassociation.  The same
  // model as abft::residue_tolerance (1e-10 * scale * n) with the generic
  // headline constant replaced by the sharp per-term bound.
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  const double depth = static_cast<double>(std::max<std::size_t>(1, k));
  const double tol = 8.0 * kEps * depth * amax * bmax;
  // Floor for degenerate all-zero operands: exactness is still required
  // there (0 * x contributes exact zeros), but keep the bound positive.
  return std::max(tol, std::numeric_limits<double>::min());
}

double max_abs(const Matrix& m) {
  double out = 0.0;
  for (const double v : m.data()) out = std::max(out, std::abs(v));
  return out;
}

GemmCompare compare_gemm(const Matrix& test, const Matrix& oracle,
                         std::size_t k, double amax, double bmax) {
  HCMM_CHECK(test.rows() == oracle.rows() && test.cols() == oracle.cols(),
             "compare_gemm: shape mismatch");
  GemmCompare out;
  out.tolerance = gemm_tolerance(k, amax, bmax);
  const auto t = test.data();
  const auto o = oracle.data();
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double diff = std::abs(t[i] - o[i]);
    out.max_abs_diff = std::max(out.max_abs_diff, diff);
    out.max_ulp = std::max(out.max_ulp, ulp_distance(t[i], o[i]));
    if (!(diff <= out.tolerance)) ++out.over;  // NaN compares as over
  }
  out.ok = out.over == 0;
  return out;
}

LadderReport verify_vector_kernel() {
  // The edge-shape matrix: every microkernel tail (m % mr, n % nr for mr up
  // to 8 and nr up to 16), k below one kc panel, k spanning several kc
  // panels (kc = 256), blocks beyond one mc stripe (mc = 128), single rows
  // and columns, and 1x1.
  constexpr struct {
    std::size_t m, k, n;
  } kShapes[] = {{1, 1, 1},     {1, 7, 1},     {1, 300, 9},  {3, 5, 7},
                 {4, 8, 8},     {5, 9, 17},    {6, 257, 31}, {8, 16, 16},
                 {13, 64, 13},  {16, 16, 1},   {1, 16, 16},  {33, 31, 29},
                 {64, 300, 12}, {12, 600, 20}, {30, 257, 31}, {130, 520, 40}};
  LadderReport report;
  report.isa = gemm_vector_ident().isa;
  for (const auto& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, 100 + s.m);
    const Matrix b = random_matrix(s.k, s.n, 200 + s.n);
    const Matrix oracle = multiply_naive(a, b);
    Matrix c(s.m, s.n);
    gemm_accumulate_fast(a, b, c);
    LadderRow row{s.m, s.k, s.n,
                  compare_gemm(c, oracle, s.k, max_abs(a), max_abs(b))};
    report.ok = report.ok && row.cmp.ok;
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace hcmm
