#include "hcmm/matrix/generate.hpp"

namespace hcmm {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Prng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix index_matrix(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  double v = 0.0;
  for (double& x : m.data()) x = v++;
  return m;
}

Matrix spd_matrix(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  // Diagonal dominance makes it positive definite.
  for (std::size_t i = 0; i < n; ++i) m(i, i) += static_cast<double>(n);
  return m;
}

Matrix stochastic_matrix(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = rng.next_double() + 1e-3;
      m(i, j) = v;
      sum += v;
    }
    for (std::size_t j = 0; j < n; ++j) m(i, j) /= sum;
  }
  return m;
}

}  // namespace hcmm
