#include "hcmm/matrix/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "hcmm/support/check.hpp"

namespace hcmm {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HCMM_CHECK(data_.size() == rows * cols,
             "Matrix: data size " << data_.size() << " != " << rows << "x" << cols);
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t h,
                     std::size_t w) const {
  HCMM_CHECK(r0 + h <= rows_ && c0 + w <= cols_,
             "block (" << r0 << "," << c0 << ")+" << h << "x" << w
                       << " exceeds " << rows_ << "x" << cols_);
  Matrix out(h, w);
  for (std::size_t r = 0; r < h; ++r) {
    const double* src = data_.data() + (r0 + r) * cols_ + c0;
    std::copy(src, src + w, out.data_.data() + r * w);
  }
  return out;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  HCMM_CHECK(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
             "set_block target exceeds matrix bounds");
  for (std::size_t r = 0; r < b.rows(); ++r) {
    const double* src = b.data_.data() + r * b.cols_;
    std::copy(src, src + b.cols_, data_.data() + (r0 + r) * cols_ + c0);
  }
}

void Matrix::set_block(std::size_t r0, std::size_t c0, std::size_t h,
                       std::size_t w, std::span<const double> src) {
  HCMM_CHECK(src.size() == h * w,
             "set_block: span of " << src.size() << " words is not " << h
                                   << "x" << w);
  HCMM_CHECK(r0 + h <= rows_ && c0 + w <= cols_,
             "set_block target exceeds matrix bounds");
  for (std::size_t r = 0; r < h; ++r) {
    const double* s = src.data() + r * w;
    std::copy(s, s + w, data_.data() + (r0 + r) * cols_ + c0);
  }
}

void Matrix::add_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  HCMM_CHECK(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
             "add_block target exceeds matrix bounds");
  for (std::size_t r = 0; r < b.rows(); ++r) {
    double* dst = data_.data() + (r0 + r) * cols_ + c0;
    const double* src = b.data_.data() + r * b.cols_;
    for (std::size_t c = 0; c < b.cols_; ++c) dst[c] += src[c];
  }
}

void Matrix::add_block(std::size_t r0, std::size_t c0, std::size_t h,
                       std::size_t w, std::span<const double> src) {
  HCMM_CHECK(src.size() == h * w,
             "add_block: span of " << src.size() << " words is not " << h
                                   << "x" << w);
  HCMM_CHECK(r0 + h <= rows_ && c0 + w <= cols_,
             "add_block target exceeds matrix bounds");
  for (std::size_t r = 0; r < h; ++r) {
    double* dst = data_.data() + (r0 + r) * cols_ + c0;
    const double* s = src.data() + r * w;
    for (std::size_t c = 0; c < w; ++c) dst[c] += s[c];
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  HCMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  HCMM_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
             "max_abs_diff: shape mismatch " << a.rows() << "x" << a.cols()
                                             << " vs " << b.rows() << "x"
                                             << b.cols());
  double worst = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::abs(da[i] - db[i]));
  }
  return worst;
}

double frobenius_norm(const Matrix& m) {
  double sum = 0.0;
  for (const double v : m.data()) sum += v * v;
  return std::sqrt(sum);
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return max_abs_diff(a, b) <= tol;
}

}  // namespace hcmm
