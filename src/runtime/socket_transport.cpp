#include "hcmm/runtime/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hcmm/runtime/wire.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::rt {
namespace detail {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::chrono::milliseconds kRtoBase{25};
constexpr std::chrono::milliseconds kPollTick{10};
constexpr std::uint32_t kRtoExpCap = 6;          // RTO stops doubling here
constexpr std::uint32_t kMaxTxAttempts = 24;     // then the conn is broken
constexpr int kListenBacklog = 128;

[[nodiscard]] std::uint64_t channel_id(std::uint32_t from,
                                       std::uint32_t to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

[[nodiscard]] pollfd make_pfd(int fd, bool want_out) noexcept {
  pollfd p{};
  p.fd = fd;
  p.events = static_cast<short>(want_out ? (POLLIN | POLLOUT) : POLLIN);
  return p;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  HCMM_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "SocketTransport: fcntl(O_NONBLOCK) failed: " << errno);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Loopback listener on an ephemeral port; returns {fd, port}.
[[nodiscard]] std::pair<int, std::uint16_t> make_listener() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HCMM_CHECK(fd >= 0, "SocketTransport: socket() failed: " << errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  HCMM_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
             "SocketTransport: bind() failed: " << errno);
  HCMM_CHECK(::listen(fd, kListenBacklog) == 0,
             "SocketTransport: listen() failed: " << errno);
  socklen_t len = sizeof(addr);
  HCMM_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "SocketTransport: getsockname() failed: " << errno);
  return {fd, ntohs(addr.sin_port)};
}

/// Connect to loopback:@p port within @p deadline; -1 on failure.
[[nodiscard]] int try_connect(std::uint16_t port, Clock::time_point deadline) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  set_nonblocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        ::close(fd);
        return -1;
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(
                                         std::min<long long>(left.count(),
                                                             200)));
      if (pr < 0 && errno == EINTR) continue;
      if (pr > 0) break;
    }
    int err = 0;
    socklen_t elen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  set_nodelay(fd);
  return fd;
}

struct AtomicWireStats {
  std::atomic<std::uint64_t> frames_sent{0}, frames_received{0},
      payload_bytes{0}, retransmits{0}, crc_rejects{0}, heartbeats{0},
      drops{0}, dups{0}, reorders{0}, delays{0}, flips{0}, reconnects{0},
      stale_discards{0};

  [[nodiscard]] WireStats snapshot() const {
    WireStats s;
    s.frames_sent = frames_sent.load(std::memory_order_relaxed);
    s.frames_received = frames_received.load(std::memory_order_relaxed);
    s.payload_bytes = payload_bytes.load(std::memory_order_relaxed);
    s.retransmits = retransmits.load(std::memory_order_relaxed);
    s.crc_rejects = crc_rejects.load(std::memory_order_relaxed);
    s.heartbeats = heartbeats.load(std::memory_order_relaxed);
    s.drops = drops.load(std::memory_order_relaxed);
    s.dups = dups.load(std::memory_order_relaxed);
    s.reorders = reorders.load(std::memory_order_relaxed);
    s.delays = delays.load(std::memory_order_relaxed);
    s.flips = flips.load(std::memory_order_relaxed);
    s.reconnects = reconnects.load(std::memory_order_relaxed);
    s.stale_discards = stale_discards.load(std::memory_order_relaxed);
    return s;
  }
};

/// One unacked data frame awaiting a cumulative ack, re-encoded with the
/// connection's *current* epoch on every (re)transmission.
struct TxEntry {
  wire::FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::uint32_t attempts = 0;
  Clock::time_point next_due;
};

/// State of one rank-pair connection, owned by the endpoint's I/O thread.
struct Conn {
  std::uint32_t peer = 0;
  bool connector = false;  ///< we dial (local rank > peer rank)
  int fd = -1;
  bool broken = false;
  std::uint32_t epoch = 1;
  std::uint32_t reconnect_failures = 0;
  Clock::time_point next_reconnect_due{};
  // TX side.
  std::uint64_t next_seq = 1;
  std::deque<TxEntry> unacked;
  std::vector<std::uint8_t> tx_stream;  ///< bytes pending on the socket
  std::optional<std::vector<std::uint8_t>> reorder_stash;
  struct Delayed {
    std::vector<std::uint8_t> bytes;
    Clock::time_point due;
  };
  std::vector<Delayed> delayed;
  Clock::time_point last_hb_tx{};
  // RX side.
  std::uint64_t rx_expected = 1;
  std::map<std::uint64_t, std::pair<wire::FrameHeader,
                                    std::vector<std::uint8_t>>> rx_reorder;
  std::vector<std::uint8_t> rx_bytes;
  Clock::time_point last_rx{};
};

/// A run-scoped death notice, stamped with the Team::run generation it
/// belongs to so a revived rank is not re-killed by a stale re-announcement.
struct DeathNote {
  std::uint64_t gen = 0;
  std::uint32_t rank = 0;
  std::string msg;
};

/// One local rank's endpoint: listener + self-pipe + I/O thread + conns.
struct Endpoint {
  std::uint32_t rank = 0;
  int listen_fd = -1;
  std::uint16_t port = 0;
  int wake_rfd = -1;
  int wake_wfd = -1;
  std::thread io;

  struct Out {
    std::uint32_t to = 0;
    std::uint64_t tag = 0;
    std::uint64_t run_gen = 0;
    Matrix m;
  };
  std::mutex outbox_mu;
  std::deque<Out> outbox;
  std::deque<DeathNote> death_outbox;

  // I/O-thread-only state.
  std::map<std::uint32_t, Conn> conns;
  /// Deaths already broadcast; re-announced to a peer after reconnection so
  /// a notice lost to a broken connection still lands.  Notes whose run
  /// generation has passed are pruned — the peer would discard them anyway.
  std::vector<DeathNote> deaths_announced;
  struct Pending {
    int fd = -1;
    std::vector<std::uint8_t> buf;
  };
  std::vector<Pending> pending_accepts;
};

}  // namespace

class SocketTeam {
 public:
  explicit SocketTeam(SocketTransport::Config cfg) : cfg_(std::move(cfg)) {
    HCMM_CHECK(cfg_.ranks >= 1 && cfg_.ranks <= 4096,
               "SocketTransport: bad rank count " << cfg_.ranks);
    HCMM_CHECK(!cfg_.local_ranks.empty() &&
                   std::is_sorted(cfg_.local_ranks.begin(),
                                  cfg_.local_ranks.end()),
               "SocketTransport: local_ranks must be non-empty and sorted");
    for (const std::uint32_t r : cfg_.local_ranks) {
      HCMM_CHECK(r < cfg_.ranks,
                 "SocketTransport: local rank " << r << " out of range");
    }
    name_ = cfg_.wire.any() ? "socket+lossy" : "socket";
    hb_interval_ = std::clamp(cfg_.horizon / 8,
                              std::chrono::milliseconds(10),
                              std::chrono::milliseconds(500));
    barrier_gen_.assign(cfg_.local_ranks.size(), 0);
    for (std::size_t i = 0; i < cfg_.local_ranks.size(); ++i) {
      ep_index_[cfg_.local_ranks[i]] = i;
      auto ep = std::make_unique<Endpoint>();
      ep->rank = cfg_.local_ranks[i];
      std::tie(ep->listen_fd, ep->port) = make_listener();
      set_nonblocking(ep->listen_fd);
      int pipefd[2];
      HCMM_CHECK(::pipe(pipefd) == 0,
                 "SocketTransport: pipe() failed: " << errno);
      ep->wake_rfd = pipefd[0];
      ep->wake_wfd = pipefd[1];
      set_nonblocking(ep->wake_rfd);
      set_nonblocking(ep->wake_wfd);
      eps_.push_back(std::move(ep));
    }
  }

  ~SocketTeam() {
    shutdown_.store(true, std::memory_order_relaxed);
    for (auto& ep : eps_) {
      wake(*ep);
      if (ep->io.joinable()) ep->io.join();
    }
    for (auto& ep : eps_) {
      for (auto& [peer, conn] : ep->conns) {
        if (conn.fd >= 0) ::close(conn.fd);
      }
      for (auto& pending : ep->pending_accepts) ::close(pending.fd);
      ::close(ep->listen_fd);
      ::close(ep->wake_rfd);
      ::close(ep->wake_wfd);
    }
  }

  [[nodiscard]] std::uint16_t listen_port(std::uint32_t rank) const {
    const auto it = ep_index_.find(rank);
    HCMM_CHECK(it != ep_index_.end(),
               "SocketTransport: rank " << rank << " is not local");
    return eps_[it->second]->port;
  }

  void connect_mesh(const std::vector<std::uint16_t>& ports) {
    HCMM_CHECK(ports.size() == cfg_.ranks,
               "SocketTransport: want " << cfg_.ranks << " ports, got "
                                        << ports.size());
    HCMM_CHECK(!connected_, "SocketTransport: connect_mesh called twice");
    ports_ = ports;
    const auto deadline = Clock::now() + std::chrono::seconds(20);
    for (auto& ep : eps_) {
      for (std::uint32_t q = 0; q < cfg_.ranks; ++q) {
        if (q == ep->rank) continue;
        Conn c;
        c.peer = q;
        c.connector = ep->rank > q;
        c.last_rx = Clock::now();
        ep->conns.emplace(q, std::move(c));
      }
      // Dial every lower-ranked peer now; their accept happens in their
      // I/O loop (the kernel backlog holds the connection meanwhile).
      for (auto& [peer, conn] : ep->conns) {
        if (!conn.connector) continue;
        conn.fd = try_connect(ports_[peer], deadline);
        HCMM_CHECK(conn.fd >= 0, "SocketTransport: rank "
                                     << ep->rank << " could not connect to "
                                     << "rank " << peer << " on port "
                                     << ports_[peer]);
        send_hello(*ep, conn);
        flush(conn);
      }
    }
    connected_ = true;
    for (auto& ep : eps_) {
      Endpoint* raw = ep.get();
      ep->io = std::thread([this, raw] { io_loop(*raw); });
    }
  }

  [[nodiscard]] const char* name() const noexcept { return name_.c_str(); }
  [[nodiscard]] std::uint32_t ranks() const noexcept { return cfg_.ranks; }
  [[nodiscard]] const std::vector<std::uint32_t>& local_ranks()
      const noexcept {
    return cfg_.local_ranks;
  }

  void begin_run() {
    const std::uint64_t gen =
        run_gen_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::lock_guard lock(mu_);
    // Purge mail from past runs; mail for future runs (a faster peer
    // process already started the next one) is kept for delivery.
    for (auto it = mail_.begin(); it != mail_.end();) {
      it = it->first.gen < gen ? mail_.erase(it) : std::next(it);
    }
    std::fill(barrier_gen_.begin(), barrier_gen_.end(), 0);
    // Run-scoped deaths (a rank threw) reset; a vanished process stays
    // dead and re-arms the failure flag immediately.
    dead_run_.clear();
    remote_run_.clear();
    // Death notices a faster peer stamped for this very run arrived early
    // and were parked; apply them now, drop ones for runs already over.
    std::erase_if(future_deaths_,
                  [gen](const DeathNote& d) { return d.gen < gen; });
    for (auto it = future_deaths_.begin(); it != future_deaths_.end();) {
      if (it->gen == gen) {
        dead_run_.insert(it->rank);
        remote_run_.push_back(RemoteFailure{it->rank, std::move(it->msg)});
        it = future_deaths_.erase(it);
      } else {
        ++it;
      }
    }
    failed_ = !dead_perm_.empty() || !dead_run_.empty();
  }

  void send(std::uint32_t from, std::uint32_t to, std::uint64_t tag,
            Matrix m) {
    HCMM_CHECK(connected_, "SocketTransport: connect_mesh not called");
    const auto it = ep_index_.find(from);
    HCMM_CHECK(it != ep_index_.end(),
               "SocketTransport: sending rank " << from << " is not local");
    const std::uint64_t gen = run_gen_.load(std::memory_order_relaxed);
    if (from == to) {
      {
        std::lock_guard lock(mu_);
        mail_[MailKey{gen, to, from, tag}].push_back(std::move(m));
      }
      cv_.notify_all();
      return;
    }
    Endpoint& ep = *eps_[it->second];
    {
      std::lock_guard lock(ep.outbox_mu);
      ep.outbox.push_back(Endpoint::Out{to, tag, gen, std::move(m)});
    }
    wake(ep);
  }

  [[nodiscard]] RecvStatus wait_recv(std::uint32_t to, std::uint32_t from,
                                     std::uint64_t tag,
                                     std::chrono::milliseconds slice,
                                     Matrix* out) {
    const std::uint64_t gen = run_gen_.load(std::memory_order_relaxed);
    std::unique_lock lock(mu_);
    const MailKey key{gen, to, from, tag};
    const auto ready = [&] {
      if (failed_) return true;
      const auto it = mail_.find(key);
      return it != mail_.end() && !it->second.empty();
    };
    cv_.wait_for(lock, slice, ready);
    if (failed_) {
      return dead_run_.contains(from) || dead_perm_.contains(from)
                 ? RecvStatus::kPeerDead
                 : RecvStatus::kAborted;
    }
    const auto it = mail_.find(key);
    if (it == mail_.end() || it->second.empty()) return RecvStatus::kTimedOut;
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) mail_.erase(it);
    return RecvStatus::kReady;
  }

  [[nodiscard]] BarrierStatus barrier(std::uint32_t rank,
                                      std::chrono::milliseconds timeout) {
    const std::uint32_t p = cfg_.ranks;
    if (p == 1) return BarrierStatus::kOk;
    const std::size_t idx = ep_index_.at(rank);
    const std::uint64_t bgen = barrier_gen_[idx]++;
    const auto deadline = Clock::now() + timeout;
    // Dissemination barrier: round k talks distance 2^k around the ring;
    // after ceil(log2 p) rounds every rank has transitively heard from all.
    std::uint32_t round = 0;
    for (std::uint32_t step = 1; step < p; step <<= 1, ++round) {
      const std::uint32_t to = (rank + step) % p;
      const std::uint32_t from = (rank + p - step) % p;
      const std::uint64_t tag =
          (1ull << 63) | (bgen << 8) | static_cast<std::uint64_t>(round);
      send(rank, to, tag, Matrix(1, 1));
      for (;;) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now());
        if (left.count() <= 0) return BarrierStatus::kTimedOut;
        Matrix token;
        switch (wait_recv(rank, from, tag,
                          std::min(left, std::chrono::milliseconds(100)),
                          &token)) {
          case RecvStatus::kReady:
            break;
          case RecvStatus::kTimedOut:
            continue;
          case RecvStatus::kPeerDead:
          case RecvStatus::kAborted:
            return BarrierStatus::kAborted;
        }
        break;
      }
    }
    return BarrierStatus::kOk;
  }

  void notify_failure(std::uint32_t rank, const std::string& message) {
    {
      std::lock_guard lock(mu_);
      dead_run_.insert(rank);
      failed_ = true;
    }
    cv_.notify_all();
    // Broadcast the death from the dead rank's own endpoint — its mesh
    // reaches every peer directly.  (Remote-only ranks can't fail locally.)
    const auto it = ep_index_.find(rank);
    if (it == ep_index_.end()) return;
    Endpoint& ep = *eps_[it->second];
    {
      std::lock_guard lock(ep.outbox_mu);
      ep.death_outbox.push_back(DeathNote{
          run_gen_.load(std::memory_order_relaxed), rank, message});
    }
    wake(ep);
  }

  [[nodiscard]] std::vector<RemoteFailure> remote_failures() const {
    std::lock_guard lock(mu_);
    std::vector<RemoteFailure> out = remote_run_;
    for (const auto& [rank, msg] : dead_perm_msgs_) {
      const bool known = std::any_of(
          out.begin(), out.end(),
          [&, r = rank](const RemoteFailure& f) { return f.rank == r; });
      if (!known) out.push_back(RemoteFailure{rank, msg});
    }
    std::sort(out.begin(), out.end(),
              [](const RemoteFailure& a, const RemoteFailure& b) {
                return a.rank < b.rank;
              });
    return out;
  }

  [[nodiscard]] WireStats wire_stats() const { return stats_.snapshot(); }

 private:
  struct MailKey {
    std::uint64_t gen;
    std::uint32_t to;
    std::uint32_t from;
    std::uint64_t tag;
    auto operator<=>(const MailKey&) const = default;
  };

  static void wake(Endpoint& ep) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(ep.wake_wfd, &byte, 1);
  }

  // --- frame emission (I/O thread of the owning endpoint) ----------------

  void emit(Conn& c, std::span<const std::uint8_t> bytes) {
    if (c.fd < 0 || c.broken) return;
    c.tx_stream.insert(c.tx_stream.end(), bytes.begin(), bytes.end());
    flush(c);
  }

  void flush(Conn& c) {
    while (!c.tx_stream.empty()) {
      const ssize_t n = ::send(c.fd, c.tx_stream.data(), c.tx_stream.size(),
                               MSG_NOSIGNAL);
      if (n > 0) {
        c.tx_stream.erase(c.tx_stream.begin(), c.tx_stream.begin() + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      return;  // hard error: the read side will see it and break the conn
    }
  }

  [[nodiscard]] std::vector<std::uint8_t> encode_frame(
      const wire::FrameHeader& h, std::span<const std::uint8_t> payload) {
    // The explicit kMaxPayload clamp also gives the compiler a finite
    // bound for the copy (payloads are validated long before this point).
    const std::size_t len = std::min<std::size_t>(payload.size(),
                                                  wire::kMaxPayload);
    std::vector<std::uint8_t> bytes(wire::kHeaderSize + len);
    wire::encode_header(h, bytes.data());
    if (len != 0) {
      std::memcpy(bytes.data() + wire::kHeaderSize, payload.data(), len);
    }
    return bytes;
  }

  void send_control(Conn& c, wire::FrameKind kind, std::uint32_t from,
                    std::span<const std::uint8_t> payload,
                    std::uint64_t gen_override = 0) {
    wire::FrameHeader h;
    h.kind = kind;
    h.from = from;
    h.to = c.peer;
    h.epoch = c.epoch;
    h.run_gen = gen_override != 0
                    ? gen_override
                    : run_gen_.load(std::memory_order_relaxed);
    h.ack = c.rx_expected - 1;
    h.payload_len = static_cast<std::uint32_t>(payload.size());
    h.payload_crc = wire::crc32(payload);
    emit(c, encode_frame(h, payload));
  }

  void send_hello(Endpoint& ep, Conn& c) {
    wire::FrameHeader h;
    h.kind = wire::FrameKind::kHello;
    h.from = ep.rank;
    h.to = c.peer;
    h.epoch = c.epoch;
    const auto bytes = encode_frame(h, {});
    // Hello must reach the wire even while `broken` is being cleared.
    c.tx_stream.insert(c.tx_stream.end(), bytes.begin(), bytes.end());
  }

  /// Deterministic retransmission timeout with FaultPlan-style jitter.
  [[nodiscard]] Clock::duration rto(const Endpoint& ep, const Conn& c,
                                    std::uint64_t seq,
                                    std::uint32_t attempt) const {
    const double jitter = cfg_.wire.jitter_unit(channel_id(ep.rank, c.peer),
                                                seq, attempt);
    const double scale =
        static_cast<double>(1u << std::min(attempt, kRtoExpCap)) *
        (1.0 + 0.5 * jitter);
    return std::chrono::duration_cast<Clock::duration>(kRtoBase * scale);
  }

  /// Transmit one data frame through the wire-fault fate draw.
  void wire_tx(Endpoint& ep, Conn& c, TxEntry& entry) {
    if (c.fd < 0 || c.broken) return;  // queued; retransmit on reconnect
    entry.header.epoch = c.epoch;
    entry.header.ack = c.rx_expected - 1;
    const std::uint64_t chan = channel_id(ep.rank, c.peer);
    stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.wire.any()) {
      if (cfg_.wire.reconnect_hit(chan, entry.header.seq, entry.attempts)) {
        break_conn(ep, c, "injected reconnect");
        return;
      }
      const fault::WireFault fate =
          cfg_.wire.frame_fault(chan, entry.header.seq, entry.attempts);
      switch (fate) {
        case fault::WireFault::kDrop:
          stats_.drops.fetch_add(1, std::memory_order_relaxed);
          return;  // the RTO heals it
        case fault::WireFault::kDuplicate: {
          stats_.dups.fetch_add(1, std::memory_order_relaxed);
          const auto bytes = encode_frame(entry.header, entry.payload);
          emit(c, bytes);
          emit(c, bytes);
          return;
        }
        case fault::WireFault::kReorder: {
          stats_.reorders.fetch_add(1, std::memory_order_relaxed);
          if (!c.reorder_stash) {
            c.reorder_stash = encode_frame(entry.header, entry.payload);
            return;  // transmitted after the next frame (or the next tick)
          }
          break;
        }
        case fault::WireFault::kDelay: {
          stats_.delays.fetch_add(1, std::memory_order_relaxed);
          c.delayed.push_back(Conn::Delayed{
              encode_frame(entry.header, entry.payload),
              Clock::now() + std::chrono::milliseconds(cfg_.wire.delay_ms)});
          return;
        }
        case fault::WireFault::kFlip: {
          stats_.flips.fetch_add(1, std::memory_order_relaxed);
          auto bytes = encode_frame(entry.header, entry.payload);
          if (!entry.payload.empty()) {
            const std::uint64_t site = cfg_.wire.flip_site(
                chan, entry.header.seq, entry.attempts);
            bytes[wire::kHeaderSize + site % entry.payload.size()] ^= 0x10u;
          }
          emit(c, bytes);
          flush_reorder_stash(c);
          return;
        }
        case fault::WireFault::kNone:
        case fault::WireFault::kReconnect:  // drawn via reconnect_hit above
          break;
      }
    }
    emit(c, encode_frame(entry.header, entry.payload));
    flush_reorder_stash(c);
  }

  void flush_reorder_stash(Conn& c) {
    if (c.reorder_stash) {
      const std::vector<std::uint8_t> bytes = std::move(*c.reorder_stash);
      c.reorder_stash.reset();
      emit(c, bytes);
    }
  }

  // --- failure bookkeeping ------------------------------------------------

  void mark_dead_remote(std::uint32_t rank, const std::string& msg,
                        bool permanent) {
    {
      std::lock_guard lock(mu_);
      if (permanent) {
        dead_perm_.insert(rank);
        dead_perm_msgs_.try_emplace(rank, msg);
      } else {
        dead_run_.insert(rank);
        const bool known = std::any_of(
            remote_run_.begin(), remote_run_.end(),
            [&](const RemoteFailure& f) { return f.rank == rank; });
        if (!known) remote_run_.push_back(RemoteFailure{rank, msg});
      }
      failed_ = true;
    }
    cv_.notify_all();
  }

  void break_conn(Endpoint& ep, Conn& c, const char* reason) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    c.broken = true;
    c.tx_stream.clear();
    c.reorder_stash.reset();
    c.delayed.clear();
    c.rx_bytes.clear();
    if (c.connector) {
      c.next_reconnect_due =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             kRtoBase * static_cast<double>(
                                            1u << std::min(
                                                c.reconnect_failures, 4u)));
    }
    (void)ep;
    (void)reason;
  }

  /// Connector-side reconnection under a fresh session epoch; bounded by
  /// kReconnectAttempts consecutive failures.
  void attempt_reconnect(Endpoint& ep, Conn& c) {
    const int fd =
        try_connect(ports_[c.peer],
                    Clock::now() + std::chrono::milliseconds(250));
    if (fd < 0) {
      c.reconnect_failures += 1;
      if (c.reconnect_failures >= SocketTransport::kReconnectAttempts) {
        mark_dead_remote(c.peer,
                         "connection to rank " + std::to_string(c.peer) +
                             " lost and " +
                             std::to_string(c.reconnect_failures) +
                             " reconnect attempts failed (process exited?)",
                         /*permanent=*/true);
        return;
      }
      c.next_reconnect_due =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             kRtoBase *
                             static_cast<double>(
                                 1u << std::min(c.reconnect_failures, 4u)));
      return;
    }
    c.fd = fd;
    c.broken = false;
    c.epoch += 1;  // new incarnation: stale frames are now discardable
    c.reconnect_failures = 0;
    c.last_rx = Clock::now();
    stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
    send_hello(ep, c);
    reannounce_deaths(ep, c);
    // Everything unacked goes again under the new epoch, immediately.
    for (TxEntry& entry : c.unacked) {
      entry.next_due = Clock::now();
    }
    flush(c);
  }

  /// A death notice is fire-and-forget; repeat it on every fresh socket so
  /// one lost to a broken connection still reaches the peer.  Only notes for
  /// the current (or a future) run generation are repeated: re-announcing a
  /// past run's death after a reconnect would re-kill a rank that begin_run
  /// already revived.
  void reannounce_deaths(Endpoint& ep, Conn& c) {
    const std::uint64_t cur = run_gen_.load(std::memory_order_relaxed);
    std::erase_if(ep.deaths_announced,
                  [cur](const DeathNote& d) { return d.gen < cur; });
    for (const DeathNote& d : ep.deaths_announced) {
      const std::span<const std::uint8_t> payload{
          reinterpret_cast<const std::uint8_t*>(d.msg.data()), d.msg.size()};
      send_control(c, wire::FrameKind::kDeath, d.rank, payload, d.gen);
    }
  }

  /// Acceptor side of a (re)connection: a hello arrived on @p fd.
  void attach_accepted(Endpoint& ep, int fd, const wire::FrameHeader& hello,
                       std::vector<std::uint8_t> leftover) {
    const auto it = ep.conns.find(hello.from);
    if (it == ep.conns.end() || hello.to != ep.rank) {
      ::close(fd);
      return;
    }
    Conn& c = it->second;
    if (c.fd >= 0 && hello.epoch < c.epoch) {
      ::close(fd);  // stale incarnation raced in; keep the newer socket
      return;
    }
    if (c.fd >= 0) ::close(c.fd);
    c.fd = fd;
    c.broken = false;
    c.epoch = hello.epoch;
    c.reconnect_failures = 0;
    c.tx_stream.clear();
    c.rx_bytes = std::move(leftover);
    c.last_rx = Clock::now();
    reannounce_deaths(ep, c);
    for (TxEntry& entry : c.unacked) {
      entry.next_due = Clock::now();
    }
    parse_stream(ep, c);
  }

  // --- frame reception ----------------------------------------------------

  void on_ack(Conn& c, std::uint64_t ack) {
    while (!c.unacked.empty() && c.unacked.front().header.seq <= ack) {
      c.unacked.pop_front();
    }
  }

  void deliver(const wire::FrameHeader& h,
               std::span<const std::uint8_t> payload) {
    const std::uint64_t gen = run_gen_.load(std::memory_order_relaxed);
    if (h.run_gen < gen) {
      // A frame from a finished run: acked so its sender stops resending,
      // but never delivered into the current run.
      stats_.stale_discards.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t words = payload.size() / sizeof(double);
    if (words != static_cast<std::size_t>(h.rows) * h.cols) {
      // Shape/payload mismatch that still passed both CRCs: drop rather
      // than throw across the I/O thread; the sender's RTO retries.
      stats_.crc_rejects.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::vector<double> data(words);
    std::memcpy(data.data(), payload.data(), payload.size());
    Matrix m(h.rows, h.cols, std::move(data));
    // Count before delivery: the recv this frame satisfies may be the last
    // op of a run, and a stats snapshot right after Team::run must already
    // include every delivered byte.
    stats_.payload_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
    {
      std::lock_guard lock(mu_);
      mail_[MailKey{h.run_gen, h.to, h.from, h.tag}].push_back(std::move(m));
    }
    cv_.notify_all();
  }

  void on_frame(Endpoint& ep, Conn& c, const wire::FrameHeader& h,
                std::vector<std::uint8_t> payload) {
    c.last_rx = Clock::now();
    if (h.kind == wire::FrameKind::kHello) {
      // Hello on an established conn: the peer rebuilt its side (its view
      // of the epoch is authoritative if newer).
      if (h.epoch > c.epoch) {
        c.epoch = h.epoch;
        c.rx_bytes.clear();
        for (TxEntry& entry : c.unacked) entry.next_due = Clock::now();
      }
      return;
    }
    if (h.epoch != c.epoch) {
      stats_.stale_discards.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
    switch (h.kind) {
      case wire::FrameKind::kAck:
      case wire::FrameKind::kHeartbeat:
        on_ack(c, h.ack);
        return;
      case wire::FrameKind::kDeath: {
        std::string msg(reinterpret_cast<const char*>(payload.data()),
                        payload.size());
        const std::uint64_t cur = run_gen_.load(std::memory_order_relaxed);
        if (h.run_gen < cur) {
          // A notice from a finished run (delayed frame or reconnect
          // re-announcement): begin_run already revived the rank.
          stats_.stale_discards.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (h.run_gen > cur) {
          // A faster peer process is already in the next run; hold the
          // notice until begin_run reaches that generation.
          std::lock_guard lock(mu_);
          future_deaths_.push_back(DeathNote{h.run_gen, h.from,
                                             std::move(msg)});
          return;
        }
        mark_dead_remote(h.from, msg, /*permanent=*/false);
        return;
      }
      case wire::FrameKind::kData: {
        if (wire::crc32(payload) != h.payload_crc) {
          // A flipped payload: drop unacked; the sender's RTO heals it.
          stats_.crc_rejects.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        on_ack(c, h.ack);
        if (h.seq < c.rx_expected) {
          send_control(c, wire::FrameKind::kAck, ep.rank, {});  // duplicate
          return;
        }
        if (h.seq > c.rx_expected) {
          c.rx_reorder.try_emplace(h.seq, h, std::move(payload));
          send_control(c, wire::FrameKind::kAck, ep.rank, {});
          return;
        }
        deliver(h, payload);
        c.rx_expected += 1;
        while (!c.rx_reorder.empty() &&
               c.rx_reorder.begin()->first == c.rx_expected) {
          auto& [hdr, body] = c.rx_reorder.begin()->second;
          deliver(hdr, body);
          c.rx_reorder.erase(c.rx_reorder.begin());
          c.rx_expected += 1;
        }
        send_control(c, wire::FrameKind::kAck, ep.rank, {});
        return;
      }
      case wire::FrameKind::kHello:
        return;  // handled above
    }
  }

  void parse_stream(Endpoint& ep, Conn& c) {
    while (c.rx_bytes.size() >= wire::kHeaderSize) {
      const auto header = wire::decode_header(c.rx_bytes.data());
      if (!header) {
        // Header corruption cannot be resynchronized on a byte stream;
        // treat the connection as broken and let reconnection recover.
        stats_.crc_rejects.fetch_add(1, std::memory_order_relaxed);
        break_conn(ep, c, "corrupt header");
        return;
      }
      const std::size_t frame_len = wire::kHeaderSize + header->payload_len;
      if (c.rx_bytes.size() < frame_len) return;
      std::vector<std::uint8_t> payload(
          c.rx_bytes.begin() + static_cast<std::ptrdiff_t>(wire::kHeaderSize),
          c.rx_bytes.begin() + static_cast<std::ptrdiff_t>(frame_len));
      c.rx_bytes.erase(c.rx_bytes.begin(),
                       c.rx_bytes.begin() +
                           static_cast<std::ptrdiff_t>(frame_len));
      on_frame(ep, c, *header, std::move(payload));
      if (c.broken || c.fd < 0) return;
    }
  }

  // --- the I/O loop -------------------------------------------------------

  void drain_outbox(Endpoint& ep) {
    std::deque<Endpoint::Out> out;
    std::deque<DeathNote> deaths;
    {
      std::lock_guard lock(ep.outbox_mu);
      out.swap(ep.outbox);
      deaths.swap(ep.death_outbox);
    }
    for (Endpoint::Out& o : out) {
      const auto it = ep.conns.find(o.to);
      if (it == ep.conns.end()) continue;
      Conn& c = it->second;
      TxEntry entry;
      entry.header.kind = wire::FrameKind::kData;
      entry.header.from = ep.rank;
      entry.header.to = o.to;
      entry.header.run_gen = o.run_gen;
      entry.header.seq = c.next_seq++;
      entry.header.tag = o.tag;
      entry.header.rows = static_cast<std::uint32_t>(o.m.rows());
      entry.header.cols = static_cast<std::uint32_t>(o.m.cols());
      const std::span<const double> words = o.m.data();
      entry.payload.resize(words.size_bytes());
      std::memcpy(entry.payload.data(), words.data(), words.size_bytes());
      entry.header.payload_len =
          static_cast<std::uint32_t>(entry.payload.size());
      entry.header.payload_crc = wire::crc32(entry.payload);
      entry.next_due = Clock::now() + rto(ep, c, entry.header.seq, 0);
      c.unacked.push_back(std::move(entry));
      wire_tx(ep, c, c.unacked.back());
    }
    for (DeathNote& d : deaths) {
      const std::vector<std::uint8_t> payload(d.msg.begin(), d.msg.end());
      for (auto& [peer, conn] : ep.conns) {
        send_control(conn, wire::FrameKind::kDeath, d.rank, payload, d.gen);
      }
      ep.deaths_announced.push_back(std::move(d));
    }
  }

  void service_timers(Endpoint& ep) {
    const auto now = Clock::now();
    for (auto& [peer, c] : ep.conns) {
      // Injected-delay frames whose hold expired.
      for (auto it = c.delayed.begin(); it != c.delayed.end();) {
        if (it->due <= now) {
          emit(c, it->bytes);
          it = c.delayed.erase(it);
        } else {
          ++it;
        }
      }
      // A reorder stash nothing followed: flush it now.
      flush_reorder_stash(c);
      // Retransmission timeouts.
      if (!c.broken && c.fd >= 0) {
        for (TxEntry& entry : c.unacked) {
          if (entry.next_due > now) continue;
          entry.attempts += 1;
          if (entry.attempts > kMaxTxAttempts) {
            break_conn(ep, c, "retransmission budget exhausted");
            break;
          }
          stats_.retransmits.fetch_add(1, std::memory_order_relaxed);
          entry.next_due = now + rto(ep, c, entry.header.seq, entry.attempts);
          wire_tx(ep, c, entry);
          if (c.broken) break;
        }
      }
      if (c.broken) {
        if (c.connector && c.next_reconnect_due <= now &&
            !is_dead(c.peer)) {
          attempt_reconnect(ep, c);
        }
      } else if (c.fd >= 0 && now - c.last_hb_tx >= hb_interval_) {
        send_control(c, wire::FrameKind::kHeartbeat, ep.rank, {});
        stats_.heartbeats.fetch_add(1, std::memory_order_relaxed);
        c.last_hb_tx = now;
      }
      // The failure detector horizon applies to established *and* broken
      // connections (an acceptor cannot redial, it can only wait): total
      // silence past the horizon means the peer endpoint is gone.  A slow
      // *rank* never trips this — its endpoint's I/O thread keeps
      // beaconing while the rank thread computes.
      if ((c.fd >= 0 || c.broken) && now - c.last_rx > cfg_.horizon &&
          !is_dead(c.peer)) {
        mark_dead_remote(c.peer,
                         "rank " + std::to_string(c.peer) +
                             " sent no heartbeat within the failure "
                             "detector horizon",
                         /*permanent=*/true);
      }
    }
  }

  [[nodiscard]] bool is_dead(std::uint32_t rank) const {
    std::lock_guard lock(mu_);
    return dead_run_.contains(rank) || dead_perm_.contains(rank);
  }

  void io_loop(Endpoint& ep) {
    while (!shutdown_.load(std::memory_order_relaxed)) {
      std::vector<pollfd> pfds;
      pfds.push_back(make_pfd(ep.wake_rfd, false));
      pfds.push_back(make_pfd(ep.listen_fd, false));
      std::vector<std::uint32_t> conn_of_pfd;
      for (auto& [peer, c] : ep.conns) {
        if (c.fd < 0) continue;
        pfds.push_back(make_pfd(c.fd, !c.tx_stream.empty()));
        conn_of_pfd.push_back(peer);
      }
      const std::size_t pending_base = pfds.size();
      for (const Endpoint::Pending& pending : ep.pending_accepts) {
        pfds.push_back(make_pfd(pending.fd, false));
      }
      const int pr = ::poll(pfds.data(), pfds.size(),
                            static_cast<int>(kPollTick.count()));
      if (pr < 0 && errno != EINTR) break;

      if ((pfds[0].revents & POLLIN) != 0) {
        std::array<char, 256> sink{};
        while (::read(ep.wake_rfd, sink.data(), sink.size()) > 0) {
        }
      }
      drain_outbox(ep);

      if ((pfds[1].revents & POLLIN) != 0) {
        for (;;) {
          const int fd = ::accept(ep.listen_fd, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking(fd);
          set_nodelay(fd);
          ep.pending_accepts.push_back(Endpoint::Pending{fd, {}});
        }
      }

      // Established connections.
      for (std::size_t i = 2; i < pending_base; ++i) {
        const auto it = ep.conns.find(conn_of_pfd[i - 2]);
        if (it == ep.conns.end()) continue;
        Conn& c = it->second;
        if (c.fd != pfds[i].fd) continue;  // replaced mid-iteration
        if ((pfds[i].revents & POLLOUT) != 0) flush(c);
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          read_conn(ep, c);
        }
      }

      // Pending accepts waiting for their hello.
      for (std::size_t i = pending_base; i < pfds.size(); ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        read_pending(ep, pfds[i].fd);
      }

      service_timers(ep);
    }
  }

  void read_conn(Endpoint& ep, Conn& c) {
    std::array<std::uint8_t, 65536> buf;
    for (;;) {
      const ssize_t n = ::read(c.fd, buf.data(), buf.size());
      if (n > 0) {
        c.rx_bytes.insert(c.rx_bytes.end(), buf.begin(), buf.begin() + n);
        if (n < static_cast<ssize_t>(buf.size())) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error: the peer closed (reconnect fault, process
      // death, ...).  Connector redials; acceptor waits for a new hello
      // under the heartbeat horizon.
      break_conn(ep, c, "peer closed connection");
      return;
    }
    parse_stream(ep, c);
  }

  void read_pending(Endpoint& ep, int fd) {
    const auto it = std::find_if(
        ep.pending_accepts.begin(), ep.pending_accepts.end(),
        [fd](const Endpoint::Pending& pending) { return pending.fd == fd; });
    if (it == ep.pending_accepts.end()) return;
    std::array<std::uint8_t, 4096> buf;
    for (;;) {
      const ssize_t n = ::read(fd, buf.data(), buf.size());
      if (n > 0) {
        it->buf.insert(it->buf.end(), buf.begin(), buf.begin() + n);
        if (n < static_cast<ssize_t>(buf.size())) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      ep.pending_accepts.erase(it);
      return;
    }
    if (it->buf.size() < wire::kHeaderSize) return;
    const auto header = wire::decode_header(it->buf.data());
    if (!header || header->kind != wire::FrameKind::kHello) {
      ::close(fd);
      ep.pending_accepts.erase(it);
      return;
    }
    std::vector<std::uint8_t> leftover(
        it->buf.begin() + static_cast<std::ptrdiff_t>(wire::kHeaderSize),
        it->buf.end());
    const wire::FrameHeader hello = *header;
    ep.pending_accepts.erase(it);
    attach_accepted(ep, fd, hello, std::move(leftover));
  }

  SocketTransport::Config cfg_;
  std::string name_;
  std::chrono::milliseconds hb_interval_{100};
  std::vector<std::uint16_t> ports_;
  bool connected_ = false;
  std::vector<std::unique_ptr<Endpoint>> eps_;
  std::map<std::uint32_t, std::size_t> ep_index_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> run_gen_{1};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<MailKey, std::deque<Matrix>> mail_;
  bool failed_ = false;
  std::set<std::uint32_t> dead_run_;          // a rank threw this run
  std::set<std::uint32_t> dead_perm_;         // its process is gone
  std::map<std::uint32_t, std::string> dead_perm_msgs_;
  std::vector<DeathNote> future_deaths_;      // stamped for a later run
  std::vector<RemoteFailure> remote_run_;
  std::vector<std::uint64_t> barrier_gen_;    // per local rank
  AtomicWireStats stats_;
};

}  // namespace detail

SocketTransport::SocketTransport(Config cfg)
    : impl_(std::make_unique<detail::SocketTeam>(std::move(cfg))) {}

SocketTransport::~SocketTransport() = default;

std::uint16_t SocketTransport::listen_port(std::uint32_t rank) const {
  return impl_->listen_port(rank);
}

void SocketTransport::connect_mesh(const std::vector<std::uint16_t>& ports) {
  impl_->connect_mesh(ports);
}

const char* SocketTransport::name() const noexcept { return impl_->name(); }

std::uint32_t SocketTransport::ranks() const noexcept {
  return impl_->ranks();
}

const std::vector<std::uint32_t>& SocketTransport::local_ranks()
    const noexcept {
  return impl_->local_ranks();
}

void SocketTransport::begin_run() { impl_->begin_run(); }

void SocketTransport::send(std::uint32_t from, std::uint32_t to,
                           std::uint64_t tag, Matrix m) {
  impl_->send(from, to, tag, std::move(m));
}

RecvStatus SocketTransport::wait_recv(std::uint32_t to, std::uint32_t from,
                                      std::uint64_t tag,
                                      std::chrono::milliseconds slice,
                                      Matrix* out) {
  return impl_->wait_recv(to, from, tag, slice, out);
}

BarrierStatus SocketTransport::barrier(std::uint32_t rank,
                                       std::chrono::milliseconds timeout) {
  return impl_->barrier(rank, timeout);
}

void SocketTransport::notify_failure(std::uint32_t rank,
                                     const std::string& message) {
  impl_->notify_failure(rank, message);
}

std::vector<RemoteFailure> SocketTransport::remote_failures() const {
  return impl_->remote_failures();
}

WireStats SocketTransport::wire_stats() const { return impl_->wire_stats(); }

std::unique_ptr<SocketTransport> make_socket_transport(
    std::uint32_t ranks, std::chrono::milliseconds horizon,
    fault::WireFaultSpec wire) {
  SocketTransport::Config cfg;
  cfg.ranks = ranks;
  cfg.local_ranks.resize(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) cfg.local_ranks[r] = r;
  cfg.horizon = horizon;
  cfg.wire = wire;
  std::unique_ptr<SocketTransport> t =
      wire.any() ? std::make_unique<LossyTransport>(std::move(cfg))
                 : std::make_unique<SocketTransport>(std::move(cfg));
  std::vector<std::uint16_t> ports(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) ports[r] = t->listen_port(r);
  t->connect_mesh(ports);
  return t;
}

}  // namespace hcmm::rt
