#include "hcmm/runtime/spmd_matmul.hpp"

#include <array>

#include "hcmm/matrix/gemm.hpp"
#include "hcmm/support/bits.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm::rt {
namespace {

// Tag spaces.  Fine-grained tags are (space << 32) | counter; FIFO per
// (from, to, tag) makes reuse across phases safe as long as spaces differ.
constexpr std::uint64_t kAlignA = 1ull << 32;
constexpr std::uint64_t kAlignB = 2ull << 32;
constexpr std::uint64_t kShiftA = 3ull << 32;
constexpr std::uint64_t kShiftB = 4ull << 32;
constexpr std::uint64_t kScatterB = 5ull << 32;
constexpr std::uint64_t kGatherA = 6ull << 32;
constexpr std::uint64_t kBundleB = 7ull << 32;
constexpr std::uint64_t kReduceI = 8ull << 32;

}  // namespace

Matrix spmd_cannon(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_cannon: square operands required");
  const std::uint32_t q = exact_sqrt(team.size());
  HCMM_CHECK(n % q == 0, "spmd_cannon: n must divide by sqrt(p)");
  const std::size_t blk = n / q;
  Matrix out(n, n);

  team.run([&](Rank& r) {
    const std::uint32_t i = r.id() / q;
    const std::uint32_t j = r.id() % q;
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj) {
      return ri * q + rj;
    };
    // Initial distribution: this rank owns blocks (i, j).
    Matrix blk_a = a.block(i * blk, j * blk, blk, blk);
    Matrix blk_b = b.block(i * blk, j * blk, blk, blk);

    // Alignment: A left by i, B up by j.
    if (i != 0) {
      r.send(rank_of(i, (j + q - i) % q), kAlignA, std::move(blk_a));
      blk_a = r.recv(rank_of(i, (j + i) % q), kAlignA);
    }
    if (j != 0) {
      r.send(rank_of((i + q - j) % q, j), kAlignB, std::move(blk_b));
      blk_b = r.recv(rank_of((i + j) % q, j), kAlignB);
    }

    Matrix c(blk, blk);
    for (std::uint32_t step = 0; step < q; ++step) {
      gemm_accumulate_fast(blk_a, blk_b, c);
      if (step + 1 == q) break;
      r.send(rank_of(i, (j + q - 1) % q), kShiftA + step, std::move(blk_a));
      blk_a = r.recv(rank_of(i, (j + 1) % q), kShiftA + step);
      r.send(rank_of((i + q - 1) % q, j), kShiftB + step, std::move(blk_b));
      blk_b = r.recv(rank_of((i + 1) % q, j), kShiftB + step);
    }
    // Disjoint block writes: no synchronization needed.
    out.set_block(i * blk, j * blk, c);
  });
  return out;
}

Matrix spmd_all3d(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_all3d: square operands required");
  const std::uint32_t q = exact_cbrt(team.size());
  HCMM_CHECK(n % (static_cast<std::size_t>(q) * q) == 0,
             "spmd_all3d: n must divide by cbrt(p)^2");
  const std::size_t bh = n / q;
  const std::size_t bw = n / (static_cast<std::size_t>(q) * q);
  Matrix out(n, n);

  team.run([&](Rank& r) {
    const std::uint32_t i = r.id() / (q * q);
    const std::uint32_t j = (r.id() / q) % q;
    const std::uint32_t k = r.id() % q;
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj, std::uint32_t rk) {
      return (ri * q + rj) * q + rk;
    };
    const std::uint32_t f = i * q + j;
    const Matrix blk_a = a.block(k * bh, f * bw, bh, bw);
    const Matrix blk_b = b.block(k * bh, f * bw, bh, bw);

    // Phase 1: all-to-all personalized exchange of B row groups along y.
    for (std::uint32_t l = 0; l < q; ++l) {
      if (l == j) continue;
      r.send(rank_of(i, l, k), kScatterB, blk_b.block(l * bw, 0, bw, bw));
    }
    // pieces[l] = group j of B_{k, f(i,l)}.
    std::vector<Matrix> pieces(q);
    for (std::uint32_t l = 0; l < q; ++l) {
      pieces[l] = (l == j) ? blk_b.block(j * bw, 0, bw, bw)
                           : r.recv(rank_of(i, l, k), kScatterB);
    }

    // Phase 2a: all-to-all broadcast of A along x.
    for (std::uint32_t m = 0; m < q; ++m) {
      if (m != i) r.send(rank_of(m, j, k), kGatherA, blk_a);
    }
    std::vector<Matrix> a_blocks(q);
    for (std::uint32_t m = 0; m < q; ++m) {
      a_blocks[m] = (m == i) ? blk_a : r.recv(rank_of(m, j, k), kGatherA);
    }

    // Phase 2b: all-to-all broadcast of the B piece bundles along z.
    for (std::uint32_t m = 0; m < q; ++m) {
      if (m == k) continue;
      for (std::uint32_t l = 0; l < q; ++l) {
        r.send(rank_of(i, j, m), kBundleB + l, pieces[l]);
      }
    }
    // bz[m][l] = group j of B_{m, f(i,l)}.
    std::vector<std::vector<Matrix>> bz(q);
    for (std::uint32_t m = 0; m < q; ++m) {
      bz[m].resize(q);
      for (std::uint32_t l = 0; l < q; ++l) {
        bz[m][l] = (m == k) ? pieces[l]
                            : r.recv(rank_of(i, j, m), kBundleB + l);
      }
    }

    // Compute I_{k,i} = sum_m A_{k,f(m,j)} * B_{f(m,j),i}.
    Matrix partial(bh, bh);
    for (std::uint32_t m = 0; m < q; ++m) {
      Matrix rhs(bw, bh);
      for (std::uint32_t l = 0; l < q; ++l) {
        rhs.set_block(0, l * bw, bz[m][l]);
      }
      gemm_accumulate_fast(a_blocks[m], rhs, partial);
    }

    // Phase 3: all-to-all reduction along y of the column pieces.
    for (std::uint32_t l = 0; l < q; ++l) {
      if (l == j) continue;
      r.send(rank_of(i, l, k), kReduceI, partial.block(0, l * bw, bh, bw));
    }
    Matrix c_piece = partial.block(0, j * bw, bh, bw);
    for (std::uint32_t l = 0; l < q; ++l) {
      if (l == j) continue;
      c_piece += r.recv(rank_of(i, l, k), kReduceI);
    }
    out.set_block(k * bh, f * bw, c_piece);
  });
  return out;
}

Matrix spmd_simple(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_simple: square operands required");
  const std::uint32_t q = exact_sqrt(team.size());
  HCMM_CHECK(n % q == 0, "spmd_simple: n must divide by sqrt(p)");
  const std::size_t blk = n / q;
  Matrix out(n, n);

  team.run([&](Rank& r) {
    const std::uint32_t i = r.id() / q;
    const std::uint32_t j = r.id() % q;
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj) {
      return ri * q + rj;
    };
    const Matrix blk_a = a.block(i * blk, j * blk, blk, blk);
    const Matrix blk_b = b.block(i * blk, j * blk, blk, blk);

    // All-to-all broadcast of A along the row, of B along the column.
    for (std::uint32_t c = 0; c < q; ++c) {
      if (c != j) r.send(rank_of(i, c), kGatherA, blk_a);
    }
    for (std::uint32_t ri = 0; ri < q; ++ri) {
      if (ri != i) r.send(rank_of(ri, j), kScatterB, blk_b);
    }
    std::vector<Matrix> row_a(q);
    std::vector<Matrix> col_b(q);
    for (std::uint32_t c = 0; c < q; ++c) {
      row_a[c] = (c == j) ? blk_a : r.recv(rank_of(i, c), kGatherA);
    }
    for (std::uint32_t ri = 0; ri < q; ++ri) {
      col_b[ri] = (ri == i) ? blk_b : r.recv(rank_of(ri, j), kScatterB);
    }

    Matrix c(blk, blk);
    for (std::uint32_t k = 0; k < q; ++k) {
      gemm_accumulate_fast(row_a[k], col_b[k], c);
    }
    out.set_block(i * blk, j * blk, c);
  });
  return out;
}

Matrix spmd_dns(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_dns: square operands required");
  const std::uint32_t q = exact_cbrt(team.size());
  HCMM_CHECK(n % q == 0, "spmd_dns: n must divide by cbrt(p)");
  const std::size_t blk = n / q;
  Matrix out(n, n);

  team.run([&](Rank& r) {
    const std::uint32_t i = r.id() / (q * q);
    const std::uint32_t j = (r.id() / q) % q;
    const std::uint32_t k = r.id() % q;
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj, std::uint32_t rk) {
      return (ri * q + rj) * q + rk;
    };

    // Phase 1: the z = 0 face sends A_ij to (i,j,j) and B_ij to (i,j,i).
    if (k == 0) {
      Matrix blk_a = a.block(i * blk, j * blk, blk, blk);
      Matrix blk_b = b.block(i * blk, j * blk, blk, blk);
      if (j != 0) r.send(rank_of(i, j, j), kAlignA, std::move(blk_a));
      if (i != 0) r.send(rank_of(i, j, i), kAlignB, std::move(blk_b));
    }
    // Phase 2: (i,j,j) broadcasts A_ij along y; (i,j,i) broadcasts B_ij
    // along x.  This rank's operands end up being A_{i,k} and B_{k,j}.
    if (k == j) {
      const Matrix blk_a = (j == 0 && k == 0)
                               ? a.block(i * blk, j * blk, blk, blk)
                               : r.recv(rank_of(i, j, 0), kAlignA);
      for (std::uint32_t y = 0; y < q; ++y) {
        r.send(rank_of(i, y, k), kGatherA, blk_a);
      }
    }
    if (k == i) {
      const Matrix blk_b = (i == 0 && k == 0)
                               ? b.block(i * blk, j * blk, blk, blk)
                               : r.recv(rank_of(i, j, 0), kAlignB);
      for (std::uint32_t x = 0; x < q; ++x) {
        r.send(rank_of(x, j, k), kScatterB, blk_b);
      }
    }
    const Matrix my_a = r.recv(rank_of(i, k, k), kGatherA);
    const Matrix my_b = r.recv(rank_of(k, j, k), kScatterB);

    Matrix partial(blk, blk);
    gemm_accumulate_fast(my_a, my_b, partial);

    // Phase 3: reduce along z onto the face.
    if (k != 0) {
      r.send(rank_of(i, j, 0), kReduceI, std::move(partial));
      return;
    }
    for (std::uint32_t z = 1; z < q; ++z) {
      partial += r.recv(rank_of(i, j, z), kReduceI);
    }
    out.set_block(i * blk, j * blk, partial);
  });
  return out;
}

Matrix spmd_diag3d(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_diag3d: square operands required");
  const std::uint32_t q = exact_cbrt(team.size());
  HCMM_CHECK(n % q == 0, "spmd_diag3d: n must divide by cbrt(p)");
  const std::size_t blk = n / q;
  Matrix out(n, n);

  team.run([&](Rank& r) {
    const std::uint32_t i = r.id() / (q * q);
    const std::uint32_t j = (r.id() / q) % q;
    const std::uint32_t k = r.id() % q;
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj, std::uint32_t rk) {
      return (ri * q + rj) * q + rk;
    };

    // Diagonal plane x = y holds A_{k,i} and B_{k,i} at (i,i,k).
    if (i == j) {
      const Matrix blk_a = a.block(k * blk, i * blk, blk, blk);
      // Phase 1: B_{k,i} travels to (i,k,k); phase 2a: broadcast A along x.
      if (i != k) {
        r.send(rank_of(i, k, k), kAlignB,
               b.block(k * blk, i * blk, blk, blk));
      }
      for (std::uint32_t x = 0; x < q; ++x) {
        r.send(rank_of(x, i, k), kGatherA, blk_a);
      }
    }
    // Phase 2b: (i,k,k) broadcasts the relocated B_{k,i} along z.
    if (j == k) {
      const Matrix blk_b = (i == j) ? b.block(k * blk, i * blk, blk, blk)
                                    : r.recv(rank_of(i, i, k), kAlignB);
      for (std::uint32_t z = 0; z < q; ++z) {
        r.send(rank_of(i, j, z), kBundleB, blk_b);
      }
    }
    const Matrix my_a = r.recv(rank_of(j, j, k), kGatherA);   // A_{k,j}
    const Matrix my_b = r.recv(rank_of(i, j, j), kBundleB);   // B_{j,i}

    Matrix partial(blk, blk);
    gemm_accumulate_fast(my_a, my_b, partial);

    // Phase 3: reduce along y back onto the diagonal plane.
    if (i != j) {
      r.send(rank_of(i, i, k), kReduceI, std::move(partial));
      return;
    }
    for (std::uint32_t y = 0; y < q; ++y) {
      if (y != i) partial += r.recv(rank_of(i, y, k), kReduceI);
    }
    out.set_block(k * blk, i * blk, partial);  // C_{k,i}, aligned like A
  });
  return out;
}

Matrix spmd_berntsen(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_berntsen: square operands required");
  const std::uint32_t q = exact_cbrt(team.size());
  HCMM_CHECK(n % (static_cast<std::size_t>(q) * q) == 0,
             "spmd_berntsen: n must divide by cbrt(p)^2");
  const std::size_t bh = n / q;
  const std::size_t bw = n / (static_cast<std::size_t>(q) * q);
  Matrix out(n, n);

  team.run([&](Rank& r) {
    // Face k computes the outer product of A's column set k and B's row set
    // k with Cannon on its q x q plane.
    const std::uint32_t i = r.id() / (q * q);  // face row
    const std::uint32_t j = (r.id() / q) % q;  // face column
    const std::uint32_t k = r.id() % q;        // face (z)
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj, std::uint32_t rk) {
      return (ri * q + rj) * q + rk;
    };
    Matrix blk_a = a.block(i * bh, k * bh + j * bw, bh, bw);
    Matrix blk_b = b.block(k * bh + i * bw, j * bh, bw, bh);

    // Cannon alignment and steps within the face.
    if (i != 0) {
      r.send(rank_of(i, (j + q - i) % q, k), kAlignA, std::move(blk_a));
      blk_a = r.recv(rank_of(i, (j + i) % q, k), kAlignA);
    }
    if (j != 0) {
      r.send(rank_of((i + q - j) % q, j, k), kAlignB, std::move(blk_b));
      blk_b = r.recv(rank_of((i + j) % q, j, k), kAlignB);
    }
    Matrix outer(bh, bh);
    for (std::uint32_t step = 0; step < q; ++step) {
      gemm_accumulate_fast(blk_a, blk_b, outer);
      if (step + 1 == q) break;
      r.send(rank_of(i, (j + q - 1) % q, k), kShiftA + step, std::move(blk_a));
      blk_a = r.recv(rank_of(i, (j + 1) % q, k), kShiftA + step);
      r.send(rank_of((i + q - 1) % q, j, k), kShiftB + step, std::move(blk_b));
      blk_b = r.recv(rank_of((i + 1) % q, j, k), kShiftB + step);
    }

    // All-to-all reduction across faces: row group z of the outer-product
    // block lands on face z.
    for (std::uint32_t z = 0; z < q; ++z) {
      if (z != k) {
        r.send(rank_of(i, j, z), kReduceI, outer.block(z * bw, 0, bw, bh));
      }
    }
    Matrix piece = outer.block(k * bw, 0, bw, bh);
    for (std::uint32_t z = 0; z < q; ++z) {
      if (z != k) piece += r.recv(rank_of(i, j, z), kReduceI);
    }
    out.set_block(i * bh + k * bw, j * bh, piece);
  });
  return out;
}

Matrix spmd_diag2d(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_diag2d: square operands required");
  const std::uint32_t q = exact_sqrt(team.size());
  HCMM_CHECK(n % q == 0, "spmd_diag2d: n must divide by sqrt(p)");
  const std::size_t w = n / q;
  Matrix out(n, n);

  team.run([&](Rank& r) {
    const std::uint32_t i = r.id() / q;
    const std::uint32_t j = r.id() % q;
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj) {
      return ri * q + rj;
    };
    // The diagonal rank (j,j) owns A's column group j and B's row group j;
    // it scatters B pieces down its column and broadcasts the A group.
    if (i == j) {
      const Matrix a_group = a.block(0, j * w, n, w);
      for (std::uint32_t x = 0; x < q; ++x) {
        r.send(rank_of(x, j), kScatterB, b.block(j * w, x * w, w, w));
        r.send(rank_of(x, j), kGatherA, a_group);
      }
    }
    const Matrix piece_b = r.recv(rank_of(j, j), kScatterB);
    const Matrix a_group = r.recv(rank_of(j, j), kGatherA);

    Matrix partial(n, w);
    gemm_accumulate_fast(a_group, piece_b, partial);

    // Reduce C's column group i across row i onto the diagonal.
    if (i != j) {
      r.send(rank_of(i, i), kReduceI, std::move(partial));
      return;
    }
    for (std::uint32_t c = 0; c < q; ++c) {
      if (c != i) partial += r.recv(rank_of(i, c), kReduceI);
    }
    out.set_block(0, i * w, partial);
  });
  return out;
}

Matrix spmd_alltrans(Team& team, const Matrix& a, const Matrix& b) {
  const std::size_t n = a.rows();
  HCMM_CHECK(a.cols() == n && b.rows() == n && b.cols() == n,
             "spmd_alltrans: square operands required");
  const std::uint32_t q = exact_cbrt(team.size());
  HCMM_CHECK(n % (static_cast<std::size_t>(q) * q) == 0,
             "spmd_alltrans: n must divide by cbrt(p)^2");
  const std::size_t bh = n / q;
  const std::size_t bw = n / (static_cast<std::size_t>(q) * q);
  Matrix out(n, n);

  team.run([&](Rank& r) {
    const std::uint32_t i = r.id() / (q * q);
    const std::uint32_t j = (r.id() / q) % q;
    const std::uint32_t k = r.id() % q;
    auto rank_of = [q](std::uint32_t ri, std::uint32_t rj, std::uint32_t rk) {
      return (ri * q + rj) * q + rk;
    };
    const std::uint32_t f = i * q + j;
    const Matrix blk_a = a.block(k * bh, f * bw, bh, bw);
    // B starts in the transposed layout of Fig. 9: B_{f(i,j),k}.
    const Matrix blk_b = b.block(f * bw, k * bh, bw, bh);

    // Phase 1: gather B_{f(*,j),k} along x to the rank with x = k.
    if (i != k) r.send(rank_of(k, j, k), kAlignB, blk_b);
    // Phase 2a: all-to-all broadcast of A along x.
    for (std::uint32_t m = 0; m < q; ++m) {
      if (m != i) r.send(rank_of(m, j, k), kGatherA, blk_a);
    }
    // Phase 2b: the gathered bundle broadcasts along z from (i,j,i).
    if (i == k) {
      std::vector<Matrix> bundle(q);
      for (std::uint32_t l = 0; l < q; ++l) {
        bundle[l] = (l == i) ? blk_b : r.recv(rank_of(l, j, k), kAlignB);
      }
      for (std::uint32_t z = 0; z < q; ++z) {
        for (std::uint32_t l = 0; l < q; ++l) {
          r.send(rank_of(i, j, z), kBundleB + l, bundle[l]);
        }
      }
    }
    std::vector<Matrix> a_blocks(q);
    for (std::uint32_t m = 0; m < q; ++m) {
      a_blocks[m] = (m == i) ? blk_a : r.recv(rank_of(m, j, k), kGatherA);
    }
    std::vector<Matrix> b_rows(q);
    for (std::uint32_t l = 0; l < q; ++l) {
      b_rows[l] = r.recv(rank_of(i, j, i), kBundleB + l);
    }

    // I_{k,i} = sum_l A_{k,f(l,j)} * B_{f(l,j),i}.
    Matrix partial(bh, bh);
    for (std::uint32_t l = 0; l < q; ++l) {
      gemm_accumulate_fast(a_blocks[l], b_rows[l], partial);
    }

    // Phase 3: all-to-all reduction along y of the column pieces.
    for (std::uint32_t l = 0; l < q; ++l) {
      if (l == j) continue;
      r.send(rank_of(i, l, k), kReduceI, partial.block(0, l * bw, bh, bw));
    }
    Matrix c_piece = partial.block(0, j * bw, bh, bw);
    for (std::uint32_t l = 0; l < q; ++l) {
      if (l == j) continue;
      c_piece += r.recv(rank_of(i, l, k), kReduceI);
    }
    out.set_block(k * bh, f * bw, c_piece);  // aligned like A
  });
  return out;
}

namespace {

constexpr std::array<SpmdAlgo, 8> kSpmdAlgos{{
    {"cannon", &spmd_cannon, 2, 1},
    {"all3d", &spmd_all3d, 3, 2},
    {"simple", &spmd_simple, 2, 1},
    {"dns", &spmd_dns, 3, 1},
    {"diag3d", &spmd_diag3d, 3, 1},
    {"berntsen", &spmd_berntsen, 3, 2},
    {"diag2d", &spmd_diag2d, 2, 1},
    {"alltrans", &spmd_alltrans, 3, 2},
}};

}  // namespace

std::span<const SpmdAlgo> spmd_algorithms() noexcept { return kSpmdAlgos; }

const SpmdAlgo* spmd_by_name(std::string_view name) noexcept {
  for (const SpmdAlgo& a : kSpmdAlgos) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace hcmm::rt
