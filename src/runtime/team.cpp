#include "hcmm/runtime/team.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hcmm/support/check.hpp"

namespace hcmm::rt {
namespace {

/// Internal signal thrown by check_injections when a rank's injected death
/// fires; Team::run converts it into that rank's primary failure.
struct InjectedDeath {
  std::uint64_t ops = 0;
};

/// Strict parse of HCMM_RT_TIMEOUT_MS: a positive decimal integer with no
/// trailing garbage, no sign games, and no overflow — the same strtoull
/// discipline hcmm_chaos applies to --seed.  Malformed input throws with
/// the offending text; absent returns nullopt.
[[nodiscard]] std::optional<std::chrono::milliseconds> parse_env_timeout() {
  const char* env = std::getenv("HCMM_RT_TIMEOUT_MS");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  constexpr unsigned long long kMaxMs = 86'400'000ULL;  // one day
  // strtoull quietly skips leading whitespace and negates a leading '-';
  // demanding a digit first keeps the value strictly what it looks like.
  const bool starts_with_digit = env[0] >= '0' && env[0] <= '9';
  HCMM_CHECK(starts_with_digit && end != env && *end == '\0' &&
                 errno != ERANGE && v > 0 && v <= kMaxMs,
             "HCMM_RT_TIMEOUT_MS: expected a positive integer number of "
             "milliseconds (at most "
                 << kMaxMs << "), got \"" << env << "\"");
  return std::chrono::milliseconds(static_cast<std::int64_t>(v));
}

// The environment is read once per process, not per Team construction: the
// cached value lives here and reset_env_overrides_for_testing drops it.
std::mutex g_env_mu;
bool g_env_loaded = false;                                  // NOLINT
std::optional<std::chrono::milliseconds> g_env_timeout;     // NOLINT

[[nodiscard]] std::chrono::milliseconds resolve_timeout(
    std::optional<std::chrono::milliseconds> explicit_timeout) {
  if (explicit_timeout) return *explicit_timeout;
  std::lock_guard lock(g_env_mu);
  if (!g_env_loaded) {
    g_env_timeout = parse_env_timeout();
    g_env_loaded = true;
  }
  return g_env_timeout.value_or(std::chrono::milliseconds(30000));
}

}  // namespace

void reset_env_overrides_for_testing() {
  std::lock_guard lock(g_env_mu);
  g_env_loaded = false;
  g_env_timeout.reset();
}

Team::Team(std::uint32_t ranks,
           std::optional<std::chrono::milliseconds> recv_timeout)
    : Team(make_mailbox_transport(ranks), recv_timeout) {}

Team::Team(std::unique_ptr<Transport> transport,
           std::optional<std::chrono::milliseconds> recv_timeout)
    : transport_(std::move(transport)),
      ranks_(transport_->ranks()),
      timeout_(resolve_timeout(recv_timeout)) {
  HCMM_CHECK(ranks_ >= 1 && ranks_ <= 4096, "Team: bad rank count " << ranks_);
  for (const std::uint32_t r : transport_->local_ranks()) {
    HCMM_CHECK(r < ranks_, "Team: local rank " << r << " out of range");
  }
}

void Team::inject_rank_death(std::uint32_t rank, std::uint64_t after_ops) {
  HCMM_CHECK(rank < ranks_, "inject_rank_death: rank " << rank
                                                       << " out of range");
  std::lock_guard lock(inj_mu_);
  death_at_[rank] = after_ops;
}

void Team::inject_rank_delay(std::uint32_t rank,
                             std::chrono::milliseconds delay) {
  HCMM_CHECK(rank < ranks_, "inject_rank_delay: rank " << rank
                                                       << " out of range");
  std::lock_guard lock(inj_mu_);
  delay_[rank] = delay;
}

void Team::clear_injections() {
  std::lock_guard lock(inj_mu_);
  death_at_.clear();
  delay_.clear();
}

void Team::check_injections(std::uint32_t rank) {
  bool die = false;
  std::uint64_t ops = 0;
  std::chrono::milliseconds delay{0};
  {
    std::lock_guard lock(inj_mu_);
    ops = op_counts_[rank]++;
    const auto dit = death_at_.find(rank);
    if (dit != death_at_.end() && ops >= dit->second) die = true;
    const auto sit = delay_.find(rank);
    if (sit != delay_.end()) delay = sit->second;
  }
  if (die) throw InjectedDeath{ops};
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

void Team::run(const std::function<void(Rank&)>& fn) {
  {
    std::lock_guard lock(inj_mu_);
    op_counts_.assign(ranks_, 0);
  }
  rank_errors_.clear();
  recv_retries_.store(0, std::memory_order_relaxed);
  transport_->begin_run();

  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto register_failure = [&](std::uint32_t r, std::string msg,
                                    std::exception_ptr ep) {
    {
      std::lock_guard lock(err_mu);
      if (ep && !first_error) first_error = ep;
      rank_errors_.push_back(RankError{r, msg});
    }
    transport_->notify_failure(r, msg);
  };
  std::vector<std::thread> threads;
  const std::vector<std::uint32_t>& local = transport_->local_ranks();
  threads.reserve(local.size());
  for (const std::uint32_t r : local) {
    threads.emplace_back([this, &fn, r, &register_failure] {
      Rank rank(*this, r);
      try {
        fn(rank);
      } catch (const InjectedDeath& d) {
        register_failure(r,
                         "injected rank death (after " + std::to_string(d.ops) +
                             " team ops)",
                         nullptr);
      } catch (const PeerAbort&) {
        // Secondary: the primary failure is already registered.
      } catch (const DeadPeerError&) {
        // Secondary: diagnosed consequence of an already-dead peer.
      } catch (const std::exception& e) {
        register_failure(r, e.what(), std::current_exception());
      } catch (...) {
        register_failure(r, "unknown exception", std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();

  // Failures that originated in other processes (socket backend) are
  // primary too: without them a dead worker would read as a silent success.
  for (RemoteFailure& rf : transport_->remote_failures()) {
    const bool known =
        std::any_of(rank_errors_.begin(), rank_errors_.end(),
                    [&](const RankError& e) { return e.rank == rf.rank; });
    if (!known) {
      rank_errors_.push_back(RankError{rf.rank, std::move(rf.message)});
    }
  }

  if (rank_errors_.empty()) return;
  std::sort(rank_errors_.begin(), rank_errors_.end(),
            [](const RankError& a, const RankError& b) {
              return a.rank < b.rank;
            });
  if (rank_errors_.size() == 1 && first_error) {
    std::rethrow_exception(first_error);
  }
  std::ostringstream os;
  os << "Team: " << rank_errors_.size() << " rank(s) failed";
  const char* sep = " — ";
  for (const RankError& e : rank_errors_) {
    os << sep << "rank " << e.rank << ": " << e.message;
    sep = "; ";
  }
  throw std::runtime_error(os.str());
}

void Team::send(std::uint32_t from, std::uint32_t to, std::uint64_t tag,
                Matrix m) {
  HCMM_CHECK(to < ranks_, "Team::send: rank " << to << " out of range");
  HCMM_CHECK((tag >> 63) == 0,
             "Team::send: tag bit 63 is reserved for transport control");
  check_injections(from);
  transport_->send(from, to, tag, std::move(m));
}

Matrix Team::recv(std::uint32_t to, std::uint32_t from, std::uint64_t tag) {
  HCMM_CHECK(from < ranks_, "Team::recv: rank " << from << " out of range");
  check_injections(to);
  // Wait in doubling slices: a slow peer costs extra slices (counted as
  // retries), never an abort, until the full timeout budget is spent.
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  auto slice = std::max(timeout_ / 8, std::chrono::milliseconds(1));
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    const auto wait = std::clamp(left, std::chrono::milliseconds(0), slice);
    Matrix out;
    switch (transport_->wait_recv(to, from, tag, wait, &out)) {
      case RecvStatus::kReady:
        return out;
      case RecvStatus::kPeerDead:
        throw DeadPeerError(from, "Team::recv: rank " + std::to_string(to) +
                                      " was waiting on dead rank " +
                                      std::to_string(from));
      case RecvStatus::kAborted:
        throw PeerAbort("Team: aborting after peer failure");
      case RecvStatus::kTimedOut:
        HCMM_CHECK(now < deadline, "Team::recv: rank "
                                       << to << " timed out waiting for ("
                                       << from << ", tag " << tag
                                       << ") — deadlock?");
        recv_retries_.fetch_add(1, std::memory_order_relaxed);
        slice *= 2;
        break;
    }
  }
}

void Team::barrier_wait(std::uint32_t rank) {
  check_injections(rank);
  switch (transport_->barrier(rank, timeout_)) {
    case BarrierStatus::kOk:
      return;
    case BarrierStatus::kAborted:
      throw PeerAbort("Team: aborting after peer failure");
    case BarrierStatus::kTimedOut:
      HCMM_CHECK(false, "Team::barrier: timed out — a rank is missing");
  }
}

}  // namespace hcmm::rt
