#include "hcmm/runtime/team.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "hcmm/support/check.hpp"

namespace hcmm::rt {
namespace {

/// Internal signal thrown by check_injections when a rank's injected death
/// fires; Team::run converts it into that rank's primary failure.
struct InjectedDeath {
  std::uint64_t ops = 0;
};

[[nodiscard]] std::chrono::milliseconds resolve_timeout(
    std::optional<std::chrono::milliseconds> explicit_timeout) {
  if (explicit_timeout) return *explicit_timeout;
  // Re-read per construction (documented, tested behavior).  Safe despite
  // concurrency-mt-unsafe: the constructor runs before any worker thread
  // exists, and nothing in the library mutates the environment.
  if (const char* env = std::getenv("HCMM_RT_TIMEOUT_MS")) {  // NOLINT(concurrency-mt-unsafe)
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return std::chrono::milliseconds(v);
    }
  }
  return std::chrono::milliseconds(30000);
}

}  // namespace

Team::Team(std::uint32_t ranks,
           std::optional<std::chrono::milliseconds> recv_timeout)
    : ranks_(ranks), timeout_(resolve_timeout(recv_timeout)) {
  HCMM_CHECK(ranks >= 1 && ranks <= 4096, "Team: bad rank count " << ranks);
}

void Team::inject_rank_death(std::uint32_t rank, std::uint64_t after_ops) {
  HCMM_CHECK(rank < ranks_, "inject_rank_death: rank " << rank
                                                       << " out of range");
  std::lock_guard lock(mu_);
  death_at_[rank] = after_ops;
}

void Team::inject_rank_delay(std::uint32_t rank,
                             std::chrono::milliseconds delay) {
  HCMM_CHECK(rank < ranks_, "inject_rank_delay: rank " << rank
                                                       << " out of range");
  std::lock_guard lock(mu_);
  delay_[rank] = delay;
}

void Team::clear_injections() {
  std::lock_guard lock(mu_);
  death_at_.clear();
  delay_.clear();
}

void Team::check_injections(std::uint32_t rank) {
  bool die = false;
  std::uint64_t ops = 0;
  std::chrono::milliseconds delay{0};
  {
    std::lock_guard lock(mu_);
    ops = op_counts_[rank]++;
    const auto dit = death_at_.find(rank);
    if (dit != death_at_.end() && ops >= dit->second) die = true;
    const auto sit = delay_.find(rank);
    if (sit != delay_.end()) delay = sit->second;
  }
  if (die) throw InjectedDeath{ops};
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

void Team::run(const std::function<void(Rank&)>& fn) {
  {
    std::lock_guard lock(mu_);
    mailboxes_.clear();
    barrier_waiting_ = 0;
    failed_ = false;
    dead_ranks_.clear();
    rank_errors_.clear();
    recv_retries_ = 0;
    op_counts_.assign(ranks_, 0);
  }
  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto register_failure = [&](std::uint32_t r, std::string msg,
                                    std::exception_ptr ep) {
    {
      std::lock_guard lock(err_mu);
      if (ep && !first_error) first_error = ep;
    }
    std::lock_guard lock(mu_);
    rank_errors_.push_back(RankError{r, std::move(msg)});
    dead_ranks_.insert(r);
    failed_ = true;
    cv_.notify_all();
  };
  std::vector<std::thread> threads;
  threads.reserve(ranks_);
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, &fn, r, &register_failure] {
      Rank rank(*this, r);
      try {
        fn(rank);
      } catch (const InjectedDeath& d) {
        register_failure(r,
                         "injected rank death (after " + std::to_string(d.ops) +
                             " team ops)",
                         nullptr);
      } catch (const PeerAbort&) {
        // Secondary: the primary failure is already registered.
      } catch (const DeadPeerError&) {
        // Secondary: diagnosed consequence of an already-dead peer.
      } catch (const std::exception& e) {
        register_failure(r, e.what(), std::current_exception());
      } catch (...) {
        register_failure(r, "unknown exception", std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();

  std::lock_guard lock(mu_);
  if (rank_errors_.empty()) return;
  std::sort(rank_errors_.begin(), rank_errors_.end(),
            [](const RankError& a, const RankError& b) {
              return a.rank < b.rank;
            });
  if (rank_errors_.size() == 1 && first_error) {
    std::rethrow_exception(first_error);
  }
  std::ostringstream os;
  os << "Team: " << rank_errors_.size() << " rank(s) failed";
  const char* sep = " — ";
  for (const RankError& e : rank_errors_) {
    os << sep << "rank " << e.rank << ": " << e.message;
    sep = "; ";
  }
  throw std::runtime_error(os.str());
}

void Team::send(std::uint32_t from, std::uint32_t to, std::uint64_t tag,
                Matrix m) {
  HCMM_CHECK(to < ranks_, "Team::send: rank " << to << " out of range");
  check_injections(from);
  {
    std::lock_guard lock(mu_);
    mailboxes_[Key{to, from, tag}].push_back(std::move(m));
  }
  cv_.notify_all();
}

Matrix Team::recv(std::uint32_t to, std::uint32_t from, std::uint64_t tag) {
  HCMM_CHECK(from < ranks_, "Team::recv: rank " << from << " out of range");
  check_injections(to);
  std::unique_lock lock(mu_);
  const Key key{to, from, tag};
  const auto ready = [&] {
    if (failed_) return true;
    const auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  };
  // Wait in doubling slices: a slow peer costs extra slices (counted as
  // retries), never an abort, until the full timeout budget is spent.
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  auto slice = std::max(timeout_ / 8, std::chrono::milliseconds(1));
  bool ok = ready();
  while (!ok) {
    if (dead_ranks_.contains(from)) {
      throw DeadPeerError(from, "Team::recv: rank " + std::to_string(to) +
                                    " was waiting on dead rank " +
                                    std::to_string(from));
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto wait = std::min<std::chrono::steady_clock::duration>(
        slice, deadline - now);
    if (cv_.wait_for(lock, wait, ready)) {
      ok = true;
    } else {
      recv_retries_ += 1;
      slice *= 2;
    }
  }
  if (failed_) {
    if (dead_ranks_.contains(from)) {
      throw DeadPeerError(from, "Team::recv: rank " + std::to_string(to) +
                                    " was waiting on dead rank " +
                                    std::to_string(from));
    }
    throw PeerAbort("Team: aborting after peer failure");
  }
  HCMM_CHECK(ok, "Team::recv: rank " << to << " timed out waiting for ("
                                     << from << ", tag " << tag
                                     << ") — deadlock?");
  auto& box = mailboxes_[key];
  Matrix m = std::move(box.front());
  box.pop_front();
  if (box.empty()) mailboxes_.erase(key);
  return m;
}

void Team::barrier_wait(std::uint32_t rank) {
  check_injections(rank);
  std::unique_lock lock(mu_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_waiting_ == ranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    cv_.notify_all();
    return;
  }
  const bool ok = cv_.wait_for(lock, timeout_, [&] {
    return failed_ || barrier_generation_ != gen;
  });
  if (failed_) throw PeerAbort("Team: aborting after peer failure");
  HCMM_CHECK(ok, "Team::barrier: timed out — a rank is missing");
}

}  // namespace hcmm::rt
