#include "hcmm/runtime/team.hpp"

#include <stdexcept>
#include <vector>

#include "hcmm/support/check.hpp"

namespace hcmm::rt {

Team::Team(std::uint32_t ranks, std::chrono::milliseconds recv_timeout)
    : ranks_(ranks), timeout_(recv_timeout) {
  HCMM_CHECK(ranks >= 1 && ranks <= 4096, "Team: bad rank count " << ranks);
}

void Team::run(const std::function<void(Rank&)>& fn) {
  {
    std::lock_guard lock(mu_);
    mailboxes_.clear();
    barrier_waiting_ = 0;
    failed_ = false;
  }
  std::vector<std::thread> threads;
  threads.reserve(ranks_);
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (std::uint32_t r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, &fn, r, &err_mu, &first_error] {
      Rank rank(*this, r);
      try {
        fn(rank);
      } catch (...) {
        {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        std::lock_guard lock(mu_);
        failed_ = true;
        cv_.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void Team::send(std::uint32_t from, std::uint32_t to, std::uint64_t tag,
                Matrix m) {
  HCMM_CHECK(to < ranks_, "Team::send: rank " << to << " out of range");
  {
    std::lock_guard lock(mu_);
    mailboxes_[Key{to, from, tag}].push_back(std::move(m));
  }
  cv_.notify_all();
}

Matrix Team::recv(std::uint32_t to, std::uint32_t from, std::uint64_t tag) {
  HCMM_CHECK(from < ranks_, "Team::recv: rank " << from << " out of range");
  std::unique_lock lock(mu_);
  const Key key{to, from, tag};
  const bool ok = cv_.wait_for(lock, timeout_, [&] {
    if (failed_) return true;
    const auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  });
  if (failed_) throw std::runtime_error("Team: aborting after peer failure");
  HCMM_CHECK(ok, "Team::recv: rank " << to << " timed out waiting for ("
                                     << from << ", tag " << tag
                                     << ") — deadlock?");
  auto& box = mailboxes_[key];
  Matrix m = std::move(box.front());
  box.pop_front();
  if (box.empty()) mailboxes_.erase(key);
  return m;
}

void Team::barrier_wait() {
  std::unique_lock lock(mu_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_waiting_ == ranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    cv_.notify_all();
    return;
  }
  const bool ok = cv_.wait_for(lock, timeout_, [&] {
    return failed_ || barrier_generation_ != gen;
  });
  if (failed_) throw std::runtime_error("Team: aborting after peer failure");
  HCMM_CHECK(ok, "Team::barrier: timed out — a rank is missing");
}

}  // namespace hcmm::rt
