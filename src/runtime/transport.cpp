#include "hcmm/runtime/transport.hpp"

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <numeric>
#include <set>

namespace hcmm::rt {
namespace {

/// The thread-mailbox backend rt::Team was originally built on, extracted
/// behind the Transport seam.  One mutex + condition variable guard FIFO
/// deques keyed by (to, from, tag) plus the failure flags and a
/// generation-counting barrier.
class MailboxTransport final : public Transport {
 public:
  explicit MailboxTransport(std::uint32_t ranks)
      : ranks_(ranks), local_(ranks) {
    std::iota(local_.begin(), local_.end(), 0u);
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "mailbox";
  }
  [[nodiscard]] std::uint32_t ranks() const noexcept override {
    return ranks_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& local_ranks()
      const noexcept override {
    return local_;
  }

  void begin_run() override {
    std::lock_guard lock(mu_);
    mailboxes_.clear();
    barrier_waiting_ = 0;
    failed_ = false;
    dead_ranks_.clear();
  }

  void send(std::uint32_t from, std::uint32_t to, std::uint64_t tag,
            Matrix m) override {
    {
      std::lock_guard lock(mu_);
      mailboxes_[Key{to, from, tag}].push_back(std::move(m));
    }
    cv_.notify_all();
  }

  [[nodiscard]] RecvStatus wait_recv(std::uint32_t to, std::uint32_t from,
                                     std::uint64_t tag,
                                     std::chrono::milliseconds slice,
                                     Matrix* out) override {
    std::unique_lock lock(mu_);
    const Key key{to, from, tag};
    const auto ready = [&] {
      if (failed_) return true;
      const auto it = mailboxes_.find(key);
      return it != mailboxes_.end() && !it->second.empty();
    };
    cv_.wait_for(lock, slice, ready);
    // Failure wins over a ready message; a located dead sender wins over a
    // generic abort.
    if (failed_) {
      return dead_ranks_.contains(from) ? RecvStatus::kPeerDead
                                        : RecvStatus::kAborted;
    }
    const auto it = mailboxes_.find(key);
    if (it == mailboxes_.end() || it->second.empty()) {
      return RecvStatus::kTimedOut;
    }
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) mailboxes_.erase(it);
    return RecvStatus::kReady;
  }

  [[nodiscard]] BarrierStatus barrier(
      std::uint32_t /*rank*/, std::chrono::milliseconds timeout) override {
    std::unique_lock lock(mu_);
    const std::uint64_t gen = barrier_generation_;
    if (++barrier_waiting_ == ranks_) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
      cv_.notify_all();
      return BarrierStatus::kOk;
    }
    const bool ok = cv_.wait_for(lock, timeout, [&] {
      return failed_ || barrier_generation_ != gen;
    });
    if (failed_) return BarrierStatus::kAborted;
    return ok ? BarrierStatus::kOk : BarrierStatus::kTimedOut;
  }

  void notify_failure(std::uint32_t rank,
                      const std::string& /*message*/) override {
    {
      std::lock_guard lock(mu_);
      dead_ranks_.insert(rank);
      failed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::vector<RemoteFailure> remote_failures() const override {
    return {};
  }

  [[nodiscard]] WireStats wire_stats() const override { return {}; }

 private:
  struct Key {
    std::uint32_t to;
    std::uint32_t from;
    std::uint64_t tag;
    auto operator<=>(const Key&) const = default;
  };

  std::uint32_t ranks_;
  std::vector<std::uint32_t> local_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, std::deque<Matrix>> mailboxes_;
  std::uint32_t barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  bool failed_ = false;
  std::set<std::uint32_t> dead_ranks_;
};

}  // namespace

std::unique_ptr<Transport> make_mailbox_transport(std::uint32_t ranks) {
  return std::make_unique<MailboxTransport>(ranks);
}

}  // namespace hcmm::rt
