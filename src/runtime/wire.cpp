#include "hcmm/runtime/wire.hpp"

#include <array>
#include <cstring>

namespace hcmm::rt::wire {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB8'8320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

const char* to_string(FrameKind k) noexcept {
  switch (k) {
    case FrameKind::kData:
      return "data";
    case FrameKind::kAck:
      return "ack";
    case FrameKind::kHeartbeat:
      return "heartbeat";
    case FrameKind::kDeath:
      return "death";
    case FrameKind::kHello:
      return "hello";
  }
  return "?";
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t c = 0xFFFF'FFFFu;
  for (const std::uint8_t b : bytes) {
    c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFF'FFFFu;
}

void encode_header(const FrameHeader& h, std::uint8_t* out) noexcept {
  std::memset(out, 0, kHeaderSize);
  put_u32(out, kMagic);
  out[4] = static_cast<std::uint8_t>(h.kind);
  put_u32(out + 8, h.from);
  put_u32(out + 12, h.to);
  put_u32(out + 16, h.epoch);
  put_u64(out + 24, h.run_gen);
  put_u64(out + 32, h.seq);
  put_u64(out + 40, h.ack);
  put_u64(out + 48, h.tag);
  put_u32(out + 56, h.rows);
  put_u32(out + 60, h.cols);
  put_u32(out + 64, h.payload_len);
  put_u32(out + 68, h.payload_crc);
  put_u32(out + 72, crc32({out, kHeaderSize - 4}));
}

std::optional<FrameHeader> decode_header(const std::uint8_t* buf) noexcept {
  if (get_u32(buf) != kMagic) return std::nullopt;
  if (get_u32(buf + 72) != crc32({buf, kHeaderSize - 4})) return std::nullopt;
  const std::uint8_t kind = buf[4];
  if (kind > static_cast<std::uint8_t>(FrameKind::kHello)) return std::nullopt;
  FrameHeader h;
  h.kind = static_cast<FrameKind>(kind);
  h.from = get_u32(buf + 8);
  h.to = get_u32(buf + 12);
  h.epoch = get_u32(buf + 16);
  h.run_gen = get_u64(buf + 24);
  h.seq = get_u64(buf + 32);
  h.ack = get_u64(buf + 40);
  h.tag = get_u64(buf + 48);
  h.rows = get_u32(buf + 56);
  h.cols = get_u32(buf + 60);
  h.payload_len = get_u32(buf + 64);
  h.payload_crc = get_u32(buf + 68);
  if (h.payload_len > kMaxPayload) return std::nullopt;
  return h;
}

}  // namespace hcmm::rt::wire
