#include "hcmm/sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "hcmm/analysis/legality.hpp"
#include "hcmm/sim/router.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

/// Union @p from's failed links into @p into (dead nodes are plan-owned and
/// never discovered mid-flight, so links are all a merge needs).
void merge_links(fault::FaultSet& into, const fault::FaultSet& from) {
  for (const std::uint64_t key : from.failed_links()) {
    into.fail_link(static_cast<NodeId>(key >> 32),
                   static_cast<NodeId>(key & 0xffffffffULL));
  }
}

}  // namespace

const char* to_string(PortModel m) noexcept {
  return m == PortModel::kOnePort ? "one-port" : "multi-port";
}

void PhaseStats::add(const PhaseStats& other) {
  rounds += other.rounds;
  word_cost += other.word_cost;
  messages += other.messages;
  link_words += other.link_words;
  flops += other.flops;
  comm_time += other.comm_time;
  compute_time += other.compute_time;
  retries += other.retries;
  reroutes += other.reroutes;
  extra_hops += other.extra_hops;
  fault_startups += other.fault_startups;
  fault_word_cost += other.fault_word_cost;
  fault_delay += other.fault_delay;
  checkpoints += other.checkpoints;
  checkpoint_cost += other.checkpoint_cost;
  silent_corruptions += other.silent_corruptions;
  abft_detected += other.abft_detected;
  abft_corrected += other.abft_corrected;
  words_copied += other.words_copied;
  words_aliased += other.words_aliased;
  combines_in_place += other.combines_in_place;
  combines_copied += other.combines_copied;
}

LinkBalance summarize_links(std::span<const LinkLoad> loads,
                            std::uint64_t total_links) {
  LinkBalance out;
  out.links_used = loads.size();
  if (loads.empty()) return out;
  std::uint64_t sum = 0;
  for (const auto& l : loads) {
    out.max_words = std::max(out.max_words, l.words);
    sum += l.words;
  }
  out.mean_words = static_cast<double>(sum) / static_cast<double>(loads.size());
  out.imbalance = out.mean_words > 0
                      ? static_cast<double>(out.max_words) / out.mean_words
                      : 0.0;
  const double directed = 2.0 * static_cast<double>(total_links);
  out.coverage =
      directed > 0 ? static_cast<double>(loads.size()) / directed : 0.0;
  return out;
}

PhaseStats SimReport::totals() const {
  PhaseStats t;
  t.name = "TOTAL";
  for (const auto& p : phases) t.add(p);
  return t;
}

std::string SimReport::to_string() const {
  std::ostringstream os;
  os << "port=" << hcmm::to_string(port) << "  ts=" << params.ts
     << " tw=" << params.tw << " tc=" << params.tc << "\n";
  os << std::left << std::setw(22) << "phase" << std::right << std::setw(10)
     << "a(ts)" << std::setw(14) << "b(tw)" << std::setw(10) << "msgs"
     << std::setw(14) << "link words" << std::setw(14) << "comm time"
     << std::setw(14) << "compute" << "\n";
  auto row = [&os](const PhaseStats& p) {
    os << std::left << std::setw(22) << p.name << std::right << std::setw(10)
       << p.rounds << std::setw(14) << std::fixed << std::setprecision(1)
       << p.word_cost << std::setw(10) << p.messages << std::setw(14)
       << p.link_words << std::setw(14) << std::setprecision(1) << p.comm_time
       << std::setw(14) << p.compute_time << "\n";
  };
  for (const auto& p : phases) row(p);
  const PhaseStats t = totals();
  row(t);
  if (t.faulted() || !fault_events.empty()) {
    os << "faults: retries=" << t.retries << " reroutes=" << t.reroutes
       << " extra_hops=" << t.extra_hops << " +startups=" << t.fault_startups
       << " +words=" << std::setprecision(1) << t.fault_word_cost
       << " delay=" << t.fault_delay << " events=" << fault_events.size()
       << "\n";
  }
  if (t.checkpoints || t.silent_corruptions || t.abft_detected || recoveries ||
      restarts || !abft_events.empty()) {
    os << "abft: checkpoints=" << t.checkpoints << " ckpt_cost="
       << std::setprecision(1) << t.checkpoint_cost
       << " silent=" << t.silent_corruptions
       << " detected=" << t.abft_detected
       << " corrected=" << t.abft_corrected << " recoveries=" << recoveries
       << " restarts=" << restarts << " events=" << abft_events.size() << "\n";
  }
  if (t.words_copied || t.words_aliased || t.combines_in_place ||
      t.combines_copied) {
    os << "host data plane: copied=" << t.words_copied
       << " aliased=" << t.words_aliased
       << " combines(in-place/copied)=" << t.combines_in_place << "/"
       << t.combines_copied << "\n";
  }
  os << "peak store words (all nodes): " << peak_words_total << "\n";
  return os.str();
}

Machine::Machine(Hypercube cube, PortModel port, CostParams params,
                 std::shared_ptr<ThreadPool> pool)
    : cube_(cube),
      port_(port),
      params_(params),
      store_(cube.size()),
      pool_(pool ? std::move(pool) : std::make_shared<ThreadPool>(1)) {}

PhaseStats& Machine::current_phase() {
  if (phases_.empty()) phases_.push_back(PhaseStats{.name = "main"});
  return phases_.back();
}

void Machine::fold_plane_stats() {
  const DataPlaneStats now = store_.plane_stats();
  const DataPlaneStats d = now - plane_mark_;
  if (!phases_.empty()) {
    PhaseStats& ph = phases_.back();
    ph.words_copied += d.words_copied;
    ph.words_aliased += d.words_aliased;
    ph.combines_in_place += d.combines_in_place;
    ph.combines_copied += d.combines_copied;
  }
  plane_mark_ = now;
}

void Machine::begin_phase(std::string name) {
  begin_calls_ += 1;
  if (replaying_) {
    if (replay_phase_calls_ > 0) {
      // A phase boundary inside the replayed prefix: its stats were restored
      // from the checkpoint, so the call is swallowed.
      --replay_phase_calls_;
      return;
    }
    // This is the checkpointed boundary itself.  Replay must have re-executed
    // exactly the prefix rounds and rebuilt the exact store placement the
    // snapshot froze — anything else means recovery is not deterministic.
    HCMM_CHECK(round_seq_ == replay_until_,
               "checkpoint replay drift: expected " << replay_until_
                                                    << " rounds, re-executed "
                                                    << round_seq_);
    HCMM_CHECK(!checkpoints_.empty(), "replay without a checkpoint");
    const analysis::Placement now = analysis::snapshot_placement(store_);
    HCMM_CHECK(now.nodes() == checkpoints_.back().placement.nodes(),
               "checkpoint replay rebuilt a different store placement");
    replaying_ = false;
    // The replayed prefix's copy traffic was already folded on the original
    // attempt and restored with the checkpoint; resync without folding.
    plane_mark_ = store_.plane_stats();
  } else {
    fold_plane_stats();
  }
  if (phase_observer_) phase_observer_(name);
  phases_.push_back(PhaseStats{.name = std::move(name)});
  if (checkpointing_) take_checkpoint();
}

void Machine::take_checkpoint() {
  // Freeze everything measurement depends on, *before* charging the
  // checkpoint's own cost (the restore path re-enters through this function
  // and must re-charge it identically).  The just-pushed empty phase is
  // excluded: rollback re-pushes it at the boundary.
  Checkpoint ck;
  ck.phases.assign(phases_.begin(), phases_.end() - 1);
  ck.placement = analysis::snapshot_placement(store_);
  ck.round_seq = round_seq_;
  // begin_calls_ already counts the begin_phase() call that opened the
  // boundary phase; the checkpoint freezes the state before that call.
  ck.begin_calls = begin_calls_ - 1;
  ck.async = async_;
  ck.events = fault_events_;
  ck.links = link_traffic_;
  if (fault_) ck.faults = effective_;
  // Scheduled checkpoint-state corruption: the digest failure is discovered
  // at restore time, not here — taking the snapshot looks healthy.
  if (fault_ && fault_->corrupt_checkpoint.contains(ckpt_ordinal_)) {
    ck.corrupted = true;
  }
  ckpt_ordinal_ += 1;
  // Only the latest boundary is ever rolled back to; older snapshots would
  // just hold payload-sized placement maps alive.
  checkpoints_.clear();
  checkpoints_.push_back(std::move(ck));

  // Write-out cost under the paper's model: every node streams its resident
  // words to its checkpoint partner at t_w per word plus one start-up,
  // bulk-synchronously — the slowest node gates the barrier.
  std::size_t max_words = 0;
  for (NodeId n = 0; n < cube_.size(); ++n) {
    max_words = std::max(max_words, store_.words(n));
  }
  const double cost =
      params_.ts + params_.tw * static_cast<double>(max_words);
  PhaseStats& ph = phases_.back();
  ph.checkpoints += 1;
  ph.checkpoint_cost += cost;
  ph.rounds += 1;  // the write-out start-up and words show up in (a, b)
  ph.word_cost += static_cast<double>(max_words);
  ph.comm_time += cost;
  // The checkpoint is a global barrier for the asynchronous DAG too.
  async_.floor = std::max(async_.floor, async_.makespan) + cost;
  async_.makespan = async_.floor;
}

void Machine::run(const Schedule& s) {
  if (observer_) observer_(s);
  // Delivery effects are fully determined by the schedule the op-trace
  // recorder just saw; muting keeps them from surfacing twice.
  struct MuteRounds {
    DataStore& store;
    explicit MuteRounds(DataStore& st) : store(st) {
      store.set_event_muting(true);
    }
    ~MuteRounds() { store.set_event_muting(false); }
    MuteRounds(const MuteRounds&) = delete;
    MuteRounds& operator=(const MuteRounds&) = delete;
  } mute(store_);
  PhaseStats& ph = current_phase();
  // An absent or empty plan takes the exact fault-free path so installing an
  // empty FaultPlan is guaranteed bit-identical to no plan at all.  A plan
  // whose only content is scheduled kills also runs the clean path until a
  // trigger fires — the pre-death prefix must cost exactly the clean run so
  // checkpoints taken before the death stay valid.  effective_ (plan set
  // plus mid-flight discovered links) decides, not the plan set alone.
  const bool faulty =
      fault_ && (!effective_.empty() || fault_->transient.any());
  for (const Round& round : s.rounds) {
    if (round.empty()) continue;
    validate_round(round);
    if (replaying_) {
      if (fault_ && !fault_->kill_at_replay.empty()) {
        // Second-order death: the node dies while the checkpointed prefix is
        // being replayed — recovery traffic itself is the victim.  A located
        // abort hands the ladder back to the driver, which converts the
        // death and rolls back again (the replay is deterministic, so the
        // second rollback replays identically up to this round).
        const auto it = fault_->kill_at_replay.find(round_seq_);
        if (it != fault_->kill_at_replay.end() && !it->second.empty()) {
          const NodeId victim = *it->second.begin();
          throw fault::FaultAbort({fault::FaultKind::kReplayDeath, victim,
                                   victim, round_seq_, 0,
                                   "node death during checkpoint replay"});
        }
      }
      execute_round_replay(round);
      round_seq_ += 1;
      continue;
    }
    if (fault_ && !fault_->kill_at.empty()) {
      // Scheduled mid-run deaths fire before the round executes.  Replayed
      // rounds never reach here: the recovery driver converts each fired
      // trigger into a permanent structural fault before re-running.
      const auto it = fault_->kill_at.find(round_seq_);
      if (it != fault_->kill_at.end() && !it->second.empty()) {
        const NodeId victim = *it->second.begin();
        throw fault::FaultAbort({fault::FaultKind::kMidRunDeath, victim,
                                 victim, round_seq_, 0,
                                 "scheduled node death"});
      }
    }
    if (faulty) {
      execute_round_faulty(round, ph);
    } else {
      execute_round(round, ph);
    }
    round_seq_ += 1;
  }
}

void Machine::set_fault_plan(std::shared_ptr<const fault::FaultPlan> plan) {
  fault_ = std::move(plan);
  fault_events_.clear();
  host_.clear();
  // A fresh plan is a fresh experiment: discovered faults and budget meters
  // belong to the previous plan's run.
  discovered_ = fault::FaultSet{};
  effective_ = fault_ ? fault_->set : fault::FaultSet{};
  rb_retries_ = 0;
  rb_reroutes_ = 0;
  rb_delay_ = 0.0;
  if (!fault_ || fault_->empty()) return;
  const fault::FaultSet& fs = fault_->set;
  if (!fs.empty()) {
    // Rerouting is only guaranteed while the live part of the cube stays
    // connected; diagnose that up front instead of deep inside a phase.
    if (!fs.connected(cube_)) {
      fault::FaultEvent ev;
      ev.kind = fault::FaultKind::kUnroutable;
      ev.detail = "failed links/nodes disconnect the live cube";
      throw fault::FaultAbort(std::move(ev));
    }
  }
  host_.resize(cube_.size());
  for (NodeId n = 0; n < cube_.size(); ++n) {
    host_[n] = fs.host(cube_, n);  // throws FaultAbort(kHostless) if stuck
    if (host_[n] != n) {
      record_event({fault::FaultKind::kNodeDeath, n, host_[n], 0, 0,
                    "contracted onto live partner"});
    }
  }
}

NodeId Machine::host_of(NodeId n) const {
  HCMM_CHECK(cube_.contains(n), "host_of: node " << n << " out of range");
  return host_.empty() ? n : host_[n];
}

const fault::FaultSet& Machine::routing_faults() const noexcept {
  static const fault::FaultSet kNone;
  if (replaying_) return replay_faults_;
  return fault_ ? effective_ : kNone;
}

void Machine::record_event(fault::FaultEvent ev) {
  // The event list is a diagnosis aid, not an exhaustive log; phase counters
  // (retries/reroutes/...) stay exact past the cap.
  constexpr std::size_t kMaxEvents = 256;
  if (fault_events_.size() < kMaxEvents) fault_events_.push_back(std::move(ev));
}

void Machine::note_link(NodeId src, NodeId dst, std::size_t words) {
  if (!link_accounting_) return;
  const std::uint64_t lk = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto& ll = link_traffic_[lk];
  ll.src = src;
  ll.dst = dst;
  ll.words += words;
  ll.messages += 1;
}

void Machine::validate_round(const Round& round) const {
  // Any violation means the schedule builder broke the architecture being
  // simulated — a hard error, never a cost.  The rules themselves live in
  // analysis/legality, shared with the static analyzer so the runtime and
  // static checks cannot drift apart.
  const auto topo = analysis::check_round_topology(cube_, round);
  HCMM_CHECK(topo.empty(), topo.front().message);
  const auto ports = analysis::check_round_ports(cube_, port_, round);
  HCMM_CHECK(ports.empty(), ports.front().message);
}

void Machine::execute_round(const Round& round, PhaseStats& ph) {
  struct Delivery {
    NodeId dst;
    Tag tag;
    Payload payload;
    bool combine;
  };
  std::vector<Delivery> deliveries;
  std::vector<std::pair<NodeId, Tag>> erasures;

  // words sent/received per node; multi-port additionally resolved per link.
  std::unordered_map<std::uint64_t, std::size_t> out_words;
  std::unordered_map<std::uint64_t, std::size_t> in_words;

  for (const Transfer& t : round.transfers) {
    std::size_t words = 0;
    for (const Tag tag : t.tags) {
      Payload p = store_.get(t.src, tag);  // throws if absent: schedule bug
      words += p.size();
      deliveries.push_back({t.dst, tag, std::move(p), t.combine});
      if (t.move_src) erasures.emplace_back(t.src, tag);
    }
    std::uint64_t out_key;
    std::uint64_t in_key;
    if (port_ == PortModel::kOnePort) {
      out_key = t.src;
      in_key = t.dst;
    } else {
      const std::uint32_t dim = exact_log2(t.src ^ t.dst);
      out_key = (static_cast<std::uint64_t>(t.src) << 8) | dim;
      in_key = (static_cast<std::uint64_t>(t.dst) << 8) | dim;
    }
    out_words[out_key] += words;
    in_words[in_key] += words;
    ph.messages += 1;
    ph.link_words += words;

    // Asynchronous (no round barriers) timing: start when the payload is
    // resident at the source and both ports are free.
    double start = 0.0;
    for (const Tag tag : t.tags) {
      const auto it = async_.data_ready.find({t.src, tag});
      if (it != async_.data_ready.end()) start = std::max(start, it->second);
    }
    const std::uint64_t aout = (out_key << 1) | 0u;
    const std::uint64_t ain = (in_key << 1) | 1u;
    start = std::max(
        {start, async_.floor, async_.port_free[aout], async_.port_free[ain]});
    const double end =
        start + params_.ts + params_.tw * static_cast<double>(words);
    async_.port_free[aout] = end;
    async_.port_free[ain] = end;
    for (const Tag tag : t.tags) {
      auto& dr = async_.data_ready[{t.dst, tag}];
      dr = std::max(dr, end);
    }
    async_.makespan = std::max(async_.makespan, end);
    if (link_accounting_) {
      const std::uint64_t lk =
          (static_cast<std::uint64_t>(t.src) << 32) | t.dst;
      auto& ll = link_traffic_[lk];
      ll.src = t.src;
      ll.dst = t.dst;
      ll.words += words;
      ll.messages += 1;
    }
  }

  // Per-node (per-port) critical word count for this round.
  std::size_t round_words = 0;
  for (const auto& [k, w] : out_words) round_words = std::max(round_words, w);
  for (const auto& [k, w] : in_words) round_words = std::max(round_words, w);

  // All reads above saw pre-round state; now apply moves, then deliveries.
  for (const auto& [node, tag] : erasures) store_.erase(node, tag);
  for (auto& d : deliveries) {
    if (d.combine) {
      store_.combine(d.dst, d.tag, d.payload);
    } else {
      store_.put_shared(d.dst, d.tag, std::move(d.payload));
    }
  }

  ph.rounds += 1;
  ph.word_cost += static_cast<double>(round_words);
  ph.comm_time += params_.ts + params_.tw * static_cast<double>(round_words);
}

void Machine::execute_round_faulty(const Round& round, PhaseStats& ph) {
  // Route around everything known failed: the plan's structural set plus
  // detour links discovered failed mid-flight in earlier rounds.
  const fault::FaultSet& fs = effective_;
  const double comm_before = ph.comm_time;

  struct Delivery {
    NodeId dst;
    Tag tag;
    Payload payload;
    bool combine;
  };
  std::vector<Delivery> deliveries;
  std::vector<std::pair<NodeId, Tag>> erasures;

  // Physical single-link hops that survive contraction unscathed.
  struct Hop {
    NodeId src;
    NodeId dst;
    std::size_t words;
  };
  std::vector<Hop> direct;
  std::vector<Detour> detours;

  const bool contracted = !host_.empty();
  for (const Transfer& t : round.transfers) {
    std::size_t words = 0;
    std::vector<Payload> payloads;
    payloads.reserve(t.tags.size());
    for (const Tag tag : t.tags) {
      Payload p = store_.get(t.src, tag);  // throws if absent: schedule bug
      words += p.size();
      payloads.push_back(std::move(p));
      if (t.move_src) erasures.emplace_back(t.src, tag);
    }
    // Silent corruption strikes the wire, before contraction decides whether
    // a wire is even involved: the decision keys on *logical* endpoints so a
    // checkpoint replay under a different contraction corrupts identically.
    maybe_silent_corrupt(t, payloads, &ph);
    for (std::size_t i = 0; i < t.tags.size(); ++i) {
      deliveries.push_back({t.dst, t.tags[i], std::move(payloads[i]), t.combine});
    }
    const NodeId ps = contracted ? host_[t.src] : t.src;
    const NodeId pd = contracted ? host_[t.dst] : t.dst;
    if (ps == pd) continue;  // contraction made it node-local: a free move
    if (cube_.are_neighbors(ps, pd) && !fs.link_failed(ps, pd)) {
      direct.push_back({ps, pd, words});
      ph.messages += 1;
      ph.link_words += words;
      note_link(ps, pd, words);
    } else {
      std::vector<NodeId> path = fault_aware_path(cube_, fs, ps, pd);
      if (path.size() < 2) {
        fault::FaultEvent ev;
        ev.kind = fault::FaultKind::kUnroutable;
        ev.src = ps;
        ev.dst = pd;
        ev.round = round_seq_;
        ev.detail = "no healthy path between physical endpoints";
        throw fault::FaultAbort(std::move(ev));
      }
      record_event({fault::FaultKind::kReroute, ps, pd, round_seq_, 0,
                    std::to_string(path.size() - 1) + " hops"});
      charge_reroute_budget(ps, pd);
      ph.reroutes += 1;
      ph.extra_hops += path.size() - 2;
      ph.messages += path.size() - 1;  // every hop is a physical message
      ph.link_words += words * (path.size() - 1);
      detours.push_back({std::move(path), words});
    }
  }

  if (!direct.empty()) {
    std::unordered_map<std::uint64_t, std::size_t> out_words;
    std::unordered_map<std::uint64_t, std::size_t> in_words;
    std::unordered_map<std::uint64_t, std::uint64_t> out_msgs;
    std::unordered_map<std::uint64_t, std::uint64_t> in_msgs;
    for (const Hop& h : direct) {
      const analysis::PortKeys keys = analysis::port_keys(port_, h.src, h.dst);
      out_words[keys.out] += h.words;
      in_words[keys.in] += h.words;
      out_msgs[keys.out] += 1;
      in_msgs[keys.in] += 1;
    }
    std::size_t round_words = 0;
    for (const auto& [k, w] : out_words) round_words = std::max(round_words, w);
    for (const auto& [k, w] : in_words) round_words = std::max(round_words, w);
    // Contraction can map several logical endpoints onto one physical port;
    // that port serializes its messages, costing start-ups beyond this
    // round's one (the word-times already serialize via the sums above).
    std::uint64_t serial = 1;
    for (const auto& [k, c] : out_msgs) serial = std::max(serial, c);
    for (const auto& [k, c] : in_msgs) serial = std::max(serial, c);
    const std::uint64_t extra = serial - 1;
    ph.rounds += 1 + extra;
    ph.fault_startups += extra;
    ph.word_cost += static_cast<double>(round_words);
    ph.comm_time += static_cast<double>(1 + extra) * params_.ts +
                    params_.tw * static_cast<double>(round_words);
    for (const Hop& h : direct) apply_transients(h.src, h.dst, h.words, ph);
  }

  if (!detours.empty()) execute_detours(detours, ph);

  // All reads above saw pre-round state; now apply moves, then deliveries.
  // The store stays logical throughout — contraction and detours change
  // costs, never payload placement, so faulted runs stay numerically exact.
  for (const auto& [node, tag] : erasures) store_.erase(node, tag);
  for (auto& d : deliveries) {
    if (d.combine) {
      store_.combine(d.dst, d.tag, d.payload);
    } else {
      store_.put_shared(d.dst, d.tag, std::move(d.payload));
    }
  }

  // Under faults the asynchronous timing degrades to the phase-synchronous
  // accounting: each repaired round acts as a global barrier (documented
  // approximation, see docs/FAULTS.md).
  async_.floor =
      std::max(async_.floor, async_.makespan) + (ph.comm_time - comm_before);
  async_.makespan = async_.floor;
}

void Machine::maybe_silent_corrupt(const Transfer& t,
                                   std::span<Payload> payloads,
                                   PhaseStats* ph) {
  if (!fault_ || !fault_->silent_hit(round_seq_, t.src, t.dst)) return;
  if (payloads.empty()) return;
  const std::uint64_t h = fault_->silent_site(round_seq_, t.src, t.dst);
  const std::size_t k = static_cast<std::size_t>(h % payloads.size());
  const Payload& hit = payloads[k];
  if (!hit || hit.empty()) return;
  // Payloads are shared; the corruption happens to the copy on the wire, so
  // the sender's replica must stay intact — clone just the viewed slice.
  std::vector<double> flipped = hit.to_vector();
  const std::size_t idx = static_cast<std::size_t>((h >> 8) % flipped.size());
  double delta = 1.0 + static_cast<double>((h >> 32) % 7);
  if ((h >> 40) & 1u) delta = -delta;
  flipped[idx] += delta;
  payloads[k] = make_payload(std::move(flipped));
  if (ph != nullptr) {  // null during replay: effect replays, count does not
    ph->silent_corruptions += 1;
    record_event({fault::FaultKind::kSilentCorrupt, t.src, t.dst, round_seq_,
                  0,
                  "tag " + std::to_string(t.tags[k]) + ", element " +
                      std::to_string(idx) + ", delta " +
                      std::to_string(delta)});
  }
}

void Machine::execute_round_replay(const Round& round) {
  // Checkpoint replay: re-execute the round's store effects — including the
  // deterministic silent corruptions of the original attempt — while
  // charging nothing.  The costs, events, and traffic of the replayed prefix
  // were restored wholesale from the checkpoint.
  struct Delivery {
    NodeId dst;
    Tag tag;
    Payload payload;
    bool combine;
  };
  std::vector<Delivery> deliveries;
  std::vector<std::pair<NodeId, Tag>> erasures;
  for (const Transfer& t : round.transfers) {
    std::vector<Payload> payloads;
    payloads.reserve(t.tags.size());
    for (const Tag tag : t.tags) {
      payloads.push_back(store_.get(t.src, tag));
      if (t.move_src) erasures.emplace_back(t.src, tag);
    }
    maybe_silent_corrupt(t, payloads, nullptr);
    for (std::size_t i = 0; i < t.tags.size(); ++i) {
      deliveries.push_back(
          {t.dst, t.tags[i], std::move(payloads[i]), t.combine});
    }
  }
  for (const auto& [node, tag] : erasures) store_.erase(node, tag);
  for (auto& d : deliveries) {
    if (d.combine) {
      store_.combine(d.dst, d.tag, d.payload);
    } else {
      store_.put_shared(d.dst, d.tag, std::move(d.payload));
    }
  }
}

void Machine::rollback_to_checkpoint(
    std::shared_ptr<const fault::FaultPlan> plan,
    const fault::FaultEvent& death) {
  HCMM_CHECK(checkpointing_, "rollback_to_checkpoint: checkpointing is off");
  HCMM_CHECK(plan != nullptr, "rollback_to_checkpoint: null plan");
  // Rollback needs a usable snapshot.  Missing (death before the first
  // boundary) or corrupt checkpoints are located escalation points — the
  // recovery driver's next rung is restart_from_scratch — never crashes.
  if (checkpoints_.empty()) {
    throw fault::FaultAbort({fault::FaultKind::kCheckpointCorrupt, death.src,
                             death.dst, death.round, 0,
                             "no checkpoint available to roll back to"});
  }
  if (checkpoints_.back().corrupted) {
    throw fault::FaultAbort({fault::FaultKind::kCheckpointCorrupt, death.src,
                             death.dst, death.round, 0,
                             "checkpoint integrity digest mismatch"});
  }
  charge_recovery_budget(death);
  // The updated plan (death converted into a permanent structural fault)
  // faces the same feasibility gate as set_fault_plan: contraction needs a
  // live partner and rerouting needs a connected live cube.  Failing either
  // is a clean located abort, not a crash.
  const fault::FaultSet& fs = plan->set;
  if (!fs.empty() && !fs.connected(cube_)) {
    throw fault::FaultAbort({fault::FaultKind::kUnroutable, death.src,
                             death.dst, death.round, 0,
                             "mid-run death disconnects the live cube"});
  }
  std::vector<NodeId> hosts(cube_.size());
  for (NodeId n = 0; n < cube_.size(); ++n) {
    hosts[n] = fs.host(cube_, n);  // throws FaultAbort(kHostless) if stuck
  }
  fault_ = std::move(plan);
  host_ = std::move(hosts);
  effective_ = fault_->set;
  merge_links(effective_, discovered_);
  // The store may be mid-phase garbage; recovery restarts the algorithm on a
  // fresh store and replays the prefix, so placement is rebuilt — and then
  // verified against the snapshot — rather than patched.  Policy and op
  // observer are configuration, not state: both survive the swap.
  const CopyPolicy policy = store_.copy_policy();
  StoreObserver observer = store_.op_observer();
  store_ = DataStore(cube_.size());
  store_.set_copy_policy(policy);
  store_.set_op_observer(std::move(observer));
  plane_mark_ = DataPlaneStats{};  // fresh store, fresh counters
  recoveries_ += 1;
  pending_restore_ = true;
  pending_restart_ = false;
  recovery_events_.push_back(death);
  recovery_events_.push_back({fault::FaultKind::kNodeDeath, death.src,
                              host_[death.src], death.round, 0,
                              "contracted onto live partner after rollback"});
  if (rollback_observer_) rollback_observer_();
}

void Machine::restart_from_scratch(
    std::shared_ptr<const fault::FaultPlan> plan,
    const fault::FaultEvent& cause) {
  HCMM_CHECK(plan != nullptr, "restart_from_scratch: null plan");
  charge_recovery_budget(cause);
  const fault::FaultSet& fs = plan->set;
  if (!fs.empty() && !fs.connected(cube_)) {
    throw fault::FaultAbort({fault::FaultKind::kUnroutable, cause.src,
                             cause.dst, cause.round, 0,
                             "fault disconnects the live cube"});
  }
  std::vector<NodeId> hosts(cube_.size());
  for (NodeId n = 0; n < cube_.size(); ++n) {
    hosts[n] = fs.host(cube_, n);  // throws FaultAbort(kHostless) if stuck
  }
  fault_ = std::move(plan);
  host_ = std::move(hosts);
  effective_ = fault_->set;
  merge_links(effective_, discovered_);
  const CopyPolicy policy = store_.copy_policy();
  StoreObserver observer = store_.op_observer();
  store_ = DataStore(cube_.size());
  store_.set_copy_policy(policy);
  store_.set_op_observer(std::move(observer));
  plane_mark_ = DataPlaneStats{};
  // Old snapshots froze placements of the abandoned attempt; dropping them
  // keeps the next rollback from replaying into a run that never happened.
  // The ordinal is NOT reset, so a plan corrupting checkpoint k cannot
  // re-corrupt the restarted run's first snapshot forever.
  checkpoints_.clear();
  restarts_ += 1;
  pending_restart_ = true;
  pending_restore_ = false;
  recovery_events_.push_back(cause);
  if (rollback_observer_) rollback_observer_();
}

void Machine::note_abft(std::uint64_t detected, std::uint64_t corrected) {
  PhaseStats& ph = current_phase();
  ph.abft_detected += detected;
  ph.abft_corrected += corrected;
}

void Machine::record_abft_event(abft::AbftEvent ev) {
  constexpr std::size_t kMaxAbftEvents = 64;
  if (abft_events_.size() < kMaxAbftEvents) {
    abft_events_.push_back(std::move(ev));
  }
}

void Machine::apply_transients(NodeId src, NodeId dst, std::size_t words,
                               PhaseStats& ph) {
  const fault::TransientSpec& tr = fault_->transient;
  if (!tr.any()) return;
  for (std::uint32_t attempt = 1; attempt <= tr.max_attempts; ++attempt) {
    const fault::FaultKind k =
        fault_->attempt_outcome(round_seq_, src, dst, attempt);
    if (k == fault::FaultKind::kNone) return;
    if (k == fault::FaultKind::kSpike) {
      record_event({fault::FaultKind::kSpike, src, dst, round_seq_, attempt,
                    "delivered late"});
      ph.comm_time += tr.spike_time;
      ph.fault_delay += tr.spike_time;
      charge_delay_budget(tr.spike_time, src, dst);
      return;  // delivered, just late
    }
    // Drop or detected corruption: the attempt is wasted and the message
    // must be resent after an exponential backoff.
    record_event({k, src, dst, round_seq_, attempt, ""});
    if (attempt == tr.max_attempts) {
      fault::FaultEvent ev;
      ev.kind = fault::FaultKind::kRetryExhausted;
      ev.src = src;
      ev.dst = dst;
      ev.round = round_seq_;
      ev.attempt = attempt;
      ev.detail = std::string(fault::to_string(k)) + " persisted through " +
                  std::to_string(tr.max_attempts) + " attempts";
      throw fault::FaultAbort(std::move(ev));
    }
    // Deterministic jittered exponential backoff: the jitter term spreads
    // retries that would otherwise synchronize across links into a storm.
    // jitter == 0 reproduces the historical bit-identical backoff.
    double backoff =
        tr.backoff_base * std::ldexp(1.0, static_cast<int>(attempt) - 1);
    if (tr.jitter > 0.0) {
      backoff *=
          1.0 + tr.jitter * fault_->jitter_unit(round_seq_, src, dst, attempt);
    }
    charge_retry_budget(src, dst, attempt);
    ph.retries += 1;
    ph.rounds += 1;  // the resend is one more start-up on the critical path
    ph.fault_startups += 1;
    ph.word_cost += static_cast<double>(words);
    ph.fault_word_cost += static_cast<double>(words);
    ph.comm_time +=
        params_.ts + params_.tw * static_cast<double>(words) + backoff;
    ph.fault_delay += backoff;
    charge_delay_budget(backoff, src, dst);
  }
}

void Machine::charge_retry_budget(NodeId src, NodeId dst,
                                  std::uint32_t attempt) {
  rb_retries_ += 1;
  const fault::RecoveryBudget& b = fault_->budget;
  if (b.max_retries > 0 && rb_retries_ > b.max_retries) {
    throw fault::FaultAbort({fault::FaultKind::kBudgetExhausted, src, dst,
                             round_seq_, attempt,
                             "retry budget (" + std::to_string(b.max_retries) +
                                 ") exhausted"});
  }
}

void Machine::charge_reroute_budget(NodeId src, NodeId dst) {
  rb_reroutes_ += 1;
  const fault::RecoveryBudget& b = fault_->budget;
  if (b.max_reroutes > 0 && rb_reroutes_ > b.max_reroutes) {
    throw fault::FaultAbort({fault::FaultKind::kBudgetExhausted, src, dst,
                             round_seq_, 0,
                             "reroute budget (" +
                                 std::to_string(b.max_reroutes) +
                                 ") exhausted"});
  }
}

void Machine::charge_delay_budget(double delay, NodeId src, NodeId dst) {
  rb_delay_ += delay;
  const fault::RecoveryBudget& b = fault_->budget;
  if (b.deadline > 0.0 && rb_delay_ > b.deadline) {
    throw fault::FaultAbort({fault::FaultKind::kBudgetExhausted, src, dst,
                             round_seq_, 0,
                             "recovery deadline (" + std::to_string(b.deadline) +
                                 ") exceeded by cumulative fault delay"});
  }
}

void Machine::charge_recovery_budget(const fault::FaultEvent& cause) {
  if (!fault_) return;
  const fault::RecoveryBudget& b = fault_->budget;
  if (b.max_recoveries > 0 && recoveries_ + restarts_ >= b.max_recoveries) {
    throw fault::FaultAbort({fault::FaultKind::kBudgetExhausted, cause.src,
                             cause.dst, cause.round, 0,
                             "recovery budget (" +
                                 std::to_string(b.max_recoveries) +
                                 ") exhausted"});
  }
}

void Machine::execute_detours(std::vector<Detour>& detours, PhaseStats& ph) {
  struct InFlight {
    Detour* d;
    std::size_t pos;
  };
  std::vector<InFlight> live;
  live.reserve(detours.size());
  for (Detour& d : detours) live.push_back({&d, 0});

  // Re-plan a detour from its current node after hop (cur -> next) turned
  // out to cross a failed link, adjusting the counters that were charged for
  // the remaining hops of the abandoned path.
  const auto replan = [&](InFlight& m, NodeId cur) {
    const NodeId dest = m.d->path.back();
    std::vector<NodeId> fresh = fault_aware_path(cube_, effective_, cur, dest);
    if (fresh.size() < 2) {
      throw fault::FaultAbort({fault::FaultKind::kUnroutable, cur, dest,
                               round_seq_, 0,
                               "no healthy path after mid-flight detour "
                               "fault"});
    }
    charge_reroute_budget(cur, dest);
    ph.reroutes += 1;
    const auto old_rem = static_cast<std::int64_t>(m.d->path.size() - 1 - m.pos);
    const auto new_rem = static_cast<std::int64_t>(fresh.size() - 1);
    const std::int64_t delta = new_rem - old_rem;
    // The abandoned hops were pre-charged in execute_round_faulty; patch the
    // traffic counters by the signed difference.
    ph.messages = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ph.messages) + delta);
    ph.extra_hops = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ph.extra_hops) + delta);
    ph.link_words = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(ph.link_words) +
        delta * static_cast<std::int64_t>(m.d->words));
    std::vector<NodeId> spliced(m.d->path.begin(),
                                m.d->path.begin() +
                                    static_cast<std::ptrdiff_t>(m.pos));
    spliced.insert(spliced.end(), fresh.begin(), fresh.end());
    m.d->path = std::move(spliced);
  };

  // A placeholder tag lets repair rounds face the shared legality rules;
  // repair transfers are cost-only and never touch the store.
  const Tag kRepairTag = make_tag(0xFFFF);
  while (!live.empty()) {
    Round repair;
    std::vector<std::size_t> hop_words;
    std::unordered_map<std::uint64_t, std::size_t> out_words;
    std::unordered_map<std::uint64_t, std::size_t> in_words;
    for (InFlight& m : live) {
      const NodeId cur = m.d->path[m.pos];
      const NodeId next = m.d->path[m.pos + 1];
      // Second-order faults on the recovery path itself: the planned hop may
      // cross a link another detour just discovered failed, or be discovered
      // failed right now.  Either way the message re-plans from where it
      // stands and waits out this wave.
      if (effective_.link_failed(cur, next)) {
        record_event({fault::FaultKind::kReroute, cur, next, round_seq_, 0,
                      "detour re-planned around discovered fault"});
        replan(m, cur);
        continue;
      }
      if (fault_->detour_hit(round_seq_, cur, next)) {
        discovered_.fail_link(cur, next);
        effective_.fail_link(cur, next);
        record_event({fault::FaultKind::kDetourFault, cur, next, round_seq_, 0,
                      "detour link discovered failed mid-flight"});
        replan(m, cur);
        continue;
      }
      const analysis::PortKeys keys = analysis::port_keys(port_, cur, next);
      if (out_words.contains(keys.out) || in_words.contains(keys.in)) continue;
      out_words[keys.out] = m.d->words;
      in_words[keys.in] = m.d->words;
      repair.transfers.push_back(Transfer{.src = cur,
                                          .dst = next,
                                          .tags = {kRepairTag},
                                          .combine = false,
                                          .move_src = false});
      hop_words.push_back(m.d->words);
      note_link(cur, next, m.d->words);
      ++m.pos;
    }
    // A wave where every live message re-planned moves no data but did make
    // progress: each re-plan permanently grew the discovered fault set or
    // switched to a path that avoids it, so the loop terminates.
    if (repair.empty()) continue;
    // Repaired rounds are re-validated through the same legality rules that
    // gate every original round — recovery may not bend the architecture.
    const auto viols = analysis::check_round(cube_, port_, repair);
    HCMM_CHECK(viols.empty(),
               "repair round illegal: " << viols.front().message);
    std::size_t round_words = 0;
    for (const auto& [k, w] : out_words) round_words = std::max(round_words, w);
    for (const auto& [k, w] : in_words) round_words = std::max(round_words, w);
    ph.rounds += 1;
    ph.fault_startups += 1;
    ph.word_cost += static_cast<double>(round_words);
    ph.fault_word_cost += static_cast<double>(round_words);
    ph.comm_time += params_.ts + params_.tw * static_cast<double>(round_words);
    for (std::size_t i = 0; i < repair.transfers.size(); ++i) {
      apply_transients(repair.transfers[i].src, repair.transfers[i].dst,
                       hop_words[i], ph);
    }
    std::erase_if(live, [](const InFlight& m) {
      return m.pos + 1 == m.d->path.size();
    });
  }
}

void Machine::charge_compute(
    std::span<const std::pair<NodeId, std::uint64_t>> per_node) {
  // Replayed prefix compute was measured on the original attempt and
  // restored with the checkpoint; the algorithm still re-executes the local
  // work for its store effects, it just isn't charged twice.
  if (replaying_) return;
  std::uint64_t max_flops = 0;
  if (!host_.empty()) {
    // Subcube contraction: a host executes its own work plus the work of
    // every dead node it absorbed, so flops aggregate per physical host
    // before taking the bulk-synchronous max.
    std::unordered_map<NodeId, std::uint64_t> per_host;
    for (const auto& [node, flops] : per_node) {
      HCMM_CHECK(cube_.contains(node), "charge_compute: node out of range");
      per_host[host_[node]] += flops;
    }
    for (const auto& [h, flops] : per_host) {
      max_flops = std::max(max_flops, flops);
    }
  } else {
    for (const auto& [node, flops] : per_node) {
      HCMM_CHECK(cube_.contains(node), "charge_compute: node out of range");
      max_flops = std::max(max_flops, flops);
    }
  }
  PhaseStats& ph = current_phase();
  ph.flops += max_flops;
  ph.compute_time += params_.tc * static_cast<double>(max_flops);
  // Compute is a barrier for the asynchronous DAG: later transfers cannot
  // leave before the results they carry exist.
  async_.floor = std::max(async_.floor, async_.makespan) +
                 params_.tc * static_cast<double>(max_flops);
}

SimReport Machine::report() const {
  SimReport r;
  r.port = port_;
  r.params = params_;
  r.phases = phases_;
  // Attribute copy traffic since the last fold to the open phase — on the
  // exported copy only, so repeated report() calls never double count.
  if (!r.phases.empty() && !replaying_) {
    const DataPlaneStats d = store_.plane_stats() - plane_mark_;
    r.phases.back().words_copied += d.words_copied;
    r.phases.back().words_aliased += d.words_aliased;
    r.phases.back().combines_in_place += d.combines_in_place;
    r.phases.back().combines_copied += d.combines_copied;
  }
  r.async_makespan = std::max(async_.makespan, async_.floor);
  r.peak_words_total = store_.total_peak_words();
  // Ladder history first: a rollback restores fault_events_ to checkpoint
  // state, but the deaths/restarts already handled are run-wide facts.
  r.fault_events = recovery_events_;
  r.fault_events.insert(r.fault_events.end(), fault_events_.begin(),
                        fault_events_.end());
  r.abft_events = abft_events_;
  r.recoveries = recoveries_;
  r.restarts = restarts_;
  return r;
}

void Machine::reset_stats() {
  if (pending_restore_) {
    // Rollback recovery: instead of forgetting the measured run, restore the
    // last phase-boundary snapshot and arm replay.  The algorithm re-runs
    // from the top; rounds and compute before the boundary re-execute for
    // their store effects only, then measurement resumes at the boundary.
    pending_restore_ = false;
    const Checkpoint& ck = checkpoints_.back();
    phases_ = ck.phases;
    async_ = ck.async;
    fault_events_ = ck.events;
    link_traffic_ = ck.links;
    store_.reset_peaks();
    plane_mark_ = store_.plane_stats();
    round_seq_ = 0;
    begin_calls_ = 0;
    replaying_ = true;
    replay_until_ = ck.round_seq;
    // Swallow one call per begin_phase() the original prefix made — NOT one
    // per restored phase: the implicit "main" phase (opened by run() without
    // begin_phase) has no call to swallow, and counting it would swallow the
    // boundary itself, leaving the machine stuck in replay with the whole
    // post-boundary phase uncharged and its data-plane counters lost.
    replay_phase_calls_ = ck.begin_calls;
    // The prefix must rebuild the schedules the original execution measured,
    // so routing during replay avoids the fault set of checkpoint time — the
    // just-converted death only steers schedules built after the boundary.
    replay_faults_ = ck.faults;
    return;
  }
  if (pending_restart_) {
    // Restart-from-scratch escalation: measurement starts over, but the
    // run-wide recovery ledger — budget meters, recovery/restart counts,
    // checkpoint ordinals, discovered detour faults — survives.  A restart
    // that refunded the budget would let an adversarial fault process buy
    // unlimited recovery by corrupting checkpoints.
    pending_restart_ = false;
    phases_.clear();
    store_.reset_peaks();
    plane_mark_ = store_.plane_stats();
    link_traffic_.clear();
    async_ = AsyncState{};
    fault_events_.clear();
    round_seq_ = 0;
    begin_calls_ = 0;
    replaying_ = false;
    replay_until_ = 0;
    replay_phase_calls_ = 0;
    for (NodeId n = 0; n < static_cast<NodeId>(host_.size()); ++n) {
      if (host_[n] != n) {
        record_event({fault::FaultKind::kNodeDeath, n, host_[n], 0, 0,
                      "contracted onto live partner"});
      }
    }
    return;
  }
  phases_.clear();
  store_.reset_peaks();
  plane_mark_ = store_.plane_stats();  // staging copies are not charged
  link_traffic_.clear();
  async_ = AsyncState{};
  fault_events_.clear();
  round_seq_ = 0;
  begin_calls_ = 0;
  checkpoints_.clear();
  replaying_ = false;
  replay_until_ = 0;
  replay_phase_calls_ = 0;
  recoveries_ = 0;
  restarts_ = 0;
  ckpt_ordinal_ = 0;
  rb_retries_ = 0;
  rb_reroutes_ = 0;
  rb_delay_ = 0.0;
  discovered_ = fault::FaultSet{};
  effective_ = fault_ ? fault_->set : fault::FaultSet{};
  abft_events_.clear();
  recovery_events_.clear();
  // Structural faults outlive a stats reset; keep their events visible.
  for (NodeId n = 0; n < static_cast<NodeId>(host_.size()); ++n) {
    if (host_[n] != n) {
      record_event({fault::FaultKind::kNodeDeath, n, host_[n], 0, 0,
                    "contracted onto live partner"});
    }
  }
}

std::vector<LinkLoad> Machine::link_loads() const {
  std::vector<LinkLoad> out;
  out.reserve(link_traffic_.size());
  for (const auto& [key, ll] : link_traffic_) out.push_back(ll);
  std::sort(out.begin(), out.end(), [](const LinkLoad& a, const LinkLoad& b) {
    if (a.words != b.words) return a.words > b.words;
    return std::pair{a.src, a.dst} < std::pair{b.src, b.dst};
  });
  return out;
}

}  // namespace hcmm
