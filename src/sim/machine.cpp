#include "hcmm/sim/machine.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "hcmm/analysis/legality.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {

const char* to_string(PortModel m) noexcept {
  return m == PortModel::kOnePort ? "one-port" : "multi-port";
}

void PhaseStats::add(const PhaseStats& other) {
  rounds += other.rounds;
  word_cost += other.word_cost;
  messages += other.messages;
  link_words += other.link_words;
  flops += other.flops;
  comm_time += other.comm_time;
  compute_time += other.compute_time;
}

LinkBalance summarize_links(std::span<const LinkLoad> loads,
                            std::uint64_t total_links) {
  LinkBalance out;
  out.links_used = loads.size();
  if (loads.empty()) return out;
  std::uint64_t sum = 0;
  for (const auto& l : loads) {
    out.max_words = std::max(out.max_words, l.words);
    sum += l.words;
  }
  out.mean_words = static_cast<double>(sum) / static_cast<double>(loads.size());
  out.imbalance = out.mean_words > 0
                      ? static_cast<double>(out.max_words) / out.mean_words
                      : 0.0;
  const double directed = 2.0 * static_cast<double>(total_links);
  out.coverage =
      directed > 0 ? static_cast<double>(loads.size()) / directed : 0.0;
  return out;
}

PhaseStats SimReport::totals() const {
  PhaseStats t;
  t.name = "TOTAL";
  for (const auto& p : phases) t.add(p);
  return t;
}

std::string SimReport::to_string() const {
  std::ostringstream os;
  os << "port=" << hcmm::to_string(port) << "  ts=" << params.ts
     << " tw=" << params.tw << " tc=" << params.tc << "\n";
  os << std::left << std::setw(22) << "phase" << std::right << std::setw(10)
     << "a(ts)" << std::setw(14) << "b(tw)" << std::setw(10) << "msgs"
     << std::setw(14) << "link words" << std::setw(14) << "comm time"
     << std::setw(14) << "compute" << "\n";
  auto row = [&os](const PhaseStats& p) {
    os << std::left << std::setw(22) << p.name << std::right << std::setw(10)
       << p.rounds << std::setw(14) << std::fixed << std::setprecision(1)
       << p.word_cost << std::setw(10) << p.messages << std::setw(14)
       << p.link_words << std::setw(14) << std::setprecision(1) << p.comm_time
       << std::setw(14) << p.compute_time << "\n";
  };
  for (const auto& p : phases) row(p);
  row(totals());
  os << "peak store words (all nodes): " << peak_words_total << "\n";
  return os.str();
}

Machine::Machine(Hypercube cube, PortModel port, CostParams params,
                 std::shared_ptr<ThreadPool> pool)
    : cube_(cube),
      port_(port),
      params_(params),
      store_(cube.size()),
      pool_(pool ? std::move(pool) : std::make_shared<ThreadPool>(1)) {}

PhaseStats& Machine::current_phase() {
  if (phases_.empty()) phases_.push_back(PhaseStats{.name = "main"});
  return phases_.back();
}

void Machine::begin_phase(std::string name) {
  phases_.push_back(PhaseStats{.name = std::move(name)});
}

void Machine::run(const Schedule& s) {
  if (observer_) observer_(s);
  PhaseStats& ph = current_phase();
  for (const Round& round : s.rounds) {
    if (round.empty()) continue;
    validate_round(round);
    execute_round(round, ph);
  }
}

void Machine::validate_round(const Round& round) const {
  // Any violation means the schedule builder broke the architecture being
  // simulated — a hard error, never a cost.  The rules themselves live in
  // analysis/legality, shared with the static analyzer so the runtime and
  // static checks cannot drift apart.
  const auto topo = analysis::check_round_topology(cube_, round);
  HCMM_CHECK(topo.empty(), topo.front().message);
  const auto ports = analysis::check_round_ports(cube_, port_, round);
  HCMM_CHECK(ports.empty(), ports.front().message);
}

void Machine::execute_round(const Round& round, PhaseStats& ph) {
  struct Delivery {
    NodeId dst;
    Tag tag;
    Payload payload;
    bool combine;
  };
  std::vector<Delivery> deliveries;
  std::vector<std::pair<NodeId, Tag>> erasures;

  // words sent/received per node; multi-port additionally resolved per link.
  std::unordered_map<std::uint64_t, std::size_t> out_words;
  std::unordered_map<std::uint64_t, std::size_t> in_words;

  for (const Transfer& t : round.transfers) {
    std::size_t words = 0;
    for (const Tag tag : t.tags) {
      Payload p = store_.get(t.src, tag);  // throws if absent: schedule bug
      words += p->size();
      deliveries.push_back({t.dst, tag, std::move(p), t.combine});
      if (t.move_src) erasures.emplace_back(t.src, tag);
    }
    std::uint64_t out_key;
    std::uint64_t in_key;
    if (port_ == PortModel::kOnePort) {
      out_key = t.src;
      in_key = t.dst;
    } else {
      const std::uint32_t dim = exact_log2(t.src ^ t.dst);
      out_key = (static_cast<std::uint64_t>(t.src) << 8) | dim;
      in_key = (static_cast<std::uint64_t>(t.dst) << 8) | dim;
    }
    out_words[out_key] += words;
    in_words[in_key] += words;
    ph.messages += 1;
    ph.link_words += words;

    // Asynchronous (no round barriers) timing: start when the payload is
    // resident at the source and both ports are free.
    double start = 0.0;
    for (const Tag tag : t.tags) {
      const auto it = async_.data_ready.find({t.src, tag});
      if (it != async_.data_ready.end()) start = std::max(start, it->second);
    }
    const std::uint64_t aout = (out_key << 1) | 0u;
    const std::uint64_t ain = (in_key << 1) | 1u;
    start = std::max(
        {start, async_.floor, async_.port_free[aout], async_.port_free[ain]});
    const double end =
        start + params_.ts + params_.tw * static_cast<double>(words);
    async_.port_free[aout] = end;
    async_.port_free[ain] = end;
    for (const Tag tag : t.tags) {
      auto& dr = async_.data_ready[{t.dst, tag}];
      dr = std::max(dr, end);
    }
    async_.makespan = std::max(async_.makespan, end);
    if (link_accounting_) {
      const std::uint64_t lk =
          (static_cast<std::uint64_t>(t.src) << 32) | t.dst;
      auto& ll = link_traffic_[lk];
      ll.src = t.src;
      ll.dst = t.dst;
      ll.words += words;
      ll.messages += 1;
    }
  }

  // Per-node (per-port) critical word count for this round.
  std::size_t round_words = 0;
  for (const auto& [k, w] : out_words) round_words = std::max(round_words, w);
  for (const auto& [k, w] : in_words) round_words = std::max(round_words, w);

  // All reads above saw pre-round state; now apply moves, then deliveries.
  for (const auto& [node, tag] : erasures) store_.erase(node, tag);
  for (auto& d : deliveries) {
    if (d.combine) {
      store_.combine(d.dst, d.tag, d.payload);
    } else {
      store_.put_shared(d.dst, d.tag, std::move(d.payload));
    }
  }

  ph.rounds += 1;
  ph.word_cost += static_cast<double>(round_words);
  ph.comm_time += params_.ts + params_.tw * static_cast<double>(round_words);
}

void Machine::charge_compute(
    std::span<const std::pair<NodeId, std::uint64_t>> per_node) {
  std::uint64_t max_flops = 0;
  for (const auto& [node, flops] : per_node) {
    HCMM_CHECK(cube_.contains(node), "charge_compute: node out of range");
    max_flops = std::max(max_flops, flops);
  }
  PhaseStats& ph = current_phase();
  ph.flops += max_flops;
  ph.compute_time += params_.tc * static_cast<double>(max_flops);
  // Compute is a barrier for the asynchronous DAG: later transfers cannot
  // leave before the results they carry exist.
  async_.floor = std::max(async_.floor, async_.makespan) +
                 params_.tc * static_cast<double>(max_flops);
}

SimReport Machine::report() const {
  SimReport r;
  r.port = port_;
  r.params = params_;
  r.phases = phases_;
  r.async_makespan = std::max(async_.makespan, async_.floor);
  r.peak_words_total = store_.total_peak_words();
  return r;
}

void Machine::reset_stats() {
  phases_.clear();
  store_.reset_peaks();
  link_traffic_.clear();
  async_ = AsyncState{};
}

std::vector<LinkLoad> Machine::link_loads() const {
  std::vector<LinkLoad> out;
  out.reserve(link_traffic_.size());
  for (const auto& [key, ll] : link_traffic_) out.push_back(ll);
  std::sort(out.begin(), out.end(), [](const LinkLoad& a, const LinkLoad& b) {
    if (a.words != b.words) return a.words > b.words;
    return std::pair{a.src, a.dst} < std::pair{b.src, b.dst};
  });
  return out;
}

}  // namespace hcmm
