#include "hcmm/sim/report_io.hpp"

#include <sstream>

namespace hcmm {
namespace {

void csv_row(std::ostringstream& os, const PhaseStats& p) {
  os << '"' << p.name << "\"," << p.rounds << ',' << p.word_cost << ','
     << p.messages << ',' << p.link_words << ',' << p.flops << ','
     << p.comm_time << ',' << p.compute_time << ',' << p.retries << ','
     << p.reroutes << ',' << p.extra_hops << ',' << p.fault_startups << ','
     << p.fault_word_cost << ',' << p.fault_delay << '\n';
}

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void json_phase(std::ostringstream& os, const PhaseStats& p) {
  os << "{\"name\": ";
  json_escape(os, p.name);
  os << ", \"a_ts\": " << p.rounds << ", \"b_tw\": " << p.word_cost
     << ", \"messages\": " << p.messages << ", \"link_words\": "
     << p.link_words << ", \"flops\": " << p.flops << ", \"comm_time\": "
     << p.comm_time << ", \"compute_time\": " << p.compute_time
     << ", \"retries\": " << p.retries << ", \"reroutes\": " << p.reroutes
     << ", \"extra_hops\": " << p.extra_hops << ", \"fault_startups\": "
     << p.fault_startups << ", \"fault_word_cost\": " << p.fault_word_cost
     << ", \"fault_delay\": " << p.fault_delay << "}";
}

void json_fault_event(std::ostringstream& os, const fault::FaultEvent& e) {
  os << "{\"kind\": \"" << fault::to_string(e.kind) << "\", \"src\": " << e.src
     << ", \"dst\": " << e.dst << ", \"round\": " << e.round
     << ", \"attempt\": " << e.attempt << ", \"detail\": ";
  json_escape(os, e.detail);
  os << "}";
}

}  // namespace

std::string report_csv(const SimReport& report) {
  std::ostringstream os;
  os << "phase,a_ts,b_tw,messages,link_words,flops,comm_time,compute_time,"
        "retries,reroutes,extra_hops,fault_startups,fault_word_cost,"
        "fault_delay\n";
  for (const auto& p : report.phases) csv_row(os, p);
  csv_row(os, report.totals());
  return os.str();
}

std::string report_json(const SimReport& report) {
  std::ostringstream os;
  os << "{\"port\": \"" << to_string(report.port) << "\", \"params\": {"
     << "\"ts\": " << report.params.ts << ", \"tw\": " << report.params.tw
     << ", \"tc\": " << report.params.tc << "}, \"phases\": [";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    if (i != 0) os << ", ";
    json_phase(os, report.phases[i]);
  }
  os << "], \"totals\": ";
  json_phase(os, report.totals());
  os << ", \"peak_words_total\": " << report.peak_words_total
     << ", \"fault_events\": [";
  for (std::size_t i = 0; i < report.fault_events.size(); ++i) {
    if (i != 0) os << ", ";
    json_fault_event(os, report.fault_events[i]);
  }
  os << "]}";
  return os.str();
}

std::string diagnostics_json(const analysis::DiagnosticList& dl) {
  using analysis::kNoLoc;
  using analysis::Severity;
  std::ostringstream os;
  os << "{\"errors\": " << dl.count(Severity::kError)
     << ", \"warnings\": " << dl.count(Severity::kWarning)
     << ", \"notes\": " << dl.count(Severity::kNote) << ", \"diagnostics\": [";
  bool first = true;
  for (const auto& d : dl.diags()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"severity\": \"" << analysis::to_string(d.severity)
       << "\", \"pass\": ";
    json_escape(os, d.pass);
    os << ", \"code\": ";
    json_escape(os, d.code);
    os << ", \"round\": ";
    if (d.round == kNoLoc) {
      os << "null";
    } else {
      os << d.round;
    }
    os << ", \"transfer\": ";
    if (d.transfer == kNoLoc) {
      os << "null";
    } else {
      os << d.transfer;
    }
    os << ", \"message\": ";
    json_escape(os, d.message);
    os << ", \"hint\": ";
    json_escape(os, d.hint);
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hcmm
