#include "hcmm/sim/report_io.hpp"

#include <sstream>

#include "hcmm/analysis/rules.hpp"

namespace hcmm {
namespace {

void csv_row(std::ostringstream& os, const PhaseStats& p) {
  os << '"' << p.name << "\"," << p.rounds << ',' << p.word_cost << ','
     << p.messages << ',' << p.link_words << ',' << p.flops << ','
     << p.comm_time << ',' << p.compute_time << ',' << p.retries << ','
     << p.reroutes << ',' << p.extra_hops << ',' << p.fault_startups << ','
     << p.fault_word_cost << ',' << p.fault_delay << ',' << p.checkpoints
     << ',' << p.checkpoint_cost << ',' << p.silent_corruptions << ','
     << p.abft_detected << ',' << p.abft_corrected << ',' << p.words_copied
     << ',' << p.words_aliased << ',' << p.combines_in_place << ','
     << p.combines_copied << '\n';
}

void json_escape(std::ostringstream& os, const std::string& s) {
  // Full JSON string escaping: quotes, backslashes, and every control
  // character (fault-event details can carry newlines and tabs).
  static constexpr char kHex[] = "0123456789abcdef";
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_phase(std::ostringstream& os, const PhaseStats& p) {
  os << "{\"name\": ";
  json_escape(os, p.name);
  os << ", \"a_ts\": " << p.rounds << ", \"b_tw\": " << p.word_cost
     << ", \"messages\": " << p.messages << ", \"link_words\": "
     << p.link_words << ", \"flops\": " << p.flops << ", \"comm_time\": "
     << p.comm_time << ", \"compute_time\": " << p.compute_time
     << ", \"retries\": " << p.retries << ", \"reroutes\": " << p.reroutes
     << ", \"extra_hops\": " << p.extra_hops << ", \"fault_startups\": "
     << p.fault_startups << ", \"fault_word_cost\": " << p.fault_word_cost
     << ", \"fault_delay\": " << p.fault_delay
     << ", \"checkpoints\": " << p.checkpoints
     << ", \"checkpoint_cost\": " << p.checkpoint_cost
     << ", \"silent_corruptions\": " << p.silent_corruptions
     << ", \"abft_detected\": " << p.abft_detected
     << ", \"abft_corrected\": " << p.abft_corrected
     << ", \"words_copied\": " << p.words_copied
     << ", \"words_aliased\": " << p.words_aliased
     << ", \"combines_in_place\": " << p.combines_in_place
     << ", \"combines_copied\": " << p.combines_copied << "}";
}

void json_fault_event(std::ostringstream& os, const fault::FaultEvent& e) {
  os << "{\"kind\": \"" << fault::to_string(e.kind) << "\", \"src\": " << e.src
     << ", \"dst\": " << e.dst << ", \"round\": " << e.round
     << ", \"attempt\": " << e.attempt << ", \"detail\": ";
  json_escape(os, e.detail);
  os << "}";
}

void json_abft_event(std::ostringstream& os, const abft::AbftEvent& e) {
  os << "{\"kind\": \"" << abft::to_string(e.kind) << "\", \"row\": ";
  if (e.row == abft::AbftEvent::kNoIndex) {
    os << "null";
  } else {
    os << e.row;
  }
  os << ", \"col\": ";
  if (e.col == abft::AbftEvent::kNoIndex) {
    os << "null";
  } else {
    os << e.col;
  }
  os << ", \"magnitude\": " << e.magnitude << ", \"detail\": ";
  json_escape(os, e.detail);
  os << "}";
}

}  // namespace

std::string report_csv(const SimReport& report) {
  std::ostringstream os;
  os << "phase,a_ts,b_tw,messages,link_words,flops,comm_time,compute_time,"
        "retries,reroutes,extra_hops,fault_startups,fault_word_cost,"
        "fault_delay,checkpoints,checkpoint_cost,silent_corruptions,"
        "abft_detected,abft_corrected,words_copied,words_aliased,"
        "combines_in_place,combines_copied\n";
  for (const auto& p : report.phases) csv_row(os, p);
  csv_row(os, report.totals());
  return os.str();
}

std::string report_json(const SimReport& report) {
  std::ostringstream os;
  os << "{\"port\": \"" << to_string(report.port) << "\", \"params\": {"
     << "\"ts\": " << report.params.ts << ", \"tw\": " << report.params.tw
     << ", \"tc\": " << report.params.tc << "}, \"phases\": [";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    if (i != 0) os << ", ";
    json_phase(os, report.phases[i]);
  }
  os << "], \"totals\": ";
  json_phase(os, report.totals());
  os << ", \"peak_words_total\": " << report.peak_words_total
     << ", \"recoveries\": " << report.recoveries
     << ", \"restarts\": " << report.restarts
     << ", \"fault_events\": [";
  for (std::size_t i = 0; i < report.fault_events.size(); ++i) {
    if (i != 0) os << ", ";
    json_fault_event(os, report.fault_events[i]);
  }
  os << "], \"abft_events\": [";
  for (std::size_t i = 0; i < report.abft_events.size(); ++i) {
    if (i != 0) os << ", ";
    json_abft_event(os, report.abft_events[i]);
  }
  os << "]}";
  return os.str();
}

std::string diagnostics_json(const analysis::DiagnosticList& dl) {
  using analysis::kNoLoc;
  using analysis::Severity;
  std::ostringstream os;
  os << "{\"errors\": " << dl.count(Severity::kError)
     << ", \"warnings\": " << dl.count(Severity::kWarning)
     << ", \"notes\": " << dl.count(Severity::kNote) << ", \"diagnostics\": [";
  bool first = true;
  for (const auto& d : dl.diags()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"severity\": \"" << analysis::to_string(d.severity)
       << "\", \"pass\": ";
    json_escape(os, d.pass);
    os << ", \"code\": ";
    json_escape(os, d.code);
    os << ", \"round\": ";
    if (d.round == kNoLoc) {
      os << "null";
    } else {
      os << d.round;
    }
    os << ", \"transfer\": ";
    if (d.transfer == kNoLoc) {
      os << "null";
    } else {
      os << d.transfer;
    }
    os << ", \"message\": ";
    json_escape(os, d.message);
    os << ", \"hint\": ";
    json_escape(os, d.hint);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string diagnostics_csv(const analysis::DiagnosticList& dl) {
  using analysis::kNoLoc;
  std::ostringstream os;
  const auto field = [&os](const std::string& s) {
    static constexpr char kHex[] = "0123456789abcdef";
    os << '"';
    for (const char c : s) {
      if (c == '"') {
        os << "\"\"";
      } else if (static_cast<unsigned char>(c) < 0x20) {
        os << "\\x" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
      } else {
        os << c;
      }
    }
    os << '"';
  };
  os << "severity,pass,code,round,transfer,message,hint\n";
  for (const auto& d : dl.diags()) {
    os << analysis::to_string(d.severity) << ',';
    field(d.pass);
    os << ',';
    field(d.code);
    os << ',';
    if (d.round != kNoLoc) os << d.round;
    os << ',';
    if (d.transfer != kNoLoc) os << d.transfer;
    os << ',';
    field(d.message);
    os << ',';
    field(d.hint);
    os << '\n';
  }
  return os.str();
}

std::string sarif_json(const analysis::DiagnosticList& dl,
                       const std::vector<std::string>& subjects) {
  using analysis::kNoLoc;
  using analysis::Severity;
  const auto level = [](Severity s) {
    switch (s) {
      case Severity::kError: return "error";
      case Severity::kWarning: return "warning";
      case Severity::kNote: return "note";
    }
    return "none";
  };
  // Rules: one per distinct code, in first-appearance order.
  std::vector<std::string> rules;
  const auto rule_index = [&rules](const std::string& code) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i] == code) return i;
    }
    rules.push_back(code);
    return rules.size() - 1;
  };
  for (const auto& d : dl.diags()) rule_index(d.code);

  std::ostringstream os;
  os << "{\"version\": \"2.1.0\", \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\", \"runs\": "
        "[{\"tool\": {\"driver\": {\"name\": \"hcmm_lint\", \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"id\": ";
    json_escape(os, rules[i]);
    // Registered rules carry their full reportingDescriptor metadata; an
    // unregistered code still exports (the finding must not be lost) but
    // the rule-exhaustiveness test keeps the registry complete.
    if (const analysis::RuleMeta* meta = analysis::find_rule(rules[i])) {
      os << ", \"name\": ";
      json_escape(os, std::string(meta->name));
      os << ", \"shortDescription\": {\"text\": ";
      json_escape(os, std::string(meta->short_desc));
      os << "}, \"helpUri\": ";
      json_escape(os, std::string(meta->help_uri));
    }
    os << "}";
  }
  os << "]}}, \"results\": [";
  const auto& diags = dl.diags();
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    if (i != 0) os << ", ";
    os << "{\"ruleId\": ";
    json_escape(os, d.code);
    os << ", \"ruleIndex\": " << rule_index(d.code) << ", \"level\": \""
       << level(d.severity) << "\", \"message\": {\"text\": ";
    std::string text = d.message;
    if (!d.hint.empty()) text += " (hint: " + d.hint + ")";
    json_escape(os, text);
    os << "}";
    std::string logical = i < subjects.size() ? subjects[i] : "";
    if (d.round != kNoLoc) {
      logical += (logical.empty() ? "round " : "/round ") +
                 std::to_string(d.round);
      if (d.transfer != kNoLoc) {
        logical += "/transfer " + std::to_string(d.transfer);
      }
    }
    if (!logical.empty()) {
      os << ", \"locations\": [{\"logicalLocations\": [{"
            "\"fullyQualifiedName\": ";
      json_escape(os, logical);
      os << "}]}]";
    }
    os << "}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace hcmm
