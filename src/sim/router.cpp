#include "hcmm/sim/router.hpp"

#include <bit>
#include <unordered_set>

#include "hcmm/support/check.hpp"

namespace hcmm {

Schedule route_p2p(const Hypercube& cube, PortModel port,
                   std::span<const RouteRequest> reqs) {
  struct InFlight {
    NodeId pos;
    NodeId dst;
    const RouteRequest* req;
  };
  std::vector<InFlight> live;
  live.reserve(reqs.size());
  for (const RouteRequest& r : reqs) {
    HCMM_CHECK(cube.contains(r.src) && cube.contains(r.dst),
               "route_p2p: endpoint out of range");
    HCMM_CHECK(!r.tags.empty(), "route_p2p: request with no tags");
    if (r.src != r.dst) live.push_back({r.src, r.dst, &r});
  }

  Schedule out;
  while (!live.empty()) {
    Round round;
    std::unordered_set<std::uint64_t> out_busy;
    std::unordered_set<std::uint64_t> in_busy;
    for (auto& m : live) {
      const std::uint32_t diff = m.pos ^ m.dst;
      const auto dim =
          static_cast<std::uint32_t>(std::countr_zero(diff));  // e-cube: lowest bit
      const NodeId next = flip_bit(m.pos, dim);
      std::uint64_t out_key;
      std::uint64_t in_key;
      if (port == PortModel::kOnePort) {
        out_key = m.pos;
        in_key = next;
      } else {
        out_key = (static_cast<std::uint64_t>(m.pos) << 8) | dim;
        in_key = (static_cast<std::uint64_t>(next) << 8) | dim;
      }
      if (out_busy.contains(out_key) || in_busy.contains(in_key)) continue;
      out_busy.insert(out_key);
      in_busy.insert(in_key);
      round.transfers.push_back(Transfer{.src = m.pos,
                                         .dst = next,
                                         .tags = m.req->tags,
                                         .combine = false,
                                         .move_src = true});
      m.pos = next;
    }
    HCMM_CHECK(!round.empty(), "route_p2p: no progress (internal error)");
    out.rounds.push_back(std::move(round));
    std::erase_if(live, [](const InFlight& m) { return m.pos == m.dst; });
  }
  return out;
}

std::vector<NodeId> fault_aware_path(const Hypercube& cube,
                                     const fault::FaultSet& faults,
                                     NodeId src, NodeId dst) {
  HCMM_CHECK(cube.contains(src) && cube.contains(dst),
             "fault_aware_path: endpoint out of range");
  if (src == dst) return {src};
  // A node may carry traffic iff it is alive; the endpoints are exempt (the
  // caller has already mapped dead endpoints to their contraction hosts).
  const auto usable = [&](NodeId n) {
    return n == src || n == dst || !faults.node_dead(n);
  };
  // BFS from dst gives dist-to-destination; the walk from src then always
  // steps to the lowest-dimension neighbor one closer to dst, which on a
  // healthy cube is precisely the e-cube order.
  constexpr std::uint32_t kUnreached = ~0u;
  std::vector<std::uint32_t> dist(cube.size(), kUnreached);
  dist[dst] = 0;
  std::vector<NodeId> frontier{dst};
  while (!frontier.empty() && dist[src] == kUnreached) {
    std::vector<NodeId> next;
    for (const NodeId u : frontier) {
      for (std::uint32_t k = 0; k < cube.dim(); ++k) {
        const NodeId v = cube.neighbor(u, k);
        if (dist[v] != kUnreached || !usable(v) || faults.link_failed(u, v)) {
          continue;
        }
        dist[v] = dist[u] + 1;
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }
  if (dist[src] == kUnreached) return {};
  std::vector<NodeId> path{src};
  NodeId cur = src;
  while (cur != dst) {
    for (std::uint32_t k = 0; k < cube.dim(); ++k) {
      const NodeId v = cube.neighbor(cur, k);
      if (dist[v] == dist[cur] - 1 && usable(v) && !faults.link_failed(cur, v)) {
        cur = v;
        break;
      }
    }
    path.push_back(cur);
  }
  return path;
}

Schedule route_p2p_avoiding(const Hypercube& cube, PortModel port,
                            std::span<const RouteRequest> reqs,
                            const fault::FaultSet& faults) {
  struct InFlight {
    std::vector<NodeId> path;
    std::size_t pos;
    const RouteRequest* req;
  };
  std::vector<InFlight> live;
  live.reserve(reqs.size());
  for (const RouteRequest& r : reqs) {
    HCMM_CHECK(cube.contains(r.src) && cube.contains(r.dst),
               "route_p2p_avoiding: endpoint out of range");
    HCMM_CHECK(!r.tags.empty(), "route_p2p_avoiding: request with no tags");
    if (r.src == r.dst) continue;
    std::vector<NodeId> path = fault_aware_path(cube, faults, r.src, r.dst);
    HCMM_CHECK(!path.empty(), "route_p2p_avoiding: no healthy path "
                                  << r.src << " -> " << r.dst
                                  << " (failed set disconnects the cube)");
    live.push_back({std::move(path), 0, &r});
  }

  Schedule out;
  while (!live.empty()) {
    Round round;
    std::unordered_set<std::uint64_t> out_busy;
    std::unordered_set<std::uint64_t> in_busy;
    for (auto& m : live) {
      const NodeId cur = m.path[m.pos];
      const NodeId next = m.path[m.pos + 1];
      const auto dim = exact_log2(cur ^ next);
      std::uint64_t out_key;
      std::uint64_t in_key;
      if (port == PortModel::kOnePort) {
        out_key = cur;
        in_key = next;
      } else {
        out_key = (static_cast<std::uint64_t>(cur) << 8) | dim;
        in_key = (static_cast<std::uint64_t>(next) << 8) | dim;
      }
      if (out_busy.contains(out_key) || in_busy.contains(in_key)) continue;
      out_busy.insert(out_key);
      in_busy.insert(in_key);
      round.transfers.push_back(Transfer{.src = cur,
                                         .dst = next,
                                         .tags = m.req->tags,
                                         .combine = false,
                                         .move_src = true});
      ++m.pos;
    }
    HCMM_CHECK(!round.empty(), "route_p2p_avoiding: no progress (internal error)");
    out.rounds.push_back(std::move(round));
    std::erase_if(live,
                  [](const InFlight& m) { return m.pos + 1 == m.path.size(); });
  }
  return out;
}

}  // namespace hcmm
