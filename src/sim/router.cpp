#include "hcmm/sim/router.hpp"

#include <bit>
#include <unordered_set>

#include "hcmm/support/check.hpp"

namespace hcmm {

Schedule route_p2p(const Hypercube& cube, PortModel port,
                   std::span<const RouteRequest> reqs) {
  struct InFlight {
    NodeId pos;
    NodeId dst;
    const RouteRequest* req;
  };
  std::vector<InFlight> live;
  live.reserve(reqs.size());
  for (const RouteRequest& r : reqs) {
    HCMM_CHECK(cube.contains(r.src) && cube.contains(r.dst),
               "route_p2p: endpoint out of range");
    HCMM_CHECK(!r.tags.empty(), "route_p2p: request with no tags");
    if (r.src != r.dst) live.push_back({r.src, r.dst, &r});
  }

  Schedule out;
  while (!live.empty()) {
    Round round;
    std::unordered_set<std::uint64_t> out_busy;
    std::unordered_set<std::uint64_t> in_busy;
    for (auto& m : live) {
      const std::uint32_t diff = m.pos ^ m.dst;
      const auto dim =
          static_cast<std::uint32_t>(std::countr_zero(diff));  // e-cube: lowest bit
      const NodeId next = flip_bit(m.pos, dim);
      std::uint64_t out_key;
      std::uint64_t in_key;
      if (port == PortModel::kOnePort) {
        out_key = m.pos;
        in_key = next;
      } else {
        out_key = (static_cast<std::uint64_t>(m.pos) << 8) | dim;
        in_key = (static_cast<std::uint64_t>(next) << 8) | dim;
      }
      if (out_busy.contains(out_key) || in_busy.contains(in_key)) continue;
      out_busy.insert(out_key);
      in_busy.insert(in_key);
      round.transfers.push_back(Transfer{.src = m.pos,
                                         .dst = next,
                                         .tags = m.req->tags,
                                         .combine = false,
                                         .move_src = true});
      m.pos = next;
    }
    HCMM_CHECK(!round.empty(), "route_p2p: no progress (internal error)");
    out.rounds.push_back(std::move(round));
    std::erase_if(live, [](const InFlight& m) { return m.pos == m.dst; });
  }
  return out;
}

}  // namespace hcmm
