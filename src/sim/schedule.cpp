#include "hcmm/sim/schedule.hpp"

#include <algorithm>

#include "hcmm/analysis/legality.hpp"
#include "hcmm/support/check.hpp"
#include "hcmm/topology/hypercube.hpp"

namespace hcmm {

std::size_t Schedule::transfer_count() const noexcept {
  std::size_t n = 0;
  for (const auto& r : rounds) n += r.transfers.size();
  return n;
}

void Schedule::append(const Schedule& other) {
  rounds.insert(rounds.end(), other.rounds.begin(), other.rounds.end());
}

Schedule seq(std::span<const Schedule> parts) {
  Schedule out;
  for (const auto& s : parts) out.append(s);
  return out;
}

Schedule par(std::span<const Schedule> parts) {
  Schedule out;
  std::size_t longest = 0;
  for (const auto& s : parts) longest = std::max(longest, s.rounds.size());
  out.rounds.resize(longest);
  for (const auto& s : parts) {
    for (std::size_t i = 0; i < s.rounds.size(); ++i) {
      auto& dst = out.rounds[i].transfers;
      dst.insert(dst.end(), s.rounds[i].transfers.begin(),
                 s.rounds[i].transfers.end());
    }
  }
  return out;
}

Schedule par(std::span<const Schedule> parts, const Hypercube& cube,
             PortModel port) {
  Schedule out = par(parts);
  for (std::size_t r = 0; r < out.rounds.size(); ++r) {
    const auto bad = analysis::check_round_ports(cube, port, out.rounds[r]);
    HCMM_CHECK(bad.empty(), "par: merged parts collide in round "
                                << r << ": " << bad.front().message);
  }
  return out;
}

}  // namespace hcmm
