#include "hcmm/sim/store.hpp"

#include <algorithm>

#include "hcmm/support/check.hpp"

namespace hcmm {

DataStore::DataStore(std::uint32_t n_nodes) : nodes_(n_nodes) {}

DataStore::NodeStore& DataStore::at(NodeId node) {
  HCMM_CHECK(node < nodes_.size(), "store: node " << node << " out of range");
  return nodes_[node];
}

const DataStore::NodeStore& DataStore::at(NodeId node) const {
  HCMM_CHECK(node < nodes_.size(), "store: node " << node << " out of range");
  return nodes_[node];
}

void DataStore::bump(NodeStore& ns, std::ptrdiff_t delta) {
  ns.cur_words = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(ns.cur_words) + delta);
  ns.peak_words = std::max(ns.peak_words, ns.cur_words);
}

void DataStore::put(NodeId node, Tag tag, std::vector<double> data) {
  put_shared(node, tag, std::make_shared<const std::vector<double>>(std::move(data)));
}

void DataStore::put_shared(NodeId node, Tag tag, Payload payload) {
  HCMM_CHECK(payload != nullptr, "store: null payload");
  auto& ns = at(node);
  const auto [it, inserted] = ns.items.emplace(tag, std::move(payload));
  HCMM_CHECK(inserted, "store: node " << node << " already holds tag 0x"
                                      << std::hex << tag);
  bump(ns, static_cast<std::ptrdiff_t>(it->second->size()));
}

const Payload& DataStore::get(NodeId node, Tag tag) const {
  const auto& ns = at(node);
  const auto it = ns.items.find(tag);
  HCMM_CHECK(it != ns.items.end(),
             "store: node " << node << " has no tag 0x" << std::hex << tag);
  return it->second;
}

bool DataStore::has(NodeId node, Tag tag) const {
  const auto& ns = at(node);
  return ns.items.find(tag) != ns.items.end();
}

std::size_t DataStore::item_words(NodeId node, Tag tag) const {
  return get(node, tag)->size();
}

void DataStore::erase(NodeId node, Tag tag) {
  auto& ns = at(node);
  const auto it = ns.items.find(tag);
  HCMM_CHECK(it != ns.items.end(),
             "store: erase of absent tag 0x" << std::hex << tag << std::dec
                                             << " on node " << node);
  bump(ns, -static_cast<std::ptrdiff_t>(it->second->size()));
  ns.items.erase(it);
}

void DataStore::combine(NodeId node, Tag tag, const Payload& addend) {
  auto& ns = at(node);
  const auto it = ns.items.find(tag);
  HCMM_CHECK(it != ns.items.end(), "store: combine into absent tag 0x"
                                       << std::hex << tag << std::dec
                                       << " on node " << node);
  HCMM_CHECK(it->second->size() == addend->size(),
             "store: combine size mismatch (" << it->second->size() << " vs "
                                              << addend->size() << ")");
  auto sum = std::vector<double>(*it->second);
  const auto& add = *addend;
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += add[i];
  it->second = std::make_shared<const std::vector<double>>(std::move(sum));
}

Tag DataStore::make_part_tag(Tag tag, std::size_t i) noexcept {
  // Part index rides in the (reserved) top byte; see split() for the
  // contract that algorithm tags keep that byte clear.
  return tag | (static_cast<Tag>(i + 1) << 56);
}

std::vector<Tag> DataStore::split(NodeId node, Tag tag, std::size_t parts) {
  HCMM_CHECK(parts >= 1 && parts <= 255, "store: bad part count " << parts);
  const std::size_t total = item_words(node, tag);
  std::vector<std::size_t> sizes(parts);
  for (std::size_t i = 0; i < parts; ++i) {
    const auto [lo, hi] = chunk_bounds(total, parts, i);
    sizes[i] = hi - lo;
  }
  return split_sizes(node, tag, sizes);
}

std::vector<Tag> DataStore::split_sizes(NodeId node, Tag tag,
                                        std::span<const std::size_t> sizes) {
  HCMM_CHECK(!sizes.empty() && sizes.size() <= 255,
             "store: bad part count " << sizes.size());
  HCMM_CHECK((tag >> 56) == 0,
             "store: nested split / reserved tag byte in use");
  const Payload whole = get(node, tag);
  std::size_t total = 0;
  for (const std::size_t s : sizes) total += s;
  HCMM_CHECK(total == whole->size(), "store: split sizes sum to "
                                         << total << " != item size "
                                         << whole->size());
  std::vector<Tag> out;
  out.reserve(sizes.size());
  erase(node, tag);
  std::size_t off = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Tag pt = make_part_tag(tag, i);
    put(node, pt,
        std::vector<double>(whole->begin() + static_cast<std::ptrdiff_t>(off),
                            whole->begin() +
                                static_cast<std::ptrdiff_t>(off + sizes[i])));
    off += sizes[i];
    out.push_back(pt);
  }
  return out;
}

void DataStore::join(NodeId node, std::span<const Tag> part_tags, Tag out_tag) {
  std::vector<double> joined;
  std::size_t total = 0;
  for (const Tag t : part_tags) total += item_words(node, t);
  joined.reserve(total);
  for (const Tag t : part_tags) {
    const Payload p = get(node, t);
    joined.insert(joined.end(), p->begin(), p->end());
    erase(node, t);
  }
  put(node, out_tag, std::move(joined));
}

std::size_t DataStore::words(NodeId node) const { return at(node).cur_words; }

std::size_t DataStore::peak_words(NodeId node) const {
  return at(node).peak_words;
}

std::uint64_t DataStore::total_peak_words() const {
  std::uint64_t sum = 0;
  for (const auto& ns : nodes_) sum += ns.peak_words;
  return sum;
}

void DataStore::reset_peaks() {
  for (auto& ns : nodes_) ns.peak_words = ns.cur_words;
}

std::size_t DataStore::item_count(NodeId node) const {
  return at(node).items.size();
}

std::vector<std::pair<Tag, std::size_t>> DataStore::items(NodeId node) const {
  const auto& ns = at(node);
  std::vector<std::pair<Tag, std::size_t>> out;
  out.reserve(ns.items.size());
  for (const auto& [tag, payload] : ns.items) {
    out.emplace_back(tag, payload->size());
  }
  return out;
}

}  // namespace hcmm
