#include "hcmm/sim/store.hpp"

#include <algorithm>

#include "hcmm/support/check.hpp"

namespace hcmm {

DataStore::DataStore(std::uint32_t n_nodes) : nodes_(n_nodes) {}

DataStore::NodeStore& DataStore::at(NodeId node) {
  HCMM_CHECK(node < nodes_.size(), "store: node " << node << " out of range");
  return nodes_[node];
}

const DataStore::NodeStore& DataStore::at(NodeId node) const {
  HCMM_CHECK(node < nodes_.size(), "store: node " << node << " out of range");
  return nodes_[node];
}

void DataStore::bump(NodeStore& ns, std::ptrdiff_t delta) {
  ns.cur_words = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(ns.cur_words) + delta);
  ns.peak_words = std::max(ns.peak_words, ns.cur_words);
}

void DataStore::put(NodeId node, Tag tag, std::vector<double> data) {
  const std::size_t words = data.size();
  {
    const MuteScope mute(*this);
    put_shared(node, tag, make_payload(std::move(data)));
  }
  notify({StoreEvent::Kind::kPut, node, tag, {}, {}, words});
}

void DataStore::put_shared(NodeId node, Tag tag, Payload payload) {
  HCMM_CHECK(payload != nullptr, "store: null payload");
  auto& ns = at(node);
  const auto [it, inserted] = ns.items.emplace(tag, std::move(payload));
  HCMM_CHECK(inserted, "store: node " << node << " already holds tag 0x"
                                      << std::hex << tag);
  bump(ns, static_cast<std::ptrdiff_t>(it->second.size()));
  notify({StoreEvent::Kind::kPutShared, node, tag, {}, {}, it->second.size()});
}

const Payload& DataStore::get(NodeId node, Tag tag) const {
  const auto& ns = at(node);
  const auto it = ns.items.find(tag);
  HCMM_CHECK(it != ns.items.end(),
             "store: node " << node << " has no tag 0x" << std::hex << tag);
  return it->second;
}

bool DataStore::has(NodeId node, Tag tag) const {
  const auto& ns = at(node);
  return ns.items.find(tag) != ns.items.end();
}

std::size_t DataStore::item_words(NodeId node, Tag tag) const {
  return get(node, tag).size();
}

void DataStore::erase(NodeId node, Tag tag) {
  auto& ns = at(node);
  const auto it = ns.items.find(tag);
  HCMM_CHECK(it != ns.items.end(),
             "store: erase of absent tag 0x" << std::hex << tag << std::dec
                                             << " on node " << node);
  const std::size_t words = it->second.size();
  bump(ns, -static_cast<std::ptrdiff_t>(words));
  ns.items.erase(it);
  notify({StoreEvent::Kind::kErase, node, tag, {}, {}, words});
}

void DataStore::combine(NodeId node, Tag tag, const Payload& addend) {
  auto& ns = at(node);
  const auto it = ns.items.find(tag);
  HCMM_CHECK(it != ns.items.end(), "store: combine into absent tag 0x"
                                       << std::hex << tag << std::dec
                                       << " on node " << node);
  Payload& dst = it->second;
  const std::size_t n = dst.size();
  HCMM_CHECK(n == addend.size(),
             "store: combine size mismatch (" << n << " vs " << addend.size()
                                              << ")");
  const double* add = addend.data();
  // An addend aliasing the target's buffer holds a second reference, so
  // unique() already forbids mutating through it.
  if (policy_ == CopyPolicy::kZeroCopy && dst.unique()) {
    double* out = dst.buf_->data() + dst.off_;
    for (std::size_t i = 0; i < n; ++i) out[i] += add[i];
    plane_.combines_in_place += 1;
    notify({StoreEvent::Kind::kCombineInPlace, node, tag, {}, {}, n});
  } else {
    std::vector<double> sum(dst.data(), dst.data() + n);
    for (std::size_t i = 0; i < n; ++i) sum[i] += add[i];
    dst = make_payload(std::move(sum));
    plane_.combines_copied += 1;
    plane_.words_copied += n;
    notify({StoreEvent::Kind::kCombineCopied, node, tag, {}, {}, n});
  }
}

Tag DataStore::make_part_tag(Tag tag, std::size_t i) noexcept {
  // Part index rides in the (reserved) top byte; see split() for the
  // contract that algorithm tags keep that byte clear.
  return tag | (static_cast<Tag>(i + 1) << 56);
}

std::vector<Tag> DataStore::split(NodeId node, Tag tag, std::size_t parts) {
  HCMM_CHECK(parts >= 1 && parts <= 255, "store: bad part count " << parts);
  const std::size_t total = item_words(node, tag);
  std::vector<std::size_t> sizes(parts);
  for (std::size_t i = 0; i < parts; ++i) {
    const auto [lo, hi] = chunk_bounds(total, parts, i);
    sizes[i] = hi - lo;
  }
  return split_sizes(node, tag, sizes);
}

std::vector<Tag> DataStore::split_sizes(NodeId node, Tag tag,
                                        std::span<const std::size_t> sizes) {
  HCMM_CHECK(!sizes.empty() && sizes.size() <= 255,
             "store: bad part count " << sizes.size());
  HCMM_CHECK((tag >> 56) == 0,
             "store: nested split / reserved tag byte in use");
  const Payload whole = get(node, tag);
  std::size_t total = 0;
  for (const std::size_t s : sizes) total += s;
  HCMM_CHECK(total == whole.size(), "store: split sizes sum to "
                                        << total << " != item size "
                                        << whole.size());
  std::vector<Tag> out;
  out.reserve(sizes.size());
  {
    const MuteScope mute(*this);
    erase(node, tag);
    std::size_t off = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const Tag pt = make_part_tag(tag, i);
      if (policy_ == CopyPolicy::kZeroCopy) {
        put_shared(node, pt, whole.slice(off, sizes[i]));
        plane_.words_aliased += sizes[i];
      } else {
        const double* base = whole.data() + off;
        put(node, pt, std::vector<double>(base, base + sizes[i]));
        plane_.words_copied += sizes[i];
      }
      off += sizes[i];
      out.push_back(pt);
    }
  }
  plane_.split_ops += 1;
  notify({StoreEvent::Kind::kSplit, node, tag, out,
          std::vector<std::size_t>(sizes.begin(), sizes.end()), total});
  return out;
}

void DataStore::join(NodeId node, std::span<const Tag> part_tags, Tag out_tag) {
  std::vector<Payload> parts;
  parts.reserve(part_tags.size());
  std::size_t total = 0;
  for (const Tag t : part_tags) {
    parts.push_back(get(node, t));
    total += parts.back().size();
  }
  // Zero-copy re-aliasing is possible exactly when the parts are consecutive
  // ascending slices of one buffer — the round trip of a zero-copy split.
  bool contiguous = policy_ == CopyPolicy::kZeroCopy && !parts.empty();
  if (contiguous) {
    std::size_t off = parts[0].offset();
    for (const Payload& p : parts) {
      if (!p.same_buffer(parts[0]) || p.offset() != off) {
        contiguous = false;
        break;
      }
      off += p.size();
    }
  }
  {
    const MuteScope mute(*this);
    for (const Tag t : part_tags) erase(node, t);
    if (contiguous) {
      Payload joined = parts[0];  // widen the first part's view over them all
      joined.len_ = total;
      put_shared(node, out_tag, std::move(joined));
      plane_.words_aliased += total;
    } else {
      std::vector<double> joined;
      joined.reserve(total);
      for (const Payload& p : parts) {
        joined.insert(joined.end(), p.data(), p.data() + p.size());
      }
      put(node, out_tag, std::move(joined));
      plane_.words_copied += total;
    }
  }
  plane_.join_ops += 1;
  std::vector<std::size_t> part_sizes;
  part_sizes.reserve(parts.size());
  for (const Payload& p : parts) part_sizes.push_back(p.size());
  notify({StoreEvent::Kind::kJoin, node, out_tag,
          std::vector<Tag>(part_tags.begin(), part_tags.end()),
          std::move(part_sizes), total});
}

std::size_t DataStore::words(NodeId node) const { return at(node).cur_words; }

std::size_t DataStore::peak_words(NodeId node) const {
  return at(node).peak_words;
}

std::uint64_t DataStore::total_peak_words() const {
  std::uint64_t sum = 0;
  for (const auto& ns : nodes_) sum += ns.peak_words;
  return sum;
}

void DataStore::reset_peaks() {
  for (auto& ns : nodes_) ns.peak_words = ns.cur_words;
}

std::size_t DataStore::item_count(NodeId node) const {
  return at(node).items.size();
}

std::vector<std::pair<Tag, std::size_t>> DataStore::items(NodeId node) const {
  const auto& ns = at(node);
  std::vector<std::pair<Tag, std::size_t>> out;
  out.reserve(ns.items.size());
  for (const auto& [tag, payload] : ns.items) {
    out.emplace_back(tag, payload.size());
  }
  return out;
}

}  // namespace hcmm
