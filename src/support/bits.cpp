#include "hcmm/support/bits.hpp"

#include <string>

namespace hcmm {

std::uint32_t exact_cbrt(std::uint32_t p) {
  std::uint32_t q = 0;
  while (static_cast<std::uint64_t>(q + 1) * (q + 1) * (q + 1) <= p) ++q;
  if (static_cast<std::uint64_t>(q) * q * q != p) {
    throw std::invalid_argument("exact_cbrt: " + std::to_string(p) +
                                " is not a perfect cube");
  }
  return q;
}

std::uint32_t exact_sqrt(std::uint32_t p) {
  std::uint32_t q = 0;
  while (static_cast<std::uint64_t>(q + 1) * (q + 1) <= p) ++q;
  if (static_cast<std::uint64_t>(q) * q != p) {
    throw std::invalid_argument("exact_sqrt: " + std::to_string(p) +
                                " is not a perfect square");
  }
  return q;
}

}  // namespace hcmm
