#include "hcmm/support/check.hpp"

namespace hcmm::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "HCMM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace hcmm::detail
