#include "hcmm/support/cpu.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace hcmm::cpu {
namespace {

[[nodiscard]] Features detect() {
  Features f;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports executes cpuid once (the libgcc resolver caches
  // it) and folds in the OS xsave check, so a kernel that masked AVX-512
  // state reports false here even though cpuid alone would say yes.
  f.avx = __builtin_cpu_supports("avx") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
  f.avx512dq = __builtin_cpu_supports("avx512dq") != 0;
  f.avx512vl = __builtin_cpu_supports("avx512vl") != 0;
#elif defined(__aarch64__)
#if defined(__linux__)
  f.neon = (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
  f.neon = true;  // Advanced SIMD is mandatory in AArch64.
#endif
#endif
  return f;
}

}  // namespace

const Features& features() {
  static const Features f = detect();
  return f;
}

std::string summary() {
  const Features& f = features();
  std::string out;
  const auto add = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(f.avx, "avx");
  add(f.fma, "fma");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  add(f.avx512dq, "avx512dq");
  add(f.avx512vl, "avx512vl");
  add(f.neon, "neon");
  return out.empty() ? "generic" : out;
}

}  // namespace hcmm::cpu
