#include "hcmm/support/gray.hpp"

#include <bit>
#include <stdexcept>

#include "hcmm/support/bits.hpp"

namespace hcmm {

std::uint32_t gray_change_bit(std::uint32_t k, std::uint32_t d) {
  if (d == 0 || d > 31) throw std::invalid_argument("gray_change_bit: bad dimension");
  const std::uint32_t mask = (1u << d) - 1u;
  const std::uint32_t k0 = k & mask;
  const std::uint32_t k1 = (k0 + 1u) & mask;
  const std::uint32_t diff = gray_encode(k0) ^ gray_encode(k1);
  return static_cast<std::uint32_t>(std::countr_zero(diff));
}

std::vector<std::uint32_t> gray_sequence(std::uint32_t d) {
  if (d > 20) throw std::invalid_argument("gray_sequence: dimension too large");
  std::vector<std::uint32_t> seq;
  seq.reserve(1u << d);
  for (std::uint32_t k = 0; k < (1u << d); ++k) seq.push_back(gray_encode(k));
  return seq;
}

}  // namespace hcmm
