#include "hcmm/support/prng.hpp"

namespace hcmm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Prng::Prng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Prng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Prng::next_double() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Prng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Simple modulo is fine here: bounds are tiny relative to 2^64, and
  // bit-exact reproducibility matters more than a 2^-50 bias.
  return next_u64() % bound;
}

}  // namespace hcmm
