#include "hcmm/support/thread_pool.hpp"

#include <algorithm>

namespace hcmm {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_batch(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;
  std::unique_lock lock(mu_);
  batch_ = &jobs;
  next_job_ = 0;
  jobs_done_ = 0;
  first_error_ = nullptr;
  cv_work_.notify_all();
  // The calling thread pitches in as well so a 1-thread pool still makes
  // progress even if its worker is descheduled.
  while (true) {
    if (next_job_ >= jobs.size()) break;
    const std::size_t j = next_job_++;
    lock.unlock();
    try {
      jobs[j]();
    } catch (...) {
      lock.lock();
      if (!first_error_) first_error_ = std::current_exception();
      ++jobs_done_;
      continue;
    }
    lock.lock();
    ++jobs_done_;
  }
  cv_done_.wait(lock, [&] { return jobs_done_ == jobs.size(); });
  batch_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mu_);
  while (true) {
    cv_work_.wait(lock, [&] {
      return stop_ || (batch_ != nullptr && next_job_ < batch_->size());
    });
    if (stop_) return;
    auto* jobs = batch_;
    const std::size_t j = next_job_++;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*jobs)[j]();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !first_error_) first_error_ = err;
    if (++jobs_done_ == jobs->size()) cv_done_.notify_all();
  }
}

}  // namespace hcmm
