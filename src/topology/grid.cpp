#include "hcmm/topology/grid.hpp"

#include "hcmm/support/check.hpp"
#include "hcmm/support/gray.hpp"

namespace hcmm {
namespace {

// g == 0 (a 1-node grid axis) would make chain masks empty; the grids below
// allow it so that tiny configurations (p = 1) remain usable in tests.
std::uint32_t field_mask(std::uint32_t g, std::uint32_t field) {
  return g == 0 ? 0u : ((1u << g) - 1u) << (g * field);
}

}  // namespace

Grid2D::Grid2D(std::uint32_t p)
    : q_(exact_sqrt(p)), g_(exact_log2(q_)), cube_(2 * g_) {
  HCMM_CHECK(is_pow2(q_), "Grid2D: side " << q_ << " must be a power of two");
}

NodeId Grid2D::node(std::uint32_t row, std::uint32_t col) const {
  HCMM_CHECK(row < q_ && col < q_, "Grid2D coords (" << row << "," << col
                                                     << ") out of range");
  // col lives in the low field, row in the high field.
  return gray_encode(col) | (gray_encode(row) << g_);
}

std::array<std::uint32_t, 2> Grid2D::coords(NodeId n) const {
  HCMM_CHECK(cube_.contains(n), "node out of range");
  const std::uint32_t low = n & ((1u << g_) - 1u);
  const std::uint32_t high = n >> g_;
  return {gray_decode(high), gray_decode(low)};
}

Subcube Grid2D::row_chain(std::uint32_t row) const {
  return Subcube(node(row, 0), field_mask(g_, 0));
}

Subcube Grid2D::col_chain(std::uint32_t col) const {
  return Subcube(node(0, col), field_mask(g_, 1));
}

Grid3D::Grid3D(std::uint32_t p)
    : q_(exact_cbrt(p)), g_(exact_log2(q_)), cube_(3 * g_) {}

NodeId Grid3D::node(std::uint32_t i, std::uint32_t j, std::uint32_t k) const {
  HCMM_CHECK(i < q_ && j < q_ && k < q_,
             "Grid3D coords (" << i << "," << j << "," << k << ") out of range");
  return gray_encode(i) | (gray_encode(j) << g_) | (gray_encode(k) << (2 * g_));
}

std::array<std::uint32_t, 3> Grid3D::coords(NodeId n) const {
  HCMM_CHECK(cube_.contains(n), "node out of range");
  const std::uint32_t mask = g_ == 0 ? 0u : (1u << g_) - 1u;
  return {gray_decode(n & mask), gray_decode((n >> g_) & mask),
          gray_decode((n >> (2 * g_)) & mask)};
}

Subcube Grid3D::x_chain(std::uint32_t j, std::uint32_t k) const {
  return Subcube(node(0, j, k), field_mask(g_, 0));
}

Subcube Grid3D::y_chain(std::uint32_t i, std::uint32_t k) const {
  return Subcube(node(i, 0, k), field_mask(g_, 1));
}

Subcube Grid3D::z_chain(std::uint32_t i, std::uint32_t j) const {
  return Subcube(node(i, j, 0), field_mask(g_, 2));
}

std::uint32_t Grid3D::f(std::uint32_t i, std::uint32_t j) const {
  HCMM_CHECK(i < q_ && j < q_, "Grid3D::f coords out of range");
  return i * q_ + j;
}

Grid3DRect::Grid3DRect(std::uint32_t qx, std::uint32_t qy, std::uint32_t qz)
    : qx_(qx),
      qy_(qy),
      qz_(qz),
      gx_(exact_log2(qx)),
      gy_(exact_log2(qy)),
      gz_(exact_log2(qz)),
      cube_(gx_ + gy_ + gz_) {}

NodeId Grid3DRect::node(std::uint32_t i, std::uint32_t j,
                        std::uint32_t k) const {
  HCMM_CHECK(i < qx_ && j < qy_ && k < qz_,
             "Grid3DRect coords (" << i << "," << j << "," << k
                                   << ") out of range");
  return gray_encode(i) | (gray_encode(j) << gx_) |
         (gray_encode(k) << (gx_ + gy_));
}

std::array<std::uint32_t, 3> Grid3DRect::coords(NodeId n) const {
  HCMM_CHECK(cube_.contains(n), "node out of range");
  const std::uint32_t mx = gx_ == 0 ? 0u : (1u << gx_) - 1u;
  const std::uint32_t my = gy_ == 0 ? 0u : (1u << gy_) - 1u;
  const std::uint32_t mz = gz_ == 0 ? 0u : (1u << gz_) - 1u;
  return {gray_decode(n & mx), gray_decode((n >> gx_) & my),
          gray_decode((n >> (gx_ + gy_)) & mz)};
}

Subcube Grid3DRect::x_chain(std::uint32_t j, std::uint32_t k) const {
  const std::uint32_t mask = gx_ == 0 ? 0u : (1u << gx_) - 1u;
  return Subcube(node(0, j, k), mask);
}

Subcube Grid3DRect::y_chain(std::uint32_t i, std::uint32_t k) const {
  const std::uint32_t mask = gy_ == 0 ? 0u : ((1u << gy_) - 1u) << gx_;
  return Subcube(node(i, 0, k), mask);
}

Subcube Grid3DRect::z_chain(std::uint32_t i, std::uint32_t j) const {
  const std::uint32_t mask =
      gz_ == 0 ? 0u : ((1u << gz_) - 1u) << (gx_ + gy_);
  return Subcube(node(i, j, 0), mask);
}

std::uint32_t Grid3DRect::f(std::uint32_t i, std::uint32_t j) const {
  HCMM_CHECK(i < qx_ && j < qy_, "Grid3DRect::f coords out of range");
  return i * qy_ + j;
}

}  // namespace hcmm
