#include "hcmm/topology/hypercube.hpp"

#include "hcmm/support/check.hpp"

namespace hcmm {

Hypercube::Hypercube(std::uint32_t dim) : dim_(dim) {
  HCMM_CHECK(dim <= 20, "hypercube dimension " << dim << " too large");
}

Hypercube Hypercube::with_nodes(std::uint32_t p) {
  HCMM_CHECK(is_pow2(p), "hypercube size " << p << " is not a power of two");
  return Hypercube(exact_log2(p));
}

NodeId Hypercube::neighbor(NodeId node, std::uint32_t k) const {
  HCMM_CHECK(node < size(), "node " << node << " out of range");
  HCMM_CHECK(k < dim_, "dimension " << k << " out of range");
  return flip_bit(node, k);
}

std::uint32_t Hypercube::distance(NodeId a, NodeId b) const {
  HCMM_CHECK(a < size() && b < size(), "node out of range");
  return hamming(a, b);
}

std::vector<NodeId> Hypercube::neighbors(NodeId node) const {
  HCMM_CHECK(node < size(), "node " << node << " out of range");
  std::vector<NodeId> out;
  out.reserve(dim_);
  for (std::uint32_t k = 0; k < dim_; ++k) out.push_back(flip_bit(node, k));
  return out;
}

Subcube::Subcube(NodeId base, std::uint32_t dims_mask)
    : base_(base & ~dims_mask),
      dims_mask_(dims_mask),
      dim_(popcount32(dims_mask)) {
  bit_positions_.reserve(dim_);
  for (std::uint32_t b = 0; b < 32; ++b) {
    if (bit_of(dims_mask, b) != 0) bit_positions_.push_back(b);
  }
}

std::uint32_t Subcube::dim_bit(std::uint32_t k) const {
  HCMM_CHECK(k < dim_, "subcube dimension index " << k << " out of range");
  return bit_positions_[k];
}

NodeId Subcube::node_at(std::uint32_t r) const {
  HCMM_CHECK(r < size(), "subcube rank " << r << " out of range");
  NodeId node = base_;
  for (std::uint32_t k = 0; k < dim_; ++k) {
    if (bit_of(r, k) != 0) node |= (1u << bit_positions_[k]);
  }
  return node;
}

std::uint32_t Subcube::rank_of(NodeId node) const {
  HCMM_CHECK(contains(node), "node " << node << " not in subcube");
  std::uint32_t r = 0;
  for (std::uint32_t k = 0; k < dim_; ++k) {
    if (bit_of(node, bit_positions_[k]) != 0) r |= (1u << k);
  }
  return r;
}

std::vector<NodeId> Subcube::nodes() const {
  std::vector<NodeId> out;
  out.reserve(size());
  for (std::uint32_t r = 0; r < size(); ++r) out.push_back(node_at(r));
  return out;
}

}  // namespace hcmm
