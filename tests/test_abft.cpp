// Tests for the ABFT subsystem: Huang–Abraham checksum verification and
// correction classes, the abft::protect adapter's zero-overhead guarantee on
// fault-free runs, silent-corruption detection end to end, and checkpointed
// mid-run death recovery — all deterministic.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hcmm/abft/checksum.hpp"
#include "hcmm/abft/protect.hpp"
#include "hcmm/algo/api.hpp"
#include "hcmm/analysis/semantic.hpp"
#include "hcmm/analysis/trace.hpp"
#include "hcmm/fault/scenarios.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/report_io.hpp"

namespace hcmm {
namespace {

constexpr std::size_t kN = 8;

struct Product {
  Matrix a = random_matrix(kN, kN, 17);
  Matrix b = random_matrix(kN, kN, 18);
  Matrix c = multiply_naive(a, b);
  abft::Checksums ref = abft::reference_checksums(a, b);
  double tol = abft::residue_tolerance(ref);
};

TEST(AbftChecksum, CleanProductVerifies) {
  Product p;
  const auto vr = abft::verify_and_correct(p.c, p.ref, p.tol);
  EXPECT_TRUE(vr.ok);
  EXPECT_EQ(vr.detected, 0u);
  EXPECT_EQ(vr.corrected, 0u);
  EXPECT_TRUE(vr.events.empty());
}

TEST(AbftChecksum, SingleElementIsLocatedAndCorrected) {
  Product p;
  const Matrix want = p.c;
  p.c(2, 5) += 7.25;
  const auto vr = abft::verify_and_correct(p.c, p.ref, p.tol);
  ASSERT_TRUE(vr.ok);
  EXPECT_GE(vr.detected, 1u);
  EXPECT_EQ(vr.corrected, 1u);
  ASSERT_EQ(vr.events.size(), 1u);
  EXPECT_EQ(vr.events[0].kind, abft::EventKind::kElementCorrected);
  EXPECT_EQ(vr.events[0].row, 2u);
  EXPECT_EQ(vr.events[0].col, 5u);
  EXPECT_TRUE(approx_equal(p.c, want, 1e-9));
}

TEST(AbftChecksum, CorruptedRowIsCorrected) {
  Product p;
  const Matrix want = p.c;
  for (std::size_t j = 0; j < kN; ++j) p.c(4, j) += 1.0 + double(j);
  const auto vr = abft::verify_and_correct(p.c, p.ref, p.tol);
  ASSERT_TRUE(vr.ok);
  EXPECT_EQ(vr.corrected, kN);
  ASSERT_FALSE(vr.events.empty());
  EXPECT_EQ(vr.events[0].kind, abft::EventKind::kRowCorrected);
  EXPECT_EQ(vr.events[0].row, 4u);
  EXPECT_TRUE(approx_equal(p.c, want, 1e-9));
}

TEST(AbftChecksum, CorruptedColumnIsCorrected) {
  Product p;
  const Matrix want = p.c;
  for (std::size_t i = 0; i < kN; ++i) p.c(i, 1) -= 2.0 + double(i);
  const auto vr = abft::verify_and_correct(p.c, p.ref, p.tol);
  ASSERT_TRUE(vr.ok);
  EXPECT_EQ(vr.corrected, kN);
  ASSERT_FALSE(vr.events.empty());
  EXPECT_EQ(vr.events[0].kind, abft::EventKind::kColCorrected);
  EXPECT_EQ(vr.events[0].col, 1u);
  EXPECT_TRUE(approx_equal(p.c, want, 1e-9));
}

TEST(AbftChecksum, MultiRowMultiColumnIsUncorrectable) {
  Product p;
  p.c(1, 2) += 3.0;
  p.c(6, 7) += 4.0;  // two flagged rows AND two flagged columns
  const auto vr = abft::verify_and_correct(p.c, p.ref, p.tol);
  EXPECT_FALSE(vr.ok);
  EXPECT_GE(vr.detected, 1u);
  ASSERT_FALSE(vr.events.empty());
  EXPECT_EQ(vr.events.back().kind, abft::EventKind::kUncorrectable);
}

/// Smallest problem size the algorithm accepts on @p p nodes.
std::size_t pick_n(const algo::DistributedMatmul& alg, std::uint32_t p) {
  for (const std::size_t n : {4u, 8u, 16u, 24u, 32u, 48u, 64u}) {
    if (alg.applicable(n, p)) return n;
  }
  ADD_FAILURE() << alg.name() << ": no applicable n";
  return 0;
}

TEST(AbftProtect, CleanRunIsCorrectWithZeroDetectionsAndDeterministic) {
  const Hypercube cube(3);
  const auto alg = abft::make_protected(algo::AlgoId::kAll3D);
  const std::size_t n = pick_n(*alg, cube.size());
  const Matrix a = random_matrix(n, n, 21);
  const Matrix b = random_matrix(n, n, 22);
  const Matrix want = multiply_naive(a, b);

  std::string first_json;
  for (int rep = 0; rep < 2; ++rep) {
    Machine m(cube, PortModel::kOnePort, CostParams{});
    const auto res = alg->run(a, b, m);
    EXPECT_TRUE(approx_equal(res.c, want, 1e-9 * double(n)));
    const PhaseStats t = res.report.totals();
    EXPECT_EQ(t.silent_corruptions, 0u);
    EXPECT_EQ(t.abft_detected, 0u);
    EXPECT_EQ(t.abft_corrected, 0u);
    EXPECT_EQ(res.report.recoveries, 0u);
    EXPECT_GT(t.checkpoints, 0u);
    EXPECT_GT(t.checkpoint_cost, 0.0);
    // Checkpoint write-outs stay inside the (a, b) accounting identity.
    EXPECT_NEAR(t.comm_time,
                res.report.params.ts * double(t.rounds) +
                    res.report.params.tw * t.word_cost,
                1e-6);
    bool encode = false;
    bool verify = false;
    for (const PhaseStats& ph : res.report.phases) {
      encode |= ph.name == "abft encode";
      verify |= ph.name == "abft verify";
    }
    EXPECT_TRUE(encode);
    EXPECT_TRUE(verify);
    if (rep == 0) {
      first_json = report_json(res.report);
    } else {
      EXPECT_EQ(first_json, report_json(res.report));
    }
  }
}

TEST(AbftProtect, SilentCorruptionIsDetectedAndNeverWrong) {
  const Hypercube cube(3);
  const auto alg = abft::make_protected(algo::AlgoId::kAll3D);
  const std::size_t n = pick_n(*alg, cube.size());
  const Matrix a = random_matrix(n, n, 23);
  const Matrix b = random_matrix(n, n, 24);
  const Matrix want = multiply_naive(a, b);

  std::uint64_t hit_runs = 0;
  std::uint64_t corrected_runs = 0;
  std::uint64_t aborts = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    fault::FaultPlan plan;
    plan.transient.seed = seed;
    plan.transient.silent_prob = 0.02;
    Machine m(cube, PortModel::kOnePort, CostParams{});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
    try {
      const auto res = alg->run(a, b, m);
      // Every run that returns must be numerically correct — a corruption
      // either never happened, or was detected and corrected.
      EXPECT_TRUE(approx_equal(res.c, want, 1e-9 * double(n)))
          << "seed " << seed << " returned a wrong product";
      const PhaseStats t = res.report.totals();
      hit_runs += t.silent_corruptions > 0;
      corrected_runs += t.abft_corrected > 0;
      // A hit is not guaranteed to be detectable (it may land on the ABFT
      // checksum traffic itself, which the serial reference verdicts ignore),
      // but a detection without an injected hit would be a false positive.
      if (t.abft_detected > 0) {
        EXPECT_GT(t.silent_corruptions, 0u)
            << "seed " << seed << " detected a corruption never injected";
      }
    } catch (const fault::FaultAbort& fa) {
      EXPECT_EQ(fa.event().kind, fault::FaultKind::kAbftUncorrectable);
      ++aborts;
    }
  }
  EXPECT_GT(hit_runs, 0u) << "sweep never injected a corruption";
  EXPECT_GT(corrected_runs + aborts, 0u);
}

TEST(AbftProtect, MidRunDeathRecoversDeterministically) {
  const Hypercube cube(3);
  const auto alg = abft::make_protected(algo::AlgoId::kAll3D);
  const std::size_t n = pick_n(*alg, cube.size());
  const Matrix a = random_matrix(n, n, 25);
  const Matrix b = random_matrix(n, n, 26);
  const Matrix want = multiply_naive(a, b);

  fault::FaultPlan plan;
  plan.kill_node_at_round(fault::safe_victim(cube, 9, fault::FaultSet{}), 3);

  std::string first_json;
  for (int rep = 0; rep < 2; ++rep) {
    Machine m(cube, PortModel::kOnePort, CostParams{});
    m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
    const auto res = alg->run(a, b, m);
    EXPECT_TRUE(approx_equal(res.c, want, 1e-9 * double(n)));
    EXPECT_EQ(res.report.recoveries, 1u);
    bool death_seen = false;
    for (const auto& ev : res.report.fault_events) {
      death_seen |= ev.kind == fault::FaultKind::kMidRunDeath;
    }
    EXPECT_TRUE(death_seen) << "recovery left no located death event";
    if (rep == 0) {
      first_json = report_json(res.report);
    } else {
      EXPECT_EQ(first_json, report_json(res.report));
    }
  }
}

TEST(AbftProtect, ReplayDeathRecoversWithASecondRollback) {
  // A node dies mid-run; while the rollback is replaying the checkpointed
  // prefix, a *second* node dies — a fault aimed squarely at recovery
  // traffic.  The driver must roll back again and still finish correctly,
  // with both deaths located in the report.
  const Hypercube cube(3);
  const auto alg = abft::make_protected(algo::AlgoId::kBerntsen);
  const std::size_t n = pick_n(*alg, cube.size());
  const Matrix a = random_matrix(n, n, 31);
  const Matrix b = random_matrix(n, n, 32);
  const Matrix want = multiply_naive(a, b);

  fault::FaultPlan plan;
  plan.kill_node_at_round(5, 6);
  plan.kill_node_at_replay_round(1, 0);

  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
  const auto res = alg->run(a, b, m);
  EXPECT_TRUE(approx_equal(res.c, want, 1e-9 * double(n)));
  EXPECT_EQ(res.report.recoveries, 2u);
  bool mid_run = false;
  bool replay = false;
  for (const auto& ev : res.report.fault_events) {
    mid_run |= ev.kind == fault::FaultKind::kMidRunDeath;
    replay |= ev.kind == fault::FaultKind::kReplayDeath;
  }
  EXPECT_TRUE(mid_run) << "first death not located in the report";
  EXPECT_TRUE(replay) << "replay death not located in the report";
}

TEST(AbftProtect, CorruptCheckpointEscalatesToRestart) {
  // Every checkpoint taken during the run fails its integrity digest, so
  // the rollback after the scheduled death cannot restore — the driver must
  // escalate to a restart from scratch and still produce the right product.
  const Hypercube cube(3);
  const auto alg = abft::make_protected(algo::AlgoId::kAll3D);
  const std::size_t n = pick_n(*alg, cube.size());
  const Matrix a = random_matrix(n, n, 33);
  const Matrix b = random_matrix(n, n, 34);
  const Matrix want = multiply_naive(a, b);

  fault::FaultPlan plan;
  plan.kill_node_at_round(fault::safe_victim(cube, 9, fault::FaultSet{}), 6);
  for (std::uint64_t ord = 0; ord < 8; ++ord) {
    plan.corrupt_checkpoint.insert(ord);
  }

  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
  const auto res = alg->run(a, b, m);
  EXPECT_TRUE(approx_equal(res.c, want, 1e-9 * double(n)));
  EXPECT_GE(res.report.restarts, 1u);
  bool corrupt_seen = false;
  for (const auto& ev : res.report.fault_events) {
    corrupt_seen |= ev.kind == fault::FaultKind::kCheckpointCorrupt;
  }
  EXPECT_TRUE(corrupt_seen) << "corrupt checkpoint not located in the report";
}

TEST(AbftProtect, RecoveredRunPassesPostRecoveryCertification) {
  // The trace of a rollback-recovered run must still certify: alias/lifetime
  // discipline, happens-before ordering, and semantic exactly-once coverage
  // all hold after the recovery rewound and replayed part of the run.
  const Hypercube cube(3);
  const auto alg = abft::make_protected(algo::AlgoId::kAll3D);
  const std::size_t n = pick_n(*alg, cube.size());
  const Matrix a = random_matrix(n, n, 35);
  const Matrix b = random_matrix(n, n, 36);

  fault::FaultPlan plan;
  plan.kill_node_at_round(fault::safe_victim(cube, 13, fault::FaultSet{}), 3);

  Machine m(cube, PortModel::kOnePort, CostParams{});
  analysis::TraceRecorder rec(m);
  m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
  const auto res = alg->run(a, b, m);
  EXPECT_TRUE(approx_equal(res.c, multiply_naive(a, b), 1e-9 * double(n)));
  ASSERT_GE(res.report.recoveries, 1u);

  analysis::TraceInput tin;
  tin.trace = &rec.trace();
  tin.cube = cube;
  tin.port = PortModel::kOnePort;
  analysis::DiagnosticList found;
  analysis::make_alias_lifetime_pass()->run(tin, found);
  analysis::make_happens_before_pass()->run(tin, found);
  (void)analysis::run_semantic_pass(rec.trace(), found);
  for (const auto& d : found.diags()) {
    EXPECT_NE(d.severity, analysis::Severity::kError) << d.to_string();
  }
}

TEST(AbftProtect, UnprotectedRunAbortsOnScheduledDeath) {
  const Hypercube cube(3);
  const auto alg = algo::make_algorithm(algo::AlgoId::kAll3D);
  const std::size_t n = pick_n(*alg, cube.size());
  const Matrix a = random_matrix(n, n, 27);
  const Matrix b = random_matrix(n, n, 28);

  fault::FaultPlan plan;
  plan.kill_node_at_round(fault::safe_victim(cube, 11, fault::FaultSet{}), 2);
  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.set_fault_plan(std::make_shared<const fault::FaultPlan>(plan));
  try {
    (void)alg->run(a, b, m);
    FAIL() << "scheduled death did not abort the unprotected run";
  } catch (const fault::FaultAbort& fa) {
    EXPECT_EQ(fa.event().kind, fault::FaultKind::kMidRunDeath);
    EXPECT_EQ(fa.event().round, 2u);
  }
}

}  // namespace
}  // namespace hcmm
