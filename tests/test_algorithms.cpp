// End-to-end tests of all twelve distributed algorithms (nine from the
// paper plus three extensions): every algorithm, on
// both port models, across machine sizes, must reproduce the serial product
// exactly (up to roundoff), perform exactly n^3/p multiply-adds per node on
// the critical path, and be deterministic.

#include <gtest/gtest.h>

#include "hcmm/algo/api.hpp"
#include "hcmm/algo/factory.hpp"
#include "hcmm/matrix/gemm.hpp"
#include "hcmm/matrix/generate.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

using algo::AlgoId;

struct AlgoCase {
  AlgoId id;
  PortModel port;
  std::size_t n;
  std::uint32_t p;
};

std::string case_name(const testing::TestParamInfo<AlgoCase>& info) {
  std::string name = algo::to_string(info.param.id);
  std::erase_if(name, [](char ch) { return ch == '(' || ch == ')'; });
  for (auto& ch : name) {
    if (ch == ' ' || ch == '-') ch = '_';
  }
  return name + (info.param.port == PortModel::kOnePort ? "_one" : "_multi") +
         "_n" + std::to_string(info.param.n) + "_p" +
         std::to_string(info.param.p);
}

class AlgoRun : public testing::TestWithParam<AlgoCase> {};

TEST_P(AlgoRun, MatchesSerialOracle) {
  const auto [id, port, n, p] = GetParam();
  const auto alg = algo::make_algorithm(id);
  ASSERT_TRUE(alg->supports(port));
  ASSERT_TRUE(alg->applicable(n, p))
      << alg->name() << " must be applicable for n=" << n << " p=" << p;

  const Matrix a = random_matrix(n, n, 1000 + n);
  const Matrix b = random_matrix(n, n, 2000 + p);
  Machine machine(Hypercube::with_nodes(p), port, CostParams{150.0, 3.0, 1.0});
  const auto result = alg->run(a, b, machine);
  const Matrix oracle = multiply_naive(a, b);

  EXPECT_LE(max_abs_diff(result.c, oracle), 1e-10 * static_cast<double>(n))
      << alg->name() << " produced a wrong product";

  const auto totals = result.report.totals();
  EXPECT_EQ(totals.flops,
            static_cast<std::uint64_t>(n) * n * n / p)
      << "critical-path multiply-adds must be n^3/p (perfect load balance)";
  if (p > 1) {
    EXPECT_GT(totals.rounds, 0u);
    EXPECT_GT(totals.comm_time, 0.0);
    EXPECT_GT(result.report.peak_words_total, 0u);
    // Dependency-driven execution can only be faster than the
    // phase-synchronous accounting, never slower.
    EXPECT_LE(result.report.async_makespan, totals.time() + 1e-6);
    EXPECT_GT(result.report.async_makespan, 0.0);
  }
}

TEST_P(AlgoRun, DeterministicAcrossRuns) {
  const auto [id, port, n, p] = GetParam();
  if (p > 64) GTEST_SKIP() << "determinism spot-check on small machines only";
  const auto alg = algo::make_algorithm(id);
  const Matrix a = random_matrix(n, n, 7);
  const Matrix b = random_matrix(n, n, 8);
  Machine m1(Hypercube::with_nodes(p), port, CostParams{10.0, 1.0, 1.0});
  Machine m2(Hypercube::with_nodes(p), port, CostParams{10.0, 1.0, 1.0});
  const auto r1 = alg->run(a, b, m1);
  const auto r2 = alg->run(a, b, m2);
  EXPECT_LE(max_abs_diff(r1.c, r2.c), 0.0) << "must be bit-identical";
  EXPECT_DOUBLE_EQ(r1.report.totals().comm_time, r2.report.totals().comm_time);
  EXPECT_EQ(r1.report.peak_words_total, r2.report.peak_words_total);
}

std::vector<AlgoCase> make_cases() {
  std::vector<AlgoCase> cases;
  const PortModel ports[] = {PortModel::kOnePort, PortModel::kMultiPort};
  const AlgoId grid2d[] = {AlgoId::kSimple, AlgoId::kCannon, AlgoId::kDiag2D};
  const AlgoId grid3d[] = {AlgoId::kBerntsen, AlgoId::kDNS, AlgoId::kDiag3D,
                           AlgoId::kAllTrans, AlgoId::kAll3D};
  for (const PortModel port : ports) {
    for (const AlgoId id : grid2d) {
      cases.push_back({id, port, 8, 4});
      cases.push_back({id, port, 16, 16});
      cases.push_back({id, port, 24, 64});
      cases.push_back({id, port, 32, 256});  // q = 16 chains
    }
    // HJE needs n/sqrt(p) >= log sqrt(p) and is multi-port only.
    if (port == PortModel::kMultiPort) {
      cases.push_back({AlgoId::kHJE, port, 8, 4});
      cases.push_back({AlgoId::kHJE, port, 16, 16});
      cases.push_back({AlgoId::kHJE, port, 32, 64});
      cases.push_back({AlgoId::kHJE, port, 64, 256});
    }
    for (const AlgoId id : grid3d) {
      cases.push_back({id, port, 8, 8});
      cases.push_back({id, port, 32, 64});
    }
    // A non-divisible-but-legal shape: blocks of uneven chunking inside
    // multi-port splits (n/q^2 = 3 pieces of width 3 over 2-dim chains).
    cases.push_back({AlgoId::kAll3D, port, 48, 64});
    // One larger machine to exercise q = 8 chains in 3-D.
    cases.push_back({AlgoId::kDiag3D, port, 64, 512});
    cases.push_back({AlgoId::kAll3D, port, 64, 512});
    // The rectangular-grid extension (p = q^4 shapes, reaching p <= n^2).
    cases.push_back({AlgoId::kAll3DRect, port, 8, 16});
    cases.push_back({AlgoId::kAll3DRect, port, 16, 16});
    cases.push_back({AlgoId::kAll3DRect, port, 32, 256});
    cases.push_back({AlgoId::kAll3DRect, port, 48, 256});
    // The §3.5 supernode combinations, including processor counts where no
    // pure algorithm applies (32 = 2^3*2^2, 128 = 2^3*4^2).
    for (const AlgoId id : {AlgoId::kDNSCannon, AlgoId::kDiag3DCannon}) {
      cases.push_back({id, port, 16, 32});
      cases.push_back({id, port, 32, 32});
      cases.push_back({id, port, 32, 128});
      cases.push_back({id, port, 32, 256});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgoRun, testing::ValuesIn(make_cases()),
                         case_name);

TEST(AlgoApi, NamesAreUnique) {
  const auto algs = algo::all_algorithms();
  ASSERT_EQ(algs.size(), 12u);
  std::set<std::string> names;
  for (const auto& a : algs) EXPECT_TRUE(names.insert(a->name()).second);
}

TEST(AlgoApi, HjeRejectsOnePort) {
  const auto hje = algo::make_algorithm(AlgoId::kHJE);
  EXPECT_FALSE(hje->supports(PortModel::kOnePort));
  EXPECT_TRUE(hje->supports(PortModel::kMultiPort));
  const Matrix a = random_matrix(16, 16, 1);
  Machine m(Hypercube::with_nodes(16), PortModel::kOnePort,
            CostParams{10, 1, 1});
  EXPECT_THROW((void)hje->run(a, a, m), CheckError);
}

TEST(AlgoApi, ApplicabilityShapes) {
  const auto cannon = algo::make_algorithm(AlgoId::kCannon);
  EXPECT_TRUE(cannon->applicable(16, 16));
  EXPECT_FALSE(cannon->applicable(16, 8)) << "8 is not a square";
  EXPECT_FALSE(cannon->applicable(17, 16)) << "17 % 4 != 0";
  EXPECT_FALSE(cannon->applicable(2, 64)) << "p > n^2";

  const auto all3d = algo::make_algorithm(AlgoId::kAll3D);
  EXPECT_TRUE(all3d->applicable(32, 64));
  EXPECT_FALSE(all3d->applicable(32, 16)) << "16 is not a cube";
  EXPECT_FALSE(all3d->applicable(24, 64)) << "24 % 16 != 0";
  EXPECT_FALSE(all3d->applicable(16, 4096)) << "p > n^{3/2}";

  const auto dns = algo::make_algorithm(AlgoId::kDNS);
  EXPECT_TRUE(dns->applicable(8, 512)) << "DNS reaches p = n^3";
  EXPECT_FALSE(all3d->applicable(8, 512)) << "3D All stops at n^{3/2}";

  const auto rect = algo::make_algorithm(AlgoId::kAll3DRect);
  EXPECT_TRUE(rect->applicable(16, 256)) << "rect grid reaches p = n^2";
  EXPECT_FALSE(all3d->applicable(16, 256)) << "square grid cannot";
  EXPECT_FALSE(rect->applicable(16, 64)) << "64 is not a fourth power";
  EXPECT_FALSE(rect->applicable(24, 256)) << "24 % sqrt(p) != 0";
  EXPECT_FALSE(rect->applicable(8, 4096)) << "p > n^2";

  const auto combo = algo::make_algorithm(AlgoId::kDiag3DCannon);
  EXPECT_TRUE(combo->applicable(16, 32)) << "fills non-cube counts";
  EXPECT_TRUE(combo->applicable(16, 128));
  EXPECT_FALSE(combo->applicable(10, 32)) << "10 % (sigma*rho) != 0";
  EXPECT_FALSE(dns->applicable(16, 32)) << "pure DNS needs a cube";
}

TEST(AlgoApi, ExplicitSuperSplit) {
  // An explicit (sigma, rho) split overrides the canonical one and must be
  // rejected when it does not factor p.
  using algo::detail::make_diag3d_cannon;
  const auto good = make_diag3d_cannon(std::pair{2u, 4u});  // 8 * 16 = 128
  EXPECT_TRUE(good->applicable(32, 128));
  EXPECT_FALSE(good->applicable(32, 64)) << "split does not match p";
  const Matrix a = random_matrix(16, 16, 1);
  const Matrix b = random_matrix(16, 16, 2);
  Machine m(Hypercube::with_nodes(128), PortModel::kOnePort,
            CostParams{10, 1, 1});
  const auto r = good->run(a, b, m);
  EXPECT_LE(max_abs_diff(r.c, multiply_naive(a, b)), 1e-12);
}

TEST(AlgoApi, IdentityProduct) {
  for (const auto& alg : algo::all_algorithms()) {
    const std::uint32_t p = 64;
    const std::size_t n = 32;
    if (!alg->applicable(n, p)) continue;
    Machine m(Hypercube::with_nodes(p), PortModel::kMultiPort,
              CostParams{10, 1, 1});
    if (!alg->supports(m.port())) continue;
    const Matrix a = random_matrix(n, n, 99);
    const auto r = alg->run(a, Matrix::identity(n), m);
    EXPECT_LE(max_abs_diff(r.c, a), 1e-12) << alg->name() << " * I != A";
  }
}

TEST(AlgoApi, SingleNodeMachine) {
  // p = 1 is a degenerate but legal machine for the 2-D and 3-D grids.
  for (const AlgoId id : {AlgoId::kSimple, AlgoId::kCannon, AlgoId::kDNS,
                          AlgoId::kDiag3D, AlgoId::kAll3D}) {
    const auto alg = algo::make_algorithm(id);
    ASSERT_TRUE(alg->applicable(4, 1)) << alg->name();
    Machine m(Hypercube::with_nodes(1), PortModel::kOnePort,
              CostParams{10, 1, 1});
    const Matrix a = random_matrix(4, 4, 5);
    const Matrix b = random_matrix(4, 4, 6);
    const auto r = alg->run(a, b, m);
    EXPECT_LE(max_abs_diff(r.c, multiply_naive(a, b)), 1e-13) << alg->name();
    EXPECT_DOUBLE_EQ(r.report.totals().comm_time, 0.0) << alg->name();
  }
}

}  // namespace
}  // namespace hcmm
