// Tests for the static schedule analyzer (src/analysis): hand-built illegal
// schedules must produce exactly the expected diagnostics, legal builder
// output must analyze clean, the Table 1 cost audit must accept every
// registered builder, and the checked par() must reject colliding merges.

#include <gtest/gtest.h>

#include <algorithm>

#include "hcmm/analysis/cost_audit.hpp"
#include "hcmm/analysis/legality.hpp"
#include "hcmm/analysis/passes.hpp"
#include "hcmm/analysis/placement.hpp"
#include "hcmm/coll/collectives.hpp"
#include "hcmm/sim/machine.hpp"
#include "hcmm/sim/report_io.hpp"
#include "hcmm/support/check.hpp"

namespace hcmm {
namespace {

using analysis::Diagnostic;
using analysis::DiagnosticList;
using analysis::Placement;
using analysis::Severity;

constexpr Tag kTagA = make_tag(1, 1);
constexpr Tag kTagB = make_tag(1, 2);

Transfer xfer(NodeId src, NodeId dst, Tag tag, bool combine = false,
              bool move_src = false) {
  return Transfer{src, dst, {tag}, combine, move_src};
}

Schedule one_round(std::vector<Transfer> ts) {
  Schedule s;
  s.rounds.push_back(Round{std::move(ts)});
  return s;
}

std::vector<std::string> codes(const DiagnosticList& dl) {
  std::vector<std::string> out;
  for (const auto& d : dl.diags()) out.push_back(d.code);
  return out;
}

bool has_code(const DiagnosticList& dl, std::string_view code) {
  const auto& ds = dl.diags();
  return std::any_of(ds.begin(), ds.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

// ---- topology pass --------------------------------------------------------

TEST(AnalysisTopology, NonLinkTransferIsError) {
  const Hypercube cube(3);
  // 0 -> 3 differs in two bits: not a hypercube link.
  const Schedule s = one_round({xfer(0, 3, kTagA)});
  const DiagnosticList dl = analysis::analyze_schedule(s, cube, PortModel::kOnePort);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "topology.not-a-link");
  EXPECT_EQ(dl.diags()[0].severity, Severity::kError);
  EXPECT_EQ(dl.diags()[0].round, 0u);
  EXPECT_EQ(dl.diags()[0].transfer, 0u);
}

TEST(AnalysisTopology, OutOfRangeAndEmptyTags) {
  const Hypercube cube(2);
  Schedule s = one_round({xfer(0, 9, kTagA)});
  s.rounds.push_back(Round{{Transfer{0, 1, {}, false, false}}});
  const DiagnosticList dl = analysis::analyze_schedule(s, cube, PortModel::kOnePort);
  EXPECT_TRUE(has_code(dl, "topology.endpoint-range"));
  EXPECT_TRUE(has_code(dl, "topology.empty-tags"));
}

// ---- port pass ------------------------------------------------------------

TEST(AnalysisPort, OnePortDoubleSendIsError) {
  const Hypercube cube(3);
  // Node 0 sends on two different links in one round: legal multi-port,
  // a one-port violation.
  const Schedule s = one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)});
  const DiagnosticList one =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.diags()[0].code, "port.double-send");
  EXPECT_EQ(one.diags()[0].round, 0u);
  EXPECT_EQ(one.diags()[0].transfer, 1u);
  EXPECT_TRUE(
      analysis::analyze_schedule(s, cube, PortModel::kMultiPort).empty());
}

TEST(AnalysisPort, OnePortConcurrentSendRecvIsLegal) {
  const Hypercube cube(1);
  const Schedule s = one_round({xfer(0, 1, kTagA), xfer(1, 0, kTagB)});
  EXPECT_TRUE(analysis::analyze_schedule(s, cube, PortModel::kOnePort).empty());
}

TEST(AnalysisPort, MultiPortSameLinkCollisionIsError) {
  const Hypercube cube(3);
  // Two transfers both drive link dimension 0 out of node 0.
  const Schedule s = one_round({xfer(0, 1, kTagA), xfer(0, 1, kTagB)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kMultiPort);
  EXPECT_TRUE(has_code(dl, "port.double-send"));
  EXPECT_TRUE(has_code(dl, "port.double-recv"));
}

// ---- dataflow pass --------------------------------------------------------

TEST(AnalysisDataflow, SilentWithoutInitialPlacement) {
  const Hypercube cube(1);
  const Schedule s = one_round({xfer(0, 1, kTagA)});
  EXPECT_TRUE(analysis::analyze_schedule(s, cube, PortModel::kOnePort).empty());
}

TEST(AnalysisDataflow, AbsentTagIsError) {
  const Hypercube cube(1);
  Placement init;  // empty: node 0 holds nothing
  const Schedule s = one_round({xfer(0, 1, kTagA)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.absent-tag");
}

TEST(AnalysisDataflow, UseAfterMoveIsError) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 4);
  Schedule s = one_round({xfer(0, 1, kTagA, false, /*move_src=*/true)});
  s.append(one_round({xfer(0, 2, kTagA)}));
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.use-after-move");
  EXPECT_EQ(dl.diags()[0].round, 1u);
}

TEST(AnalysisDataflow, CombineIntoAbsentIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);  // node 1 has no copy to combine into
  const Schedule s = one_round({xfer(0, 1, kTagA, /*combine=*/true)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.combine-into-absent");
}

TEST(AnalysisDataflow, CombineSizeMismatchIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);
  init.add(1, kTagA, 8);
  const Schedule s = one_round({xfer(0, 1, kTagA, /*combine=*/true)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  EXPECT_TRUE(has_code(dl, "dataflow.combine-size-mismatch"));
}

TEST(AnalysisDataflow, DuplicateDeliveryIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);
  init.add(1, kTagA, 4);  // destination already holds the tag
  const Schedule s = one_round({xfer(0, 1, kTagA)});
  const DiagnosticList dl =
      analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.duplicate-delivery");
}

TEST(AnalysisDataflow, DeadTransferIsWarning) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 4);
  init.add(0, kTagB, 4);
  // kTagA reaches node 1 (required in the final placement); kTagB's hop to
  // node 2 is read by nobody and required nowhere: dead.
  Schedule s = one_round({xfer(0, 1, kTagA)});
  s.append(one_round({xfer(0, 2, kTagB)}));
  Placement want;
  want.add(1, kTagA);
  const DiagnosticList dl = analysis::analyze_schedule(
      s, cube, PortModel::kOnePort, &init, &want);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.dead-transfer");
  EXPECT_EQ(dl.diags()[0].severity, Severity::kWarning);
  EXPECT_EQ(dl.diags()[0].round, 1u);
}

TEST(AnalysisDataflow, ForwardedItemIsNotDead) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 4);
  // 0 -> 1 -> 3: the first hop is read by the second, the second by the
  // final placement; neither is dead.
  Schedule s = one_round({xfer(0, 1, kTagA)});
  s.append(one_round({xfer(1, 3, kTagA, false, /*move_src=*/true)}));
  Placement want;
  want.add(3, kTagA);
  EXPECT_TRUE(analysis::analyze_schedule(s, cube, PortModel::kOnePort, &init,
                                         &want)
                  .empty());
}

TEST(AnalysisDataflow, MissingFinalItemIsError) {
  const Hypercube cube(1);
  Placement init;
  init.add(0, kTagA, 4);
  const Schedule s;  // nothing moves
  Placement want;
  want.add(1, kTagA);
  const DiagnosticList dl = analysis::analyze_schedule(
      s, cube, PortModel::kOnePort, &init, &want);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_EQ(dl.diags()[0].code, "dataflow.final-missing");
}

// ---- clean schedules ------------------------------------------------------

TEST(AnalysisClean, PreparedCollectivesAnalyzeClean) {
  for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    const Hypercube cube(3);
    const Subcube sc(0, cube.size() - 1);
    Machine m(cube, port, CostParams{});
    const NodeId root = 0;
    m.store().put(root, kTagA, std::vector<double>(12, 1.0));
    const Schedule s = coll::prep_bcast(m, sc, root, kTagA).schedule;
    const Placement placed = analysis::snapshot_placement(m.store());
    const DiagnosticList dl =
        analysis::analyze_schedule(s, cube, port, &placed);
    EXPECT_TRUE(dl.empty()) << to_string(port) << ":\n" << dl.to_string();
  }
}

// ---- static cost + Table 1 audit ------------------------------------------

TEST(AnalysisCost, StaticCostCountsRoundsAndCriticalWords) {
  const Hypercube cube(2);
  Placement init;
  init.add(0, kTagA, 5);
  init.add(0, kTagB, 7);
  // Round 0: node 0 sends both tags on different links.  One-port charges
  // the node port 5+7 = 12; multi-port charges per link, max(5, 7) = 7.
  // Round 1 is empty (free), so a = 1 either way.
  Schedule s = one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)});
  s.rounds.emplace_back();
  const analysis::StaticCost one =
      analysis::static_cost(s, cube, PortModel::kOnePort, init);
  EXPECT_TRUE(one.exact);
  EXPECT_EQ(one.a, 1u);
  EXPECT_EQ(one.b, 12u);
  const analysis::StaticCost multi =
      analysis::static_cost(s, cube, PortModel::kMultiPort, init);
  EXPECT_TRUE(multi.exact);
  EXPECT_EQ(multi.a, 1u);
  EXPECT_EQ(multi.b, 7u);
}

TEST(AnalysisCost, StaticCostMatchesMachineMeasurement) {
  for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
    const Hypercube cube(3);
    const Subcube sc(0, cube.size() - 1);
    Machine m(cube, port, CostParams{});
    m.store().put(0, kTagA, std::vector<double>(24, 1.0));
    auto prepared = coll::prep_bcast(m, sc, 0, kTagA);
    const Placement placed = analysis::snapshot_placement(m.store());
    const analysis::StaticCost c =
        analysis::static_cost(prepared.schedule, cube, port, placed);
    m.reset_stats();
    coll::run_prepared(m, std::move(prepared));
    const PhaseStats t = m.report().totals();
    EXPECT_EQ(c.a, t.rounds) << to_string(port);
    EXPECT_EQ(static_cast<double>(c.b), t.word_cost) << to_string(port);
  }
}

TEST(AnalysisCost, AuditAcceptsAllBuilders) {
  for (const std::uint32_t dim : {2u, 3u}) {
    for (const PortModel port : {PortModel::kOnePort, PortModel::kMultiPort}) {
      const DiagnosticList dl =
          analysis::audit_collective_builders(dim, dim * 6, port);
      EXPECT_TRUE(dl.empty())
          << "dim " << dim << " " << to_string(port) << ":\n" << dl.to_string();
    }
  }
}

TEST(AnalysisCost, AuditCatchesWrongClosedForm) {
  // Sanity-check the audit machinery itself: a deliberately wrong Table 1
  // comparison must fail.  bcast on 4 nodes one-port is (2, 2M); claiming
  // all-to-all's form for it cannot match.
  const cost::CommCost bcast =
      cost::table1(cost::CollKind::kBcast, PortModel::kOnePort, 4, 12.0);
  const cost::CommCost aapc =
      cost::table1(cost::CollKind::kAllToAll, PortModel::kOnePort, 4, 12.0);
  EXPECT_NE(bcast.b, aapc.b);
}

// ---- machine delegation ---------------------------------------------------

TEST(AnalysisMachine, RuntimeValidationUsesSharedRules) {
  const Hypercube cube(3);
  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.store().put(0, kTagA, std::vector<double>(4, 1.0));
  m.store().put(0, kTagB, std::vector<double>(4, 1.0));
  const Schedule bad = one_round({xfer(0, 1, kTagA), xfer(0, 2, kTagB)});
  EXPECT_THROW(m.run(bad), CheckError);
  const Schedule non_link = one_round({xfer(0, 3, kTagA)});
  EXPECT_THROW(m.run(non_link), CheckError);
}

TEST(AnalysisMachine, ObserverSeesEveryScheduleBeforeExecution) {
  const Hypercube cube(1);
  Machine m(cube, PortModel::kOnePort, CostParams{});
  m.store().put(0, kTagA, std::vector<double>(4, 1.0));
  std::size_t seen = 0;
  m.set_schedule_observer([&](const Schedule& s) {
    ++seen;
    EXPECT_EQ(s.round_count(), 1u);
    EXPECT_FALSE(m.store().has(1, kTagA));  // before execution
  });
  m.run(one_round({xfer(0, 1, kTagA)}));
  EXPECT_EQ(seen, 1u);
  EXPECT_TRUE(m.store().has(1, kTagA));
}

// ---- checked par ----------------------------------------------------------

TEST(AnalysisPar, CheckedParRejectsCollidingMerge) {
  const Hypercube cube(3);
  const Schedule p1 = one_round({xfer(0, 1, kTagA)});
  const Schedule p2 = one_round({xfer(0, 2, kTagB)});
  const Schedule parts[] = {p1, p2};
  // Unchecked merge succeeds; checked merge under one-port rejects the
  // double send and names round 0.
  EXPECT_EQ(par(parts).rounds[0].transfers.size(), 2u);
  EXPECT_NO_THROW((void)par(parts, cube, PortModel::kMultiPort));
  try {
    (void)par(parts, cube, PortModel::kOnePort);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("round 0"), std::string::npos);
  }
}

// ---- diagnostics plumbing -------------------------------------------------

TEST(AnalysisDiagnostics, SortAndFormat) {
  DiagnosticList dl;
  Diagnostic later;
  later.severity = Severity::kWarning;
  later.pass = "p";
  later.code = "b.code";
  later.round = 2;
  later.transfer = 0;
  later.message = "later";
  Diagnostic wide;  // schedule-wide: sorts last
  wide.pass = "p";
  wide.code = "c.code";
  wide.message = "wide";
  Diagnostic first;
  first.pass = "p";
  first.code = "a.code";
  first.round = 0;
  first.transfer = 1;
  first.message = "first";
  first.hint = "fix it";
  dl.add(later);
  dl.add(wide);
  dl.add(first);
  dl.sort_by_location();
  EXPECT_EQ(codes(dl),
            (std::vector<std::string>{"a.code", "b.code", "c.code"}));
  EXPECT_EQ(dl.error_count(), 2u);
  EXPECT_EQ(dl.count(Severity::kWarning), 1u);
  const std::string text = dl.diags()[0].to_string();
  EXPECT_NE(text.find("error: [a.code] round 0, transfer 1: first"),
            std::string::npos);
  EXPECT_NE(text.find("hint: fix it"), std::string::npos);
}

TEST(AnalysisDiagnostics, JsonExport) {
  DiagnosticList dl;
  Diagnostic d;
  d.pass = "port";
  d.code = "port.double-send";
  d.round = 1;
  d.transfer = 3;
  d.message = "a \"quoted\" message";
  d.hint = "h";
  dl.add(d);
  const std::string js = diagnostics_json(dl);
  EXPECT_NE(js.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"code\": \"port.double-send\""), std::string::npos);
  EXPECT_NE(js.find("\"round\": 1"), std::string::npos);
  EXPECT_NE(js.find("\\\"quoted\\\""), std::string::npos);
  // Locationless findings export null locations.
  DiagnosticList wide;
  Diagnostic w;
  w.pass = "dataflow";
  w.code = "dataflow.final-missing";
  w.message = "m";
  wide.add(w);
  EXPECT_NE(diagnostics_json(wide).find("\"round\": null"), std::string::npos);
}

}  // namespace
}  // namespace hcmm
